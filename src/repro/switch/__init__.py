"""Input-queued switch simulation — the paper's motivating application.

Section 1: "An important example is internal scheduling of a
communication switch: ... the scheduling routine tries to find the
largest possible matching between the input ports and the output
ports."  This subpackage builds that system end-to-end: virtual output
queues, traffic generation, a cell-slot loop, and scheduler adapters
for PIM, iSLIP, Israeli–Itai and the paper's bipartite (1−1/k)-MCM, so
experiment E8 can compare their throughput and delay.
"""

from repro.switch.fabric import Switch, SwitchStats
from repro.switch.traffic import (
    TrafficGenerator,
    bernoulli_uniform,
    bursty,
    diagonal,
    hotspot,
)
from repro.switch.schedulers import (
    GreedyMaximalScheduler,
    IslipAdapter,
    MaxWeightScheduler,
    PaperScheduler,
    PimScheduler,
    Scheduler,
    WeightedPaperScheduler,
)
from repro.switch.simulator import run_switch

__all__ = [
    "Switch",
    "SwitchStats",
    "TrafficGenerator",
    "bernoulli_uniform",
    "bursty",
    "diagonal",
    "hotspot",
    "Scheduler",
    "PimScheduler",
    "IslipAdapter",
    "GreedyMaximalScheduler",
    "PaperScheduler",
    "MaxWeightScheduler",
    "WeightedPaperScheduler",
    "run_switch",
]
