"""S1 — scenario matrix throughput: sequential vs. parallel fan-out.

The algorithm × graph-family matrix (Thms 3.1/3.8/3.11/4.5 across
scale-free / small-world / heavy-tail / Kronecker / adversarial /
high-Δ families) is embarrassingly parallel over cells.  This bench
runs the same matrix with 1 worker and with multiple workers, checks
the records are byte-identical (the ParallelRunner determinism
contract), and reports the wall-clock ratio.  Shape: identical
records always; speedup approaching min(workers, cores) on
multi-core hosts, ~1x on single-core CI.
"""

import json
import os
import time

from repro.analysis import format_table, print_banner, scenario_matrix

from conftest import once

WORKERS = min(4, os.cpu_count() or 1)
SIZE = 24
SEEDS = [0, 1]


def _run(workers: int):
    t0 = time.perf_counter()
    results = scenario_matrix(size=SIZE, seeds=SEEDS, workers=workers)
    return time.perf_counter() - t0, results


def run_s1():
    t_seq, r_seq = _run(1)
    t_par, r_par = _run(WORKERS)
    same = json.dumps([r.to_dict() for r in r_seq], sort_keys=True) == json.dumps(
        [r.to_dict() for r in r_par], sort_keys=True
    )
    return t_seq, t_par, r_seq, same


def test_scenario_matrix_parallel(benchmark, report):
    t_seq, t_par, results, same = once(benchmark, run_s1)

    def show():
        print_banner(
            "S1 — scenario matrix: sequential vs parallel fan-out",
            "identical records for any worker count; wall clock drops "
            "with cores (cells are independent)",
        )
        n_cells = len(results)
        print(format_table(
            ["workers", "cells", "seconds", "cells/s"],
            [
                [1, n_cells, t_seq, n_cells / t_seq],
                [WORKERS, n_cells, t_par, n_cells / t_par],
            ],
        ))
        print(f"\nspeedup {t_seq / t_par:.2f}x on {os.cpu_count()} core(s); "
              f"records identical: {same}")

    report(show)
    assert same, "parallel records diverged from sequential"
    ok_cells = sum(
        1
        for cell in results
        for rec in cell.records
        if "skipped" not in rec and rec["ok"] == 1.0
    )
    bad_cells = sum(
        1
        for cell in results
        for rec in cell.records
        if "skipped" not in rec and rec["ok"] != 1.0
    )
    assert bad_cells == 0 and ok_cells > 0
