"""Section 3.2 — bipartite (1−1/k)-MCM with small messages (Theorem 3.8).

The phase subroutine ``Aug(G, M, ℓ)`` finds a maximal set of
vertex-disjoint augmenting paths of length ≤ ℓ and applies it.  One
*iteration* of the subroutine is a fixed window of 3ℓ+3 lockstep
rounds in three stages:

**Stage A — Algorithm 3, counting (rounds 0..ℓ).**  Free X nodes
broadcast 1; a node that receives numbers for the first time at round
d(v) records per-edge contributions ``c_v[i]`` and their sum ``n_v``
(the number of shortest half-augmenting paths ending at v, Lemma 3.6);
matched Y nodes forward the sum to their mate, matched X nodes to
their non-mate neighbors; free Y nodes that receive become *leaders* —
``n_y`` counts the augmenting paths of length d(y) ≤ ℓ ending at y
(the paper's "minor modifications" for mixed lengths ≤ ℓ).

**Stage B — token selection (rounds ℓ+1..2ℓ+1).**  Each leader draws
the *maximum of n_y uniform numbers from [1, N⁴]* (N bounds the
conflict-graph size, Section 3.2) — computed in one shot by inverse
transform — and launches a token that walks backward along the counted
DAG: at a Y node the next edge is a contributing non-matching edge
chosen with probability ``c_y[i]/n_y``; at a matched X node the token
follows the matching edge.  A leader at distance d launches after a
delay of ℓ−d rounds, so *every* node v sees all tokens that will ever
cross it in the single round 2ℓ+1−d(v) (the paper's "tokens may arrive
at a node only at a single round"); collisions are resolved in favour
of the largest (number, leader-id) and losing tokens die.  This is the
distributed emulation of one Luby iteration on the conflict graph: a
path whose number beats all intersecting paths always survives.

**Stage C — augmentation (rounds 2ℓ+2..3ℓ+2).**  A token that reached
a free X node traces its recorded path back to the leader, flipping
matched and unmatched edges (M ← M ⊕ P); both endpoints of every
flipped edge update their mate pointers as the confirmation passes.

Iterations repeat until no free Y node receives anything in Stage A —
then no augmenting path of length ≤ ℓ remains, i.e. the applied set
was maximal.  ``adaptive=True`` stops there (one extra empty iteration
serves as the certificate); fidelity mode runs the O(log N) budget of
Lemma 3.7 unconditionally.

Theorem 3.8 = running phases ℓ = 1, 3, …, 2k−1 (Lemmas 3.4/3.5 give
the (1−1/k) bound; see :func:`bipartite_mcm`).
"""

from __future__ import annotations

import math
from typing import Generator

import numpy as np

from repro.baselines.israeli_itai import matching_from_mates
from repro.distributed.network import Network, RunResult
from repro.distributed.node import Node
from repro.graphs.graph import Graph
from repro.matching.matching import Matching

_COUNT = "c"
_TOKEN = "t"
_CONFIRM = "f"


def _choose_contributor(
    rng: np.random.Generator, contrib: dict[int, int], n_v: int
) -> int:
    """Sample a contributing edge with probability c_v[i]/n_v."""
    srcs = sorted(contrib)
    if len(srcs) == 1:
        return srcs[0]
    weights = np.array([contrib[s] for s in srcs], dtype=float)
    return int(rng.choice(srcs, p=weights / weights.sum()))


def _draw_winner_number(
    rng: np.random.Generator, n_v: int, hi: int
) -> int:
    """Maximum of ``n_v`` iid uniforms on [1, hi], by inverse transform.

    ``P(max <= x) = (x/hi)^{n_v}``, so ``ceil(hi * U^{1/n_v})`` has the
    right distribution (up to float precision for astronomically large
    n_v — ties are broken by leader id anyway).
    """
    u = float(rng.random())
    if u <= 0.0:
        return 1
    w = math.ceil(float(hi) * (u ** (1.0 / float(n_v))))
    return max(1, min(int(w), hi))


def aug_iteration_program(
    node: Node,
    xside: list[bool],
    mates: list[int],
    ell: int,
    hi: int,
    count_only: bool = False,
) -> Generator[None, None, tuple]:
    """One Aug iteration (3ℓ+3 rounds; ℓ+1 rounds if ``count_only``).

    Returns ``(mate, was_leader)`` — or, with ``count_only``,
    ``(d, n_v, contributions, was_leader)`` after Stage A, the raw
    Algorithm 3 output used by the Figure 1 reproduction.
    """
    is_x = xside[node.id]
    mate = mates[node.id]

    visited = False
    d = -1
    contrib: dict[int, int] = {}
    n_v = 0
    is_leader = False
    tok: tuple[int, int] | None = None  # (number, leader) passing through
    token_in: int | None = None  # neighbor that handed us the token
    token_out: int | None = None  # neighbor we handed the token to
    completed = False  # this free X node terminated a token

    total_segments = (ell + 1) if count_only else (3 * ell + 3)
    for seg in range(total_segments):
        inbox = node.inbox
        # ------------------------------------------------------ Stage A
        if seg == 0:
            if is_x and mate == -1:
                node.broadcast((_COUNT, 1))
        elif seg <= ell:
            counts = [(src, p[1]) for src, p in inbox if p[0] == _COUNT]
            if counts and not visited:
                visited = True
                d = seg
                contrib = dict(counts)
                n_v = sum(contrib.values())
                if is_x:
                    # Matched X (free X never receives): forward the sum
                    # over the non-matching edges.
                    if seg < ell:
                        for u in node.neighbors:
                            if u != mate:
                                node.send(u, (_COUNT, n_v))
                elif mate == -1:
                    is_leader = True  # n_v augmenting paths of length d end here
                elif seg < ell:
                    node.send(mate, (_COUNT, n_v))
        # ------------------------------------------------------ Stage B
        if not count_only and ell + 1 <= seg <= 2 * ell + 1:
            if is_leader and tok is None and seg == 2 * ell + 1 - d:
                number = _draw_winner_number(node.rng, n_v, hi)
                tok = (number, node.id)
                token_out = _choose_contributor(node.rng, contrib, n_v)
                node.send(token_out, (_TOKEN, number, node.id))
            arrivals = [
                (p[1], p[2], src) for src, p in inbox if p[0] == _TOKEN
            ]
            if arrivals and tok is None and token_in is None:
                number, leader, src = max(arrivals)
                tok = (number, leader)
                token_in = src
                if is_x and mate == -1:
                    completed = True  # the path reached a free X endpoint
                elif is_x:
                    token_out = mate
                    node.send(mate, (_TOKEN, number, leader))
                else:
                    token_out = _choose_contributor(node.rng, contrib, n_v)
                    node.send(token_out, (_TOKEN, number, leader))
        # ------------------------------------------------------ Stage C
        if not count_only and seg >= 2 * ell + 2:
            if seg == 2 * ell + 2 and completed:
                # Free X endpoint: the unmatched edge to token_in joins M.
                mate = token_in
                node.send(token_in, (_CONFIRM,))
            if any(p[0] == _CONFIRM for _, p in inbox):
                # The confirmation arrives from token_out's side; flip
                # this node's two path edges.
                if token_in is None:
                    mate = token_out  # leader: its chosen edge joins M
                elif token_in == mate:
                    # Y interior: matched edge (to token_in) leaves M,
                    # chosen edge (to token_out) joins it.
                    mate = token_out
                    node.send(token_in, (_CONFIRM,))
                else:
                    # X interior: unmatched edge (from token_in) joins M,
                    # the old matching edge (token_out) leaves it.
                    mate = token_in
                    node.send(token_in, (_CONFIRM,))
        yield
    if count_only:
        out = (d, n_v, tuple(sorted(contrib.items())), is_leader)
    else:
        out = (mate, is_leader)
    node.finish(out)
    return out


def default_phase_iterations(n: int, max_degree: int, ell: int) -> int:
    """Fidelity iteration budget: Θ(log N), N = n·Δ^{(ℓ+1)/2} (Lemma 3.7)."""
    log_n = math.log2(max(2, n))
    log_d = math.log2(max(2, max_degree + 1))
    return max(8, math.ceil(3 * (log_n + (ell + 1) / 2 * log_d)))


def _conflict_bound(n: int, max_degree: int, ell: int) -> int:
    """N: the Section 3.2 bound n·Δ^{(ℓ+1)/2} on conflict-graph size."""
    return max(2, n) * max(2, max_degree) ** ((ell + 1) // 2)


def aug_bipartite(
    g: Graph,
    xside: list[bool],
    mates: list[int],
    ell: int,
    seed: int = 0,
    iters: int | None = None,
    adaptive: bool = True,
    max_rounds: int = 1_000_000,
) -> tuple[list[int], RunResult, int]:
    """Aug(G, M, ℓ): maximal set of length-≤ℓ augmentations, applied.

    Parameters
    ----------
    xside:
        ``xside[v]`` — True when v lies on the X side.  Only each
        node's own entry is read (it's the node's input assignment).
    mates:
        Current matching as a mate array (−1 = free).
    iters:
        Fixed iteration budget (fidelity mode).  ``None`` with
        ``adaptive=True`` repeats until an iteration finds no leader.
    adaptive:
        Stop as soon as an iteration's Stage A reaches no free Y node —
        the certificate that no augmenting path of length ≤ ℓ remains.

    Returns ``(new_mates, merged_metrics, iterations_executed)``.
    """
    if ell % 2 != 1:
        raise ValueError("augmenting-path lengths are odd")
    if iters is None and not adaptive:
        iters = default_phase_iterations(g.n, g.max_degree(), ell)
    hi = _conflict_bound(g.n, g.max_degree(), ell) ** 4
    seq = np.random.SeedSequence(seed)
    total = RunResult()
    it = 0
    while iters is None or it < iters:
        net = Network(
            g,
            aug_iteration_program,
            params={"xside": xside, "mates": mates, "ell": ell, "hi": hi},
            seed=int(seq.spawn(1)[0].generate_state(1)[0]),
        )
        res = net.run(max_rounds=max_rounds)
        total = total.merge(res)
        mates = [res.outputs[v][0] for v in range(g.n)]
        it += 1
        if adaptive and not any(res.outputs[v][1] for v in range(g.n)):
            break
    return mates, total, it


def count_augmenting_paths(
    g: Graph,
    xside: list[bool],
    mates: list[int],
    ell: int,
    max_rounds: int = 100_000,
) -> tuple[dict[int, tuple], RunResult]:
    """Stage A alone (Algorithm 3): per-node ``(d, n_v, c_v, leader)``.

    The raw counting output — what Figure 1 tabulates layer by layer.
    ``c_v`` is a tuple of ``(neighbor, contribution)`` pairs.
    """
    hi = _conflict_bound(g.n, g.max_degree(), ell) ** 4
    net = Network(
        g,
        aug_iteration_program,
        params={
            "xside": xside,
            "mates": mates,
            "ell": ell,
            "hi": hi,
            "count_only": True,
        },
    )
    res = net.run(max_rounds=max_rounds)
    return dict(res.outputs), res


def bipartite_mcm(
    g: Graph,
    k: int,
    xs: list[int] | None = None,
    seed: int = 0,
    adaptive: bool = True,
    max_rounds: int = 1_000_000,
) -> tuple[Matching, RunResult]:
    """Theorem 3.8: (1−1/k)-MCM of a bipartite graph.

    Runs Aug phases ℓ = 1, 3, …, 2k−1.  After phase ℓ no augmenting
    path of length ≤ ℓ remains (maximality + Lemma 3.4), so by Lemma
    3.5 the final matching is a (1−1/(k+1))-MCM ≥ (1−1/k)-MCM.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if xs is None:
        part = g.bipartition()
        if part is None:
            raise ValueError("graph is not bipartite")
        xs = part[0]
    xside = [False] * g.n
    for x in xs:
        xside[x] = True
    mates = [-1] * g.n
    total = RunResult()
    seq = np.random.SeedSequence(seed)
    for ell in range(1, 2 * k, 2):
        mates, res, _ = aug_bipartite(
            g,
            xside,
            mates,
            ell,
            seed=int(seq.spawn(1)[0].generate_state(1)[0]),
            adaptive=adaptive,
            iters=None if adaptive else default_phase_iterations(
                g.n, g.max_degree(), ell
            ),
            max_rounds=max_rounds,
        )
        total = total.merge(res)
    m = matching_from_mates(g, {v: mates[v] for v in range(g.n)})
    total.outputs = {v: mates[v] for v in range(g.n)}
    return m, total
