"""Query-cost curves for the LCA serving layer.

The serving benchmark's two questions, as reusable measurements:

* :func:`lca_query_curve` — for each ``n``, build a sparse random
  graph, serve a fixed mix of point queries, and record the measured
  queries/sec, mean probes per query, and cache hit rate.  The LCA
  theory (PAPERS.md: Alon–Rubinfeld–Vardi, Reingold–Vardi) predicts
  probes-per-query growing polylogarithmically while a global run
  grows like m — the curve makes that visible.
* :func:`crossover_queries` — the honest break-even: how many point
  queries one full global run buys.  Below the crossover, serving
  queries via the LCA is strictly cheaper than recomputing the
  matching even once; above it, a global run amortizes better.

Used by ``benchmarks/bench_s9_lca.py`` and ``examples/lca_queries.py``.
"""

from __future__ import annotations

import math
import time
from typing import Any, Iterable

import numpy as np

from repro.graphs.generators import gnp_random
from repro.lca.service import MatchingService


def serve_queries(
    service: MatchingService,
    vertices: Iterable[int],
) -> dict[str, float]:
    """Serve ``mate_of`` queries for ``vertices``; return timing + cost.

    Returns ``queries``, ``seconds``, ``queries_per_sec``,
    ``mean_probes``, ``max_depth``, ``cache_hit_rate`` for exactly this
    batch (the service's lifetime aggregates are left to the caller).
    """
    before = service.stats.merge(type(service.stats)())  # snapshot copy
    vs = [int(v) for v in vertices]
    t0 = time.perf_counter()
    for v in vs:
        service.mate_of(v)
    seconds = time.perf_counter() - t0
    agg = service.stats
    queries = agg.queries - before.queries
    probed = agg.edges_probed - before.edges_probed
    hits = agg.cache_hits - before.cache_hits
    return {
        "queries": float(queries),
        "seconds": seconds,
        "queries_per_sec": queries / seconds if seconds > 0 else math.inf,
        "mean_probes": probed / queries if queries else 0.0,
        "max_depth": float(agg.max_depth),
        "cache_hit_rate": hits / (hits + probed) if hits + probed else 0.0,
    }


def lca_query_curve(
    ns: Iterable[int],
    *,
    avg_degree: float = 8.0,
    seed: int = 0,
    queries: int = 2000,
    max_entries: int = 4096,
    cache: bool = True,
) -> list[dict[str, Any]]:
    """Probe cost and throughput vs graph size, one dict per ``n``.

    Each cell builds ``gnp_random(n, avg_degree/(n-1))`` (streamed;
    scale tier), serves ``queries`` uniformly drawn ``mate_of``
    queries, and records the :func:`serve_queries` measurements plus
    the cell parameters.
    """
    out: list[dict[str, Any]] = []
    for n in ns:
        n = int(n)
        g = gnp_random(n, min(1.0, avg_degree / max(1, n - 1)), seed=seed)
        svc = MatchingService(g, seed, max_entries=max_entries, cache=cache)
        rng = np.random.default_rng(seed)
        cell = serve_queries(svc, rng.integers(n, size=queries).tolist())
        cell.update({"n": n, "m": g.m, "avg_degree": avg_degree, "seed": seed})
        out.append(cell)
    return out


def crossover_queries(global_seconds: float, per_query_seconds: float) -> float:
    """Queries one global run buys: ``global_seconds / per_query_seconds``.

    Serving fewer than this many point lookups through the LCA is
    cheaper than computing the whole matching once; past it, the
    global run amortizes better (assuming every lookup is needed).
    """
    if per_query_seconds <= 0:
        return math.inf
    return global_seconds / per_query_seconds
