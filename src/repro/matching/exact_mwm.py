"""Exact maximum *weight* matching oracles.

Two implementations with disjoint roles:

* :func:`exact_mwm_small` — our own bitmask dynamic program, exact for
  graphs up to ~22 vertices, no third-party dependency.  O(2^n · n)
  time / O(2^n) memory.
* :func:`max_weight_matching` — delegates to
  ``networkx.max_weight_matching`` (Galil's weighted blossom) for
  larger graphs.  Per DESIGN.md §7 this is a *test/benchmark oracle*,
  not part of the reproduced system; the two oracles are cross-checked
  against each other in the test suite.
"""

from __future__ import annotations

from functools import lru_cache

from repro.graphs.graph import Graph
from repro.matching.matching import Matching

_SMALL_LIMIT = 22


def exact_mwm_small(g: Graph) -> Matching:
    """Exact MWM by DP over vertex subsets (n <= 22).

    State = set of vertices still available; transition = either leave
    the lowest available vertex unmatched, or match it to an available
    neighbor.
    """
    n = g.n
    if n > _SMALL_LIMIT:
        raise ValueError(f"exact_mwm_small supports n <= {_SMALL_LIMIT}, got {n}")
    nbr_masks: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for u, v, w in g.iter_weighted_edges():
        nbr_masks[u].append((v, w))
        nbr_masks[v].append((u, w))

    @lru_cache(maxsize=None)
    def best(avail: int) -> tuple[float, int]:
        """Return (weight, chosen-edge-encoding) for the subset ``avail``.

        The second component re-derives the choice at this state: -1
        for "skip lowest vertex", else the matched neighbor.
        """
        if avail == 0:
            return 0.0, -1
        v = (avail & -avail).bit_length() - 1
        rest = avail & ~(1 << v)
        best_w, choice = best(rest)[0], -1
        for u, w in nbr_masks[v]:
            if avail >> u & 1:
                cand = w + best(rest & ~(1 << u))[0]
                if cand > best_w + 1e-12:
                    best_w, choice = cand, u
        return best_w, choice

    m = Matching(g)
    avail = (1 << n) - 1
    while avail:
        v = (avail & -avail).bit_length() - 1
        _, choice = best(avail)
        avail &= ~(1 << v)
        if choice != -1:
            m.add(v, choice)
            avail &= ~(1 << choice)
    best.cache_clear()
    return m


def max_weight_matching(g: Graph) -> Matching:
    """Exact MWM via networkx (oracle for graphs beyond the DP limit)."""
    import networkx as nx

    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    for u, v, w in g.iter_weighted_edges():
        h.add_edge(u, v, weight=w)
    pairs = nx.max_weight_matching(h, maxcardinality=False)
    m = Matching(g)
    for u, v in pairs:
        m.add(u, v)
    return m
