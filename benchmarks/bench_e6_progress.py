"""E6 — Lemmas 3.9/3.10: per-iteration progress of Algorithm 4.

Claim: while M is not yet a (1−1/k)-MCM, each iteration shrinks the
gap δ_i = (1−1/(k+1))|M*| − |M| by factor ≤ 1 − 1/((k+1)·2^{2k}) *in
expectation* (w.h.p. bounds hide in the Chernoff argument).  We track
δ_i across iterations and report the measured mean decay vs the bound,
and the iterations needed to reach (1−1/k) vs Lemma 3.10's budget.
"""

import numpy as np

from repro.analysis import format_table, print_banner
from repro.core.bipartite_mcm import aug_bipartite
from repro.core.general_mcm import _hat_graph, fidelity_iterations
from repro.baselines.israeli_itai import matching_from_mates
from repro.graphs import gnp_random
from repro.matching import maximum_matching_size

from conftest import once

K = 3


def run_e6(seed=0, n=60):
    g = gnp_random(n, 0.07, seed=seed)
    opt = maximum_matching_size(g)
    target = (1 - 1 / (K + 1)) * opt
    rng = np.random.default_rng(seed)
    seq = np.random.SeedSequence(seed + 1)
    mates = [-1] * g.n
    gaps = [target]
    it_reached = None
    for it in range(300):
        m_now = matching_from_mates(g, dict(enumerate(mates)))
        gap = target - len(m_now)
        if it_reached is None and len(m_now) >= (1 - 1 / K) * opt:
            it_reached = it
        if gap <= 0:
            break
        red = rng.integers(0, 2, size=g.n).astype(bool)
        ghat, xside = _hat_graph(g, mates, red)
        mates, _, _ = aug_bipartite(
            ghat, xside, mates, 2 * K - 1,
            seed=int(seq.spawn(1)[0].generate_state(1)[0]),
        )
        gaps.append(target - len(matching_from_mates(g, dict(enumerate(mates)))))
    decays = [
        b / a for a, b in zip(gaps, gaps[1:]) if a > 0 and b >= 0
    ]
    bound = 1 - 1 / ((K + 1) * 2 ** (2 * K))
    return gaps, decays, bound, it_reached


def test_progress_per_iteration(benchmark, report):
    gaps, decays, bound, it_reached = once(benchmark, run_e6)

    def show():
        print_banner(
            "E6 / Lemmas 3.9–3.10 — gap decay of Algorithm 4 (k=3)",
            f"E[δ_{{i+1}}] ≤ (1 − 1/((k+1)2^{{2k}}))·δ_i = {bound:.5f}·δ_i; "
            f"(1−1/k) reached within 2^{{2k+1}}(k+1)ln k = "
            f"{fidelity_iterations(K)} iterations",
        )
        print(format_table(
            ["iteration", "gap δ_i"],
            [[i, gap] for i, gap in enumerate(gaps[:12])],
        ))
        mean_decay = sum(decays) / len(decays) if decays else 0.0
        print(f"\nmean measured decay factor: {mean_decay:.4f} "
              f"(bound {bound:.5f}; smaller = faster than the bound)")
        print(f"(1−1/k) reached after {it_reached} iterations "
              f"(paper budget {fidelity_iterations(K)})")

    report(show)
    mean_decay = sum(decays) / len(decays) if decays else 0.0
    assert mean_decay <= bound + 0.05  # measured decay at least as fast
    assert it_reached is not None and it_reached <= fidelity_iterations(K)
