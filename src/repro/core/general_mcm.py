"""Algorithm 4 — general graphs via random bipartitions (Theorem 3.11).

Each iteration:

1. every node colors itself red or blue with probability ½;
2. the bipartite-looking subgraph Ĝ is formed — its vertices are the
   free vertices plus the endpoints of *bichromatic* matched edges,
   its edges the bichromatic edges among them (line 4 of Algorithm 4);
3. ``Aug(Ĝ, M, 2k−1)`` (the Section 3.2 subroutine, with X = red and
   Y = blue) applies a maximal set of disjoint augmenting paths of
   length ≤ 2k−1 in Ĝ — each is an augmenting path in G as well
   (Observation 3.1);
4. M ← M ⊕ P.

Any augmenting path of length ℓ ≤ 2k−1 survives into Ĝ with
probability 2^{−ℓ} (Observation 3.2), so by Lemma 3.9 each iteration
closes an expected 1/((k+1)2^{2k}) fraction of the gap to
(1−1/(k+1))|M*|; after 2^{2k+1}(k+1)·ln k iterations the matching is a
(1−1/k)-MCM w.h.p. (Lemma 3.10).

Modes:

* **fidelity** (``iterations=fidelity_iterations(k)``) — the paper's
  exact budget, astronomically conservative in practice;
* **adaptive** (default) — stop once an iteration certifies that no
  augmenting path of length ≤ 2k−1 exists in *G* (checked exactly, by
  bounded enumeration); at that point Lemma 3.5 already gives the
  stronger (1−1/(k+1)) bound and further iterations are no-ops.
  Ablation A2 quantifies the difference.

The per-iteration communication (color exchange with the mate, one
membership broadcast) is charged explicitly: 2 rounds and 2(m+n)
messages of O(1) bits.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.israeli_itai import matching_from_mates
from repro.core.bipartite_mcm import aug_bipartite, default_phase_iterations
from repro.distributed.network import RunResult
from repro.graphs.graph import Graph
from repro.matching.augmenting import find_augmenting_paths_upto
from repro.matching.matching import Matching


def fidelity_iterations(k: int) -> int:
    """The paper's iteration budget: ⌈2^{2k+1}(k+1)·ln k⌉."""
    if k <= 2:
        raise ValueError("Algorithm 4 requires k > 2")
    return math.ceil(2 ** (2 * k + 1) * (k + 1) * math.log(k))


def _hat_graph(
    g: Graph, mates: list[int], red: np.ndarray
) -> tuple[Graph, list[bool]]:
    """Line 4 of Algorithm 4: build Ĝ and the X-side indicator.

    Ĝ keeps all vertex ids (spanning subgraph of bichromatic edges
    between Ĝ members); vertices outside V̂ are isolated in it and idle
    through the Aug run.  X = red members, Y = blue members.
    """
    mates_arr = np.asarray(mates, dtype=np.int64)
    red_arr = np.asarray(red, dtype=bool)
    in_hat = (mates_arr == -1) | (red_arr != red_arr[mates_arr])
    lo, hi = g.endpoints_array()
    keep = np.nonzero(
        in_hat[lo] & in_hat[hi] & (red_arr[lo] != red_arr[hi])
    )[0]
    ghat = g.subgraph(keep)
    xside = red_arr.tolist()
    return ghat, xside


def general_mcm(
    g: Graph,
    k: int,
    seed: int = 0,
    iterations: int | None = None,
    adaptive: bool = True,
    inner_adaptive: bool = True,
    max_rounds: int = 1_000_000,
) -> tuple[Matching, RunResult, int]:
    """Theorem 3.11: (1−1/k)-MCM of an arbitrary graph, w.h.p.

    Parameters
    ----------
    iterations:
        Outer sampling budget; default is the adaptive stop (or the
        paper's :func:`fidelity_iterations` when ``adaptive=False``).
    adaptive:
        Stop early once no augmenting path of length ≤ 2k−1 exists in
        G w.r.t. M (the target guarantee is then already met).
    inner_adaptive:
        Run each Aug call until its no-leader certificate instead of
        the fixed Lemma 3.7 budget.

    Returns ``(matching, metrics, outer_iterations_used)``.
    """
    if k <= 2:
        raise ValueError("Algorithm 4 requires k > 2 (Section 3.3)")
    ell = 2 * k - 1
    if iterations is None and not adaptive:
        iterations = fidelity_iterations(k)
    rng = np.random.default_rng(seed)
    seq = np.random.SeedSequence(seed + 1)
    mates = [-1] * g.n
    total = RunResult()
    outer = 0
    while iterations is None or outer < iterations:
        if adaptive:
            m_now = matching_from_mates(g, dict(enumerate(mates)))
            if not find_augmenting_paths_upto(g, m_now, ell):
                break
        # Line 3: independent fair coins.
        red = rng.integers(0, 2, size=g.n).astype(bool)
        # Line 4 — one round to exchange colors across matched edges,
        # one broadcast of (color, membership); O(1)-bit messages.
        total.charged_rounds += 2
        total.total_messages += 2 * (g.m + len([v for v in mates if v != -1]))
        ghat, xside = _hat_graph(g, mates, red)
        # Line 5: Aug(Ĝ, M, 2k−1).  Mates outside Ĝ ride along
        # unchanged (their vertices are isolated there).
        mates, res, _ = aug_bipartite(
            ghat,
            xside,
            mates,
            ell,
            seed=int(seq.spawn(1)[0].generate_state(1)[0]),
            iters=None
            if inner_adaptive
            else default_phase_iterations(g.n, g.max_degree(), ell),
            adaptive=inner_adaptive,
            max_rounds=max_rounds,
        )
        total = total.merge(res)
        outer += 1
        if iterations is None and outer > 200 * fidelity_iterations(k):
            raise RuntimeError("general_mcm failed to converge")
    m = matching_from_mates(g, dict(enumerate(mates)))
    total.outputs = dict(enumerate(mates))
    return m, total, outer
