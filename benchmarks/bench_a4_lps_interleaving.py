"""A4 (ablation) — sequential vs interleaved weight classes in the
δ-MWM box (the DESIGN.md §2 deviation, quantified).

[18] interleaves its weight classes to reach O(log n) rounds; our
faithful-quality sequential implementation costs O(log W · log n).
This ablation runs both on the same graphs: rounds, quality, and the
effect on Algorithm 5 when each is used as the black box.
"""

from repro.analysis import format_table, print_banner
from repro.baselines.lps_interleaved import lps_interleaved_mwm
from repro.baselines.lps_mwm import lps_mwm
from repro.core.weighted_mwm import weighted_mwm
from repro.graphs import gnp_random
from repro.graphs.weights import assign_uniform_weights
from repro.matching import maximum_matching_weight

from conftest import once

SEEDS = range(3)


def run_a4():
    rows = []
    for n in (40, 80, 160):
        seq_rounds, int_rounds = [], []
        seq_q, int_q = 1.0, 1.0
        for s in SEEDS:
            g = assign_uniform_weights(
                gnp_random(n, 8.0 / n, seed=s), seed=s
            )
            opt = maximum_matching_weight(g)
            ms, rs = lps_mwm(g, seed=600 + s)
            mi, ri = lps_interleaved_mwm(g, seed=600 + s)
            seq_rounds.append(rs.rounds)
            int_rounds.append(ri.rounds)
            seq_q = min(seq_q, ms.weight() / opt)
            int_q = min(int_q, mi.weight() / opt)
        rows.append(
            [
                n,
                max(seq_rounds),
                max(int_rounds),
                seq_q,
                int_q,
            ]
        )
    return rows


def test_lps_interleaving(benchmark, report):
    rows = once(benchmark, run_a4)

    def show():
        print_banner(
            "A4 (ablation) — weight-class scheduling in the δ-MWM box",
            "[18] interleaves classes for O(log n); our sequential "
            "variant pays O(log W · log n) for simpler analysis — "
            "same constant-factor quality",
        )
        print(format_table(
            ["n", "sequential rounds", "interleaved rounds",
             "seq worst ratio", "interleaved worst ratio"], rows
        ))

    report(show)
    for _n, seq_r, int_r, seq_q, int_q in rows:
        assert int_r < seq_r  # interleaving buys rounds
        assert seq_q >= 0.25 - 1e-9
        assert int_q >= 0.25 - 1e-9
