"""Tests for PIM and iSLIP (the switch-scheduling baselines)."""

import numpy as np
import pytest

from repro.baselines import IslipScheduler, pim_matching
from repro.baselines.pim import pim_iterations_default, pim_schedule
from repro.graphs import bipartite_random


def _check_partial_permutation(matches, demand):
    ins = [i for i, _ in matches]
    outs = [j for _, j in matches]
    assert len(ins) == len(set(ins))
    assert len(outs) == len(set(outs))
    for i, j in matches:
        assert j in demand[i], f"matched ({i},{j}) without demand"


class TestPim:
    def test_iterations_default_grows_slowly(self):
        assert pim_iterations_default(2) == 3
        assert pim_iterations_default(64) == 8

    def test_valid_schedule(self):
        rng = np.random.default_rng(1)
        demand = [{0, 1}, {0, 1}, {2}]
        matches = pim_schedule(demand, 3, rng)
        _check_partial_permutation(matches, demand)

    def test_full_diagonal_demand_perfect(self):
        rng = np.random.default_rng(2)
        demand = [{i} for i in range(8)]
        matches = pim_schedule(demand, 8, rng)
        assert sorted(matches) == [(i, i) for i in range(8)]

    def test_empty_demand(self):
        rng = np.random.default_rng(3)
        assert pim_schedule([set(), set()], 2, rng) == []

    def test_contention_resolved(self):
        # All inputs want output 0: exactly one wins.
        rng = np.random.default_rng(4)
        matches = pim_schedule([{0}] * 6, 6, rng)
        assert len(matches) == 1

    def test_more_iterations_no_smaller(self):
        demand = [set(range(8)) for _ in range(8)]
        small = pim_schedule(demand, 8, np.random.default_rng(5), iterations=1)
        large = pim_schedule(demand, 8, np.random.default_rng(5), iterations=8)
        assert len(large) >= len(small)

    def test_graph_adapter(self):
        g, xs, ys = bipartite_random(10, 10, 0.3, seed=6)
        m = pim_matching(g, xs, ys, seed=7)
        assert all(g.has_edge(u, v) for u, v in m.edges())


class TestIslip:
    def test_valid_schedule(self):
        s = IslipScheduler(4, 4)
        matches = s.schedule([{0, 1}, {1, 2}, {2, 3}, {3, 0}])
        _check_partial_permutation(matches, [{0, 1}, {1, 2}, {2, 3}, {3, 0}])

    def test_full_demand_perfect_match(self):
        s = IslipScheduler(4, 4, iterations=4)
        matches = s.schedule([set(range(4))] * 4)
        assert len(matches) == 4

    def test_pointer_desynchronization(self):
        """Under persistent full demand, iSLIP converges to a rotating
        perfect schedule: after warmup, every slot matches all ports."""
        s = IslipScheduler(4, 4, iterations=1)
        demand = [set(range(4))] * 4
        sizes = [len(s.schedule(demand)) for _ in range(12)]
        assert all(size == 4 for size in sizes[4:])

    def test_deterministic(self):
        a = IslipScheduler(4, 4)
        b = IslipScheduler(4, 4)
        d = [{0, 1}, {1}, {2, 3}, {0, 3}]
        assert a.schedule(d) == b.schedule(d)

    def test_wrong_demand_length_rejected(self):
        s = IslipScheduler(3, 3)
        with pytest.raises(ValueError):
            s.schedule([set()])

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            IslipScheduler(2, 2, iterations=0)

    def test_rr_pick_wraps(self):
        assert IslipScheduler._rr_pick([0, 2], ptr=1, modulo=4) == 2
        assert IslipScheduler._rr_pick([0, 2], ptr=3, modulo=4) == 0
