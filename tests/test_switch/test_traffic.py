"""Tests for switch traffic generators."""

import pytest

from repro.switch import bernoulli_uniform, diagonal, hotspot


class TestBernoulliUniform:
    def test_load_zero_silent(self):
        gen = bernoulli_uniform(8, 0.0, seed=1)
        assert all(gen(t) == [] for t in range(20))

    def test_load_one_every_input(self):
        gen = bernoulli_uniform(8, 1.0, seed=2)
        for t in range(5):
            assert len(gen(t)) == 8

    def test_mean_rate(self):
        gen = bernoulli_uniform(16, 0.5, seed=3)
        total = sum(len(gen(t)) for t in range(500))
        assert abs(total / (500 * 16) - 0.5) < 0.05

    def test_destinations_in_range(self):
        gen = bernoulli_uniform(4, 0.8, seed=4)
        for t in range(50):
            for i, j in gen(t):
                assert 0 <= i < 4 and 0 <= j < 4

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            bernoulli_uniform(4, 1.5)

    def test_determinism(self):
        a = bernoulli_uniform(8, 0.5, seed=5)
        b = bernoulli_uniform(8, 0.5, seed=5)
        assert [a(t) for t in range(10)] == [b(t) for t in range(10)]


class TestDiagonal:
    def test_destinations_near_diagonal(self):
        gen = diagonal(8, 1.0, seed=6)
        for t in range(50):
            for i, j in gen(t):
                assert j in (i, (i + 1) % 8)

    def test_split_ratio(self):
        gen = diagonal(8, 1.0, seed=7)
        same = other = 0
        for t in range(500):
            for i, j in gen(t):
                if j == i:
                    same += 1
                else:
                    other += 1
        assert 1.5 < same / other < 2.7  # nominal ratio 2:1


class TestHotspot:
    def test_hot_output_share(self):
        gen = hotspot(8, 1.0, hot_fraction=0.5, seed=8)
        hot = total = 0
        for t in range(500):
            for _, j in gen(t):
                total += 1
                hot += j == 0
        assert abs(hot / total - 0.5) < 0.12  # output 0 also gets uniform share

    def test_zero_fraction_roughly_uniform(self):
        gen = hotspot(8, 1.0, hot_fraction=0.0, seed=9)
        counts = [0] * 8
        for t in range(400):
            for _, j in gen(t):
                counts[j] += 1
        assert max(counts) < 3 * min(c for c in counts if c)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            hotspot(4, 0.5, hot_fraction=1.5)
