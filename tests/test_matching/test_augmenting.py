"""Unit + property tests for augmenting-path machinery (Lemmas 3.4/3.5)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graphs import Graph, cycle_graph, path_graph
from repro.matching import (
    Matching,
    apply_paths,
    augmenting_paths_maximal_set,
    find_augmenting_paths_upto,
    is_augmenting_path,
    maximum_matching_size,
    shortest_augmenting_path_length,
    symmetric_difference_components,
)
from repro.matching.blossom import maximum_matching_blossom

from tests.conftest import matchable


class TestIsAugmentingPath:
    def test_single_edge(self, p4):
        m = Matching(p4)
        assert is_augmenting_path(p4, m, [0, 1])

    def test_length_three(self, p4):
        m = Matching(p4, [(1, 2)])
        assert is_augmenting_path(p4, m, [0, 1, 2, 3])

    def test_matched_endpoint_rejected(self, p4):
        m = Matching(p4, [(0, 1)])
        assert not is_augmenting_path(p4, m, [1, 2])
        assert is_augmenting_path(p4, m, [2, 3])

    def test_even_length_rejected(self, p4):
        m = Matching(p4, [(1, 2)])
        assert not is_augmenting_path(p4, m, [0, 1, 2])

    def test_wrong_alternation_rejected(self, p4):
        m = Matching(p4)
        # (1,2) should be matched in an alternating path of length 3.
        assert not is_augmenting_path(p4, m, [0, 1, 2, 3])

    def test_non_edge_rejected(self, p4):
        m = Matching(p4)
        assert not is_augmenting_path(p4, m, [0, 2])

    def test_repeat_vertex_rejected(self, triangle):
        m = Matching(triangle)
        assert not is_augmenting_path(triangle, m, [0, 1, 0])


class TestEnumeration:
    def test_empty_matching_paths_are_edges(self, p4):
        m = Matching(p4)
        paths = find_augmenting_paths_upto(p4, m, 1)
        assert paths == [(0, 1), (1, 2), (2, 3)]

    def test_length3_path(self, p4):
        m = Matching(p4, [(1, 2)])
        assert find_augmenting_paths_upto(p4, m, 3) == [(0, 1, 2, 3)]

    def test_canonical_dedup(self):
        # A path enumerated from both endpoints appears once.
        g = path_graph(2)
        paths = find_augmenting_paths_upto(g, Matching(g), 1)
        assert paths == [(0, 1)]

    def test_respects_length_bound(self, p4):
        m = Matching(p4, [(1, 2)])
        assert find_augmenting_paths_upto(p4, m, 1) == []

    def test_perfect_matching_no_paths(self):
        g = path_graph(4)
        m = Matching(g, [(0, 1), (2, 3)])
        assert find_augmenting_paths_upto(g, m, 9) == []

    def test_odd_cycle(self, triangle):
        m = Matching(triangle, [(0, 1)])
        assert find_augmenting_paths_upto(triangle, m, 3) == []


class TestShortestLength:
    def test_bipartite_exact(self):
        g = path_graph(6)
        m = Matching(g, [(1, 2), (3, 4)])
        assert shortest_augmenting_path_length(g, m) == 5

    def test_none_when_maximum(self):
        g = path_graph(4)
        m = Matching(g, [(0, 1), (2, 3)])
        assert shortest_augmenting_path_length(g, m) is None

    def test_general_graph_bounded(self):
        g = cycle_graph(5)
        m = Matching(g, [(0, 1)])
        assert shortest_augmenting_path_length(g, m) == 1  # (2,3) or (3,4)

    def test_length_one_bipartite(self):
        g = path_graph(2)
        assert shortest_augmenting_path_length(g, Matching(g)) == 1


class TestMaximalSet:
    def test_maximality(self, small_random):
        m = Matching(small_random)
        chosen = augmenting_paths_maximal_set(small_random, m, 1)
        used = {v for p in chosen for v in p}
        for p in find_augmenting_paths_upto(small_random, m, 1):
            assert used.intersection(p), f"{p} disjoint from selection"

    def test_disjointness(self, small_random):
        m = Matching(small_random)
        chosen = augmenting_paths_maximal_set(small_random, m, 3)
        used = [v for p in chosen for v in p]
        assert len(used) == len(set(used))

    def test_rng_changes_selection_order(self, small_random):
        m = Matching(small_random)
        det = augmenting_paths_maximal_set(small_random, m, 1)
        rnd = augmenting_paths_maximal_set(
            small_random, m, 1, rng=np.random.default_rng(5)
        )
        # Both maximal, may differ; sizes can differ by at most factors.
        assert det and rnd


class TestApplyPaths:
    def test_apply_grows_matching(self, p4):
        m = Matching(p4, [(1, 2)])
        m2 = apply_paths(m, [(0, 1, 2, 3)])
        assert len(m2) == 2

    def test_conflicting_paths_rejected(self):
        g = path_graph(3)
        m = Matching(g)
        with pytest.raises(ValueError, match="conflict"):
            apply_paths(m, [(0, 1), (1, 2)])

    def test_non_augmenting_rejected(self, p4):
        m = Matching(p4)
        with pytest.raises(ValueError, match="not an augmenting path"):
            apply_paths(m, [(0, 1, 2, 3)])

    def test_empty_apply_identity(self, p4):
        m = Matching(p4, [(0, 1)])
        assert apply_paths(m, []) == m


class TestSymmetricDifferenceComponents:
    def test_single_augmenting_path(self, p4):
        m = Matching(p4, [(1, 2)])
        mstar = Matching(p4, [(0, 1), (2, 3)])
        comps = symmetric_difference_components(m, mstar)
        assert len(comps) == 1
        assert comps[0]["kind"] == "path"
        assert comps[0]["augmenting"]

    def test_cycle_component(self):
        g = cycle_graph(4)
        m = Matching(g, [(0, 1), (2, 3)])
        mstar = Matching(g, [(1, 2), (0, 3)])
        comps = symmetric_difference_components(m, mstar)
        assert len(comps) == 1
        assert comps[0]["kind"] == "cycle"
        assert len(comps[0]["vertices"]) == 4

    def test_identical_matchings_empty(self, p4):
        m = Matching(p4, [(1, 2)])
        assert symmetric_difference_components(m, m.copy()) == []

    @given(matchable(max_n=10))
    @settings(max_examples=60)
    def test_components_cover_every_sym_diff_vertex(self, gm):
        g, edges = gm
        m = Matching(g, edges)
        mstar = maximum_matching_blossom(g)
        comps = symmetric_difference_components(m, mstar)
        covered = sorted(v for c in comps for v in c["vertices"])
        sym = {
            v
            for e in set(map(tuple, m.edges())) ^ set(map(tuple, mstar.edges()))
            for v in e
        }
        assert sorted(sym) == covered

    @given(matchable(max_n=10))
    @settings(max_examples=60)
    def test_augmenting_component_count_bounds_deficit(self, gm):
        """|M*| − |M| = number of augmenting paths in M ⊕ M*."""
        g, edges = gm
        m = Matching(g, edges)
        mstar = maximum_matching_blossom(g)
        comps = symmetric_difference_components(m, mstar)
        aug = sum(1 for c in comps if c["augmenting"])
        assert aug == len(mstar) - len(m)


class TestHKLemmas:
    """Empirical checks of the Hopcroft–Karp facts the paper relies on."""

    @given(matchable(max_n=10))
    @settings(max_examples=60)
    def test_lemma_35_bound(self, gm):
        """Lemma 3.5: shortest aug path 2k−1 ⟹ |M| ≥ (1−1/k)|M*|."""
        g, edges = gm
        m = Matching(g, edges)
        length = shortest_augmenting_path_length(g, m, upto=9)
        if length is None:
            return
        k = (length + 1) // 2
        opt = maximum_matching_size(g)
        assert len(m) >= (1 - 1 / k) * opt - 1e-9

    @given(matchable(max_n=10))
    @settings(max_examples=60)
    def test_lemma_34_phase_progress(self, gm):
        """Lemma 3.4: maximal shortest-length set strictly raises the
        shortest augmenting-path length."""
        g, edges = gm
        m = Matching(g, edges)
        length = shortest_augmenting_path_length(g, m, upto=7)
        if length is None:
            return
        chosen = augmenting_paths_maximal_set(g, m, length)
        m2 = apply_paths(m, chosen)
        new_len = shortest_augmenting_path_length(g, m2, upto=9)
        assert new_len is None or new_len > length
