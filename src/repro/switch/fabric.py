"""The switch fabric: virtual output queues and the cell-slot loop.

Standard input-queued switch model (as in the PIM [3] and iSLIP [23]
papers the reproduction's introduction cites):

* N input ports, N output ports;
* each input keeps one FIFO *virtual output queue* (VOQ) per output,
  eliminating head-of-line blocking;
* per cell slot the fabric can realize one partial permutation — a
  matching between inputs and outputs — and transfers one cell along
  every matched pair.

The scheduler's job each slot is exactly the paper's problem: find a
large matching in the bipartite demand graph of non-empty VOQs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class SwitchStats:
    """Aggregate measurements over a simulation run."""

    slots: int = 0
    arrivals: int = 0
    departures: int = 0
    #: sum over departed cells of (departure slot − arrival slot)
    total_delay: int = 0
    #: cells still queued when the run ended
    backlog: int = 0
    #: number of ports (set by the owning Switch)
    ports: int = 0
    #: per-slot matching sizes (for mean matching size diagnostics)
    match_sizes: list[int] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Departures per port per slot (1.0 = fully loaded output)."""
        if self.slots == 0 or self.ports == 0:
            return 0.0
        return self.departures / (self.slots * self.ports)

    @property
    def mean_delay(self) -> float:
        """Mean queueing delay of departed cells, in slots."""
        if self.departures == 0:
            return 0.0
        return self.total_delay / self.departures

    @property
    def mean_match_size(self) -> float:
        """Average matching size per slot."""
        if not self.match_sizes:
            return 0.0
        return sum(self.match_sizes) / len(self.match_sizes)


class Switch:
    """An N×N input-queued switch with per-(input, output) VOQs."""

    def __init__(self, ports: int) -> None:
        if ports < 1:
            raise ValueError("need at least one port")
        self.ports = ports
        # voq[i][j] holds the arrival slots of queued cells i -> j.
        self.voq: list[list[deque[int]]] = [
            [deque() for _ in range(ports)] for _ in range(ports)
        ]
        self.stats = SwitchStats(ports=ports)

    def enqueue(self, i: int, j: int, slot: int) -> None:
        """A cell destined to output ``j`` arrives at input ``i``."""
        self.voq[i][j].append(slot)
        self.stats.arrivals += 1

    def demand(self) -> list[set[int]]:
        """``demand[i]`` = outputs with a non-empty VOQ at input ``i``."""
        return [
            {j for j in range(self.ports) if self.voq[i][j]}
            for i in range(self.ports)
        ]

    def occupancy(self) -> list[dict[int, float]]:
        """``occupancy[i][j]`` = queued cells in VOQ (i, j), non-empty only.

        The weight function MWM-style schedulers maximize over.
        """
        return [
            {
                j: float(len(self.voq[i][j]))
                for j in range(self.ports)
                if self.voq[i][j]
            }
            for i in range(self.ports)
        ]

    def transfer(self, matches: list[tuple[int, int]], slot: int) -> int:
        """Move one cell along each matched (input, output) pair.

        Validates that ``matches`` is a partial permutation (the fabric
        constraint) and that matched VOQs are non-empty.  Returns the
        number of cells transferred.
        """
        seen_i: set[int] = set()
        seen_j: set[int] = set()
        moved = 0
        for i, j in matches:
            if i in seen_i or j in seen_j:
                raise ValueError(f"schedule is not a matching at ({i},{j})")
            seen_i.add(i)
            seen_j.add(j)
            q = self.voq[i][j]
            if not q:
                raise ValueError(f"scheduled empty VOQ ({i},{j})")
            arrived = q.popleft()
            self.stats.departures += 1
            self.stats.total_delay += slot - arrived
            moved += 1
        self.stats.match_sizes.append(moved)
        self.stats.slots += 1
        return moved

    def backlog(self) -> int:
        """Total queued cells across all VOQs."""
        return sum(len(q) for row in self.voq for q in row)
