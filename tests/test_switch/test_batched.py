"""Tests for the seed-axis batched switch engine (ISSUE 8).

The load-bearing property is per-lane *byte-identity*: one
`run_switch_batched` execution must produce, for every lane, exactly
the `SwitchStats` that a fresh sequential `run_switch_vectorized` run
with that lane's seed pair produces — across every scheduler × traffic
cell, including delay accounting, and regardless of chunking, lane
count, or mixed per-lane operating points.
"""

import numpy as np
import pytest

from repro.switch import (
    GreedyMaximalScheduler,
    IslipAdapter,
    MaxWeightScheduler,
    PaperScheduler,
    PimScheduler,
    WeightedPaperScheduler,
    batched_traffic,
    bernoulli_uniform,
    bursty,
    diagonal,
    hotspot,
    run_switch_batched,
    run_switch_vectorized,
)
from repro.switch.schedulers import MaxSizeScheduler
from repro.switch.traffic import BatchedChunkedTraffic

PORTS = 6
SEEDS = [11, 12, 13, 14]

TRAFFIC = {
    "bernoulli": lambda s: bernoulli_uniform(PORTS, 0.6, seed=s),
    "diagonal": lambda s: diagonal(PORTS, 0.5, seed=s),
    "bursty": lambda s: bursty(PORTS, 0.5, burst_len=6.0, seed=s),
    "hotspot": lambda s: hotspot(PORTS, 0.4, hot_fraction=0.3, seed=s),
}

SCHEDULERS = {
    "pim": lambda s: PimScheduler(PORTS, seed=s),
    "islip": lambda s: IslipAdapter(PORTS),
    "greedy": lambda s: GreedyMaximalScheduler(PORTS, seed=s),
    "paper": lambda s: PaperScheduler(PORTS, k=3, seed=s),
    "maxsize": lambda s: MaxSizeScheduler(PORTS),
    "mwm": lambda s: MaxWeightScheduler(PORTS),
    "wpaper": lambda s: WeightedPaperScheduler(PORTS, eps=0.1),
}


def sequential(tname, sname, seeds=SEEDS, slots=120, warmup=30):
    return [
        run_switch_vectorized(
            PORTS, TRAFFIC[tname](s), SCHEDULERS[sname](s),
            slots=slots, warmup=warmup,
        )
        for s in seeds
    ]


def batched(tname, sname, seeds=SEEDS, slots=120, warmup=30, chunk_slots=37):
    return run_switch_batched(
        PORTS,
        batched_traffic(TRAFFIC[tname], seeds),
        [SCHEDULERS[sname](s) for s in seeds],
        slots=slots,
        warmup=warmup,
        chunk_slots=chunk_slots,
    )


@pytest.mark.parametrize("tname", sorted(TRAFFIC))
@pytest.mark.parametrize("sname", sorted(SCHEDULERS))
class TestLaneIdentity:
    def test_identical_stats_per_lane(self, tname, sname):
        """Every lane == its fresh sequential run, warmup included."""
        assert batched(tname, sname) == sequential(tname, sname)


class TestBatchingInvariants:
    def test_chunk_size_invariance_along_seed_axis(self):
        """Chunking is an implementation detail on the batched path too."""
        reference = batched("bernoulli", "greedy", chunk_slots=37)
        for chunk in (1, 7, 120, 4096):
            assert batched(
                "bernoulli", "greedy", chunk_slots=chunk
            ) == reference

    def test_mixed_per_lane_loads(self):
        """Lanes may run different models/loads; identity is per lane."""
        lane_specs = [
            bernoulli_uniform(PORTS, 0.3, seed=1),
            bernoulli_uniform(PORTS, 0.9, seed=2),
            bursty(PORTS, 0.5, burst_len=4.0, seed=3),
            hotspot(PORTS, 0.4, hot_fraction=0.5, seed=4),
        ]
        remake = [
            bernoulli_uniform(PORTS, 0.3, seed=1),
            bernoulli_uniform(PORTS, 0.9, seed=2),
            bursty(PORTS, 0.5, burst_len=4.0, seed=3),
            hotspot(PORTS, 0.4, hot_fraction=0.5, seed=4),
        ]
        scheds = [GreedyMaximalScheduler(PORTS, seed=s) for s in range(4)]
        bat = run_switch_batched(
            PORTS, lane_specs, scheds, slots=150, warmup=20, chunk_slots=41
        )
        seq = [
            run_switch_vectorized(
                PORTS, remake[i], GreedyMaximalScheduler(PORTS, seed=i),
                slots=150, warmup=20,
            )
            for i in range(4)
        ]
        assert bat == seq

    def test_single_lane_degenerates_to_vectorized(self):
        """num_seeds=1 is exactly one vectorized run."""
        bat = batched("bursty", "pim", seeds=[5])
        assert bat == sequential("bursty", "pim", seeds=[5])

    def test_scheduler_state_carries_over(self):
        """A batched run leaves each scheduler where sequential runs do.

        Running the same scheduler objects through a second (sequential)
        run must match two back-to-back sequential runs — the tape
        matrix / pointer state is written back per lane on finalize.
        """
        for sname in ("greedy", "pim", "islip"):
            scheds = [SCHEDULERS[sname](s) for s in SEEDS]
            run_switch_batched(
                PORTS, batched_traffic(TRAFFIC["bernoulli"], SEEDS),
                scheds, slots=90, warmup=10, chunk_slots=29,
            )
            second_after_batched = [
                run_switch_vectorized(
                    PORTS, TRAFFIC["bernoulli"](s + 50), scheds[i],
                    slots=90, warmup=10,
                )
                for i, s in enumerate(SEEDS)
            ]
            fresh = [SCHEDULERS[sname](s) for s in SEEDS]
            for i, s in enumerate(SEEDS):
                run_switch_vectorized(
                    PORTS, TRAFFIC["bernoulli"](s), fresh[i],
                    slots=90, warmup=10,
                )
            second_sequential = [
                run_switch_vectorized(
                    PORTS, TRAFFIC["bernoulli"](s + 50), fresh[i],
                    slots=90, warmup=10,
                )
                for i, s in enumerate(SEEDS)
            ]
            assert second_after_batched == second_sequential, sname

    def test_zero_slots_with_warmup(self):
        assert batched(
            "bernoulli", "greedy", slots=0, warmup=40
        ) == sequential("bernoulli", "greedy", slots=0, warmup=40)


class TestValidation:
    def test_rejects_shared_scheduler_instance(self):
        sched = GreedyMaximalScheduler(PORTS, seed=0)
        with pytest.raises(ValueError, match="own scheduler instance"):
            run_switch_batched(
                PORTS,
                batched_traffic(TRAFFIC["bernoulli"], [0, 1]),
                [sched, sched],
                slots=10,
            )

    def test_rejects_lane_count_mismatch(self):
        with pytest.raises(ValueError, match="traffic lanes"):
            run_switch_batched(
                PORTS,
                batched_traffic(TRAFFIC["bernoulli"], [0, 1, 2]),
                [GreedyMaximalScheduler(PORTS, seed=s) for s in (0, 1)],
                slots=10,
            )

    def test_rejects_port_mismatch(self):
        with pytest.raises(ValueError, match="ports"):
            run_switch_batched(
                PORTS + 1,
                batched_traffic(TRAFFIC["bernoulli"], [0, 1]),
                [GreedyMaximalScheduler(PORTS + 1, seed=s) for s in (0, 1)],
                slots=10,
            )

    def test_rejects_empty_lane_list(self):
        with pytest.raises(ValueError, match="at least one scheduler lane"):
            run_switch_batched(
                PORTS, batched_traffic(TRAFFIC["bernoulli"], [0]), [],
                slots=10,
            )
        with pytest.raises(ValueError, match="at least one traffic lane"):
            BatchedChunkedTraffic([])

    def test_rejects_mixed_port_traffic_lanes(self):
        with pytest.raises(ValueError, match="share a port count"):
            BatchedChunkedTraffic(
                [bernoulli_uniform(4, 0.5, seed=0),
                 bernoulli_uniform(5, 0.5, seed=1)]
            )
