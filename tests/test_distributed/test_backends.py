"""Unit tests for the execution-backend layer (ISSUE 3).

Backend *equivalence* on whole algorithms lives in
``tests/test_backend_identity.py``; this module covers the protocol,
the registry, the ArrayContext accounting/segment primitives, and the
ArrayBackend's engine-contract edges (budget, CONGEST, idempotency).
"""

import numpy as np
import pytest

from repro.baselines.israeli_itai import israeli_itai_array, israeli_itai_program
from repro.baselines.luby_mis import luby_mis_array, luby_mis_program
from repro.distributed import (
    BACKENDS,
    ArrayBackend,
    ArrayContext,
    CongestViolation,
    ExecutionBackend,
    GeneratorBackend,
    Network,
    RunResult,
    bit_size,
    congest_with_bound,
    int_payload_bits,
    resolve_backend,
    run_program,
)
from repro.distributed.models import LOCAL
from repro.graphs import Graph, gnp_random, path_graph, star_graph


def _ctx(g, seed=0, model=LOCAL, max_rounds=1_000_000):
    return ArrayContext(
        g, seed, model, model.limit(g.n, g.max_degree()), RunResult(), max_rounds
    )


class TestProtocolAndRegistry:
    def test_generator_backend_is_network(self):
        assert GeneratorBackend is Network

    def test_both_backends_conform(self):
        g = path_graph(3)
        gen = Network(g, luby_mis_program, params={"n": g.n})
        arr = ArrayBackend(g, luby_mis_array, params={"n": g.n})
        assert isinstance(gen, ExecutionBackend)
        assert isinstance(arr, ExecutionBackend)

    def test_registry_contents(self):
        assert BACKENDS == {"generator": Network, "array": ArrayBackend}

    def test_resolve_known(self):
        assert resolve_backend("generator") is Network
        assert resolve_backend("array") is ArrayBackend

    def test_resolve_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cuda")

    def test_run_program_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_program(
                path_graph(2),
                backend="nope",
                generator_program=luby_mis_program,
                array_program=luby_mis_array,
            )

    def test_charge_rounds_on_both(self):
        g = path_graph(2)
        for net in (
            Network(g, israeli_itai_program),
            ArrayBackend(g, israeli_itai_array),
        ):
            net.charge_rounds(5)
            assert net.result.charged_rounds == 5


class TestIntPayloadBits:
    @pytest.mark.parametrize(
        "value", [0, 1, 2, 3, 7, 8, 255, 256, -1, -17, 2**40, 2**62, -(2**62)]
    )
    def test_matches_bit_size(self, value):
        assert int_payload_bits([value])[0] == bit_size(value)

    def test_vectorized_batch(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(-(2**62), 2**62, size=500)
        expect = [bit_size(int(v)) for v in vals]
        assert int_payload_bits(vals).tolist() == expect


class TestArrayContextSegments:
    def test_masked_degrees_brute_force(self):
        g = gnp_random(40, 0.15, seed=3)
        ctx = _ctx(g)
        rng = np.random.default_rng(1)
        for _ in range(5):
            mask = rng.random(g.n) < 0.5
            expect = [
                sum(mask[u] for u in g.neighbors(v)) for v in range(g.n)
            ]
            assert ctx.masked_degrees(mask).tolist() == expect

    def test_neighbor_any_matches_degrees(self):
        g = gnp_random(30, 0.2, seed=4)
        ctx = _ctx(g)
        mask = np.zeros(g.n, dtype=bool)
        mask[[0, 7, 13]] = True
        assert (
            ctx.neighbor_any(mask) == (ctx.masked_degrees(mask) > 0)
        ).all()

    def test_neighbor_max_brute_force(self):
        g = gnp_random(35, 0.2, seed=5)
        ctx = _ctx(g)
        rng = np.random.default_rng(2)
        values = rng.integers(1, 1000, size=g.n)
        mask = rng.random(g.n) < 0.6
        got = ctx.neighbor_max(values, mask=mask)
        for v in range(g.n):
            vals = [values[u] for u in g.neighbors(v) if mask[u]]
            assert got[v] == (max(vals) if vals else 0), v

    def test_neighbor_max_unmasked_and_isolated(self):
        # Vertex 3 is isolated; reduceat's empty-segment quirk must not
        # leak the next segment's head into it.
        g = Graph(5, [(0, 1), (1, 2), (2, 4)])
        ctx = _ctx(g)
        values = np.array([10, 20, 30, 99, 40], dtype=np.int64)
        got = ctx.neighbor_max(values)
        assert got.tolist() == [20, 30, 40, 0, 30]

    def test_empty_graph_helpers(self):
        ctx = _ctx(Graph(4))
        mask = np.ones(4, dtype=bool)
        assert ctx.masked_degrees(mask).tolist() == [0, 0, 0, 0]
        assert ctx.neighbor_max(np.arange(4)).tolist() == [0, 0, 0, 0]

    def test_trailing_isolated_vertices(self):
        # Regression (ISSUE 5 review): trailing degree-0 vertices used
        # to clamp the reduceat starts, silently truncating the last
        # non-empty segment — the last non-isolated vertex (degree >= 2)
        # lost its final half-edge from every reduction.
        g = Graph(6, [(0, 1), (0, 2), (1, 2)])  # vertices 3-5 isolated
        ctx = _ctx(g)
        mask = np.ones(6, dtype=bool)
        assert ctx.masked_degrees(mask).tolist() == [2, 2, 2, 0, 0, 0]
        values = np.array([5, 7, 9, 1, 1, 1], dtype=np.int64)
        assert ctx.neighbor_max(values).tolist() == [9, 9, 7, 0, 0, 0]
        from repro.distributed.backends import BatchedArrayContext

        bctx = BatchedArrayContext(g, [0, 1], LOCAL, None, 1_000_000)
        bmask = np.ones((2, 6), dtype=bool)
        bmask[1, 1] = False
        assert bctx.masked_degrees(bmask).tolist() == [
            [2, 2, 2, 0, 0, 0],
            [1, 2, 1, 0, 0, 0],
        ]
        bvals = np.tile(values, (2, 1))
        assert bctx.neighbor_max(bvals, mask=bmask).tolist() == [
            [9, 9, 7, 0, 0, 0],
            [9, 9, 5, 0, 0, 0],
        ]


class TestArrayContextAccounting:
    def test_account_groups_totals(self):
        ctx = _ctx(path_graph(4))
        ctx.account_groups([5, 8], [2, 3])
        res = ctx.result
        assert res.total_messages == 5
        assert res.total_bits == 5 * 2 + 8 * 3
        assert res.max_message_bits == 8

    def test_empty_groups_dropped(self):
        # A send_many to zero recipients neither counts nor peaks.
        ctx = _ctx(path_graph(4))
        ctx.account_groups([999], [0])
        assert ctx.result.total_messages == 0
        assert ctx.result.max_message_bits == 0

    def test_congest_violation(self):
        g = path_graph(4)
        model = congest_with_bound(6)
        ctx = ArrayContext(g, 0, model, 6, RunResult(), 1_000_000)
        with pytest.raises(CongestViolation, match="exceeds"):
            ctx.account_groups([7], [1])

    def test_round_counted_only_on_yield(self):
        ctx = _ctx(path_graph(2))
        ctx.end_step(False)
        assert ctx.result.rounds == 0
        ctx.end_step(True)
        assert ctx.result.rounds == 1

    def test_begin_step_budget(self):
        ctx = _ctx(path_graph(2), max_rounds=0)
        with pytest.raises(RuntimeError, match="still running"):
            ctx.begin_step(2)
        ctx.begin_step(0)  # no live nodes: drained, never raises

    def test_rngs_match_network_spawn(self):
        g = path_graph(3)
        ctx = _ctx(g, seed=42)
        net = Network(g, israeli_itai_program, seed=42)
        for v in range(g.n):
            assert (
                ctx.rngs[v].integers(0, 2**32)
                == net.nodes[v].rng.integers(0, 2**32)
            )


class TestArrayBackendContract:
    def test_budget_error_parity(self):
        g = gnp_random(20, 0.3, seed=1)
        for backend in ("generator", "array"):
            with pytest.raises(RuntimeError, match="still running"):
                run_program(
                    g,
                    backend=backend,
                    generator_program=luby_mis_program,
                    array_program=luby_mis_array,
                    params={"n": g.n},
                    max_rounds=1,
                )

    def test_congest_violation_parity(self):
        # Luby numbers on a 40-node star need ~22 bits; a 10-bit budget
        # must trip both engines.
        g = star_graph(40)
        model = congest_with_bound(10)
        for backend in ("generator", "array"):
            with pytest.raises(CongestViolation):
                run_program(
                    g,
                    backend=backend,
                    generator_program=luby_mis_program,
                    array_program=luby_mis_array,
                    params={"n": g.n},
                    model=model,
                )

    def test_run_idempotent(self):
        g = gnp_random(15, 0.3, seed=2)
        net = ArrayBackend(g, luby_mis_array, params={"n": g.n}, seed=3)
        first = net.run()
        again = net.run()
        assert again is first
        assert first.rounds > 0

    def test_prepare_returns_self_and_preserves_results(self):
        g = gnp_random(15, 0.3, seed=2)
        plain = ArrayBackend(g, luby_mis_array, params={"n": g.n}, seed=3).run()
        warmed = (
            ArrayBackend(g, luby_mis_array, params={"n": g.n}, seed=3)
            .prepare()
            .run()
        )
        assert plain == warmed

    def test_outputs_cover_all_nodes(self):
        g = Graph(5, [(0, 1)])
        res = ArrayBackend(g, israeli_itai_array, seed=0).run()
        assert sorted(res.outputs) == [0, 1, 2, 3, 4]

    def test_program_without_outputs_fills_none(self):
        def silent(ctx):
            return None

        res = ArrayBackend(path_graph(3), silent).run()
        assert res.outputs == {0: None, 1: None, 2: None}
        assert res.rounds == 0
