"""Plain-text edge-list IO.

Format (one record per line, ``#`` comments allowed)::

    n <num_vertices>
    e <u> <v> [weight]

Weights are either present on every edge line or on none.
"""

from __future__ import annotations

from pathlib import Path

from repro.graphs.graph import Graph


def write_edgelist(g: Graph, path: str | Path) -> None:
    """Serialize ``g`` to ``path`` in the edge-list format above."""
    path = Path(path)
    lines = [f"n {g.n}"]
    for u, v, w in g.iter_weighted_edges():
        if g.weighted:
            lines.append(f"e {u} {v} {w!r}")
        else:
            lines.append(f"e {u} {v}")
    path.write_text("\n".join(lines) + "\n")


def read_edgelist(path: str | Path) -> Graph:
    """Parse a graph written by :func:`write_edgelist`."""
    path = Path(path)
    n: int | None = None
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    saw_unweighted = False
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0] == "n":
            if n is not None:
                raise ValueError(f"{path}:{lineno}: duplicate 'n' line")
            n = int(parts[1])
        elif parts[0] == "e":
            if len(parts) == 3:
                saw_unweighted = True
            elif len(parts) == 4:
                weights.append(float(parts[3]))
            else:
                raise ValueError(f"{path}:{lineno}: malformed edge line {raw!r}")
            edges.append((int(parts[1]), int(parts[2])))
        else:
            raise ValueError(f"{path}:{lineno}: unknown record {parts[0]!r}")
    if n is None:
        raise ValueError(f"{path}: missing 'n' line")
    if weights and saw_unweighted:
        raise ValueError(f"{path}: mixed weighted and unweighted edge lines")
    return Graph(n, edges, weights if weights else None)
