"""Seed-batch routing: chunked dispatch == per-seed dispatch, record-wise.

``ParallelRunner.repeat/sweep(seed_batch=k)`` hands whole seed chunks
to a batch-aware experiment fn (one process-level task per chunk).  A
correct batched fn yields records identical to the classic per-seed
mode for any chunk size and worker count — which these tests assert
with plain arithmetic fns, with a genuinely batched workload
(:func:`luby_mis_batched` on a fixed graph), and through the scenario
matrix / CLI plumbing.

The cell functions live at module level because the >1-worker path
pickles them into the pool.
"""

import json

import pytest

from repro.analysis import ParallelRunner
from repro.analysis.scenarios import (
    run_scenario_cell,
    run_scenario_cell_batch,
    scenario_matrix,
)
from repro.baselines.luby_mis import luby_mis_batched
from repro.graphs import barabasi_albert


def measure(seed: int) -> dict[str, float]:
    return {"seed": float(seed), "sq": float(seed * seed)}


def measure_batch(seeds) -> list[dict[str, float]]:
    return [measure(s) for s in seeds]


def measure_point(seed: int, n: int) -> dict[str, float]:
    return {"v": float(n + seed), "seed": float(seed)}


def measure_point_batch(seeds, n: int) -> list[dict[str, float]]:
    return [measure_point(s, n) for s in seeds]


def bad_batch(seeds) -> list[dict[str, float]]:
    return [measure(s) for s in seeds[:-1]]  # drops a record


def luby_cell(seed: int, n: int) -> dict[str, float]:
    g = barabasi_albert(n, 3, seed=0)  # fixed graph: the batchable case
    from repro.baselines.luby_mis import luby_mis

    mis, res = luby_mis(g, seed=seed)
    return {"mis": float(len(mis)), "rounds": float(res.rounds)}


def luby_cell_batch(seeds, n: int) -> list[dict[str, float]]:
    g = barabasi_albert(n, 3, seed=0)
    return [
        {"mis": float(len(mis)), "rounds": float(res.rounds)}
        for mis, res in luby_mis_batched(g, seeds)
    ]


POINTS = [{"n": 10}, {"n": 20}, {"n": 30}]


def _dump(results):
    return json.dumps([r.to_dict() for r in results], sort_keys=True)


class TestRepeatSeedBatch:
    @pytest.mark.parametrize("batch", [1, 2, 3, 7, 100])
    def test_records_identical_to_per_seed_mode(self, batch):
        runner = ParallelRunner(workers=1)
        plain = runner.repeat(measure, range(7))
        batched = runner.repeat(measure_batch, range(7), seed_batch=batch)
        assert plain.records == batched.records

    def test_parallel_workers_identical(self):
        one = ParallelRunner(workers=1).repeat(
            measure_batch, range(10), seed_batch=3
        )
        many = ParallelRunner(workers=3).repeat(
            measure_batch, range(10), seed_batch=3
        )
        assert one.records == many.records

    def test_wrong_record_count_raises(self):
        with pytest.raises(ValueError, match="record"):
            ParallelRunner(workers=1).repeat(bad_batch, range(4), seed_batch=4)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="seed_batch"):
            ParallelRunner(workers=1).repeat(measure_batch, range(4), seed_batch=0)


class TestSweepSeedBatch:
    @pytest.mark.parametrize("batch", [1, 2, 5])
    def test_records_identical_to_per_seed_mode(self, batch):
        runner = ParallelRunner(workers=1)
        plain = runner.sweep(measure_point, POINTS, seeds=[1, 2, 3, 4])
        batched = runner.sweep(
            measure_point_batch, POINTS, seeds=[1, 2, 3, 4], seed_batch=batch
        )
        assert _dump(plain) == _dump(batched)

    def test_spawned_seeds_and_workers(self):
        one = ParallelRunner(workers=1).sweep(
            measure_point_batch, POINTS, root_seed=5, seeds_per_cell=4,
            seed_batch=2,
        )
        many = ParallelRunner(workers=2).sweep(
            measure_point_batch, POINTS, root_seed=5, seeds_per_cell=4,
            seed_batch=2,
        )
        plain = ParallelRunner(workers=1).sweep(
            measure_point, POINTS, root_seed=5, seeds_per_cell=4
        )
        assert _dump(one) == _dump(many) == _dump(plain)

    def test_genuinely_batched_workload(self):
        # A fixed-graph cell executes its chunk as ONE batched array
        # run; records must equal the per-seed generator-backend runs.
        runner = ParallelRunner(workers=1)
        plain = runner.sweep(luby_cell, [{"n": 30}], seeds=[0, 1, 2, 3])
        batched = runner.sweep(
            luby_cell_batch, [{"n": 30}], seeds=[0, 1, 2, 3], seed_batch=4
        )
        assert _dump(plain) == _dump(batched)


class TestScenarioSeedBatch:
    def test_matrix_records_identical(self):
        kwargs = dict(
            scenarios=["gnp", "tree"], algos=["generic_mcm"],
            size=12, seeds=[0, 1, 2],
        )
        plain = scenario_matrix(**kwargs)
        batched = scenario_matrix(**kwargs, seed_batch=2)
        assert _dump(plain) == _dump(batched)

    def test_cell_batch_matches_cell(self):
        recs = run_scenario_cell_batch(
            [0, 1], "gnp", "generic_mcm", size=12, backend="array"
        )
        assert recs == [
            run_scenario_cell("gnp", "generic_mcm", size=12, seed=s,
                              backend="array")
            for s in (0, 1)
        ]

    def test_cli_seed_batch(self, capsys):
        from repro.cli import main

        assert main([
            "scenarios", "--size", "12", "--repeats", "2", "--family", "gnp",
            "--algo", "generic_mcm", "--seed-batch", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario matrix" in out

    def test_cli_rejects_bad_seed_batch(self, capsys):
        from repro.cli import main

        assert main([
            "scenarios", "--size", "12", "--seed-batch", "0",
        ]) == 1
        assert "--seed-batch" in capsys.readouterr().err
