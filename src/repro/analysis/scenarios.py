"""Scenario matrix: every core algorithm × every generator family.

The paper's theorems are "for all graphs" statements; this module
pins the experiment surface to a named catalog of graph families (the
classical random models plus the scale-free / small-world / heavy-tail
/ Kronecker / adversarial families) and runs each core algorithm on
each, checking the returned matching is valid and meets its paper
bound against the exact oracles.

Everything here is module-level and picklable on purpose, so the
matrix can be fanned out by :class:`repro.analysis.runner.ParallelRunner`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.analysis.runner import ExperimentResult, ParallelRunner
from repro.analysis.tables import format_table
from repro.baselines.lps_mwm import lps_mwm
from repro.core import (
    bipartite_mcm,
    general_mcm,
    generic_mcm,
    kopt_mwm,
    weighted_mwm,
)
from repro.graphs import (
    Graph,
    barabasi_albert,
    bipartite_random,
    comb_graph,
    crown_graph,
    gnp_random,
    kronecker,
    lollipop_graph,
    planted_matching,
    powerlaw_configuration,
    random_tree,
    watts_strogatz,
)
from repro.graphs.weights import assign_uniform_weights
from repro.matching import (
    Matching,
    hopcroft_karp,
    maximum_matching_size,
    maximum_matching_weight,
)


def _s_gnp(size: int, seed: int) -> Graph:
    return gnp_random(size, min(1.0, 3.0 / size), seed=seed)


def _s_bipartite(size: int, seed: int) -> Graph:
    half = max(2, size // 2)
    return bipartite_random(half, half, min(1.0, 3.0 / half), seed=seed)[0]


def _s_tree(size: int, seed: int) -> Graph:
    return random_tree(size, seed=seed)


def _s_barabasi_albert(size: int, seed: int) -> Graph:
    return barabasi_albert(size, 2, seed=seed)


def _s_watts_strogatz(size: int, seed: int) -> Graph:
    return watts_strogatz(size, 4, 0.2, seed=seed)


def _s_powerlaw(size: int, seed: int) -> Graph:
    return powerlaw_configuration(size, 2.5, seed=seed)


def _s_kronecker(size: int, seed: int) -> Graph:
    power = max(2, min(6, (size - 1).bit_length()))
    return kronecker(power, seed=seed)


def _s_planted_matching(size: int, seed: int) -> Graph:
    n = size + (size % 2)
    return planted_matching(n, 2.0 / n, seed=seed)[0]


def _s_lollipop(size: int, seed: int) -> Graph:
    clique = max(4, size // 3)
    return lollipop_graph(clique, max(1, size - clique))


def _s_crown(size: int, seed: int) -> Graph:
    return crown_graph(max(3, size // 2))[0]


def _s_comb(size: int, seed: int) -> Graph:
    return comb_graph(max(2, size // 2))


#: name -> builder(size, seed) -> Graph.  Sizes are a *scale*, not an
#: exact vertex count (Kronecker rounds to a power of its initiator).
SCENARIOS: dict[str, Callable[[int, int], Graph]] = {
    "gnp": _s_gnp,
    "bipartite": _s_bipartite,
    "tree": _s_tree,
    "barabasi_albert": _s_barabasi_albert,
    "watts_strogatz": _s_watts_strogatz,
    "powerlaw_config": _s_powerlaw,
    "kronecker": _s_kronecker,
    "planted_matching": _s_planted_matching,
    "lollipop": _s_lollipop,
    "crown": _s_crown,
    "comb": _s_comb,
}

#: algorithm name -> (1 − 1/k)- or (½ − ε)-style guarantee it must meet.
ALGORITHMS: dict[str, float] = {
    "generic_mcm": 1.0 - 1.0 / 3.0,   # Thm 3.1 with k=2: 1 − 1/(k+1)
    "bipartite_mcm": 1.0 - 1.0 / 3.0,  # Thm 3.8 with k=3
    "general_mcm": 1.0 - 1.0 / 3.0,    # Thm 3.11 with k=3
    "weighted_mwm": 0.5 - 0.1,         # Thm 4.5 with ε=0.1
    "lps_mwm": 0.25,                   # the [18] black box: ¼-MWM
    "kopt_mwm": 1.0 - 1.0 / 3.0,       # Lemma 4.2 with k=2: k/(k+1)
}

#: algorithms with an array-program port; the rest fall back to the
#: generator backend when ``backend="array"`` is requested (recorded
#: per cell as ``array_backend`` plus the algorithm's name under
#: ``fallback_algo`` so artifacts stay self-describing).
ARRAY_PORTED: frozenset[str] = frozenset(
    {"generic_mcm", "weighted_mwm", "lps_mwm", "kopt_mwm"}
)


def build_scenario(name: str, size: int, seed: int) -> Graph:
    """Instantiate a catalog family at the given scale and seed."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; pick from {sorted(SCENARIOS)}"
        ) from None
    if size < 8:
        raise ValueError(
            f"scenario scale must be >= 8 (watts_strogatz needs n > 4, "
            f"barabasi_albert n > 3), got {size}"
        )
    return builder(size, seed)


def _check_matching(g: Graph, m: Matching) -> None:
    mates: dict[int, int] = {}
    for u, v in m.edges():
        if not g.has_edge(u, v):
            raise AssertionError(f"matched pair ({u},{v}) is not an edge")
        if u in mates or v in mates:
            raise AssertionError(f"vertex reused by matched edge ({u},{v})")
        mates[u] = v
        mates[v] = u


def run_scenario_cell(
    scenario: str, algo: str, size: int = 20, seed: int = 0,
    backend: str = "generator",
) -> dict[str, float | str]:
    """One matrix cell: build the graph, run the algorithm, check bounds.

    Returns ``value`` (matching size/weight), ``opt`` (exact oracle),
    ``ratio``, the paper ``bound`` for the cell's parameters,
    ``array_backend`` = 1.0 iff the cell actually executed on the
    array backend (requesting ``"array"`` for an algorithm without an
    array port falls back to the generator engine — the reference
    semantics — and records 0.0 **plus** the algorithm's name under
    ``fallback_algo``, so sweep artifacts name exactly what fell back
    as ports land), and ``ok`` = 1.0 iff the matching is valid and
    meets the bound.  Cells where the algorithm does not apply
    (bipartite_mcm on an odd cycle) report ``skipped`` = 1.0 instead.
    Backend choice never changes ``value``/``ratio``: both engines are
    seed-identical by construction.
    """
    if algo not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algo!r}; pick from {sorted(ALGORITHMS)}")
    from repro.distributed.backends import resolve_backend

    resolve_backend(backend)  # reject unknown names before running
    used = backend if algo in ARRAY_PORTED else "generator"
    g = build_scenario(scenario, size, seed)
    bound = ALGORITHMS[algo]
    if algo == "bipartite_mcm":
        part = g.bipartition()
        if part is None:
            return {"skipped": 1.0}
        m, _ = bipartite_mcm(g, k=3, xs=part[0], seed=seed)
        value, opt = float(len(m)), float(len(hopcroft_karp(g, part[0])))
    elif algo == "generic_mcm":
        m, _ = generic_mcm(g, k=2, seed=seed, backend=used)
        value, opt = float(len(m)), float(maximum_matching_size(g))
    elif algo == "general_mcm":
        m, _, _ = general_mcm(g, k=3, seed=seed)
        value, opt = float(len(m)), float(maximum_matching_size(g))
    elif algo == "lps_mwm":
        gw = assign_uniform_weights(g, seed=seed)
        m, _ = lps_mwm(gw, seed=seed, backend=used)
        value, opt = m.weight(), maximum_matching_weight(gw)
        g = gw
    elif algo == "kopt_mwm":
        gw = assign_uniform_weights(g, seed=seed)
        m, _ = kopt_mwm(gw, k=2, backend=used)
        value, opt = m.weight(), maximum_matching_weight(gw)
        g = gw
    else:  # weighted_mwm
        gw = assign_uniform_weights(g, seed=seed)
        m, _, _ = weighted_mwm(gw, eps=0.1, seed=seed, backend=used)
        value, opt = m.weight(), maximum_matching_weight(gw)
        g = gw
    _check_matching(g, m)
    ratio = value / opt if opt > 0 else 1.0
    record: dict[str, float | str] = {
        "value": value,
        "opt": opt,
        "ratio": ratio,
        "bound": bound,
        "array_backend": 1.0 if used == "array" else 0.0,
        "ok": 1.0 if ratio >= bound - 1e-9 else 0.0,
    }
    if used != backend:
        record["fallback_algo"] = algo
    return record


def run_scenario_cell_batch(
    seeds: Sequence[int],
    scenario: str,
    algo: str,
    size: int = 20,
    backend: str = "generator",
) -> list[dict[str, float | str]]:
    """Batch-aware matrix cell: one call covers a whole seed chunk.

    The batch-aware twin of :func:`run_scenario_cell` for
    ``ParallelRunner``'s ``seed_batch`` mode — one process-level task
    per chunk instead of one fn call per seed.  Scenario cells build a
    *different graph per seed* (the seed drives the generator), so the
    seeds cannot share one seed-axis batched execution the way
    fixed-graph workloads can (see
    :func:`repro.baselines.luby_mis.luby_mis_batched` and
    ``examples/batched_sweep.py``); within a chunk the cells run
    sequentially, and the records are identical to the per-seed mode
    by construction.
    """
    return [
        run_scenario_cell(scenario, algo, size=size, seed=int(s), backend=backend)
        for s in seeds
    ]


def scenario_matrix(
    scenarios: Iterable[str] | None = None,
    algos: Iterable[str] | None = None,
    size: int = 20,
    seeds: Iterable[int] | None = None,
    workers: int = 1,
    artifact: str | None = None,
    backend: str = "generator",
    seed_batch: int | None = None,
    max_retries: int = 0,
    timeout: float | None = None,
    resume: bool = False,
) -> list[ExperimentResult]:
    """Run the full scenario × algorithm matrix via :class:`ParallelRunner`.

    Each (scenario, algorithm) pair is one sweep cell; with
    ``seeds=None`` the cells draw independent ``SeedSequence``-spawned
    seeds, so the matrix is deterministic for any worker count.  The
    execution ``backend`` rides through the runner's ``common``
    parameters into every cell (and its recorded params).  With
    ``seed_batch=k`` the runner hands each cell's seeds to
    :func:`run_scenario_cell_batch` in chunks of ``k`` (one task per
    chunk); records are identical either way.

    Crash-safety knobs pass straight through to the runner: a failed
    cell comes back with ``.error`` set instead of aborting the matrix,
    ``max_retries``/``timeout`` govern re-runs, and ``resume=True``
    skips cells already present (error-free) in ``artifact``.
    """
    scenarios = list(SCENARIOS) if scenarios is None else list(scenarios)
    algos = list(ALGORITHMS) if algos is None else list(algos)
    points = [
        {"scenario": s, "algo": a, "size": size} for s in scenarios for a in algos
    ]
    runner = ParallelRunner(
        workers=workers, max_retries=max_retries, timeout=timeout
    )
    return runner.sweep(
        run_scenario_cell if seed_batch is None else run_scenario_cell_batch,
        points,
        seeds=list(seeds) if seeds is not None else None,
        artifact=artifact,
        common={"backend": backend},
        seed_batch=seed_batch,
        resume=resume,
    )


def scenario_table(results: Sequence[ExperimentResult]) -> str:
    """Render matrix results as the benchmark-style fixed-width table."""
    rows: list[list[Any]] = []
    for cell in results:
        p = cell.params
        recs = [r for r in cell.records if "skipped" not in r]
        if not recs:
            rows.append([p["scenario"], p["algo"], "-", "-", "-", "n/a"])
            continue
        ratios = [r["ratio"] for r in recs]
        rows.append(
            [
                p["scenario"],
                p["algo"],
                sum(ratios) / len(ratios),
                min(ratios),
                recs[0]["bound"],
                "yes" if all(r["ok"] == 1.0 for r in recs) else "NO",
            ]
        )
    return format_table(
        ["scenario", "algorithm", "mean ratio", "min ratio", "bound", "meets"], rows
    )
