"""Tests for Algorithm 4 (Theorem 3.11) — general graphs."""

import math

import pytest

from repro.core import fidelity_iterations, general_mcm
from repro.core.general_mcm import _hat_graph
from repro.graphs import Graph, cycle_graph, gnp_random, random_regular
from repro.matching import Matching, maximum_matching_size

import numpy as np


class TestHatGraph:
    def test_free_vertices_always_members(self):
        g = cycle_graph(4)
        red = np.array([True, True, False, False])
        ghat, xside = _hat_graph(g, [-1, -1, -1, -1], red)
        # All free; bichromatic edges kept: (1,2) and (0,3).
        assert ghat.m == 2
        assert ghat.has_edge(1, 2) and ghat.has_edge(0, 3)

    def test_monochromatic_matched_excluded(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        red = np.array([True, True, False, True])
        # (0,1) matched and monochromatic: 0,1 not in V-hat, so edge
        # (1,2) dies even though it is bichromatic.
        ghat, _ = _hat_graph(g, [1, 0, -1, -1], red)
        assert not ghat.has_edge(1, 2)
        assert ghat.has_edge(2, 3)

    def test_bichromatic_matched_kept(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        red = np.array([True, False, True, False])
        ghat, _ = _hat_graph(g, [1, 0, -1, -1], red)
        assert ghat.has_edge(0, 1)  # the matched bichromatic edge itself

    def test_observation_31(self):
        """Augmenting paths of (Ĝ, M̂) are augmenting in (G, M)."""
        from repro.matching import find_augmenting_paths_upto, is_augmenting_path

        g = gnp_random(14, 0.3, seed=3)
        rng = np.random.default_rng(4)
        m_edges = []
        used = set()
        for u, v in g.edges():
            if u not in used and v not in used and rng.random() < 0.4:
                m_edges.append((u, v))
                used.update((u, v))
        m = Matching(g, m_edges)
        mates = [m.mate(v) for v in range(g.n)]
        red = rng.integers(0, 2, g.n).astype(bool)
        ghat, _ = _hat_graph(g, mates, red)
        mhat = Matching(
            ghat, [(u, v) for u, v in m_edges if ghat.has_edge(u, v)]
        )
        for p in find_augmenting_paths_upto(ghat, mhat, 5):
            assert is_augmenting_path(g, m, p)


class TestFidelityBudget:
    def test_formula(self):
        assert fidelity_iterations(3) == math.ceil(2**7 * 4 * math.log(3))

    def test_requires_k_above_two(self):
        with pytest.raises(ValueError):
            fidelity_iterations(2)


class TestTheorem311:
    @pytest.mark.parametrize("seed", range(4))
    def test_guarantee_gnp(self, seed):
        g = gnp_random(40, 0.08, seed=seed)
        m, _, _ = general_mcm(g, k=3, seed=seed)
        opt = maximum_matching_size(g)
        assert len(m) >= (1 - 1 / 3) * opt - 1e-9

    def test_guarantee_regular(self):
        g = random_regular(30, 3, seed=5)
        m, _, _ = general_mcm(g, k=3, seed=5)
        opt = maximum_matching_size(g)
        assert len(m) >= (2 / 3) * opt - 1e-9

    def test_odd_structures(self):
        g = cycle_graph(9)
        m, _, _ = general_mcm(g, k=3, seed=6)
        assert len(m) >= (2 / 3) * 4 - 1e-9

    def test_adaptive_stronger_postcondition(self):
        """Adaptive mode stops only when no ≤(2k−1)-path exists, which
        by Lemma 3.5 gives the stronger (1−1/(k+1)) bound."""
        g = gnp_random(30, 0.1, seed=7)
        m, _, _ = general_mcm(g, k=3, seed=7)
        opt = maximum_matching_size(g)
        assert len(m) >= (1 - 1 / 4) * opt - 1e-9

    def test_k_must_exceed_two(self):
        with pytest.raises(ValueError, match="k > 2"):
            general_mcm(cycle_graph(5), k=2)

    def test_empty_graph(self):
        m, res, outer = general_mcm(Graph(5), k=3, seed=8)
        assert len(m) == 0 and outer == 0

    def test_determinism(self):
        g = gnp_random(25, 0.12, seed=9)
        a, _, _ = general_mcm(g, k=3, seed=10)
        b, _, _ = general_mcm(g, k=3, seed=10)
        assert a == b

    def test_fixed_iteration_budget_respected(self):
        g = gnp_random(25, 0.12, seed=11)
        _, _, outer = general_mcm(
            g, k=3, seed=11, iterations=5, adaptive=False, inner_adaptive=True
        )
        assert outer == 5

    def test_adaptive_converges_before_fidelity_budget(self):
        g = gnp_random(30, 0.1, seed=12)
        _, _, outer = general_mcm(g, k=3, seed=12)
        assert outer < fidelity_iterations(3)

    def test_congest_message_sizes(self):
        """Thm 3.11 claims O(log n)-bit messages (same caveat as 3.8:
        token numbers are O(log N) before pipelining)."""
        g = gnp_random(30, 0.1, seed=13)
        _, res, _ = general_mcm(g, k=3, seed=13)
        n, delta, ell = g.n, g.max_degree(), 5
        bound = 4 * (math.log2(n) + (ell + 1) / 2 * math.log2(delta + 1)) + 16
        assert res.max_message_bits <= bound
