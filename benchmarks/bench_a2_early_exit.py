"""A2 (ablation) — Algorithm 4's iteration budget.

The paper's 2^{2k+1}(k+1)·ln k outer iterations are a worst-case
w.h.p. budget; adaptive mode stops at the no-short-augmenting-path
certificate (at which point the *stronger* (1−1/(k+1)) bound holds).
This ablation quantifies the gap: iterations used, rounds simulated,
and final quality, fidelity (capped) vs adaptive.
"""

from repro.analysis import format_table, print_banner
from repro.core import fidelity_iterations, general_mcm
from repro.graphs import gnp_random
from repro.matching import maximum_matching_size

from conftest import once

K = 3
SEEDS = range(3)
FIDELITY_CAP = 120  # full paper budget is 563 for k=3; cap for runtime


def run_a2():
    rows = []
    for mode, kwargs in [
        ("adaptive", dict(adaptive=True)),
        (f"fixed({FIDELITY_CAP})", dict(adaptive=False, iterations=FIDELITY_CAP)),
    ]:
        worst, iters, rounds = 1.0, [], []
        for s in SEEDS:
            g = gnp_random(36, 0.09, seed=s)
            m, res, outer = general_mcm(g, k=K, seed=400 + s, **kwargs)
            opt = maximum_matching_size(g)
            if opt:
                worst = min(worst, len(m) / opt)
            iters.append(outer)
            rounds.append(res.rounds)
        rows.append(
            [mode, worst, sum(iters) / len(iters),
             sum(rounds) / len(rounds)]
        )
    return rows


def test_early_exit_ablation(benchmark, report):
    rows = once(benchmark, run_a2)

    def show():
        print_banner(
            f"A2 (ablation) — Algorithm 4 stopping rule (k={K}, paper "
            f"budget {fidelity_iterations(K)} iterations)",
            "adaptive certificate stop preserves the guarantee at a "
            "fraction of the iterations",
        )
        print(format_table(
            ["mode", "worst ratio", "mean iterations", "mean rounds"], rows
        ))

    report(show)
    for _mode, worst, *_ in rows:
        assert worst >= 1 - 1 / K - 1e-9
    # adaptive uses far fewer iterations than the fixed budget
    assert rows[0][2] < rows[1][2]
