#!/usr/bin/env python3
"""Batched sweep: 64 seeds per cell as one vectorized execution.

A sweep cell usually repeats the same experiment over many seeds, one
run per seed — and at moderate n the Python per-run overhead (backend
construction, the O(n) per-node RNG spawn, one NumPy dispatch chain
per round per seed) dwarfs the actual arithmetic.  Seed-axis batching
(ISSUE 4) executes the whole seed list as ONE run over
``(num_seeds, n)`` arrays, with every per-(seed, node) RNG stream
replicated bit-exactly by ``repro.distributed.batch_rng`` — so the
records are byte-identical to the per-seed runs, only faster.

The walkthrough below sweeps Luby's MIS over three graph families with
64 seeds per cell, three ways:

1. per-seed loop on the generator backend (the reference semantics);
2. per-seed loop on the array backend (PR 3's win);
3. one batched array execution per cell (this PR's win),
   dispatched through ``ParallelRunner.sweep(seed_batch=64)`` — the
   same seam ``python -m repro scenarios --seed-batch`` uses.
"""

import time

from repro.analysis import ParallelRunner
from repro.baselines.luby_mis import luby_mis, luby_mis_batched
from repro.graphs import barabasi_albert, gnp_random, watts_strogatz

#: One fixed graph per cell — batching is across seeds, so the cell's
#: topology is built once (from the *point*, not the seed) and shared
#: by all 64 lanes.
FAMILIES = {
    "barabasi_albert": lambda n: barabasi_albert(n, 4, seed=0),
    "watts_strogatz": lambda n: watts_strogatz(n, 4, 0.1, seed=0),
    "gnp": lambda n: gnp_random(n, 4.0 / n, seed=0),
}

NUM_SEEDS = 64
SEEDS = list(range(NUM_SEEDS))


# Build each cell's graph once and share it across every leg and seed,
# so the timing comparison is about *execution*, not graph construction.
_GRAPH_CACHE: dict[tuple[str, int], object] = {}


def cell_graph(family: str, n: int):
    key = (family, n)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = FAMILIES[family](n)
    return _GRAPH_CACHE[key]


def luby_record(mis, res) -> dict[str, float]:
    return {"mis_size": float(len(mis)), "rounds": float(res.rounds)}


# A batch-aware cell fn: ParallelRunner calls it as fn(seeds=[...], n=...,
# family=...) and expects one record per seed, in order.  Inside, the
# whole chunk is ONE BatchedArrayBackend execution.
def batched_cell(seeds, family: str, n: int) -> list[dict[str, float]]:
    g = cell_graph(family, n)
    return [luby_record(mis, res) for mis, res in luby_mis_batched(g, seeds)]


# The per-seed twin, for the comparison legs.
def sequential_cell(seed: int, family: str, n: int, backend: str) -> dict[str, float]:
    mis, res = luby_mis(cell_graph(family, n), seed=seed, backend=backend)
    return luby_record(mis, res)


def main() -> None:
    n = 600
    points = [{"family": fam, "n": n} for fam in FAMILIES]
    runner = ParallelRunner(workers=1)  # one process: isolate the batching win

    legs = {}
    for label, kwargs in [
        ("generator, per seed", dict(fn=sequential_cell, common={"backend": "generator"})),
        ("array, per seed", dict(fn=sequential_cell, common={"backend": "array"})),
        ("array, batched x64", dict(fn=batched_cell, seed_batch=NUM_SEEDS)),
    ]:
        fn = kwargs.pop("fn")
        t0 = time.perf_counter()
        cells = runner.sweep(fn, points, seeds=SEEDS, **kwargs)
        legs[label] = (time.perf_counter() - t0, cells)

    base = legs["generator, per seed"][0]
    print(f"Luby MIS, {len(points)} families x n={n} x {NUM_SEEDS} seeds:")
    for label, (elapsed, _cells) in legs.items():
        print(f"  {label:>20}: {elapsed*1000:7.1f} ms  ({base/elapsed:5.2f}x)")

    # Identity: the batched leg's records equal the generator leg's,
    # cell by cell, record by record — batching changes the wall clock,
    # never the data.
    for ref_cell, bat_cell in zip(legs["generator, per seed"][1],
                                  legs["array, batched x64"][1]):
        assert ref_cell.records == bat_cell.records, ref_cell.params
    print("identity: batched records == per-seed generator records, all cells")

    # The per-seed spread a 64-seed batch gives you for free:
    for cell in legs["array, batched x64"][1]:
        rounds = cell.column("rounds")
        print(f"  {cell.params['family']:>16}: rounds min/mean/max = "
              f"{min(rounds):.0f}/{sum(rounds)/len(rounds):.1f}/{max(rounds):.0f}")


if __name__ == "__main__":
    main()
