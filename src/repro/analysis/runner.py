"""Seeded repetition and parameter sweeps for experiments.

The workhorse is :class:`ParallelRunner`, which fans the cells of a
parameter sweep out over ``multiprocessing`` workers.  Determinism is
by construction: every cell is a pure function of its parameter point
and seed list, results are consumed in submission order, and per-cell
seeds are derived by spawning a ``SeedSequence`` per cell index — so
1 worker and N workers produce identical records, and a re-run with
the same root seed reproduces the sweep byte for byte.

Crash safety (ISSUE 10): a worker exception no longer aborts the whole
sweep.  Worker payloads travel back as ``("ok", records)`` /
``("error", message)`` pairs, failed cells land in the output with
:attr:`ExperimentResult.error` set (and their surviving records, if
any chunk succeeded), and the runner can retry failed tasks
(``max_retries`` with exponential backoff) and bound each task's wait
(``timeout``, pool mode only — an in-process call cannot be
interrupted).  :meth:`ParallelRunner.repeat` keeps its historical
contract instead: the original exception propagates (after retries).

Results can be streamed to a JSON-lines artifact as cells complete
(:meth:`ParallelRunner.sweep` with ``artifact=``): rows are written to
``<artifact>.tmp`` with an ``fsync`` per cell, a trailing ``_summary``
row marks the sweep complete (or interrupted), and the tmp file is
atomically renamed onto ``artifact`` — on ``KeyboardInterrupt`` too,
so a partial artifact is always a well-formed prefix plus a partial
marker.  ``sweep(..., resume=True)`` reads such an artifact back and
skips every error-free cell already present (keyed by the parameter
point), re-running only failed or missing cells.  :func:`load_artifact`
refuses partial artifacts unless told otherwise.

Seed batching (ISSUE 4): ``repeat``/``sweep`` accept ``seed_batch=k``,
which dispatches **one task per chunk of k seeds** (instead of one per
seed) to a *batch-aware* experiment function receiving the whole seed
list.  That is the seam through which seed-axis batched execution
(:class:`repro.distributed.backends.BatchedArrayBackend`) reaches the
harness: a batch-aware fn can run its chunk as one vectorized
execution, and a correct one returns records byte-identical to the
per-seed mode.

The module-level :func:`repeat` / :func:`sweep` are thin sequential
wrappers kept for compatibility with the existing benchmarks; they
accept lambdas/closures (nothing is pickled on the 1-worker path).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np


class PartialArtifactError(RuntimeError):
    """A sweep artifact is missing its ``_summary`` row (or marked
    incomplete): the sweep that wrote it was interrupted or is still
    running.  Load it with ``allow_partial=True`` or finish it with
    ``sweep(..., resume=True)``."""


@dataclass
class ExperimentResult:
    """One experiment cell: a parameter point and its per-seed records.

    ``error`` is ``None`` for a clean cell; a failed cell carries the
    worker's error message(s) here and keeps whatever records its
    successful chunks produced (possibly none).
    """

    params: dict[str, Any]
    records: list[dict[str, float]] = field(default_factory=list)
    error: str | None = None

    def column(self, key: str) -> list[float]:
        """All per-seed values of a measured quantity."""
        return [r[key] for r in self.records]

    def mean(self, key: str) -> float:
        """Mean of a measured quantity over seeds."""
        col = self.column(key)
        if not col:
            raise ValueError(
                f"cannot average {key!r}: cell {self.params!r} has no records"
            )
        return sum(col) / len(col)

    def min(self, key: str) -> float:
        """Minimum over seeds (for 'holds on every seed' claims)."""
        col = self.column(key)
        if not col:
            raise ValueError(
                f"cannot take min of {key!r}: cell {self.params!r} has no records"
            )
        return min(col)

    def max(self, key: str) -> float:
        """Maximum over seeds."""
        col = self.column(key)
        if not col:
            raise ValueError(
                f"cannot take max of {key!r}: cell {self.params!r} has no records"
            )
        return max(col)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (inverse of :meth:`from_dict`).

        ``error`` is emitted only when set, so clean cells serialize
        exactly as they did before the error field existed (artifact
        bytes are part of the determinism contract).
        """
        d: dict[str, Any] = {"params": self.params, "records": self.records}
        if self.error is not None:
            d["error"] = self.error
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ExperimentResult":
        """Rebuild a cell from :meth:`to_dict` output."""
        return cls(
            params=dict(d["params"]),
            records=list(d["records"]),
            error=d.get("error"),
        )


def cell_seeds(root_seed: int, n_cells: int, seeds_per_cell: int) -> list[list[int]]:
    """Deterministic per-cell seed lists via ``SeedSequence`` spawning.

    Cell ``i`` gets ``seeds_per_cell`` 32-bit seeds from the ``i``-th
    spawned child of ``SeedSequence(root_seed)`` — independent streams
    across cells, reproducible regardless of how cells are scheduled.
    """
    seq = np.random.SeedSequence(root_seed)
    return [
        [int(x) for x in child.generate_state(seeds_per_cell)]
        for child in seq.spawn(n_cells)
    ]


def _chunked(seq: Sequence, size: int) -> list[list]:
    """Split ``seq`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"seed_batch must be >= 1, got {size}")
    return [list(seq[i: i + size]) for i in range(0, len(seq), size)]


def _check_batch(recs, seeds) -> list[dict[str, float]]:
    """Validate a batch-aware fn's return: one record per seed."""
    recs = list(recs)
    if len(recs) != len(seeds):
        raise ValueError(
            f"batched experiment fn returned {len(recs)} record(s) "
            f"for {len(seeds)} seed(s)"
        )
    return recs


def _run_repeat_cell(job: tuple) -> list[dict[str, float]]:
    """Worker: ``fn(seed)`` for each seed of one repeat cell."""
    fn, seeds = job
    return [fn(s) for s in seeds]


def _run_repeat_batch(job: tuple) -> list[dict[str, float]]:
    """Worker: one batch-aware ``fn(seeds)`` call for a whole seed chunk."""
    fn, seeds = job
    return _check_batch(fn(list(seeds)), seeds)


def _run_sweep_cell(job: tuple) -> list[dict[str, float]]:
    """Worker: ``fn(seed=s, **point)`` for each seed of one sweep cell."""
    fn, point, seeds = job
    return [fn(seed=s, **point) for s in seeds]


def _run_sweep_chunk(job: tuple) -> list[dict[str, float]]:
    """Worker: one batch-aware ``fn(seeds=chunk, **point)`` call."""
    fn, point, chunk = job
    return _check_batch(fn(seeds=list(chunk), **point), chunk)


def _describe_error(exc: BaseException) -> str:
    """One-line error description with the innermost frame location."""
    tb = traceback.extract_tb(exc.__traceback__)
    loc = ""
    if tb:
        frame = tb[-1]
        loc = f" at {os.path.basename(frame.filename)}:{frame.lineno}"
    return f"{type(exc).__name__}: {exc}{loc}"


def _guarded(args: tuple) -> tuple[str, Any]:
    """Pool worker shim: never lets a task exception escape the worker.

    Returns ``("ok", records)`` or ``("error", message)`` so one bad
    cell cannot abort the whole sweep (the old ``pool.imap`` path
    propagated the first worker exception and killed every other
    in-flight cell with it).
    """
    worker, job = args
    try:
        return ("ok", worker(job))
    except KeyboardInterrupt:  # let pool teardown proceed
        raise
    except BaseException as exc:  # noqa: BLE001 — the whole point is capture
        return ("error", _describe_error(exc))


class ParallelRunner:
    """Fans experiment cells out over ``multiprocessing`` workers.

    Parameters
    ----------
    workers:
        Process count; ``None`` means ``os.cpu_count()``.  With
        ``workers <= 1`` everything runs in-process (no pickling, so
        lambdas and closures are fine).  With more, the experiment
        function and its records must be picklable.
    max_retries:
        How many times to re-run a failed task before recording (in
        :meth:`sweep`) or raising (in :meth:`repeat`) the failure.
        Retries back off exponentially: ``retry_backoff * 2**attempt``
        seconds before attempt ``attempt + 1``.
    retry_backoff:
        Base of the exponential backoff, in seconds.
    timeout:
        Pool mode only: maximum seconds to wait for one task's result;
        an overdue task counts as failed (and is retried like any other
        failure).  The in-process path cannot interrupt a running
        experiment function, so there the timeout is not enforced.

    Records are returned in cell submission order in both modes, so the
    worker count never changes the output — only the wall clock.
    """

    def __init__(
        self,
        workers: int | None = None,
        max_retries: int = 0,
        retry_backoff: float = 0.5,
        timeout: float | None = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.workers = workers
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.timeout = timeout

    # -- task dispatch -------------------------------------------------

    def _run_jobs(
        self,
        worker: Callable[[tuple], list[dict[str, float]]],
        jobs: list[tuple],
        capture: bool,
    ) -> Iterator[tuple[str, Any]]:
        """Run ``jobs``, yielding ``("ok", records)`` / ``("error", msg)``
        per job in submission order.

        With ``capture=False`` a job that still fails after
        ``max_retries`` re-raises its exception instead (the historical
        :meth:`repeat` contract, where error records make no sense).
        In pool mode every task is submitted up front via
        ``apply_async`` and collected in order, so a failure or timeout
        of one task never cancels the others; retries are resubmitted
        to the same pool.
        """
        if self.workers <= 1 or len(jobs) <= 1:
            for job in jobs:
                yield self._run_one_local(worker, job, capture)
            return
        with multiprocessing.Pool(min(self.workers, len(jobs))) as pool:
            pending = [
                pool.apply_async(_guarded, ((worker, job),)) for job in jobs
            ]
            for job, handle in zip(jobs, pending):
                attempt = 0
                while True:
                    try:
                        status, payload = handle.get(self.timeout)
                        exc: BaseException | None = None
                    except multiprocessing.TimeoutError:
                        status = "error"
                        payload = f"TimeoutError: no result within {self.timeout}s"
                        exc = None
                    except KeyboardInterrupt:
                        raise
                    except BaseException as e:  # unpicklable result, dead worker
                        status, payload, exc = "error", _describe_error(e), e
                    if status == "ok" or attempt >= self.max_retries:
                        break
                    time.sleep(self.retry_backoff * (2 ** attempt))
                    attempt += 1
                    handle = pool.apply_async(_guarded, ((worker, job),))
                if status == "error" and not capture:
                    raise exc if exc is not None else RuntimeError(payload)
                yield status, payload

    def _run_one_local(
        self, worker: Callable, job: tuple, capture: bool
    ) -> tuple[str, Any]:
        """In-process task execution with the same retry semantics."""
        attempt = 0
        while True:
            try:
                return ("ok", worker(job))
            except KeyboardInterrupt:
                raise
            except BaseException as exc:  # noqa: BLE001
                if attempt >= self.max_retries:
                    if not capture:
                        raise
                    return ("error", _describe_error(exc))
                time.sleep(self.retry_backoff * (2 ** attempt))
                attempt += 1

    # -- public API ----------------------------------------------------

    def repeat(
        self,
        fn: Callable[..., Any],
        seeds: Iterable[int],
        params: dict[str, Any] | None = None,
        seed_batch: int | None = None,
    ) -> ExperimentResult:
        """Run ``fn`` over seeds, split across workers.

        Without ``seed_batch`` (the classic mode), ``fn(seed)`` is one
        per-seed task.  With ``seed_batch=k``, seeds are chunked into
        groups of ``k`` and ``fn`` must be **batch-aware** —
        ``fn(seeds) -> list of records`` (one per seed, in order) — so
        each chunk is *one* process-level task and ``fn`` may execute
        the whole chunk as a single batched run (e.g.
        :func:`repro.baselines.luby_mis.luby_mis_batched`).  Records
        are identical to the per-seed mode for a correct batched fn;
        only the wall clock changes.

        A task failure propagates as an exception (after
        ``max_retries``); error *records* are a :meth:`sweep` concept.
        """
        seeds = list(seeds)
        res = ExperimentResult(params or {})
        if seed_batch is None:
            worker, jobs = _run_repeat_cell, [(fn, [s]) for s in seeds]
        else:
            worker = _run_repeat_batch
            jobs = [(fn, chunk) for chunk in _chunked(seeds, seed_batch)]
        for _status, recs in self._run_jobs(worker, jobs, capture=False):
            res.records.extend(recs)
        return res

    def sweep(
        self,
        fn: Callable[..., dict[str, float]],
        points: Iterable[dict[str, Any]],
        seeds: Iterable[int] | None = None,
        root_seed: int = 0,
        seeds_per_cell: int = 3,
        artifact: str | os.PathLike | None = None,
        common: dict[str, Any] | None = None,
        seed_batch: int | None = None,
        resume: bool = False,
    ) -> list[ExperimentResult]:
        """Full sweep: each parameter point is one cell, fanned out.

        ``fn`` is called as ``fn(seed=s, **point)``.  With explicit
        ``seeds`` every cell repeats over that same list (the classic
        :func:`sweep` semantics); with ``seeds=None`` each cell gets
        its own independent ``seeds_per_cell`` seeds via
        :func:`cell_seeds` spawned from ``root_seed``.

        ``common`` holds sweep-wide parameters merged into every point
        (a point's own value wins on collision) — how run-wide knobs
        like the execution ``backend`` ride through the fan-out and land
        in every cell's recorded ``params``.

        With ``seed_batch=k``, ``fn`` must be **batch-aware**: each
        cell's seeds are split into consecutive chunks of at most ``k``
        and every chunk is dispatched as its *own* process-level task
        calling ``fn(seeds=chunk, **point)`` once, returning one record
        per seed in order.  This hands the fn whole seed groups so it
        can execute them as a single batched run (seed-axis batching,
        ISSUE 4), while a many-seed cell still spreads its chunks
        across workers; a correct batched fn produces records identical
        to the per-seed mode.

        A failed task (exception or pool-mode timeout, after the
        runner's ``max_retries``) does **not** abort the sweep: its
        cell is returned with :attr:`ExperimentResult.error` set and
        whatever records its other chunks produced.  Callers decide
        whether errors are fatal (the CLI exits nonzero and prints a
        failed-cell summary).

        When ``artifact`` names a path, one JSON line per cell is
        streamed to ``<artifact>.tmp`` (``fsync``\\ ed per cell) as cells
        complete in submission order; a trailing ``_summary`` row and
        an atomic rename onto ``artifact`` seal the file — also on
        ``KeyboardInterrupt``, where the summary is marked incomplete,
        the pool is torn down cleanly, and the interrupt re-raises.  So
        a long sweep is inspectable mid-flight (tail the ``.tmp``) and
        recoverable afterwards: ``resume=True`` reads an existing
        ``artifact`` back and skips every error-free cell whose
        parameter point matches, re-running only failed and missing
        cells (skipped cells are re-emitted verbatim, so the finished
        artifact is complete and in submission order).
        """
        points = [{**(common or {}), **dict(p)} for p in points]
        if seeds is not None:
            seed_lists = [list(seeds)] * len(points)
        else:
            seed_lists = cell_seeds(root_seed, len(points), seeds_per_cell)

        done: dict[str, ExperimentResult] = {}
        if resume and artifact is not None and os.path.exists(artifact):
            for cell in load_artifact(artifact, allow_partial=True):
                if cell.error is None:  # failed cells re-run on resume
                    done[json.dumps(cell.params, sort_keys=True)] = cell

        keys = [json.dumps(p, sort_keys=True) for p in points]
        if seed_batch is None:
            worker = _run_sweep_cell
            cell_jobs = [
                [(fn, p, s)] if k not in done else []
                for p, s, k in zip(points, seed_lists, keys)
            ]
        else:
            worker = _run_sweep_chunk
            cell_jobs = []
            for p, s, k in zip(points, seed_lists, keys):
                if k in done:
                    cell_jobs.append([])
                    continue
                cell_jobs.append(
                    [(fn, p, chunk) for chunk in _chunked(s, seed_batch)]
                )
        jobs = [job for jl in cell_jobs for job in jl]

        out: list[ExperimentResult] = []
        n_errors = 0
        sink = tmp_path = None
        if artifact is not None:
            tmp_path = f"{os.fspath(artifact)}.tmp"
            sink = open(tmp_path, "w")

        def emit(cell: ExperimentResult) -> None:
            if sink is None:
                return
            json.dump(cell.to_dict(), sink, sort_keys=True)
            sink.write("\n")
            sink.flush()
            os.fsync(sink.fileno())

        results = self._run_jobs(worker, jobs, capture=True)
        try:
            for point, key, jl in zip(points, keys, cell_jobs):
                if not jl and key in done:
                    cell = done[key]
                else:
                    recs: list[dict[str, float]] = []
                    errors: list[str] = []
                    for _ in jl:  # chunk results in submission order
                        status, payload = next(results)
                        if status == "ok":
                            recs.extend(payload)
                        else:
                            errors.append(payload)
                    cell = ExperimentResult(
                        point, recs, error="; ".join(errors) or None
                    )
                n_errors += cell.error is not None
                out.append(cell)
                emit(cell)
        finally:
            results.close()  # tears the pool down if still up
            if sink is not None:
                summary = {
                    "_summary": {
                        "cells": len(points),
                        "written": len(out),
                        "errors": n_errors,
                        "complete": len(out) == len(points),
                    }
                }
                json.dump(summary, sink, sort_keys=True)
                sink.write("\n")
                sink.flush()
                os.fsync(sink.fileno())
                sink.close()
                os.replace(tmp_path, artifact)
        return out


def load_artifact(
    path: str | os.PathLike, allow_partial: bool = False
) -> list[ExperimentResult]:
    """Load the JSON-lines artifact written by :meth:`ParallelRunner.sweep`.

    An artifact is *complete* when its trailing ``_summary`` row says
    so; anything else (no summary at all — truncated mid-write or
    predating the summary format — or a summary with ``complete:
    false`` from an interrupted sweep) raises
    :class:`PartialArtifactError` unless ``allow_partial=True``, so a
    half-finished sweep can't silently impersonate a complete one.
    """
    out = []
    summary = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if "_summary" in row:
                summary = row["_summary"]
                continue
            out.append(ExperimentResult.from_dict(row))
    if summary is None or not summary.get("complete", False):
        if not allow_partial:
            state = (
                "has no _summary row (truncated or pre-summary format)"
                if summary is None
                else f"is marked incomplete ({summary.get('written', '?')}"
                f"/{summary.get('cells', '?')} cells)"
            )
            raise PartialArtifactError(
                f"artifact {os.fspath(path)!r} {state}; the sweep that wrote "
                "it did not finish — load with allow_partial=True or finish "
                "it with sweep(..., resume=True)"
            )
    return out


def repeat(
    fn: Callable[[int], dict[str, float]],
    seeds: Iterable[int],
    params: dict[str, Any] | None = None,
) -> ExperimentResult:
    """Run ``fn(seed)`` for each seed, collecting its measurement dicts.

    Compatibility wrapper over the in-process :class:`ParallelRunner`.
    """
    return ParallelRunner(workers=1).repeat(fn, seeds, params)


def sweep(
    fn: Callable[..., dict[str, float]],
    points: Iterable[dict[str, Any]],
    seeds: Iterable[int],
) -> list[ExperimentResult]:
    """Full sweep: for each parameter point, repeat over seeds.

    ``fn`` is called as ``fn(seed=s, **point)``.  Compatibility wrapper
    over the in-process :class:`ParallelRunner`.
    """
    return ParallelRunner(workers=1).sweep(fn, points, seeds=list(seeds))
