"""Scale-tier coverage (ISSUE 7): dtypes, chunked build, kernel seam.

Three independently pinned contracts:

* **Compact index dtype.** ``Graph`` auto-selects int32 CSR arrays when
  ``n`` and ``2m`` fit, promotes to int64 otherwise, and refuses an
  explicit int32 request that cannot address the graph (the overflow
  guard).  The boundary is exercised by monkeypatching
  ``INT32_INDEX_LIMIT`` down to a small value rather than allocating
  2^31 slots.  Crucially, the tier must never change *behavior*: the
  whole golden suite is recomputed under :func:`forced_index_dtype`
  for both tiers and asserted byte-identical to the committed capture.
* **Chunked construction.** ``Graph.from_edge_chunks`` must build the
  same graph as the monolithic constructor from any chunking of the
  same edge stream, and surface the same validation errors (including
  out-of-range endpoints caught before the narrowing int32 cast).
* **Kernel seam.** Every kernel registered in
  ``repro.distributed.kernels`` must be byte-identical to the
  ``"reduceat"`` reference on ``masked_degrees`` / ``neighbor_max``
  and their batched twins, for every graph shape that historically
  broke segment reductions (empty, isolated, trailing degree-0), and
  end-to-end: an ``ArrayBackend`` run under each kernel must produce
  the same ``RunResult``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.graphs.graph as graph_mod
from repro.baselines.luby_mis import luby_mis
from repro.core.generic_mcm import generic_mcm
from repro.distributed.backends import ArrayBackend, BatchedArrayBackend
from repro.distributed.kernels import (
    KERNELS,
    available_kernels,
    get_default_kernel,
    make_kernel,
    resolve_kernel,
    set_default_kernel,
)
from repro.graphs import (
    Graph,
    barabasi_albert,
    complete_graph,
    cycle_graph,
    gnp_random,
    star_graph,
    watts_strogatz,
)
from repro.graphs.graph import (
    INT32_INDEX_LIMIT,
    forced_index_dtype,
    select_index_dtype,
)
from repro.graphs.weights import assign_uniform_weights
from repro.matching.augmenting import (
    apply_paths,
    apply_paths_array,
    augmenting_paths_maximal_set,
    find_augmenting_paths_upto,
)
from repro.matching.matching import Matching

from tests.conftest import graphs
from tests.golden_harness import GOLDEN_PATH, compute_goldens, to_canonical_json

NON_REFERENCE_KERNELS = sorted(set(available_kernels()) - {"reduceat"})

KERNEL_GRAPHS = {
    "gnp": gnp_random(26, 0.18, seed=1),
    "ba": barabasi_albert(30, 2, seed=2),
    "ws": watts_strogatz(24, 4, 0.2, seed=3),
    "star": star_graph(11),
    "complete": complete_graph(8),
    "empty": Graph(6),
    "isolated": Graph(8, [(0, 1), (2, 3)]),
    # Trailing degree-0 vertices after a degree>=2 vertex: the shape of
    # the ISSUE 5 clamped-reduceat regression.
    "tail_isolated": Graph(6, [(0, 1), (0, 2), (1, 2)]),
}


class TestIndexDtypeSelection:
    def test_small_graph_is_int32(self):
        g = Graph(5, [(0, 1), (1, 2)])
        assert g.index_dtype == np.dtype(np.int32)
        indptr, indices, eids = g.adjacency_arrays()
        assert indptr.dtype == indices.dtype == eids.dtype == np.int32

    def test_select_index_dtype_helper(self):
        assert select_index_dtype(10, 5) == np.dtype(np.int32)
        assert select_index_dtype(INT32_INDEX_LIMIT + 1, 0) == np.dtype(np.int64)
        # 2m is the binding constraint for the half-edge arrays.
        assert select_index_dtype(10, INT32_INDEX_LIMIT) == np.dtype(np.int64)

    def test_explicit_int64_request_honored(self):
        g = Graph(5, [(0, 1)], index_dtype=np.int64)
        assert g.index_dtype == np.dtype(np.int64)

    def test_invalid_index_dtype_rejected(self):
        with pytest.raises(ValueError, match="int32 or int64"):
            Graph(5, [(0, 1)], index_dtype=np.int16)

    def test_invalid_weight_dtype_rejected(self):
        with pytest.raises(ValueError, match="float32 or float64"):
            Graph(5, [(0, 1)], [2.0], weight_dtype=np.float16)

    def test_float32_weights_opt_in(self):
        g = Graph(5, [(0, 1), (2, 3)], [1.5, 2.5], weight_dtype=np.float32)
        assert g.weight_dtype == np.dtype(np.float32)
        assert g.weights_array().dtype == np.float32
        assert g.weight(0, 1) == 1.5

    def test_promotion_past_n_boundary(self, monkeypatch):
        # With the limit pinned to 6: n=6 still fits int32, n=7 promotes.
        monkeypatch.setattr(graph_mod, "INT32_INDEX_LIMIT", 6)
        at = Graph(6, [(0, 5)])
        above = Graph(7, [(0, 5)])
        assert at.index_dtype == np.dtype(np.int32)
        assert above.index_dtype == np.dtype(np.int64)

    def test_promotion_past_half_edge_boundary(self, monkeypatch):
        # m=3 -> 2m=6 == limit fits; m=4 -> 2m=8 promotes, even though
        # n=6 alone would fit.
        monkeypatch.setattr(graph_mod, "INT32_INDEX_LIMIT", 6)
        at = Graph(6, [(0, 1), (2, 3), (4, 5)])
        above = Graph(6, [(0, 1), (2, 3), (4, 5), (0, 2)])
        assert at.index_dtype == np.dtype(np.int32)
        assert above.index_dtype == np.dtype(np.int64)

    def test_overflow_guard_regression(self, monkeypatch):
        """An explicit int32 request that cannot address the graph must
        raise, never silently wrap (the promotion path exists for it)."""
        monkeypatch.setattr(graph_mod, "INT32_INDEX_LIMIT", 6)
        with pytest.raises(ValueError, match="cannot address"):
            Graph(7, [(0, 5)], index_dtype=np.int32)
        with pytest.raises(ValueError, match="cannot address"):
            Graph(6, [(0, 1), (2, 3), (4, 5), (0, 2)], index_dtype=np.int32)

    def test_forced_dtype_hook_respects_overflow_guard(self, monkeypatch):
        monkeypatch.setattr(graph_mod, "INT32_INDEX_LIMIT", 6)
        with forced_index_dtype(np.int32):
            with pytest.raises(ValueError, match="cannot address"):
                Graph(7, [(0, 5)])

    def test_promoted_graph_same_results(self, monkeypatch):
        """Identical Luby run across the promotion threshold."""
        g32 = barabasi_albert(30, 2, seed=2)
        monkeypatch.setattr(graph_mod, "INT32_INDEX_LIMIT", 10)
        g64 = barabasi_albert(30, 2, seed=2)
        assert g32.index_dtype == np.dtype(np.int32)
        assert g64.index_dtype == np.dtype(np.int64)
        assert g32.edges() == g64.edges()
        for backend in ("generator", "array"):
            mis32, res32 = luby_mis(g32, seed=5, backend=backend)
            mis64, res64 = luby_mis(g64, seed=5, backend=backend)
            assert mis32 == mis64
            assert res32 == res64

    def test_derived_graphs_keep_tier(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)], index_dtype=np.int64)
        assert g.unweighted().index_dtype == np.dtype(np.int64)
        assert g.with_weights([1.0, 2.0, 3.0]).index_dtype == np.dtype(np.int64)


class TestDtypeGoldenIdentity:
    """The acceptance pin: both tiers reproduce the committed goldens."""

    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_golden_suite_byte_identical(self, dtype):
        with forced_index_dtype(dtype):
            snapshot = compute_goldens()
        assert to_canonical_json(snapshot) + "\n" == GOLDEN_PATH.read_text()


class TestFromEdgeChunks:
    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 1000])
    def test_matches_monolithic_construction(self, chunk_size):
        g_ref = gnp_random(26, 0.3, seed=4)
        earr = np.array(g_ref.edges(), dtype=np.int64)
        chunks = [
            earr[s: s + chunk_size] for s in range(0, len(earr), chunk_size)
        ]
        g = Graph.from_edge_chunks(26, chunks)
        assert g.n == g_ref.n and g.m == g_ref.m
        assert g.edges() == g_ref.edges()
        assert g.index_dtype == g_ref.index_dtype
        for v in range(g.n):
            assert g.neighbors(v) == g_ref.neighbors(v)

    def test_accepts_generator_input(self):
        def chunks():
            yield np.array([[0, 1]], dtype=np.int32)
            yield np.empty((0, 2), dtype=np.int32)
            yield np.array([[2, 3], [1, 2]], dtype=np.int64)

        g = Graph.from_edge_chunks(5, chunks())
        assert g.edges() == [(0, 1), (2, 3), (1, 2)]

    def test_no_chunks_empty_graph(self):
        g = Graph.from_edge_chunks(4, [])
        assert g.n == 4 and g.m == 0

    def test_weight_chunks_align(self):
        g = Graph.from_edge_chunks(
            5,
            [np.array([[0, 1]]), np.array([[2, 3]])],
            weight_chunks=[np.array([1.5]), np.array([2.5])],
        )
        assert g.weight(0, 1) == 1.5 and g.weight(2, 3) == 2.5

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match=r"\(k, 2\)"):
            Graph.from_edge_chunks(4, [np.zeros((2, 3), dtype=np.int64)])

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError, match="integers"):
            Graph.from_edge_chunks(4, [np.zeros((1, 2), dtype=np.float64)])

    def test_out_of_range_caught_before_narrowing(self):
        # An int64 endpoint beyond int32 must error, not wrap into range.
        big = np.array([[0, 2**40]], dtype=np.int64)
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_edge_chunks(4, [big])
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_edge_chunks(4, [np.array([[0, -1]], dtype=np.int64)])

    def test_duplicate_across_chunks_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph.from_edge_chunks(
                4, [np.array([[0, 1]]), np.array([[1, 0]])]
            )


class TestEdgeIdsArray:
    def test_matches_edge_id(self):
        g = gnp_random(20, 0.25, seed=6)
        lo, hi = g.endpoints_array()
        # Every real edge, both orientations.
        ids = g.edge_ids_array(hi, lo)
        assert ids.tolist() == list(range(g.m))
        # Non-edges -> -1.
        uu, vv = np.meshgrid(np.arange(g.n), np.arange(g.n))
        uu, vv = uu.ravel(), vv.ravel()
        got = g.edge_ids_array(uu, vv)
        for u, v, eid in zip(uu.tolist(), vv.tolist(), got.tolist()):
            expect = g.edge_id(u, v) if g.has_edge(u, v) else -1
            assert eid == expect

    def test_empty_graph(self):
        g = Graph(3)
        assert g.edge_ids_array(
            np.array([0, 1]), np.array([1, 2])
        ).tolist() == [-1, -1]


class TestKernelRegistry:
    def test_reduceat_always_available(self):
        assert "reduceat" in available_kernels()

    def test_default_roundtrip(self):
        prev = set_default_kernel("reduceat")
        try:
            assert get_default_kernel() == "reduceat"
        finally:
            set_default_kernel(prev)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("fortran")
        with pytest.raises(ValueError, match="unknown kernel"):
            set_default_kernel("fortran")

    def test_resolve_none_is_default(self):
        assert resolve_kernel(None) is KERNELS[get_default_kernel()]


@pytest.mark.skipif(
    not NON_REFERENCE_KERNELS, reason="only the reduceat reference is installed"
)
@pytest.mark.parametrize("kname", NON_REFERENCE_KERNELS)
@pytest.mark.parametrize("gname", sorted(KERNEL_GRAPHS))
class TestKernelByteIdentity:
    """Every registered kernel == the reduceat reference, byte for byte."""

    def _kernels(self, gname, kname):
        g = KERNEL_GRAPHS[gname]
        indptr, indices, _ = g.adjacency_arrays()
        ref = make_kernel("reduceat", indptr, indices, g.n)
        other = make_kernel(kname, indptr, indices, g.n)
        return g, ref, other

    def test_masked_degrees(self, gname, kname):
        g, ref, other = self._kernels(gname, kname)
        rng = np.random.default_rng(0)
        for density in (0.0, 0.3, 1.0):
            mask = rng.random(g.n) < density
            want = ref.masked_degrees(mask)
            got = other.masked_degrees(mask)
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)

    def test_neighbor_max(self, gname, kname):
        g, ref, other = self._kernels(gname, kname)
        rng = np.random.default_rng(1)
        values = rng.integers(0, 1 << 40, size=g.n)
        for mask in (None, rng.random(g.n) < 0.4):
            want = ref.neighbor_max(values, mask)
            got = other.neighbor_max(values, mask)
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)

    def test_batched_twins(self, gname, kname):
        g, ref, other = self._kernels(gname, kname)
        rng = np.random.default_rng(2)
        mask = rng.random((3, g.n)) < 0.4
        values = rng.integers(0, 1 << 40, size=(3, g.n))
        assert np.array_equal(
            other.batched_masked_degrees(mask), ref.batched_masked_degrees(mask)
        )
        for m in (None, mask):
            assert np.array_equal(
                other.batched_neighbor_max(values, m),
                ref.batched_neighbor_max(values, m),
            )


@pytest.mark.skipif(
    not NON_REFERENCE_KERNELS, reason="only the reduceat reference is installed"
)
@pytest.mark.parametrize("kname", NON_REFERENCE_KERNELS)
class TestKernelEndToEnd:
    def test_luby_run_identical(self, kname):
        g = barabasi_albert(40, 3, seed=4)
        ref = ArrayBackend(g, luby_mis_program_factory(g.n), seed=3).run()
        got = ArrayBackend(
            g, luby_mis_program_factory(g.n), seed=3, kernel=kname
        ).run()
        assert got == ref

    def test_batched_run_identical(self, kname):
        g = gnp_random(30, 0.15, seed=7)
        from repro.baselines.luby_mis import luby_mis_array_batched

        def run(kernel):
            b = BatchedArrayBackend(
                g,
                lambda ctx: luby_mis_array_batched(ctx, g.n),
                seeds=[0, 1, 2],
                kernel=kernel,
            )
            return b.run()

        assert run(kname) == run(None)


def luby_mis_program_factory(n):
    from repro.baselines.luby_mis import luby_mis_array

    return lambda ctx: luby_mis_array(ctx, n)


class TestApplyPathsArray:
    def test_matches_apply_paths_on_mis_selection(self):
        for seed in (0, 3):
            g = gnp_random(18, 0.3, seed=seed)
            m = Matching(g)
            for max_len in (1, 3):
                paths = augmenting_paths_maximal_set(g, m, max_len)
                ref = apply_paths(m, paths)
                got = apply_paths_array(m, paths)
                assert sorted(got.edges()) == sorted(ref.edges())
                m = got

    def test_empty_is_copy(self):
        g = cycle_graph(6)
        m = Matching(g, [(0, 1)])
        got = apply_paths_array(m, [])
        assert got == m and got is not m

    @pytest.mark.parametrize(
        "paths, match",
        [
            ([(0, 1, 2)], "not an augmenting path"),  # odd length
            ([(0,)], "not an augmenting path"),  # too short
            ([(0, 1), (1, 2)], "conflict"),  # cross-path overlap
            ([(0, 3)], "not an augmenting path"),  # non-edge
            ([(9, 1)], "not an augmenting path"),  # out of range
            ([(0, 1, 1, 2)], "not an augmenting path"),  # non-simple
        ],
    )
    def test_invalid_paths_rejected(self, paths, match):
        g = Graph(9, [(0, 1), (1, 2), (2, 3)])
        m = Matching(g)
        with pytest.raises(ValueError, match=match):
            apply_paths_array(m, paths)

    def test_matched_endpoint_rejected(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        m = Matching(g, [(0, 1)])
        with pytest.raises(ValueError, match="not an augmenting path"):
            apply_paths_array(m, [(1, 2)])

    def test_bad_alternation_rejected(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        m = Matching(g, [(1, 2)])
        # (0, 1, 2, 3) alternates correctly; (0, 1) does not (edge 0-1
        # is unmatched but endpoint 1 is matched).
        ok = apply_paths_array(m, [(0, 1, 2, 3)])
        assert sorted(ok.edges()) == [(0, 1), (2, 3)]

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_property_equivalence(self, data):
        g = data.draw(graphs(max_n=10))
        m = Matching(g)
        paths = augmenting_paths_maximal_set(g, m, 3)
        assert sorted(apply_paths_array(m, paths).edges()) == sorted(
            apply_paths(m, paths).edges()
        )


class TestKeepViews:
    @pytest.mark.parametrize("backend", ["generator", "array"])
    def test_same_run_without_views(self, backend):
        g = gnp_random(16, 0.25, seed=2)
        m_ref, st_ref = generic_mcm(g, k=2, seed=3, backend=backend)
        m_got, st_got = generic_mcm(
            g, k=2, seed=3, backend=backend, keep_views=False
        )
        assert sorted(m_got.edges()) == sorted(m_ref.edges())
        # The flood outputs are deliberately not materialized; every
        # accounting counter must still match the keep_views run.
        for field in (
            "rounds",
            "charged_rounds",
            "total_messages",
            "total_bits",
            "max_message_bits",
        ):
            assert getattr(st_got.result, field) == getattr(st_ref.result, field)
        assert set(st_got.result.outputs.values()) <= {None}
        assert st_got.views == {}
        assert st_got.conflict_sizes == st_ref.conflict_sizes
        assert st_got.mis_sizes == st_ref.mis_sizes
