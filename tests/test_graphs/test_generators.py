"""Unit tests for graph generators."""

import numpy as np
import pytest

from repro.graphs import (
    bipartite_random,
    complete_bipartite,
    complete_graph,
    crown_graph,
    cycle_graph,
    gnm_random,
    gnp_random,
    grid_graph,
    path_graph,
    random_regular,
    random_tree,
    star_graph,
    switch_demand_graph,
)


class TestGnp:
    def test_p_zero_empty(self):
        assert gnp_random(10, 0.0, seed=1).m == 0

    def test_p_one_complete(self):
        g = gnp_random(6, 1.0, seed=1)
        assert g.m == 15

    def test_determinism(self):
        a = gnp_random(50, 0.1, seed=7)
        b = gnp_random(50, 0.1, seed=7)
        assert a.edges() == b.edges()

    def test_different_seeds_differ(self):
        a = gnp_random(50, 0.1, seed=7)
        b = gnp_random(50, 0.1, seed=8)
        assert a.edges() != b.edges()

    def test_expected_density(self):
        # n=200, p=0.05: E[m] = 995; allow generous 5-sigma slack.
        g = gnp_random(200, 0.05, seed=3)
        expected = 0.05 * 200 * 199 / 2
        sigma = np.sqrt(expected * 0.95)
        assert abs(g.m - expected) < 5 * sigma

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            gnp_random(10, 1.5)

    def test_no_duplicate_or_self_edges(self):
        g = gnp_random(100, 0.2, seed=5)  # Graph() would raise otherwise
        assert all(u < v for u, v in g.edges())


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_random(20, 37, seed=2)
        assert g.m == 37

    def test_m_too_large_rejected(self):
        with pytest.raises(ValueError):
            gnm_random(4, 7)

    def test_determinism(self):
        assert gnm_random(30, 50, seed=4).edges() == gnm_random(30, 50, seed=4).edges()


class TestBipartiteRandom:
    def test_sides(self):
        g, xs, ys = bipartite_random(5, 7, 0.5, seed=1)
        assert xs == list(range(5))
        assert ys == list(range(5, 12))
        assert g.n == 12

    def test_edges_cross_sides(self):
        g, xs, ys = bipartite_random(6, 6, 0.4, seed=2)
        xset = set(xs)
        for u, v in g.edges():
            assert (u in xset) != (v in xset)

    def test_is_bipartite(self):
        g, _, _ = bipartite_random(8, 8, 0.3, seed=3)
        assert g.is_bipartite()


class TestStructured:
    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.m == 10 and g.max_degree() == 4

    def test_complete_bipartite(self):
        g, xs, ys = complete_bipartite(3, 4)
        assert g.m == 12
        assert all(g.degree(x) == 4 for x in xs)

    def test_path(self):
        g = path_graph(5)
        assert g.m == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.m == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6
        assert g.m == 6

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.is_bipartite()

    def test_crown(self):
        g, xs, ys = crown_graph(4)
        assert g.n == 8
        assert g.m == 4 * 3  # K44 minus perfect matching
        assert all(not g.has_edge(x, 4 + x) for x in range(4))
        assert g.is_bipartite()

    def test_crown_too_small(self):
        with pytest.raises(ValueError):
            crown_graph(2)


class TestRandomTree:
    def test_tree_edge_count(self):
        for n in (1, 2, 3, 10, 50):
            g = random_tree(n, seed=n)
            assert g.m == max(0, n - 1)

    def test_tree_connected(self):
        g = random_tree(40, seed=9)
        assert len(g.connected_components()) == 1

    def test_determinism(self):
        assert random_tree(25, seed=3).edges() == random_tree(25, seed=3).edges()


class TestRandomRegular:
    def test_degrees(self):
        g = random_regular(20, 3, seed=1)
        assert all(g.degree(v) == 3 for v in g.vertices())

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            random_regular(5, 3)

    def test_degree_too_large_rejected(self):
        with pytest.raises(ValueError):
            random_regular(4, 4)


class TestSwitchDemand:
    def test_bipartite_shape(self):
        g, xs, ys = switch_demand_graph(8, 0.5, seed=1)
        assert g.n == 16
        assert g.is_bipartite()

    def test_patterns_run(self):
        for pattern in ("uniform", "diagonal", "hotspot"):
            g, _, _ = switch_demand_graph(6, 0.4, pattern=pattern, seed=2)
            assert g.n == 12

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            switch_demand_graph(4, 0.5, pattern="bogus")

    def test_hotspot_skews_to_output_zero(self):
        g, xs, ys = switch_demand_graph(16, 0.4, pattern="hotspot", seed=3)
        deg0 = g.degree(16)  # output 0
        others = [g.degree(y) for y in ys[1:]]
        assert deg0 >= max(others)
