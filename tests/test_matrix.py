"""Cross-product coverage matrix: every core algorithm × graph family.

A compact, fully parametrized sweep asserting each theorem's guarantee
on every family it applies to — the widest net in the suite.  Kept
small per cell so the whole matrix stays fast.
"""

import pytest

from repro.core import bipartite_mcm, general_mcm, generic_mcm, weighted_mwm
from repro.graphs import (
    bipartite_random,
    caterpillar_graph,
    comb_graph,
    complete_bipartite,
    crown_graph,
    cycle_graph,
    gnp_random,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_regular,
    random_tree,
    star_graph,
)
from repro.graphs.weights import assign_uniform_weights
from repro.matching import (
    hopcroft_karp,
    maximum_matching_size,
    maximum_matching_weight,
)

BIPARTITE_FAMILIES = [
    pytest.param(lambda: bipartite_random(15, 15, 0.2, seed=3)[0], id="bip-random"),
    pytest.param(lambda: crown_graph(6)[0], id="crown"),
    pytest.param(lambda: complete_bipartite(5, 8)[0], id="complete-bip"),
    pytest.param(lambda: path_graph(14), id="path"),
    pytest.param(lambda: grid_graph(4, 5), id="grid"),
    pytest.param(lambda: comb_graph(7), id="comb"),
    pytest.param(lambda: hypercube_graph(3), id="hypercube"),
    pytest.param(lambda: random_tree(20, seed=3), id="tree"),
    pytest.param(lambda: caterpillar_graph(6, 2), id="caterpillar"),
    pytest.param(lambda: star_graph(9), id="star"),
]

GENERAL_FAMILIES = BIPARTITE_FAMILIES + [
    pytest.param(lambda: gnp_random(25, 0.15, seed=3), id="gnp"),
    pytest.param(lambda: cycle_graph(11), id="odd-cycle"),
    pytest.param(lambda: random_regular(16, 3, seed=3), id="3-regular"),
]


class TestBipartiteMatrix:
    @pytest.mark.parametrize("maker", BIPARTITE_FAMILIES)
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_theorem_38(self, maker, k):
        g = maker()
        m, res = bipartite_mcm(g, k=k, seed=7)
        opt = maximum_matching_size(g)
        assert len(m) >= (1 - 1 / k) * opt - 1e-9
        if k == 1:
            assert m.is_maximal()


class TestGeneralMatrix:
    @pytest.mark.parametrize("maker", GENERAL_FAMILIES)
    def test_theorem_311(self, maker):
        g = maker()
        m, _, _ = general_mcm(g, k=3, seed=7)
        opt = maximum_matching_size(g)
        assert len(m) >= (2 / 3) * opt - 1e-9

    @pytest.mark.parametrize("maker", GENERAL_FAMILIES)
    def test_theorem_31(self, maker):
        g = maker()
        m, _ = generic_mcm(g, k=2, seed=7)
        opt = maximum_matching_size(g)
        assert len(m) >= (2 / 3) * opt - 1e-9


class TestWeightedMatrix:
    @pytest.mark.parametrize("maker", GENERAL_FAMILIES)
    @pytest.mark.parametrize("box", ["sequential", "interleaved"])
    def test_theorem_45(self, maker, box):
        g = assign_uniform_weights(maker(), seed=7)
        if g.m == 0:
            return
        m, _, _ = weighted_mwm(g, eps=0.1, seed=7, box=box)
        opt = maximum_matching_weight(g)
        assert m.weight() >= 0.4 * opt - 1e-9
