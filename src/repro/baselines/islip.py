"""iSLIP — round-robin iterative matching (McKeown [23]).

"The algorithm of choice in many of today's routers" per the paper's
introduction.  Like PIM but grants and accepts use round-robin
pointers instead of coins, which desynchronizes the port pointers under
load and drives throughput toward 100% for uniform traffic:

1. **request** — unmatched inputs request all backlogged outputs;
2. **grant** — each unmatched output grants the requesting input
   closest (cyclically) to its grant pointer;
3. **accept** — each input accepts the granting output closest to its
   accept pointer; *only on the first iteration* of a slot do the
   winning pointers advance (one past the accepted port), which is the
   key de-synchronization rule of iSLIP.

Stateful across cell slots, hence a class.  The per-iteration work is
vectorized: grant and accept are ``argmin`` over cyclic-distance key
matrices (``(i − ptr_j) mod N``), one ``(N, N)`` array op per phase,
instead of Python scans over per-port request/grant sets.  Being
deterministic given the pointer state, the vectorized form is exactly
the textbook algorithm — ties cannot occur because cyclic distances
within a column (row) are distinct.
"""

from __future__ import annotations

import numpy as np


class IslipScheduler:
    """iSLIP scheduler state for an N×N switch."""

    def __init__(self, num_inputs: int, num_outputs: int, iterations: int = 4):
        if iterations < 1:
            raise ValueError("need at least one iteration")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.iterations = iterations
        self.grant_ptr = np.zeros(num_outputs, dtype=np.int64)  # per output
        self.accept_ptr = np.zeros(num_inputs, dtype=np.int64)  # per input
        self._in_ids = np.arange(num_inputs, dtype=np.int64)
        self._out_ids = np.arange(num_outputs, dtype=np.int64)
        # Cached cyclic-distance key matrices; only the columns/rows
        # whose pointers moved are recomputed after a first-iteration
        # win (pointers are internal state — mutate them only through
        # schedule()/schedule_matrix()).
        self._gkey = (self._in_ids[:, None] - self.grant_ptr[None, :]) % num_inputs
        self._akey = (self._out_ids[None, :] - self.accept_ptr[:, None]) % num_outputs

    @staticmethod
    def _rr_pick(candidates: list[int], ptr: int, modulo: int) -> int:
        """Candidate closest to ``ptr`` going cyclically upward."""
        return min(candidates, key=lambda c: (c - ptr) % modulo)

    def schedule_matrix(
        self, requests: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One cell-slot schedule on a boolean request matrix.

        ``requests[i, j]`` is ``True`` when input ``i`` has cells
        queued for output ``j``.  Returns matched ``(inputs, outputs)``
        index arrays forming a partial permutation; pointer state
        advances per the first-iteration-only rule.
        """
        requests = np.asarray(requests, dtype=bool)
        ni, no = self.num_inputs, self.num_outputs
        if requests.shape != (ni, no):
            raise ValueError(
                f"request matrix {requests.shape}, expected {(ni, no)}"
            )
        in_free = np.ones(ni, dtype=bool)
        out_free = np.ones(no, dtype=bool)
        mi: list[np.ndarray] = []
        mj: list[np.ndarray] = []
        best = np.empty(ni, dtype=np.int64)
        for it in range(self.iterations):
            live = requests & in_free[:, None]
            live &= out_free[None, :]
            if not live.any():
                break
            # grant: per output, the requesting input closest to its pointer
            gi = np.argmin(np.where(live, self._gkey, ni), axis=0)
            granted = live[gi, self._out_ids]
            jv = self._out_ids[granted]  # outputs that granted...
            iv = gi[granted]  # ...and the input each one granted to
            # accept: per input, the granting output closest to its
            # pointer.  Grant events are compact (≤ one per output), so
            # resolve the per-input argmin with a scatter-min over
            # encoded (accept key, output) — keys within an input's
            # candidates are distinct, so min(enc) ⇔ min(akey).
            enc = self._akey[iv, jv] * no + jv
            best.fill(ni * no + no)
            np.minimum.at(best, iv, enc)
            acc = best[iv] == enc
            ai = iv[acc]
            ajv = jv[acc]
            in_free[ai] = False
            out_free[ajv] = False
            if it == 0 and ai.size:
                # Pointers advance only for first-iteration wins.
                self.grant_ptr[ajv] = (ai + 1) % ni
                self.accept_ptr[ai] = (ajv + 1) % no
                self._gkey[:, ajv] = (
                    self._in_ids[:, None] - self.grant_ptr[ajv][None, :]
                ) % ni
                self._akey[ai, :] = (
                    self._out_ids[None, :] - self.accept_ptr[ai][:, None]
                ) % no
            mi.append(ai)
            mj.append(ajv)
        if not mi:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(mi), np.concatenate(mj)

    def schedule(self, demand: list[set[int]]) -> list[tuple[int, int]]:
        """One cell-slot schedule; ``demand[i]`` = backlogged outputs of input i.

        Returns matched ``(input, output)`` pairs.
        """
        if len(demand) != self.num_inputs:
            raise ValueError(
                f"demand for {len(demand)} inputs, expected {self.num_inputs}"
            )
        requests = np.zeros((self.num_inputs, self.num_outputs), dtype=bool)
        for i, outs in enumerate(demand):
            if outs:
                requests[i, sorted(outs)] = True
        mi, mj = self.schedule_matrix(requests)
        return [(int(i), int(j)) for i, j in zip(mi, mj)]
