"""Interleaved weight-class MWM — the O(log n)-style LPS variant.

The sequential implementation in :mod:`repro.baselines.lps_mwm`
processes weight classes one after another (O(log W · log n) rounds) —
the deviation DESIGN.md §2 documents.  The actual [18] result
interleaves the classes to finish in O(log n).  This module provides
an interleaved *engineering* variant:

every phase, each unmatched node targets its **heaviest class with an
available incident edge** and runs one Israeli–Itai step restricted to
that class; acceptors only accept proposals of their own current
class.  Since a node's current class is its best available one, a
proposal can never arrive on a class strictly heavier than the
acceptor's (that edge would *be* the acceptor's class), so priorities
are mutually consistent and heavier edges win locally.

Phases are not pre-scheduled per class, so the total round count
behaves like Israeli–Itai's O(log n) rather than O(log W · log n);
bench A4 measures both that and the quality difference.  We make no
sharper claim than the measured ≥ ¼-style behaviour (the exact [18]
analysis does not transfer verbatim to this simplification — see the
bench's printed comparison).
"""

from __future__ import annotations

from typing import Generator

from repro.baselines.israeli_itai import matching_from_mates
from repro.baselines.lps_mwm import _weight_class
from repro.distributed.network import Network, RunResult
from repro.distributed.node import Node
from repro.graphs.graph import Graph
from repro.matching.matching import Matching

_PROPOSE = "p"
_ACCEPT = "a"
_MATCHED = "m"


def lps_interleaved_program(
    node: Node,
    wmax: float,
    num_classes: int,
) -> Generator[None, None, int]:
    """Node program; returns the node's mate id, or -1."""
    cls_of: dict[int, int] = {}
    for u in node.neighbors:
        j = _weight_class(node.edge_weight(u), wmax)
        if j < num_classes:
            cls_of[u] = j
    mate = -1
    dead: set[int] = set()
    announced = False
    while True:
        active = (
            {u for u in cls_of if u not in dead} if mate == -1 else set()
        )
        if mate != -1 or not active:
            node.finish(mate)
            return mate
        # Heaviest available class = smallest index among active edges.
        my_cls = min(cls_of[u] for u in active)
        cands = sorted(u for u in active if cls_of[u] == my_cls)
        proposer = bool(node.rng.integers(0, 2))
        target = -1
        if proposer:
            target = int(node.rng.choice(cands))
            node.send(target, (_PROPOSE, my_cls))
        yield
        if not proposer:
            # Accept only same-class proposals (heavier can't arrive).
            props = sorted(
                src
                for src, p in node.inbox
                if p[0] == _PROPOSE and p[1] == my_cls and src in cands
            )
            if props:
                mate = int(node.rng.choice(props))
                node.send(mate, (_ACCEPT,))
        yield
        if proposer and target != -1:
            if any(s == target and p[0] == _ACCEPT for s, p in node.inbox):
                mate = target
        if mate != -1 and not announced:
            node.broadcast((_MATCHED,))
            announced = True
        yield
        for src, p in node.inbox:
            if p[0] == _MATCHED:
                dead.add(src)


def lps_interleaved_mwm(
    g: Graph,
    seed: int = 0,
    num_classes: int | None = None,
    max_rounds: int = 1_000_000,
) -> tuple[Matching, RunResult]:
    """Run the interleaved weight-class matching; returns (M, metrics)."""
    if not g.weighted:
        raise ValueError("lps_interleaved_mwm needs a weighted graph")
    if g.m == 0:
        return Matching(g), RunResult()
    import math

    wmax = max(w for *_, w in g.iter_weighted_edges())
    if num_classes is None:
        num_classes = 2 * max(1, math.ceil(math.log2(max(2, g.n)))) + 4
    net = Network(
        g,
        lps_interleaved_program,
        params={"wmax": wmax, "num_classes": num_classes},
        seed=seed,
    )
    res = net.run(max_rounds=max_rounds)
    return matching_from_mates(g, res.outputs), res
