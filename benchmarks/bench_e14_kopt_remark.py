"""E14 — the closing remark: toward (1−ε)-MWM via k-augmentations.

Paper (remark after Theorem 4.5): "(1−ε)-MWM can be obtained in
O(ε⁻⁴ log² n) time ... by adapting the PRAM algorithm of Hougardy and
Vinkemeier [14] ... Details are omitted."  The engine is Lemma 4.2: a
matching with no improving augmentation of ≤ k unmatched edges is a
k/(k+1)-MWM.  Our centralized k-opt reference walks that quality
ladder; this bench measures the ladder itself:

* worst ratio vs the k/(k+1) bound for k = 1, 2, 3 (every seed);
* Algorithm 5's (½−ε) sits between the k=1 and k=2 rungs.
"""

from repro.analysis import format_table, print_banner
from repro.core import kopt_mwm, weighted_mwm
from repro.graphs import gnp_random
from repro.graphs.weights import assign_uniform_weights
from repro.matching import maximum_matching_weight

from conftest import once

SEEDS = range(3)


def run_e14():
    rows = []
    for k in (1, 2, 3):
        worst, passes = 1.0, 0
        for s in SEEDS:
            g = assign_uniform_weights(gnp_random(18, 0.25, seed=s), seed=s)
            m, p = kopt_mwm(g, k=k)
            opt = maximum_matching_weight(g)
            worst = min(worst, m.weight() / opt)
            passes = max(passes, p)
        rows.append([f"k-opt, k={k}", k / (k + 1), worst, passes])
    # Algorithm 5 on the same suite, for placement on the ladder.
    worst = 1.0
    for s in SEEDS:
        g = assign_uniform_weights(gnp_random(18, 0.25, seed=s), seed=s)
        m, _, _ = weighted_mwm(g, eps=0.1, seed=s)
        worst = min(worst, m.weight() / maximum_matching_weight(g))
    rows.append(["Algorithm 5 (1/2−ε)", 0.4, worst, "-"])
    return rows


def test_kopt_ladder(benchmark, report):
    rows = once(benchmark, run_e14)

    def show():
        print_banner(
            "E14 — the remark's quality ladder (Lemma 4.2 fixed points)",
            "no improving ≤k-unmatched-edge augmentation ⟹ "
            "w(M) ≥ k/(k+1)·w(M*)",
        )
        print(format_table(
            ["algorithm", "guarantee", "worst ratio", "passes"], rows
        ))

    report(show)
    for _name, guarantee, worst, _p in rows:
        assert worst >= guarantee - 1e-9
    # The ladder is monotone in k on these instances.
    assert rows[0][2] <= rows[1][2] + 1e-9 <= rows[2][2] + 2e-9
