"""White-box tests of the Aug iteration protocol (Section 3.2).

Hand-constructed instances exercise the protocol's tricky internals
one at a time: delayed token launches, simultaneous-arrival collision
resolution, dead tokens leaving no state, mixed path lengths, and the
exact round schedule.
"""

import numpy as np
import pytest

from repro.baselines.israeli_itai import matching_from_mates
from repro.core.bipartite_mcm import (
    _choose_contributor,
    _conflict_bound,
    _draw_winner_number,
    aug_bipartite,
    aug_iteration_program,
)
from repro.distributed import Network
from repro.graphs import Graph
from repro.matching import Matching


def run_once(g, xside, mates, ell, seed=0):
    hi = _conflict_bound(g.n, g.max_degree(), ell) ** 4
    net = Network(
        g,
        aug_iteration_program,
        params={"xside": xside, "mates": mates, "ell": ell, "hi": hi},
        seed=seed,
    )
    res = net.run()
    return [res.outputs[v][0] for v in range(g.n)], res


class TestRoundSchedule:
    def test_iteration_is_exactly_3ell_plus_3_rounds(self):
        for ell in (1, 3, 5, 7):
            n = ell + 3
            g = Graph(n, [(i, i + 1) for i in range(n - 1)])
            xside = [v % 2 == 0 for v in range(n)]
            _, res = run_once(g, xside, [-1] * n, ell)
            assert res.rounds == 3 * ell + 3, ell


class TestSingleEdge:
    def test_free_pair_matches(self):
        g = Graph(2, [(0, 1)])
        mates, _ = run_once(g, [True, False], [-1, -1], 1)
        assert mates == [1, 0]

    def test_matched_pair_unchanged(self):
        g = Graph(2, [(0, 1)])
        mates, _ = run_once(g, [True, False], [1, 0], 1)
        assert mates == [1, 0]

    def test_isolated_nodes_idle(self):
        g = Graph(3, [(0, 1)])
        mates, _ = run_once(g, [True, False, True], [-1, -1, -1], 1)
        assert mates[2] == -1


class TestCollisionResolution:
    def test_two_leaders_one_origin(self):
        """Two free Y nodes compete for one free X: exactly one wins."""
        g = Graph(3, [(0, 1), (0, 2)])  # X = {0}, Y = {1, 2}
        xside = [True, False, False]
        for seed in range(6):
            mates, _ = run_once(g, xside, [-1] * 3, 1, seed=seed)
            m = matching_from_mates(g, dict(enumerate(mates)))
            assert len(m) == 1
            assert mates[0] in (1, 2)

    def test_star_contention_all_seeds(self):
        """Many leaders, one center: always exactly one augmentation."""
        g = Graph(5, [(0, i) for i in range(1, 5)])
        xside = [True, False, False, False, False]
        for seed in range(8):
            mates, _ = run_once(g, xside, [-1] * 5, 1, seed=seed)
            m = matching_from_mates(g, dict(enumerate(mates)))
            assert len(m) == 1

    def test_losing_token_leaves_no_state(self):
        """Path graph where two length-3 paths share the middle matched
        edge: one augments, the other's endpoints stay free and
        *consistent*."""
        # X: 0, 2 (2 matched to 3); Y: 1... build: f0 -u- y1 -m- x2? Use:
        #   free X = {0, 4}, free Y = {... } sharing matched edge (1, 2):
        #   0 -u- 1 =m= 2 -u- 3(free Y)  and  4 -u- 1 (second free X).
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (1, 4)])
        xside = [True, False, True, False, True]
        mates0 = [-1, 2, 1, -1, -1]
        for seed in range(8):
            mates, _ = run_once(g, xside, mates0, 3, seed=seed)
            m = matching_from_mates(g, dict(enumerate(mates)))  # validates
            # The single augmenting structure flips once: matching grows
            # from 1 to 2 edges, never more (paths conflict at 1=2).
            assert len(m) == 2


class TestMixedLengths:
    def test_short_path_preferred_by_counting(self):
        """A leader at distance 1 and another at distance 3 can both
        augment in one iteration when disjoint."""
        # Component A: 0 -u- 1 (length 1).  Component B: 2 -u- 3 =m= 4 -u- 5.
        g = Graph(6, [(0, 1), (2, 3), (3, 4), (4, 5)])
        xside = [True, False, True, False, True, False]
        mates0 = [-1, -1, -1, 4, 3, -1]
        mates, _ = run_once(g, xside, mates0, 3, seed=1)
        m = matching_from_mates(g, dict(enumerate(mates)))
        assert len(m) == 3  # both components fully augmented

    def test_visited_pruning_blocks_longer_path(self):
        """A free Y reachable at distances 3 via two routes counts only
        shortest-path contributions (first-receipt rule)."""
        from repro.core.bipartite_mcm import count_augmenting_paths

        # 0 (free X) -u- 1 =m= 2 -u- 3 (free Y); plus 0 -u- 3 directly.
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        xside = [True, False, True, False]
        mates0 = [-1, 2, 1, -1]
        counts, _ = count_augmenting_paths(g, xside, mates0, 3)
        d, n_v, _c, leader = counts[3]
        assert leader and d == 1 and n_v == 1  # only the direct edge


class TestHelpers:
    def test_choose_contributor_distribution(self):
        rng = np.random.default_rng(0)
        contrib = {7: 3, 9: 1}
        draws = [_choose_contributor(rng, contrib, 4) for _ in range(2000)]
        frac7 = draws.count(7) / len(draws)
        assert 0.70 <= frac7 <= 0.80  # expect 0.75

    def test_choose_contributor_single(self):
        rng = np.random.default_rng(0)
        assert _choose_contributor(rng, {5: 2}, 2) == 5

    def test_draw_winner_number_range(self):
        rng = np.random.default_rng(1)
        for n_v in (1, 3, 10**6):
            w = _draw_winner_number(rng, n_v, 10**8)
            assert 1 <= w <= 10**8

    def test_draw_winner_number_stochastic_dominance(self):
        """max of many uniforms dominates max of one."""
        rng = np.random.default_rng(2)
        singles = [_draw_winner_number(rng, 1, 10**6) for _ in range(500)]
        manys = [_draw_winner_number(rng, 50, 10**6) for _ in range(500)]
        assert sum(manys) / 500 > sum(singles) / 500 * 1.5

    def test_conflict_bound_monotone(self):
        assert _conflict_bound(10, 3, 3) < _conflict_bound(10, 3, 5)
        assert _conflict_bound(10, 3, 3) < _conflict_bound(20, 3, 3)


class TestAdaptiveCertificate:
    def test_no_leader_iff_no_short_path(self):
        """The adaptive stop is exactly Berge-bounded optimality."""
        from repro.matching import shortest_augmenting_path_length

        for seed in range(6):
            rng = np.random.default_rng(seed)
            from repro.graphs import bipartite_random

            g, xs, _ = bipartite_random(8, 8, 0.3, seed=seed)
            xside = [v < 8 for v in range(g.n)]
            for ell in (1, 3):
                mates, _, iters = aug_bipartite(
                    g, xside, [-1] * g.n, ell, seed=seed
                )
                m = matching_from_mates(g, dict(enumerate(mates)))
                length = shortest_augmenting_path_length(g, m)
                assert length is None or length > ell
