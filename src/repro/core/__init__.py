"""The paper's contributions.

* :mod:`repro.core.conflict_graph` — Definition 3.1's conflict graph
  C_M(ℓ) plus local-view machinery for Algorithm 2;
* :mod:`repro.core.generic_mcm` — Algorithms 1 & 2, Theorem 3.1:
  (1−ε)-MCM in O(ε⁻³ log n) rounds with O(|V|+|E|)-bit messages;
* :mod:`repro.core.bipartite_mcm` — Section 3.2, Theorem 3.8:
  (1−1/k)-MCM for bipartite graphs in O(k³ log Δ + k² log n) rounds
  with small messages (Algorithm 3 + token MIS emulation);
* :mod:`repro.core.general_mcm` — Algorithm 4, Theorem 3.11:
  (1−1/k)-MCM for general graphs via random bipartitions;
* :mod:`repro.core.weighted_mwm` — Algorithm 5, Theorem 4.5:
  (½−ε)-MWM via the derived weight function w_M;
* :mod:`repro.core.figures` — the worked examples of Figures 1 and 2.
"""

from repro.core.conflict_graph import build_conflict_graph, local_view_paths
from repro.core.generic_mcm import generic_mcm, generic_mcm_reference
from repro.core.bipartite_mcm import (
    aug_bipartite,
    bipartite_mcm,
    count_augmenting_paths,
)
from repro.core.general_mcm import general_mcm, fidelity_iterations
from repro.core.weighted_mwm import (
    apply_wraps,
    apply_wraps_array,
    derived_weights,
    derived_weights_array,
    weighted_mwm,
    weighted_mwm_array,
    weighted_mwm_batched,
    weighted_mwm_reference,
    wrap_path,
)
from repro.core.kopt_mwm import (
    find_gain_augmentations,
    find_gain_augmentations_array,
    kopt_mwm,
    kopt_mwm_array,
)

__all__ = [
    "build_conflict_graph",
    "local_view_paths",
    "generic_mcm",
    "generic_mcm_reference",
    "aug_bipartite",
    "bipartite_mcm",
    "count_augmenting_paths",
    "general_mcm",
    "fidelity_iterations",
    "apply_wraps",
    "apply_wraps_array",
    "derived_weights",
    "derived_weights_array",
    "weighted_mwm",
    "weighted_mwm_array",
    "weighted_mwm_batched",
    "weighted_mwm_reference",
    "wrap_path",
    "find_gain_augmentations",
    "find_gain_augmentations_array",
    "kopt_mwm",
    "kopt_mwm_array",
]
