"""Backend seed-identity: ArrayBackend == GeneratorBackend, byte for byte.

The ISSUE 3 acceptance bar: for every ported algorithm (Luby MIS,
Israeli–Itai, generic_mcm — joined in ISSUE 4 by the Cole–Vishkin ring
pipeline and the interleaved LPS matching, and in ISSUE 5 by the whole
weighted pipeline: the weight-class LPS box, Algorithm 5 over either
box, and the k-opt reference), the array backend must produce a
``RunResult`` byte-identical to the generator backend's from the same
seed — asserted two ways:

* directly, ``RunResult`` dataclass equality (rounds, messages, bits,
  peak, outputs) across graph families and seeds;
* against the **pre-refactor capture** ``tests/goldens/seed_identity.json``:
  the array-backend run of each golden cell must serialize to exactly
  the bytes stored in the golden file.
"""

import json

import pytest

from repro.baselines.cole_vishkin import ring_coloring, ring_maximal_matching
from repro.baselines.israeli_itai import israeli_itai_matching
from repro.baselines.lps_interleaved import lps_interleaved_mwm
from repro.baselines.lps_mwm import lps_mwm
from repro.baselines.luby_mis import luby_mis, verify_mis
from repro.core.generic_mcm import generic_mcm
from repro.core.kopt_mwm import kopt_mwm, kopt_mwm_array
from repro.core.weighted_mwm import weighted_mwm, weighted_mwm_array
from repro.graphs import (
    Graph,
    barabasi_albert,
    comb_graph,
    complete_graph,
    crown_graph,
    cycle_graph,
    gnp_random,
    path_graph,
    star_graph,
    watts_strogatz,
)
from repro.graphs.weights import assign_uniform_weights

from tests.golden_harness import GOLDEN_PATH, _edges, _res_dict, to_canonical_json

GRAPHS = {
    "gnp": gnp_random(26, 0.18, seed=1),
    "ba": barabasi_albert(30, 2, seed=2),
    "ws": watts_strogatz(24, 4, 0.2, seed=3),
    "cycle": cycle_graph(9),
    "path2": path_graph(2),
    "star": star_graph(11),
    "complete": complete_graph(8),
    "crown": crown_graph(5)[0],
    "empty": Graph(6),
    "isolated": Graph(8, [(0, 1), (2, 3)]),
    # Trailing degree-0 vertices after a degree->=2 vertex: the shape
    # that exposed the clamped-reduceat truncation (ISSUE 5 review).
    "tail_isolated": Graph(6, [(0, 1), (0, 2), (1, 2)]),
}


@pytest.mark.parametrize("name", sorted(GRAPHS))
@pytest.mark.parametrize("seed", [0, 1, 7])
class TestBackendEquivalence:
    def test_luby_mis(self, name, seed):
        g = GRAPHS[name]
        mis_g, res_g = luby_mis(g, seed=seed)
        mis_a, res_a = luby_mis(g, seed=seed, backend="array")
        assert mis_g == mis_a
        assert res_g == res_a
        assert verify_mis(g, mis_a)

    def test_israeli_itai(self, name, seed):
        g = GRAPHS[name]
        m_g, res_g = israeli_itai_matching(g, seed=seed)
        m_a, res_a = israeli_itai_matching(g, seed=seed, backend="array")
        assert sorted(m_g.edges()) == sorted(m_a.edges())
        assert res_g == res_a


@pytest.mark.parametrize("seed", [0, 5])
@pytest.mark.parametrize("name", ["gnp", "comb", "cycle"])
class TestGenericMcmEquivalence:
    def test_generic_mcm(self, name, seed):
        g = comb_graph(8) if name == "comb" else GRAPHS[name]
        m_g, st_g = generic_mcm(g, k=2, seed=seed)
        m_a, st_a = generic_mcm(g, k=2, seed=seed, backend="array")
        assert sorted(m_g.edges()) == sorted(m_a.edges())
        assert st_g.result == st_a.result
        assert st_g.views == st_a.views
        assert st_g.conflict_sizes == st_a.conflict_sizes
        assert st_g.mis_sizes == st_a.mis_sizes


@pytest.mark.parametrize("n", [3, 5, 9, 17, 64])
class TestColeVishkinEquivalence:
    def test_ring_coloring(self, n):
        g = cycle_graph(n)
        colors_g, res_g = ring_coloring(g)
        colors_a, res_a = ring_coloring(g, backend="array")
        assert colors_g == colors_a
        assert res_g == res_a
        assert set(colors_a.values()) <= {0, 1, 2}

    def test_ring_matching(self, n):
        g = cycle_graph(n)
        m_g, res_g = ring_maximal_matching(g)
        m_a, res_a = ring_maximal_matching(g, backend="array")
        assert sorted(m_g.edges()) == sorted(m_a.edges())
        assert res_g == res_a


@pytest.mark.parametrize("seed", [0, 1, 9])
@pytest.mark.parametrize("name", ["gnp", "ba", "ws"])
class TestLpsInterleavedEquivalence:
    def test_lps_interleaved(self, name, seed):
        g = assign_uniform_weights(GRAPHS[name], seed=seed + 1)
        m_g, res_g = lps_interleaved_mwm(g, seed=seed)
        m_a, res_a = lps_interleaved_mwm(g, seed=seed, backend="array")
        assert sorted(m_g.edges()) == sorted(m_a.edges())
        assert res_g == res_a


@pytest.mark.parametrize("seed", [0, 1, 9])
@pytest.mark.parametrize("name", ["gnp", "ba", "star", "isolated"])
class TestLpsMwmEquivalence:
    def test_lps_mwm(self, name, seed):
        g = assign_uniform_weights(GRAPHS[name], seed=seed + 1)
        m_g, res_g = lps_mwm(g, seed=seed)
        m_a, res_a = lps_mwm(g, seed=seed, backend="array")
        assert sorted(m_g.edges()) == sorted(m_a.edges())
        assert res_g == res_a


@pytest.mark.parametrize("seed", [0, 7])
@pytest.mark.parametrize("name", ["gnp", "ba", "cycle"])
class TestWeightedMwmEquivalence:
    """Algorithm 5 end to end: kernel + box + wrap surgery, both boxes."""

    def test_sequential_box(self, name, seed):
        g = assign_uniform_weights(GRAPHS[name], seed=seed + 1)
        m_g, res_g, it_g = weighted_mwm(g, eps=0.3, seed=seed)
        m_a, res_a, it_a = weighted_mwm(g, eps=0.3, seed=seed, backend="array")
        assert sorted(m_g.edges()) == sorted(m_a.edges())
        assert res_g == res_a
        assert it_g == it_a

    def test_interleaved_box_adaptive(self, name, seed):
        g = assign_uniform_weights(GRAPHS[name], seed=seed + 1)
        m_g, res_g, it_g = weighted_mwm(
            g, eps=0.3, seed=seed, box="interleaved", adaptive=True
        )
        m_a, res_a, it_a = weighted_mwm_array(
            g, eps=0.3, seed=seed, box="interleaved", adaptive=True
        )
        assert sorted(m_g.edges()) == sorted(m_a.edges())
        assert res_g == res_a
        assert it_g == it_a


@pytest.mark.parametrize("k", [1, 2])
@pytest.mark.parametrize("name", ["gnp", "ba", "crown", "isolated"])
class TestKoptEquivalence:
    def test_kopt(self, name, k):
        g = assign_uniform_weights(GRAPHS[name], seed=k)
        m_s, p_s = kopt_mwm(g, k=k)
        m_a, p_a = kopt_mwm_array(g, k=k)
        assert sorted(m_s.edges()) == sorted(m_a.edges())
        assert p_s == p_a


class TestArrayBackendMatchesGoldens:
    """Array-backend reruns of the golden cells, byte-compared.

    The golden file was captured *before* the CSR refactor and has
    pinned the generator engine ever since; matching it from the array
    backend closes the chain: pre-refactor engine == generator backend
    == array backend.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    def _assert_cell(self, golden, key, computed):
        assert to_canonical_json(computed) == to_canonical_json(golden[key])

    def test_luby_cells(self, golden):
        mis, res = luby_mis(barabasi_albert(30, 2, seed=2), seed=5, backend="array")
        self._assert_cell(
            golden, "luby_mis/ba30", {"mis": sorted(mis), "res": _res_dict(res)}
        )
        mis, res = luby_mis(gnp_random(24, 0.2, seed=1), seed=6, backend="array")
        self._assert_cell(
            golden, "luby_mis/gnp24", {"mis": sorted(mis), "res": _res_dict(res)}
        )

    def test_israeli_itai_cells(self, golden):
        m, res = israeli_itai_matching(
            gnp_random(24, 0.2, seed=1), seed=5, backend="array"
        )
        self._assert_cell(
            golden, "israeli_itai/gnp24", {"edges": _edges(m), "res": _res_dict(res)}
        )
        m, res = israeli_itai_matching(
            barabasi_albert(30, 2, seed=2), seed=7, backend="array"
        )
        self._assert_cell(
            golden, "israeli_itai/ba30", {"edges": _edges(m), "res": _res_dict(res)}
        )

    def test_cole_vishkin_cells(self, golden):
        g = cycle_graph(9)
        colors, res = ring_coloring(g, backend="array")
        self._assert_cell(
            golden,
            "cole_vishkin_coloring/ring9",
            {
                "colors": {str(k): colors[k] for k in sorted(colors)},
                "res": _res_dict(res),
            },
        )
        m, res = ring_maximal_matching(g, backend="array")
        self._assert_cell(
            golden,
            "cole_vishkin_matching/ring9",
            {"edges": _edges(m), "res": _res_dict(res)},
        )

    def test_lps_interleaved_cell(self, golden):
        g_w = assign_uniform_weights(gnp_random(20, 0.3, seed=3), seed=4)
        m, res = lps_interleaved_mwm(g_w, seed=9, backend="array")
        self._assert_cell(
            golden,
            "lps_interleaved/gnp20w",
            {"edges": _edges(m), "res": _res_dict(res)},
        )

    def test_generic_mcm_cell(self, golden):
        m, stats = generic_mcm(comb_graph(8), k=2, seed=7, backend="array")
        self._assert_cell(
            golden,
            "generic_mcm/comb8",
            {
                "edges": _edges(m),
                "conflict_sizes": {
                    str(k): v for k, v in sorted(stats.conflict_sizes.items())
                },
                "mis_sizes": {str(k): v for k, v in sorted(stats.mis_sizes.items())},
                "res": _res_dict(stats.result),
            },
        )

    def test_lps_mwm_cells(self, golden):
        g_w = assign_uniform_weights(gnp_random(20, 0.3, seed=3), seed=4)
        m, res = lps_mwm(g_w, seed=9, backend="array")
        self._assert_cell(
            golden, "lps_mwm/gnp20w", {"edges": _edges(m), "res": _res_dict(res)}
        )
        g_baw = assign_uniform_weights(barabasi_albert(30, 2, seed=2), seed=8)
        m, res = lps_mwm(g_baw, seed=11, backend="array")
        self._assert_cell(
            golden, "lps_mwm/ba30w", {"edges": _edges(m), "res": _res_dict(res)}
        )

    def test_weighted_mwm_cells(self, golden):
        g_w = assign_uniform_weights(gnp_random(20, 0.3, seed=3), seed=4)
        m, res, iters = weighted_mwm(g_w, eps=0.3, seed=7, backend="array")
        self._assert_cell(
            golden,
            "weighted_mwm/gnp20w",
            {
                "edges": _edges(m),
                "weight": m.weight(),
                "iterations": iters,
                "res": _res_dict(res),
            },
        )
        m, res, iters = weighted_mwm(
            g_w, eps=0.3, seed=7, box="interleaved", backend="array"
        )
        self._assert_cell(
            golden,
            "weighted_mwm_interleaved/gnp20w",
            {
                "edges": _edges(m),
                "weight": m.weight(),
                "iterations": iters,
                "res": _res_dict(res),
            },
        )

    def test_kopt_cell(self, golden):
        g_w = assign_uniform_weights(gnp_random(20, 0.3, seed=3), seed=4)
        m, passes = kopt_mwm_array(g_w, k=2)
        self._assert_cell(
            golden,
            "kopt_mwm/gnp20w",
            {"edges": _edges(m), "weight": m.weight(), "passes": passes},
        )
