"""Graph substrate: data structures, generators and IO.

This subpackage is self-contained (no networkx dependency at runtime);
all simulator and algorithm code builds on :class:`repro.graphs.Graph`.
"""

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    barabasi_albert,
    barbell_graph,
    bipartite_random,
    caterpillar_graph,
    comb_graph,
    complete_bipartite,
    complete_graph,
    crown_graph,
    cycle_graph,
    gnm_random,
    gnp_random,
    grid_graph,
    hypercube_graph,
    kronecker,
    lollipop_graph,
    path_graph,
    planted_matching,
    powerlaw_configuration,
    random_regular,
    random_tree,
    star_graph,
    switch_demand_graph,
    watts_strogatz,
)
from repro.graphs.weights import (
    assign_exponential_weights,
    assign_integer_weights,
    assign_uniform_weights,
)
from repro.graphs.io import read_edgelist, write_edgelist

__all__ = [
    "Graph",
    "barabasi_albert",
    "barbell_graph",
    "bipartite_random",
    "caterpillar_graph",
    "comb_graph",
    "hypercube_graph",
    "complete_bipartite",
    "complete_graph",
    "crown_graph",
    "cycle_graph",
    "gnm_random",
    "gnp_random",
    "grid_graph",
    "kronecker",
    "lollipop_graph",
    "path_graph",
    "planted_matching",
    "powerlaw_configuration",
    "random_regular",
    "random_tree",
    "star_graph",
    "switch_demand_graph",
    "watts_strogatz",
    "assign_exponential_weights",
    "assign_integer_weights",
    "assign_uniform_weights",
    "read_edgelist",
    "write_edgelist",
]
