"""Tests for the VOQ switch fabric."""

import pytest

from repro.switch import Switch
from repro.switch.fabric import SwitchStats


class TestSwitch:
    def test_enqueue_and_demand(self):
        sw = Switch(4)
        sw.enqueue(0, 2, slot=0)
        sw.enqueue(0, 3, slot=0)
        sw.enqueue(1, 2, slot=0)
        assert sw.demand() == [{2, 3}, {2}, set(), set()]

    def test_transfer_moves_cells(self):
        sw = Switch(3)
        sw.enqueue(0, 1, slot=0)
        moved = sw.transfer([(0, 1)], slot=2)
        assert moved == 1
        assert sw.stats.departures == 1
        assert sw.stats.total_delay == 2
        assert sw.backlog() == 0

    def test_fifo_order_within_voq(self):
        sw = Switch(2)
        sw.enqueue(0, 1, slot=0)
        sw.enqueue(0, 1, slot=5)
        sw.transfer([(0, 1)], slot=10)
        assert sw.stats.total_delay == 10  # first-in departed
        sw.transfer([(0, 1)], slot=11)
        assert sw.stats.total_delay == 16

    def test_non_matching_schedule_rejected(self):
        sw = Switch(3)
        sw.enqueue(0, 1, slot=0)
        sw.enqueue(2, 1, slot=0)
        with pytest.raises(ValueError, match="not a matching"):
            sw.transfer([(0, 1), (2, 1)], slot=1)

    def test_empty_voq_schedule_rejected(self):
        sw = Switch(2)
        with pytest.raises(ValueError, match="empty VOQ"):
            sw.transfer([(0, 1)], slot=0)

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            Switch(0)


class TestStats:
    def test_throughput_per_port(self):
        st = SwitchStats(slots=10, departures=20, ports=4)
        assert st.throughput == 0.5

    def test_zero_division_guards(self):
        st = SwitchStats()
        assert st.throughput == 0.0
        assert st.mean_delay == 0.0
        assert st.mean_match_size == 0.0

    def test_mean_delay(self):
        st = SwitchStats(departures=4, total_delay=10)
        assert st.mean_delay == 2.5

    def test_mean_match_size(self):
        st = SwitchStats(match_sizes=[2, 4])
        assert st.mean_match_size == 3.0
