"""E7 — Lemmas 3.4/3.5: the Hopcroft–Karp phase structure.

Claims measured, per phase ℓ = 1, 3, 5 of the bipartite algorithm:
* after phase ℓ, the shortest augmenting path exceeds ℓ (Lemma 3.4 +
  maximality of the applied set);
* the matching size then satisfies |M| ≥ (1 − 1/(k+1))·|M*| for
  ℓ = 2k−1 (Lemma 3.5).
"""

from repro.analysis import format_table, print_banner
from repro.core import aug_bipartite
from repro.graphs import bipartite_random
from repro.matching import (
    Matching,
    hopcroft_karp,
    shortest_augmenting_path_length,
)

from conftest import once

SEEDS = range(4)


def run_e7():
    rows = []
    for s in SEEDS:
        g, xs, _ = bipartite_random(30, 30, 0.1, seed=s)
        xside = [v < 30 for v in range(g.n)]
        opt = len(hopcroft_karp(g, xs))
        mates = [-1] * g.n
        for ell in (1, 3, 5):
            mates, _, _ = aug_bipartite(g, xside, mates, ell, seed=50 + s)
            m = Matching(g, [(v, mates[v]) for v in range(g.n) if v < mates[v]])
            shortest = shortest_augmenting_path_length(g, m)
            k = (ell + 1) // 2
            rows.append(
                [
                    s,
                    ell,
                    "none" if shortest is None else shortest,
                    len(m),
                    (1 - 1 / (k + 1)) * opt,
                    opt,
                ]
            )
    return rows


def test_phase_structure(benchmark, report):
    rows = once(benchmark, run_e7)

    def show():
        print_banner(
            "E7 / Lemmas 3.4–3.5 — phase invariants of the HK structure",
            "after phase ℓ: shortest augmenting path > ℓ and "
            "|M| ≥ (1−1/(k+1))·|M*| for ℓ=2k−1",
        )
        print(format_table(
            ["seed", "phase ℓ", "shortest aug path after", "|M|",
             "bound (1−1/(k+1))·|M*|", "|M*|"], rows
        ))

    report(show)
    for _s, ell, shortest, size, bound, _opt in rows:
        assert shortest == "none" or shortest > ell
        assert size >= bound - 1e-9
