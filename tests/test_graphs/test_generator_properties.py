"""Property net over *every* public generator, old and new.

Uniform invariants (no self-loops / duplicates, degree-sum = 2m,
seed-determinism) are asserted for the whole catalog through one
parameterized fixture list, so adding a generator without property
coverage fails the completeness test.  Family-specific invariants
(BA minimum degree, d-regularity, planted perfect matching, ...) are
asserted per family below.
"""

import pytest

import repro.graphs as graphs_pkg
from repro.graphs import (
    Graph,
    barabasi_albert,
    barbell_graph,
    bipartite_random,
    caterpillar_graph,
    comb_graph,
    complete_bipartite,
    complete_graph,
    crown_graph,
    cycle_graph,
    gnm_random,
    gnp_random,
    grid_graph,
    hypercube_graph,
    kronecker,
    lollipop_graph,
    path_graph,
    planted_matching,
    powerlaw_configuration,
    random_regular,
    random_tree,
    star_graph,
    switch_demand_graph,
    watts_strogatz,
)


def _graph_of(result):
    """Unwrap builders that return (graph, ...) tuples."""
    return result[0] if isinstance(result, tuple) else result


# Every public generator: name -> builder(seed) at a fixed small scale.
# Deterministic families ignore the seed.
CATALOG = {
    "gnp_random": lambda seed: gnp_random(40, 0.12, seed=seed),
    "gnm_random": lambda seed: gnm_random(30, 60, seed=seed),
    "bipartite_random": lambda seed: bipartite_random(15, 18, 0.2, seed=seed),
    "complete_graph": lambda seed: complete_graph(9),
    "complete_bipartite": lambda seed: complete_bipartite(5, 7),
    "path_graph": lambda seed: path_graph(12),
    "cycle_graph": lambda seed: cycle_graph(11),
    "star_graph": lambda seed: star_graph(10),
    "grid_graph": lambda seed: grid_graph(4, 6),
    "crown_graph": lambda seed: crown_graph(6),
    "random_tree": lambda seed: random_tree(25, seed=seed),
    "random_regular": lambda seed: random_regular(20, 3, seed=seed),
    "hypercube_graph": lambda seed: hypercube_graph(4),
    "barbell_graph": lambda seed: barbell_graph(5, bridge=2),
    "caterpillar_graph": lambda seed: caterpillar_graph(6, legs=2, seed=seed),
    "comb_graph": lambda seed: comb_graph(8),
    "switch_demand_graph": lambda seed: switch_demand_graph(10, 0.4, seed=seed),
    "barabasi_albert": lambda seed: barabasi_albert(40, 3, seed=seed),
    "watts_strogatz": lambda seed: watts_strogatz(30, 4, 0.3, seed=seed),
    "powerlaw_configuration": lambda seed: powerlaw_configuration(
        60, 2.5, seed=seed
    ),
    "kronecker": lambda seed: kronecker(5, seed=seed),
    "planted_matching": lambda seed: planted_matching(30, 0.15, seed=seed),
    "lollipop_graph": lambda seed: lollipop_graph(7, 9),
}

# Families whose output varies with the seed.
RANDOM_FAMILIES = {
    "gnp_random",
    "gnm_random",
    "bipartite_random",
    "random_tree",
    "random_regular",
    "switch_demand_graph",
    "barabasi_albert",
    "watts_strogatz",
    "powerlaw_configuration",
    "kronecker",
    "planted_matching",
}


def test_catalog_is_complete():
    """Every generator exported by repro.graphs is property-tested."""
    exported = {
        name
        for name in graphs_pkg.__all__
        if name not in {"Graph", "read_edgelist", "write_edgelist"}
        and not name.startswith("assign_")
    }
    assert exported == set(CATALOG)


@pytest.mark.parametrize("name", sorted(CATALOG))
class TestUniversalInvariants:
    def test_simple_graph(self, name):
        """No self-loops, no duplicates, endpoints in range, u < v."""
        g = _graph_of(CATALOG[name](seed=3))
        seen = set()
        for u, v in g.edges():
            assert 0 <= u < v < g.n
            assert (u, v) not in seen
            seen.add((u, v))

    def test_degree_sum_is_2m(self, name):
        g = _graph_of(CATALOG[name](seed=3))
        assert sum(g.degree(v) for v in g.vertices()) == 2 * g.m

    def test_adjacency_consistent_with_edges(self, name):
        g = _graph_of(CATALOG[name](seed=3))
        for u, v in g.edges():
            assert v in g.neighbors(u) and u in g.neighbors(v)
            assert g.has_edge(u, v)

    def test_same_seed_identical(self, name):
        a = _graph_of(CATALOG[name](seed=11))
        b = _graph_of(CATALOG[name](seed=11))
        assert (a.n, a.edges()) == (b.n, b.edges())

    def test_different_seed_differs(self, name):
        if name not in RANDOM_FAMILIES:
            pytest.skip("deterministic family")
        # A single seed pair can collide by chance; require that *some*
        # seed in a small set changes the graph.
        base = _graph_of(CATALOG[name](seed=0)).edges()
        assert any(
            _graph_of(CATALOG[name](seed=s)).edges() != base for s in (1, 2, 3)
        )


class TestFamilyInvariants:
    def test_barabasi_albert_min_degree(self):
        g = barabasi_albert(50, 3, seed=5)
        assert min(g.degree(v) for v in g.vertices()) >= 3
        # |E| = C(m+1, 2) seed clique + m per later vertex.
        assert g.m == 6 + (50 - 4) * 3

    def test_barabasi_albert_skew(self):
        """Preferential attachment grows hubs well above the minimum."""
        g = barabasi_albert(300, 2, seed=5)
        assert g.max_degree() >= 15

    def test_barabasi_albert_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 2)
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)

    def test_watts_strogatz_edge_count_preserved(self):
        """Rewiring moves endpoints but never changes |E| = n·k/2."""
        for beta in (0.0, 0.3, 1.0):
            g = watts_strogatz(40, 6, beta, seed=2)
            assert g.m == 40 * 3

    def test_watts_strogatz_beta_zero_is_ring_lattice(self):
        g = watts_strogatz(20, 4, 0.0, seed=9)
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.has_edge(0, 1) and g.has_edge(0, 2) and g.has_edge(0, 19)

    def test_watts_strogatz_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(ValueError):
            watts_strogatz(4, 4, 0.1)  # k >= n
        with pytest.raises(ValueError):
            watts_strogatz(10, 4, 1.5)  # bad beta

    def test_random_regular_is_regular(self):
        for d in (2, 3, 4):
            g = random_regular(18, d, seed=d)
            assert all(g.degree(v) == d for v in g.vertices())

    def test_powerlaw_configuration_respects_caps(self):
        g = powerlaw_configuration(80, 2.2, min_deg=2, seed=4)
        # Erasure only removes edges, so drawn degrees are an upper
        # bound and n-1 a hard cap.
        assert g.max_degree() <= 79
        assert g.m >= 40  # min_deg=2 implies >= n stubs even after erasure slack

    def test_powerlaw_configuration_validation(self):
        with pytest.raises(ValueError):
            powerlaw_configuration(10, 1.0)
        with pytest.raises(ValueError):
            powerlaw_configuration(10, 2.5, min_deg=0)

    def test_kronecker_vertex_count(self):
        assert kronecker(3, seed=1).n == 8
        assert kronecker(4, seed=1).n == 16

    def test_kronecker_custom_initiator(self):
        g = kronecker(2, initiator=[[1.0, 0.0], [0.0, 1.0]], seed=1)
        assert g.n == 4 and g.m == 0  # identity initiator has no off-diagonal mass

    def test_kronecker_validation(self):
        with pytest.raises(ValueError):
            kronecker(0)
        with pytest.raises(ValueError):
            kronecker(2, initiator=[[0.5, 1.2], [0.3, 0.1]])
        with pytest.raises(ValueError):
            kronecker(20)  # dense sampler size guard

    def test_planted_matching_is_perfect_matching(self):
        g, pairs = planted_matching(40, 0.1, seed=8)
        assert len(pairs) == 20
        used = [x for p in pairs for x in p]
        assert sorted(used) == list(range(40))  # perfect: every vertex once
        assert all(g.has_edge(u, v) for u, v in pairs)

    def test_planted_matching_zero_noise_is_exactly_the_matching(self):
        g, pairs = planted_matching(12, 0.0, seed=1)
        assert g.m == 6
        assert sorted(g.edges()) == sorted(pairs)

    def test_planted_matching_validation(self):
        with pytest.raises(ValueError):
            planted_matching(7)  # odd
        with pytest.raises(ValueError):
            planted_matching(10, noise=-0.1)

    def test_lollipop_degrees(self):
        g = lollipop_graph(6, 4)
        assert g.n == 10
        assert g.m == 15 + 4
        assert g.max_degree() == 6  # junction vertex: 5 clique + 1 tail
        assert g.degree(9) == 1  # tail tip

    def test_lollipop_validation(self):
        with pytest.raises(ValueError):
            lollipop_graph(2, 5)
        with pytest.raises(ValueError):
            lollipop_graph(5, 0)
