"""Weight-class constant-factor MWM — the paper's black box [18].

Lotker, Patt-Shamir & Rosén (PODC 2007) give a randomized (¼−ε)-MWM in
O(log n) time; Algorithm 5 of the reproduced paper consumes *any*
δ-MWM with constant δ as a black box (Theorem 4.5 plugs in [18] with
δ = 1/5).

We implement the weight-class skeleton of that result:

1. round weights into geometric classes — class j holds edges with
   ``w ∈ (wmax/2^{j+1}, wmax/2^j]``; edges below ``wmax/2^C`` are
   dropped (with ``C = 2⌈log₂ n⌉ + 4`` their total contribution is at
   most ``n · wmax/n⁴ ≤ w(M*)/n²`` — negligible);
2. for j = 0, 1, … (heavy to light): run Israeli–Itai maximal matching
   on the residual class-j subgraph and freeze its edges.

Charging each optimal edge to the chosen edge that blocked it (which
lies in an equal-or-heavier class) gives ``w'(M*) ≤ 2·w'(M)`` on the
rounded weights and hence ``w(M) ≥ w(M*)/4`` up to the ε-rounding —
the same δ = ¼−ε guarantee as [18].

**Documented deviation** (DESIGN.md §2): [18] interleaves all classes
to finish in O(log n) rounds; we run classes sequentially, costing
O(log W · log n) simulated rounds.  Algorithm 5's *quality* analysis
only needs the constant δ, so the reproduction of Theorem 4.5's
approximation behaviour is unaffected; its round counts are reported
with this substitution noted (EXPERIMENTS.md).

The protocol is fully lockstep: every node executes exactly
``num_classes × phases_per_class × 3`` rounds, idling where it has
nothing to do, so class boundaries need no global synchronization.

Global knowledge: nodes are parameterized by n and wmax (the standard
assumptions; the paper's O(log n)-bit messages already presuppose
weights polynomial in n).

Three executable forms (ISSUE 5): :func:`lps_mwm_program` is the
generator spec, :func:`lps_mwm_array` the vectorized array program,
and :func:`lps_mwm_array_batched` its seed-axis batched twin (which
also accepts per-lane weight classes so
:func:`repro.core.weighted_mwm.weighted_mwm_batched` can run one box
call per lane over a shared CSR).  ``lps_mwm(..., backend=...)`` /
:func:`lps_mwm_batched` pick, and every form produces byte-identical
``RunResult``s from the same seed.
"""

from __future__ import annotations

import math
from typing import Generator, Sequence

import numpy as np

from repro.distributed.backends import (
    ArrayContext,
    BatchedArrayContext,
    replay_acceptor_choices,
    run_program,
    run_program_batched,
)
from repro.distributed.network import Network, RunResult
from repro.distributed.node import Node
from repro.graphs.graph import Graph
from repro.matching.matching import Matching
from repro.baselines.israeli_itai import matching_from_mates

_PROPOSE = "p"
_ACCEPT = "a"
_MATCHED = "m"


def _weight_class(w: float, wmax: float) -> int:
    """Class index j with ``wmax/2^{j+1} < w <= wmax/2^j`` (j >= 0)."""
    if w <= 0:
        raise ValueError("weights must be positive")
    j = int(math.floor(math.log2(wmax / w)))
    # Guard float rounding at class boundaries: w == wmax/2^j must land
    # in class j, i.e. w > wmax/2^{j+1}.
    while j > 0 and w > wmax / (2.0**j):
        j -= 1
    while w <= wmax / (2.0 ** (j + 1)):
        j += 1
    return max(0, j)


def _weight_class_array(
    w: np.ndarray, wmax: float | np.ndarray
) -> np.ndarray:
    """Vectorized :func:`_weight_class` (exact, including the guards).

    The scalar guard loops converge to the unique fixpoint ``j`` with
    ``wmax/2^{j+1} < w <= wmax/2^j`` (or j = 0) from *any* starting
    estimate, so a vectorized ``log2`` start followed by the same
    masked corrections lands on identical classes — the float
    comparisons use the same ``wmax / 2.0**j`` expressions.  ``wmax``
    may carry leading batch axes (e.g. ``(num_seeds, 1)`` against a
    shared ``(m,)`` weight row) for per-lane classification.
    """
    w = np.asarray(w, dtype=np.float64)
    if w.size and (w <= 0).any():
        raise ValueError("weights must be positive")
    ratio = wmax / w
    j = np.floor(np.log2(ratio)).astype(np.int64)
    j = np.broadcast_to(j, np.broadcast_shapes(w.shape, np.shape(wmax))).copy()
    wb = np.broadcast_to(w, j.shape)
    wmaxb = np.broadcast_to(np.asarray(wmax, dtype=np.float64), j.shape)
    while True:
        over = (j > 0) & (wb > wmaxb / np.exp2(j.astype(np.float64)))
        if not over.any():
            break
        j[over] -= 1
    while True:
        under = wb <= wmaxb / np.exp2((j + 1).astype(np.float64))
        if not under.any():
            break
        j[under] += 1
    return np.maximum(j, 0)


def _sorted_csr(
    indptr: np.ndarray, indices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-vertex neighbor order made ascending, as one flat permutation.

    Returns ``(sidx, s_nbr)``: ``sidx`` permutes half-edge slots so that
    each vertex's segment ``indptr[v]:indptr[v+1]`` lists neighbors in
    ascending id order (the generator program's ``sorted(active)``
    order) and ``s_nbr = indices[sidx]``.  Replaces the per-vertex
    ``argsort`` setup loop of both array programs.
    """
    size = indptr.size - 1
    vhe = np.repeat(np.arange(size, dtype=np.int64), np.diff(indptr))
    sidx = np.argsort(vhe * size + indices.astype(np.int64))
    return sidx, indices.astype(np.int64)[sidx]


def _choose_targets(
    indptr: np.ndarray,
    s_nbr: np.ndarray,
    sidx: np.ndarray,
    pv: np.ndarray,
    idx: np.ndarray,
    eligible,
) -> np.ndarray:
    """Vectorized replay of each proposer's ``choice(sorted(active))``.

    Proposer ``k`` at vertex ``pv[k]`` drew ``idx[k]`` ∈ [0, #active)
    and picks the ``idx[k]``-th entry of its ascending-id active
    neighbor list.  ``eligible(seg, pos, nbr)`` returns the active mask
    for the flat candidate rows — ``seg`` is the proposer row, ``pos``
    the original CSR half-edge slot, ``nbr`` the candidate id.  One
    rank-select over ``sum(deg(pv))`` flat rows replaces the
    per-proposer Python loop that dominated the batched weighted sweep
    (see ARCHITECTURE.md).
    """
    deg = (indptr[pv + 1] - indptr[pv]).astype(np.int64)
    seg = np.repeat(np.arange(pv.size, dtype=np.int64), deg)
    off = np.zeros(pv.size + 1, dtype=np.int64)
    np.cumsum(deg, out=off[1:])
    flat = indptr[pv[seg]] + (np.arange(seg.size, dtype=np.int64) - off[seg])
    nbr = s_nbr[flat]
    elig = eligible(seg, sidx[flat], nbr)
    csum = np.cumsum(elig)
    base = np.concatenate(([0], csum[off[1:] - 1][:-1]))
    hit = elig & ((csum - elig - base[seg]) == idx[seg])
    return nbr[hit]


def lps_mwm_array(
    ctx: ArrayContext,
    n: int,
    wmax: float,
    num_classes: int,
    phases_per_class: int,
) -> list[int]:
    """Array program twin of :func:`lps_mwm_program`.

    The protocol is fully lockstep — every node runs the identical
    ``num_classes × phases_per_class`` schedule of 3-round phases and
    only returns after it — so there is no ``alive`` mask: every
    resume has all ``n`` nodes live and every resume counts a round.
    SoA state is an ``int64`` ``mate`` column plus a ``dead`` mask of
    delivered ``_MATCHED`` announcements (a broadcast, so one global
    mask agrees with every generator node's private ``dead`` set; it
    flips *after* resume C, landing next phase exactly like the
    generator's post-yield inbox scan).  Coin flips and the two
    ``choice`` replays are bulk ``ctx.lanes`` draws and the
    chosen-neighbor selection is one flat rank-select
    (:func:`_choose_targets`).  A class with no drawer left stays
    drawerless (mate only sets, dead only grows), so its remaining
    phases fast-forward through
    :meth:`~repro.distributed.backends.ArrayContext.idle_steps` with
    identical accounting — most of the ``num_classes ×
    phases_per_class`` schedule is that idle tail.
    """
    g = ctx.graph
    size = ctx.n
    indptr, indices = ctx.indptr, ctx.indices
    _, _, eids = g.adjacency_arrays()
    he_cls = _weight_class_array(g.weights_array(), wmax)[eids]
    vhe = np.repeat(np.arange(size, dtype=np.int64), np.diff(indptr))
    degrees = g.degrees()
    # Ascending-neighbor order per vertex — the order the generator
    # program's sorted(active) lists use.
    sidx, s_nbr = _sorted_csr(indptr, indices)
    # Half-edges of each class, precomputed (classes partition them).
    cls_he = [np.flatnonzero(he_cls == c) for c in range(num_classes)]
    mate = np.full(size, -1, dtype=np.int64)
    dead = np.zeros(size, dtype=bool)
    lanes = ctx.lanes
    eight = np.int64(8)
    for cls in range(num_classes):
        for _phase in range(phases_per_class):
            # --- round 1: proposals ----------------------------------
            he = cls_he[cls]
            live_he = he[~dead[indices[he]]]
            cnt = np.bincount(vhe[live_he], minlength=size)
            drawers = np.flatnonzero((mate == -1) & (cnt > 0))
            if drawers.size == 0:
                # mate only sets and dead only grows, so a draw-free
                # phase makes every remaining phase of this class a
                # no-op too; the generator runs them literally (3 idle
                # rounds each, no sends, no draws) — account the same.
                ctx.idle_steps(size, 3 * (phases_per_class - _phase))
                break
            ctx.begin_step(size)
            coins = lanes.integers(0, 2, drawers)
            prop = drawers[coins == 1]
            idx = lanes.integers(0, cnt[prop], prop)
            tgt = _choose_targets(
                indptr, s_nbr, sidx, prop, idx,
                lambda seg, pos, nbr: (he_cls[pos] == cls) & ~dead[nbr],
            )
            ctx.account_groups(
                np.full(prop.size, eight), np.ones(prop.size, np.int64)
            )
            ctx.end_step(True)
            # --- round 2: accepts ------------------------------------
            # Every proposal lands in its target's active set (the
            # edge's class is symmetric and an unmatched proposer was
            # never announced), so acceptors are exactly the unmatched
            # non-proposer targets.
            ctx.begin_step(size)
            accepted_by = np.full(size, -1, dtype=np.int64)
            ignores = mate != -1
            ignores[prop] = True
            acc, chosen = replay_acceptor_choices(lanes, tgt, prop, ignores)
            accepted_by[acc] = chosen
            mate[acc] = chosen
            ctx.account_groups(
                np.full(acc.size, eight), np.ones(acc.size, np.int64)
            )
            ctx.end_step(True)
            # --- round 3: confirm + announce -------------------------
            ctx.begin_step(size)
            succ = accepted_by[tgt] == prop
            mate[prop[succ]] = tgt[succ]
            matched_now = np.concatenate((prop[succ], acc))
            ctx.account_groups(
                np.full(matched_now.size, eight), degrees[matched_now]
            )
            ctx.end_step(True)
            dead[matched_now] = True  # the broadcast lands next resume
    ctx.begin_step(size)  # final resume: every program returns
    return [int(x) for x in mate]


def lps_mwm_array_batched(
    ctx: BatchedArrayContext,
    n: int,
    wmax: float | np.ndarray,
    num_classes: int,
    phases_per_class: int,
    he_cls: np.ndarray | None = None,
    lane_degrees: np.ndarray | None = None,
) -> list[list[int]]:
    """Seed-axis batched twin of :func:`lps_mwm_array`.

    The same lockstep schedule over ``(num_seeds, n)`` SoA state —
    every lane runs exactly ``num_classes × phases_per_class × 3``
    rounds, so no termination masking is needed and every lane's
    ``RunResult`` is byte-identical to its single-seed run.

    Two extra hooks exist for Algorithm 5's batched pipeline
    (:func:`repro.core.weighted_mwm.weighted_mwm_batched`), where each
    lane runs the box on its *own* derived-weight subgraph of a shared
    topology:

    * ``he_cls`` — per-lane half-edge classes, shape ``(num_seeds,
      half_edges)``, CSR-aligned; entries ``>= num_classes`` mark
      half-edges the lane cannot use (too light, or absent from the
      lane's subgraph).  Defaults to classifying the shared graph's
      weights against ``wmax`` (which may be per-lane).
    * ``lane_degrees`` — per-lane broadcast degrees, shape
      ``(num_seeds, n)``: the degree of each vertex *in the lane's
      subgraph* (a ``_MATCHED`` announcement goes to all subgraph
      neighbors, classed or not).  Defaults to the shared graph's
      degrees.
    """
    g = ctx.graph
    num_seeds, size = ctx.num_seeds, ctx.n
    indptr, indices = ctx.indptr, ctx.indices
    _, _, eids = g.adjacency_arrays()
    if he_cls is None:
        wmax_arr = np.asarray(wmax, dtype=np.float64)
        if wmax_arr.ndim:  # per-lane wmax against the shared weights
            he_cls = _weight_class_array(
                g.weights_array(), wmax_arr.reshape(-1, 1)
            )[:, eids]
        else:
            he_cls = np.broadcast_to(
                _weight_class_array(g.weights_array(), float(wmax_arr))[eids],
                (num_seeds, indices.size),
            )
    if lane_degrees is None:
        lane_degrees = np.broadcast_to(g.degrees(), (num_seeds, size))
    vhe = np.repeat(np.arange(size, dtype=np.int64), np.diff(indptr))
    # Ascending-neighbor order per vertex; a proposer's candidate
    # classes come from its lane's he_cls row via the CSR positions.
    sidx, s_nbr = _sorted_csr(indptr, indices)
    # (lane, half-edge) pairs of each class, precomputed once.
    cls_part = [np.nonzero(he_cls == c) for c in range(num_classes)]
    mate = np.full((num_seeds, size), -1, dtype=np.int64)
    dead = np.zeros((num_seeds, size), dtype=bool)
    lanes = ctx.lanes
    eight = np.int64(8)
    all_live = np.full(num_seeds, size, dtype=np.int64)
    all_yield = np.ones(num_seeds, dtype=bool)
    for cls in range(num_classes):
        for _phase in range(phases_per_class):
            # --- round 1: proposals ----------------------------------
            rows_c, he_c = cls_part[cls]
            alive_he = ~dead[rows_c, indices[he_c]]
            cnt = np.bincount(
                rows_c[alive_he] * size + vhe[he_c[alive_he]],
                minlength=num_seeds * size,
            ).reshape(num_seeds, size)
            pr_all, pv_all = np.nonzero((mate == -1) & (cnt > 0))
            if pr_all.size == 0:
                # No lane has a drawer left in this class (monotone:
                # mate only sets, dead only grows) — the rest of the
                # class is idle rounds in every lane, exactly as the
                # generator executes it.
                ctx.idle_steps(all_live, 3 * (phases_per_class - _phase))
                break
            ctx.begin_step(all_live)
            coins = lanes.integers(0, 2, pr_all * size + pv_all)
            picked = coins == 1
            pr, pv = pr_all[picked], pv_all[picked]
            idx = lanes.integers(0, cnt[pr, pv], pr * size + pv)
            tgt = _choose_targets(
                indptr, s_nbr, sidx, pv, idx,
                lambda seg, pos, nbr: (
                    (he_cls[pr[seg], pos] == cls) & ~dead[pr[seg], nbr]
                ),
            )
            ctx.account_groups(
                np.full(pr.size, eight), np.ones(pr.size, np.int64), pr
            )
            ctx.end_step(all_yield)
            # --- round 2: accepts ------------------------------------
            ctx.begin_step(all_live)
            accepted_by = np.full((num_seeds, size), -1, dtype=np.int64)
            mate_flat = mate.reshape(-1)
            ignores = mate_flat != -1
            ignores[pr * size + pv] = True
            acc, chosen = replay_acceptor_choices(
                lanes, pr * size + tgt, pv, ignores
            )
            accepted_by.reshape(-1)[acc] = chosen
            mate_flat[acc] = chosen
            ctx.account_groups(
                np.full(acc.size, eight), np.ones(acc.size, np.int64),
                acc // size,
            )
            ctx.end_step(all_yield)
            # --- round 3: confirm + announce -------------------------
            ctx.begin_step(all_live)
            succ = accepted_by[pr, tgt] == pv
            mate[pr[succ], pv[succ]] = tgt[succ]
            m_rows = np.concatenate((pr[succ], acc // size))
            m_cols = np.concatenate((pv[succ], acc % size))
            ctx.account_groups(
                np.full(m_rows.size, eight),
                lane_degrees[m_rows, m_cols],
                m_rows,
            )
            ctx.end_step(all_yield)
            dead[m_rows, m_cols] = True  # broadcast lands next resume
    ctx.begin_step(all_live)  # final resume: every program returns
    return [[int(x) for x in row] for row in mate]


def lps_mwm_program(
    node: Node,
    n: int,
    wmax: float,
    num_classes: int,
    phases_per_class: int,
) -> Generator[None, None, int]:
    """Node program; returns the node's mate id, or -1."""
    # Pre-compute each incident edge's class (both endpoints agree:
    # the class is a function of the shared edge weight and wmax).
    cls_of: dict[int, int] = {}
    for u in node.neighbors:
        j = _weight_class(node.edge_weight(u), wmax)
        if j < num_classes:
            cls_of[u] = j
    mate = -1
    dead: set[int] = set()  # neighbors known to be matched
    announced = False
    for cls in range(num_classes):
        for _phase in range(phases_per_class):
            # --- round 1: proposals -----------------------------------
            active = (
                {u for u, j in cls_of.items() if j == cls and u not in dead}
                if mate == -1
                else set()
            )
            proposer = bool(node.rng.integers(0, 2)) if active else False
            target = -1
            if proposer:
                target = int(node.rng.choice(sorted(active)))
                node.send(target, _PROPOSE)
            yield
            # --- round 2: accepts -------------------------------------
            if mate == -1 and not proposer:
                proposals = sorted(
                    src
                    for src, tag in node.inbox
                    if tag == _PROPOSE and src in active
                )
                if proposals:
                    mate = int(node.rng.choice(proposals))
                    node.send(mate, _ACCEPT)
            yield
            # --- round 3: confirm + announce --------------------------
            if proposer and target != -1:
                if any(s == target and t == _ACCEPT for s, t in node.inbox):
                    mate = target
            if mate != -1 and not announced:
                node.broadcast(_MATCHED)
                announced = True
            yield
            for src, tag in node.inbox:
                if tag == _MATCHED:
                    dead.add(src)
    node.finish(mate)
    return mate


def _lps_params(
    g: Graph, num_classes: int | None, phases_per_class: int | None
) -> dict[str, object]:
    """Shared parameter resolution for every execution form."""
    wmax = max(w for _, _, w in g.iter_weighted_edges())
    log_n = max(1, math.ceil(math.log2(max(2, g.n))))
    if num_classes is None:
        num_classes = 2 * log_n + 4
    if phases_per_class is None:
        phases_per_class = 4 * log_n + 4
    return {
        "n": g.n,
        "wmax": wmax,
        "num_classes": num_classes,
        "phases_per_class": phases_per_class,
    }


def lps_mwm(
    g: Graph,
    seed: int = 0,
    num_classes: int | None = None,
    phases_per_class: int | None = None,
    max_rounds: int = 10_000_000,
    backend: str = "generator",
) -> tuple[Matching, RunResult]:
    """Run the weight-class δ-MWM; returns (matching, run metrics).

    Defaults: ``num_classes = 2⌈log₂ n⌉ + 4`` and ``phases_per_class =
    4⌈log₂ n⌉ + 4`` (w.h.p. maximal per class).  ``backend`` selects
    the execution engine (``"generator"`` or ``"array"``); both yield
    byte-identical results from the same seed, so Algorithm 5's black
    box runs vectorized end to end when ``"array"`` is chosen.
    """
    if not g.weighted:
        raise ValueError("lps_mwm needs a weighted graph")
    if g.m == 0:
        return Matching(g), RunResult()
    res = run_program(
        g,
        backend=backend,
        generator_program=lps_mwm_program,
        array_program=lps_mwm_array,
        params=_lps_params(g, num_classes, phases_per_class),
        seed=seed,
        max_rounds=max_rounds,
    )
    return matching_from_mates(g, res.outputs), res


def lps_mwm_batched(
    g: Graph,
    seeds: "Sequence[int]",
    num_classes: int | None = None,
    phases_per_class: int | None = None,
    max_rounds: int = 10_000_000,
    backend: str = "array",
) -> list[tuple[Matching, RunResult]]:
    """Run the weight-class δ-MWM once per seed as one batched execution.

    ``backend="array"`` (default) executes the whole batch as one
    :class:`~repro.distributed.backends.BatchedArrayBackend` run;
    ``"generator"`` falls back to one ``Network`` per seed.  Both
    return per-seed ``(Matching, RunResult)`` pairs identical to
    ``[lps_mwm(g, seed=s) for s in seeds]``.
    """
    if not g.weighted:
        raise ValueError("lps_mwm needs a weighted graph")
    if g.m == 0:
        return [(Matching(g), RunResult()) for _ in seeds]
    results = run_program_batched(
        g,
        backend=backend,
        generator_program=lps_mwm_program,
        batched_array_program=lps_mwm_array_batched,
        params=_lps_params(g, num_classes, phases_per_class),
        seeds=seeds,
        max_rounds=max_rounds,
    )
    return [(matching_from_mates(g, res.outputs), res) for res in results]
