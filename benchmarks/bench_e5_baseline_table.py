"""E5 — the introduction's comparison: paper vs prior work, head to head.

Unweighted: Israeli–Itai ½-MCM [15] vs the paper's (1−1/k) (Thms
3.8/3.11).  Weighted: greedy ½, Hoepman ½ [11], LPS-style (¼−ε) [18]
vs the paper's (½−ε) (Thm 4.5).  "Who wins, by what factor" is the
shape to reproduce: the paper's algorithms should never lose their
guarantee and should dominate the baselines' *guarantees* (individual
instances may be easy for everyone).
"""

from repro.analysis import format_table, print_banner
from repro.baselines import hoepman_mwm, israeli_itai_matching, lps_mwm
from repro.core import bipartite_mcm, general_mcm, weighted_mwm
from repro.graphs import bipartite_random, crown_graph, gnp_random, random_tree
from repro.graphs.weights import assign_uniform_weights
from repro.matching import (
    greedy_mwm,
    maximum_matching_size,
    maximum_matching_weight,
)

from conftest import once

SEEDS = range(3)


def _worst(vals):
    return min(vals)


def run_unweighted():
    rows = []
    for fam, maker, bipartite in [
        ("crown(8)", lambda s: crown_graph(8), True),
        ("bip(30+30,.08)", lambda s: bipartite_random(30, 30, 0.08, seed=s), True),
        ("gnp(50,.05)", lambda s: (gnp_random(50, 0.05, seed=s), None, None), False),
        ("tree(60)", lambda s: (random_tree(60, seed=s), None, None), False),
    ]:
        ii_r, ours_r = [], []
        for s in SEEDS:
            g, xs, _ = maker(s)
            opt = maximum_matching_size(g)
            if opt == 0:
                continue
            ii, _ = israeli_itai_matching(g, seed=s)
            ii_r.append(len(ii) / opt)
            if bipartite:
                m, _ = bipartite_mcm(g, k=3, xs=xs, seed=s)
            else:
                m, _, _ = general_mcm(g, k=3, seed=s)
            ours_r.append(len(m) / opt)
        rows.append(
            [fam, "1/2", _worst(ii_r), "2/3",
             _worst(ours_r), _worst(ours_r) / _worst(ii_r)]
        )
    return rows


def run_weighted():
    rows = []
    for s in SEEDS:
        g = assign_uniform_weights(gnp_random(35, 0.12, seed=s), seed=s)
        opt = maximum_matching_weight(g)
        rows.append(
            [
                f"seed {s}",
                greedy_mwm(g).weight() / opt,
                hoepman_mwm(g)[0].weight() / opt,
                lps_mwm(g, seed=s)[0].weight() / opt,
                weighted_mwm(g, eps=0.1, seed=s)[0].weight() / opt,
            ]
        )
    return rows


def test_baseline_comparison(benchmark, report):
    unweighted, weighted = once(
        benchmark, lambda: (run_unweighted(), run_weighted())
    )

    def show():
        print_banner(
            "E5 — paper vs prior work (introduction's comparison)",
            "the paper's (1−1/k)/(½−ε) guarantees strictly dominate the "
            "½ / (¼−ε) baselines",
        )
        print("unweighted (worst ratio over seeds):")
        print(format_table(
            ["family", "II guar.", "II worst", "ours guar.",
             "ours worst", "ours/II"], unweighted
        ))
        print("\nweighted ratios per seed:")
        print(format_table(
            ["instance", "greedy ½", "Hoepman ½", "LPS ¼−ε",
             "Alg.5 ½−ε"], weighted
        ))

    report(show)
    for _fam, _g1, ii_worst, _g2, ours_worst, _f in unweighted:
        assert ii_worst >= 0.5 - 1e-9
        assert ours_worst >= 2 / 3 - 1e-9
    for _inst, greedy, hoep, lps, ours in weighted:
        assert greedy >= 0.5 and hoep >= 0.5 - 1e-9
        assert lps >= 0.25 - 1e-9
        assert ours >= 0.4 - 1e-9
