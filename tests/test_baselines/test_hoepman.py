"""Tests for the deterministic locally-heaviest-edge ½-MWM."""

import pytest

from repro.baselines import hoepman_mwm
from repro.graphs import Graph, gnp_random, path_graph
from repro.graphs.weights import assign_uniform_weights
from repro.matching import maximum_matching_weight


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_half_guarantee(self, seed):
        g = assign_uniform_weights(gnp_random(40, 0.15, seed=seed), seed=seed)
        m, _ = hoepman_mwm(g)
        assert 2 * m.weight() >= maximum_matching_weight(g) - 1e-9

    def test_globally_heaviest_edge_always_matched(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [1.0, 9.0, 1.0])
        m, _ = hoepman_mwm(g)
        assert (1, 2) in m

    def test_path_alternating_weights(self):
        g = path_graph(6).with_weights([5.0, 1.0, 5.0, 1.0, 5.0])
        m, _ = hoepman_mwm(g)
        assert m.weight() == 15.0

    def test_maximality(self):
        g = assign_uniform_weights(gnp_random(30, 0.2, seed=9), seed=9)
        m, _ = hoepman_mwm(g)
        assert m.is_maximal()

    def test_fully_deterministic(self):
        g = assign_uniform_weights(gnp_random(30, 0.2, seed=10), seed=10)
        assert hoepman_mwm(g)[0] == hoepman_mwm(g)[0]

    def test_equal_weights_tie_break(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [2.0, 2.0, 2.0])
        m, _ = hoepman_mwm(g)
        # ties broken by endpoint ids: (0,1) preferred, then (2,3)
        assert m.edges() == [(0, 1), (2, 3)]

    def test_unweighted_rejected(self):
        with pytest.raises(ValueError):
            hoepman_mwm(path_graph(3))

    def test_rounds_bounded_by_n(self):
        g = assign_uniform_weights(gnp_random(50, 0.1, seed=11), seed=11)
        _, res = hoepman_mwm(g)
        assert res.rounds <= 2 * g.n  # O(n) worst case, 2 rounds/phase
