"""Tests for the sequential greedy baselines (½ guarantees)."""

import numpy as np
from hypothesis import given, settings

from repro.graphs import Graph, gnp_random
from repro.graphs.weights import assign_uniform_weights
from repro.matching import (
    greedy_maximal_matching,
    greedy_mwm,
    maximum_matching_size,
    maximum_matching_weight,
)

from tests.conftest import graphs


class TestGreedyMaximal:
    def test_maximality(self, small_random):
        m = greedy_maximal_matching(small_random)
        assert m.is_maximal()

    def test_random_order_maximality(self, small_random):
        m = greedy_maximal_matching(small_random, rng=np.random.default_rng(1))
        assert m.is_maximal()

    @given(graphs(max_n=11))
    @settings(max_examples=60)
    def test_half_guarantee(self, g):
        m = greedy_maximal_matching(g)
        assert 2 * len(m) >= maximum_matching_size(g)

    def test_deterministic_without_rng(self, small_random):
        a = greedy_maximal_matching(small_random)
        b = greedy_maximal_matching(small_random)
        assert a == b


class TestGreedyMwm:
    def test_prefers_heavy_edge(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [1.0, 5.0, 1.0])
        m = greedy_mwm(g)
        assert m.edges() == [(1, 2)]

    def test_tie_break_by_edge_id(self):
        g = Graph(4, [(0, 1), (2, 3)], [2.0, 2.0])
        m = greedy_mwm(g)
        assert m.edges() == [(0, 1), (2, 3)]

    @given(graphs(max_n=10, weighted=True))
    @settings(max_examples=60, deadline=None)
    def test_half_weight_guarantee(self, g):
        m = greedy_mwm(g)
        assert 2 * m.weight() >= maximum_matching_weight(g) - 1e-9

    def test_larger_random(self):
        g = assign_uniform_weights(gnp_random(40, 0.15, seed=1), seed=2)
        m = greedy_mwm(g)
        assert 2 * m.weight() >= maximum_matching_weight(g) - 1e-9
        assert m.is_maximal()
