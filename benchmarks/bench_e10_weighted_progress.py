"""E10 — Lemmas 4.1 and 4.3: weight growth of Algorithm 5.

Claims measured:
* Lemma 4.1 — every iteration satisfies w(M_new) ≥ w(M) + w_M(M′), on
  random instances (checked inline by the algorithm's debug hook);
* Lemma 4.3 — w(M_i) ≥ ½(1 − (1 − 2δ/3)^i)·w(M*): the measured weight
  trajectory must dominate that curve.
"""

from repro.analysis import format_table, print_banner
from repro.core import weighted_mwm_reference
from repro.core.weighted_mwm import weighted_mwm
from repro.graphs import gnp_random
from repro.graphs.weights import assign_uniform_weights
from repro.matching import greedy_mwm, maximum_matching_weight

from conftest import once

DELTA_SEQ = 0.5  # greedy black box is an exact ½-MWM
SEED = 4


def run_e10():
    g = assign_uniform_weights(gnp_random(40, 0.12, seed=SEED), seed=SEED)
    opt = maximum_matching_weight(g)
    rows = []
    for i in (1, 2, 3, 5, 8, 12):
        m, _ = weighted_mwm_reference(g, iterations=i, black_box=greedy_mwm)
        bound = 0.5 * (1 - (1 - 2 * DELTA_SEQ / 3) ** i) * opt
        rows.append([i, m.weight(), bound, m.weight() >= bound - 1e-9])
    # Lemma 4.1 is asserted inside the distributed run:
    _, _, iters = weighted_mwm(g, eps=0.1, seed=SEED, check_lemma41=True)
    return rows, opt, iters


def test_weighted_progress(benchmark, report):
    rows, opt, iters = once(benchmark, run_e10)

    def show():
        print_banner(
            "E10 / Lemmas 4.1 & 4.3 — weight trajectory of Algorithm 5",
            "w(M_i) ≥ ½(1 − (1 − 2δ/3)^i)·w(M*); per-iteration "
            "w(M″) ≥ w(M) + w_M(M′)",
        )
        print(f"w(M*) = {opt:.1f}, sequential black box δ = {DELTA_SEQ}")
        print(format_table(
            ["iterations i", "w(M_i)", "Lemma 4.3 bound", "holds"], rows
        ))
        print(f"\nLemma 4.1 checked inline on all {iters} iterations of "
              "the distributed run: no violation")

    report(show)
    for _i, w, bound, holds in rows:
        assert holds
