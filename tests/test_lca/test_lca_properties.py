"""Property net for the LCA layer: generated graphs × seeds × orders.

What the exhaustive net pins on tiny graphs, this net samples on
bigger ones: query-order independence, idempotence (a repeated query
returns the same answer and the repeat is served by the cache),
maximality of the induced matching, the probe-accounting invariants
(probes per query bounded by the explored-neighborhood counter), and
the bit-identities the subsystem rests on (scalar rank == vectorized
rank, lazy ranks == precomputed ranks, scan oracle == rounds oracle).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lca import (
    LcaMatching,
    MatchingService,
    edge_rank,
    edge_ranks,
    random_greedy_matching,
)
from repro.matching import Matching

from tests.conftest import graphs

seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestRanks:
    @given(st.integers(min_value=0, max_value=300), seeds)
    def test_scalar_equals_vectorized(self, m, seed):
        vec = edge_ranks(m, seed)
        assert [int(x) for x in vec] == [edge_rank(e, seed) for e in range(m)]

    @given(seeds)
    def test_ranks_are_seed_stable(self, seed):
        assert np.array_equal(edge_ranks(64, seed), edge_ranks(64, seed))

    def test_negative_edge_count_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            edge_ranks(-1, 0)


class TestOracle:
    @given(graphs(max_n=14), seeds)
    @settings(max_examples=60)
    def test_scan_equals_rounds(self, g, seed):
        scan = random_greedy_matching(g, seed)
        rounds = random_greedy_matching(g, seed, method="rounds")
        assert scan.mate_array().tolist() == rounds.mate_array().tolist()

    @given(graphs(max_n=14), seeds)
    @settings(max_examples=40)
    def test_oracle_is_maximal(self, g, seed):
        assert random_greedy_matching(g, seed).is_maximal()

    def test_unknown_method_rejected(self):
        import pytest

        from repro.graphs import Graph

        with pytest.raises(ValueError):
            random_greedy_matching(Graph(2, [(0, 1)]), 0, method="magic")


class TestQueryProperties:
    @given(graphs(max_n=12), seeds, st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_query_order_independence(self, g, seed, rnd):
        truth = random_greedy_matching(g, seed).mate_array()
        order = list(range(g.n))
        rnd.shuffle(order)
        svc = MatchingService(g, seed, max_entries=3)
        got = np.full(g.n, -2, dtype=np.int64)
        for v in order:
            got[v] = svc.mate_of(v)
        assert np.array_equal(got, truth)

    @given(graphs(max_n=12), seeds)
    @settings(max_examples=60)
    def test_idempotent_and_second_hit_cached(self, g, seed):
        svc = MatchingService(g, seed)  # default capacity: no eviction here
        for v in range(g.n):
            first = svc.mate_of(v)
            again = svc.mate_of(v)
            assert first == again
            st2 = svc.last_query_stats
            # The repeat is an LRU hit: no exploration at all.
            assert st2.edges_probed == 0
            assert st2.cache_hits == 1

    @given(graphs(max_n=12), seeds)
    @settings(max_examples=60)
    def test_induced_matching_is_maximal(self, g, seed):
        svc = MatchingService(g, seed, cache=False)
        mates = np.asarray([svc.mate_of(v) for v in range(g.n)], dtype=np.int64)
        m = Matching.from_mate_array(g, mates)  # also validates matching-ness
        assert m.is_maximal()

    @given(graphs(max_n=12), seeds)
    @settings(max_examples=60)
    def test_probe_accounting_invariants(self, g, seed):
        """Probes per query are bounded by the explored-neighborhood
        counter: every probed edge beyond the query root was discovered
        through a scanned adjacency slot, and the dependency chain can
        never be deeper than the number of probed edges."""
        lca = LcaMatching(g, seed)
        for v in range(g.n):
            lca.mate_of(v)
            q = lca.last_stats
            assert q.edges_probed <= q.adjacency_scanned + 1
            assert q.max_depth <= q.edges_probed
            assert q.edges_probed <= g.m
            assert q.cache_hits == 0  # the bare resolver has no cache
        agg = lca.stats
        assert agg.queries == g.n
        assert agg.mean_probes <= g.m

    @given(graphs(max_n=12), seeds)
    @settings(max_examples=40)
    def test_lazy_ranks_identical(self, g, seed):
        eager = LcaMatching(g, seed)
        lazy = LcaMatching(g, seed, precompute_ranks=False)
        for v in range(g.n):
            assert eager.mate_of(v) == lazy.mate_of(v)

    @given(graphs(max_n=12), seeds)
    @settings(max_examples=40)
    def test_edge_queries_match_mate_queries(self, g, seed):
        svc = MatchingService(g, seed, max_entries=2)
        bare = LcaMatching(g, seed)
        for u, v in g.edges():
            want = bare.mate_of(u) == v
            assert svc.edge_in_matching(u, v) == want
            assert svc.edge_in_matching(v, u) == want
