"""Segment-reduction kernels behind the ArrayContext selection seam.

The array backends' hot inner loops are three CSR segment reductions —
``masked_degrees`` / ``neighbor_any`` / ``neighbor_max`` (and their
``(num_seeds, n)`` batched twins).  This module gives them a **kernel
tier**: interchangeable implementations registered by name, all
required to be byte-identical on every input (the golden suite pins
this), selected per backend via ``ArrayBackend(..., kernel=...)`` or
globally via :func:`set_default_kernel`.

* ``"reduceat"`` — the pure-NumPy reference: gather + ``ufunc.reduceat``
  with a zero sentinel and empty-segment repair (the PR 5 semantics,
  moved here verbatim).  Always available; the default.
* ``"sparse"`` — ``scipy.sparse`` formulations: ``masked_degrees`` is
  one CSR matvec ``A @ mask`` (and the batched form one CSR×dense
  matmul ``A @ mask.T``); ``neighbor_max`` reuses the graph's
  ``indptr``/``indices`` with per-call data and reduces with scipy's
  compiled ``max(axis=1)``.  Registered only when scipy imports —
  scipy is an *optional* dependency of this repo (the tier-1 CI
  environment installs NumPy only), so everything here degrades
  gracefully to ``"reduceat"``.
* ``"numba"`` — explicit segment loops JIT-compiled at first use.
  Registered only when numba imports; this container does not ship it,
  so the implementation is a straightforward fallback tier kept for
  environments that do.

All counts are returned as ``int64`` regardless of the graph's compact
index dtype (the accounting layer sums in int64); ``neighbor_max``
preserves the dtype of ``values``.  Results for vertices with no
(masked) neighbors are 0, and ``values`` must be nonnegative — the same
contract the reduceat reference documents.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

try:  # optional compiled tier
    import scipy.sparse as _sparse
except ImportError:  # pragma: no cover - exercised in scipy-less CI
    _sparse = None

try:  # optional compiled tier (not shipped in the default container)
    import numba as _numba
except ImportError:
    _numba = None


class ReduceatKernel:
    """The pure-NumPy reference kernel (always available)."""

    name = "reduceat"

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, n: int) -> None:
        self.indptr = indptr
        self.indices = indices
        self.n = n
        self._empty = indptr[:-1] == indptr[1:]

    def masked_degrees(self, mask: np.ndarray) -> np.ndarray:
        if self.indices.size == 0:
            return np.zeros(self.n, dtype=np.int64)
        # A zero sentinel keeps every ``indptr`` start in range without
        # clamping (a clamp would shift the boundary of the last
        # non-empty segment when trailing vertices have degree 0).
        gathered = np.concatenate(
            (mask[self.indices].astype(np.int64), [np.int64(0)])
        )
        out = np.add.reduceat(gathered, self.indptr[:-1])
        out[self._empty] = 0
        return out

    def neighbor_max(
        self, values: np.ndarray, mask: np.ndarray | None = None
    ) -> np.ndarray:
        if self.indices.size == 0:
            return np.zeros(self.n, dtype=values.dtype)
        vals = values[self.indices]
        if mask is not None:
            vals = np.where(mask[self.indices], vals, 0)
        vals = np.concatenate((vals, np.zeros(1, dtype=vals.dtype)))
        out = np.maximum.reduceat(vals, self.indptr[:-1])
        out[self._empty] = 0
        return out

    def batched_masked_degrees(self, mask: np.ndarray) -> np.ndarray:
        num_seeds = mask.shape[0]
        if self.indices.size == 0:
            return np.zeros((num_seeds, self.n), dtype=np.int64)
        gathered = np.concatenate(
            (
                mask[:, self.indices].astype(np.int64),
                np.zeros((num_seeds, 1), dtype=np.int64),
            ),
            axis=1,
        )
        out = np.add.reduceat(gathered, self.indptr[:-1], axis=1)
        out[:, self._empty] = 0
        return out

    def batched_neighbor_max(
        self, values: np.ndarray, mask: np.ndarray | None = None
    ) -> np.ndarray:
        num_seeds = values.shape[0]
        if self.indices.size == 0:
            return np.zeros((num_seeds, self.n), dtype=values.dtype)
        vals = values[:, self.indices]
        if mask is not None:
            vals = np.where(mask[:, self.indices], vals, 0)
        vals = np.concatenate(
            (vals, np.zeros((num_seeds, 1), dtype=vals.dtype)), axis=1
        )
        out = np.maximum.reduceat(vals, self.indptr[:-1], axis=1)
        out[:, self._empty] = 0
        return out


class SparseKernel:
    """scipy.sparse matvec formulations (registered when scipy imports).

    The adjacency structure is wrapped **once** as a CSR matrix of unit
    weights; ``masked_degrees`` is then a compiled matvec and the
    batched form a CSR×dense matmul.  ``neighbor_max`` builds a
    same-structure CSR over per-call gathered data — no index copies,
    only the data vector — and reduces with scipy's ``max(axis=1)``,
    whose implicit zeros on short/empty rows reproduce the reference
    kernel's "no (masked) neighbors -> 0" contract exactly (``values``
    are nonnegative by contract).  Counts and maxima are integer-exact,
    so results are byte-identical to ``"reduceat"``.
    """

    name = "sparse"

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, n: int) -> None:
        if _sparse is None:  # pragma: no cover - guarded by registry
            raise RuntimeError("scipy is not available")
        self.indptr = indptr
        self.n = n
        # The graph's half-edges sit in *port order* (insertion order per
        # vertex), and the Graph views are read-only — scipy's reductions
        # would otherwise try to sort them in place.  Build one owned,
        # column-sorted index copy; per-row reductions are order-free, so
        # results are unchanged.
        rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        order = np.lexsort((indices, rows))
        self.indices = np.ascontiguousarray(indices[order])
        self._ones = np.ones(indices.size, dtype=np.int64)
        self._adj = self._data_matrix(self._ones)

    def _data_matrix(self, data: np.ndarray) -> "object":
        mat = _sparse.csr_matrix(
            (data, self.indices, self.indptr), shape=(self.n, self.n),
            copy=False,
        )
        # Sorted at init + simple graph => already canonical; this stops
        # scipy from re-sorting (in place) on every reduction.
        mat.has_canonical_format = True
        return mat

    def masked_degrees(self, mask: np.ndarray) -> np.ndarray:
        if self.indices.size == 0:
            return np.zeros(self.n, dtype=np.int64)
        return self._adj @ mask.astype(np.int64)

    def neighbor_max(
        self, values: np.ndarray, mask: np.ndarray | None = None
    ) -> np.ndarray:
        if self.indices.size == 0:
            return np.zeros(self.n, dtype=values.dtype)
        vals = values[self.indices]
        if mask is not None:
            vals = np.where(mask[self.indices], vals, 0)
        out = self._data_matrix(vals).max(axis=1)
        return np.asarray(out.todense()).reshape(-1).astype(values.dtype, copy=False)

    def batched_masked_degrees(self, mask: np.ndarray) -> np.ndarray:
        num_seeds = mask.shape[0]
        if self.indices.size == 0:
            return np.zeros((num_seeds, self.n), dtype=np.int64)
        # (n, n) @ (n, num_seeds) -> transpose back to (num_seeds, n).
        return np.ascontiguousarray((self._adj @ mask.astype(np.int64).T).T)

    def batched_neighbor_max(
        self, values: np.ndarray, mask: np.ndarray | None = None
    ) -> np.ndarray:
        num_seeds = values.shape[0]
        if self.indices.size == 0:
            return np.zeros((num_seeds, self.n), dtype=values.dtype)
        # scipy's max(axis=1) is per-matrix; one data swap per seed row.
        out = np.empty((num_seeds, self.n), dtype=values.dtype)
        for s in range(num_seeds):
            out[s] = self.neighbor_max(
                values[s], None if mask is None else mask[s]
            )
        return out


class NumbaKernel:
    """Explicit JIT-compiled segment loops (registered when numba imports)."""

    name = "numba"

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, n: int) -> None:
        if _numba is None:  # pragma: no cover - guarded by registry
            raise RuntimeError("numba is not available")
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.n = n
        self._deg_jit = _numba_masked_degrees()
        self._max_jit = _numba_neighbor_max()

    def masked_degrees(self, mask: np.ndarray) -> np.ndarray:
        return self._deg_jit(
            self.indptr, self.indices, np.ascontiguousarray(mask)
        )

    def neighbor_max(
        self, values: np.ndarray, mask: np.ndarray | None = None
    ) -> np.ndarray:
        use_mask = mask is not None
        if mask is None:
            mask = np.ones(self.n, dtype=bool)
        return self._max_jit(
            self.indptr, self.indices,
            np.ascontiguousarray(values), np.ascontiguousarray(mask), use_mask,
        )

    def batched_masked_degrees(self, mask: np.ndarray) -> np.ndarray:
        return np.stack([self.masked_degrees(row) for row in mask])

    def batched_neighbor_max(
        self, values: np.ndarray, mask: np.ndarray | None = None
    ) -> np.ndarray:
        return np.stack([
            self.neighbor_max(values[s], None if mask is None else mask[s])
            for s in range(values.shape[0])
        ])


def _numba_masked_degrees():  # pragma: no cover - needs numba
    @_numba.njit(cache=True)
    def kernel(indptr, indices, mask):
        n = indptr.size - 1
        out = np.zeros(n, dtype=np.int64)
        for v in range(n):
            acc = 0
            for k in range(indptr[v], indptr[v + 1]):
                if mask[indices[k]]:
                    acc += 1
            out[v] = acc
        return out

    return kernel


def _numba_neighbor_max():  # pragma: no cover - needs numba
    @_numba.njit(cache=True)
    def kernel(indptr, indices, values, mask, use_mask):
        n = indptr.size - 1
        out = np.zeros(n, dtype=values.dtype)
        for v in range(n):
            best = values.dtype.type(0)
            for k in range(indptr[v], indptr[v + 1]):
                u = indices[k]
                if not use_mask or mask[u]:
                    if values[u] > best:
                        best = values[u]
            out[v] = best
        return out

    return kernel


#: Registered kernels, by name.  ``"reduceat"`` is always present; the
#: compiled tiers register themselves only when their import succeeds.
KERNELS: dict[str, Callable[[np.ndarray, np.ndarray, int], object]] = {
    "reduceat": ReduceatKernel,
}
if _sparse is not None:
    KERNELS["sparse"] = SparseKernel
if _numba is not None:  # pragma: no cover - not in the default container
    KERNELS["numba"] = NumbaKernel

_DEFAULT_KERNEL = "reduceat"


def available_kernels() -> list[str]:
    """Names of the kernels importable in this environment."""
    return sorted(KERNELS)


def get_default_kernel() -> str:
    """The kernel used when a backend does not pass ``kernel=``."""
    return _DEFAULT_KERNEL


def set_default_kernel(name: str) -> str:
    """Set the process-wide default kernel; returns the previous one."""
    global _DEFAULT_KERNEL
    resolve_kernel(name)  # validate
    prev = _DEFAULT_KERNEL
    _DEFAULT_KERNEL = name
    return prev


def resolve_kernel(name: str | None):
    """Kernel class for ``name`` (default when ``None``); ValueError on unknowns."""
    if name is None:
        name = _DEFAULT_KERNEL
    try:
        return KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; available: {available_kernels()}"
        ) from None


def make_kernel(name: str | None, indptr: np.ndarray, indices: np.ndarray, n: int):
    """Instantiate the named kernel over one CSR structure."""
    return resolve_kernel(name)(indptr, indices, n)
