"""Scheduler adapters: one call per cell slot, returning a matching.

Schedulers under comparison in experiment E8:

* :class:`PimScheduler` — PIM [3];
* :class:`IslipAdapter` — iSLIP [23];
* :class:`GreedyMaximalScheduler` — a random maximal matching per slot
  (the quality Israeli–Itai converges to; ½-MCM worst case);
* :class:`PaperScheduler` — the paper's bipartite (1−1/k)-MCM.  By
  default it uses the truncated-Hopcroft–Karp *reference* (identical
  guarantee and output quality as Theorem 3.8, Lemmas 3.4/3.5) so that
  thousand-slot simulations stay fast; ``distributed=True`` runs the
  actual Section 3.2 protocol per slot (small port counts);
* :class:`MaxSizeScheduler` — exact maximum matching per slot (the
  upper bound on per-slot quality).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.baselines.islip import IslipScheduler
from repro.baselines.pim import pim_schedule_matrix
from repro.core.bipartite_mcm import bipartite_mcm
from repro.graphs.graph import Graph
from repro.matching.hopcroft_karp import hopcroft_karp, hopcroft_karp_truncated


class Scheduler(Protocol):
    """Per-slot scheduling interface."""

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        """Return matched (input, output) pairs for this slot."""
        ...


def _request_matrix(demand: list[set[int]], ports: int) -> np.ndarray:
    """Boolean request matrix from per-input demand sets."""
    req = np.zeros((len(demand), ports), dtype=bool)
    for i, outs in enumerate(demand):
        if outs:
            req[i, sorted(outs)] = True
    return req


def _pairs(mi: np.ndarray, mj: np.ndarray) -> list[tuple[int, int]]:
    """Index arrays -> the list-of-pairs scalar scheduling interface."""
    return [(int(i), int(j)) for i, j in zip(mi, mj)]


#: Below this many backlogged pairs, sequential greedy in plain Python
#: beats the vectorized rounds (numpy call overhead dominates).  Both
#: branches compute the *same* matching — sequential greedy over the
#: same shuffled pair order — so the cutoff is purely a speed knob.
_GREEDY_PY_CUTOFF = 512


def greedy_maximal_matrix(
    requests: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Random-order greedy maximal matching on a boolean request matrix.

    Reproduces sequential greedy over a uniformly shuffled edge list
    (one ``rng.permutation`` draw per call).  Small instances run the
    sequential loop directly; large ones run parallel rounds of
    order-local minima — a pair wins a round when no earlier surviving
    pair shares its input or output, the standard equivalence between
    priority-greedy and local-minima rounds — so the result is the
    sequential matching at vector cost.
    """
    num_inputs, num_outputs = requests.shape
    flat = requests.reshape(-1).nonzero()[0]  # row-major (input, output)
    n = flat.size
    si, sj = np.divmod(rng.permutation(flat), num_outputs)
    if n <= _GREEDY_PY_CUTOFF:
        in_used = bytearray(num_inputs)
        out_used = bytearray(num_outputs)
        mi_l: list[int] = []
        mj_l: list[int] = []
        for i, j in zip(si.tolist(), sj.tolist()):
            if not in_used[i] and not out_used[j]:
                in_used[i] = 1
                out_used[j] = 1
                mi_l.append(i)
                mj_l.append(j)
        return (
            np.asarray(mi_l, dtype=np.int64),
            np.asarray(mj_l, dtype=np.int64),
        )
    mi: list[np.ndarray] = []
    mj: list[np.ndarray] = []
    row_first = np.empty(num_inputs, dtype=np.int64)
    col_first = np.empty(num_outputs, dtype=np.int64)
    iu = np.empty(num_inputs, dtype=bool)
    ou = np.empty(num_outputs, dtype=bool)
    pos = np.arange(n, dtype=np.int64)
    while si.size:
        # earliest surviving pair per input / output: reversed scatter
        # keeps the lowest position (last write wins)
        k = si.size
        p = pos[:k]
        row_first.fill(k)
        col_first.fill(k)
        row_first[si[::-1]] = p[k - 1 :: -1]
        col_first[sj[::-1]] = p[k - 1 :: -1]
        win = (row_first[si] == p) & (col_first[sj] == p)
        wi = si[win]
        wj = sj[win]
        mi.append(wi)
        mj.append(wj)
        # drop every pair touching a matched input or output
        iu.fill(False)
        ou.fill(False)
        iu[wi] = True
        ou[wj] = True
        keep = ~(iu[si] | ou[sj])
        si = si[keep]
        sj = sj[keep]
    if not mi:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(mi), np.concatenate(mj)


def _demand_graph(demand: list[set[int]], ports: int) -> tuple[Graph, list[int]]:
    """Bipartite demand graph: inputs 0..N-1, outputs N..2N-1."""
    cols = [sorted(outs) for outs in demand]
    rows = np.repeat(np.arange(len(cols)), [len(c) for c in cols])
    flat = np.fromiter(
        (j for c in cols for j in c), dtype=np.int64, count=len(rows)
    )
    edges = np.column_stack([rows, flat + ports])
    return Graph(2 * ports, edges), list(range(ports))


class PimScheduler:
    """PIM with its customary ⌈log₂N⌉+2 iterations."""

    def __init__(self, ports: int, seed: int = 0, iterations: int | None = None):
        self.ports = ports
        self.rng = np.random.default_rng(seed)
        self.iterations = iterations

    def schedule_matrix(
        self, occupancy: np.ndarray, slot: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Schedule directly on a ``(ports, ports)`` occupancy matrix."""
        return pim_schedule_matrix(occupancy > 0, self.rng, self.iterations)

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        return _pairs(*pim_schedule_matrix(
            _request_matrix(demand, self.ports), self.rng, self.iterations
        ))


class IslipAdapter:
    """iSLIP with persistent round-robin pointers."""

    def __init__(self, ports: int, iterations: int = 4):
        self.inner = IslipScheduler(ports, ports, iterations)

    def schedule_matrix(
        self, occupancy: np.ndarray, slot: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Schedule directly on a ``(ports, ports)`` occupancy matrix."""
        return self.inner.schedule_matrix(occupancy > 0)

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        return self.inner.schedule(demand)


class GreedyMaximalScheduler:
    """Random-order maximal matching per slot (½-MCM worst case)."""

    def __init__(self, ports: int, seed: int = 0):
        self.ports = ports
        self.rng = np.random.default_rng(seed)
        self._req = np.empty((ports, ports), dtype=bool)

    def schedule_matrix(
        self, occupancy: np.ndarray, slot: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Schedule directly on a ``(ports, ports)`` occupancy matrix."""
        np.greater(occupancy, 0, out=self._req)
        return greedy_maximal_matrix(self._req, self.rng)

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        return _pairs(*greedy_maximal_matrix(
            _request_matrix(demand, self.ports), self.rng
        ))


class PaperScheduler:
    """The paper's (1−1/k)-MCM as a switch scheduler.

    ``distributed=True`` runs the real Section 3.2 message-passing
    protocol every slot; the default uses the truncated-HK reference
    with the identical (1−1/k) guarantee (DESIGN.md §6.3).
    """

    def __init__(self, ports: int, k: int = 3, seed: int = 0, distributed: bool = False):
        self.ports = ports
        self.k = k
        self.seed = seed
        self.distributed = distributed
        self._slot_seq = np.random.SeedSequence(seed)

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        g, xs = _demand_graph(demand, self.ports)
        if self.distributed:
            m, _res = bipartite_mcm(
                g,
                self.k,
                xs=xs,
                seed=int(self._slot_seq.spawn(1)[0].generate_state(1)[0]),
            )
        else:
            m = hopcroft_karp_truncated(g, self.k, xs=xs)
        return [(u, v - self.ports) for u, v in m.edges()]


class MaxSizeScheduler:
    """Exact maximum matching per slot (quality upper bound)."""

    def __init__(self, ports: int):
        self.ports = ports

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        g, xs = _demand_graph(demand, self.ports)
        m = hopcroft_karp(g, xs=xs)
        return [(u, v - self.ports) for u, v in m.edges()]


def _weighted_demand_graph(
    weights: list[dict[int, float]], ports: int
) -> Graph:
    """Bipartite demand graph weighted by queue occupancy."""
    edges, ws = [], []
    for i, row in enumerate(weights):
        for j in sorted(row):
            if row[j] > 0:
                edges.append((i, ports + j))
                ws.append(float(row[j]))
    return Graph(2 * ports, np.asarray(edges, dtype=np.int64).reshape(-1, 2), ws)


class WeightedScheduler(Protocol):
    """Schedulers that consume per-VOQ weights (queue lengths)."""

    def schedule_weighted(
        self, weights: list[dict[int, float]], slot: int
    ) -> list[tuple[int, int]]:
        """Return matched pairs given ``weights[i][j]`` = occupancy."""
        ...


class MaxWeightScheduler:
    """Exact max-*weight* matching on queue lengths per slot.

    The classical 100%-throughput scheduler (MWM on occupancies) — the
    weighted side of the paper's story: Section 4's algorithms are the
    distributed approximations of exactly this schedule.
    """

    def __init__(self, ports: int):
        self.ports = ports

    def schedule_weighted(
        self, weights: list[dict[int, float]], slot: int
    ) -> list[tuple[int, int]]:
        from repro.matching.exact_mwm import max_weight_matching

        g = _weighted_demand_graph(weights, self.ports)
        if g.m == 0:
            return []
        m = max_weight_matching(g)
        return [(u, v - self.ports) for u, v in m.edges()]

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        """Unweighted adapter: treat every backlogged VOQ as weight 1."""
        return self.schedule_weighted(
            [{j: 1.0 for j in outs} for outs in demand], slot
        )


class WeightedPaperScheduler:
    """Algorithm 5's (½−ε)-MWM on queue lengths, as a switch scheduler.

    Uses the sequential reference (greedy black box) for speed; the
    guarantee transfers: the scheduled matching always carries at
    least (½−ε) of the maximum total queue weight, the property the
    stability literature needs from approximate MWM schedulers.
    """

    def __init__(self, ports: int, eps: float = 0.1):
        self.ports = ports
        self.eps = eps

    def schedule_weighted(
        self, weights: list[dict[int, float]], slot: int
    ) -> list[tuple[int, int]]:
        from repro.core.weighted_mwm import weighted_mwm_reference

        g = _weighted_demand_graph(weights, self.ports)
        if g.m == 0:
            return []
        m, _ = weighted_mwm_reference(g, eps=self.eps)
        return [(u, v - self.ports) for u, v in m.edges()]

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        """Unweighted adapter: weight-1 VOQs."""
        return self.schedule_weighted(
            [{j: 1.0 for j in outs} for outs in demand], slot
        )
