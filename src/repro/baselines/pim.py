"""PIM — Parallel Iterative Matching (Anderson et al. [3]).

The switch scheduler of DEC's AN2, directly descended from
Israeli–Itai's algorithm (as the paper's introduction recounts).  Per
cell slot it runs a few request/grant/accept iterations:

1. **request** — every unmatched input requests all outputs for which
   it has queued cells;
2. **grant** — every unmatched output grants one request uniformly at
   random;
3. **accept** — every input that received grants accepts one uniformly
   at random; the pair is matched for this slot.

With ⌈log₂ N⌉ + O(1) iterations the expected leftover is negligible —
PIM's classic analysis shows each iteration resolves ~3/4 of the
remaining contention.

This is a *centralized* implementation: PIM is switch hardware, not a
message-passing network algorithm, and the switch simulator calls it
once per cell slot.  (The distributed story for the same idea is
:mod:`repro.baselines.israeli_itai`.)
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.graph import Graph
from repro.matching.matching import Matching


def pim_iterations_default(ports: int) -> int:
    """The customary iteration count: ⌈log₂ N⌉ + 2."""
    return max(1, math.ceil(math.log2(max(2, ports)))) + 2


def pim_schedule(
    demand: list[set[int]],
    num_outputs: int,
    rng: np.random.Generator,
    iterations: int | None = None,
) -> list[tuple[int, int]]:
    """One PIM cell-slot schedule.

    Parameters
    ----------
    demand:
        ``demand[i]`` is the set of outputs input ``i`` has cells for.
    num_outputs:
        Number of output ports.
    rng:
        Randomness source (grants and accepts).
    iterations:
        Request/grant/accept iterations; default ⌈log₂ N⌉ + 2.

    Returns
    -------
    list of matched ``(input, output)`` pairs.
    """
    num_inputs = len(demand)
    if iterations is None:
        iterations = pim_iterations_default(max(num_inputs, num_outputs))
    in_free = [True] * num_inputs
    out_free = [True] * num_outputs
    matches: list[tuple[int, int]] = []
    for _ in range(iterations):
        # request
        requests: list[list[int]] = [[] for _ in range(num_outputs)]
        for i in range(num_inputs):
            if in_free[i]:
                for j in demand[i]:
                    if out_free[j]:
                        requests[j].append(i)
        # grant
        grants: list[list[int]] = [[] for _ in range(num_inputs)]
        any_grant = False
        for j in range(num_outputs):
            if out_free[j] and requests[j]:
                i = int(rng.choice(requests[j]))
                grants[i].append(j)
                any_grant = True
        if not any_grant:
            break
        # accept
        for i in range(num_inputs):
            if in_free[i] and grants[i]:
                j = int(rng.choice(grants[i]))
                in_free[i] = False
                out_free[j] = False
                matches.append((i, j))
    return matches


def pim_matching(
    g: Graph,
    xs: list[int],
    ys: list[int],
    seed: int = 0,
    iterations: int | None = None,
) -> Matching:
    """Run PIM on a bipartite :class:`Graph` (E5/E8 benchmark adapter)."""
    y_index = {y: idx for idx, y in enumerate(ys)}
    demand = [
        {y_index[u] for u in g.neighbors(x) if u in y_index} for x in xs
    ]
    rng = np.random.default_rng(seed)
    pairs = pim_schedule(demand, len(ys), rng, iterations)
    m = Matching(g)
    for i, j in pairs:
        m.add(xs[i], ys[j])
    return m
