"""Interleaved weight-class MWM — the O(log n)-style LPS variant.

The sequential implementation in :mod:`repro.baselines.lps_mwm`
processes weight classes one after another (O(log W · log n) rounds) —
the deviation DESIGN.md §2 documents.  The actual [18] result
interleaves the classes to finish in O(log n).  This module provides
an interleaved *engineering* variant:

every phase, each unmatched node targets its **heaviest class with an
available incident edge** and runs one Israeli–Itai step restricted to
that class; acceptors only accept proposals of their own current
class.  Since a node's current class is its best available one, a
proposal can never arrive on a class strictly heavier than the
acceptor's (that edge would *be* the acceptor's class), so priorities
are mutually consistent and heavier edges win locally.

Phases are not pre-scheduled per class, so the total round count
behaves like Israeli–Itai's O(log n) rather than O(log W · log n);
bench A4 measures both that and the quality difference.  We make no
sharper claim than the measured ≥ ¼-style behaviour (the exact [18]
analysis does not transfer verbatim to this simplification — see the
bench's printed comparison).

Two executable forms (ISSUE 4): :func:`lps_interleaved_program` is the
generator spec, :func:`lps_interleaved_array` the vectorized array
program; ``lps_interleaved_mwm(..., backend=...)`` picks, and both
produce byte-identical ``RunResult``s from the same seed.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.baselines.israeli_itai import matching_from_mates
from repro.baselines.lps_mwm import _weight_class
from repro.distributed.backends import (
    ArrayContext,
    int_payload_bits,
    run_program,
    segment_bounds,
)
from repro.distributed.network import Network, RunResult
from repro.distributed.node import Node
from repro.graphs.graph import Graph
from repro.matching.matching import Matching

_PROPOSE = "p"
_ACCEPT = "a"
_MATCHED = "m"


def lps_interleaved_program(
    node: Node,
    wmax: float,
    num_classes: int,
) -> Generator[None, None, int]:
    """Node program; returns the node's mate id, or -1."""
    cls_of: dict[int, int] = {}
    for u in node.neighbors:
        j = _weight_class(node.edge_weight(u), wmax)
        if j < num_classes:
            cls_of[u] = j
    mate = -1
    dead: set[int] = set()
    announced = False
    while True:
        active = (
            {u for u in cls_of if u not in dead} if mate == -1 else set()
        )
        if mate != -1 or not active:
            node.finish(mate)
            return mate
        # Heaviest available class = smallest index among active edges.
        my_cls = min(cls_of[u] for u in active)
        cands = sorted(u for u in active if cls_of[u] == my_cls)
        proposer = bool(node.rng.integers(0, 2))
        target = -1
        if proposer:
            target = int(node.rng.choice(cands))
            node.send(target, (_PROPOSE, my_cls))
        yield
        if not proposer:
            # Accept only same-class proposals (heavier can't arrive).
            props = sorted(
                src
                for src, p in node.inbox
                if p[0] == _PROPOSE and p[1] == my_cls and src in cands
            )
            if props:
                mate = int(node.rng.choice(props))
                node.send(mate, (_ACCEPT,))
        yield
        if proposer and target != -1:
            if any(s == target and p[0] == _ACCEPT for s, p in node.inbox):
                mate = target
        if mate != -1 and not announced:
            node.broadcast((_MATCHED,))
            announced = True
        yield
        for src, p in node.inbox:
            if p[0] == _MATCHED:
                dead.add(src)


def lps_interleaved_array(
    ctx: ArrayContext, wmax: float, num_classes: int
) -> list[int]:
    """Array program twin of :func:`lps_interleaved_program`.

    SoA state: an ``int64`` ``mate`` column, an ``alive`` mask of
    not-yet-returned nodes, and a ``dead`` mask of nodes whose
    ``_MATCHED`` broadcast has been delivered (the announcement is a
    broadcast, so every generator node's private ``dead`` set agrees
    with this one global mask).  Each node's *current class* — the
    heaviest weight class with a live incident edge — is a masked CSR
    segment reduction over per-half-edge classes; the coin flips and
    the two ``choice`` replays follow the per-node RNG streams exactly
    as :func:`repro.baselines.israeli_itai.israeli_itai_array` does.
    """
    g = ctx.graph
    size = ctx.n
    indptr, indices = ctx.indptr, ctx.indices
    _, _, eids = g.adjacency_arrays()
    weights = g.weights_array()
    edge_cls = np.fromiter(
        (_weight_class(float(w), wmax) for w in weights),
        dtype=np.int64,
        count=weights.size,
    )
    he_cls = edge_cls[eids]  # class of each half-edge, CSR-aligned
    usable = he_cls < num_classes
    # Per-vertex neighbor ids sorted ascending, with aligned classes —
    # the order the generator program's sorted() candidate lists use.
    snbr: list[np.ndarray] = []
    scls: list[np.ndarray] = []
    for v in range(size):
        seg = slice(int(indptr[v]), int(indptr[v + 1]))
        nb, cl = indices[seg], he_cls[seg]
        keep = cl < num_classes
        nb, cl = nb[keep], cl[keep]
        order = np.argsort(nb)
        snbr.append(nb[order])
        scls.append(cl[order])
    outputs: list[int | None] = [None] * size
    mate = np.full(size, -1, dtype=np.int64)
    alive = np.ones(size, dtype=bool)
    dead = np.zeros(size, dtype=bool)
    degrees = g.degrees()
    rngs = ctx.rngs
    eight = np.int64(8)
    starts = indptr[:-1]
    while alive.any():
        # Resume A: matched nodes and nodes without a live usable edge
        # return; the rest target their heaviest available class, flip
        # proposer coins, and invite one random same-class neighbor.
        ctx.begin_step(int(alive.sum()))
        active_he = usable & ~dead[indices]
        inverted = np.where(active_he, num_classes - he_cls, 0)
        if indices.size:
            # Zero sentinel: keeps trailing degree-0 vertices' starts
            # in range without shifting the last non-empty segment's
            # boundary (see ArrayContext.neighbor_max).
            best = np.maximum.reduceat(
                np.concatenate((inverted, [np.int64(0)])), starts
            )
            best[indptr[:-1] == indptr[1:]] = 0
        else:
            best = np.zeros(size, dtype=np.int64)
        my_cls = num_classes - best  # valid where best > 0
        returning = alive & ((mate != -1) | (best == 0))
        for v in np.flatnonzero(returning).tolist():
            outputs[v] = int(mate[v])
        alive &= ~returning
        live = np.flatnonzero(alive)
        if live.size == 0:
            break  # everyone returned without yielding: no round counted
        proposer = np.zeros(size, dtype=bool)
        target = np.full(size, -1, dtype=np.int64)
        for v in live.tolist():
            if rngs[v].integers(0, 2):
                cand = snbr[v][
                    (scls[v] == my_cls[v]) & ~dead[snbr[v]]
                ]
                target[v] = int(rngs[v].choice(cand.tolist()))
                proposer[v] = True
        proposer_ids = np.flatnonzero(proposer)
        ctx.account_groups(
            eight + int_payload_bits(my_cls[proposer_ids]),
            np.ones(proposer_ids.size, np.int64),
        )
        ctx.end_step(True)
        # Resume B: each live non-proposer accepts one same-class
        # proposal uniformly at random (heavier classes cannot arrive).
        ctx.begin_step(live.size)
        accepted_by = np.full(size, -1, dtype=np.int64)
        targets = target[proposer_ids]
        accept_count = 0
        if targets.size:
            order = np.argsort(targets, kind="stable")  # per-target, src asc.
            sorted_targets = targets[order]
            sorted_srcs = proposer_ids[order]
            bounds = segment_bounds(sorted_targets)
            for k in range(bounds.size - 1):
                dst = int(sorted_targets[bounds[k]])
                if proposer[dst] or not alive[dst]:
                    continue  # proposers (and returned nodes) ignore proposals
                grp = sorted_srcs[bounds[k]: bounds[k + 1]]
                props = grp[my_cls[grp] == my_cls[dst]].tolist()
                if props:
                    accepted_by[dst] = int(rngs[dst].choice(props))
                    accept_count += 1
        ctx.account_groups(
            np.full(accept_count, eight), np.ones(accept_count, np.int64)
        )
        ctx.end_step(True)
        # Resume C: proposers learn acceptance; every freshly matched
        # node broadcasts _MATCHED once to its *full* neighborhood.
        ctx.begin_step(live.size)
        successful = proposer_ids[accepted_by[targets] == proposer_ids]
        mate[successful] = target[successful]
        acceptors = np.flatnonzero(accepted_by != -1)
        mate[acceptors] = accepted_by[acceptors]
        matched_now = np.concatenate((successful, acceptors))
        ctx.account_groups(
            np.full(matched_now.size, eight), degrees[matched_now]
        )
        ctx.end_step(True)
        dead[matched_now] = True  # the broadcast lands next resume A
    return outputs


def lps_interleaved_mwm(
    g: Graph,
    seed: int = 0,
    num_classes: int | None = None,
    max_rounds: int = 1_000_000,
    backend: str = "generator",
) -> tuple[Matching, RunResult]:
    """Run the interleaved weight-class matching; returns (M, metrics).

    ``backend`` selects the execution engine (``"generator"`` or
    ``"array"``); both yield byte-identical results from the same seed,
    so the paper's interleaved-matching pipeline runs vectorized end to
    end when ``"array"`` is chosen.
    """
    if not g.weighted:
        raise ValueError("lps_interleaved_mwm needs a weighted graph")
    if g.m == 0:
        return Matching(g), RunResult()
    import math

    wmax = max(w for *_, w in g.iter_weighted_edges())
    if num_classes is None:
        num_classes = 2 * max(1, math.ceil(math.log2(max(2, g.n)))) + 4
    res = run_program(
        g,
        backend=backend,
        generator_program=lps_interleaved_program,
        array_program=lps_interleaved_array,
        params={"wmax": wmax, "num_classes": num_classes},
        seed=seed,
        max_rounds=max_rounds,
    )
    return matching_from_mates(g, res.outputs), res
