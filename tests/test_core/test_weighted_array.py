"""Property tests for the weighted array kernels (ISSUE 5).

The vectorized derived-weights kernel must agree with the scalar
``wrap_path``/``g(P)`` definitions *bit for bit* on arbitrary graphs
and matchings — including length-1 and length-2 wraps (one or both
wrap endpoints free), isolated vertices, and float-noise edges whose
derived weight sits right at the ``_EPS_W`` threshold.  The bulk
wrap-augmentation and the vectorized weight-class helper get the same
treatment against their scalar twins.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.lps_mwm import _weight_class, _weight_class_array
from repro.core.weighted_mwm import (
    _EPS_W,
    apply_wraps,
    apply_wraps_array,
    derived_weights,
    derived_weights_array,
    wrap_gain,
    wrap_path,
)
from repro.graphs.graph import Graph
from repro.graphs.generators import gnp_random
from repro.graphs.weights import assign_uniform_weights
from repro.matching.matching import Matching

from tests.conftest import matchable

_slow = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _weighted(g: Graph, seed: int) -> Graph:
    return assign_uniform_weights(g, seed=seed) if g.m else g.with_weights([])


class TestDerivedWeightsKernel:
    @given(matchable(max_n=12), st.integers(min_value=0, max_value=99))
    @_slow
    def test_kernel_equals_wrap_gain_per_edge(self, gm, wseed):
        g0, edges = gm
        g = _weighted(g0, wseed)
        m = Matching(g, edges)
        wm = derived_weights_array(g, m.mate_array())
        lo, hi = g.endpoints_array()
        for eid in range(g.m):
            u, v = int(lo[eid]), int(hi[eid])
            if m.is_matched_edge(u, v):
                assert wm[eid] == 0.0
            else:
                # Bit-identical to the scalar definition, and the wrap
                # it prices has between 1 and 3 edges.
                assert wm[eid] == wrap_gain(g, m, u, v)
                assert 1 <= len(wrap_path(m, u, v)) <= 3

    @given(matchable(max_n=12), st.integers(min_value=0, max_value=99))
    @_slow
    def test_list_view_matches_kernel(self, gm, wseed):
        g0, edges = gm
        g = _weighted(g0, wseed)
        m = Matching(g, edges)
        assert derived_weights(g, m) == derived_weights_array(
            g, m.mate_array()
        ).tolist()

    @given(matchable(max_n=10), st.integers(min_value=0, max_value=9),
           st.integers(min_value=2, max_value=4))
    @_slow
    def test_batched_kernel_matches_per_lane(self, gm, wseed, num_lanes):
        g0, edges = gm
        g = _weighted(g0, wseed)
        rng = np.random.default_rng(wseed)
        lanes = []
        for _ in range(num_lanes):
            m = Matching(g)
            order = rng.permutation(g.m) if g.m else []
            for eid in order:
                u, v = g.edge_endpoints(int(eid))
                if m.is_free(u) and m.is_free(v) and rng.integers(0, 2):
                    m.add(u, v)
            lanes.append(m.mate_array())
        batched = derived_weights_array(g, np.stack(lanes)) if lanes else None
        for row, mate in enumerate(lanes):
            assert (batched[row] == derived_weights_array(g, mate)).all()

    def test_wrap_lengths_1_and_2(self):
        # Path a-b-c-d with only (b,c) matched: wrap(a,b) has 2 edges,
        # wrap on a free-free edge has 1, wrap(c,d) has 2.
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [5.0, 2.0, 4.0])
        m = Matching(g, [(1, 2)])
        assert len(wrap_path(m, 0, 1)) == 2
        assert len(wrap_path(m, 2, 3)) == 2
        wm = derived_weights_array(g, m.mate_array())
        assert wm[g.edge_id(0, 1)] == 5.0 - 2.0
        assert wm[g.edge_id(2, 3)] == 4.0 - 2.0
        assert wm[g.edge_id(1, 2)] == 0.0
        free = Matching(g)
        wm_free = derived_weights_array(g, free.mate_array())
        assert wm_free.tolist() == [5.0, 2.0, 4.0]  # length-1 wraps

    def test_isolated_vertices_and_empty_graph(self):
        g = Graph(5, [(0, 1)], [3.0])  # vertices 2-4 isolated
        m = Matching(g)
        assert derived_weights_array(g, m.mate_array()).tolist() == [3.0]
        empty = Graph(4, [], [])
        assert derived_weights_array(empty, Matching(empty).mate_array()).size == 0

    def test_eps_threshold_noise(self):
        # A swap whose gain is float noise: w(a,b) barely exceeds the
        # matched weight.  The kernel must reproduce the scalar
        # subtraction exactly so the _EPS_W comparison agrees.
        for bump in (0.0, _EPS_W / 2, 5e-12, 1e-9):
            w_edge = 1.0 + bump
            g = Graph(3, [(0, 1), (1, 2)], [w_edge, 1.0])
            m = Matching(g, [(1, 2)])
            wm = derived_weights_array(g, m.mate_array())
            scalar = wrap_gain(g, m, 0, 1)
            assert wm[0] == scalar
            assert (wm[0] > _EPS_W) == (scalar > _EPS_W)


class TestApplyWrapsArray:
    @given(matchable(max_n=12), st.integers(min_value=0, max_value=99))
    @_slow
    def test_matches_scalar_apply(self, gm, wseed):
        g0, edges = gm
        g = _weighted(g0, wseed)
        m = Matching(g, edges)
        wm = derived_weights_array(g, m.mate_array())
        # A greedy vertex-disjoint positive-gain M' (what the box feeds).
        used: set[int] = set()
        mprime = []
        lo, hi = g.endpoints_array()
        for eid in np.argsort(-wm):
            u, v = int(lo[eid]), int(hi[eid])
            if wm[eid] > _EPS_W and not {u, v} & used:
                mprime.append((u, v))
                used.update((u, v))
        got = apply_wraps_array(m, mprime)
        want = apply_wraps(m, mprime)
        assert got == want

    def test_rejects_vertex_reuse_and_overlap(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [1.0, 2.0, 3.0])
        m = Matching(g, [(1, 2)])
        with pytest.raises(ValueError):
            apply_wraps_array(m, [(0, 1), (1, 2)])  # vertex reuse
        with pytest.raises(ValueError):
            apply_wraps_array(m, [(1, 2)])  # not disjoint from M

    def test_shared_removed_edge(self):
        # Both endpoints of the matched edge serve different M' edges —
        # the Lemma 4.1 overlap case apply_wraps collects as a set.
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [5.0, 1.0, 5.0])
        m = Matching(g, [(1, 2)])
        got = apply_wraps_array(m, [(0, 1), (2, 3)])
        assert sorted(got.edges()) == [(0, 1), (2, 3)]


class TestWeightClassArray:
    @given(
        st.lists(
            st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    @_slow
    def test_matches_scalar_classes(self, ws):
        wmax = max(ws)
        got = _weight_class_array(np.asarray(ws), wmax)
        assert got.tolist() == [_weight_class(w, wmax) for w in ws]

    def test_power_of_two_boundaries(self):
        wmax = 64.0
        ws = [64.0, 32.0, 32.0000000001, 16.0, 8.0, 63.9999999999, 1e-12]
        got = _weight_class_array(np.asarray(ws), wmax)
        assert got.tolist() == [_weight_class(w, wmax) for w in ws]

    def test_per_lane_wmax_rows(self):
        w = np.asarray([8.0, 4.0, 1.0])
        wmax = np.asarray([[8.0], [16.0]])
        got = _weight_class_array(w, wmax)
        assert got.tolist() == [
            [_weight_class(x, 8.0) for x in w],
            [_weight_class(x, 16.0) for x in w],
        ]


class TestFromMateArray:
    def test_round_trip_and_validation(self):
        g = assign_uniform_weights(gnp_random(14, 0.3, seed=2), seed=2)
        m = Matching(g)
        for u, v in g.edges():
            if m.is_free(u) and m.is_free(v):
                m.add(u, v)
        rebuilt = Matching.from_mate_array(g, m.mate_array())
        assert rebuilt == m and len(rebuilt) == len(m)
        bad = m.mate_array()
        if len(m):
            v = int(np.flatnonzero(bad != -1)[0])
            bad[v] = -1  # break symmetry
            with pytest.raises(ValueError):
                Matching.from_mate_array(g, bad)
        not_edge = np.full(g.n, -1, dtype=np.int64)
        pair = next(
            (u, v)
            for u in range(g.n)
            for v in range(u + 1, g.n)
            if not g.has_edge(u, v)
        )
        not_edge[pair[0]], not_edge[pair[1]] = pair[1], pair[0]
        with pytest.raises(ValueError):
            Matching.from_mate_array(g, not_edge)
        with pytest.raises(ValueError):
            Matching.from_mate_array(g, np.zeros(g.n, dtype=np.int64))  # self-mate
