"""Unit tests for RunResult accounting (repro.distributed.metrics)."""

import pytest

from repro.baselines.israeli_itai import israeli_itai_program
from repro.distributed import Network, RunResult
from repro.distributed.trace import run_traced
from repro.graphs import gnp_random


class TestRunResultBasics:
    def test_defaults_are_zeroed(self):
        res = RunResult()
        assert (res.rounds, res.total_messages, res.total_bits) == (0, 0, 0)
        assert res.max_message_bits == 0 and res.charged_rounds == 0
        assert res.outputs == {}

    def test_total_rounds_includes_charged(self):
        res = RunResult(rounds=7, charged_rounds=5)
        assert res.total_rounds == 12

    def test_equality_covers_outputs(self):
        a = RunResult(rounds=1, outputs={0: True})
        b = RunResult(rounds=1, outputs={0: True})
        c = RunResult(rounds=1, outputs={0: False})
        assert a == b and a != c


class TestMerge:
    def test_sequential_composition(self):
        a = RunResult(
            rounds=3, total_messages=10, total_bits=100,
            max_message_bits=16, charged_rounds=2, outputs={0: "a", 1: "a"},
        )
        b = RunResult(
            rounds=4, total_messages=5, total_bits=30,
            max_message_bits=8, charged_rounds=1, outputs={1: "b", 2: "b"},
        )
        m = a.merge(b)
        assert m.rounds == 7
        assert m.total_messages == 15
        assert m.total_bits == 130
        assert m.max_message_bits == 16  # max, not sum
        assert m.charged_rounds == 3
        assert m.outputs == {0: "a", 1: "b", 2: "b"}  # later run overwrites

    def test_merge_with_empty_is_identity(self):
        a = RunResult(rounds=2, total_messages=4, total_bits=9,
                      max_message_bits=5, outputs={0: 1})
        merged = a.merge(RunResult())
        assert merged == a

    def test_merge_does_not_mutate_inputs(self):
        a = RunResult(rounds=1, outputs={0: "x"})
        b = RunResult(rounds=2, outputs={0: "y"})
        a.merge(b)
        assert a.rounds == 1 and a.outputs == {0: "x"}
        assert b.rounds == 2

    def test_merge_associative_on_counters(self):
        rs = [
            RunResult(rounds=i, total_messages=2 * i, total_bits=3 * i,
                      max_message_bits=i, charged_rounds=i)
            for i in (1, 4, 2)
        ]
        left = rs[0].merge(rs[1]).merge(rs[2])
        right = rs[0].merge(rs[1].merge(rs[2]))
        assert left == right


class TestMetricsMatchTrace:
    def test_totals_match_traced_per_round_records(self):
        """Round-trip: a real run's RunResult equals its trace's totals."""
        g = gnp_random(25, 0.2, seed=9)
        res, tracer = run_traced(Network(g, israeli_itai_program, seed=9))
        assert res.total_messages == sum(r.messages for r in tracer.records)
        assert res.total_bits == sum(r.bits for r in tracer.records)
        assert res.rounds == len(tracer.records)
        assert res.max_message_bits == max(r.max_bits for r in tracer.records)
        summary = tracer.summary()
        assert summary["messages"] == res.total_messages
        assert summary["bits"] == res.total_bits
        assert summary["rounds"] == res.rounds
