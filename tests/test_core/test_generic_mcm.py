"""Tests for Algorithms 1 & 2 (Theorem 3.1)."""

import pytest

from repro.core import generic_mcm, generic_mcm_reference
from repro.core.generic_mcm import flood_views_program
from repro.distributed import Network
from repro.graphs import Graph, cycle_graph, gnp_random, path_graph
from repro.matching import Matching, maximum_matching_size


class TestFlooding:
    def _views(self, g, mates, depth):
        net = Network(
            g, flood_views_program, params={"depth": depth, "mates": mates}
        )
        return net.run().outputs

    def test_depth_zero_sees_self(self):
        g = path_graph(3)
        views = self._views(g, [-1, -1, -1], 0)
        assert ("v", 0, True) in views[0]
        assert ("e", 0, 1, False) in views[0]
        assert not any(rec[1] == 2 for rec in views[0] if rec[0] == "v")

    def test_depth_covers_ball(self):
        g = path_graph(5)
        views = self._views(g, [-1] * 5, 2)
        # node 0 at depth 2 knows vertices 0,1,2 and edge (2,3) via node 2's
        # incident list, but not vertex record of 4.
        vids = {rec[1] for rec in views[0] if rec[0] == "v"}
        assert vids == {0, 1, 2}

    def test_matched_flags_propagate(self):
        g = path_graph(3)
        views = self._views(g, [1, 0, -1], 1)
        assert ("e", 0, 1, True) in views[2]

    def test_full_depth_equals_whole_component(self):
        g = cycle_graph(6)
        views = self._views(g, [-1] * 6, 6)
        for v in range(6):
            assert len([r for r in views[v] if r[0] == "e"]) == 6

    def test_message_sizes_bounded_by_graph_size(self):
        g = gnp_random(20, 0.2, seed=1)
        net = Network(
            g, flood_views_program, params={"depth": 4, "mates": [-1] * 20}
        )
        res = net.run()
        # Theorem 3.1: messages O(|V|+|E|) — each record ~O(log n) bits.
        per_record = 3 + 2 * 7 + 8  # flags + 2 ids + tag, loose
        assert res.max_message_bits <= (g.n + g.m) * per_record


class TestApproximation:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_ratio_on_paths(self, k):
        g = path_graph(12)
        m, _ = generic_mcm(g, k=k, seed=1)
        opt = maximum_matching_size(g)
        assert len(m) >= (1 - 1 / (k + 1)) * opt - 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_ratio_on_random_k2(self, seed):
        g = gnp_random(40, 0.08, seed=seed)
        m, _ = generic_mcm(g, k=2, seed=seed)
        opt = maximum_matching_size(g)
        assert len(m) >= (1 - 1 / 3) * opt - 1e-9

    def test_k1_gives_maximal(self):
        g = gnp_random(30, 0.1, seed=5)
        m, _ = generic_mcm(g, k=1, seed=5)
        assert m.is_maximal()

    def test_eps_parameter(self):
        g = gnp_random(30, 0.1, seed=6)
        m, _ = generic_mcm(g, eps=0.5, seed=6)  # k = 2
        opt = maximum_matching_size(g)
        assert len(m) >= 0.5 * opt

    def test_odd_cycle_blossom_case(self):
        g = cycle_graph(5)
        m, _ = generic_mcm(g, k=2, seed=7)
        assert len(m) == 2

    def test_param_validation(self):
        g = path_graph(2)
        with pytest.raises(ValueError):
            generic_mcm(g)  # neither k nor eps
        with pytest.raises(ValueError):
            generic_mcm(g, k=2, eps=0.1)  # both
        with pytest.raises(ValueError):
            generic_mcm(g, eps=1.5)
        with pytest.raises(ValueError):
            generic_mcm(g, k=0)


class TestStats:
    def test_conflict_sizes_recorded(self):
        g = path_graph(8)
        _, stats = generic_mcm(g, k=2, seed=8)
        assert 1 in stats.conflict_sizes and 3 in stats.conflict_sizes

    def test_charged_rounds_positive_when_mis_ran(self):
        g = gnp_random(20, 0.2, seed=9)
        _, stats = generic_mcm(g, k=2, seed=9)
        assert stats.result.charged_rounds > 0
        assert stats.result.rounds > 0  # flooding was simulated

    def test_views_exposed_for_verification(self):
        g = path_graph(5)
        _, stats = generic_mcm(g, k=1, seed=10)
        assert set(stats.views) == set(range(5))


class TestReference:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(3))
    def test_reference_guarantee(self, k, seed):
        g = gnp_random(30, 0.1, seed=seed)
        m = generic_mcm_reference(g, k, seed=seed)
        opt = maximum_matching_size(g)
        assert len(m) >= (1 - 1 / (k + 1)) * opt - 1e-9

    def test_reference_deterministic_without_seed(self):
        g = gnp_random(25, 0.15, seed=11)
        assert generic_mcm_reference(g, 2) == generic_mcm_reference(g, 2)

    def test_distributed_matches_reference_quality(self):
        """Same guarantee; sizes within each other's phase bounds."""
        g = gnp_random(30, 0.12, seed=12)
        md, _ = generic_mcm(g, k=2, seed=12)
        mr = generic_mcm_reference(g, 2)
        opt = maximum_matching_size(g)
        for m in (md, mr):
            assert len(m) >= (2 / 3) * opt - 1e-9
