"""Tests for Section 3.2 (Algorithm 3 + token MIS, Theorem 3.8)."""

import math

import pytest

from repro.core import aug_bipartite, bipartite_mcm, count_augmenting_paths
from repro.core.bipartite_mcm import default_phase_iterations
from repro.core.figures import figure1_instance
from repro.graphs import (
    Graph,
    bipartite_random,
    complete_bipartite,
    crown_graph,
    path_graph,
)
from repro.matching import (
    Matching,
    find_augmenting_paths_upto,
    hopcroft_karp,
    shortest_augmenting_path_length,
)


def _xside(g, xs):
    out = [False] * g.n
    for x in xs:
        out[x] = True
    return out


class TestCounting:
    """Algorithm 3 / Lemma 3.6: n_y equals the number of augmenting
    paths of length d(y) ending at the free node y."""

    def test_figure1_counts(self):
        g, xside, mates, expected = figure1_instance()
        counts, _ = count_augmenting_paths(g, xside, mates, 3)
        for v, want in expected.items():
            d, n_v, _contrib, _leader = counts[v]
            assert n_v == want, f"node {v}: n_v={n_v}, expected {want}"

    def test_counts_match_enumeration(self):
        for seed in range(6):
            g, xs, _ = bipartite_random(8, 8, 0.25, seed=seed)
            m = Matching(g)
            # build some matching via single-edge augment phase
            xside = _xside(g, xs)
            mates, _, _ = aug_bipartite(g, xside, [-1] * g.n, 1, seed=seed)
            m = Matching(g, [(v, mates[v]) for v in range(g.n) if v < mates[v]])
            for ell in (1, 3):
                counts, _ = count_augmenting_paths(g, xside, mates, ell)
                paths = find_augmenting_paths_upto(g, m, ell)
                for y in range(g.n):
                    if xside[y] or mates[y] != -1:
                        continue
                    d, n_v, _c, leader = counts[y]
                    ending = [
                        p for p in paths if (p[0] == y or p[-1] == y)
                    ]
                    if not ending:
                        assert not leader
                        continue
                    shortest = min(len(p) - 1 for p in ending)
                    expected = sum(
                        1 for p in ending if len(p) - 1 == shortest
                    )
                    assert leader
                    assert d == shortest
                    assert n_v == expected, (y, ell)

    def test_distances_alternate_parity(self):
        g, xside, mates, _ = figure1_instance()
        counts, _ = count_augmenting_paths(g, xside, mates, 3)
        for v, (d, n_v, _c, _l) in counts.items():
            if d == -1:
                continue
            # Y nodes receive at odd rounds, X nodes at even rounds.
            assert (d % 2 == 1) == (not xside[v])

    def test_lemma36_degree_bound(self):
        g, xside, mates, _ = figure1_instance()
        counts, _ = count_augmenting_paths(g, xside, mates, 3)
        delta = g.max_degree()
        for v, (d, n_v, _c, _l) in counts.items():
            if d != -1:
                assert n_v <= delta ** math.ceil(d / 2)

    def test_stage_a_round_count(self):
        g, xside, mates, _ = figure1_instance()
        _, res = count_augmenting_paths(g, xside, mates, 3)
        assert res.rounds == 4  # ℓ+1 segments


class TestAugPhase:
    def test_single_edge_phase_matches_maximally(self):
        g, xs, _ = bipartite_random(10, 10, 0.3, seed=1)
        mates, _, _ = aug_bipartite(g, _xside(g, xs), [-1] * g.n, 1, seed=2)
        m = Matching(g, [(v, mates[v]) for v in range(g.n) if v < mates[v]])
        assert m.is_maximal()

    def test_phase_removes_short_paths(self):
        """After Aug(ℓ), no augmenting path of length ≤ ℓ remains."""
        for seed in range(5):
            g, xs, _ = bipartite_random(10, 10, 0.3, seed=seed)
            xside = _xside(g, xs)
            mates = [-1] * g.n
            for ell in (1, 3):
                mates, _, _ = aug_bipartite(g, xside, mates, ell, seed=seed)
                m = Matching(
                    g, [(v, mates[v]) for v in range(g.n) if v < mates[v]]
                )
                length = shortest_augmenting_path_length(g, m)
                assert length is None or length > ell

    def test_even_ell_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="odd"):
            aug_bipartite(g, [True] * 4, [-1] * 4, 2)

    def test_fixed_budget_mode(self):
        g, xs, _ = bipartite_random(8, 8, 0.3, seed=3)
        iters = default_phase_iterations(g.n, g.max_degree(), 1)
        mates, res, used = aug_bipartite(
            g, _xside(g, xs), [-1] * g.n, 1, seed=4, iters=iters, adaptive=False
        )
        assert used == iters
        assert res.rounds == iters * 6  # 3ℓ+3 = 6 rounds per iteration

    def test_progress_guaranteed_each_iteration(self):
        """The max-numbered token always completes, so adaptive mode
        terminates in at most |M*| iterations (plus the certificate)."""
        g, xs, _ = complete_bipartite(6, 6)
        _, _, used = aug_bipartite(g, _xside(g, xs), [-1] * g.n, 1, seed=5)
        assert used <= 7


class TestTheorem38:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_guarantee_random(self, k):
        g, xs, _ = bipartite_random(25, 25, 0.12, seed=k)
        m, _ = bipartite_mcm(g, k=k, xs=xs, seed=k + 10)
        opt = len(hopcroft_karp(g, xs))
        assert len(m) >= (1 - 1 / k) * opt - 1e-9

    def test_crown_graph_beats_half(self):
        g, xs, _ = crown_graph(8)
        m, _ = bipartite_mcm(g, k=3, xs=xs, seed=1)
        assert len(m) >= (2 / 3) * 8

    def test_k1_maximal(self):
        g, xs, _ = bipartite_random(12, 12, 0.25, seed=6)
        m, _ = bipartite_mcm(g, k=1, xs=xs, seed=6)
        assert m.is_maximal()

    def test_autodetect_bipartition(self):
        g = path_graph(8)
        m, _ = bipartite_mcm(g, k=2, seed=7)
        assert len(m) >= (1 / 2) * 4

    def test_non_bipartite_rejected(self, triangle):
        with pytest.raises(ValueError, match="not bipartite"):
            bipartite_mcm(triangle, k=2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            bipartite_mcm(path_graph(2), k=0)

    def test_empty_graph(self):
        m, res = bipartite_mcm(Graph(4), k=2, xs=[0, 1], seed=8)
        assert len(m) == 0

    def test_determinism(self):
        g, xs, _ = bipartite_random(15, 15, 0.2, seed=9)
        a, _ = bipartite_mcm(g, k=2, xs=xs, seed=11)
        b, _ = bipartite_mcm(g, k=2, xs=xs, seed=11)
        assert a == b

    def test_fidelity_mode_same_guarantee(self):
        g, xs, _ = bipartite_random(10, 10, 0.25, seed=12)
        m, res = bipartite_mcm(g, k=2, xs=xs, seed=12, adaptive=False)
        opt = len(hopcroft_karp(g, xs))
        assert len(m) >= (1 / 2) * opt - 1e-9


class TestMessageSizes:
    def test_small_messages(self):
        """Thm 3.8: messages O(log Δ) after pipelining; our unpipelined
        tokens carry O(log N) = O(ℓ log Δ + log n) bits."""
        g, xs, _ = bipartite_random(30, 30, 0.12, seed=13)
        _, res = bipartite_mcm(g, k=3, xs=xs, seed=13)
        n, delta, ell = g.n, g.max_degree(), 5
        bound = 4 * (math.log2(n) + (ell + 1) / 2 * math.log2(delta + 1)) + 16
        assert res.max_message_bits <= bound

    def test_counting_messages_scale_with_degree(self):
        g, xside, mates, _ = figure1_instance()
        _, res = count_augmenting_paths(g, xside, mates, 3)
        # counts are at most Δ^2 here: tag byte + small int
        assert res.max_message_bits <= 8 + 8
