"""Hopcroft–Karp maximum bipartite matching, from scratch.

Reference [13] of the paper.  Two uses here:

* :func:`hopcroft_karp` — the exact bipartite oracle for approximation
  ratios (|M*| in δ-MCM checks);
* :func:`hopcroft_karp_truncated` — runs only the phases with
  augmenting-path length <= 2k−1 and stops, yielding a centralized
  (1−1/k)-MCM *reference* with exactly the guarantee of Theorem 3.8
  (by Lemmas 3.4/3.5).  Tests cross-check the distributed bipartite
  algorithm against it.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.graph import Graph
from repro.matching.matching import Matching

_INF = float("inf")


def _sides(g: Graph, xs: list[int] | None) -> list[int]:
    if xs is not None:
        return xs
    part = g.bipartition()
    if part is None:
        raise ValueError("graph is not bipartite")
    return part[0]


def _hk(g: Graph, xs: list[int], max_phase_len: int | None) -> Matching:
    """Shared phase loop; ``max_phase_len`` bounds augmenting-path length."""
    import sys

    # The phase DFS recurses once per layer; layers can approach n/2.
    sys.setrecursionlimit(max(sys.getrecursionlimit(), g.n + 1000))
    x_side = [False] * g.n
    for x in xs:
        x_side[x] = True
    mate = [-1] * g.n
    dist = [0.0] * g.n

    def bfs() -> float:
        """Layer X vertices; return the shortest augmenting length (edges)."""
        q: deque[int] = deque()
        for x in xs:
            if mate[x] == -1:
                dist[x] = 0
                q.append(x)
            else:
                dist[x] = _INF
        found = _INF
        while q:
            x = q.popleft()
            if dist[x] >= found:
                continue
            for y in g.neighbors(x):
                nxt = mate[y]
                if nxt == -1:
                    # Augmenting path of length 2*dist[x] + 1 edges.
                    found = min(found, 2 * dist[x] + 1)
                elif dist[nxt] == _INF:
                    dist[nxt] = dist[x] + 1
                    q.append(nxt)
        return found

    def dfs(x: int, limit: float) -> bool:
        """Find an augmenting path from x within the BFS layering."""
        for y in g.neighbors(x):
            nxt = mate[y]
            if nxt == -1:
                if 2 * dist[x] + 1 <= limit:
                    mate[x] = y
                    mate[y] = x
                    return True
            elif dist[nxt] == dist[x] + 1 and dfs(nxt, limit):
                mate[x] = y
                mate[y] = x
                return True
        dist[x] = _INF  # dead end: prune for the rest of the phase
        return False

    while True:
        shortest = bfs()
        if shortest == _INF:
            break
        if max_phase_len is not None and shortest > max_phase_len:
            break
        for x in xs:
            if mate[x] == -1:
                dfs(x, shortest)

    m = Matching(g)
    for x in xs:
        if mate[x] != -1:
            m.add(x, mate[x])
    return m


def hopcroft_karp(g: Graph, xs: list[int] | None = None) -> Matching:
    """Maximum cardinality matching of a bipartite graph.

    ``xs`` optionally names one side (otherwise a 2-coloring is
    computed).  O(m·sqrt(n)).
    """
    return _hk(g, _sides(g, xs), None)


def hopcroft_karp_truncated(
    g: Graph, k: int, xs: list[int] | None = None
) -> Matching:
    """Run HK phases only while the shortest augmenting path is <= 2k−1.

    By Lemma 3.4 each phase kills all shortest augmenting paths, and by
    Lemma 3.5 stopping when the shortest augmenting path exceeds 2k−1
    leaves a matching of size at least (1 − 1/k)·|M*| — wait: shortest
    length > 2k−1 means length >= 2(k+1)−1, so Lemma 3.5 gives
    (1 − 1/(k+1)) >= (1 − 1/k).  This is the centralized analogue of
    Theorem 3.8's guarantee.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    return _hk(g, _sides(g, xs), 2 * k - 1)
