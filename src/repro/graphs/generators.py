"""Graph generators for the experiment suite.

All generators take an explicit ``seed`` (or an ``rng``) so every
experiment is reproducible.  Families:

* classical random graphs — G(n, p), G(n, m), random d-regular,
  uniform random trees;
* structured graphs — paths, cycles, grids, stars, complete and
  complete-bipartite graphs;
* *crown graphs* — the standard family on which a maximal matching can
  be ~half the maximum one, separating the ½-approximation baselines
  from the paper's (1−1/k) algorithms;
* bipartite demand graphs modelling the switch-scheduling workload the
  paper's introduction motivates (input ports × output ports, an edge
  per non-empty virtual output queue);
* scenario families for the "for all graphs" claims (Thms 3.1, 3.8,
  3.11, 4.5): scale-free preferential attachment (``barabasi_albert``),
  small-world rings (``watts_strogatz``), heavy-tailed configuration
  graphs (``powerlaw_configuration``), stochastic Kronecker graphs
  (``kronecker``), adversarial planted-matching instances
  (``planted_matching``) and high-Δ ``lollipop_graph`` stress cases.

The random families are sampled with NumPy batch operations (stub
shuffles, Bernoulli masks, vectorized unranking) rather than per-edge
Python loops, so million-edge instances stay cheap.

Streamed construction (the scale tier, ISSUE 7): the unbounded-size
families — ``gnp_random``, ``gnm_random``, ``barabasi_albert``,
``watts_strogatz``, ``powerlaw_configuration`` — emit their edges as
chunked NumPy arrays into :meth:`Graph.from_edge_chunks`; no Python
edge list (~100 bytes/edge) is ever materialized.  ``gnp_random`` /
``gnm_random`` / ``powerlaw_configuration`` produce bit-identical
graphs to their pre-stream scalar forms for integer seeds (the
underlying draws are unchanged; only the unranking/dedup is
vectorized).  ``barabasi_albert`` and ``watts_strogatz`` define new
seeded streams (their old forms were inherently one-edge-at-a-time);
the affected goldens were recaptured, per the PR 6 precedent.  When a
shared ``np.random.Generator`` instance is passed instead of an int
seed, block drawing may consume more raw draws than the scalar loops
did — the produced graph is unaffected, but the generator's subsequent
state can differ.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph, sorted_unique

#: Edge-chunk granularity for the streamed generators.
_CHUNK = 1 << 18


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _unrank_edges(n: int, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized unranking: lexicographic pair rank -> (u, v), u < v.

    Rank 0 is (0, 1); row ``u`` starts at ``u*(2n-u-1)//2``.  The row
    is located with one float ``sqrt`` and repaired with the same
    integer guards the scalar loop used (float rounding can be off by
    one; each guard moves monotonically, so the repair loop runs at
    most a couple of passes over the whole array).
    """
    idx = np.asarray(idx, dtype=np.int64)
    s = 2 * n - 1
    u = ((s - np.sqrt(s * s - 8.0 * idx.astype(np.float64))) // 2).astype(
        np.int64
    )
    np.clip(u, 0, max(n - 2, 0), out=u)
    while True:
        base = u * (2 * n - u - 1) // 2
        over = base > idx
        if over.any():
            u[over] -= 1
            continue
        under = base + (n - u - 1) <= idx
        if under.any():
            u[under] += 1
            continue
        break
    return u, u + 1 + (idx - base)


def gnp_random(n: int, p: float, seed: int | np.random.Generator | None = 0) -> Graph:
    """Erdős–Rényi G(n, p).

    Sampled via geometric edge skipping, O(n + m) expected time, so
    large sparse instances are cheap.  Streamed: the Geometric(p) gaps
    are drawn in blocks (``rng.random`` fills arrays from the same
    uniform stream the scalar loop consumed, so the produced graph is
    bit-identical for integer seeds), cumulative-summed into edge
    ranks, and unranked chunk by chunk into
    :meth:`Graph.from_edge_chunks`.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0,1], got {p}")
    rng = _rng(seed)
    if p == 0.0 or n < 2:
        return Graph(n)
    if p == 1.0:
        return complete_graph(n)
    # Iterate over the n*(n-1)/2 potential edges in lexicographic order,
    # jumping ahead by Geometric(p) each time (gap >= 1).
    lp = np.log1p(-p)
    total = n * (n - 1) // 2
    chunks: list[np.ndarray] = []
    last = -1  # rank of the previously emitted edge
    while True:
        gaps = 1 + np.floor(
            np.log(1.0 - rng.random(_CHUNK)) / lp
        ).astype(np.int64)
        ranks = last + np.cumsum(gaps)
        done = bool(ranks[-1] >= total)
        if done:
            ranks = ranks[ranks < total]
        else:
            last = int(ranks[-1])
        if ranks.size:
            u, v = _unrank_edges(n, ranks)
            chunks.append(np.stack([u, v], axis=1))
        if done:
            return Graph.from_edge_chunks(n, chunks)


def gnm_random(n: int, m: int, seed: int | np.random.Generator | None = 0) -> Graph:
    """Uniform random graph with exactly ``m`` edges.

    The draw (``rng.choice`` without replacement over the pair ranks)
    never materializes the rank population, so it works at any n; the
    chosen ranks are unranked vectorized, chunk by chunk, in draw order
    — bit-identical to the retired per-edge scalar loop, which was
    O(m·n) worst case.
    """
    total = n * (n - 1) // 2
    if m > total:
        raise ValueError(f"m={m} exceeds the {total} possible edges")
    rng = _rng(seed)
    chosen = rng.choice(total, size=m, replace=False)

    def _chunks():
        for s in range(0, m, _CHUNK):
            u, v = _unrank_edges(n, chosen[s: s + _CHUNK])
            yield np.stack([u, v], axis=1)

    return Graph.from_edge_chunks(n, _chunks())


def bipartite_random(
    nx: int,
    ny: int,
    p: float,
    seed: int | np.random.Generator | None = 0,
) -> tuple[Graph, list[int], list[int]]:
    """Random bipartite graph: X = 0..nx-1, Y = nx..nx+ny-1, edge prob p.

    Returns ``(graph, X, Y)``.
    """
    rng = _rng(seed)
    mask = rng.random((nx, ny)) < p
    xs, ys = np.nonzero(mask)
    g = Graph(nx + ny, np.column_stack([xs, ys + nx]))
    return g, list(range(nx)), list(range(nx, nx + ny))


def complete_graph(n: int) -> Graph:
    """K_n (edge array built with one ``triu_indices`` call)."""
    us, vs = np.triu_indices(n, k=1)
    return Graph(n, np.column_stack([us, vs]))


def complete_bipartite(nx: int, ny: int) -> tuple[Graph, list[int], list[int]]:
    """K_{nx,ny}; returns ``(graph, X, Y)``."""
    xs = np.repeat(np.arange(nx), ny)
    ys = nx + np.tile(np.arange(ny), nx)
    g = Graph(nx + ny, np.column_stack([xs, ys]))
    return g, list(range(nx)), list(range(nx, nx + ny))


def path_graph(n: int) -> Graph:
    """Path on n vertices (n-1 edges)."""
    base = np.arange(max(n - 1, 0))
    return Graph(n, np.column_stack([base, base + 1]))


def cycle_graph(n: int) -> Graph:
    """Cycle on n >= 3 vertices."""
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    base = np.arange(n)
    return Graph(n, np.column_stack([base, (base + 1) % n]))


def star_graph(n: int) -> Graph:
    """Star with center 0 and n-1 leaves."""
    leaves = np.arange(1, max(n, 1))
    return Graph(n, np.column_stack([np.zeros_like(leaves), leaves]))


def grid_graph(rows: int, cols: int) -> Graph:
    """rows × cols grid; vertex (r, c) is r*cols + c."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges)


def crown_graph(k: int) -> tuple[Graph, list[int], list[int]]:
    """Crown graph S_k^0: K_{k,k} minus a perfect matching.

    The classical hard case for ½-approximations: a maximal matching can
    have size ⌈k/2⌉-ish while the maximum is k... more precisely the
    crown has a perfect matching of size k, yet greedy/maximal schemes
    can get stuck at much smaller matchings on its *augmenting*
    structure.  Used in the baseline-separation experiment E5.
    """
    if k < 3:
        raise ValueError("crown graph needs k >= 3")
    xs = np.repeat(np.arange(k), k)
    ys = np.tile(np.arange(k), k)
    off = xs != ys  # K_{k,k} minus the identity matching
    g = Graph(2 * k, np.column_stack([xs[off], ys[off] + k]))
    return g, list(range(k)), list(range(k, 2 * k))


def random_tree(n: int, seed: int | np.random.Generator | None = 0) -> Graph:
    """Uniform random labelled tree via a random Prüfer sequence."""
    if n <= 1:
        return Graph(n)
    if n == 2:
        return Graph(2, [(0, 1)])
    rng = _rng(seed)
    prufer = [int(rng.integers(0, n)) for _ in range(n - 2)]
    degree = [1] * n
    for v in prufer:
        degree[v] += 1
    edges = []
    # Min-leaf scan (O(n log n) with a sorted structure is unnecessary
    # at our scales; a pointer scan is O(n^2) worst case but fine).
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, v))
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return Graph(n, edges)


def random_regular(n: int, d: int, seed: int | np.random.Generator | None = 0) -> Graph:
    """Random d-regular graph via the pairing model with retries.

    Raises ``ValueError`` when ``n*d`` is odd or ``d >= n``.
    """
    if d >= n:
        raise ValueError(f"degree d={d} must be < n={n}")
    if (n * d) % 2 != 0:
        raise ValueError("n*d must be even")
    rng = _rng(seed)
    for _attempt in range(200):
        stubs = np.repeat(np.arange(n), d)
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        seen: set[tuple[int, int]] = set()
        ok = True
        edges = []
        for a, b in pairs:
            a, b = int(a), int(b)
            if a == b:
                ok = False
                break
            key = (a, b) if a < b else (b, a)
            if key in seen:
                ok = False
                break
            seen.add(key)
            edges.append(key)
        if ok:
            return Graph(n, edges)
    raise RuntimeError(
        f"pairing model failed to produce a simple {d}-regular graph "
        f"on {n} vertices after 200 attempts"
    )


def hypercube_graph(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube Q_dim (2^dim vertices)."""
    if dim < 0:
        raise ValueError("dimension must be nonnegative")
    n = 1 << dim
    edges = [
        (v, v ^ (1 << b)) for v in range(n) for b in range(dim) if v < v ^ (1 << b)
    ]
    return Graph(n, edges)


def barbell_graph(k: int, bridge: int = 1) -> Graph:
    """Two K_k cliques joined by a path of ``bridge`` edges.

    Low-conductance structure: stresses algorithms whose progress
    arguments assume expansion.
    """
    if k < 2:
        raise ValueError("cliques need k >= 2")
    if bridge < 1:
        raise ValueError("bridge needs at least one edge")
    n = 2 * k + (bridge - 1)
    edges = [(u, v) for u in range(k) for v in range(u + 1, k)]
    right = list(range(k + bridge - 1, n))
    edges += [(u, v) for i, u in enumerate(right) for v in right[i + 1:]]
    chain = [k - 1] + list(range(k, k + bridge - 1)) + [right[0]]
    edges += [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]
    return Graph(n, edges)


def caterpillar_graph(spine: int, legs: int = 1, seed: int | np.random.Generator | None = 0) -> Graph:
    """A path of ``spine`` vertices with ``legs`` leaves per spine node."""
    if spine < 1:
        raise ValueError("spine must have at least one vertex")
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for s in range(spine):
        for _ in range(legs):
            edges.append((s, nxt))
            nxt += 1
    return Graph(nxt, edges)


def comb_graph(teeth: int) -> Graph:
    """A comb: a path spine with one pendant leaf per spine vertex.

    The classical ½-separation instance: the spine-leaf edges form a
    perfect matching of size ``teeth``, yet the spine edges alone are a
    maximal matching of size ~teeth/2 — the worst case any maximal-
    matching baseline (Israeli–Itai, greedy, PIM-style) can fall into,
    while phase-based (1−1/k) algorithms escape via 3-augmentations.
    """
    if teeth < 2:
        raise ValueError("comb needs at least 2 teeth")
    edges = [(i, i + 1) for i in range(teeth - 1)]  # spine
    edges += [(i, teeth + i) for i in range(teeth)]  # leaves
    return Graph(2 * teeth, edges)


def barabasi_albert(
    n: int, m_attach: int = 2, seed: int | np.random.Generator | None = 0
) -> Graph:
    """Barabási–Albert preferential attachment (scale-free degrees).

    Starts from K_{m_attach+1}; every later vertex attaches to
    ``m_attach`` distinct existing vertices chosen proportionally to
    degree, via the repeated-endpoints pool (each vertex appears in the
    pool once per incident edge, so a uniform pool draw *is* a
    degree-proportional draw).  Every vertex ends with degree ≥
    ``m_attach``; hub degrees follow the familiar power law, the
    high-skew regime the matching algorithms' Δ-dependent round bounds
    care about.

    Streamed implementation (ISSUE 7): the pool is arithmetic, never
    materialized — a drawn slot decodes to a core vertex, an edge's
    source, or a *pointer* to an earlier edge's target, and all draws
    are batched with pointer chasing plus duplicate-redraw rounds
    instead of the old per-vertex Python loop.  Same model, new seeded
    stream (bit-compatibility with the scalar loop is impractical);
    the BA goldens were recaptured, per the PR 6 precedent.
    """
    if m_attach < 1:
        raise ValueError(f"m_attach must be >= 1, got {m_attach}")
    if n <= m_attach + 1:
        raise ValueError(f"need n > m_attach+1 = {m_attach + 1}, got n={n}")
    rng = _rng(seed)
    m0 = m_attach + 1
    ma = m_attach
    # K_{m0} core; its pool slots are vertex 0 repeated deg=m_attach
    # times, then vertex 1, ... (slot // m_attach decodes the vertex).
    cu, cv = np.triu_indices(m0, k=1)
    core = np.stack([cu, cv], axis=1).astype(np.int64)
    f0 = m0 * (m0 - 1)  # pool slots owned by the core
    nv = n - m0  # attaching vertices; vertex of row r is m0 + r
    # The pool is never materialized: slot s of attachment edge e is
    # decoded arithmetically — s < f0 is a core slot, odd offsets are
    # the edge's source vertex m0 + e//ma, even offsets *point at* the
    # target of edge e (a pointer chase into earlier rows).  A draw for
    # row r sees exactly the pool of the first m0 + r vertices:
    fills = f0 + 2 * ma * np.arange(nv, dtype=np.int64)
    targets = np.full((nv, ma), -1, dtype=np.int64)
    need_draw = np.ones((nv, ma), dtype=bool)  # slots needing fresh rng
    pending = np.zeros((nv, ma), dtype=bool)  # drawn, awaiting referee
    accepted = np.zeros(nv, dtype=bool)  # rows final (referenceable)
    idx = np.empty((nv, ma), dtype=np.int64)
    while not accepted.all():
        rows, cols = np.nonzero(need_draw)
        if rows.size:
            # One batched draw for every slot that needs one, row-major
            # — a kept draw is never redrawn while its referee is still
            # unaccepted (that would bias against recent edges); it
            # simply resolves in a later round.
            idx[rows, cols] = rng.integers(0, fills[rows])
            pending[rows, cols] = True
            need_draw[rows, cols] = False
        rows, cols = np.nonzero(pending)
        ii = idx[rows, cols]
        val = np.full(rows.size, -1, dtype=np.int64)
        init = ii < f0
        val[init] = ii[init] // ma
        j = ii - f0
        odd = ~init & (j % 2 == 1)
        val[odd] = m0 + (j[odd] // 2) // ma
        ev = np.flatnonzero(~init & ~odd)
        ref = j[ev] // 2
        rrow, rcol = ref // ma, ref % ma
        ok = accepted[rrow]  # unaccepted referees resolve next round
        val[ev[ok]] = targets[rrow[ok], rcol[ok]]
        res = val >= 0
        targets[rows[res], cols[res]] = val[res]
        pending[rows[res], cols[res]] = False
        # Rows with every slot resolved: accept if the targets are
        # distinct (sorted, as the scalar version emitted them), else
        # keep each value's first slot and redraw the later duplicates.
        full = np.flatnonzero(
            ~accepted & ~(pending | need_draw).any(axis=1)
        )
        if full.size == 0:
            continue
        t = np.sort(targets[full], axis=1)
        dup_row = (t[:, 1:] == t[:, :-1]).any(axis=1)
        good = full[~dup_row]
        targets[good] = t[~dup_row]
        accepted[good] = True
        bad = full[dup_row]
        if bad.size:
            tb = targets[bad]
            rr = np.repeat(np.arange(bad.size), ma)
            cc = np.tile(np.arange(ma), bad.size)
            order = np.lexsort((cc, tb.ravel(), rr))
            tv, rv, cold = tb.ravel()[order], rr[order], cc[order]
            dup = np.zeros(tv.size, dtype=bool)
            dup[1:] = (tv[1:] == tv[:-1]) & (rv[1:] == rv[:-1])
            need_draw[bad[rv[dup]], cold[dup]] = True
    src = np.repeat(m0 + np.arange(nv, dtype=np.int64), ma)
    attach = np.stack([targets.ravel(), src], axis=1)
    return Graph.from_edge_chunks(n, [core, attach])


def watts_strogatz(
    n: int,
    k: int = 4,
    beta: float = 0.1,
    seed: int | np.random.Generator | None = 0,
) -> Graph:
    """Watts–Strogatz small-world graph.

    A ring lattice (each vertex joined to its ``k//2`` nearest
    neighbours on each side, built with vectorized offset arithmetic)
    whose far endpoints are rewired independently with probability
    ``beta``.  Interpolates between the high-girth structured regime
    (β=0) and G(n, k/n)-like randomness (β=1).

    Streamed implementation (ISSUE 7): the rewire mask is one draw (as
    before), then all rewired edges choose their new far endpoints
    *simultaneously*, with batched rejection rounds against self-loops,
    existing edges, and intra-batch collisions (earliest lattice edge
    keeps a contested pair) — instead of the old one-edge-at-a-time
    adjacency-set walk.  Same model, new seeded stream; edge count is
    still exactly ``n * k / 2``.
    """
    if k % 2 != 0:
        raise ValueError(f"k must be even, got {k}")
    if not 2 <= k < n:
        raise ValueError(f"need 2 <= k < n, got k={k}, n={n}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0,1], got {beta}")
    rng = _rng(seed)
    base = np.arange(n, dtype=np.int64)
    us = np.tile(base, k // 2)
    offs = np.repeat(np.arange(1, k // 2 + 1, dtype=np.int64), n)
    vs = (us + offs) % n
    rewire = rng.random(us.size) < beta
    pending = np.flatnonzero(rewire)
    # Rewired edges leave the key set before their targets are drawn.
    existing = np.sort(
        np.minimum(us[~rewire], vs[~rewire]) * n + np.maximum(us[~rewire], vs[~rewire])
    )
    stuck_rounds = 0
    while pending.size:
        w = rng.integers(0, n, size=pending.size)
        cu = us[pending]
        ck = np.minimum(cu, w) * n + np.maximum(cu, w)
        bad = w == cu
        if existing.size:
            pos = np.minimum(np.searchsorted(existing, ck), existing.size - 1)
            bad |= existing[pos] == ck
        # Intra-batch collisions: the earliest lattice edge keeps the
        # pair, later ones redraw.
        order = np.lexsort((pending, ck))
        sk = ck[order]
        later = np.zeros(sk.size, dtype=bool)
        later[1:] = sk[1:] == sk[:-1]
        bad[order[later]] = True
        good = ~bad
        vs[pending[good]] = w[good]
        existing = np.sort(np.concatenate([existing, ck[good]]))
        pending = pending[bad]
        stuck_rounds = stuck_rounds + 1 if not good.any() else 0
        if stuck_rounds > 200:
            # Only reachable when some u is adjacent to every other
            # vertex (no valid target) — the regime the scalar version
            # guarded with its degree check.  Give the survivors their
            # original lattice partners back.
            orig = np.minimum(us[pending], vs[pending]) * n + np.maximum(
                us[pending], vs[pending]
            )
            pos = np.minimum(np.searchsorted(existing, orig), existing.size - 1)
            if existing.size and (existing[pos] == orig).any():
                raise RuntimeError(
                    "watts_strogatz could not complete rewiring: a "
                    "saturated vertex's original edge was already taken"
                )
            break
    return Graph.from_edge_chunks(n, [np.stack([us, vs], axis=1)])


def powerlaw_configuration(
    n: int,
    gamma: float = 2.5,
    min_deg: int = 1,
    seed: int | np.random.Generator | None = 0,
) -> Graph:
    """Erased configuration model with power-law degrees P(d) ∝ d^−γ.

    Degrees are drawn by vectorized inverse-transform sampling from a
    discrete Pareto tail (clipped to n−1), the stub multiset is paired
    by one NumPy shuffle, and self-loops / parallel edges are *erased*
    (the standard simple-graph variant, so the realized degrees are a
    lower bound on the drawn ones).  Heavy-tailed degree sequences are
    the classic stress case for Δ-dependent distributed algorithms.
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    if gamma <= 1.0:
        raise ValueError(f"gamma must exceed 1, got {gamma}")
    if min_deg < 1:
        raise ValueError(f"min_deg must be >= 1, got {min_deg}")
    rng = _rng(seed)
    u = rng.random(n)
    degrees = np.minimum(
        np.floor(min_deg * (1.0 - u) ** (-1.0 / (gamma - 1.0))).astype(np.int64),
        n - 1,
    )
    if int(degrees.sum()) % 2 != 0:
        degrees[0] += 1 if degrees[0] < n - 1 else -1
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    # Erase self-loops and parallel edges on flat keys (bit-identical
    # to the old row-wise ``np.unique(..., axis=0)``, which sorts the
    # same lexicographic order but much slower), then stream the
    # surviving edges out in chunks.
    keys = sorted_unique(lo[lo != hi] * n + hi[lo != hi])

    def _chunks():
        for s in range(0, keys.size, _CHUNK):
            kk = keys[s: s + _CHUNK]
            yield np.stack([kk // n, kk % n], axis=1)

    return Graph.from_edge_chunks(n, _chunks())


def kronecker(
    power: int,
    initiator: list[list[float]] | np.ndarray | None = None,
    seed: int | np.random.Generator | None = 0,
) -> Graph:
    """Stochastic Kronecker graph on ``k^power`` vertices.

    The edge-probability matrix is the ``power``-fold Kronecker power
    of the ``k × k`` ``initiator`` (default the standard core-periphery
    seed [[0.9, 0.6], [0.6, 0.3]]); the upper triangle is sampled with
    one vectorized Bernoulli draw.  Produces self-similar,
    core-periphery community structure at every scale.
    """
    if power < 1:
        raise ValueError(f"power must be >= 1, got {power}")
    if initiator is None:
        initiator = [[0.9, 0.6], [0.6, 0.3]]
    p0 = np.asarray(initiator, dtype=float)
    if p0.ndim != 2 or p0.shape[0] != p0.shape[1] or p0.shape[0] < 2:
        raise ValueError("initiator must be a square matrix of size >= 2")
    if np.any(p0 < 0.0) or np.any(p0 > 1.0):
        raise ValueError("initiator entries must be probabilities in [0,1]")
    if p0.shape[0] ** power > 1 << 13:
        raise ValueError(
            f"{p0.shape[0]}^{power} vertices is too large for the dense sampler"
        )
    prob = p0
    for _ in range(power - 1):
        prob = np.kron(prob, p0)
    n = prob.shape[0]
    rng = _rng(seed)
    mask = np.triu(rng.random((n, n)) < prob, k=1)
    us, vs = np.nonzero(mask)
    return Graph(n, np.column_stack([us, vs]))


def planted_matching(
    n: int,
    noise: float = 0.1,
    seed: int | np.random.Generator | None = 0,
) -> tuple[Graph, list[tuple[int, int]]]:
    """Adversarial instance: a hidden perfect matching inside noise.

    A uniformly random perfect matching on the (even) ``n`` vertices is
    planted, then every other pair becomes a noise edge independently
    with probability ``noise`` (one vectorized Bernoulli mask).  The
    planted pairs are edges 0..n/2−1, so greedy/maximal baselines that
    commit to noise edges strand planted partners — exactly the
    (1−1/k) vs ½ separation the paper is about.

    Returns ``(graph, planted_pairs)`` with the pairs as ``(u, v)``,
    ``u < v``; they always form a perfect matching of the graph.
    """
    if n < 2 or n % 2 != 0:
        raise ValueError(f"planted matching needs even n >= 2, got {n}")
    if not 0.0 <= noise <= 1.0:
        raise ValueError(f"noise must be in [0,1], got {noise}")
    rng = _rng(seed)
    perm = rng.permutation(n).reshape(-1, 2)
    pairs = sorted(
        (int(min(a, b)), int(max(a, b))) for a, b in perm
    )
    earr = np.asarray(pairs, dtype=np.int64)
    if noise > 0.0:
        mask = np.triu(rng.random((n, n)) < noise, k=1)
        mask[earr[:, 0], earr[:, 1]] = False
        us, vs = np.nonzero(mask)
        earr = np.concatenate([earr, np.column_stack([us, vs])])
    return Graph(n, earr), pairs


def lollipop_graph(clique: int, tail: int) -> Graph:
    """Lollipop: K_clique with a path of ``tail`` vertices attached.

    The classic high-Δ / low-conductance stress instance — a dense head
    (Δ = clique−1 inside) dragging a long sparse tail, so round bounds
    parameterized by Δ and by diameter pull in opposite directions.
    Vertices 0..clique−1 form the clique; the tail hangs off vertex
    ``clique−1``.
    """
    if clique < 3:
        raise ValueError(f"clique needs >= 3 vertices, got {clique}")
    if tail < 1:
        raise ValueError(f"tail needs >= 1 vertex, got {tail}")
    edges = [(u, v) for u in range(clique) for v in range(u + 1, clique)]
    prev = clique - 1
    for v in range(clique, clique + tail):
        edges.append((prev, v))
        prev = v
    return Graph(clique + tail, edges)


def switch_demand_graph(
    ports: int,
    load: float,
    pattern: str = "uniform",
    seed: int | np.random.Generator | None = 0,
) -> tuple[Graph, list[int], list[int]]:
    """Bipartite demand graph of an input-queued switch.

    One X vertex per input port, one Y vertex per output port; an edge
    means the corresponding virtual output queue is non-empty this
    cell slot.  ``load`` is the probability a given VOQ has traffic.

    Patterns
    --------
    ``uniform``
        each (input, output) pair independently backlogged with
        probability ``load``;
    ``diagonal``
        port i mostly talks to outputs i and i+1 (mod ports);
    ``hotspot``
        all inputs additionally contend for output 0.
    """
    rng = _rng(seed)
    edges = []
    for i in range(ports):
        for j in range(ports):
            if pattern == "uniform":
                p = load
            elif pattern == "diagonal":
                p = load if j in (i, (i + 1) % ports) else load / (2 * ports)
            elif pattern == "hotspot":
                p = min(1.0, load * 2) if j == 0 else load / 2
            else:
                raise ValueError(f"unknown pattern {pattern!r}")
            if rng.random() < p:
                edges.append((i, ports + j))
    g = Graph(2 * ports, edges)
    return g, list(range(ports)), list(range(ports, 2 * ports))
