"""Tests for the exact algorithms: Hopcroft–Karp, blossom, exact MWM.

These are the oracles every approximation claim is measured against,
so they get the heaviest cross-validation: HK vs blossom vs networkx on
random instances, bitmask DP vs weighted blossom, plus structured cases
with known answers.
"""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.graphs import (
    Graph,
    bipartite_random,
    complete_graph,
    crown_graph,
    cycle_graph,
    gnp_random,
    path_graph,
    star_graph,
)
from repro.graphs.weights import assign_uniform_weights
from repro.matching import (
    Matching,
    exact_mwm_small,
    hopcroft_karp,
    hopcroft_karp_truncated,
    max_weight_matching,
    maximum_matching_blossom,
    maximum_matching_size,
    maximum_matching_weight,
    shortest_augmenting_path_length,
)

from tests.conftest import bipartite_graphs, graphs


def nx_matching_size(g: Graph) -> int:
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(g.edges())
    return len(nx.max_weight_matching(h, maxcardinality=True))


class TestHopcroftKarp:
    def test_perfect_on_even_path(self):
        assert len(hopcroft_karp(path_graph(6))) == 3

    def test_star_is_one(self):
        assert len(hopcroft_karp(star_graph(8))) == 1

    def test_crown_has_perfect_matching(self):
        g, xs, _ = crown_graph(5)
        assert len(hopcroft_karp(g, xs)) == 5

    def test_empty_graph(self):
        assert len(hopcroft_karp(Graph(4))) == 0

    def test_non_bipartite_rejected(self, triangle):
        with pytest.raises(ValueError, match="not bipartite"):
            hopcroft_karp(triangle)

    def test_explicit_side(self):
        g, xs, _ = bipartite_random(10, 12, 0.3, seed=1)
        assert len(hopcroft_karp(g, xs)) == len(hopcroft_karp(g))

    @given(bipartite_graphs())
    @settings(max_examples=80)
    def test_matches_networkx(self, gxy):
        g, xs, _ = gxy
        assert len(hopcroft_karp(g, xs)) == nx_matching_size(g)


class TestHopcroftKarpTruncated:
    def test_k1_is_maximal(self):
        g, xs, _ = bipartite_random(15, 15, 0.2, seed=3)
        m = hopcroft_karp_truncated(g, 1, xs)
        assert m.is_maximal()

    def test_guarantee_every_k(self):
        for k in (1, 2, 3, 4):
            for seed in range(5):
                g, xs, _ = bipartite_random(12, 12, 0.25, seed=seed)
                m = hopcroft_karp_truncated(g, k, xs)
                opt = len(hopcroft_karp(g, xs))
                assert len(m) >= (1 - 1 / k) * opt - 1e-9

    def test_post_condition_no_short_paths(self):
        for seed in range(5):
            g, xs, _ = bipartite_random(12, 12, 0.25, seed=seed)
            k = 2
            m = hopcroft_karp_truncated(g, k, xs)
            length = shortest_augmenting_path_length(g, m)
            assert length is None or length > 2 * k - 1

    def test_invalid_k(self):
        g = path_graph(2)
        with pytest.raises(ValueError):
            hopcroft_karp_truncated(g, 0)

    def test_large_k_equals_exact(self):
        g, xs, _ = bipartite_random(10, 10, 0.3, seed=4)
        assert len(hopcroft_karp_truncated(g, 50, xs)) == len(hopcroft_karp(g, xs))


class TestBlossom:
    def test_odd_cycle(self):
        assert len(maximum_matching_blossom(cycle_graph(5))) == 2

    def test_even_cycle_perfect(self):
        assert len(maximum_matching_blossom(cycle_graph(6))) == 3

    def test_complete_graph(self):
        assert len(maximum_matching_blossom(complete_graph(7))) == 3

    def test_petersen_like_blossoms(self):
        # Two triangles joined by a bridge: needs blossom handling.
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)])
        assert len(maximum_matching_blossom(g)) == 3

    def test_empty(self):
        assert len(maximum_matching_blossom(Graph(5))) == 0

    @given(graphs(max_n=11))
    @settings(max_examples=80)
    def test_matches_networkx(self, g):
        assert len(maximum_matching_blossom(g)) == nx_matching_size(g)

    def test_agrees_with_hk_on_bipartite(self):
        for seed in range(6):
            g, xs, _ = bipartite_random(10, 10, 0.3, seed=seed)
            assert len(maximum_matching_blossom(g)) == len(hopcroft_karp(g, xs))

    def test_medium_random(self):
        g = gnp_random(60, 0.08, seed=5)
        assert len(maximum_matching_blossom(g)) == nx_matching_size(g)


class TestExactMwmSmall:
    def test_single_edge(self):
        g = Graph(2, [(0, 1)], [5.0])
        assert exact_mwm_small(g).weight() == 5.0

    def test_path_picks_heavier_disjoint(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [3.0, 5.0, 3.0])
        # (0,1)+(2,3)=6 beats the middle edge 5.
        m = exact_mwm_small(g)
        assert m.weight() == 6.0

    def test_heavy_middle_wins(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [1.0, 5.0, 1.0])
        assert exact_mwm_small(g).weight() == 5.0

    def test_too_large_rejected(self):
        g = Graph(23)
        with pytest.raises(ValueError):
            exact_mwm_small(g)

    def test_unweighted_equals_mcm(self):
        g = gnp_random(12, 0.3, seed=6)
        assert len(exact_mwm_small(g)) == maximum_matching_size(g)

    @given(graphs(max_n=9, weighted=True))
    @settings(max_examples=50, deadline=None)
    def test_matches_networkx_weighted(self, g):
        ours = exact_mwm_small(g).weight()
        theirs = max_weight_matching(g).weight()
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)


class TestOracles:
    def test_maximum_matching_size_dispatch(self):
        g, xs, _ = bipartite_random(8, 8, 0.4, seed=7)
        assert maximum_matching_size(g) == len(hopcroft_karp(g, xs))
        t = cycle_graph(5)
        assert maximum_matching_size(t) == 2

    def test_maximum_matching_weight_unweighted(self):
        g = path_graph(4)
        assert maximum_matching_weight(g) == 2.0

    def test_maximum_matching_weight_small_uses_dp(self):
        g = assign_uniform_weights(gnp_random(10, 0.4, seed=8), seed=9)
        assert maximum_matching_weight(g) == pytest.approx(
            exact_mwm_small(g).weight()
        )

    def test_maximum_matching_weight_large_uses_networkx(self):
        g = assign_uniform_weights(gnp_random(40, 0.1, seed=10), seed=11)
        assert maximum_matching_weight(g) == pytest.approx(
            max_weight_matching(g).weight()
        )
