"""Sequential greedy baselines.

The paper's introduction: "the greedy algorithm (that repeatedly adds
the heaviest remaining edge to the matching and removes all its
incident edges from the graph) finds a ½-MCM or ½-MWM."  These are the
centralized yardsticks in the comparison table E5.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.matching.matching import Matching


def greedy_maximal_matching(
    g: Graph, rng: np.random.Generator | None = None
) -> Matching:
    """Maximal matching by scanning edges (random order with ``rng``).

    Any maximal matching is a ½-MCM (every M* edge shares an endpoint
    with some M edge, and a vertex of M covers at most one M* edge...
    i.e. each M edge blocks at most two M* edges).
    """
    order = list(g.edge_ids())
    if rng is not None:
        rng.shuffle(order)
    m = Matching(g)
    for eid in order:
        u, v = g.edge_endpoints(eid)
        if m.is_free(u) and m.is_free(v):
            m.add(u, v)
    return m


def greedy_mwm(g: Graph) -> Matching:
    """Heaviest-edge-first greedy: a ½-MWM (Preis/Drake–Hougardy folklore).

    Ties are broken by edge id so the result is deterministic.  The
    weight sort runs on the graph's bulk weight array (stable lexsort:
    descending weight, then ascending edge id).
    """
    order = np.lexsort((np.arange(g.m), -g.weights_array()))
    lo, hi = g.endpoints_array()
    us = lo[order].tolist()
    vs = hi[order].tolist()
    m = Matching(g)
    for u, v in zip(us, vs):
        if m.is_free(u) and m.is_free(v):
            m.add(u, v)
    return m
