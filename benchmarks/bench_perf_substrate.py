"""PERF — raw substrate performance (true pytest-benchmark timings).

Unlike the experiment benches (single-shot claim tables), these are
conventional repeated-timing microbenchmarks of the hot paths a user
pays for: the simulator's round loop, the exact oracles, and one
protocol end to end.  Useful for tracking performance regressions of
the substrate itself.
"""

from repro.baselines.israeli_itai import israeli_itai_matching
from repro.core.bipartite_mcm import bipartite_mcm
from repro.graphs import bipartite_random, gnp_random
from repro.graphs.weights import assign_uniform_weights
from repro.matching import (
    greedy_mwm,
    hopcroft_karp,
    hungarian_mwm,
    maximum_matching_blossom,
)


def test_perf_simulator_round_loop(benchmark):
    """Israeli–Itai on 300 vertices: round-loop + delivery throughput."""
    g = gnp_random(300, 0.02, seed=1)
    benchmark(lambda: israeli_itai_matching(g, seed=1))


def test_perf_hopcroft_karp(benchmark):
    g, xs, _ = bipartite_random(400, 400, 0.01, seed=2)
    benchmark(lambda: hopcroft_karp(g, xs))


def test_perf_blossom(benchmark):
    g = gnp_random(150, 0.05, seed=3)
    benchmark(lambda: maximum_matching_blossom(g))


def test_perf_hungarian(benchmark):
    g, xs, _ = bipartite_random(60, 60, 0.3, seed=4)
    g = assign_uniform_weights(g, seed=4)
    benchmark(lambda: hungarian_mwm(g, xs))


def test_perf_greedy_mwm(benchmark):
    g = assign_uniform_weights(gnp_random(500, 0.02, seed=5), seed=5)
    benchmark(lambda: greedy_mwm(g))


def test_perf_bipartite_mcm_end_to_end(benchmark):
    g, xs, _ = bipartite_random(80, 80, 0.06, seed=6)
    benchmark(lambda: bipartite_mcm(g, k=2, xs=xs, seed=6))
