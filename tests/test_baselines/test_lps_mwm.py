"""Tests for the weight-class δ-MWM black box ([18]-style)."""

import pytest

from repro.baselines import lps_mwm
from repro.baselines.lps_mwm import _weight_class
from repro.graphs import Graph, gnp_random
from repro.graphs.weights import (
    assign_exponential_weights,
    assign_integer_weights,
    assign_uniform_weights,
)
from repro.matching import maximum_matching_weight


class TestWeightClass:
    def test_top_class(self):
        assert _weight_class(100.0, 100.0) == 0

    def test_boundaries(self):
        # class j covers (wmax/2^{j+1}, wmax/2^j]: half-open below.
        assert _weight_class(50.0, 100.0) == 1   # w == wmax/2 -> class 1
        assert _weight_class(50.1, 100.0) == 0
        assert _weight_class(25.0, 100.0) == 2
        assert _weight_class(25.1, 100.0) == 1

    def test_monotone(self):
        prev = -1
        for w in (100.0, 60.0, 30.0, 10.0, 1.0, 0.1):
            j = _weight_class(w, 100.0)
            assert j >= prev
            prev = j

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            _weight_class(0.0, 10.0)


class TestApproximation:
    @pytest.mark.parametrize("seed", range(4))
    def test_quarter_guarantee_uniform(self, seed):
        g = assign_uniform_weights(gnp_random(50, 0.12, seed=seed), seed=seed)
        m, _ = lps_mwm(g, seed=seed)
        opt = maximum_matching_weight(g)
        # Theory: ≥ 1/4 up to per-class maximality failures; assert the
        # clean bound (holds comfortably on every tested seed).
        assert m.weight() >= 0.25 * opt - 1e-9

    def test_exponential_weights(self):
        g = assign_exponential_weights(gnp_random(40, 0.15, seed=5), seed=5)
        m, _ = lps_mwm(g, seed=5)
        assert m.weight() >= 0.25 * maximum_matching_weight(g) - 1e-9

    def test_integer_weights(self):
        g = assign_integer_weights(gnp_random(40, 0.15, seed=6), seed=6)
        m, _ = lps_mwm(g, seed=6)
        assert m.weight() >= 0.25 * maximum_matching_weight(g) - 1e-9

    def test_uniform_weights_single_class_behaves(self):
        # All weights equal: one class; reduces to maximal matching.
        g = gnp_random(30, 0.2, seed=7).with_weights([5.0] * gnp_random(30, 0.2, seed=7).m)
        m, _ = lps_mwm(g, seed=7)
        assert m.is_maximal()


class TestMechanics:
    def test_unweighted_rejected(self):
        with pytest.raises(ValueError):
            lps_mwm(gnp_random(10, 0.3, seed=1))

    def test_empty_graph(self):
        g = Graph(5, [], [])
        m, res = lps_mwm(g)
        assert len(m) == 0 and res.rounds == 0

    def test_fixed_lockstep_round_count(self):
        """Every node runs classes × phases × 3 rounds exactly."""
        g = assign_uniform_weights(gnp_random(20, 0.2, seed=2), seed=2)
        _, res = lps_mwm(g, seed=2, num_classes=4, phases_per_class=5)
        assert res.rounds == 4 * 5 * 3

    def test_determinism(self):
        g = assign_uniform_weights(gnp_random(25, 0.2, seed=3), seed=3)
        a, _ = lps_mwm(g, seed=9)
        b, _ = lps_mwm(g, seed=9)
        assert a == b

    def test_result_is_valid_matching(self):
        g = assign_uniform_weights(gnp_random(30, 0.15, seed=4), seed=4)
        m, _ = lps_mwm(g, seed=4)  # Matching() construction validates
        assert all(g.has_edge(u, v) for u, v in m.edges())
