"""Shared seeded per-edge ranks — the randomness both sides read.

The random-greedy LCA (Alon–Rubinfeld–Vardi / Nguyen–Onak style)
hinges on one object: a random total order on the edges that a point
query can evaluate *locally* (one edge at a time) and a global run can
evaluate *in bulk* (one vectorized pass), with bit-identical results.
We realize it as a counter-based hash: edge ``eid`` under ``seed``
gets the 64-bit value

    ``rank(eid) = splitmix64_finalizer(seed_state(seed) + (eid+1)·φ)``

(φ = the splitmix64 golden-gamma increment), i.e. the ``eid``-th draw
of a splitmix64 stream keyed by the seed.  Two implementations of the
same arithmetic live here:

* :func:`edge_rank` — scalar, plain Python ints masked to 64 bits
  (what the LCA evaluates per probed edge in lazy-rank mode);
* :func:`edge_ranks` — vectorized, ``uint64`` NumPy wraparound
  arithmetic (what the global oracle and the precomputed-rank LCA
  read).

``test_lca/test_properties.py`` pins them equal element for element.

The *order* the algorithms agree on is lexicographic ``(rank, eid)``:
64-bit collisions are astronomically unlikely but the tie-break makes
the order total by construction, so consistency never rests on a
probabilistic no-collision assumption.
"""

from __future__ import annotations

import numpy as np

_MASK64 = (1 << 64) - 1
#: splitmix64 golden-gamma increment (2^64 / φ, odd).
_PHI = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
#: xor'd into the raw seed before mixing so seed=0 is not a weak key.
_SEED_SALT = 0xA0761D6478BD642F


def _mix64(z: int) -> int:
    """The splitmix64 finalizer on a Python int (mod 2^64)."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def seed_state(seed: int) -> int:
    """The 64-bit stream key derived from a user seed (any Python int)."""
    return _mix64((int(seed) ^ _SEED_SALT) & _MASK64)


def edge_rank(eid: int, seed: int) -> int:
    """Rank of one edge — scalar twin of :func:`edge_ranks`."""
    return _mix64((seed_state(seed) + (eid + 1) * _PHI) & _MASK64)


def edge_ranks(m: int, seed: int) -> np.ndarray:
    """Ranks of edges ``0..m-1`` as a ``uint64[m]`` array.

    uint64 array arithmetic wraps mod 2^64 exactly like the masked
    scalar path, so ``edge_ranks(m, s)[e] == edge_rank(e, s)`` for
    every edge — the identity the whole subsystem rests on.
    """
    if m < 0:
        raise ValueError(f"edge count must be nonnegative, got {m}")
    ids = np.arange(1, m + 1, dtype=np.uint64)
    z = np.uint64(seed_state(seed)) + ids * np.uint64(_PHI)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
    return z ^ (z >> np.uint64(31))
