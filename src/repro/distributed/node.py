"""The node-side API visible to distributed algorithms.

A *node program* is a generator function ``program(node, **params)``;
executing ``yield`` ends the node's current round.  After the yield
returns, ``node.inbox`` holds the ``(src, payload)`` pairs sent to the
node in the previous round.  A program terminates by returning;
``node.output`` (set via :meth:`Node.finish` or by the return value)
is collected by the network.

Nodes may only message their graph neighbors — the simulator rejects
anything else, keeping algorithms honest to the model of Section 2.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.graphs.graph import Graph


class Node:
    """Per-node state and communication endpoints.

    Attributes
    ----------
    id:
        The node's identifier (= vertex id).  The paper assumes unique
        IDs (leader election in Algorithm 2 breaks ties by ID).
    neighbors:
        Neighbor ids in port order.
    rng:
        Node-private deterministic RNG (spawned from the network seed),
        so runs are reproducible regardless of scheduling order.
    inbox:
        ``(src, payload)`` pairs received at the start of this round.
    output:
        The node's result, reported to :class:`RunResult.outputs`.
    """

    __slots__ = (
        "id",
        "neighbors",
        "rng",
        "inbox",
        "output",
        "_outbox",
        "_graph",
        "round",
    )

    def __init__(self, vid: int, graph: Graph, rng: np.random.Generator) -> None:
        self.id = vid
        self.neighbors: list[int] = graph.neighbors(vid)
        self.rng = rng
        self.inbox: list[tuple[int, Any]] = []
        self.output: Any = None
        self._outbox: list[tuple[int, Any]] = []
        self._graph = graph
        self.round = 0

    @property
    def degree(self) -> int:
        """Number of incident edges."""
        return len(self.neighbors)

    def send(self, dst: int, payload: Any) -> None:
        """Queue a message to neighbor ``dst`` for delivery next round."""
        self._outbox.append((dst, payload))

    def broadcast(self, payload: Any) -> None:
        """Queue the same message to every neighbor."""
        for u in self.neighbors:
            self._outbox.append((u, payload))

    def finish(self, output: Any) -> None:
        """Record the node's output (typically followed by ``return``)."""
        self.output = output

    def edge_weight(self, u: int) -> float:
        """Weight of the incident edge to neighbor ``u``.

        Local knowledge: a node knows the weights of its incident edges
        (the standard assumption for distributed weighted matching).
        """
        return self._graph.weight(self.id, u)

    def port_of(self, u: int) -> int:
        """Port number (index into ``neighbors``) of neighbor ``u``."""
        return self.neighbors.index(u)
