"""Service-layer tests: the fuzz net, cache mechanics, batch API.

The headline property: *consistency survives cache loss*.  A tiny
``max_entries`` forces evictions constantly; interleaved point, edge,
and batch queries must keep returning exactly the oracle's answers no
matter what the cache dropped in between.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, gnp_random
from repro.lca import BatchResult, MatchingService, random_greedy_matching


class TestServiceFuzz:
    @pytest.mark.parametrize("lca_seed", [0, 1, 7])
    @pytest.mark.parametrize("max_entries", [1, 2, 5])
    def test_interleaved_queries_survive_evictions(self, lca_seed, max_entries):
        g = gnp_random(40, 0.1, seed=11)
        oracle = random_greedy_matching(g, lca_seed)
        truth = oracle.mate_array()
        edges = g.edges()
        svc = MatchingService(g, lca_seed, max_entries=max_entries)
        rng = np.random.default_rng(1234 + lca_seed)
        for _ in range(400):
            op = rng.integers(4)
            if op == 0:
                v = int(rng.integers(g.n))
                assert svc.mate_of(v) == truth[v]
            elif op == 1:
                u, v = edges[int(rng.integers(len(edges)))]
                assert svc.edge_in_matching(u, v) == oracle.is_matched_edge(u, v)
            elif op == 2:
                u, v = (int(x) for x in rng.integers(g.n, size=2))
                if not g.has_edge(u, v):
                    assert svc.edge_in_matching(u, v) is False
            else:
                qs = []
                want = []
                for _ in range(int(rng.integers(1, 6))):
                    if rng.integers(2):
                        v = int(rng.integers(g.n))
                        qs.append(("mate", v))
                        want.append(int(truth[v]))
                    else:
                        u, v = edges[int(rng.integers(len(edges)))]
                        qs.append(("edge", u, v))
                        want.append(oracle.is_matched_edge(u, v))
                assert svc.batch(qs).answers == want
            assert len(svc._lru) <= max_entries
        # The cache actually cycled: far more queries than capacity.
        assert svc.stats.queries > 100 * max_entries or svc.stats.queries > 400

    def test_clear_cache_mid_stream_changes_nothing(self):
        g = gnp_random(30, 0.12, seed=5)
        truth = random_greedy_matching(g, 3).mate_array()
        svc = MatchingService(g, 3, max_entries=8)
        first = [svc.mate_of(v) for v in range(g.n)]
        svc.clear_cache()
        assert svc.cache_info()["entries"] == 0
        assert svc.cache_info()["edge_states"] == 0
        second = [svc.mate_of(v) for v in range(g.n)]
        assert first == second == truth.tolist()


class TestCacheMechanics:
    def test_eviction_releases_edge_states(self):
        g = gnp_random(60, 0.08, seed=2)
        svc = MatchingService(g, 0, max_entries=3)
        for v in range(g.n):
            svc.mate_of(v)
        info = svc.cache_info()
        assert info["entries"] <= 3
        # Every surviving edge state is owned by a surviving entry.
        owned = set()
        for entry in svc._lru.values():
            owned.update(entry.eids)
        assert set(svc._edge_states) == owned
        assert set(svc._edge_refs) == owned

    def test_max_entries_validated(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            MatchingService(g, 0, max_entries=0)

    def test_cache_disabled_never_stores(self):
        g = gnp_random(30, 0.1, seed=9)
        svc = MatchingService(g, 0, cache=False)
        for v in range(g.n):
            svc.mate_of(v)
        assert svc.cache_info()["entries"] == 0
        assert svc.stats.cache_hits == 0

    def test_cached_endpoint_answers_edge_query(self):
        g = Graph(3, [(0, 1), (1, 2)])
        svc = MatchingService(g, 0)
        mate0 = svc.mate_of(0)
        before = svc.stats.edges_probed
        assert svc.edge_in_matching(0, 1) == (mate0 == 1)
        assert svc.stats.edges_probed == before  # served from the LRU


class TestBatchApi:
    def test_empty_batch_returns_empty_result(self):
        """Regression (ExperimentResult-style guard): ``batch([])``
        must not raise from a zero-length NumPy reduction."""
        g = gnp_random(20, 0.15, seed=1)
        svc = MatchingService(g, 0)
        res = svc.batch([])
        assert isinstance(res, BatchResult)
        assert res.answers == []
        assert res.queries == 0
        assert res.edges_probed == 0
        assert res.mean_probes == 0.0
        assert res.max_depth == 0
        assert res.cache_hits == 0
        assert res.cache_hit_rate == 0.0

    def test_batch_stats_aggregate_per_query_counters(self):
        g = gnp_random(25, 0.15, seed=4)
        svc = MatchingService(g, 2, cache=False)
        res = svc.batch([("mate", v) for v in range(10)])
        assert res.queries == 10
        assert res.mean_probes == res.edges_probed / 10
        assert res.max_depth >= 0
        assert len(res.answers) == 10

    def test_batch_rejects_malformed_query(self):
        g = Graph(2, [(0, 1)])
        svc = MatchingService(g, 0)
        with pytest.raises(ValueError):
            svc.batch([("mates", 0)])

    def test_batch_mixed_matches_point_queries(self):
        g = gnp_random(30, 0.12, seed=8)
        svc = MatchingService(g, 5, max_entries=2)
        ref = MatchingService(g, 5, cache=False)
        queries = [("mate", v) for v in range(g.n)] + [
            ("edge", u, v) for u, v in g.edges()[:20]
        ]
        got = svc.batch(queries).answers
        want = [ref.mate_of(v) for v in range(g.n)] + [
            ref.edge_in_matching(u, v) for u, v in g.edges()[:20]
        ]
        assert got == want


class TestStatsExposure:
    def test_aggregate_stats_accumulate(self):
        from repro.distributed import LcaProbeStats

        g = gnp_random(30, 0.1, seed=3)
        svc = MatchingService(g, 1)
        for v in range(g.n):
            svc.mate_of(v)
        assert isinstance(svc.stats, LcaProbeStats)
        assert svc.stats.queries == g.n
        assert svc.stats.edges_probed > 0
        assert 0.0 <= svc.stats.cache_hit_rate <= 1.0

    def test_merge_and_mean(self):
        from repro.distributed import LcaProbeStats

        a = LcaProbeStats(queries=2, edges_probed=10, adjacency_scanned=30,
                          max_depth=3, cache_hits=1)
        b = LcaProbeStats(queries=1, edges_probed=5, adjacency_scanned=9,
                          max_depth=7, cache_hits=0)
        c = a.merge(b)
        assert c.queries == 3 and c.edges_probed == 15
        assert c.adjacency_scanned == 39
        assert c.max_depth == 7 and c.cache_hits == 1
        assert c.mean_probes == 5.0
        assert LcaProbeStats().mean_probes == 0.0
        assert LcaProbeStats().cache_hit_rate == 0.0
