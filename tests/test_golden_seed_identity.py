"""Seed-identity golden tests for the CSR refactor (ISSUE 2).

``tests/goldens/seed_identity.json`` was captured by running
``python -m tests.golden_harness`` at the *pre-refactor* commit.  These
tests recompute the same snapshot on the current code and require
byte-identical JSON — every core algorithm and baseline must produce
exactly the same matchings, MIS sets, colorings, rounds, message
counts, and bit totals as the old list-of-tuples graph and O(n)-scan
round engine.  A legitimate behavior change requires deliberately
recapturing the goldens and saying so in the commit.
"""

from __future__ import annotations

import json

import pytest

from tests.golden_harness import GOLDEN_PATH, compute_goldens, to_canonical_json


@pytest.fixture(scope="module")
def snapshots():
    assert GOLDEN_PATH.exists(), (
        "golden file missing; capture it with "
        "`PYTHONPATH=src python -m tests.golden_harness`"
    )
    current = compute_goldens()
    recorded = json.loads(GOLDEN_PATH.read_text())
    return current, recorded


def test_golden_catalog_unchanged(snapshots):
    current, recorded = snapshots
    assert sorted(current) == sorted(recorded)


@pytest.mark.parametrize(
    "case",
    sorted(json.loads(GOLDEN_PATH.read_text())) if GOLDEN_PATH.exists() else [],
)
def test_case_matches_golden(snapshots, case):
    current, recorded = snapshots
    # Round-trip through JSON so tuples/lists compare on equal footing.
    assert json.loads(json.dumps(current[case])) == recorded[case], (
        f"{case} diverged from the pre-refactor golden"
    )


def test_full_snapshot_byte_identical(snapshots):
    current, _ = snapshots
    assert to_canonical_json(current) + "\n" == GOLDEN_PATH.read_text()
