"""E12 — the conclusion's open problem, on its solved special case.

Paper (Section 5): "can maximal matching and independent set be
computed *deterministically* in O(log n) time on general graphs?"  On
rings the answer has long been deterministic O(log* n) via
Cole–Vishkin color reduction; this bench measures our implementation's
round counts over 3 orders of magnitude of n — the flattest curve in
the repository — next to randomized Israeli–Itai on the same rings.
"""

from repro.analysis import format_table, print_banner
from repro.baselines import israeli_itai_matching, ring_maximal_matching
from repro.baselines.cole_vishkin import ring_coloring
from repro.graphs import cycle_graph

from conftest import once

NS = (16, 128, 1024, 4096)


def run_e12():
    rows = []
    for n in NS:
        g = cycle_graph(n)
        colors, cres = ring_coloring(g)
        m, mres = ring_maximal_matching(g)
        ii, ires = israeli_itai_matching(g, seed=n)
        rows.append(
            [
                n,
                cres.rounds,
                mres.rounds,
                len(m),
                ires.rounds,
                len(ii),
            ]
        )
    return rows


def test_deterministic_ring(benchmark, report):
    rows = once(benchmark, run_e12)

    def show():
        print_banner(
            "E12 — deterministic O(log* n) symmetry breaking on rings "
            "(Section 5's open-problem context)",
            "Cole–Vishkin: rounds essentially flat in n; randomized "
            "Israeli–Itai needs Θ(log n) on the same rings",
        )
        print(format_table(
            ["n", "CV color rounds", "CV matching rounds", "|M| (CV)",
             "II rounds", "|M| (II)"], rows
        ))

    report(show)
    # log* flatness: 256x more vertices cost at most a few extra rounds.
    assert rows[-1][1] <= rows[0][1] + 4
    assert rows[-1][2] <= rows[0][2] + 4
    # both produce maximal matchings on a cycle: size in [n/3, n/2]
    for n, _c, _mr, size_cv, _ir, size_ii in rows:
        assert n // 3 <= size_cv <= n // 2
        assert n // 3 <= size_ii <= n // 2
