"""Tests for round-by-round tracing."""

import pytest

from repro.baselines.israeli_itai import israeli_itai_program
from repro.distributed import Network
from repro.distributed.trace import Tracer, RoundRecord, run_traced
from repro.graphs import gnp_random, path_graph


class TestRunTraced:
    def test_per_round_totals_match_cumulative(self):
        g = gnp_random(30, 0.15, seed=1)
        net = Network(g, israeli_itai_program, seed=1)
        res, tracer = run_traced(net)
        assert sum(r.messages for r in tracer.records) == res.total_messages
        assert sum(r.bits for r in tracer.records) == res.total_bits
        assert len(tracer.records) == res.rounds

    def test_equivalent_to_plain_run(self):
        g = gnp_random(30, 0.15, seed=2)
        plain = Network(g, israeli_itai_program, seed=7).run()
        traced, _ = run_traced(Network(g, israeli_itai_program, seed=7))
        assert traced.rounds == plain.rounds
        assert traced.total_messages == plain.total_messages
        assert traced.outputs == plain.outputs

    def test_live_nodes_monotone_nonincreasing_for_ii(self):
        g = gnp_random(25, 0.2, seed=3)
        _, tracer = run_traced(Network(g, israeli_itai_program, seed=3))
        lives = [r.live_nodes for r in tracer.records]
        assert all(a >= b for a, b in zip(lives, lives[1:]))

    def test_error_propagates(self):
        def bad(node):
            yield
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            run_traced(Network(path_graph(2), bad))

    def test_empty_program(self):
        def silent(node):
            return
            yield

        res, tracer = run_traced(Network(path_graph(3), silent))
        assert tracer.records == []
        assert res.rounds == 0


class TestTracerRoundTrip:
    def test_to_from_dicts_round_trips_recorded_trace(self):
        g = gnp_random(20, 0.2, seed=4)
        res, tracer = run_traced(Network(g, israeli_itai_program, seed=4))
        rows = tracer.to_dicts()
        assert all(isinstance(r, dict) for r in rows)
        rebuilt = Tracer.from_dicts(rows)
        assert rebuilt.records == tracer.records
        assert rebuilt.summary() == tracer.summary()
        assert rebuilt.summary()["messages"] == res.total_messages

    def test_dicts_survive_json(self):
        import json

        t = Tracer(records=[RoundRecord(0, 3, 30, 10, 2), RoundRecord(1, 5, 50, 12, 1)])
        rebuilt = Tracer.from_dicts(json.loads(json.dumps(t.to_dicts())))
        assert rebuilt.records == t.records

    def test_empty_round_trip(self):
        assert Tracer.from_dicts(Tracer().to_dicts()).records == []


class TestTracer:
    def test_sparkline_scales(self):
        t = Tracer(
            records=[
                RoundRecord(i, msgs, 0, 0, 5)
                for i, msgs in enumerate([0, 1, 2, 4, 8])
            ]
        )
        line = t.sparkline("messages")
        assert len(line) == 5
        assert line[0] == " " and line[-1] == "█"

    def test_sparkline_downsamples(self):
        t = Tracer(
            records=[RoundRecord(i, i % 7, 0, 0, 1) for i in range(300)]
        )
        assert len(t.sparkline("messages", width=50)) == 50

    def test_sparkline_empty(self):
        assert Tracer().sparkline() == "(no rounds)"

    def test_summary(self):
        t = Tracer(records=[RoundRecord(0, 3, 30, 10, 2), RoundRecord(1, 5, 50, 10, 2)])
        s = t.summary()
        assert s == {"rounds": 2, "messages": 8, "bits": 80, "peak_messages": 5}

    def test_summary_empty(self):
        assert Tracer().summary()["rounds"] == 0
