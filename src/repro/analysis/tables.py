"""ASCII rendering for the claim-vs-measured benchmark output."""

from __future__ import annotations

from typing import Any, Sequence


def print_banner(title: str, claim: str) -> None:
    """Header every benchmark prints: experiment id + the paper's claim."""
    bar = "=" * max(len(title), len(claim), 40)
    print(f"\n{bar}\n{title}\n  paper claim: {claim}\n{bar}")


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], floatfmt: str = ".3f"
) -> str:
    """Fixed-width table (no third-party dependency)."""

    def fmt(x: Any) -> str:
        if isinstance(x, float):
            return format(x, floatfmt)
        return str(x)

    cells = [[fmt(x) for x in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(label: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """One-line series rendering: ``label: x1->y1  x2->y2 ...``."""
    parts = []
    for x, y in zip(xs, ys):
        ystr = format(y, ".3g") if isinstance(y, float) else str(y)
        parts.append(f"{x}->{ystr}")
    return f"{label}: " + "  ".join(parts)
