"""Edmonds' blossom algorithm for maximum cardinality matching, from
scratch (general graphs).

This is the exact |M*| oracle for the general-graph experiments (E1,
E3): the approximation ratio of Theorem 3.11's output is measured
against it.  The implementation is the classical O(V³) base/contract
formulation (BFS forest with blossom contraction through a ``base``
array), seeded with a greedy maximal matching.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.graph import Graph
from repro.matching.matching import Matching


def _lca(match: list[int], base: list[int], p: list[int], a: int, b: int) -> int:
    """Lowest common ancestor of ``a`` and ``b`` in the alternating forest."""
    used: set[int] = set()
    while True:
        a = base[a]
        used.add(a)
        if match[a] == -1:
            break
        a = p[match[a]]
    while True:
        b = base[b]
        if b in used:
            return b
        b = p[match[b]]


def _mark_path(
    match: list[int],
    base: list[int],
    p: list[int],
    blossom: list[bool],
    v: int,
    b: int,
    child: int,
) -> None:
    """Mark blossom vertices on the path from ``v`` up to base ``b``."""
    while base[v] != b:
        blossom[base[v]] = True
        blossom[base[match[v]]] = True
        p[v] = child
        child = match[v]
        v = p[match[v]]


def _find_path(adj: list[list[int]], match: list[int], root: int, n: int) -> bool:
    """Grow a BFS alternating tree from ``root``; augment if possible."""
    used = [False] * n
    p = [-1] * n
    base = list(range(n))
    used[root] = True
    q: deque[int] = deque([root])
    while q:
        v = q.popleft()
        for to in adj[v]:
            if base[v] == base[to] or match[v] == to:
                continue
            if to == root or (match[to] != -1 and p[match[to]] != -1):
                # (v, to) closes an odd cycle: contract the blossom.
                curbase = _lca(match, base, p, v, to)
                blossom = [False] * n
                _mark_path(match, base, p, blossom, v, curbase, to)
                _mark_path(match, base, p, blossom, to, curbase, v)
                for i in range(n):
                    if blossom[base[i]]:
                        base[i] = curbase
                        if not used[i]:
                            used[i] = True
                            q.append(i)
            elif p[to] == -1:
                p[to] = v
                if match[to] == -1:
                    # Augment along root -> ... -> to.
                    while to != -1:
                        pv = p[to]
                        ppv = match[pv]
                        match[to] = pv
                        match[pv] = to
                        to = ppv
                    return True
                used[match[to]] = True
                q.append(match[to])
    return False


def maximum_matching_blossom(g: Graph) -> Matching:
    """Maximum cardinality matching of an arbitrary graph, O(V³)."""
    n = g.n
    adj = [g.neighbors(v) for v in range(n)]
    match = [-1] * n
    # Greedy warm start halves the number of Edmonds searches.
    for v in range(n):
        if match[v] == -1:
            for u in adj[v]:
                if match[u] == -1:
                    match[v] = u
                    match[u] = v
                    break
    for v in range(n):
        if match[v] == -1:
            _find_path(adj, match, v, n)
    m = Matching(g)
    for v in range(n):
        if match[v] > v:
            m.add(v, match[v])
    return m
