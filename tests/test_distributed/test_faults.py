"""Fault-injection seam: determinism, cross-backend identity, oracles.

The fault model's contract (ISSUE 10) has four legs, each pinned here:

* **Determinism** — fault streams are a pure function of
  ``(plan, seed)``: same plan + seed reproduces byte-identical runs,
  and an explicit ``FaultPlan.seed`` pins the schedules independently
  of the algorithm RNG.
* **Cross-backend identity** — generator ``Network``, ``ArrayBackend``,
  and ``BatchedArrayBackend`` produce byte-identical ``RunResult``\\ s
  (outputs, rounds, traffic counters, *and* fault counters) under the
  same plan, including the stall case: when loss starves a one-shot
  announcement, every backend must stall identically.
* **Round-0 prune identity** — a window-0 plan (all events at round 0,
  no loss/delay) is indistinguishable from a fault-free run on the
  pre-pruned survivor graph.
* **Degradation oracle** — on every small graph, a faulted
  Israeli–Itai run still yields a valid matching, maximal on the
  survivor subgraph modulo widows.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.baselines.israeli_itai import (
    israeli_itai_array,
    israeli_itai_array_batched,
    israeli_itai_matching,
    israeli_itai_matching_batched,
    israeli_itai_program,
)
from repro.baselines.luby_mis import luby_mis, luby_mis_program
from repro.distributed.backends import run_program, run_program_batched
from repro.distributed.faults import NEVER, FaultPlan, bind_many, with_seed
from repro.distributed.network import Network
from repro.distributed.trace import Tracer, run_traced
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    gnp_random,
    random_tree,
)
from repro.matching.certify import (
    certify_degraded_matching,
    degraded_matching,
    survivor_subgraph,
)
from tests.test_exhaustive import all_graphs


def _snapshot(res):
    """Every RunResult field that the identity contract covers."""
    return dataclasses.asdict(res)


def _run_ii(g, seed, plan, backend):
    """II via the routing helper; a stall becomes ('stall', message)."""
    try:
        res = run_program(
            g,
            backend=backend,
            generator_program=israeli_itai_program,
            array_program=israeli_itai_array,
            seed=seed,
            max_rounds=500,
            faults=plan,
        )
    except RuntimeError as e:
        return ("stall", str(e))
    return ("done", _snapshot(res))


GRAPHS = [
    ("gnp12", gnp_random(12, 0.3, seed=5)),
    ("cycle9", cycle_graph(9)),
    ("k6", complete_graph(6)),
    ("tree10", random_tree(10, seed=2)),
]

PLANS = [
    FaultPlan(),
    FaultPlan(loss=0.1),
    FaultPlan(crashes=2, crash_window=6),
    FaultPlan(link_failures=3, link_window=6),
    FaultPlan(loss=0.05, crashes=1, link_failures=2),
    FaultPlan(crashes=2, crash_window=0, link_failures=2, link_window=0),
]


class TestPlanParsing:
    def test_parse_round_trips_the_knobs(self):
        plan = FaultPlan.parse("loss=0.05,crash=3,link=2,crash_window=4,seed=7")
        assert plan == FaultPlan(
            loss=0.05, crashes=3, link_failures=2, crash_window=4, seed=7
        )

    def test_empty_spec_is_noop(self):
        assert not FaultPlan.parse("").is_active
        assert not FaultPlan().is_active

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("lossage=0.5")

    @pytest.mark.parametrize("bad", ["loss=1.5", "loss=-0.1", "crash=-1",
                                     "delay=-2", "link_window=-1"])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_describe_mentions_every_active_knob(self):
        plan = FaultPlan(loss=0.1, crashes=2, link_failures=1, seed=3)
        desc = plan.describe()
        for frag in ("loss=0.1", "crashes=2", "links=1", "fault_seed=3"):
            assert frag in desc
        assert FaultPlan().describe() == "none"


class TestFaultStreamDeterminism:
    def test_same_plan_and_seed_bitwise_identical(self):
        g = gnp_random(15, 0.3, seed=1)
        plan = FaultPlan(loss=0.2, crashes=3, link_failures=3)
        a, b = plan.bind(g, 9), plan.bind(g, 9)
        assert np.array_equal(a.crash_round, b.crash_round)
        assert np.array_equal(a.link_fail_round, b.link_fail_round)
        for rnd in range(4):
            for u in range(g.n):
                assert a.drop(u, (u + 1) % g.n, rnd) == b.drop(
                    u, (u + 1) % g.n, rnd
                )

    def test_explicit_fault_seed_decouples_from_run_seed(self):
        g = gnp_random(15, 0.3, seed=1)
        plan = with_seed(FaultPlan(crashes=3, link_failures=2), 42)
        a, b = plan.bind(g, 0), plan.bind(g, 999)
        assert np.array_equal(a.crash_round, b.crash_round)
        assert np.array_equal(a.link_fail_round, b.link_fail_round)

    def test_run_seed_keys_streams_when_plan_seed_unset(self):
        g = gnp_random(30, 0.3, seed=1)
        plan = FaultPlan(crashes=5)
        a, b = plan.bind(g, 0), plan.bind(g, 1)
        assert not np.array_equal(a.crash_round, b.crash_round)

    def test_drop_mask_matches_scalar_drop(self):
        g = gnp_random(10, 0.4, seed=3)
        fs = FaultPlan(loss=0.3).bind(g, 7)
        src = np.repeat(np.arange(g.n), g.n)
        dst = np.tile(np.arange(g.n), g.n)
        for rnd in (0, 1, 5):
            mask = fs.drop_mask(src, dst, rnd)
            scalar = [fs.drop(int(u), int(v), rnd) for u, v in zip(src, dst)]
            assert mask.tolist() == scalar

    def test_inactive_plan_binds_to_none(self):
        assert FaultPlan().bind(gnp_random(5, 0.5, seed=0), 0) is None

    def test_bind_many_one_state_per_lane(self):
        g = gnp_random(8, 0.4, seed=0)
        states = bind_many(FaultPlan(crashes=1), g, [0, 1, 2])
        assert len(states) == 3
        assert all(s is not None for s in states)
        assert bind_many(FaultPlan(), g, [0, 1]) is None


class TestCrossBackendIdentity:
    """Generator ≡ array ≡ batched, byte for byte, faults included."""

    @pytest.mark.parametrize("gname,g", GRAPHS)
    @pytest.mark.parametrize("plan", PLANS, ids=lambda p: p.describe())
    def test_generator_vs_array(self, gname, g, plan):
        for seed in range(4):
            gen = _run_ii(g, seed, plan, "generator")
            arr = _run_ii(g, seed, plan, "array")
            assert gen == arr, f"{gname} seed={seed} plan={plan.describe()}"

    def test_batched_lanes_match_single_runs(self):
        g = gnp_random(14, 0.3, seed=9)
        plan = FaultPlan(loss=0.03, crashes=2, link_failures=1)
        seeds = list(range(6))
        singles = [
            israeli_itai_matching(g, seed=s, backend="array", faults=plan)
            for s in seeds
        ]
        batched = israeli_itai_matching_batched(
            g, seeds, backend="array", faults=plan
        )
        for (sm, sr), (bm, br) in zip(singles, batched):
            assert sm.edges() == bm.edges()
            assert _snapshot(sr) == _snapshot(br)

    def test_batched_identical_across_chunkings(self):
        g = gnp_random(12, 0.35, seed=4)
        plan = FaultPlan(crashes=1, link_failures=2)
        seeds = list(range(6))
        whole = israeli_itai_matching_batched(
            g, seeds, backend="array", faults=plan
        )
        chunked = israeli_itai_matching_batched(
            g, seeds[:2], backend="array", faults=plan
        ) + israeli_itai_matching_batched(
            g, seeds[2:], backend="array", faults=plan
        )
        for (wm, wr), (cm, cr) in zip(whole, chunked):
            assert wm.edges() == cm.edges()
            assert _snapshot(wr) == _snapshot(cr)

    def test_batched_generator_fallback_matches(self):
        g = gnp_random(10, 0.35, seed=6)
        plan = FaultPlan(loss=0.02, crashes=1)
        seeds = [0, 1, 2]
        arr = israeli_itai_matching_batched(g, seeds, backend="array",
                                            faults=plan)
        gen = israeli_itai_matching_batched(g, seeds, backend="generator",
                                            faults=plan)
        for (am, ar), (gm, gr) in zip(arr, gen):
            assert am.edges() == gm.edges()
            assert _snapshot(ar) == _snapshot(gr)

    def test_fault_free_plan_changes_nothing(self):
        g = gnp_random(12, 0.3, seed=2)
        plain = israeli_itai_matching(g, seed=3)
        noop = israeli_itai_matching(g, seed=3, faults=FaultPlan())
        assert _snapshot(plain[1]) == _snapshot(noop[1])
        assert _snapshot(noop[1])["messages_dropped"] == 0


class TestBackendGates:
    def test_delay_is_generator_only(self):
        g = gnp_random(8, 0.4, seed=0)
        with pytest.raises(ValueError, match="generator-backend-only"):
            _run_ii(g, 0, FaultPlan(delay=2), "array")
        # The generator path accepts the same plan (the run may still
        # stall honestly — a delayed one-shot announcement arrives too
        # late to be believed — but it must not be rejected up front).
        status, _ = _run_ii(g, 0, FaultPlan(delay=2), "generator")
        assert status in ("done", "stall")

    def test_program_without_fault_seam_rejected(self):
        g = gnp_random(8, 0.4, seed=0)
        with pytest.raises(ValueError, match="fault seam"):
            luby_mis(g, seed=0, backend="array", faults=FaultPlan(crashes=1))
        mis, res = luby_mis(g, seed=0, backend="generator",
                            faults=FaultPlan(crashes=1))
        assert res.nodes_crashed <= 1


class TestPruneIdentity:
    """Window-0 plans ≡ fault-free runs on the pre-pruned graph."""

    COUNTERS = ("rounds", "total_messages", "total_bits", "max_message_bits")

    def _check(self, g, seed, plan, run):
        fs = plan.bind(g, seed)
        _, faulted = run(g, seed, plan)
        _, clean = run(fs.pruned_graph(0), seed, None)
        for key in self.COUNTERS:
            assert getattr(faulted, key) == getattr(clean, key), key
        crashed = set(fs.crashed_by(0).tolist())
        for v in range(g.n):
            if v in crashed:
                assert faulted.outputs[v] is None
            else:
                assert faulted.outputs[v] == clean.outputs[v]

    @pytest.mark.parametrize("seed", range(4))
    def test_israeli_itai_generator(self, seed):
        g = gnp_random(14, 0.3, seed=seed + 20)
        plan = FaultPlan(crashes=2, crash_window=0,
                         link_failures=2, link_window=0)
        self._check(
            g, seed, plan,
            lambda gg, s, p: israeli_itai_matching(gg, seed=s, faults=p),
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_israeli_itai_array(self, seed):
        g = gnp_random(14, 0.3, seed=seed + 40)
        plan = FaultPlan(crashes=2, crash_window=0,
                         link_failures=1, link_window=0)
        self._check(
            g, seed, plan,
            lambda gg, s, p: israeli_itai_matching(
                gg, seed=s, backend="array", faults=p
            ),
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_luby_generator(self, seed):
        g = gnp_random(14, 0.3, seed=seed + 60)
        plan = FaultPlan(crashes=2, crash_window=0,
                         link_failures=2, link_window=0)
        self._check(
            g, seed, plan,
            lambda gg, s, p: luby_mis(gg, seed=s, faults=p),
        )


class TestFaultCounters:
    def test_counters_flow_into_run_result(self):
        g = gnp_random(16, 0.3, seed=0)
        plan = FaultPlan(loss=0.1, crashes=2, link_failures=2)
        _, res = israeli_itai_matching(g, seed=1, max_rounds=400, faults=plan)
        assert res.messages_dropped > 0
        assert res.nodes_crashed <= 2
        assert res.links_failed <= 2

    def test_merge_sums_fault_counters(self):
        g = gnp_random(12, 0.3, seed=1)
        plan = FaultPlan(loss=0.15)
        _, a = israeli_itai_matching(g, seed=1, max_rounds=400, faults=plan)
        _, b = israeli_itai_matching(g, seed=2, max_rounds=400, faults=plan)
        merged = a.merge(b)
        assert merged.messages_dropped == a.messages_dropped + b.messages_dropped

    def test_trace_records_per_round_fault_deltas(self):
        g = gnp_random(14, 0.35, seed=14)
        plan = FaultPlan(loss=0.1, delay=1)
        net = Network(g, israeli_itai_program, seed=2, faults=plan)
        res, tracer = run_traced(net, max_rounds=400)
        assert res.messages_dropped > 0 and res.messages_delayed > 0
        assert sum(r.dropped for r in tracer.records) == res.messages_dropped
        assert sum(r.delayed for r in tracer.records) == res.messages_delayed
        # Round-trip: fault columns survive serialization.
        again = Tracer.from_dicts(tracer.to_dicts())
        assert again.records == tracer.records

    def test_prefault_trace_rows_still_load(self):
        # Rows written before the fault columns existed have no
        # dropped/delayed keys; they must load with zero defaults.
        t = Tracer.from_dicts(
            [{"round": 0, "messages": 4, "bits": 32, "max_bits": 8,
              "live_nodes": 4}]
        )
        assert t.records[0].dropped == 0 and t.records[0].delayed == 0


class TestDegradationOracle:
    """Property net: II under faults degrades honestly on all small graphs."""

    def _outputs(self, g, seed, plan):
        try:
            _, res = israeli_itai_matching(
                g, seed=seed, max_rounds=300, faults=plan
            )
        except RuntimeError:
            return None  # loss starved a one-shot announcement: a stall
        return res.outputs

    @pytest.mark.parametrize("plan", [
        FaultPlan(crashes=1, crash_window=3),
        FaultPlan(link_failures=2, link_window=3),
        FaultPlan(loss=0.25),
        FaultPlan(loss=0.1, crashes=1, link_failures=1),
    ], ids=lambda p: p.describe())
    def test_all_graphs_on_4_vertices_16_seeds(self, plan):
        checked = 0
        for g in all_graphs(4):
            if g.m == 0:
                continue
            for seed in range(16):
                outputs = self._outputs(g, seed, plan)
                if outputs is None:
                    continue
                fs = plan.bind(g, seed)
                failed = fs.failed_links_by(10**9) if fs is not None else []
                rep = certify_degraded_matching(g, outputs, failed_links=failed)
                assert rep.ok, (g.edges(), seed, plan.describe(), rep)
                checked += 1
        assert checked > 500  # the net must actually bite

    def test_fault_free_run_has_no_widows_or_crashes(self):
        for g in list(all_graphs(4))[::7]:
            if g.m == 0:
                continue
            _, res = israeli_itai_matching(g, seed=1)
            rep = certify_degraded_matching(g, res.outputs)
            assert rep.ok and not rep.widows and rep.crashed == 0
            assert rep.survivors == g.n

    def test_degraded_matching_reports_widows(self):
        # A hand-built asymmetric claim: 0 says 1, 1 says nobody.
        from repro.graphs.graph import Graph

        g = Graph(3, [(0, 1), (1, 2)])
        m, widows = degraded_matching(g, {0: 1, 1: -1, 2: None})
        assert len(m) == 0 and widows == [(0, 1)]

    def test_survivor_subgraph_drops_crashed_and_failed(self):
        from repro.graphs.graph import Graph

        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub = survivor_subgraph(g, {0: -1, 1: -1, 2: None, 3: -1},
                                failed_links=[0])
        # Edge 0 failed, edges 1-2 touch crashed node 2.
        assert sub.m == 0

    def test_crashed_nodes_never_in_matching(self):
        g = gnp_random(12, 0.4, seed=9)
        plan = FaultPlan(crashes=3, crash_window=4)
        m, res = israeli_itai_matching(g, seed=5, faults=plan)
        fs = plan.bind(g, 5)
        crashed = set(fs.crashed_by(res.rounds).tolist())
        for u, v in m.edges():
            assert u not in crashed and v not in crashed


class TestNeverSentinel:
    def test_never_is_far_beyond_any_run(self):
        assert NEVER > 10**15
