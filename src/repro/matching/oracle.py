"""Convenience oracles used by benchmarks and tests.

Single entry points that pick the right exact algorithm for the
instance: Hopcroft–Karp on bipartite graphs, blossom on general graphs,
and the weighted oracles of :mod:`repro.matching.exact_mwm`.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.matching.blossom import maximum_matching_blossom
from repro.matching.exact_mwm import exact_mwm_small, max_weight_matching
from repro.matching.hopcroft_karp import hopcroft_karp


def maximum_matching_size(g: Graph) -> int:
    """|M*|: maximum cardinality matching size (exact)."""
    if g.m == 0:
        return 0
    if g.m == 1:
        return 1
    if g.is_bipartite():
        return len(hopcroft_karp(g))
    return len(maximum_matching_blossom(g))


def maximum_matching_weight(g: Graph) -> float:
    """w(M*): maximum weight matching value (exact).

    Uses the in-house bitmask DP when the graph is small enough,
    otherwise the networkx weighted-blossom oracle.
    """
    if not g.weighted:
        return float(maximum_matching_size(g))
    if g.n <= 22:
        return exact_mwm_small(g).weight()
    return max_weight_matching(g).weight()
