"""Tests for the queue-length-weighted schedulers (Section 4 ↔ switch)."""

import pytest

from repro.switch import (
    MaxWeightScheduler,
    PimScheduler,
    WeightedPaperScheduler,
    bernoulli_uniform,
    hotspot,
    run_switch,
)


class TestMaxWeightScheduler:
    def test_prefers_long_queues(self):
        s = MaxWeightScheduler(2)
        # input 0 has 10 cells for output 0 and 1 for output 1;
        # input 1 has 1 cell for output 0.  MWM: (0,0)+(1,?) — (1,0)
        # conflicts, so it's (0,0) alone... unless (0,1)+(1,0)=2 < 10.
        matches = s.schedule_weighted([{0: 10.0, 1: 1.0}, {0: 1.0}], 0)
        assert (0, 0) in matches

    def test_total_weight_maximized(self):
        s = MaxWeightScheduler(2)
        # crossing pairs beat the single heavy edge when their sum wins
        matches = s.schedule_weighted([{0: 5.0, 1: 4.0}, {0: 4.0}], 0)
        assert sorted(matches) == [(0, 1), (1, 0)]  # 8 > 5

    def test_empty(self):
        assert MaxWeightScheduler(3).schedule_weighted([{}, {}, {}], 0) == []

    def test_unweighted_adapter(self):
        matches = MaxWeightScheduler(2).schedule([{0, 1}, {0}], 0)
        assert len(matches) == 2


class TestWeightedPaperScheduler:
    def test_half_weight_guarantee_per_slot(self):
        weights = [
            {0: 9.0, 1: 3.0, 2: 1.0},
            {0: 8.0, 1: 7.0},
            {2: 5.0},
        ]
        got = WeightedPaperScheduler(3, eps=0.1).schedule_weighted(weights, 0)
        opt = MaxWeightScheduler(3).schedule_weighted(weights, 0)
        got_w = sum(weights[i][j] for i, j in got)
        opt_w = sum(weights[i][j] for i, j in opt)
        assert got_w >= (0.5 - 0.1) * opt_w - 1e-9

    def test_valid_partial_permutation(self):
        weights = [{0: 2.0, 1: 1.0}, {0: 3.0, 1: 4.0}]
        matches = WeightedPaperScheduler(2).schedule_weighted(weights, 0)
        ins = [i for i, _ in matches]
        outs = [j for _, j in matches]
        assert len(set(ins)) == len(ins) and len(set(outs)) == len(outs)


class TestEndToEnd:
    def test_mwm_scheduler_sustains_load(self):
        st = run_switch(
            6,
            bernoulli_uniform(6, 0.7, seed=1),
            MaxWeightScheduler(6),
            slots=600,
        )
        assert st.arrivals == st.departures + st.backlog
        assert abs(st.throughput - 0.7) < 0.08

    def test_weighted_paper_scheduler_end_to_end(self):
        st = run_switch(
            6,
            bernoulli_uniform(6, 0.7, seed=2),
            WeightedPaperScheduler(6, eps=0.1),
            slots=600,
        )
        assert st.arrivals == st.departures + st.backlog
        assert st.mean_delay < 20

    def test_weighted_beats_random_under_hotspot_backlog(self):
        """Queue-aware scheduling drains the hot output's competitors
        no worse than queue-blind PIM."""
        kwargs = dict(slots=800, warmup=100)
        blind = run_switch(
            6, hotspot(6, 0.5, seed=3), PimScheduler(6, seed=3), **kwargs
        )
        aware = run_switch(
            6, hotspot(6, 0.5, seed=3), WeightedPaperScheduler(6), **kwargs
        )
        assert aware.backlog <= blind.backlog * 1.5 + 30
