"""S4 — seed-axis batched array execution vs sequential array runs (ISSUE 4).

A sweep repeats the same graph over many seeds.  PR 3's array backend
made one run fast; this bench measures what batching the *seeds* buys:

* **sequential** — ``len(seeds)`` independent ``ArrayBackend`` runs,
  each paying backend construction, the O(n) per-node RNG spawn, and a
  full NumPy dispatch chain per seed (exactly what a sweep cell does
  today);
* **batched** — one ``BatchedArrayBackend`` run over ``(num_seeds, n)``
  SoA state, with all per-(seed, node) RNG streams replicated
  bit-exactly but vectorized by ``repro.distributed.batch_rng``.

Every cell asserts the batched run's per-seed ``RunResult``s **equal**
the sequential runs' before any time is reported — the speedup is for
the *same* computation.  Two timings per leg: **end-to-end** (backend
construction + RNG spawn + run; the graph is shared and excluded) and
the **round loop** alone (``run()`` after ``prepare()``, bench_s3's
isolation).  End-to-end is the headline — it is what a sweep cell
actually pays per seed, and the RNG spawn it contains is precisely one
of the per-seed costs batching amortizes.

Workloads: Luby MIS and Israeli–Itai across the scenario families at
n = 2000 with a 16-seed batch.  The committed full run
(``benchmarks/results/s4_batched.json``, captured at PR 4) shows
batched Luby ≥ 9x end-to-end and Israeli–Itai ~5–8x — against
sequential legs that still paid a per-seed Generator spawn and a
per-node Python draw loop.

**Post-ISSUE-5 note.**  The single-seed array programs now draw
through the same bulk RNG lanes the batch uses (see
``ArrayContext.lanes`` and ``benchmarks/bench_s5_weighted.py``), which
collapsed exactly the per-seed costs this batch amortized: at n = 2000
the sequential and batched legs are within ~±10% of each other, and
the seed-axis win concentrates where per-run dispatch overhead
dominates — many seeds on small-to-mid graphs (~2–4x at n ≤ 500) and
the weighted pipeline's per-iteration box runs (bench_s5's batched
cells).  The CI smoke gate therefore runs at n = 500 × 16 seeds, the
regime the batch seam is *for*; the n = 2000 cells remain in the full
matrix (with their identity asserts) to keep the historical
comparison measurable.

Run as a script for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_s4_batched.py --out s4.json

``--quick`` restricts to the n=500 Luby/BA smoke cell (plus the II
cell on the same graph); ``--check`` exits nonzero if the batched run
is slower than the sequential runs on that smoke cell (tighten with
``--min-speedup``) — the CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable

from repro.analysis import format_table, print_banner
from repro.baselines.israeli_itai import (
    israeli_itai_array,
    israeli_itai_array_batched,
)
from repro.baselines.luby_mis import luby_mis_array, luby_mis_array_batched
from repro.distributed.backends import ArrayBackend, BatchedArrayBackend

try:
    from conftest import once
except ImportError:  # script mode: conftest only exists for pytest runs
    once = None

FAMILIES: dict[str, Callable[[int, int], Any]] = {}


def _build_families() -> None:
    from repro.graphs.generators import (
        barabasi_albert,
        gnp_random,
        powerlaw_configuration,
        watts_strogatz,
    )

    FAMILIES.update(
        {
            "barabasi_albert": lambda n, s: barabasi_albert(n, 4, seed=s),
            "watts_strogatz": lambda n, s: watts_strogatz(n, 4, 0.1, seed=s),
            "gnp": lambda n, s: gnp_random(n, 4.0 / n, seed=s),
            "powerlaw": lambda n, s: powerlaw_configuration(n, 2.5, seed=s),
        }
    )


_build_families()

WORKLOADS: dict[str, tuple[Callable, Callable, bool]] = {
    # name -> (sequential array program, batched array program, needs n)
    "luby_mis": (luby_mis_array, luby_mis_array_batched, True),
    "israeli_itai": (israeli_itai_array, israeli_itai_array_batched, False),
}

#: The CI smoke cell: (workload, family, n, num_seeds).  n = 500 is the
#: dispatch-dominated regime the batch seam targets post-ISSUE-5 (see
#: the module docstring).
SMOKE_CELL = ("luby_mis", "barabasi_albert", 500, 16)


def _measure_sequential(g, program, params, seeds, reps):
    """Best-of-reps (sum of end-to-end seconds, sum of loop seconds, results)."""
    best = None
    for _ in range(reps):
        total = loop = 0.0
        results = []
        for s in seeds:
            t0 = time.perf_counter()
            net = ArrayBackend(g, program, params=params, seed=s)
            net.prepare()
            t1 = time.perf_counter()
            results.append(net.run())
            t2 = time.perf_counter()
            total += t2 - t0
            loop += t2 - t1
        if best is None or total < best[0]:
            best = (total, loop, results)
    return best


def _measure_batched(g, program, params, seeds, reps):
    """Best-of-reps (end-to-end seconds, loop seconds, per-seed results)."""
    best = None
    for _ in range(reps):
        t0 = time.perf_counter()
        net = BatchedArrayBackend(g, program, params=params, seeds=seeds)
        net.prepare()
        t1 = time.perf_counter()
        results = net.run()
        t2 = time.perf_counter()
        if best is None or t2 - t0 < best[0]:
            best = (t2 - t0, t2 - t1, results)
    return best


def bench_cell(
    workload: str, family: str, n: int, num_seeds: int, reps: int
) -> dict[str, Any]:
    """One batched-vs-sequential cell; asserts per-seed result identity."""
    seq_prog, batch_prog, needs_n = WORKLOADS[workload]
    g = FAMILIES[family](n, 0)
    g.neighbor_sets()  # warm the shared graph caches for both legs
    params = {"n": g.n} if needs_n else None
    seeds = list(range(1, num_seeds + 1))
    t_seq, l_seq, r_seq = _measure_sequential(g, seq_prog, params, seeds, reps)
    t_bat, l_bat, r_bat = _measure_batched(g, batch_prog, params, seeds, reps)
    assert r_seq == r_bat, f"batched diverged on {workload}/{family} n={n}"
    return {
        "workload": workload,
        "family": family,
        "n": g.n,
        "m": g.m,
        "num_seeds": num_seeds,
        "rounds_per_seed": [r.rounds for r in r_seq],
        "sequential_s": t_seq,
        "sequential_loop_s": l_seq,
        "batched_s": t_bat,
        "batched_loop_s": l_bat,
        "speedup": t_seq / t_bat,
        "loop_speedup": l_seq / l_bat,
        "per_seed_ms_sequential": 1e3 * t_seq / num_seeds,
        "per_seed_ms_batched": 1e3 * t_bat / num_seeds,
        "identical_results": True,
    }


def run_s4(
    sizes: list[int], num_seeds: int, reps: int, quick: bool = False
) -> dict[str, Any]:
    cells = []
    if quick:
        wl, fam, n, k = SMOKE_CELL
        cells.append(bench_cell(wl, fam, n, k, reps))
        cells.append(bench_cell("israeli_itai", fam, n, k, reps))
    else:
        for n in sizes:
            for workload in WORKLOADS:
                for family in FAMILIES:
                    cells.append(bench_cell(workload, family, n, num_seeds, reps))
        wl, fam, n, k = SMOKE_CELL
        if not any(
            (c["workload"], c["family"], c["n"], c["num_seeds"])
            == (wl, fam, n, k)
            for c in cells
        ):
            # Keep --check functional on full runs: the gate cell is
            # smaller than the default matrix sizes since ISSUE 5.
            cells.append(bench_cell(wl, fam, n, k, reps))
    return {
        "sizes": sizes if not quick else [SMOKE_CELL[2]],
        "num_seeds": num_seeds if not quick else SMOKE_CELL[3],
        "cells": cells,
    }


def smoke_speedup(data: dict[str, Any]) -> float:
    """Batched-vs-sequential end-to-end speedup of the CI smoke cell."""
    wl, fam, n, k = SMOKE_CELL
    for c in data["cells"]:
        if (c["workload"], c["family"], c["n"], c["num_seeds"]) == (wl, fam, n, k):
            return c["speedup"]
    raise LookupError(f"smoke cell {SMOKE_CELL} not in this run")


def show(data: dict[str, Any]) -> None:
    print_banner(
        "S4 — batched multi-seed array execution",
        "per-seed RunResults asserted equal; one batch vs N sequential runs",
    )
    print(format_table(
        ["workload", "family", "n", "seeds",
         "seq s", "batched s", "speedup", "loop speedup", "ms/seed"],
        [
            [c["workload"], c["family"], c["n"], c["num_seeds"],
             c["sequential_s"], c["batched_s"], c["speedup"],
             c["loop_speedup"], c["per_seed_ms_batched"]]
            for c in data["cells"]
        ],
    ))
    best = max(data["cells"], key=lambda c: c["speedup"])
    print(f"\nbest end-to-end speedup {best['speedup']:.2f}x "
          f"({best['workload']}/{best['family']} n={best['n']} × "
          f"{best['num_seeds']} seeds, round loop {best['loop_speedup']:.2f}x)")


def test_batched_speedup(benchmark, report):
    data = once(benchmark, lambda: run_s4([500], 16, reps=2, quick=True))
    report(show, data)
    for c in data["cells"]:
        assert c["identical_results"]
    # CI boxes are noisy; a healthy run shows ~2x on the n=500 cell.
    assert smoke_speedup(data) >= 1.0, data


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--sizes", type=int, nargs="+", default=[2000],
                    help="graph sizes for the full matrix")
    ap.add_argument("--num-seeds", type=int, default=16,
                    help="seeds per batch")
    ap.add_argument("--reps", type=int, default=None,
                    help="best-of reps (default: 3, or 2 with --quick)")
    ap.add_argument("--quick", action="store_true",
                    help="only the n=500 Luby/BA + II smoke cells")
    ap.add_argument("--check", action="store_true",
                    help="exit 2 if the batched run is slower than the "
                         "sequential runs on the Luby/BA smoke cell")
    ap.add_argument("--min-speedup", type=float, default=1.0,
                    help="threshold for --check (default 1.0; the "
                         "committed run clears 1.5 with a wide margin)")
    ap.add_argument("--out", type=str, default=None,
                    help="write the JSON report here")
    args = ap.parse_args(argv)
    reps = args.reps if args.reps is not None else (2 if args.quick else 3)
    data = run_s4(args.sizes, args.num_seeds, reps, quick=args.quick)
    show(data)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(data, fh, indent=2)
        print(f"\nwrote {args.out}")
    if args.check:
        try:
            speedup = smoke_speedup(data)
        except LookupError as e:
            print(f"FAIL: {e}", file=sys.stderr)
            return 2
        if speedup < args.min_speedup:
            print(f"FAIL: batched execution below {args.min_speedup:.2f}x on "
                  f"the {SMOKE_CELL} smoke cell ({speedup:.2f}x)",
                  file=sys.stderr)
            return 2
        print(f"check ok: smoke-cell batched speedup {speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
