#!/usr/bin/env python3
"""Visualize protocol structure with per-round traffic traces.

Runs three protocols under the tracer and prints message-volume
sparklines.  The Aug iteration's three-stage structure (counting /
token walk / confirmation) shows up as a repeating comb; Israeli–Itai
decays geometrically; Luby's MIS collapses in a few spikes.
"""

from repro.baselines.israeli_itai import israeli_itai_program
from repro.baselines.luby_mis import luby_mis_program
from repro.core.bipartite_mcm import _conflict_bound, aug_iteration_program
from repro.distributed import Network
from repro.distributed.trace import run_traced
from repro.graphs import bipartite_random, gnp_random


def show(name, net):
    res, tracer = run_traced(net)
    s = tracer.summary()
    print(f"\n{name}")
    print(f"  rounds={s['rounds']}  messages={s['messages']}  "
          f"peak={s['peak_messages']}/round  max_msg={res.max_message_bits}b")
    print(f"  msgs  |{tracer.sparkline('messages')}|")
    print(f"  bits  |{tracer.sparkline('bits')}|")
    print(f"  live  |{tracer.sparkline('live_nodes')}|")


def main() -> None:
    g = gnp_random(120, 0.05, seed=3)
    show("Israeli-Itai maximal matching (geometric decay of activity)",
         Network(g, israeli_itai_program, seed=1))
    show("Luby MIS (a few decisive spikes)",
         Network(g, luby_mis_program, params={"n": g.n}, seed=1))

    gb, xs, _ = bipartite_random(60, 60, 0.08, seed=4)
    xside = [v < 60 for v in range(gb.n)]
    ell = 3
    hi = _conflict_bound(gb.n, gb.max_degree(), ell) ** 4
    show(f"one Aug iteration, ell={ell} (count / tokens / confirm stages)",
         Network(
             gb,
             aug_iteration_program,
             params={"xside": xside, "mates": [-1] * gb.n, "ell": ell, "hi": hi},
             seed=2,
         ))


if __name__ == "__main__":
    main()
