"""F1 — Figure 1: Algorithm 3's layer-by-layer counting.

Paper object: the worked example of Section 3.2 ("Numbers next to
nodes are the sum of numbers received from the previous level").
Regenerated on the reconstructed instance and verified against
brute-force augmenting-path enumeration.
"""

from repro.analysis import format_table, print_banner
from repro.core import count_augmenting_paths
from repro.core.figures import figure1_instance
from repro.matching import Matching, find_augmenting_paths_upto

from conftest import once


def run_figure1():
    g, xside, mates, expected = figure1_instance()
    counts, res = count_augmenting_paths(g, xside, mates, ell=3)
    m = Matching(g, [(v, mates[v]) for v in range(g.n) if v < mates[v]])
    paths = find_augmenting_paths_upto(g, m, 3)
    rows = []
    for v in sorted(expected):
        d, n_v, _c, leader = counts[v]
        enumerated = (
            sum(1 for p in paths if v in (p[0], p[-1])) if leader else "-"
        )
        rows.append([v, d, n_v, expected[v], enumerated, "yes" if leader else ""])
    return rows, res, counts, expected


def test_figure1_counts(benchmark, report):
    rows, res, counts, expected = once(benchmark, run_figure1)

    def show():
        print_banner(
            "F1 / Figure 1 — BFS counting of augmenting paths (Algorithm 3)",
            "per-node sums equal the number of shortest augmenting paths "
            "ending there (Lemma 3.6)",
        )
        print(format_table(
            ["node", "d(v)", "n_v", "figure", "enumerated", "leader"], rows
        ))
        print(f"protocol: {res.rounds} rounds, "
              f"max message {res.max_message_bits} bits")

    report(show)
    for v, want in expected.items():
        assert counts[v][1] == want
