"""The paper's two figures as concrete, checkable instances.

The published figures are *worked examples*, not experiment plots:

* **Figure 1** illustrates Algorithm 3's layer-by-layer counting of
  augmenting paths in a bipartite graph (numbers next to nodes are the
  sums received from the previous level);
* **Figure 2** illustrates the derived weight function w_M and Lemma
  4.1: a matching M with w(M) = 14, a matching M′ of the re-weighted
  graph with w_M(M′) = 10, and M″ = M ⊕ ⋃wrap(e) with w(M″) = 26 ≥
  w(M) + w_M(M′) (strict, because two wraps share a removed M edge).

The camera-ready drawings cannot be recovered from the text dump, so
each instance here is *reconstructed from the caption's invariants*
(DESIGN.md §4): Figure 2's three advertised weights (14 / 10 / 26,
with slack 2 from wrap overlap) are reproduced exactly; Figure 1's
instance is a layered bipartite graph whose per-node counts exercise
every rule of Algorithm 3 and are verified against brute-force path
enumeration.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.matching.matching import Matching


def figure1_instance() -> tuple[Graph, list[bool], list[int], dict[int, int]]:
    """A Figure-1 style instance for Algorithm 3 with ℓ = 3.

    Layout (top to bottom, as in the figure)::

        free X:    a1=0   a2=1
                    |  \\  /  \\          (unmatched)
        Y:         b1=2  b2=3  b3=4
                    ‖     ‖     ‖        (matched)
        X:         c1=5  c2=6  c3=7
                    |  \\  / \\  /        (unmatched)
        free Y:    d1=8   d2=9

    Expected counts: b1:1, b2:2, b3:1 (then c mirrors its mate), and
    the free Y leaders d1, d2 each total 3 augmenting paths of length 3.

    Returns ``(graph, xside, mates, expected_counts)``.
    """
    edges = [
        (0, 2), (0, 3), (1, 3), (1, 4),   # free X -> Y (unmatched)
        (2, 5), (3, 6), (4, 7),           # matched pairs
        (5, 8), (6, 8), (6, 9), (7, 9),   # X -> free Y (unmatched)
    ]
    g = Graph(10, edges)
    xside = [True, True, False, False, False, True, True, True, False, False]
    mates = [-1, -1, 5, 6, 7, 2, 3, 4, -1, -1]
    expected_counts = {2: 1, 3: 2, 4: 1, 5: 1, 6: 2, 7: 1, 8: 3, 9: 3}
    return g, xside, mates, expected_counts


def figure2_instance() -> tuple[Graph, Matching, list[tuple[int, int]], tuple[float, float, float]]:
    """A Figure-2 instance reproducing the caption's numbers exactly.

    ::

        0 ——7—— 1 ══2══ 2 ——7—— 3        (1,2) ∈ M
                4 ══5══ 5                 ∈ M
                6 ══7══ 7                 ∈ M

    M = {(1,2), (4,5), (6,7)}, w(M) = 2+5+7 = **14**.
    M′ = {(0,1), (2,3)} with w_M(0,1) = 7−2 = 5 and w_M(2,3) = 7−2 = 5,
    so w_M(M′) = **10**.
    M″ = M ⊕ (wrap(0,1) ∪ wrap(2,3)) = {(0,1), (2,3), (4,5), (6,7)},
    w(M″) = 7+7+5+7 = **26** ≥ 14 + 10 — the slack of 2 is the weight
    of the M edge (1,2) removed once but charged by *both* wraps,
    exactly the overlap case Lemma 4.1's proof discusses.

    Returns ``(graph, M, M′ edges, (14.0, 10.0, 26.0))``.
    """
    edges = [(0, 1), (1, 2), (2, 3), (4, 5), (6, 7)]
    weights = [7.0, 2.0, 7.0, 5.0, 7.0]
    g = Graph(8, edges, weights)
    m = Matching(g, [(1, 2), (4, 5), (6, 7)])
    mprime_edges = [(0, 1), (2, 3)]
    return g, m, mprime_edges, (14.0, 10.0, 26.0)
