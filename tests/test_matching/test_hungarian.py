"""Tests for the from-scratch Hungarian algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.graphs import Graph, bipartite_random, complete_bipartite
from repro.graphs.weights import assign_uniform_weights
from repro.matching import (
    hungarian_mwm,
    max_weight_matching,
    solve_assignment,
)


class TestSolveAssignment:
    def test_identity_is_optimal(self):
        cost = np.array([[0.0, 5.0], [5.0, 0.0]])
        assert solve_assignment(cost) == [0, 1]

    def test_swap_is_optimal(self):
        cost = np.array([[5.0, 0.0], [0.0, 5.0]])
        assert solve_assignment(cost) == [1, 0]

    def test_single_cell(self):
        assert solve_assignment(np.array([[3.0]])) == [0]

    def test_negative_costs(self):
        cost = np.array([[-9.0, 0.0], [0.0, -9.0]])
        assert solve_assignment(cost) == [0, 1]

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            solve_assignment(np.zeros((2, 3)))

    def test_permutation_output(self):
        rng = np.random.default_rng(1)
        cost = rng.normal(size=(7, 7))
        col_of = solve_assignment(cost)
        assert sorted(col_of) == list(range(7))

    @given(st.integers(0, 10_000), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy(self, seed, n):
        rng = np.random.default_rng(seed)
        cost = rng.normal(size=(n, n)) * 10
        col_of = solve_assignment(cost)
        ours = sum(cost[i, col_of[i]] for i in range(n))
        ri, ci = linear_sum_assignment(cost)
        assert ours == pytest.approx(float(cost[ri, ci].sum()))


class TestHungarianMwm:
    def test_simple(self):
        g = Graph(4, [(0, 2), (0, 3), (1, 2)], [5.0, 1.0, 4.0])
        m = hungarian_mwm(g, xs=[0, 1])
        # (0,3)+(1,2) = 5 == (0,2)=5 alone... actually 1+4=5 vs 5: tie;
        # either way total weight 5.
        assert m.weight() == pytest.approx(5.0)

    def test_leaves_negative_value_unmatched(self):
        # All-positive weights: still may leave vertices unmatched when
        # sides are unbalanced.
        g, xs, ys = complete_bipartite(2, 3)
        g = g.with_weights([1.0] * g.m)
        m = hungarian_mwm(g, xs)
        assert len(m) == 2

    def test_unweighted_graph_maximizes_cardinality(self):
        g, xs, _ = bipartite_random(6, 6, 0.4, seed=1)
        from repro.matching import hopcroft_karp

        assert len(hungarian_mwm(g, xs)) == len(hopcroft_karp(g, xs))

    def test_empty(self):
        assert len(hungarian_mwm(Graph(4), xs=[0, 1])) == 0

    def test_non_bipartite_rejected(self, triangle):
        with pytest.raises(ValueError):
            hungarian_mwm(triangle)

    def test_auto_bipartition(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [3.0, 9.0, 3.0])
        assert hungarian_mwm(g).weight() == pytest.approx(9.0)

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_networkx_random(self, seed):
        g, xs, _ = bipartite_random(7, 9, 0.4, seed=seed)
        if g.m == 0:
            return
        g = assign_uniform_weights(g, seed=seed)
        assert hungarian_mwm(g, xs).weight() == pytest.approx(
            max_weight_matching(g).weight()
        )

    def test_matches_bitmask_dp(self):
        from repro.matching import exact_mwm_small

        for seed in range(5):
            g, xs, _ = bipartite_random(5, 5, 0.5, seed=seed)
            if g.m == 0:
                continue
            g = assign_uniform_weights(g, seed=seed)
            assert hungarian_mwm(g, xs).weight() == pytest.approx(
                exact_mwm_small(g).weight()
            )
