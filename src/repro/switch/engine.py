"""The vectorized long-horizon switch engine.

Replaces the scalar cell-slot loop (:func:`repro.switch.simulator.run_switch`
— kept as the reference semantics) for large port counts and 10^5–10^6
slot horizons:

* **VOQ state** is a single ``(ports, ports)`` int64 occupancy matrix
  instead of ``ports²`` Python deques;
* **traffic** is consumed in chunked ``(slots, ports)`` destination
  blocks from a :class:`~repro.switch.traffic.ChunkedTraffic` stream;
* **schedulers** are consulted once per slot on the occupancy matrix
  (``schedule_matrix``) when they support it, falling back to the
  demand-set / occupancy-dict interfaces for the centralized adapters;
* **exact FIFO delay accounting without per-cell timestamps**: during
  the main pass only per-VOQ departure *counts* and a running
  departure-slot sum are maintained.  Afterwards a replay of the
  traffic stream (``traffic.clone()``) walks the same arrival sequence
  and resolves, per VOQ, which arrival indices the window's FIFO
  departures consumed — ``total_delay = Σ departure slots − Σ arrival
  slots`` over exactly those cells.  This is exact because every VOQ
  is FIFO and receives at most one cell per slot: the cells departing
  in the measured window are precisely arrival indices
  ``[dep_count_at_warmup, dep_count_at_end)`` of their VOQ.

The engine is pinned byte-identical to the scalar fabric on
:class:`~repro.switch.fabric.SwitchStats` across every scheduler ×
traffic model cell (``tests/test_switch/test_engine.py``); both
engines drive the same vectorized scheduler cores, which consume
randomness in a fixed per-slot pattern, so identical seeds yield
identical schedules.

:func:`run_switch_batched` lifts the same loop along a seed axis —
one ``(num_seeds, ports, ports)`` occupancy stack, lane-stacked
scheduler cores (:mod:`repro.switch.batched`) and a batched replay
pass — so a whole load-curve point with confidence bands costs one
execution instead of one run per seed, mirroring what the distributed
round engine's seed-axis batching (PR 4) did for ``run_program``.
"""

from __future__ import annotations

import numpy as np

from repro.switch.fabric import SwitchStats
from repro.switch.traffic import BatchedChunkedTraffic, ChunkedTraffic

#: Initial per-VOQ capacity of the batched engine's FIFO timestamp
#: rings (grown by doubling as occupancy demands).
_RING_INIT_CAP = 8

#: Memory budget for the timestamp rings.  A run whose deepest VOQ
#: would push the rings past this falls back to the traffic-replay
#: delay accounting instead.
_RING_BYTES_MAX = 256 * 1024 * 1024


def _grow_rings(
    ring: np.ndarray, cap: int, arr_cnt: np.ndarray, dep_cnt: np.ndarray
) -> tuple[np.ndarray, int]:
    """Double the rings' per-VOQ capacity, relocating live cells.

    A cell with FIFO index ``i`` lives at ring slot ``i % cap``; per
    VOQ the live indices are ``[dep_cnt, arr_cnt)``, so each offset
    into that span moves with one gather/scatter over all VOQs.
    """
    new_cap = cap * 2
    new = np.zeros(arr_cnt.size * new_cap, dtype=ring.dtype)
    for off in range(cap):
        idx = dep_cnt + off
        kk = np.flatnonzero(idx < arr_cnt)
        ii = idx[kk]
        new[kk * new_cap + (ii & (new_cap - 1))] = ring[
            kk * cap + (ii & (cap - 1))
        ]
    return new, new_cap


def _chunk_events(block: np.ndarray, ports: int):
    """Flat slot-major arrival events for one batched traffic chunk.

    Returns ``(rows, aflat, bounds)``: per event its global input row
    ``lane*P + i`` and flat VOQ id ``lane*P² + i*P + j`` (note ``aflat
    = rows*P + dest`` — the lane term needs no separate decode), plus
    per-slot event bounds.  The block is copied once into a contiguous
    slot-major array of the narrowest destination dtype so the mask /
    nonzero / gather steps touch the least memory.
    """
    num_seeds, count, _ = block.shape
    dt = np.int16 if ports < (1 << 15) else np.int64
    tb = block.transpose(1, 0, 2).astype(dt)
    tbf = tb.reshape(-1)
    fnz = np.flatnonzero(tbf >= 0)
    er, rows = np.divmod(fnz, num_seeds * ports)
    aflat = rows * ports + tbf.take(fnz)
    bounds = np.searchsorted(er, np.arange(count + 1)).tolist()
    return rows, aflat, bounds


def _matches_from_pairs(
    pairs: list[tuple[int, int]]
) -> tuple[np.ndarray, np.ndarray]:
    if not pairs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    arr = np.asarray(pairs, dtype=np.int64)
    return arr[:, 0], arr[:, 1]


def _occupancy_dicts(q: np.ndarray) -> list[dict[int, float]]:
    """The scalar fabric's ``occupancy()`` view of the VOQ matrix."""
    return [
        {int(j): float(q[i, j]) for j in np.flatnonzero(q[i])}
        for i in range(q.shape[0])
    ]


def _demand_sets(q: np.ndarray) -> list[set[int]]:
    """The scalar fabric's ``demand()`` view of the VOQ matrix."""
    return [set(np.flatnonzero(q[i]).tolist()) for i in range(q.shape[0])]


def _consult_external(
    scheduler, q: np.ndarray, qf: np.ndarray, slot: int, ports: int,
    weighted: bool,
) -> np.ndarray | None:
    """Consult a pair-list scheduler on one lane's occupancy.

    Applies the scalar fabric's matching / empty-VOQ checks, decrements
    the flat occupancy view ``qf`` for the departed cells, and returns
    their flat VOQ indices (``None`` when nothing was scheduled).
    """
    if weighted:
        pairs = scheduler.schedule_weighted(_occupancy_dicts(q), slot)
    else:
        pairs = scheduler.schedule(_demand_sets(q), slot)
    mi, mj = _matches_from_pairs(pairs)
    k = len(mi)
    if not k:
        return None
    if len(set(mi.tolist())) != k or len(set(mj.tolist())) != k:
        raise ValueError("schedule is not a matching")
    mflat = mi * ports + mj
    moved = qf[mflat]
    if moved.min() <= 0:
        raise ValueError("scheduled empty VOQ")
    qf[mflat] = moved - 1
    return mflat


def run_switch_vectorized(
    ports: int,
    traffic: ChunkedTraffic,
    scheduler,
    slots: int,
    warmup: int = 0,
    chunk_slots: int = 2048,
) -> SwitchStats:
    """Simulate ``slots`` cell slots on the vectorized engine.

    Semantics (and resulting :class:`SwitchStats`) are identical to
    :func:`repro.switch.simulator.run_switch`: ``warmup`` extra slots
    run first without being counted, queue state carries across the
    boundary, and departed cells keep their true arrival slots.

    ``traffic`` must be a fresh :class:`ChunkedTraffic` stream (the
    delay-accounting replay pass clones it back to slot 0).
    """
    if ports < 1:
        raise ValueError("need at least one port")
    if not isinstance(traffic, ChunkedTraffic):
        raise TypeError(
            "run_switch_vectorized needs a ChunkedTraffic stream "
            "(every repro.switch.traffic model returns one)"
        )
    if traffic.ports != ports:
        raise ValueError(
            f"traffic generates {traffic.ports} ports, switch has {ports}"
        )
    if chunk_slots < 1:
        raise ValueError("chunk_slots must be >= 1")
    horizon = warmup + slots
    # The scalar loop only resets stats when it *reaches* slot==warmup,
    # so with slots == 0 the warmup slots themselves are the window.
    window_start = warmup if slots > 0 else 0
    measured = horizon - window_start

    q = np.zeros((ports, ports), dtype=np.int64)
    qf = q.reshape(-1)  # flat view: 1-D fancy indexing is the fast path
    dep_cnt = np.zeros(ports * ports, dtype=np.int64)
    dep_cnt_window = np.zeros_like(dep_cnt)  # snapshot at window start
    arrivals = 0
    departures = 0
    dep_slot_sum = 0
    match_sizes: list[int] = []
    record_match = match_sizes.append

    weighted = hasattr(scheduler, "schedule_weighted")
    matrixed = hasattr(scheduler, "schedule_matrix")

    # Departure events are buffered per chunk (as flat VOQ indices) and
    # folded into dep_cnt with one bincount (per-slot scatter-adds
    # would dominate the loop).
    pend: list[np.ndarray] = []

    def _flush_departures() -> None:
        if pend:
            dep_cnt[:] += np.bincount(
                np.concatenate(pend), minlength=ports * ports
            )
            pend.clear()

    slot = 0
    while slot < horizon:
        count = min(chunk_slots, horizon - slot)
        block = traffic.chunk(count)
        # extract the chunk's arrival events once (as flat VOQ indices):
        # per-slot work is one fancy-index update on an event slice
        ar, ain = np.nonzero(block >= 0)  # chronological (row-major)
        aflat = ain * ports + block[ar, ain]
        bounds = np.searchsorted(ar, np.arange(count + 1)).tolist()
        sched_matrix = scheduler.schedule_matrix if matrixed else None
        for r in range(count):
            s = slot + r
            if s == window_start and window_start > 0:
                # departures before this point belong to warmup; the
                # replay pass skips each VOQ's first dep_cnt_window cells
                _flush_departures()
                dep_cnt_window[:] = dep_cnt
            in_window = s >= window_start
            # arrivals: at most one cell per input, so (i, dest) pairs
            # are distinct and plain fancy indexing accumulates safely
            lo_r = bounds[r]
            hi_r = bounds[r + 1]
            if hi_r > lo_r:
                qf[aflat[lo_r:hi_r]] += 1
                if in_window:
                    arrivals += hi_r - lo_r
            # schedule on the current occupancy
            if matrixed:
                # internal matrix cores return partial permutations over
                # backlogged VOQs by construction; a per-chunk negative-
                # occupancy check below still catches a broken core
                mi, mj = sched_matrix(q, s)
                k = len(mi)
                if k:
                    mflat = mi * ports + mj
                    qf[mflat] -= 1
                    pend.append(mflat)
            else:
                # external pair lists get the scalar fabric's checks
                mflat = _consult_external(scheduler, q, qf, s, ports, weighted)
                k = 0
                if mflat is not None:
                    k = len(mflat)
                    pend.append(mflat)
            if in_window:
                departures += k
                dep_slot_sum += s * k
                record_match(k)
        slot += count
        if qf.min() < 0:
            raise ValueError("scheduled empty VOQ")
    _flush_departures()

    backlog = int(q.sum())

    # Replay pass: resolve the arrival slots the window's FIFO
    # departures consumed.  Cells departing in the window from VOQ
    # (i, j) are its arrival indices [dep_cnt_window, dep_cnt).
    arr_slot_sum = 0
    if departures > 0:
        replay = traffic.clone()
        lo = dep_cnt_window
        hi = dep_cnt
        seen = np.zeros(ports * ports, dtype=np.int64)
        slot = 0
        while slot < horizon:
            count = min(chunk_slots, horizon - slot)
            block = replay.chunk(count)
            rows, ins = np.nonzero(block >= 0)  # chronological (row-major)
            if rows.size:
                keys = ins * ports + block[rows, ins]
                # ordering by (key, row) via a composite lets the
                # default sort stand in for a slower stable one — rows
                # are chronological, so ties cannot occur
                order = np.argsort(keys * count + rows)
                ks = keys[order]
                starts = np.flatnonzero(np.r_[True, ks[1:] != ks[:-1]])
                counts = np.diff(np.r_[starts, len(ks)])
                # per-VOQ arrival index of each event
                idx_in_group = np.arange(len(ks)) - np.repeat(starts, counts)
                k_global = seen[ks] + idx_in_group
                mask = (k_global >= lo[ks]) & (k_global < hi[ks])
                if mask.any():
                    arr_slot_sum += int(
                        (slot + rows[order][mask]).sum()
                    )
                seen[ks[starts]] += counts
            slot += count

    stats = SwitchStats(
        slots=measured,
        arrivals=int(arrivals),
        departures=int(departures),
        total_delay=int(dep_slot_sum - arr_slot_sum),
        backlog=backlog,
        ports=ports,
        match_sizes=match_sizes,
    )
    return stats


def run_switch_batched(
    ports: int,
    traffic,
    schedulers,
    slots: int,
    warmup: int = 0,
    chunk_slots: int = 2048,
) -> list[SwitchStats]:
    """Simulate every seed lane in one batched execution.

    One ``(num_seeds, ports, ports)`` occupancy stack replaces N
    sequential :func:`run_switch_vectorized` runs: arrivals come from a
    :class:`~repro.switch.traffic.BatchedChunkedTraffic` block per
    chunk, the scheduler cores are consulted once per slot on the whole
    lane stack (:func:`repro.switch.batched.batch_schedulers`; unknown
    or mixed scheduler lists fall back to per-lane consults), and the
    delay-accounting replay pass walks all lanes' cloned streams at
    once.  Returns one :class:`SwitchStats` per lane, byte-identical to
    what ``run_switch_vectorized(ports, traffic.lanes[s], schedulers[s],
    ...)`` would produce on fresh streams and schedulers.

    ``traffic`` is a :class:`BatchedChunkedTraffic` (or a sequence of
    per-lane :class:`ChunkedTraffic` streams, which is stacked for you
    — lanes may use different models or loads).  ``schedulers`` holds
    one instance per lane; instances must be distinct objects, since a
    shared instance's RNG/pointer state would be consumed in a
    different order than in per-lane sequential runs.
    """
    if ports < 1:
        raise ValueError("need at least one port")
    if chunk_slots < 1:
        raise ValueError("chunk_slots must be >= 1")
    schedulers = list(schedulers)
    num_seeds = len(schedulers)
    if num_seeds < 1:
        raise ValueError("need at least one scheduler lane")
    if len({id(s) for s in schedulers}) != num_seeds:
        raise ValueError(
            "each lane needs its own scheduler instance (a shared "
            "instance's state would diverge from per-lane runs)"
        )
    if not isinstance(traffic, BatchedChunkedTraffic):
        traffic = BatchedChunkedTraffic(list(traffic))
    if traffic.num_seeds != num_seeds:
        raise ValueError(
            f"{traffic.num_seeds} traffic lanes for {num_seeds} schedulers"
        )
    if traffic.ports != ports:
        raise ValueError(
            f"traffic generates {traffic.ports} ports, switch has {ports}"
        )

    from repro.switch.batched import batch_schedulers

    horizon = warmup + slots
    # same slots == 0 quirk as the scalar loop / vectorized engine
    window_start = warmup if slots > 0 else 0
    measured = horizon - window_start

    cell = ports * ports
    num_keys = num_seeds * cell
    # int32 state keeps the randomly-gathered working set cache-resident
    q = np.zeros((num_seeds, ports, ports), dtype=np.int32)
    qf = q.reshape(-1)
    dep_cnt = np.zeros(num_keys, dtype=np.int64)
    dep_cnt_window = np.zeros_like(dep_cnt)
    arrivals = np.zeros(num_seeds, dtype=np.int64)
    # per-slot per-lane match sizes, slot-major so each slot's write is
    # one contiguous row; departure totals and the departure-slot sum
    # reduce from it after the loop instead of per slot
    match_t = np.zeros((measured, num_seeds), dtype=np.int64)
    widx = 0

    core = batch_schedulers(schedulers)
    lane_modes = None
    if core is None:
        lane_modes = [
            (
                sch,
                hasattr(sch, "schedule_matrix"),
                hasattr(sch, "schedule_weighted"),
            )
            for sch in schedulers
        ]
    lane_base = np.arange(num_seeds, dtype=np.int64) * cell

    # Backlogged-VOQ state for the cores, maintained incrementally from
    # the arrival/departure deltas (never rescanning occupancy): either
    # a sorted flat id list (cores advertising ``uses_ids``) or a
    # ``q > 0`` boolean stack.
    track_ids = core is not None and getattr(core, "uses_ids", False)
    ids_live = np.empty(0, dtype=np.int64)
    req = reqf = None
    if core is not None and not track_ids:
        req = np.zeros((num_seeds, ports, ports), dtype=bool)
        reqf = req.reshape(-1)

    pend: list[np.ndarray] = []

    def _flush_departures() -> None:
        if pend:
            dep_cnt[:] += np.bincount(
                np.concatenate(pend), minlength=num_keys
            )
            pend.clear()

    # FIFO timestamp rings: per VOQ a small circular buffer of arrival
    # slots, read back the moment each cell departs — so the exact
    # delay sum falls out of the main pass and the replay walk is only
    # a fallback.  A cell with FIFO index i sits at ring slot i % cap;
    # occupancy never exceeding cap keeps reads and writes disjoint.
    ring = None
    ring_cap = _RING_INIT_CAP
    ring_cap_max = _RING_BYTES_MAX // (4 * num_keys)
    if horizon < (1 << 31) and ring_cap <= ring_cap_max:
        ring = np.zeros(num_keys * ring_cap, dtype=np.int32)
        arr_cnt = np.zeros(num_keys, dtype=np.int32)
        dep_cnt2 = np.zeros(num_keys, dtype=np.int32)
        # float64 accumulation is exact here: every addend is a slot
        # index < 2^31 and per-lane totals stay far below 2^53
        arr_slot_f = np.zeros(num_seeds, dtype=np.float64)

    slot = 0
    while slot < horizon:
        count = min(chunk_slots, horizon - slot)
        block = traffic.chunk(count)  # (num_seeds, count, ports)
        rows, aflat, bounds = _chunk_events(block, ports)
        # per-lane in-window arrival totals: one bincount per chunk
        # (arrivals are scheduler-independent, unlike departures)
        first_w = max(window_start - slot, 0)
        if first_w < count:
            arrivals += np.bincount(
                rows[bounds[first_w] :] // ports, minlength=num_seeds
            )
        for r in range(count):
            s = slot + r
            if s == window_start and window_start > 0:
                _flush_departures()
                dep_cnt_window[:] = dep_cnt
            in_window = s >= window_start
            lo_r = bounds[r]
            hi_r = bounds[r + 1]
            if hi_r > lo_r:
                # (lane, input) pairs are distinct within a slot, so
                # plain fancy indexing accumulates safely
                arr = aflat[lo_r:hi_r]
                qf[arr] += 1
                if track_ids:
                    # newly backlogged VOQs merge into the sorted list
                    # (``arr`` ascends: one event per global input row)
                    occ = qf.take(arr)
                    act = arr[occ == 1]
                    if act.size:
                        ids_live = np.insert(
                            ids_live, np.searchsorted(ids_live, act), act
                        )
                elif reqf is not None:
                    reqf[arr] = True
                if ring is not None:
                    # only arrivals deepen a VOQ, so this is the one
                    # place ring capacity can be outgrown
                    if not track_ids:
                        occ = qf.take(arr)
                    while occ.max() > ring_cap:
                        if ring_cap * 2 > ring_cap_max:
                            ring = None  # fall back to replay
                            break
                        ring, ring_cap = _grow_rings(
                            ring, ring_cap, arr_cnt, dep_cnt2
                        )
                    if ring is not None:
                        cnt = arr_cnt.take(arr)
                        ring[arr * ring_cap + (cnt & (ring_cap - 1))] = s
                        arr_cnt[arr] = cnt + 1
            if core is not None:
                if track_ids:
                    lanes, mflat = core.schedule(q, None, s, ids_live)
                else:
                    lanes, mflat = core.schedule(q, req, s)
                k = lanes.size
                if k:
                    left = qf.take(mflat) - 1
                    qf[mflat] = left
                    if track_ids:
                        dead = mflat[left == 0]
                        if dead.size:
                            keep = np.ones(ids_live.size, dtype=bool)
                            keep[
                                np.searchsorted(ids_live, np.sort(dead))
                            ] = False
                            ids_live = ids_live[keep]
                    else:
                        reqf[mflat] = left > 0
                    pend.append(mflat)
            else:
                k_list = [0] * num_seeds
                slot_mflats: list[np.ndarray] = []
                for sx, (sch, matrixed, weighted) in enumerate(lane_modes):
                    q_lane = q[sx]
                    qf_lane = qf[sx * cell : (sx + 1) * cell]
                    if matrixed:
                        mi, mj = sch.schedule_matrix(q_lane, s)
                        if len(mi):
                            mfl = mi * ports + mj
                            qf_lane[mfl] -= 1
                            slot_mflats.append(mfl + lane_base[sx])
                            k_list[sx] = len(mi)
                    else:
                        mfl = _consult_external(
                            sch, q_lane, qf_lane, s, ports, weighted
                        )
                        if mfl is not None:
                            slot_mflats.append(mfl + lane_base[sx])
                            k_list[sx] = len(mfl)
                k = sum(k_list)
                if k:
                    mflat = np.concatenate(slot_mflats)
                    lanes = mflat // cell
                    pend.append(mflat)
            if k:
                if ring is not None:
                    cnt = dep_cnt2.take(mflat)
                    arrsl = ring.take(
                        mflat * ring_cap + (cnt & (ring_cap - 1))
                    )
                    dep_cnt2[mflat] = cnt + 1
                    if in_window:
                        arr_slot_f += np.bincount(
                            lanes, weights=arrsl, minlength=num_seeds
                        )
                if in_window:
                    match_t[widx] = np.bincount(lanes, minlength=num_seeds)
            if in_window:
                widx += 1
        slot += count
        if qf.min() < 0:
            raise ValueError("scheduled empty VOQ")
    _flush_departures()
    if core is not None and hasattr(core, "finalize"):
        core.finalize()

    backlog = q.sum(axis=(1, 2))
    departures = match_t.sum(axis=0)
    dep_slot_sum = (
        window_start + np.arange(measured, dtype=np.int64)
    ) @ match_t

    arr_slot_sum = np.zeros(num_seeds, dtype=np.int64)
    if ring is not None:
        arr_slot_sum[:] = arr_slot_f.astype(np.int64)
    elif departures.any():
        # Fallback batched replay pass (rings outgrew their budget):
        # one walk over all lanes' cloned streams.  With every lane's
        # events available per slot, the per-VOQ FIFO indices resolve
        # slot by slot — a key appears at most once per slot, so a
        # fancy gather/increment on ``seen`` is exact and no
        # sort-and-group step (the single engine's approach) is needed.
        replay = traffic.clone()
        lo = dep_cnt_window
        hi = dep_cnt
        seen = np.zeros(num_keys, dtype=np.int64)
        slot = 0
        while slot < horizon:
            count = min(chunk_slots, horizon - slot)
            rows, keys, bounds = _chunk_events(replay.chunk(count), ports)
            for r in range(count):
                lo_r = bounds[r]
                hi_r = bounds[r + 1]
                if hi_r == lo_r:
                    continue
                kk = keys[lo_r:hi_r]
                kg = seen[kk]
                m = (kg >= lo[kk]) & (kg < hi[kk])
                seen[kk] = kg + 1
                if m.any():
                    arr_slot_sum += (slot + r) * np.bincount(
                        rows[lo_r:hi_r][m] // ports, minlength=num_seeds
                    )
            slot += count

    return [
        SwitchStats(
            slots=measured,
            arrivals=int(arrivals[s]),
            departures=int(departures[s]),
            total_delay=int(dep_slot_sum[s] - arr_slot_sum[s]),
            backlog=int(backlog[s]),
            ports=ports,
            match_sizes=match_t[:, s].tolist(),
        )
        for s in range(num_seeds)
    ]
