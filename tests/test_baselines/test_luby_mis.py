"""Tests for Luby's distributed MIS (Algorithm 1's subroutine)."""

import math

import pytest

from repro.baselines import luby_mis
from repro.baselines.luby_mis import verify_mis
from repro.graphs import Graph, complete_graph, cycle_graph, gnp_random, star_graph


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_mis_on_random(self, seed):
        g = gnp_random(70, 0.08, seed=seed)
        mis, _ = luby_mis(g, seed=seed)
        assert verify_mis(g, mis)

    def test_complete_graph_singleton(self):
        mis, _ = luby_mis(complete_graph(12), seed=1)
        assert len(mis) == 1

    def test_star_center_or_all_leaves(self):
        mis, _ = luby_mis(star_graph(9), seed=2)
        assert verify_mis(star_graph(9), mis)
        assert mis == {0} or mis == set(range(1, 9))

    def test_empty_graph_all_in(self):
        mis, res = luby_mis(Graph(6), seed=3)
        assert mis == set(range(6))
        assert res.rounds == 0

    def test_cycle(self):
        g = cycle_graph(9)
        mis, _ = luby_mis(g, seed=4)
        assert verify_mis(g, mis)
        assert 3 <= len(mis) <= 4

    def test_determinism(self):
        g = gnp_random(50, 0.1, seed=11)
        a, _ = luby_mis(g, seed=5)
        b, _ = luby_mis(g, seed=5)
        assert a == b


class TestArrayBackend:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_mis_on_random(self, seed):
        g = gnp_random(70, 0.08, seed=seed)
        mis, _ = luby_mis(g, seed=seed, backend="array")
        assert verify_mis(g, mis)

    @pytest.mark.parametrize("seed", range(6))
    def test_backends_agree(self, seed):
        g = gnp_random(50, 0.1, seed=200 + seed)
        mis_g, res_g = luby_mis(g, seed=seed)
        mis_a, res_a = luby_mis(g, seed=seed, backend="array")
        assert mis_g == mis_a
        assert res_g == res_a

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            luby_mis(cycle_graph(5), backend="quantum")


class TestComplexity:
    def test_logarithmic_rounds(self):
        for n in (64, 128, 256, 512):
            g = gnp_random(n, 10.0 / n, seed=n)
            _, res = luby_mis(g, seed=n)
            assert res.rounds <= 3 * 6 * math.log2(n), f"n={n}: {res.rounds}"

    def test_message_bits_logarithmic(self):
        g = gnp_random(100, 0.1, seed=6)
        _, res = luby_mis(g, seed=6)
        # Numbers from [1, n^4]: about 4*log2(n) bits + sign.
        assert res.max_message_bits <= 4 * math.log2(100) + 8


class TestVerifyMis:
    def test_rejects_dependent_set(self):
        g = cycle_graph(4)
        assert not verify_mis(g, {0, 1})

    def test_rejects_non_maximal(self):
        g = cycle_graph(6)
        assert not verify_mis(g, {0})

    def test_accepts_valid(self):
        g = cycle_graph(6)
        assert verify_mis(g, {0, 2, 4})
