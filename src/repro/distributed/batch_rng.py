"""Vectorized per-(seed, node) RNG lanes for batched execution.

The determinism contract (ARCHITECTURE.md) says every backend spawns
node RNGs as ``SeedSequence(seed).spawn(n)`` and a ported program must
replay the *same draws on the same per-node streams* as its generator
twin.  For one seed that replay is a cheap Python loop over ``n``
``numpy.random.Generator`` objects.  For a *batch* of seeds it becomes
the bottleneck: profiling the n=2000 Luby cell puts ~75% of an array
run in Generator construction (the ``spawn``) and ``integers()`` call
overhead, not in the draws' actual arithmetic.

This module removes that bottleneck by replicating the NumPy stream
*bit for bit* with array arithmetic over all ``num_seeds × n`` lanes
at once:

* the ``SeedSequence`` entropy-pool hash (Melissa O'Neill's
  ``randutils`` construction: ``hashmix`` / ``mix`` over a 4-word
  pool, spawn keys appended after the entropy is padded to the pool
  size) — vectorized over lanes, one pool per (seed, node);
* PCG64 seeding and stepping (the 128-bit LCG with the XSL-RR output
  permutation, emulated on ``uint64`` hi/lo pairs);
* ``Generator.integers(low, high)``'s tiered bounded-draw algorithm:
  Lemire rejection on buffered 32-bit halves for ranges below 2³²−1,
  raw words at exactly 2³²−1 / 2⁶⁴−1, 128-bit Lemire in between —
  including the half-word buffer PCG64 keeps between 32-bit draws;
* ``Generator.choice(seq)`` for 1-D sequences, which draws exactly
  ``integers(0, len(seq))`` (and draws *nothing* when ``len == 1``).

Correctness is pinned two ways: ``tests/test_batch_rng.py`` compares
lanes against real ``Generator`` objects draw by draw, and
:func:`verify_replication` (run once, lazily, on first lane
construction) cross-checks a handful of draws at import-cost ~1 ms so
a NumPy build with a diverging stream fails loudly instead of
corrupting batched results.

The public surface is :class:`LaneRngs` — construct with the batch's
seed list and the vertex count, then call :meth:`LaneRngs.integers`
with flat lane ids (``seed_index * n + vertex``).  One draw per lane
per call, matching one ``rng.integers(...)`` / ``rng.choice(...)``
call in the scalar program.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

U32 = np.uint32
U64 = np.uint64

# SeedSequence hash constants (NumPy's bit_generator, after randutils).
_XSHIFT = U32(16)
_INIT_A = U32(0x43B0D7E5)
_MULT_A = U32(0x931E8875)
_INIT_B = U32(0x8B51F9DD)
_MULT_B = U32(0x58F38DED)
_MIX_MULT_L = U32(0xCA01F9DD)
_MIX_MULT_R = U32(0x4973F715)
_POOL_SIZE = 4

# PCG64's default 128-bit LCG multiplier, as (hi, lo) uint64 halves.
_PCG_MULT_HI = U64(0x2360ED051FC65DA4)
_PCG_MULT_LO = U64(0x4385DF649FCCF645)

_LOW32 = U64(0xFFFFFFFF)
_FULL64 = 0xFFFFFFFFFFFFFFFF


def _to_uint32_words(value: int) -> list[int]:
    """``SeedSequence._coerce_to_uint32_array`` for a nonnegative int."""
    if value < 0:
        raise ValueError("seeds must be nonnegative integers")
    if value == 0:
        return [0]
    words = []
    while value > 0:
        words.append(value & 0xFFFFFFFF)
        value >>= 32
    return words


def _hashmix(value: np.ndarray, const: np.uint32) -> tuple[np.ndarray, np.uint32]:
    """One ``hashmix`` step; returns (hashed value, next hash constant)."""
    value = value ^ const
    const = U32(const * _MULT_A)
    value = value * const
    value ^= value >> _XSHIFT
    return value, const

def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    result = x * _MIX_MULT_L - y * _MIX_MULT_R
    result ^= result >> _XSHIFT
    return result


def _spawned_pools(seed: int, spawn_keys: np.ndarray) -> np.ndarray:
    """Entropy pools of ``SeedSequence(seed).spawn(max+1)[k]`` for each k.

    Returns ``uint32[len(spawn_keys), 4]``.  The pool hash consumes the
    assembled entropy — the seed's uint32 words padded to the pool
    size, then the spawn key — word by word; everything up to the
    spawn key depends only on ``seed``, so it is computed once and the
    final spawn-key round is vectorized over all keys.
    """
    entropy = _to_uint32_words(seed)
    if len(entropy) < _POOL_SIZE:  # pad before appending the spawn key
        entropy = entropy + [0] * (_POOL_SIZE - len(entropy))
    pool = np.zeros(_POOL_SIZE, dtype=U32)
    const = _INIT_A
    for i in range(_POOL_SIZE):
        word = U32(entropy[i]) if i < len(entropy) else U32(0)
        pool[i], const = _hashmix(word, const)
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                hashed, const = _hashmix(pool[i_src], const)
                pool[i_dst] = _mix(pool[i_dst], hashed)
    for i_src in range(_POOL_SIZE, len(entropy)):
        for i_dst in range(_POOL_SIZE):
            hashed, const = _hashmix(U32(entropy[i_src]), const)
            pool[i_dst] = _mix(pool[i_dst], hashed)
    # Spawn-key round, vectorized over all keys (one uint32 word each).
    pools = np.broadcast_to(pool, (len(spawn_keys), _POOL_SIZE)).copy()
    keys = spawn_keys.astype(U32)
    for i_dst in range(_POOL_SIZE):
        hashed, const = _hashmix(keys.copy(), const)
        pools[:, i_dst] = _mix(pools[:, i_dst], hashed)
    return pools


def _generate_state4(pools: np.ndarray) -> np.ndarray:
    """``generate_state(4, uint64)`` for each pool row -> ``uint64[L, 4]``."""
    n_lanes = pools.shape[0]
    out32 = np.empty((n_lanes, 8), dtype=U32)
    const = _INIT_B
    for i_dst in range(8):
        data = pools[:, i_dst % _POOL_SIZE] ^ const
        const = U32(const * _MULT_B)
        data = data * const
        data ^= data >> _XSHIFT
        out32[:, i_dst] = data
    # uint32 word pairs combine little-endian: low word first.
    return out32[:, 0::2].astype(U64) | (out32[:, 1::2].astype(U64) << U64(32))


def _mulhi64(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """High 64 bits of the 128-bit product of two uint64 arrays."""
    a_lo = a & _LOW32
    a_hi = a >> U64(32)
    b_lo = b & _LOW32
    b_hi = b >> U64(32)
    lo_lo = a_lo * b_lo
    hi_lo = a_hi * b_lo
    lo_hi = a_lo * b_hi
    cross = (lo_lo >> U64(32)) + (hi_lo & _LOW32) + lo_hi
    return a_hi * b_hi + (hi_lo >> U64(32)) + (cross >> U64(32))


class LaneRngs:
    """``num_seeds × n`` independent PCG64 streams, advanced in bulk.

    Lane ``s * n + v`` replicates — bit for bit — the stream of
    ``np.random.default_rng(np.random.SeedSequence(seeds[s]).spawn(n)[v])``,
    i.e. exactly the RNG :class:`~repro.distributed.network.Network`
    hands node ``v`` when run with ``seed=seeds[s]``.

    All state lives in flat ``uint64`` arrays (LCG hi/lo, increment
    hi/lo, and the one-word 32-bit buffer PCG64 keeps between 32-bit
    draws), so a bulk :meth:`integers` call is a handful of array ops
    regardless of how many lanes draw.
    """

    __slots__ = ("num_seeds", "n", "_sh", "_sl", "_ih", "_il", "_buf", "_has_buf")

    def __init__(self, seeds: Sequence[int], n: int) -> None:
        verify_replication()
        self.num_seeds = len(seeds)
        self.n = n
        lanes = self.num_seeds * n
        vals = np.empty((lanes, 4), dtype=U64)
        spawn_keys = np.arange(n, dtype=np.int64)
        with np.errstate(over="ignore"):
            for s, seed in enumerate(seeds):
                pools = _spawned_pools(int(seed), spawn_keys)
                vals[s * n: (s + 1) * n] = _generate_state4(pools)
            # PCG64 seeding: val[0:2] = initstate (hi, lo), val[2:4] =
            # initseq (hi, lo); inc = (initseq << 1) | 1 over 128 bits.
            self._ih = (vals[:, 2] << U64(1)) | (vals[:, 3] >> U64(63))
            self._il = (vals[:, 3] << U64(1)) | U64(1)
            self._sh = np.zeros(lanes, dtype=U64)
            self._sl = np.zeros(lanes, dtype=U64)
            self._step(slice(None))
            lo = self._sl + vals[:, 1]
            self._sh += vals[:, 0] + (lo < self._sl)
            self._sl = lo
            self._step(slice(None))
        self._buf = np.zeros(lanes, dtype=U64)
        self._has_buf = np.zeros(lanes, dtype=bool)

    def _step(self, idx) -> None:
        """state <- state * MULT + inc (mod 2^128) on the selected lanes."""
        sh, sl = self._sh[idx], self._sl[idx]
        ph = sh * _PCG_MULT_LO + sl * _PCG_MULT_HI + _mulhi64(sl, _PCG_MULT_LO)
        pl = sl * _PCG_MULT_LO
        lo = pl + self._il[idx]
        self._sh[idx] = ph + self._ih[idx] + (lo < pl)
        self._sl[idx] = lo

    def _next64(self, idx: np.ndarray) -> np.ndarray:
        """One raw 64-bit word per selected lane (XSL-RR output)."""
        self._step(idx)
        sh, sl = self._sh[idx], self._sl[idx]
        rot = sh >> U64(58)
        xored = sh ^ sl
        return (xored >> rot) | (xored << (U64(64) - rot & U64(63)))

    def _next32(self, idx: np.ndarray) -> np.ndarray:
        """One 32-bit word per selected lane, low half first, buffered."""
        out = np.empty(idx.shape, dtype=U64)
        buffered = self._has_buf[idx]
        if buffered.any():
            hit = idx[buffered]
            out[buffered] = self._buf[hit]
            self._has_buf[hit] = False
        fresh = ~buffered
        if fresh.any():
            miss = idx[fresh]
            word = self._next64(miss)
            out[fresh] = word & _LOW32
            self._buf[miss] = word >> U64(32)
            self._has_buf[miss] = True
        return out

    def integers(
        self,
        low: int,
        high: int | np.ndarray,
        lanes: np.ndarray,
    ) -> np.ndarray:
        """One ``Generator.integers(low, high)`` draw per selected lane.

        ``lanes`` holds flat lane ids (``seed_index * n + vertex``),
        each at most once per call; ``high`` is exclusive and may be an
        array aligned with ``lanes``.  Returns ``int64`` values and
        advances exactly the words the real per-node Generators would
        consume (including Lemire rejections and the 32-bit buffer).
        """
        lanes = np.asarray(lanes, dtype=np.int64)
        out = np.empty(lanes.shape, dtype=np.int64)
        rng = np.asarray(high, dtype=np.int64) - low - 1  # inclusive range
        rng = np.broadcast_to(rng, lanes.shape)
        if (rng < 0).any():
            raise ValueError("low >= high in bounded draw")
        with np.errstate(over="ignore"):
            zero = rng == 0
            out[zero] = low  # no words consumed, as in NumPy
            small = (rng > 0) & (rng < 0xFFFFFFFF)
            if small.any():
                out[small] = low + self._lemire32(
                    lanes[small], rng[small].astype(U64)
                ).astype(np.int64)
            raw32 = rng == 0xFFFFFFFF
            if raw32.any():
                out[raw32] = low + self._next32(lanes[raw32]).astype(np.int64)
            big = (rng > 0xFFFFFFFF) & (rng.astype(U64) < U64(_FULL64))
            if big.any():
                out[big] = low + self._lemire64(
                    lanes[big], rng[big].astype(U64)
                ).astype(np.int64)
            raw64 = rng.astype(U64) == U64(_FULL64)
            if raw64.any():
                out[raw64] = low + self._next64(lanes[raw64]).astype(np.int64)
        return out

    def _lemire32(self, idx: np.ndarray, rng: np.ndarray) -> np.ndarray:
        """Lemire's bounded draw on buffered 32-bit words (rng < 2³²−1)."""
        rng_excl = rng + U64(1)
        threshold = (U64(1) << U64(32)) % rng_excl  # == (2^32 - excl) % excl
        out = np.empty(idx.shape, dtype=U64)
        pending = np.arange(idx.size)
        while pending.size:
            m = self._next32(idx[pending]) * rng_excl[pending]
            ok = (m & _LOW32) >= threshold[pending]
            out[pending[ok]] = m[ok] >> U64(32)
            pending = pending[~ok]
        return out

    def _lemire64(self, idx: np.ndarray, rng: np.ndarray) -> np.ndarray:
        """Lemire's bounded draw on raw 64-bit words (2³²−1 < rng < 2⁶⁴−1)."""
        rng_excl = rng + U64(1)
        # (2^64 - rng_excl) % rng_excl without 128-bit ints.
        threshold = (U64(0) - rng_excl) % rng_excl
        out = np.empty(idx.shape, dtype=U64)
        pending = np.arange(idx.size)
        while pending.size:
            word = self._next64(idx[pending])
            excl = rng_excl[pending]
            hi = _mulhi64(word, excl)
            ok = (word * excl) >= threshold[pending]
            out[pending[ok]] = hi[ok]
            pending = pending[~ok]
        return out


_VERIFIED: bool | None = None


def verify_replication() -> None:
    """One-time cross-check of the lane streams against NumPy itself.

    Draws a few values through :class:`LaneRngs` and through real
    ``Generator`` objects spawned the same way, raising
    ``RuntimeError`` on any mismatch.  Runs lazily on the first lane
    construction so a NumPy build whose (stability-guaranteed) stream
    ever diverged fails loudly up front — batched runs can then fall
    back to the sequential backends, whose results never depend on
    this module.
    """
    global _VERIFIED
    if _VERIFIED is True:
        return
    if _VERIFIED is False:
        raise RuntimeError(
            "batched RNG lanes disagree with numpy.random on this build; "
            "use the sequential array/generator backends instead"
        )
    _VERIFIED = True  # construct LaneRngs below without re-entering
    try:
        seeds, n = [0, 42, 2**33 + 7], 5
        lanes = LaneRngs(seeds, n)
        rngs = [
            np.random.default_rng(c)
            for s in seeds
            for c in np.random.SeedSequence(s).spawn(n)
        ]
        every = np.arange(len(rngs), dtype=np.int64)
        for low, high in [(0, 2), (1, 2000**4 + 1), (0, 3), (0, 2**32), (0, 2)]:
            got = lanes.integers(low, high, every)
            want = [int(r.integers(low, high)) for r in rngs]
            if got.tolist() != want:
                raise AssertionError(f"integers({low}, {high}): {got} != {want}")
    except Exception as exc:  # pragma: no cover - depends on numpy build
        _VERIFIED = False
        raise RuntimeError(
            "batched RNG lanes disagree with numpy.random on this build; "
            "use the sequential array/generator backends instead"
        ) from exc
