"""E4 — Theorem 4.5: (½−ε)-MWM.

Claims measured:
* ratio ≥ ½ − ε for ε ∈ {0.1, 0.05} across three weight distributions,
  on every seed;
* the iteration count matches ⌈(3/2δ)·ln(2/ε)⌉;
* rounds scale as O(log ε⁻¹ · log n) — reported per ε.
"""

from repro.analysis import format_table, print_banner
from repro.core import weighted_mwm
from repro.core.weighted_mwm import default_iterations
from repro.graphs import gnp_random
from repro.graphs.weights import (
    assign_exponential_weights,
    assign_integer_weights,
    assign_uniform_weights,
)
from repro.matching import maximum_matching_weight

from conftest import once

SEEDS = range(3)
DELTA = 0.2


def run_e4():
    rows = []
    for dist, weigh in [
        ("uniform", assign_uniform_weights),
        ("exponential", assign_exponential_weights),
        ("integer", assign_integer_weights),
    ]:
        for eps in (0.1, 0.05):
            for box in ("sequential", "interleaved"):
                worst, rounds = 1.0, 0
                for s in SEEDS:
                    g = weigh(gnp_random(30, 0.15, seed=s), seed=s)
                    m, res, iters = weighted_mwm(
                        g, eps=eps, delta=DELTA, seed=300 + s, box=box
                    )
                    opt = maximum_matching_weight(g)
                    worst = min(worst, m.weight() / opt)
                    rounds = max(rounds, res.rounds)
                rows.append(
                    [dist, eps, box, 0.5 - eps, worst,
                     default_iterations(eps, DELTA), rounds]
                )
    return rows


def test_weighted_mwm(benchmark, report):
    rows = once(benchmark, run_e4)

    def show():
        print_banner(
            "E4 / Theorem 4.5 — (½−ε)-MWM in O(log ε⁻¹ · log n) time",
            "w(M) ≥ (½−ε)·w(M*) after ⌈(3/2δ)ln(2/ε)⌉ iterations of the "
            "δ-MWM black box on (V, E, w_M)",
        )
        print(format_table(
            ["weights", "eps", "box", "guarantee", "worst ratio",
             "iterations", "max rounds"], rows
        ))
        print("\n(the interleaved box realizes the O(log ε⁻¹ · log n) "
              "round bound end-to-end; the sequential box carries the "
              "provable δ — ablation A4)")

    report(show)
    for _d, _e, _box, guarantee, worst, *_ in rows:
        assert worst >= guarantee - 1e-9
