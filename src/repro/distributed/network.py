"""The synchronous round executor.

``Network`` instantiates one generator per vertex and advances all of
them in lockstep.  Per round:

1. every live node's generator is resumed (it reads ``node.inbox``,
   computes, queues sends, then yields or returns);
2. all queued messages are validated (neighbor-only, size within the
   model bound), counted, and delivered into the recipients' inboxes
   for the next round.

The loop ends when every node's generator has returned.  Determinism:
node RNGs are spawned from a single ``SeedSequence``, and delivery
order into an inbox follows sender id, so results depend only on the
seed — never on Python iteration order.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

import numpy as np

from repro.distributed.message import Sized, bit_size
from repro.distributed.metrics import RunResult
from repro.distributed.models import LOCAL, CongestViolation, Model
from repro.distributed.node import Node
from repro.graphs.graph import Graph

NodeProgram = Callable[..., Generator[None, None, Any]]


class Network:
    """A synchronous network executing one node program on every vertex.

    Parameters
    ----------
    graph:
        The communication topology (also consulted for edge weights).
    program:
        Generator function invoked as ``program(node, **params)``.
    params:
        Extra keyword arguments passed to every node program (global
        knowledge such as n, k, ε — the paper's algorithms assume nodes
        know n and the accuracy parameter).
    seed:
        Master seed for all node RNGs.
    model:
        ``LOCAL`` (default) or ``CONGEST``; CONGEST enforces the
        per-message bit bound.
    """

    def __init__(
        self,
        graph: Graph,
        program: NodeProgram,
        params: dict[str, Any] | None = None,
        seed: int = 0,
        model: Model = LOCAL,
    ) -> None:
        self.graph = graph
        self.model = model
        self._limit = model.limit(graph.n, graph.max_degree())
        seq = np.random.SeedSequence(seed)
        children = seq.spawn(graph.n)
        self.nodes = [
            Node(v, graph, np.random.default_rng(children[v]))
            for v in range(graph.n)
        ]
        params = params or {}
        self._gens: list[Generator[None, None, Any] | None] = [
            program(self.nodes[v], **params) for v in range(graph.n)
        ]
        self.result = RunResult()

    def run(self, max_rounds: int = 1_000_000) -> RunResult:
        """Advance rounds until all programs return (or raise on budget).

        Raises
        ------
        RuntimeError
            If ``max_rounds`` elapse with live nodes — in a correct
            lockstep protocol this signals a deadlock/phase mismatch.
        CongestViolation
            In CONGEST mode, when a message exceeds the bit budget.
        """
        res = self.result
        live = sum(1 for g in self._gens if g is not None)
        neighbor_sets = [set(self.nodes[v].neighbors) for v in range(self.graph.n)]
        while live:
            if res.rounds >= max_rounds:
                raise RuntimeError(
                    f"{live} node(s) still running after {max_rounds} rounds; "
                    "lockstep protocol bug or budget too small"
                )
            # 1. Resume every live generator for this round.
            for v, gen in enumerate(self._gens):
                if gen is None:
                    continue
                node = self.nodes[v]
                node.round = res.rounds
                try:
                    next(gen)
                except StopIteration as stop:
                    if stop.value is not None:
                        node.output = stop.value
                    self._gens[v] = None
                    live -= 1
            # 2. Validate, account, and deliver all queued messages.
            pending: list[list[tuple[int, Any]]] = [[] for _ in self.nodes]
            for v, node in enumerate(self.nodes):
                if not node._outbox:
                    continue
                for dst, payload in node._outbox:
                    if dst not in neighbor_sets[v]:
                        raise ValueError(
                            f"node {v} sent to non-neighbor {dst} "
                            f"(round {res.rounds})"
                        )
                    bits = bit_size(payload)
                    if self._limit is not None and bits > self._limit:
                        raise CongestViolation(
                            f"node {v} -> {dst}: {bits}-bit message exceeds "
                            f"{self.model.name} bound of {self._limit} bits "
                            f"(round {res.rounds}, payload {payload!r})"
                        )
                    res.total_messages += 1
                    res.total_bits += bits
                    if bits > res.max_message_bits:
                        res.max_message_bits = bits
                    if isinstance(payload, Sized):
                        payload = payload.payload
                    pending[dst].append((v, payload))
                node._outbox.clear()
            for v, node in enumerate(self.nodes):
                node.inbox = pending[v]
            # A round is counted only when some node actually crossed a
            # round boundary (yielded); programs that return without
            # ever yielding use zero communication rounds.
            if live:
                res.rounds += 1
        for node in self.nodes:
            res.outputs[node.id] = node.output
        return res

    def charge_rounds(self, extra: int) -> None:
        """Add analytically charged rounds (see RunResult.charged_rounds)."""
        self.result.charged_rounds += extra
