"""S2 — CSR graph core + vectorized round engine vs the old substrate.

Three measurements, all with byte-identical outputs between legs:

1. **Round loop** (the headline): Luby MIS on ``barabasi_albert(n)``.
   The workload's real per-round message trace is recorded once, then
   replayed through the refactored loop mechanics and through the
   pre-refactor mechanics (full O(n) scans, per-run neighbor sets,
   per-message accounting — see :mod:`legacy_engine`) with no program
   execution in either, timing exactly the round loop: scans,
   validation, sizing, accounting, bucketing, delivery.  Both replays
   must reproduce the real run's message/bit counters.  End-to-end
   engine runs (``Network`` vs ``LegacyNetwork``) and rounds/sec are
   reported alongside.
2. **Staggered finish**: a heartbeat workload where node v lives
   ``(v % spread) + 1`` rounds.  The old engine re-scans all n
   generators every round; the active list makes a round O(live).
3. **Construction throughput**: ``Graph(n, edges)`` (vectorized CSR
   build) vs the old per-edge Python adjacency build, in edges/sec,
   across the scenario families.

Shape: round-loop overhead speedup ≥ 3× at n=2000 (the ISSUE 2
acceptance bar); staggered and construction speedups grow with n.

Run as a script for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_s2_engine.py --quick --out s2.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable

from repro.analysis import format_table, print_banner
from repro.baselines.luby_mis import luby_mis_program
from repro.distributed.network import Network
from repro.graphs.generators import (
    barabasi_albert,
    gnp_random,
    powerlaw_configuration,
    watts_strogatz,
)

from legacy_engine import LegacyGraph, LegacyNetwork

try:
    from conftest import once
except ImportError:  # script mode: conftest only exists for pytest runs
    once = None

FAMILIES: dict[str, Callable[[int, int], Any]] = {
    "barabasi_albert": lambda n, s: barabasi_albert(n, 2, seed=s),
    "watts_strogatz": lambda n, s: watts_strogatz(n, 4, 0.1, seed=s),
    "gnp": lambda n, s: gnp_random(n, 4.0 / n, seed=s),
    "powerlaw": lambda n, s: powerlaw_configuration(n, 2.5, seed=s),
}


def _staggered_program(node, spread: int):
    """Heartbeat: live (id % spread) + 1 rounds, then finish."""
    for _ in range((node.id % spread) + 1):
        yield
    node.finish(node.round)


def _measure_engine(engine_cls, g, program, params, seed: int, reps: int):
    """Best-of-reps *clean* run time and the RunResult."""
    run_times = []
    result = None
    for _ in range(reps):
        net = engine_cls(g, program, params=params, seed=seed)
        t0 = time.perf_counter()
        result = net.run()
        run_times.append(time.perf_counter() - t0)
    return min(run_times), result


def _record_trace(g, program, params, seed: int):
    """Execute the workload once, recording per-round outbox traffic.

    Returns ``(rounds, counters)`` where each round is
    ``(active_vertices, [(sender, outbox_entries), ...])`` exactly as
    the engines would see it.  Replaying this trace exercises the
    round loop — scans, validation, sizing, accounting, bucketing,
    delivery — with zero program execution and zero timers in the
    loop, which is what makes the engine comparison exact.
    """
    import numpy as np

    from repro.distributed.message import Sized
    from repro.distributed.node import Node

    seq = np.random.SeedSequence(seed)
    children = seq.spawn(g.n)
    nodes = [Node(v, g, np.random.default_rng(children[v])) for v in range(g.n)]
    gens = [program(nodes[v], **params) for v in range(g.n)]
    trace = []
    active = list(range(g.n))
    inboxed: list[int] = []
    while active:
        survivors = []
        for v in active:
            try:
                next(gens[v])
                survivors.append(v)
            except StopIteration:
                pass
        round_msgs = []
        pending: dict[int, list] = {}
        for v in active:
            ob = nodes[v]._outbox
            if not ob:
                continue
            round_msgs.append((v, list(ob)))
            for dst, p in ob:
                if isinstance(p, Sized):
                    p = p.payload
                if type(dst) is tuple:
                    msg = (v, p)
                    for d in dst:
                        pending.setdefault(d, []).append(msg)
                else:
                    pending.setdefault(dst, []).append((v, p))
            ob.clear()
        trace.append((active, round_msgs))
        for v in inboxed:
            if v not in pending:
                nodes[v].inbox = []
        for d, msgs in pending.items():
            nodes[d].inbox = msgs
        inboxed = list(pending)
        active = survivors
    return trace


def _replay_csr(g, trace):
    """The refactored round loop driven by a recorded trace."""
    from repro.distributed.message import Sized, bit_size

    nbr_sets = g.neighbor_sets()
    inbox_store: list[list] = [[] for _ in range(g.n)]
    inboxed: list[int] = []
    msgs = bits = maxb = 0
    t0 = time.perf_counter()
    for active, round_msgs in trace:
        by_sender = dict(round_msgs)
        pending: dict[int, list] = {}
        bits_batch: list[int] = []
        count_batch: list[int] = []
        for v in active:  # active-list scan, as Network.run does
            outbox = by_sender.get(v)
            if outbox is None:
                continue
            nbrs = nbr_sets[v]
            for dst, payload in outbox:
                if type(dst) is tuple:
                    k = len(dst)
                    if not nbrs.issuperset(dst):
                        raise ValueError("non-neighbor")
                    tp = type(payload)
                    if tp is int:
                        bits_one = 1 + (payload.bit_length() or 1) \
                            if payload >= 0 else 1 + max(1, (-payload).bit_length())
                    elif tp is str:
                        bits_one = 8 * (len(payload) or 1)
                    elif tp is Sized:
                        bits_one = payload.bits
                        payload = payload.payload
                    else:
                        bits_one = bit_size(payload)
                    bits_batch.append(bits_one)
                    count_batch.append(k)
                    msg = (v, payload)
                    for d in dst:
                        bucket = pending.get(d)
                        if bucket is None:
                            bucket = pending[d] = []
                        bucket.append(msg)
                else:
                    if dst not in nbrs:
                        raise ValueError("non-neighbor")
                    tp = type(payload)
                    if tp is int:
                        bits_one = 1 + (payload.bit_length() or 1) \
                            if payload >= 0 else 1 + max(1, (-payload).bit_length())
                    elif tp is str:
                        bits_one = 8 * (len(payload) or 1)
                    else:
                        bits_one = bit_size(payload)
                    bits_batch.append(bits_one)
                    count_batch.append(1)
                    bucket = pending.get(dst)
                    if bucket is None:
                        bucket = pending[dst] = []
                    bucket.append((v, payload))
        if bits_batch:
            import numpy as np

            ba = np.asarray(bits_batch, dtype=np.int64)
            ca = np.asarray(count_batch, dtype=np.int64)
            msgs += int(ca.sum())
            bits += int(ba @ ca)
            peak = int(ba.max())
            if peak > maxb:
                maxb = peak
        for v in inboxed:
            if v not in pending:
                inbox_store[v] = []
        for d, m in pending.items():
            inbox_store[d] = m
        inboxed = list(pending)
    return time.perf_counter() - t0, (msgs, bits, maxb)


def _replay_legacy(g, trace):
    """The pre-refactor round loop driven by the same trace."""
    from repro.distributed.message import Sized, bit_size

    n = g.n
    # Old engine: one O(n) liveness scan per round + per-run set build.
    alive_by_round = []
    for active, _ in trace:
        alive = [False] * n
        for v in active:
            alive[v] = True
        alive_by_round.append(alive)
    inbox_store: list[list] = [[] for _ in range(n)]
    msgs = bits = maxb = 0
    t0 = time.perf_counter()
    neighbor_sets = [set(g.neighbors(v)) for v in range(n)]
    for rnd, (active, round_msgs) in enumerate(trace):
        alive = alive_by_round[rnd]
        for v in range(n):  # full generator-table scan, as old run did
            if not alive[v]:
                continue
        by_sender = dict(round_msgs)
        pending: list[list] = [[] for _ in range(n)]
        for v in range(n):  # full outbox scan
            outbox = by_sender.get(v)
            if outbox is None:
                continue
            for entry, payload in outbox:
                dsts = entry if type(entry) is tuple else (entry,)
                for dst in dsts:
                    if dst not in neighbor_sets[v]:
                        raise ValueError("non-neighbor")
                    b = bit_size(payload)
                    msgs += 1
                    bits += b
                    if b > maxb:
                        maxb = b
                    p = payload.payload if isinstance(payload, Sized) else payload
                    pending[dst].append((v, p))
        for v in range(n):  # full inbox reassignment
            inbox_store[v] = pending[v]
    return time.perf_counter() - t0, (msgs, bits, maxb)


def bench_round_loop(n: int, reps: int, seed: int = 1) -> dict[str, Any]:
    """Headline comparison: Luby MIS on barabasi_albert(n)."""
    g = barabasi_albert(n, 4, seed=0)
    g.neighbor_sets()  # warm the shared graph caches for both legs
    params = {"n": g.n}
    t_new, r_new = _measure_engine(
        Network, g, luby_mis_program, params, seed, reps
    )
    t_old, r_old = _measure_engine(
        LegacyNetwork, g, luby_mis_program, params, seed, reps
    )
    assert r_new == r_old, "engines diverged on Luby MIS"
    # Round-loop isolation: replay the recorded message trace through
    # both engines' loop mechanics (no program execution in either).
    trace = _record_trace(g, luby_mis_program, params, seed)
    loop_new, acct_new = min(
        (_replay_csr(g, trace) for _ in range(reps)), key=lambda t: t[0]
    )
    loop_old, acct_old = min(
        (_replay_legacy(g, trace) for _ in range(reps)), key=lambda t: t[0]
    )
    real_acct = (r_new.total_messages, r_new.total_bits, r_new.max_message_bits)
    assert acct_new == acct_old == real_acct, "replay accounting diverged"
    return {
        "workload": f"luby_mis/barabasi_albert(m_attach=4) n={n} m={g.m}",
        "rounds": r_new.rounds,
        "messages": r_new.total_messages,
        "new": {
            "run_s": t_new,
            "round_loop_s": loop_new,
            "rounds_per_s": r_new.rounds / t_new,
        },
        "legacy": {
            "run_s": t_old,
            "round_loop_s": loop_old,
            "rounds_per_s": r_old.rounds / t_old,
        },
        "round_loop_speedup": loop_old / loop_new,
        "end_to_end_speedup": t_old / t_new,
        "identical_outputs": True,
    }


def bench_staggered(n: int, reps: int, spread: int = 64) -> dict[str, Any]:
    """Active-list stress: nodes finish at staggered rounds."""
    g = FAMILIES["gnp"](n, 3)
    g.neighbor_sets()
    params = {"spread": spread}
    t_new, r_new = _measure_engine(
        Network, g, _staggered_program, params, 0, reps
    )
    t_old, r_old = _measure_engine(
        LegacyNetwork, g, _staggered_program, params, 0, reps
    )
    assert r_new == r_old, "engines diverged on staggered heartbeat"
    return {
        "workload": f"staggered-finish n={n} spread={spread}",
        "rounds": r_new.rounds,
        "new_run_s": t_new,
        "legacy_run_s": t_old,
        "end_to_end_speedup": t_old / t_new,
    }


def bench_rounds_per_sec(n: int, reps: int) -> list[dict[str, Any]]:
    """Rounds/sec of the refactored engine across scenario families."""
    rows = []
    for name, make in FAMILIES.items():
        g = make(n, 7)
        t_run, res = _measure_engine(
            Network, g, luby_mis_program, {"n": g.n}, 2, reps
        )
        rows.append(
            {
                "family": name,
                "n": g.n,
                "m": g.m,
                "rounds": res.rounds,
                "run_s": t_run,
                "rounds_per_s": res.rounds / t_run,
            }
        )
    return rows


def bench_construction(n: int, reps: int) -> list[dict[str, Any]]:
    """Graph-construction throughput, CSR vs legacy, per family."""
    from repro.graphs.graph import Graph

    rows = []
    for name, make in FAMILIES.items():
        edges = make(n, 11).edges()
        nv = n
        t_new = min(
            _time_once(lambda: Graph(nv, edges)) for _ in range(reps)
        )
        t_old = min(
            _time_once(lambda: LegacyGraph(nv, edges)) for _ in range(reps)
        )
        rows.append(
            {
                "family": name,
                "edges": len(edges),
                "csr_s": t_new,
                "legacy_s": t_old,
                "csr_edges_per_s": len(edges) / t_new,
                "legacy_edges_per_s": len(edges) / t_old,
                "speedup": t_old / t_new,
            }
        )
    return rows


def _time_once(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def run_s2(n: int = 2000, reps: int = 5) -> dict[str, Any]:
    return {
        "n": n,
        "round_loop": bench_round_loop(n, reps),
        "staggered": bench_staggered(n, reps),
        "rounds_per_sec": bench_rounds_per_sec(max(n // 2, 100), max(reps // 2, 1)),
        "construction": bench_construction(n, reps),
    }


def show(data: dict[str, Any]) -> None:
    rl = data["round_loop"]
    print_banner(
        "S2 — CSR core + vectorized round engine vs pre-refactor substrate",
        "identical outputs; only the engine constants change",
    )
    print(f"\n{rl['workload']}: {rl['rounds']} rounds, "
          f"{rl['messages']} messages")
    print(format_table(
        ["engine", "run s", "round-loop s", "rounds/s"],
        [
            ["csr", rl["new"]["run_s"],
             rl["new"]["round_loop_s"], rl["new"]["rounds_per_s"]],
            ["legacy", rl["legacy"]["run_s"],
             rl["legacy"]["round_loop_s"], rl["legacy"]["rounds_per_s"]],
        ],
    ))
    print(f"\nround-loop speedup {rl['round_loop_speedup']:.2f}x "
          f"(end-to-end {rl['end_to_end_speedup']:.2f}x)")
    st = data["staggered"]
    print(f"{st['workload']}: {st['end_to_end_speedup']:.2f}x end-to-end")
    print("\nrounds/sec across families (csr engine):")
    print(format_table(
        ["family", "n", "m", "rounds", "rounds/s"],
        [[r["family"], r["n"], r["m"], r["rounds"], r["rounds_per_s"]]
         for r in data["rounds_per_sec"]],
    ))
    print("\nconstruction throughput (edges/sec):")
    print(format_table(
        ["family", "edges", "csr e/s", "legacy e/s", "speedup"],
        [[r["family"], r["edges"], r["csr_edges_per_s"],
          r["legacy_edges_per_s"], r["speedup"]]
         for r in data["construction"]],
    ))


def test_engine_speedup(benchmark, report):
    data = once(benchmark, run_s2)
    report(show, data)
    rl = data["round_loop"]
    assert rl["identical_outputs"]
    # Acceptance bar is 3x; assert with headroom for noisy CI boxes.
    assert rl["round_loop_speedup"] >= 2.0, rl
    assert data["staggered"]["end_to_end_speedup"] >= 1.5, data["staggered"]
    for row in data["construction"]:
        assert row["speedup"] >= 1.0, row


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=2000, help="graph size")
    ap.add_argument("--reps", type=int, default=5, help="best-of reps")
    ap.add_argument("--quick", action="store_true",
                    help="small size for CI smoke (n=400, reps=2)")
    ap.add_argument("--out", type=str, default=None,
                    help="write the JSON report here")
    args = ap.parse_args(argv)
    n, reps = (400, 2) if args.quick else (args.n, args.reps)
    data = run_s2(n=n, reps=reps)
    show(data)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(data, fh, indent=2)
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
