"""Tests for Section 4 (Algorithm 5, Theorem 4.5) — weighted matching."""

import pytest
from hypothesis import given, settings

from repro.core import (
    apply_wraps,
    derived_weights,
    weighted_mwm,
    weighted_mwm_reference,
    wrap_path,
)
from repro.core.weighted_mwm import default_iterations, wrap_gain
from repro.graphs import Graph, gnp_random, path_graph
from repro.graphs.weights import assign_exponential_weights, assign_uniform_weights
from repro.matching import Matching, maximum_matching_weight

from tests.conftest import graphs


@pytest.fixture
def weighted_path():
    """0—1—2—3 with weights 4, 2, 5; M = {(1,2)}."""
    g = Graph(4, [(0, 1), (1, 2), (2, 3)], [4.0, 2.0, 5.0])
    return g, Matching(g, [(1, 2)])


class TestWrap:
    def test_both_mates_exist(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [4.0, 2.0, 5.0])
        m = Matching(g, [(0, 1), (2, 3)])
        assert wrap_path(m, 1, 2) == [(0, 1), (1, 2), (2, 3)]

    def test_one_free_endpoint(self, weighted_path):
        g, m = weighted_path
        assert wrap_path(m, 0, 1) == [(0, 1), (1, 2)]

    def test_both_free(self):
        g = Graph(2, [(0, 1)], [3.0])
        m = Matching(g)
        assert wrap_path(m, 0, 1) == [(0, 1)]

    def test_matched_edge_rejected(self, weighted_path):
        g, m = weighted_path
        with pytest.raises(ValueError):
            wrap_path(m, 1, 2)

    def test_gain_formula(self, weighted_path):
        g, m = weighted_path
        assert wrap_gain(g, m, 0, 1) == 4.0 - 2.0
        assert wrap_gain(g, m, 2, 3) == 5.0 - 2.0


class TestDerivedWeights:
    def test_matched_edges_zero(self, weighted_path):
        g, m = weighted_path
        wm = derived_weights(g, m)
        assert wm[g.edge_id(1, 2)] == 0.0

    def test_values(self, weighted_path):
        g, m = weighted_path
        wm = derived_weights(g, m)
        assert wm[g.edge_id(0, 1)] == 2.0
        assert wm[g.edge_id(2, 3)] == 3.0

    def test_negative_gains_possible(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [1.0, 9.0, 1.0])
        m = Matching(g, [(1, 2)])
        wm = derived_weights(g, m)
        assert wm[g.edge_id(0, 1)] == -8.0

    def test_empty_matching_is_original_weights(self):
        g = assign_uniform_weights(gnp_random(10, 0.4, seed=1), seed=1)
        wm = derived_weights(g, Matching(g))
        for eid in g.edge_ids():
            assert wm[eid] == g.edge_weight(eid)


class TestApplyWraps:
    def test_simple_swap(self, weighted_path):
        g, m = weighted_path
        m2 = apply_wraps(m, [(0, 1)])
        assert m2.edges() == [(0, 1)]

    def test_overlapping_wraps_share_removed_edge(self):
        """The Figure 2 situation: both wraps evict the same M edge."""
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [7.0, 2.0, 7.0])
        m = Matching(g, [(1, 2)])
        m2 = apply_wraps(m, [(0, 1), (2, 3)])
        assert m2.edges() == [(0, 1), (2, 3)]

    def test_lemma_41_inequality(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [7.0, 2.0, 7.0])
        m = Matching(g, [(1, 2)])
        wm = derived_weights(g, m)
        mprime = [(0, 1), (2, 3)]
        gain = sum(wm[g.edge_id(u, v)] for u, v in mprime)
        m2 = apply_wraps(m, mprime)
        assert m2.weight() >= m.weight() + gain
        assert m2.weight() == 14.0 and m.weight() + gain == 12.0  # strict

    def test_nonmatching_mprime_rejected(self):
        g = path_graph(3).with_weights([1.0, 1.0])
        m = Matching(g)
        with pytest.raises(ValueError, match="not a matching"):
            apply_wraps(m, [(0, 1), (1, 2)])

    def test_mprime_overlapping_m_rejected(self, weighted_path):
        g, m = weighted_path
        with pytest.raises(ValueError, match="disjoint"):
            apply_wraps(m, [(1, 2)])

    @given(graphs(max_n=10, weighted=True))
    @settings(max_examples=50, deadline=None)
    def test_lemma_41_property(self, g):
        """w(M ⊕ ⋃wrap(e)) ≥ w(M) + w_M(M′) on random instances."""
        from repro.matching.greedy import greedy_mwm

        m = greedy_mwm(g)  # some matching
        wm = derived_weights(g, m)
        keep = [e for e in g.edge_ids() if wm[e] > 0]
        if not keep:
            return
        gp = g.subgraph(keep).with_weights([wm[e] for e in keep])
        mprime = greedy_mwm(gp)
        gain = sum(wm[g.edge_id(u, v)] for u, v in mprime.edges())
        m2 = apply_wraps(m, mprime.edges())
        assert m2.weight() >= m.weight() + gain - 1e-9


class TestAlgorithm5:
    def test_iteration_formula(self):
        # (3/(2*0.2)) * ln(2/0.1) = 7.5 * ln 20 ≈ 22.47 -> 23
        assert default_iterations(0.1, 0.2) == 23

    @pytest.mark.parametrize("seed", range(3))
    def test_half_minus_eps_guarantee(self, seed):
        g = assign_uniform_weights(gnp_random(35, 0.15, seed=seed), seed=seed)
        m, _, _ = weighted_mwm(g, eps=0.1, seed=seed, check_lemma41=True)
        opt = maximum_matching_weight(g)
        assert m.weight() >= (0.5 - 0.1) * opt - 1e-9

    def test_exponential_weights(self):
        g = assign_exponential_weights(gnp_random(30, 0.15, seed=4), seed=4)
        m, _, _ = weighted_mwm(g, eps=0.1, seed=4)
        assert m.weight() >= 0.4 * maximum_matching_weight(g) - 1e-9

    def test_adaptive_stop_at_local_optimum(self):
        g = assign_uniform_weights(gnp_random(25, 0.2, seed=5), seed=5)
        m, _, it = weighted_mwm(g, eps=0.1, seed=5, adaptive=True)
        wm = derived_weights(g, m)
        # adaptive stops exactly when no positive derived weight remains
        # OR the iteration budget ran out first.
        if it < default_iterations(0.1, 0.2):
            assert all(w <= 1e-12 for w in wm)

    def test_unweighted_rejected(self):
        with pytest.raises(ValueError):
            weighted_mwm(path_graph(4))

    def test_invalid_eps(self):
        g = path_graph(2).with_weights([1.0])
        with pytest.raises(ValueError):
            weighted_mwm(g, eps=0.0)

    def test_determinism(self):
        g = assign_uniform_weights(gnp_random(20, 0.2, seed=6), seed=6)
        a, _, _ = weighted_mwm(g, eps=0.2, seed=7)
        b, _, _ = weighted_mwm(g, eps=0.2, seed=7)
        assert a == b

    def test_rounds_accounted(self):
        g = assign_uniform_weights(gnp_random(20, 0.2, seed=8), seed=8)
        _, res, it = weighted_mwm(g, eps=0.2, seed=8)
        assert res.rounds > 0 and res.charged_rounds >= it

    def test_interleaved_box_same_guarantee_fewer_rounds(self):
        g = assign_uniform_weights(gnp_random(30, 0.15, seed=9), seed=9)
        opt = maximum_matching_weight(g)
        m_seq, res_seq, _ = weighted_mwm(g, eps=0.1, seed=9)
        m_int, res_int, _ = weighted_mwm(g, eps=0.1, seed=9, box="interleaved")
        assert m_seq.weight() >= 0.4 * opt - 1e-9
        assert m_int.weight() >= 0.4 * opt - 1e-9
        assert res_int.rounds < res_seq.rounds / 5

    def test_unknown_box_rejected(self):
        g = assign_uniform_weights(gnp_random(10, 0.3, seed=10), seed=10)
        with pytest.raises(ValueError, match="unknown box"):
            weighted_mwm(g, box="bogus")


class TestReference:
    @pytest.mark.parametrize("seed", range(3))
    def test_reference_guarantee(self, seed):
        g = assign_uniform_weights(gnp_random(30, 0.15, seed=seed + 20), seed=seed)
        m, _ = weighted_mwm_reference(g, eps=0.1)
        opt = maximum_matching_weight(g)
        assert m.weight() >= 0.4 * opt - 1e-9

    def test_monotone_weight_growth(self):
        """Each Algorithm 5 iteration never decreases w(M) (Lemma 4.1)."""
        g = assign_uniform_weights(gnp_random(25, 0.2, seed=9), seed=9)
        prev = 0.0
        for iters in (1, 2, 4, 8):
            m, _ = weighted_mwm_reference(g, iterations=iters)
            assert m.weight() >= prev - 1e-9
            prev = m.weight()
