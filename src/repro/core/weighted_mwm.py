"""Section 4 — (½−ε)-MWM via the derived weight function (Theorem 4.5).

Machinery (all per the paper's Preliminaries of Section 4):

* ``wrap(r, s)`` — for an unmatched edge, the length-≤3 path
  ``(M(r), r), (r, s), (s, M(s))`` (missing ends omitted);
* ``g(P) = w(M ⊕ P) − w(M)`` — the gain of applying P;
* the derived weights ``w_M(u, v) = g(wrap(u, v))`` for unmatched
  edges and 0 on matched ones — the gain of adding (u,v) and evicting
  its endpoints' matched edges.

Algorithm 5: repeat ``(3/2δ)·ln(2/ε)`` times — run a black-box δ-MWM
on (V, E, w_M) to get M′, then augment M by all wraps of M′ edges.
Lemma 4.1: the result is a matching of weight ≥ w(M) + w_M(M′) (wraps
may overlap only on removed M edges, which only helps).  With Lemma
4.2 (k=1: 3-augmentations recover ≥ ⅔ of the gap to ½·w(M*)), each
iteration multiplies the gap to ½·w(M*) by (1 − 2δ/3), giving
w(M) ≥ (½−ε)·w(M*) after the stated number of iterations (Lemma 4.3).

The black box is the weight-class algorithm of
:mod:`repro.baselines.lps_mwm` (the paper plugs in [18] with δ = 1/5).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.baselines.lps_mwm import (
    _lps_params,
    _weight_class_array,
    lps_mwm,
    lps_mwm_array_batched,
)
from repro.distributed.backends import BatchedArrayBackend
from repro.distributed.network import RunResult
from repro.graphs.graph import Graph
from repro.matching.greedy import greedy_mwm
from repro.matching.matching import Matching

#: derived weights below this are treated as non-positive (float noise guard)
_EPS_W = 1e-12


def wrap_path(m: Matching, r: int, s: int) -> list[tuple[int, int]]:
    """``wrap(r, s)``: the edges (M(r),r), (r,s), (s,M(s)) that exist.

    Defined for unmatched edges (r, s) w.r.t. the matching ``m``.
    """
    if m.is_matched_edge(r, s):
        raise ValueError(f"wrap is defined for edges outside M, got ({r},{s})")
    edges = []
    if m.mate(r) != -1:
        edges.append((m.mate(r), r))
    edges.append((r, s))
    if m.mate(s) != -1:
        edges.append((s, m.mate(s)))
    return edges


def wrap_gain(g: Graph, m: Matching, r: int, s: int) -> float:
    """``g(wrap(r, s))`` = w(r,s) − w(r,M(r)) − w(s,M(s))."""
    gain = g.weight(r, s)
    if m.mate(r) != -1:
        gain -= g.weight(r, m.mate(r))
    if m.mate(s) != -1:
        gain -= g.weight(s, m.mate(s))
    return gain


def derived_weights_array(g: Graph, mate: np.ndarray) -> np.ndarray:
    """The w_M kernel: mate array in, per-edge derived weights out.

    Fully vectorized — no per-edge or per-matched-edge Python loop:
    the matched-edge mask is ``mate[lo] == hi``, the per-vertex
    matched weight ``vw`` is one scatter off that mask, and
    ``w_M = w − vw[lo] − vw[hi]`` (0 on matched edges) is the same
    scalar arithmetic as :func:`wrap_gain` for all edges at once.

    ``mate`` may carry a leading seed axis (``(num_seeds, n)``), in
    which case the result is ``(num_seeds, m)`` — the batched form
    :func:`weighted_mwm_batched` iterates on.
    """
    mate = np.asarray(mate, dtype=np.int64)
    lo, hi = g.endpoints_array()
    w = g.weights_array()
    if mate.ndim == 1:
        matched = mate[lo] == hi
        vw = np.zeros(g.n, dtype=np.float64)
        vw[lo[matched]] = w[matched]
        vw[hi[matched]] = w[matched]
        wm = w - vw[lo] - vw[hi]
        wm[matched] = 0.0
        return wm
    num_seeds = mate.shape[0]
    matched = mate[:, lo] == hi
    vw = np.zeros((num_seeds, g.n), dtype=np.float64)
    rows, eidx = np.nonzero(matched)
    vw[rows, lo[eidx]] = w[eidx]
    vw[rows, hi[eidx]] = w[eidx]
    wm = w - vw[:, lo] - vw[:, hi]
    wm[matched] = 0.0
    return wm


def derived_weights(g: Graph, m: Matching) -> list[float]:
    """The full w_M vector, indexed by edge id (0 on matched edges).

    A thin list-returning view over :func:`derived_weights_array` (the
    same float arithmetic, so values are bit-identical to the historic
    per-matched-edge accumulation).
    """
    return derived_weights_array(g, m.mate_array()).tolist()


def apply_wraps(m: Matching, mprime_edges: list[tuple[int, int]]) -> Matching:
    """Line 5 of Algorithm 5: ``M ← M ⊕ ⋃_{e∈M′} wrap(e)``.

    ``mprime_edges`` must form a matching disjoint from M.  Wraps may
    share *removed* M edges (both endpoints of an M edge can serve
    different M′ edges) — handled by collecting removals as a set, as
    in Lemma 4.1's argument.
    """
    new = m.copy()
    to_remove: set[tuple[int, int]] = set()
    seen: set[int] = set()
    for r, s in mprime_edges:
        if r in seen or s in seen:
            raise ValueError(f"M' is not a matching: vertex reuse at ({r},{s})")
        seen.update((r, s))
        if m.is_matched_edge(r, s):
            raise ValueError(f"M' must be disjoint from M, got ({r},{s})")
        for v in (r, s):
            mv = m.mate(v)
            if mv != -1:
                to_remove.add((v, mv) if v < mv else (mv, v))
    for a, b in to_remove:
        new.remove(a, b)
    for r, s in mprime_edges:
        new.add(r, s)
    return new


def apply_wraps_array(
    m: Matching, mprime_edges: list[tuple[int, int]]
) -> Matching:
    """Bulk twin of :func:`apply_wraps`: wrap-augmentation as mate surgery.

    The symmetric difference ``M ⊕ ⋃ wrap(e)`` never walks paths: every
    wrap evicts its endpoints' matched edges and installs its own, so
    on the mate array it is two vectorized writes — clear the old
    partners of all wrap endpoints, then point the endpoints at each
    other.  Validation (M′ is a matching disjoint from M; results are
    graph edges) is whole-array, raising the same ``ValueError``s as
    the scalar form.
    """
    mate = m.mate_array()
    if mprime_edges:
        pairs = np.asarray(mprime_edges, dtype=np.int64).reshape(-1, 2)
        r, s = pairs[:, 0], pairs[:, 1]
        ends = np.concatenate((r, s))
        if np.unique(ends).size != ends.size:
            raise ValueError("M' is not a matching: vertex reuse")
        clash = mate[r] == s
        if clash.any():
            k = int(np.flatnonzero(clash)[0])
            raise ValueError(
                f"M' must be disjoint from M, got ({int(r[k])},{int(s[k])})"
            )
        old = mate[ends]
        mate[old[old != -1]] = -1
        mate[r] = s
        mate[s] = r
    return Matching.from_mate_array(m.graph, mate)


def default_iterations(eps: float, delta: float) -> int:
    """Line 2 of Algorithm 5: ⌈(3/2δ)·ln(2/ε)⌉ iterations."""
    return math.ceil(3.0 / (2.0 * delta) * math.log(2.0 / eps))


def weighted_mwm(
    g: Graph,
    eps: float = 0.1,
    delta: float = 0.2,
    seed: int = 0,
    iterations: int | None = None,
    adaptive: bool = False,
    check_lemma41: bool = False,
    box: str = "sequential",
    max_rounds: int = 10_000_000,
    backend: str = "generator",
) -> tuple[Matching, RunResult, int]:
    """Theorem 4.5: distributed (½−ε)-MWM.

    Parameters
    ----------
    eps:
        Target slack (result ≥ (½−ε)·w(M*) w.h.p.).
    delta:
        Guarantee of the black box (the paper uses δ = 1/5 for [18];
        our weight-class box achieves ¼−ε′, so 1/5 is conservative).
    adaptive:
        Stop early when no edge has positive derived weight — then no
        3-augmentation can improve M and further iterations are no-ops.
    check_lemma41:
        Assert w(M_new) ≥ w(M) + w_M(M′) each iteration (debug).
    box:
        δ-MWM black box: ``"sequential"`` (provable quality,
        O(log W · log n) rounds) or ``"interleaved"`` (the O(log n)
        variant of [18]'s interleaving — bench A4 compares them).
    backend:
        Execution engine for the black box (``"generator"`` or
        ``"array"``); the array path also applies the wraps as bulk
        mate surgery (:func:`apply_wraps_array`).  Results are
        seed-identical either way.

    Returns ``(matching, metrics, iterations_executed)``.
    """
    if box not in ("sequential", "interleaved"):
        raise ValueError(f"unknown box {box!r}")
    if not g.weighted:
        raise ValueError("weighted_mwm needs a weighted graph")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    if iterations is None:
        iterations = default_iterations(eps, delta)
    seq = np.random.SeedSequence(seed)
    m = Matching(g)
    total = RunResult()
    it = 0
    for it in range(1, iterations + 1):
        wm = derived_weights_array(g, m.mate_array())
        # One broadcast round lets both endpoints of every edge compute
        # w_M locally (each node announces its matched edge's weight).
        total.charged_rounds += 1
        total.total_messages += 2 * g.m
        keep = np.flatnonzero(wm > _EPS_W)
        if keep.size == 0:
            if adaptive:
                it -= 1
                break
            continue
        gprime = g.subgraph(keep).with_weights(wm[keep])
        box_seed = int(seq.spawn(1)[0].generate_state(1)[0])
        if box == "interleaved":
            from repro.baselines.lps_interleaved import lps_interleaved_mwm

            mprime, res = lps_interleaved_mwm(
                gprime, seed=box_seed, max_rounds=max_rounds, backend=backend
            )
        else:
            mprime, res = lps_mwm(
                gprime, seed=box_seed, max_rounds=max_rounds, backend=backend
            )
        total = total.merge(res)
        gain_lb = sum(float(wm[g.edge_id(u, v)]) for u, v in mprime.edges())
        old_weight = m.weight()
        if backend == "array":
            m = apply_wraps_array(m, mprime.edges())
        else:
            m = apply_wraps(m, mprime.edges())
        # Applying the wraps is 2 more rounds (evict mates, set new).
        total.charged_rounds += 2
        if check_lemma41 and m.weight() < old_weight + gain_lb - 1e-9:
            raise AssertionError(
                f"Lemma 4.1 violated: {m.weight()} < {old_weight} + {gain_lb}"
            )
    total.outputs = {v: m.mate(v) for v in range(g.n)}
    return m, total, it


def weighted_mwm_array(
    g: Graph, **kwargs: object
) -> tuple[Matching, RunResult, int]:
    """Algorithm 5 with every stage vectorized (ISSUE 5's tentpole).

    ``weighted_mwm(..., backend="array")`` under a porting-convention
    name: the derived-weights kernel, the positive-edge selection, the
    black box (as an array program), and the wrap-augmentation all run
    as array code, and the result is byte-identical to the generator
    pipeline from the same seed.
    """
    kwargs.pop("backend", None)
    return weighted_mwm(g, backend="array", **kwargs)  # type: ignore[arg-type]


def weighted_mwm_batched(
    g: Graph,
    seeds: Sequence[int],
    eps: float = 0.1,
    delta: float = 0.2,
    iterations: int | None = None,
    adaptive: bool = False,
    max_rounds: int = 10_000_000,
) -> list[tuple[Matching, RunResult, int]]:
    """Seed-axis batched Algorithm 5: one pipeline run, many seeds.

    Per iteration every live lane computes its derived weights from the
    ``(num_seeds, n)`` mate state in one kernel call, and all lanes'
    black-box calls execute as a *single*
    :class:`~repro.distributed.backends.BatchedArrayBackend` run of
    :func:`~repro.baselines.lps_mwm.lps_mwm_array_batched` over the
    shared CSR — each lane masked to its own derived-weight subgraph
    through per-lane half-edge classes and broadcast degrees.  Lanes
    whose derived weights are all non-positive skip the box exactly as
    the scalar loop does (and stop outright under ``adaptive``).

    Returns one ``(matching, metrics, iterations_executed)`` triple per
    seed, byte-identical to ``[weighted_mwm(g, seed=s, ...) for s in
    seeds]``.  Only the ``"sequential"`` box is supported (the
    interleaved variant has no batched twin).
    """
    if not g.weighted:
        raise ValueError("weighted_mwm_batched needs a weighted graph")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    if iterations is None:
        iterations = default_iterations(eps, delta)
    num_seeds = len(seeds)
    n = g.n
    seqs = [np.random.SeedSequence(int(s)) for s in seeds]
    mate = np.full((num_seeds, n), -1, dtype=np.int64)
    totals = [RunResult() for _ in seeds]
    its = np.zeros(num_seeds, dtype=np.int64)
    running = np.ones(num_seeds, dtype=bool)
    indptr, _, eids = g.adjacency_arrays()
    num_classes = phases_per_class = 0
    if g.m:  # loop-invariant box parameters (edgeless graphs never box)
        box_params = _lps_params(g, None, None)
        num_classes = int(box_params["num_classes"])
        phases_per_class = int(box_params["phases_per_class"])
    for it in range(1, iterations + 1):
        act = np.flatnonzero(running)
        if act.size == 0:
            break
        wm = derived_weights_array(g, mate[act])
        for s in act.tolist():
            totals[s].charged_rounds += 1
            totals[s].total_messages += 2 * g.m
        its[act] = it
        pos = wm > _EPS_W
        has_gain = pos.any(axis=1)
        if adaptive:
            stopped = act[~has_gain]
            its[stopped] = it - 1
            running[stopped] = False
        if not has_gain.any():
            continue
        box_rows = np.flatnonzero(has_gain)  # rows of wm / act
        box_lanes = act[box_rows]  # global seed indices
        # Spawn box seeds only for lanes that actually run the box —
        # the scalar loop spawns after its empty-keep check.
        box_seeds = [
            int(seqs[s].spawn(1)[0].generate_state(1)[0])
            for s in box_lanes.tolist()
        ]
        wm_box = wm[box_rows]
        pos_box = pos[box_rows]
        wmax = np.where(pos_box, wm_box, -np.inf).max(axis=1)
        # Per-lane masked box: classes from each lane's derived
        # weights, sentinel num_classes on absent (non-positive) edges;
        # broadcast degrees count the lane's present edges.
        wm_he = wm_box[:, eids]
        present = pos_box[:, eids]
        safe = np.where(present, wm_he, wmax[:, None])
        he_cls = np.where(
            present, _weight_class_array(safe, wmax[:, None]), num_classes
        )
        csum = np.concatenate(
            [
                np.zeros((box_rows.size, 1), dtype=np.int64),
                np.cumsum(present, axis=1, dtype=np.int64),
            ],
            axis=1,
        )
        lane_degrees = csum[:, indptr[1:]] - csum[:, indptr[:-1]]
        net = BatchedArrayBackend(
            g,
            lps_mwm_array_batched,
            params={
                "n": n,
                "wmax": wmax,
                "num_classes": num_classes,
                "phases_per_class": phases_per_class,
                "he_cls": he_cls,
                "lane_degrees": lane_degrees,
            },
            seeds=box_seeds,
        )
        results = net.run(max_rounds=max_rounds)
        pmat = np.full((box_rows.size, n), -1, dtype=np.int64)
        for row, res in enumerate(results):
            totals[int(box_lanes[row])] = totals[int(box_lanes[row])].merge(res)
            totals[int(box_lanes[row])].charged_rounds += 2
            for v, out in res.outputs.items():
                pmat[row, v] = out
        # Validate the boxes' matchings (symmetry), as
        # ``matching_from_mates`` does on the scalar path.
        rows, cols = np.nonzero(pmat != -1)
        partners = pmat[rows, cols]
        if (pmat[rows, partners] != cols).any():
            raise ValueError("asymmetric mates in black-box output")
        # Bulk wrap-augmentation, every lane at once: evict the wrap
        # endpoints' old partners, then install the M' edges.
        rr, vv = np.nonzero(pmat > np.arange(n))
        uu = pmat[rr, vv]
        gl = box_lanes[rr]
        if (mate[gl, vv] == uu).any():
            raise ValueError("M' must be disjoint from M")
        flat = mate.reshape(-1)
        for end in (vv, uu):
            old = flat[gl * n + end]
            keep_old = old != -1
            flat[gl[keep_old] * n + old[keep_old]] = -1
        flat[gl * n + vv] = uu
        flat[gl * n + uu] = vv
    out = []
    for s in range(num_seeds):
        totals[s].outputs = {v: int(mate[s, v]) for v in range(n)}
        out.append(
            (Matching.from_mate_array(g, mate[s]), totals[s], int(its[s]))
        )
    return out


def weighted_mwm_reference(
    g: Graph,
    eps: float = 0.1,
    delta: float = 0.5,
    iterations: int | None = None,
    black_box: Callable[[Graph], Matching] = greedy_mwm,
) -> tuple[Matching, int]:
    """Centralized Algorithm 5 with a sequential black box.

    Default box: heaviest-edge-first greedy (an exact ½-MWM, so
    δ = ½).  Used to cross-check the distributed pipeline and in the
    black-box ablation.
    """
    if not g.weighted:
        raise ValueError("weighted_mwm_reference needs a weighted graph")
    if iterations is None:
        iterations = default_iterations(eps, delta)
    m = Matching(g)
    it = 0
    for it in range(1, iterations + 1):
        wm = derived_weights(g, m)
        keep = [eid for eid, w in enumerate(wm) if w > _EPS_W]
        if not keep:
            it -= 1
            break
        gprime = g.subgraph(keep).with_weights([wm[e] for e in keep])
        mprime = black_box(gprime)
        m = apply_wraps(m, mprime.edges())
    return m, it
