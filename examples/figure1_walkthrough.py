#!/usr/bin/env python3
"""Figure 1, annotated: watch Algorithm 3 count augmenting paths.

Runs the distributed counting protocol (Stage A of Section 3.2) on the
reconstructed Figure-1 instance and prints, layer by layer, what each
node received — the numbers that appear next to the nodes in the
paper's figure — then cross-checks them against brute-force
enumeration of augmenting paths.
"""

from repro.core import count_augmenting_paths
from repro.core.figures import figure1_instance
from repro.matching import Matching, find_augmenting_paths_upto

NAMES = {
    0: "a1", 1: "a2",          # free X (top layer)
    2: "b1", 3: "b2", 4: "b3",  # matched Y
    5: "c1", 6: "c2", 7: "c3",  # matched X
    8: "d1", 9: "d2",          # free Y (leaders)
}


def main() -> None:
    g, xside, mates, expected = figure1_instance()
    print(__doc__)
    print("topology (X layers hollow, Y layers filled in the figure):")
    print("  free X   : a1 a2          (send 1 to all neighbors at round 0)")
    print("  matched Y: b1 b2 b3       (sum arrivals, forward to mate)")
    print("  matched X: c1 c2 c3       (forward mate's sum to non-mates)")
    print("  free Y   : d1 d2          (leaders: sums = #augmenting paths)\n")

    counts, res = count_augmenting_paths(g, xside, mates, ell=3)
    by_layer: dict[int, list[str]] = {}
    for v, (d, n_v, contrib, leader) in sorted(counts.items()):
        if d == -1:
            continue
        pieces = " + ".join(
            f"{c}(from {NAMES[src]})" for src, c in contrib
        )
        tag = "  <- LEADER" if leader else ""
        by_layer.setdefault(d, []).append(
            f"  {NAMES[v]}: n_v = {pieces} = {n_v}{tag}"
        )
    for d in sorted(by_layer):
        print(f"round {d} (distance d(v) = {d}):")
        print("\n".join(by_layer[d]))

    m = Matching(g, [(v, mates[v]) for v in range(g.n) if v < mates[v]])
    paths = find_augmenting_paths_upto(g, m, 3)
    print(f"\nbrute-force check: {len(paths)} augmenting paths of length 3:")
    for p in paths:
        print("  " + " - ".join(NAMES[v] for v in p))
    for leader in (8, 9):
        ending = sum(1 for p in paths if leader in (p[0], p[-1]))
        got = counts[leader][1]
        status = "OK" if ending == got else "MISMATCH"
        print(f"  {NAMES[leader]}: counted {got}, enumerated {ending}  [{status}]")
    print(f"\nprotocol cost: {res.rounds} rounds, "
          f"max message {res.max_message_bits} bits")


if __name__ == "__main__":
    main()
