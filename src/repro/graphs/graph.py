"""Undirected graph data structure used throughout the reproduction.

The paper (Section 2) works with an undirected graph ``G = (V, E)``,
optionally weighted by ``w : E -> R+``.  Vertices are integers
``0 .. n-1`` and edges carry stable integer ids ``0 .. m-1`` so that
algorithms can index per-edge state with plain lists (this matters for
Algorithm 3, whose per-node counters ``c_v[i]`` are indexed by incident
edge).

Storage is an immutable CSR (compressed sparse row) core built once at
construction with vectorized NumPy passes:

* ``indptr`` — ``int64[n+1]``; vertex ``v``'s incident half-edges live
  at positions ``indptr[v]:indptr[v+1]``;
* ``indices`` — ``int64[2m]``; the neighbor at each half-edge slot;
* ``eids`` — ``int64[2m]``; the edge id at each half-edge slot;
* ``weights`` — ``float64[m]`` or ``None`` (unweighted).

**Port-numbering invariant.**  Within vertex ``v``'s CSR slice, half-
edges appear in *edge-insertion order* — the position of a half-edge in
the slice is the "port number" of that edge at ``v``, exactly as in the
distributed model of Section 2 (Algorithm 3 indexes its counter array
by port).  The vectorized build preserves this with a stable argsort of
the interleaved endpoint array.  Since the backend refactors (ISSUEs
3–4) the invariant is doubly load-bearing: the array backends' CSR
scatter/gather reductions (``ArrayContext.masked_degrees`` /
``neighbor_max`` and their batched twins) read "what my neighbors sent"
straight off these slices, so reordering them would silently corrupt
every array program.

Topology is immutable after construction; weights may be replaced
wholesale via :meth:`Graph.with_weights` (used by Algorithm 5, which
re-weights the same topology each iteration with the derived weight
function ``w_M``).

Scalar accessors (``neighbors``, ``incident``, ``edge_id``, …) are
backed by lazily built caches so repeated queries stay cheap; bulk
accessors (``degrees``, ``endpoints_array``, ``weights_array``,
``incident_view``, ``sorted_neighbors``) expose the arrays directly for
vectorized algorithm code.  All returned array views are read-only.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

_EMPTY_EDGES = np.empty((0, 2), dtype=np.int64)


def _as_edge_array(edges: object) -> np.ndarray:
    """Normalize an edge iterable / array to an ``(m, 2) int64`` array."""
    if isinstance(edges, np.ndarray):
        arr = edges
        if arr.size == 0:
            return _EMPTY_EDGES
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"edge array must have shape (m, 2), got {arr.shape}")
    else:
        edges = list(edges)
        if not edges:
            return _EMPTY_EDGES
        arr = np.asarray(edges)
        if arr.ndim != 2 or arr.shape[-1] != 2:
            raise ValueError("edges must be (u, v) pairs")
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(
            f"edge endpoints must be integers, got dtype {arr.dtype}"
        )
    return arr.astype(np.int64, copy=False)


class Graph:
    """An undirected graph with integer vertices and stable edge ids.

    Parameters
    ----------
    n:
        Number of vertices; vertices are ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs, or an ``(m, 2)`` integer array.
        Self-loops and duplicate edges are rejected.
    weights:
        Optional sequence (or array) of positive edge weights, aligned
        with ``edges``.  ``None`` means the graph is unweighted (all
        queries through :meth:`weight` return 1.0).
    """

    __slots__ = (
        "n",
        "m",
        "_indptr",
        "_indices",
        "_eids",
        "_weights",
        "_lo",
        "_hi",
        "_edges_list",
        "_eid_map",
        "_nbr_tuples",
        "_inc_tuples",
        "_nbr_sets",
        "_sorted_indices",
        "_sorted_eids",
        "_max_degree",
        "_unit_weights",
    )

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]] | np.ndarray = (),
        weights: Sequence[float] | np.ndarray | None = None,
    ) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be nonnegative, got {n}")
        self.n = n
        earr = _as_edge_array(edges)
        m = self.m = len(earr)
        u = earr[:, 0]
        v = earr[:, 1]
        if m:
            self._validate_topology(earr, u, v)
        self._lo = np.minimum(u, v)
        self._hi = np.maximum(u, v)
        # CSR build: interleave the two directed half-edges of each edge
        # as [u0, v0, u1, v1, ...]; a *stable* sort by source vertex then
        # groups each vertex's half-edges in edge-insertion order — the
        # port-numbering invariant (see module docstring).
        src = earr.reshape(-1)
        dst = earr[:, ::-1].reshape(-1)
        order = np.argsort(src, kind="stable")
        self._indices = dst[order]
        self._eids = np.repeat(np.arange(m, dtype=np.int64), 2)[order]
        counts = np.bincount(src, minlength=n) if m else np.zeros(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._indptr = indptr
        for arr in (self._indices, self._eids, self._indptr, self._lo, self._hi):
            arr.setflags(write=False)
        if weights is not None:
            warr = np.asarray(weights, dtype=np.float64)
            if warr.ndim != 1:
                raise ValueError(
                    f"weights must be 1-D, got shape {warr.shape}"
                )
            if len(warr) != m:
                raise ValueError(f"{warr.size} weights for {m} edges")
            nonpos = warr <= 0.0
            if nonpos.any():
                eid = int(np.argmax(nonpos))
                raise ValueError(
                    f"edge ({self._lo[eid]},{self._hi[eid]}) has non-positive "
                    f"weight {warr[eid]}; the paper assumes w : E -> R+"
                )
            warr = warr.copy()
            warr.setflags(write=False)
            self._weights: np.ndarray | None = warr
        else:
            self._weights = None
        # Lazy caches (scalar-access tuples, eid map, sorted neighbors).
        self._edges_list: list[tuple[int, int]] | None = None
        self._eid_map: dict[int, int] | None = None
        self._nbr_tuples: list[tuple[int, ...]] | None = None
        self._inc_tuples: list[tuple[tuple[int, int], ...] | None] | None = None
        self._nbr_sets: list[frozenset[int]] | None = None
        self._sorted_indices: np.ndarray | None = None
        self._sorted_eids: np.ndarray | None = None
        self._max_degree: int | None = None
        self._unit_weights: np.ndarray | None = None

    def _validate_topology(self, earr: np.ndarray, u: np.ndarray, v: np.ndarray) -> None:
        """Vectorized checks; error paths scan for faithful messages."""
        n = self.n
        oob = (u < 0) | (u >= n) | (v < 0) | (v >= n)
        if oob.any():
            i = int(np.argmax(oob))
            raise ValueError(
                f"edge ({earr[i, 0]},{earr[i, 1]}) out of range for n={n}"
            )
        loops = u == v
        if loops.any():
            raise ValueError(f"self-loop at vertex {u[int(np.argmax(loops))]}")
        key = np.minimum(u, v) * np.int64(n) + np.maximum(u, v)
        order = np.argsort(key, kind="stable")
        dup = key[order][1:] == key[order][:-1]
        if dup.any():
            # Stable sort keeps equal keys in insertion order, so the
            # first duplicate *encountered* is the smallest original
            # index among second-and-later occurrences.
            i = int(order[1:][dup].min())
            raise ValueError(f"duplicate edge ({earr[i, 0]},{earr[i, 1]})")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def weighted(self) -> bool:
        """Whether explicit weights were supplied."""
        return self._weights is not None

    def vertices(self) -> range:
        """All vertices as a range."""
        return range(self.n)

    def edges(self) -> list[tuple[int, int]]:
        """All edges as ``(u, v)`` with ``u < v``, indexed by edge id."""
        return list(self._edge_tuples())

    def _edge_tuples(self) -> list[tuple[int, int]]:
        if self._edges_list is None:
            self._edges_list = list(zip(self._lo.tolist(), self._hi.tolist()))
        return self._edges_list

    def edge_endpoints(self, eid: int) -> tuple[int, int]:
        """Endpoints ``(u, v)`` with ``u < v`` of edge ``eid``."""
        return self._edge_tuples()[eid]

    def _eid_lookup(self) -> dict[int, int]:
        if self._eid_map is None:
            keys = (self._lo * np.int64(self.n) + self._hi).tolist()
            self._eid_map = dict(zip(keys, range(self.m)))
        return self._eid_map

    def edge_id(self, u: int, v: int) -> int:
        """Edge id of ``(u, v)``; raises ``KeyError`` if absent."""
        if u > v:
            u, v = v, u
        # Bounds guard: the flat key u*n+v is only collision-free for
        # in-range vertices.
        if u < 0 or v >= self.n:
            raise KeyError((u, v))
        try:
            return self._eid_lookup()[u * self.n + v]
        except KeyError:
            raise KeyError((u, v)) from None

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` is an edge."""
        if u > v:
            u, v = v, u
        if u < 0 or v >= self.n:
            return False
        return (u * self.n + v) in self._eid_lookup()

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Neighbors of ``v`` in port order (immutable; do not mutate)."""
        if self._nbr_tuples is None:
            flat = self._indices.tolist()
            ptr = self._indptr.tolist()
            self._nbr_tuples = [
                tuple(flat[ptr[i]: ptr[i + 1]]) for i in range(self.n)
            ]
        return self._nbr_tuples[v]

    def incident(self, v: int) -> tuple[tuple[int, int], ...]:
        """``(neighbor, edge_id)`` pairs of ``v`` in port order (immutable)."""
        if self._inc_tuples is None:
            self._inc_tuples = [None] * self.n
        cached = self._inc_tuples[v]
        if cached is None:
            a, b = self._indptr[v], self._indptr[v + 1]
            cached = self._inc_tuples[v] = tuple(
                zip(self._indices[a:b].tolist(), self._eids[a:b].tolist())
            )
        return cached

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def max_degree(self) -> int:
        """Maximum degree Δ (0 on the empty graph)."""
        if self._max_degree is None:
            self._max_degree = (
                int(np.diff(self._indptr).max()) if self.n else 0
            )
        return self._max_degree

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)`` (1.0 in unweighted graphs)."""
        eid = self.edge_id(u, v)
        return 1.0 if self._weights is None else float(self._weights[eid])

    def edge_weight(self, eid: int) -> float:
        """Weight of edge ``eid`` (1.0 in unweighted graphs)."""
        return 1.0 if self._weights is None else float(self._weights[eid])

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        if self._weights is None:
            return float(self.m)
        # Summed in edge-id order with scalar adds, matching the result
        # of summing the per-edge floats one by one.
        return float(sum(self._weights.tolist()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = "weighted " if self.weighted else ""
        return f"Graph({tag}n={self.n}, m={self.m})"

    # ------------------------------------------------------------------
    # Bulk (array) accessors — the CSR core for vectorized algorithms
    # ------------------------------------------------------------------

    def degrees(self) -> np.ndarray:
        """All vertex degrees as an ``int64[n]`` array."""
        return np.diff(self._indptr)

    def endpoints_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Edge endpoints ``(lo, hi)`` as ``int64[m]`` read-only arrays.

        ``lo[eid] < hi[eid]`` for every edge, matching :meth:`edges`.
        """
        return self._lo, self._hi

    def weights_array(self) -> np.ndarray:
        """Edge weights as ``float64[m]`` (ones when unweighted), read-only."""
        if self._weights is None:
            if self._unit_weights is None:
                ones = np.ones(self.m, dtype=np.float64)
                ones.setflags(write=False)
                self._unit_weights = ones
            return self._unit_weights
        return self._weights

    def incident_view(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbors, edge_ids)`` of ``v`` as read-only array views.

        Both arrays are in port order; no copies are made.
        """
        a, b = self._indptr[v], self._indptr[v + 1]
        return self._indices[a:b], self._eids[a:b]

    def indptr_array(self) -> np.ndarray:
        """The CSR ``indptr`` array (read-only view)."""
        return self._indptr

    def adjacency_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The raw CSR triple ``(indptr, indices, eids)`` (read-only).

        The substrate the execution backends' scatter/gather rides on:
        ``ArrayContext`` / ``BatchedArrayContext`` hold exactly these
        views, relying on the port-numbering invariant (module
        docstring) for their segment reductions.
        """
        return self._indptr, self._indices, self._eids

    def _sorted_csr(self) -> tuple[np.ndarray, np.ndarray]:
        if self._sorted_indices is None:
            rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self._indptr))
            order = np.lexsort((self._indices, rows))
            self._sorted_indices = self._indices[order]
            self._sorted_eids = self._eids[order]
            self._sorted_indices.setflags(write=False)
            self._sorted_eids.setflags(write=False)
        return self._sorted_indices, self._sorted_eids

    def sorted_neighbors(self, v: int) -> np.ndarray:
        """Neighbors of ``v`` sorted ascending (read-only view).

        Enables O(log Δ) membership via ``np.searchsorted`` — and, with
        the matching :meth:`sorted_incident_eids` view, sorted-merge
        algorithms over adjacency.
        """
        snbrs, _ = self._sorted_csr()
        return snbrs[self._indptr[v]: self._indptr[v + 1]]

    def sorted_incident_eids(self, v: int) -> np.ndarray:
        """Edge ids aligned with :meth:`sorted_neighbors` (read-only view)."""
        self._sorted_csr()
        return self._sorted_eids[self._indptr[v]: self._indptr[v + 1]]

    def neighbor_sets(self) -> list[frozenset[int]]:
        """Per-vertex frozen neighbor sets, built once and cached.

        The round engine uses these for O(1) neighbor-membership checks
        on message validation; they are shared across all ``Network``
        instances over the same graph.
        """
        if self._nbr_sets is None:
            flat = self._indices.tolist()
            ptr = self._indptr.tolist()
            self._nbr_sets = [
                frozenset(flat[ptr[i]: ptr[i + 1]]) for i in range(self.n)
            ]
        return self._nbr_sets

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def bipartition(self) -> tuple[list[int], list[int]] | None:
        """2-color the graph if bipartite.

        Returns ``(X, Y)`` with every edge crossing the sides, or
        ``None`` when the graph contains an odd cycle.  Isolated
        vertices are placed on the X side.
        """
        if self.n and self._nbr_tuples is None:
            self.neighbors(0)  # build the adjacency tuple cache once
        adj = self._nbr_tuples or []
        color = [-1] * self.n
        for s in range(self.n):
            if color[s] != -1:
                continue
            color[s] = 0
            stack = [s]
            while stack:
                v = stack.pop()
                cu = 1 - color[v]
                for u in adj[v]:
                    if color[u] == -1:
                        color[u] = cu
                        stack.append(u)
                    elif color[u] != cu:
                        return None
        xs = [v for v in range(self.n) if color[v] == 0]
        ys = [v for v in range(self.n) if color[v] == 1]
        return xs, ys

    def is_bipartite(self) -> bool:
        """Whether the graph is bipartite."""
        return self.bipartition() is not None

    def connected_components(self) -> list[list[int]]:
        """Connected components, each a sorted vertex list."""
        if self.n and self._nbr_tuples is None:
            self.neighbors(0)
        adj = self._nbr_tuples or []
        seen = [False] * self.n
        comps: list[list[int]] = []
        for s in range(self.n):
            if seen[s]:
                continue
            seen[s] = True
            comp = [s]
            stack = [s]
            while stack:
                v = stack.pop()
                for u in adj[v]:
                    if not seen[u]:
                        seen[u] = True
                        comp.append(u)
                        stack.append(u)
            comp.sort()
            comps.append(comp)
        return comps

    def subgraph(self, keep_edges: Iterable[int]) -> "Graph":
        """Spanning subgraph with the given edge ids (all vertices kept).

        Edge ids are *renumbered* in the subgraph; weights follow their
        edges.
        """
        if isinstance(keep_edges, np.ndarray):
            eids = np.unique(keep_edges.astype(np.int64, copy=False))
        else:
            eids = np.unique(np.asarray(list(keep_edges), dtype=np.int64))
        if eids.size and (eids[0] < 0 or eids[-1] >= self.m):
            raise IndexError(f"edge id out of range for m={self.m}")
        edges = np.stack([self._lo[eids], self._hi[eids]], axis=1) if eids.size else _EMPTY_EDGES
        weights = None
        if self._weights is not None:
            weights = self._weights[eids]
        return Graph(self.n, edges, weights)

    def with_weights(self, weights: Sequence[float] | np.ndarray) -> "Graph":
        """Same topology, new weights (used for the derived w_M graph)."""
        return Graph(self.n, self._endpoint_matrix(), weights)

    def unweighted(self) -> "Graph":
        """Same topology without weights."""
        return Graph(self.n, self._endpoint_matrix())

    def _endpoint_matrix(self) -> np.ndarray:
        return np.stack([self._lo, self._hi], axis=1)

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------

    def edge_ids(self) -> range:
        """All edge ids as a range."""
        return range(self.m)

    def iter_weighted_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(u, v, w)`` for every edge."""
        ws = self.weights_array().tolist()
        for (u, v), w in zip(self._edge_tuples(), ws):
            yield u, v, w
