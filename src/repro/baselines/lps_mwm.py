"""Weight-class constant-factor MWM — the paper's black box [18].

Lotker, Patt-Shamir & Rosén (PODC 2007) give a randomized (¼−ε)-MWM in
O(log n) time; Algorithm 5 of the reproduced paper consumes *any*
δ-MWM with constant δ as a black box (Theorem 4.5 plugs in [18] with
δ = 1/5).

We implement the weight-class skeleton of that result:

1. round weights into geometric classes — class j holds edges with
   ``w ∈ (wmax/2^{j+1}, wmax/2^j]``; edges below ``wmax/2^C`` are
   dropped (with ``C = 2⌈log₂ n⌉ + 4`` their total contribution is at
   most ``n · wmax/n⁴ ≤ w(M*)/n²`` — negligible);
2. for j = 0, 1, … (heavy to light): run Israeli–Itai maximal matching
   on the residual class-j subgraph and freeze its edges.

Charging each optimal edge to the chosen edge that blocked it (which
lies in an equal-or-heavier class) gives ``w'(M*) ≤ 2·w'(M)`` on the
rounded weights and hence ``w(M) ≥ w(M*)/4`` up to the ε-rounding —
the same δ = ¼−ε guarantee as [18].

**Documented deviation** (DESIGN.md §2): [18] interleaves all classes
to finish in O(log n) rounds; we run classes sequentially, costing
O(log W · log n) simulated rounds.  Algorithm 5's *quality* analysis
only needs the constant δ, so the reproduction of Theorem 4.5's
approximation behaviour is unaffected; its round counts are reported
with this substitution noted (EXPERIMENTS.md).

The protocol is fully lockstep: every node executes exactly
``num_classes × phases_per_class × 3`` rounds, idling where it has
nothing to do, so class boundaries need no global synchronization.

Global knowledge: nodes are parameterized by n and wmax (the standard
assumptions; the paper's O(log n)-bit messages already presuppose
weights polynomial in n).
"""

from __future__ import annotations

import math
from typing import Generator

from repro.distributed.network import Network, RunResult
from repro.distributed.node import Node
from repro.graphs.graph import Graph
from repro.matching.matching import Matching
from repro.baselines.israeli_itai import matching_from_mates

_PROPOSE = "p"
_ACCEPT = "a"
_MATCHED = "m"


def _weight_class(w: float, wmax: float) -> int:
    """Class index j with ``wmax/2^{j+1} < w <= wmax/2^j`` (j >= 0)."""
    if w <= 0:
        raise ValueError("weights must be positive")
    j = int(math.floor(math.log2(wmax / w)))
    # Guard float rounding at class boundaries: w == wmax/2^j must land
    # in class j, i.e. w > wmax/2^{j+1}.
    while j > 0 and w > wmax / (2.0**j):
        j -= 1
    while w <= wmax / (2.0 ** (j + 1)):
        j += 1
    return max(0, j)


def lps_mwm_program(
    node: Node,
    n: int,
    wmax: float,
    num_classes: int,
    phases_per_class: int,
) -> Generator[None, None, int]:
    """Node program; returns the node's mate id, or -1."""
    # Pre-compute each incident edge's class (both endpoints agree:
    # the class is a function of the shared edge weight and wmax).
    cls_of: dict[int, int] = {}
    for u in node.neighbors:
        j = _weight_class(node.edge_weight(u), wmax)
        if j < num_classes:
            cls_of[u] = j
    mate = -1
    dead: set[int] = set()  # neighbors known to be matched
    announced = False
    for cls in range(num_classes):
        for _phase in range(phases_per_class):
            # --- round 1: proposals -----------------------------------
            active = (
                {u for u, j in cls_of.items() if j == cls and u not in dead}
                if mate == -1
                else set()
            )
            proposer = bool(node.rng.integers(0, 2)) if active else False
            target = -1
            if proposer:
                target = int(node.rng.choice(sorted(active)))
                node.send(target, _PROPOSE)
            yield
            # --- round 2: accepts -------------------------------------
            if mate == -1 and not proposer:
                proposals = sorted(
                    src
                    for src, tag in node.inbox
                    if tag == _PROPOSE and src in active
                )
                if proposals:
                    mate = int(node.rng.choice(proposals))
                    node.send(mate, _ACCEPT)
            yield
            # --- round 3: confirm + announce --------------------------
            if proposer and target != -1:
                if any(s == target and t == _ACCEPT for s, t in node.inbox):
                    mate = target
            if mate != -1 and not announced:
                node.broadcast(_MATCHED)
                announced = True
            yield
            for src, tag in node.inbox:
                if tag == _MATCHED:
                    dead.add(src)
    node.finish(mate)
    return mate


def lps_mwm(
    g: Graph,
    seed: int = 0,
    num_classes: int | None = None,
    phases_per_class: int | None = None,
    max_rounds: int = 10_000_000,
) -> tuple[Matching, RunResult]:
    """Run the weight-class δ-MWM; returns (matching, run metrics).

    Defaults: ``num_classes = 2⌈log₂ n⌉ + 4`` and ``phases_per_class =
    4⌈log₂ n⌉ + 4`` (w.h.p. maximal per class).
    """
    if not g.weighted:
        raise ValueError("lps_mwm needs a weighted graph")
    if g.m == 0:
        return Matching(g), RunResult()
    wmax = max(w for _, _, w in g.iter_weighted_edges())
    log_n = max(1, math.ceil(math.log2(max(2, g.n))))
    if num_classes is None:
        num_classes = 2 * log_n + 4
    if phases_per_class is None:
        phases_per_class = 4 * log_n + 4
    net = Network(
        g,
        lps_mwm_program,
        params={
            "n": g.n,
            "wmax": wmax,
            "num_classes": num_classes,
            "phases_per_class": phases_per_class,
        },
        seed=seed,
    )
    res = net.run(max_rounds=max_rounds)
    return matching_from_mates(g, res.outputs), res
