"""The node-side API visible to distributed algorithms.

A *node program* is a generator function ``program(node, **params)``;
executing ``yield`` ends the node's current round.  After the yield
returns, ``node.inbox`` holds the ``(src, payload)`` pairs sent to the
node in the previous round.  A program terminates by returning;
``node.output`` (set via :meth:`Node.finish` or by the return value)
is collected by the network.

Nodes may only message their graph neighbors — the simulator rejects
anything else, keeping algorithms honest to the model of Section 2.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.graphs.graph import Graph


class Node:
    """Per-node state and communication endpoints.

    Attributes
    ----------
    id:
        The node's identifier (= vertex id).  The paper assumes unique
        IDs (leader election in Algorithm 2 breaks ties by ID).
    neighbors:
        Neighbor ids in port order, as an immutable tuple (a view of
        the graph's cached adjacency — never mutate node state through
        it).  Under an active fault plan the *network* rebuilds this
        tuple when an incident link fails or a neighbor crashes
        (perfect failure detection; relative port order is preserved),
        so fault-adaptive programs should re-read it each phase rather
        than capture it once.
    rng:
        Node-private deterministic RNG (spawned from the network seed),
        so runs are reproducible regardless of scheduling order.
    inbox:
        ``(src, payload)`` pairs received at the start of this round.
    output:
        The node's result, reported to :class:`RunResult.outputs`.
    """

    __slots__ = (
        "id",
        "neighbors",
        "rng",
        "inbox",
        "output",
        "_outbox",
        "_graph",
        "_round_ref",
    )

    def __init__(
        self,
        vid: int,
        graph: Graph,
        rng: np.random.Generator,
        round_ref: list[int] | None = None,
    ) -> None:
        self.id = vid
        self.neighbors: tuple[int, ...] = graph.neighbors(vid)
        self.rng = rng
        self.inbox: list[tuple[int, Any]] = []
        self.output: Any = None
        # Outbox entries are either a single ``(dst, payload)`` or a
        # grouped ``(dst_tuple, payload)`` from send_many/broadcast;
        # the round engine sizes and validates grouped payloads once.
        self._outbox: list[tuple[Any, Any]] = []
        self._graph = graph
        # The current round, shared with the network (one write per
        # round instead of one per live node).
        self._round_ref = round_ref if round_ref is not None else [0]

    @property
    def round(self) -> int:
        """The network's current round number."""
        return self._round_ref[0]

    @property
    def degree(self) -> int:
        """Number of incident edges."""
        return len(self.neighbors)

    def send(self, dst: int, payload: Any) -> None:
        """Queue a message to neighbor ``dst`` for delivery next round."""
        self._outbox.append((dst, payload))

    def send_many(self, dsts: Iterable[int], payload: Any) -> None:
        """Queue the same message to every neighbor in ``dsts``.

        Equivalent to ``send(d, payload) for d in dsts`` but the round
        engine validates and sizes the payload once for the whole
        group, which is what keeps broadcast-heavy protocols cheap.
        """
        self._outbox.append((tuple(dsts), payload))

    def broadcast(self, payload: Any) -> None:
        """Queue the same message to every neighbor."""
        self._outbox.append((self.neighbors, payload))

    def finish(self, output: Any) -> None:
        """Record the node's output (typically followed by ``return``)."""
        self.output = output

    def edge_weight(self, u: int) -> float:
        """Weight of the incident edge to neighbor ``u``.

        Local knowledge: a node knows the weights of its incident edges
        (the standard assumption for distributed weighted matching).
        """
        return self._graph.weight(self.id, u)

    def port_of(self, u: int) -> int:
        """Port number (index into ``neighbors``) of neighbor ``u``."""
        return self.neighbors.index(u)
