"""Tests for optimality certificates (König / Berge)."""

import pytest
from hypothesis import given, settings

from repro.graphs import bipartite_random, comb_graph, crown_graph, path_graph
from repro.matching import (
    Matching,
    certified_ratio_lower_bound,
    certify_maximum_bipartite,
    certify_no_short_augmenting_path,
    greedy_maximal_matching,
    hopcroft_karp,
    hopcroft_karp_truncated,
    is_vertex_cover,
    konig_vertex_cover,
    verify_cover_certificate,
)

from tests.conftest import bipartite_graphs


class TestKonig:
    def test_cover_valid_on_maximum(self):
        g, xs, _ = bipartite_random(15, 15, 0.2, seed=1)
        m = hopcroft_karp(g, xs)
        cover = konig_vertex_cover(g, m, xs)
        assert is_vertex_cover(g, cover)
        assert len(cover) == len(m)
        assert verify_cover_certificate(g, m, cover)

    def test_crown(self):
        g, xs, _ = crown_graph(6)
        m = hopcroft_karp(g, xs)
        assert certify_maximum_bipartite(g, m, xs)

    def test_non_maximum_fails_certificate(self):
        g = path_graph(4)
        m = Matching(g, [(1, 2)])  # maximal but not maximum
        assert not certify_maximum_bipartite(g, m)

    def test_non_bipartite_fails_gracefully(self, triangle):
        m = Matching(triangle, [(0, 1)])
        assert not certify_maximum_bipartite(triangle, m)
        with pytest.raises(ValueError):
            konig_vertex_cover(triangle, m)

    def test_empty_graph(self):
        from repro.graphs import Graph

        g = Graph(3)
        m = Matching(g)
        assert certify_maximum_bipartite(g, m)

    @given(bipartite_graphs(max_side=7))
    @settings(max_examples=60)
    def test_hk_always_certifiable(self, gxy):
        """König duality: every HK output carries a tight cover."""
        g, xs, _ = gxy
        m = hopcroft_karp(g, xs)
        assert certify_maximum_bipartite(g, m, xs)

    @given(bipartite_graphs(max_side=7))
    @settings(max_examples=60)
    def test_weak_duality(self, gxy):
        """Any matching size ≤ any cover size."""
        g, xs, _ = gxy
        mstar = hopcroft_karp(g, xs)
        cover = konig_vertex_cover(g, mstar, xs)
        m = greedy_maximal_matching(g)
        assert len(m) <= len(cover)


class TestIsVertexCover:
    def test_accepts(self):
        g = path_graph(4)
        assert is_vertex_cover(g, [1, 2])

    def test_rejects(self):
        g = path_graph(4)
        assert not is_vertex_cover(g, [0, 3])

    def test_empty_cover_of_empty_graph(self):
        from repro.graphs import Graph

        assert is_vertex_cover(Graph(5), [])


class TestBergeBounded:
    def test_maximal_certifies_half(self):
        g = comb_graph(8)
        m = greedy_maximal_matching(g)
        assert certify_no_short_augmenting_path(g, m, 1)
        assert certified_ratio_lower_bound(g, m, 7) >= 0.5

    def test_truncated_hk_certifies_its_k(self):
        for k in (1, 2, 3):
            g, xs, _ = bipartite_random(12, 12, 0.25, seed=k)
            m = hopcroft_karp_truncated(g, k, xs)
            assert certify_no_short_augmenting_path(g, m, 2 * k - 1)
            assert certified_ratio_lower_bound(g, m, 2 * k + 1) >= 1 - 1 / (k + 1)

    def test_empty_matching_on_edges_fails(self):
        g = path_graph(2)
        m = Matching(g)
        assert not certify_no_short_augmenting_path(g, m, 1)
        assert certified_ratio_lower_bound(g, m, 5) == 0.0
