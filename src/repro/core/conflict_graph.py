"""Conflict graphs (Definition 3.1) and local-view path enumeration.

Definition 3.1: the ℓ-conflict graph C_M(ℓ) has one node per
augmenting path of length at most ℓ w.r.t. M, with an edge between two
nodes iff their paths intersect at a vertex of G.  Algorithm 1 computes
a maximal independent set of C_M(ℓ); independence in C_M(ℓ) is exactly
vertex-disjointness of the augmenting paths, which is what makes
simultaneous augmentation safe (step 7).

Leaders: Algorithm 2 assigns each path to the endpoint with the
smaller ID.  :func:`local_view_paths` reproduces the *local* rule —
the paths a node discovers and leads inside its distance-ℓ view — so
tests can verify the distributed assignment covers every path exactly
once.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph, sorted_unique
from repro.matching.augmenting import Path, find_augmenting_paths_upto
from repro.matching.matching import Matching


def build_conflict_graph(
    g: Graph, m: Matching, max_len: int
) -> tuple[list[Path], Graph, list[int]]:
    """Construct C_M(max_len).

    Returns ``(paths, conflict_graph, leaders)`` where ``paths[i]`` is
    the augmenting path represented by conflict-graph node ``i``,
    ``conflict_graph`` has one vertex per path and an edge per
    intersecting pair, and ``leaders[i]`` is the physical leader node
    (smaller-ID endpoint, as in Algorithm 2 step 3).

    The pairing is vectorized: sort (vertex, path-id) pairs, and within
    each vertex's group pair every member with all earlier members —
    exactly ``combinations`` over ascending path ids, so after a
    ``np.unique`` on flat ``a * |paths| + b`` keys the edge list is the
    old ``sorted(set(...))`` byte for byte.  The Python dict-of-lists
    version was the step-6 bottleneck at n=10^6 (millions of length-2
    paths).
    """
    paths = find_augmenting_paths_upto(g, m, max_len)
    num = len(paths)
    leaders = [min(p[0], p[-1]) for p in paths]
    if num == 0:
        return paths, Graph(0), leaders
    lens = np.array([len(p) for p in paths], dtype=np.int64)
    if int(lens.min()) == int(lens.max()):
        flat = np.asarray(paths, dtype=np.int64).ravel()
    else:
        flat = np.concatenate([np.asarray(p, dtype=np.int64) for p in paths])
    pid = np.repeat(np.arange(num, dtype=np.int64), lens)
    order = np.lexsort((pid, flat))
    sv, sp = flat[order], pid[order]
    # Within-group rank: element k of a vertex group pairs (as the
    # larger id — paths are simple, so ids in a group are distinct and
    # ascending) with its k earlier members.
    group_start = np.maximum.accumulate(
        np.where(np.r_[True, sv[1:] != sv[:-1]], np.arange(sv.size), 0)
    )
    within = np.arange(sv.size) - group_start
    total = int(within.sum())
    if total:
        head = np.cumsum(within) - within
        a_pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(head, within)
            + np.repeat(group_start, within)
        )
        keys = sorted_unique(sp[a_pos] * num + np.repeat(sp, within))
        conflict_edges = np.stack([keys // num, keys % num], axis=1)
    else:
        conflict_edges = np.empty((0, 2), dtype=np.int64)
    cg = Graph(num, conflict_edges)
    return paths, cg, leaders


def local_view_paths(
    g: Graph, m: Matching, center: int, max_len: int
) -> list[Path]:
    """Paths of P_v(ℓ) that node ``center`` *leads* in its local view.

    Algorithm 2 step 3: v leads the augmenting paths of length <= ℓ in
    its distance-ℓ view whose endpoint of smaller ID is v.  Since any
    augmenting path of length <= ℓ with endpoint v lies inside v's
    distance-ℓ ball, enumerating alternating simple paths from v
    suffices — no global knowledge is used beyond the ball.
    """
    if not m.is_free(center):
        return []
    found: set[Path] = set()
    stack: list[tuple[list[int], bool]] = [([center], False)]
    while stack:
        path, want_matched = stack.pop()
        v = path[-1]
        if len(path) - 1 >= max_len:
            continue
        for u in g.neighbors(v):
            if u in path:
                continue
            if m.is_matched_edge(v, u) != want_matched:
                continue
            new_path = path + [u]
            if not want_matched and m.is_free(u):
                if center < u:  # leader rule: smaller-ID endpoint
                    found.add(tuple(new_path))
                continue
            stack.append((new_path, not want_matched))
    return sorted(found)
