"""Run metrics collected by the simulator.

These are the quantities the paper's theorems bound:

* ``rounds`` — time complexity (Thm 3.1: O(ε⁻³ log n); Thm 3.8:
  O(k³ log Δ + k² log n); Thm 3.11: O(2^{2k} k⁴ log k · log n);
  Thm 4.5: O(log ε⁻¹ · log n));
* ``max_message_bits`` — message complexity (O(|V|+|E|) / O(log Δ) /
  O(log n) respectively);
* ``total_messages`` / ``total_bits`` — aggregate communication, used
  by the scaling analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class RunResult:
    """Outcome of one :meth:`repro.distributed.Network.run` call."""

    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    outputs: dict[int, Any] = field(default_factory=dict)
    #: extra rounds charged analytically (e.g. Lemma 3.3's O(ℓ) routing
    #: per conflict-graph MIS round in Algorithm 1's emulation).
    charged_rounds: int = 0

    @property
    def total_rounds(self) -> int:
        """Simulated plus analytically charged rounds."""
        return self.rounds + self.charged_rounds

    def merge(self, other: "RunResult") -> "RunResult":
        """Sequential composition: totals add, outputs overwrite."""
        merged = RunResult(
            rounds=self.rounds + other.rounds,
            total_messages=self.total_messages + other.total_messages,
            total_bits=self.total_bits + other.total_bits,
            max_message_bits=max(self.max_message_bits, other.max_message_bits),
            charged_rounds=self.charged_rounds + other.charged_rounds,
        )
        merged.outputs = {**self.outputs, **other.outputs}
        return merged
