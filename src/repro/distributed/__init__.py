"""Synchronous message-passing simulator (the model of Section 2).

In each round every node sends (possibly different) messages to its
neighbors, receives the messages sent to it in the previous round, and
performs local computation.  Two model variants are supported:

* ``LOCAL`` — unbounded message size (used by the generic Algorithm 1,
  whose messages are O(|V|+|E|) bits);
* ``CONGEST`` — messages of O(log n) bits; the simulator *enforces* a
  configurable bound and records the maximum observed message size so
  the paper's message-complexity claims are measurable.

Node algorithms are Python generators: ``yield`` ends the round —
executed by the :class:`GeneratorBackend` (= :class:`Network`), the
reference engine.  Algorithms may additionally ship an *array program*
(vectorized per-round updates over struct-of-arrays state) executed by
the :class:`ArrayBackend`, and a *batched* array program executed over
a whole seed list at once by the :class:`BatchedArrayBackend`; all
produce byte-identical results from the same seed (see
``repro.distributed.backends``).
"""

from repro.distributed.backends import (
    BACKENDS,
    ArrayBackend,
    ArrayContext,
    BatchedArrayBackend,
    BatchedArrayContext,
    ExecutionBackend,
    GeneratorBackend,
    int_payload_bits,
    resolve_backend,
    run_program,
    run_program_batched,
)
from repro.distributed.message import bit_size
from repro.distributed.models import (
    CONGEST,
    LOCAL,
    CongestViolation,
    Model,
    congest_log_degree,
    congest_with_bound,
)
from repro.distributed.metrics import LcaProbeStats
from repro.distributed.network import Network, RunResult
from repro.distributed.node import Node

__all__ = [
    "bit_size",
    "BACKENDS",
    "ArrayBackend",
    "ArrayContext",
    "BatchedArrayBackend",
    "BatchedArrayContext",
    "ExecutionBackend",
    "GeneratorBackend",
    "int_payload_bits",
    "resolve_backend",
    "run_program",
    "run_program_batched",
    "CONGEST",
    "LOCAL",
    "CongestViolation",
    "Model",
    "congest_log_degree",
    "congest_with_bound",
    "LcaProbeStats",
    "Network",
    "RunResult",
    "Node",
]
