"""Aggregate the committed bench artifacts into one trend table.

Each subsystem bench (``benchmarks/bench_s*.py``) commits a full run
under ``benchmarks/results/s*.json`` with its own schema, but every
cell carries a ``speedup`` (plus, where measured, a round-loop
``loop_speedup`` / ``end_to_end_speedup``).  This tool normalizes them
into one per-subsystem × per-workload summary — the performance
trajectory across PRs — prints it, and writes it to ``BENCH_S10.json``
at the repo root (regenerate after committing a new ``s*.json``)::

    PYTHONPATH=src python tools/bench_report.py

Exit status is nonzero when no artifacts are found, so CI can use it
as a sanity check that the committed results stay loadable.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
from typing import Any

#: What each subsystem's ``speedup`` compares (kept in sync with the
#: bench module docstrings).
COMPARISONS = {
    "s3_backends": "array backend vs generator backend (round loop)",
    "s4_batched": "one batched run vs N sequential array runs (end to end)",
    "s5_weighted": "weighted pipeline: array/batched leg vs reference leg "
                   "(end to end)",
    "s6_switch": "vectorized switch engine vs scalar cell-slot loop "
                 "(end to end, equal SwitchStats)",
    "s7_scale": "scale tier: kopt array vs generator leg, sparse kernel "
                "vs reduceat, int32 vs int64 CSR (end to end)",
    "s8_switch_batched": "one batched switch execution vs N sequential "
                         "vectorized runs (end to end, equal per-seed "
                         "SwitchStats)",
    "s9_lca": "one full global random-greedy run vs LCA-serving the "
              "cell's point-query batch (consistency asserted; "
              "crossover_queries records the honest break-even)",
    "s10_faults": "fault-free run vs the same run through the fault "
                  "seam (noop plan = the <1.05x overhead gate; active "
                  "epsilon-loss plan = the real filtering cost; "
                  "identity asserted before timing)",
}


def summarize_file(path: pathlib.Path) -> dict[str, Any]:
    """One committed artifact -> per-workload speedup summary."""
    data = json.loads(path.read_text())
    cells = data.get("cells", [])
    workloads: dict[str, list[float]] = {}
    for cell in cells:
        workloads.setdefault(cell["workload"], []).append(float(cell["speedup"]))
    return {
        "comparison": COMPARISONS.get(path.stem, "speedup vs reference leg"),
        "cells": len(cells),
        "workloads": {
            name: {
                "cells": len(vals),
                "best_speedup": max(vals),
                "median_speedup": statistics.median(vals),
            }
            for name, vals in sorted(workloads.items())
        },
    }


def build_report(results_dir: pathlib.Path) -> dict[str, Any]:
    files = sorted(results_dir.glob("s*.json"))
    return {
        "generated_by": "tools/bench_report.py",
        "sources": [str(f.relative_to(results_dir.parent.parent)) for f in files],
        "subsystems": {f.stem: summarize_file(f) for f in files},
    }


def render(report: dict[str, Any]) -> str:
    lines = ["subsystem     workload              cells  median   best",
             "-----------   --------------------  -----  ------  -----"]
    for sub, summary in report["subsystems"].items():
        for wl, s in summary["workloads"].items():
            lines.append(
                f"{sub:<13} {wl:<21} {s['cells']:>5}  "
                f"{s['median_speedup']:>5.1f}x {s['best_speedup']:>5.1f}x"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--results-dir", type=pathlib.Path,
                    default=repo_root / "benchmarks" / "results")
    ap.add_argument("--out", type=pathlib.Path,
                    default=repo_root / "BENCH_S10.json")
    args = ap.parse_args(argv)
    if not args.results_dir.is_dir():
        print(f"error: no results directory at {args.results_dir}",
              file=sys.stderr)
        return 1
    report = build_report(args.results_dir)
    if not report["subsystems"]:
        print(f"error: no s*.json artifacts under {args.results_dir}",
              file=sys.stderr)
        return 1
    print(render(report))
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
