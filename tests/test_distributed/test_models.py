"""Unit tests for the LOCAL/CONGEST model definitions."""

import pytest

from repro.distributed import CONGEST, LOCAL
from repro.distributed.models import (
    CongestViolation,
    congest_log_degree,
    congest_with_bound,
)


class TestModels:
    def test_local_unbounded(self):
        assert LOCAL.limit(1000, 50) is None

    def test_congest_scales_with_log_n(self):
        small = CONGEST.limit(16, 4)
        large = CONGEST.limit(16**4, 4)
        assert small is not None and large is not None
        assert large == 4 * small  # log2(16^4) = 4*log2(16)

    def test_congest_minimum_positive(self):
        assert CONGEST.limit(1, 0) > 0
        assert CONGEST.limit(2, 1) > 0

    def test_explicit_bound(self):
        m = congest_with_bound(100)
        assert m.limit(10**6, 10**3) == 100

    def test_names(self):
        assert LOCAL.name == "LOCAL"
        assert CONGEST.name == "CONGEST"

    def test_congest_ignores_degree_by_design(self):
        # The classical CONGEST budget is a function of n alone.
        assert CONGEST.limit(1000, 3) == CONGEST.limit(1000, 999)


class TestCongestLogDegree:
    """The degree-sensitive bound (Thm 3.8's O(log Δ) message regime)."""

    def test_scales_with_log_degree_not_n(self):
        m = congest_log_degree()
        assert m.limit(10**6, 16) == m.limit(10, 16)  # n-independent
        assert m.limit(100, 16**4) == 4 * m.limit(100, 16)

    def test_tighter_than_congest_on_low_degree(self):
        # On bounded-degree large networks, the log Δ budget certifies
        # a strictly stronger claim than c·log n.
        assert congest_log_degree().limit(10**6, 4) < CONGEST.limit(10**6, 4)

    def test_degree_zero_and_one_clamped(self):
        m = congest_log_degree(c=7)
        assert m.limit(100, 0) == 7
        assert m.limit(100, 1) == 7

    def test_custom_constant_and_name(self):
        m = congest_log_degree(c=5)
        assert m.limit(1000, 256) == 5 * 8
        assert "logΔ" in m.name

    def test_enforced_by_engine(self):
        from repro.distributed import Network
        from repro.graphs import star_graph

        def chatty(node):
            node.broadcast("x" * 100)  # 800 bits >> 32*log2(Δ)
            yield

        g = star_graph(9)
        with pytest.raises(CongestViolation):
            Network(g, chatty, model=congest_log_degree()).run()
