"""Luby's randomized maximal independent set (MIS).

References [20] (Luby) and [1] (Alon–Babai–Itai) of the paper.  Section
3.2 describes exactly this variant: "in each iteration each node ...
chooses a random number, and it is added to the MIS iff its number is
larger than all numbers chosen by its neighbors"; O(log N) iterations
suffice w.h.p.

Used in two places:

* step 5 of Algorithm 1 — MIS on the conflict graph C_M(ℓ);
* the A1 ablation bench, standalone.

A phase costs 2 rounds (numbers / membership announcements).  Numbers
are drawn from [1, N⁴] as in Section 3.2, so a message is O(log N)
bits.  Nodes terminate locally once decided, and announce their
decision so undecided neighbors can prune.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.distributed.network import Network, RunResult
from repro.distributed.node import Node
from repro.graphs.graph import Graph

_IN_MIS = "i"
_OUT = "o"


def luby_mis_program(node: Node, n: int) -> Generator[None, None, bool]:
    """Node program; returns True iff the node joined the MIS.

    Each phase is exactly 3 rounds for every surviving node, so phases
    of different nodes never drift: numbers / membership announcements /
    withdrawal announcements, each read in its own round's inbox.
    """
    active = set(node.neighbors)
    hi = max(2, n) ** 4
    first = True
    while True:
        if not first:
            # Withdrawals sent at the end of the previous phase arrive now.
            for src, p in node.inbox:
                if p == _OUT:
                    active.discard(src)
        first = False
        # Isolated-in-the-residual-graph nodes join unconditionally.
        if not active:
            node.finish(True)
            return True
        number = int(node.rng.integers(1, hi + 1))
        node.send_many(active, number)
        yield  # round 1: numbers in flight
        nbr_numbers = [
            p for src, p in node.inbox if src in active and isinstance(p, int)
        ]
        winner = bool(nbr_numbers) and number > max(nbr_numbers)
        if winner:
            node.send_many(active, _IN_MIS)
        yield  # round 2: membership announcements in flight
        if winner:
            node.finish(True)
            return True
        # Neighbors of fresh MIS members leave as non-members.
        if any(p == _IN_MIS for _, p in node.inbox):
            node.send_many(active, _OUT)
            node.finish(False)
            return False
        yield  # round 3: withdrawals in flight


def luby_mis(
    g: Graph, seed: int = 0, max_rounds: int = 100_000
) -> tuple[set[int], RunResult]:
    """Run Luby's MIS on ``g``; returns (MIS vertex set, run metrics)."""
    net = Network(g, luby_mis_program, params={"n": g.n}, seed=seed)
    res = net.run(max_rounds=max_rounds)
    return {v for v, joined in res.outputs.items() if joined}, res


def verify_mis(g: Graph, mis: set[int]) -> bool:
    """Check independence and maximality of ``mis`` in ``g``.

    Vectorized over the CSR edge arrays: no edge may be internal to
    ``mis`` (independence) and every non-member needs a member
    neighbor (maximality).
    """
    in_mis = np.zeros(g.n, dtype=bool)
    if mis:
        in_mis[np.fromiter(mis, dtype=np.int64, count=len(mis))] = True
    lo, hi = g.endpoints_array()
    if (in_mis[lo] & in_mis[hi]).any():
        return False
    dominated = in_mis.copy()
    dominated[lo[in_mis[hi]]] = True
    dominated[hi[in_mis[lo]]] = True
    return bool(dominated.all())
