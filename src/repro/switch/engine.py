"""The vectorized long-horizon switch engine.

Replaces the scalar cell-slot loop (:func:`repro.switch.simulator.run_switch`
— kept as the reference semantics) for large port counts and 10^5–10^6
slot horizons:

* **VOQ state** is a single ``(ports, ports)`` int64 occupancy matrix
  instead of ``ports²`` Python deques;
* **traffic** is consumed in chunked ``(slots, ports)`` destination
  blocks from a :class:`~repro.switch.traffic.ChunkedTraffic` stream;
* **schedulers** are consulted once per slot on the occupancy matrix
  (``schedule_matrix``) when they support it, falling back to the
  demand-set / occupancy-dict interfaces for the centralized adapters;
* **exact FIFO delay accounting without per-cell timestamps**: during
  the main pass only per-VOQ departure *counts* and a running
  departure-slot sum are maintained.  Afterwards a replay of the
  traffic stream (``traffic.clone()``) walks the same arrival sequence
  and resolves, per VOQ, which arrival indices the window's FIFO
  departures consumed — ``total_delay = Σ departure slots − Σ arrival
  slots`` over exactly those cells.  This is exact because every VOQ
  is FIFO and receives at most one cell per slot: the cells departing
  in the measured window are precisely arrival indices
  ``[dep_count_at_warmup, dep_count_at_end)`` of their VOQ.

The engine is pinned byte-identical to the scalar fabric on
:class:`~repro.switch.fabric.SwitchStats` across every scheduler ×
traffic model cell (``tests/test_switch/test_engine.py``); both
engines drive the same vectorized scheduler cores, which consume
randomness in a fixed per-slot pattern, so identical seeds yield
identical schedules.
"""

from __future__ import annotations

import numpy as np

from repro.switch.fabric import SwitchStats
from repro.switch.traffic import ChunkedTraffic


def _matches_from_pairs(
    pairs: list[tuple[int, int]]
) -> tuple[np.ndarray, np.ndarray]:
    if not pairs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    arr = np.asarray(pairs, dtype=np.int64)
    return arr[:, 0], arr[:, 1]


def _occupancy_dicts(q: np.ndarray) -> list[dict[int, float]]:
    """The scalar fabric's ``occupancy()`` view of the VOQ matrix."""
    return [
        {int(j): float(q[i, j]) for j in np.flatnonzero(q[i])}
        for i in range(q.shape[0])
    ]


def _demand_sets(q: np.ndarray) -> list[set[int]]:
    """The scalar fabric's ``demand()`` view of the VOQ matrix."""
    return [set(np.flatnonzero(q[i]).tolist()) for i in range(q.shape[0])]


def run_switch_vectorized(
    ports: int,
    traffic: ChunkedTraffic,
    scheduler,
    slots: int,
    warmup: int = 0,
    chunk_slots: int = 2048,
) -> SwitchStats:
    """Simulate ``slots`` cell slots on the vectorized engine.

    Semantics (and resulting :class:`SwitchStats`) are identical to
    :func:`repro.switch.simulator.run_switch`: ``warmup`` extra slots
    run first without being counted, queue state carries across the
    boundary, and departed cells keep their true arrival slots.

    ``traffic`` must be a fresh :class:`ChunkedTraffic` stream (the
    delay-accounting replay pass clones it back to slot 0).
    """
    if ports < 1:
        raise ValueError("need at least one port")
    if not isinstance(traffic, ChunkedTraffic):
        raise TypeError(
            "run_switch_vectorized needs a ChunkedTraffic stream "
            "(every repro.switch.traffic model returns one)"
        )
    if traffic.ports != ports:
        raise ValueError(
            f"traffic generates {traffic.ports} ports, switch has {ports}"
        )
    if chunk_slots < 1:
        raise ValueError("chunk_slots must be >= 1")
    horizon = warmup + slots
    # The scalar loop only resets stats when it *reaches* slot==warmup,
    # so with slots == 0 the warmup slots themselves are the window.
    window_start = warmup if slots > 0 else 0
    measured = horizon - window_start

    q = np.zeros((ports, ports), dtype=np.int64)
    qf = q.reshape(-1)  # flat view: 1-D fancy indexing is the fast path
    dep_cnt = np.zeros(ports * ports, dtype=np.int64)
    dep_cnt_window = np.zeros_like(dep_cnt)  # snapshot at window start
    arrivals = 0
    departures = 0
    dep_slot_sum = 0
    match_sizes: list[int] = []
    record_match = match_sizes.append

    weighted = hasattr(scheduler, "schedule_weighted")
    matrixed = hasattr(scheduler, "schedule_matrix")

    # Departure events are buffered per chunk (as flat VOQ indices) and
    # folded into dep_cnt with one bincount (per-slot scatter-adds
    # would dominate the loop).
    pend: list[np.ndarray] = []

    def _flush_departures() -> None:
        if pend:
            dep_cnt[:] += np.bincount(
                np.concatenate(pend), minlength=ports * ports
            )
            pend.clear()

    slot = 0
    while slot < horizon:
        count = min(chunk_slots, horizon - slot)
        block = traffic.chunk(count)
        # extract the chunk's arrival events once (as flat VOQ indices):
        # per-slot work is one fancy-index update on an event slice
        ar, ain = np.nonzero(block >= 0)  # chronological (row-major)
        aflat = ain * ports + block[ar, ain]
        bounds = np.searchsorted(ar, np.arange(count + 1)).tolist()
        sched_matrix = scheduler.schedule_matrix if matrixed else None
        for r in range(count):
            s = slot + r
            if s == window_start and window_start > 0:
                # departures before this point belong to warmup; the
                # replay pass skips each VOQ's first dep_cnt_window cells
                _flush_departures()
                dep_cnt_window[:] = dep_cnt
            in_window = s >= window_start
            # arrivals: at most one cell per input, so (i, dest) pairs
            # are distinct and plain fancy indexing accumulates safely
            lo_r = bounds[r]
            hi_r = bounds[r + 1]
            if hi_r > lo_r:
                qf[aflat[lo_r:hi_r]] += 1
                if in_window:
                    arrivals += hi_r - lo_r
            # schedule on the current occupancy
            if matrixed:
                # internal matrix cores return partial permutations over
                # backlogged VOQs by construction; a per-chunk negative-
                # occupancy check below still catches a broken core
                mi, mj = sched_matrix(q, s)
                k = len(mi)
                if k:
                    mflat = mi * ports + mj
                    qf[mflat] -= 1
                    pend.append(mflat)
            else:
                if weighted:
                    pairs = scheduler.schedule_weighted(_occupancy_dicts(q), s)
                else:
                    pairs = scheduler.schedule(_demand_sets(q), s)
                mi, mj = _matches_from_pairs(pairs)
                # external pair lists get the scalar fabric's checks
                k = len(mi)
                if k:
                    if (
                        len(set(mi.tolist())) != k
                        or len(set(mj.tolist())) != k
                    ):
                        raise ValueError("schedule is not a matching")
                    mflat = mi * ports + mj
                    moved = qf[mflat]
                    if moved.min() <= 0:
                        raise ValueError("scheduled empty VOQ")
                    qf[mflat] = moved - 1
                    pend.append(mflat)
            if in_window:
                departures += k
                dep_slot_sum += s * k
                record_match(k)
        slot += count
        if qf.min() < 0:
            raise ValueError("scheduled empty VOQ")
    _flush_departures()

    backlog = int(q.sum())

    # Replay pass: resolve the arrival slots the window's FIFO
    # departures consumed.  Cells departing in the window from VOQ
    # (i, j) are its arrival indices [dep_cnt_window, dep_cnt).
    arr_slot_sum = 0
    if departures > 0:
        replay = traffic.clone()
        lo = dep_cnt_window
        hi = dep_cnt
        seen = np.zeros(ports * ports, dtype=np.int64)
        slot = 0
        while slot < horizon:
            count = min(chunk_slots, horizon - slot)
            block = replay.chunk(count)
            rows, ins = np.nonzero(block >= 0)  # chronological (row-major)
            if rows.size:
                keys = ins * ports + block[rows, ins]
                order = np.argsort(keys, kind="stable")
                ks = keys[order]
                starts = np.flatnonzero(np.r_[True, ks[1:] != ks[:-1]])
                counts = np.diff(np.r_[starts, len(ks)])
                # per-VOQ arrival index of each event
                idx_in_group = np.arange(len(ks)) - np.repeat(starts, counts)
                k_global = seen[ks] + idx_in_group
                mask = (k_global >= lo[ks]) & (k_global < hi[ks])
                if mask.any():
                    arr_slot_sum += int(
                        (slot + rows[order][mask]).sum()
                    )
                seen[ks[starts]] += counts
            slot += count

    stats = SwitchStats(
        slots=measured,
        arrivals=int(arrivals),
        departures=int(departures),
        total_delay=int(dep_slot_sum - arr_slot_sum),
        backlog=backlog,
        ports=ports,
        match_sizes=match_sizes,
    )
    return stats
