"""Israeli–Itai randomized maximal matching — the classical ½-MCM.

Reference [15]: "A fast and simple randomized parallel algorithm for
maximal matching", IPL 1986.  The paper under reproduction cites it as
*the* baseline its (1−ε)-MCM improves on, and notes PIM/iSLIP descend
from it.

We implement the standard proposal variant: each phase every unmatched
node flips a coin to act as *proposer* or *acceptor* (this is
Israeli–Itai's random edge-orientation step, which prevents a node from
simultaneously proposing and accepting); proposers invite one random
unmatched neighbor; acceptors accept one incoming invitation uniformly
at random; matched nodes announce themselves so neighbors stop
inviting them.  A constant fraction of incident-edge mass is removed
per phase in expectation, giving O(log n) phases w.h.p.

A phase costs 3 communication rounds (propose / accept / announce).
Nodes terminate locally when matched or out of unmatched neighbors, so
the network run ends exactly when the matching is maximal.

Two executable forms (ISSUE 3): :func:`israeli_itai_program` is the
generator spec, :func:`israeli_itai_array` the vectorized array
program; ``israeli_itai_matching(..., backend=...)`` picks, and both
produce byte-identical ``RunResult``s from the same seed.
"""

from __future__ import annotations

from typing import Generator, Sequence

import numpy as np

from repro.distributed.backends import (
    ArrayContext,
    BatchedArrayContext,
    replay_acceptor_choices,
    run_program,
    run_program_batched,
)
from repro.distributed.network import Network, RunResult
from repro.distributed.node import Node
from repro.graphs.graph import Graph
from repro.matching.matching import Matching

# Protocol tags (single characters: O(1) bits per message + the tag).
_PROPOSE = "p"
_ACCEPT = "a"
_MATCHED = "m"


def israeli_itai_program(node: Node) -> Generator[None, None, int]:
    """Node program; returns the node's mate id, or -1 if unmatched."""
    active = set(node.neighbors)
    mate = -1
    while True:
        if mate != -1 or not active:
            node.finish(mate)
            return mate
        proposer = bool(node.rng.integers(0, 2))
        target = -1
        if proposer and active:
            target = int(node.rng.choice(sorted(active)))
            node.send(target, _PROPOSE)
        yield
        # Acceptors pick one proposal uniformly at random.
        if not proposer:
            proposals = sorted(src for src, tag in node.inbox if tag == _PROPOSE)
            if proposals:
                chosen = int(node.rng.choice(proposals))
                mate = chosen
                node.send(chosen, _ACCEPT)
        yield
        # Proposers learn whether their invitation was accepted.
        if proposer and target != -1:
            if any(src == target and tag == _ACCEPT for src, tag in node.inbox):
                mate = target
        if mate != -1:
            node.broadcast(_MATCHED)
        yield
        for src, tag in node.inbox:
            if tag == _MATCHED:
                active.discard(src)


def israeli_itai_array(ctx: ArrayContext) -> list[int]:
    """Array program twin of :func:`israeli_itai_program`.

    SoA state: an ``int64`` ``mate`` column and an ``alive`` mask of
    not-yet-returned nodes.  A live node's *active* set in the
    generator form is its never-matched neighbors (every matched node
    announces ``_MATCHED`` in its matching phase, and a node that quits
    unmatched provably has no unmatched neighbors left), so the
    residual graph is implied by ``mate == -1``.

    Randomness comes from ``ctx.lanes`` — the bulk bit-exact replica
    of the per-node Generator streams — with the draw sets of each
    resume precomputed as arrays: live nodes flip their coins in one
    bulk call, proposers and accepting acceptors each consume one bulk
    bounded draw (``choice(seq)`` consumes exactly ``integers(0,
    len(seq))``), and nodes that returned draw nothing.  Only the
    selection of the chosen neighbor from each proposer's candidate
    list stays a per-node loop — this is the attack on the documented
    ~1.3x RNG-replay bound (ISSUE 5; bench_s5 records the before/
    after).
    """
    g = ctx.graph
    size = ctx.n
    outputs: list[int | None] = [None] * size
    mate = np.full(size, -1, dtype=np.int64)
    alive = np.ones(size, dtype=bool)
    degrees = g.degrees()
    snbrs = [g.sorted_neighbors(v) for v in range(size)]
    lanes = ctx.lanes
    eight = np.int64(8)  # every tag payload is one 8-bit character
    while alive.any():
        # Resume A: matched nodes and nodes with no unmatched neighbor
        # return; the rest flip proposer coins and send invitations.
        ctx.begin_step(int(alive.sum()))
        unmatched = mate == -1
        residual_deg = ctx.masked_degrees(unmatched)
        for v in np.flatnonzero(alive & ~unmatched).tolist():
            outputs[v] = int(mate[v])
        for v in np.flatnonzero(alive & unmatched & (residual_deg == 0)).tolist():
            outputs[v] = -1
        alive &= unmatched & (residual_deg > 0)
        live = np.flatnonzero(alive)
        if live.size == 0:
            break  # everyone returned without yielding: no round counted
        coins = lanes.integers(0, 2, live)
        proposer_ids = live[coins == 1]
        # Each proposer replays choice(cands): one bounded draw, then
        # the idx-th entry of its sorted unmatched-neighbor list.
        idx = lanes.integers(0, residual_deg[proposer_ids], proposer_ids)
        proposer = np.zeros(size, dtype=bool)
        proposer[proposer_ids] = True
        target = np.full(size, -1, dtype=np.int64)
        for k in range(proposer_ids.size):
            v = int(proposer_ids[k])
            cand = snbrs[v][unmatched[snbrs[v]]]
            target[v] = cand[idx[k]]
        ctx.account_groups(
            np.full(proposer_ids.size, eight), np.ones(proposer_ids.size, np.int64)
        )
        ctx.end_step(True)
        # Resume B: each acceptor (non-proposer) picks one incoming
        # proposal uniformly at random and replies.
        ctx.begin_step(live.size)
        accepted_by = np.full(size, -1, dtype=np.int64)
        targets = target[proposer_ids]
        acceptors, chosen = replay_acceptor_choices(
            lanes, targets, proposer_ids, proposer
        )
        accepted_by[acceptors] = chosen
        ctx.account_groups(
            np.full(acceptors.size, eight), np.ones(acceptors.size, np.int64)
        )
        ctx.end_step(True)
        # Resume C: proposers learn acceptance; every freshly matched
        # node broadcasts _MATCHED to its *full* neighborhood.
        ctx.begin_step(live.size)
        successful = proposer_ids[accepted_by[targets] == proposer_ids]
        mate[successful] = target[successful]
        mate[acceptors] = accepted_by[acceptors]
        matched_now = np.concatenate((successful, acceptors))
        ctx.account_groups(
            np.full(matched_now.size, eight), degrees[matched_now]
        )
        ctx.end_step(True)
    return outputs


def israeli_itai_array_batched(ctx: BatchedArrayContext) -> list[list[int]]:
    """Seed-axis batched twin of :func:`israeli_itai_array`.

    The same three-resume phase over ``(num_seeds, n)`` SoA state, with
    all coin flips of a resume drawn as one bulk ``ctx.lanes`` call and
    the two ``choice`` replays (proposal targets, accepted proposals)
    drawn as one bulk bounded draw each — ``choice(seq)`` consumes
    exactly ``integers(0, len(seq))``, so only the *selection* of the
    chosen neighbor from each lane's candidate list stays a per-lane
    loop.  Seeds terminate independently (masked rows), and every
    seed's ``RunResult`` is byte-identical to its single-seed run.
    """
    g = ctx.graph
    num_seeds, size = ctx.num_seeds, ctx.n
    outputs: list[list[int | None]] = [[None] * size for _ in range(num_seeds)]
    mate = np.full((num_seeds, size), -1, dtype=np.int64)
    alive = np.ones((num_seeds, size), dtype=bool)
    degrees = g.degrees()
    snbrs = [g.sorted_neighbors(v) for v in range(size)]
    lanes = ctx.lanes
    eight = np.int64(8)
    while alive.any():
        # Resume A: matched nodes and nodes with no unmatched neighbor
        # return; the rest flip proposer coins and send invitations.
        ctx.begin_step(alive.sum(axis=1))
        unmatched = mate == -1
        residual_deg = ctx.masked_degrees(unmatched)
        for s, v in zip(*np.nonzero(alive & ~unmatched)):
            outputs[s][v] = int(mate[s, v])
        for s, v in zip(*np.nonzero(alive & unmatched & (residual_deg == 0))):
            outputs[s][v] = -1
        alive &= unmatched & (residual_deg > 0)
        in_phase = alive.any(axis=1)
        lrows, lcols = np.nonzero(alive)  # row-major: per-seed node order
        if lrows.size == 0:
            break  # every seed returned without yielding: no rounds
        coins = lanes.integers(0, 2, lrows * size + lcols)
        picked = coins == 1
        prows, pcols = lrows[picked], lcols[picked]
        # Each proposer replays choice(cands): one bounded draw, then
        # the idx-th entry of its sorted unmatched-neighbor list.
        idx = lanes.integers(
            0, residual_deg[prows, pcols], prows * size + pcols
        )
        proposer = np.zeros((num_seeds, size), dtype=bool)
        proposer[prows, pcols] = True
        tgt = np.empty(prows.size, dtype=np.int64)
        for k in range(prows.size):
            s, v = int(prows[k]), int(pcols[k])
            cand = snbrs[v][unmatched[s, snbrs[v]]]
            tgt[k] = cand[idx[k]]
        ctx.account_groups(
            np.full(prows.size, eight), np.ones(prows.size, np.int64), prows
        )
        ctx.end_step(in_phase)
        # Resume B: each acceptor (non-proposer) picks one incoming
        # proposal uniformly at random and replies.
        ctx.begin_step(alive.sum(axis=1))
        accepted_by = np.full((num_seeds, size), -1, dtype=np.int64)
        acc_lanes, chosen = replay_acceptor_choices(
            lanes, prows * size + tgt, pcols, proposer.reshape(-1)
        )
        accepted_by.reshape(-1)[acc_lanes] = chosen
        ctx.account_groups(
            np.full(acc_lanes.size, eight),
            np.ones(acc_lanes.size, np.int64),
            acc_lanes // size,
        )
        ctx.end_step(in_phase)
        # Resume C: proposers learn acceptance; every freshly matched
        # node broadcasts _MATCHED to its *full* neighborhood.
        ctx.begin_step(alive.sum(axis=1))
        succeeded = accepted_by[prows, tgt] == pcols
        mate[prows[succeeded], pcols[succeeded]] = tgt[succeeded]
        arows, acols = np.nonzero(accepted_by != -1)
        mate[arows, acols] = accepted_by[arows, acols]
        m_rows = np.concatenate((prows[succeeded], arows))
        m_cols = np.concatenate((pcols[succeeded], acols))
        ctx.account_groups(
            np.full(m_rows.size, eight), degrees[m_cols], m_rows
        )
        ctx.end_step(in_phase)
    return outputs


def israeli_itai_matching_batched(
    g: Graph,
    seeds: "Sequence[int]",
    max_rounds: int = 100_000,
    backend: str = "array",
) -> list[tuple[Matching, RunResult]]:
    """Run Israeli–Itai once per seed as a single batched execution.

    ``backend="array"`` (default) executes the whole batch as one
    :class:`~repro.distributed.backends.BatchedArrayBackend` run;
    ``"generator"`` falls back to one ``Network`` per seed.  Both
    return per-seed ``(Matching, RunResult)`` pairs identical to
    ``[israeli_itai_matching(g, seed=s) for s in seeds]``.
    """
    results = run_program_batched(
        g,
        backend=backend,
        generator_program=israeli_itai_program,
        batched_array_program=israeli_itai_array_batched,
        seeds=seeds,
        max_rounds=max_rounds,
    )
    return [(matching_from_mates(g, res.outputs), res) for res in results]


def israeli_itai_matching(
    g: Graph, seed: int = 0, max_rounds: int = 100_000,
    backend: str = "generator",
) -> tuple[Matching, RunResult]:
    """Run Israeli–Itai on ``g``; returns (maximal matching, run metrics).

    ``backend`` selects the execution engine (``"generator"`` or
    ``"array"``); both yield byte-identical results from the same seed.
    """
    res = run_program(
        g,
        backend=backend,
        generator_program=israeli_itai_program,
        array_program=israeli_itai_array,
        seed=seed,
        max_rounds=max_rounds,
    )
    return matching_from_mates(g, res.outputs), res


def matching_from_mates(g: Graph, mates: dict[int, int]) -> Matching:
    """Assemble a :class:`Matching` from per-node mate outputs.

    Validates symmetry: ``mates[u] == v`` requires ``mates[v] == u`` —
    a distributed matching algorithm whose two endpoints disagree is
    broken, and we want tests to see that loudly.
    """
    m = Matching(g)
    for v, mate in mates.items():
        if mate is None or mate == -1:
            continue
        if mates.get(mate) != v:
            raise ValueError(
                f"asymmetric mates: node {v} claims {mate}, "
                f"node {mate} claims {mates.get(mate)}"
            )
        if mate > v:
            m.add(v, mate)
    return m
