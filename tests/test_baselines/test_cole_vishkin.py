"""Tests for deterministic Cole–Vishkin coloring + ring matching."""

import math

import pytest

from repro.baselines.cole_vishkin import (
    _cv_step,
    cv_steps_needed,
    ring_coloring,
    ring_maximal_matching,
)
from repro.graphs import Graph, cycle_graph, path_graph


class TestCvStep:
    def test_reduces_bits(self):
        # colors with 10 bits -> at most 2*9+1
        c = _cv_step(0b1010101010, 0b1010101000)
        assert c <= 2 * 9 + 1

    def test_preserves_properness_around_ring(self):
        """A synchronous CV step on a properly colored oriented ring
        yields a proper coloring again (the classical invariant)."""
        colors = [7, 12, 33, 90, 41, 6]
        n = len(colors)
        assert all(colors[i] != colors[(i + 1) % n] for i in range(n))
        new = [_cv_step(colors[i], colors[(i - 1) % n]) for i in range(n)]
        assert all(new[i] != new[(i + 1) % n] for i in range(n))

    def test_identical_colors_rejected(self):
        with pytest.raises(ValueError):
            _cv_step(5, 5)


class TestStepsNeeded:
    def test_log_star_growth(self):
        assert cv_steps_needed(8) <= 4
        assert cv_steps_needed(10**6) <= 6
        assert cv_steps_needed(10**18) <= 7  # log* flatness

    def test_monotone(self):
        vals = [cv_steps_needed(n) for n in (4, 16, 256, 65536)]
        assert vals == sorted(vals)


class TestRingColoring:
    @pytest.mark.parametrize("n", [3, 4, 5, 7, 16, 100, 513])
    def test_proper_three_coloring(self, n):
        colors, _ = ring_coloring(cycle_graph(n))
        for v in range(n):
            assert colors[v] in (0, 1, 2)
            assert colors[v] != colors[(v + 1) % n]

    def test_deterministic(self):
        a, _ = ring_coloring(cycle_graph(50))
        b, _ = ring_coloring(cycle_graph(50))
        assert a == b

    def test_log_star_rounds(self):
        _, small = ring_coloring(cycle_graph(8))
        _, large = ring_coloring(cycle_graph(4096))
        # log*-ish: three orders of magnitude in n cost a few rounds.
        assert large.rounds <= small.rounds + 4

    def test_non_ring_rejected(self):
        with pytest.raises(ValueError, match="not the canonical ring"):
            ring_coloring(path_graph(5))
        with pytest.raises(ValueError, match="n >= 3"):
            ring_coloring(Graph(2, [(0, 1)]))

    def test_message_bits_shrink_with_colors(self):
        _, res = ring_coloring(cycle_graph(1000))
        # first round carries raw ids (~10 bits); bound stays small
        assert res.max_message_bits <= 16


class TestRingMatching:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 9, 64, 255])
    def test_maximal(self, n):
        m, _ = ring_maximal_matching(cycle_graph(n))
        assert m.is_maximal()
        assert len(m) >= n // 3  # any maximal matching on a cycle

    def test_even_ring_near_perfect(self):
        m, _ = ring_maximal_matching(cycle_graph(64))
        assert len(m) >= 64 // 3

    def test_deterministic(self):
        a, _ = ring_maximal_matching(cycle_graph(40))
        b, _ = ring_maximal_matching(cycle_graph(40))
        assert a.edges() == b.edges()

    def test_rounds_essentially_constant(self):
        _, r1 = ring_maximal_matching(cycle_graph(16))
        _, r2 = ring_maximal_matching(cycle_graph(2048))
        assert r2.rounds <= r1.rounds + 4

    def test_half_approximation(self):
        from repro.matching import maximum_matching_size

        for n in (7, 12, 33):
            g = cycle_graph(n)
            m, _ = ring_maximal_matching(g)
            assert 2 * len(m) >= maximum_matching_size(g)
