"""Matching fundamentals: data structures, exact algorithms, baselines.

Everything here is *centralized* code: the :class:`Matching` structure
shared by all algorithms, augmenting-path machinery (Hopcroft–Karp
lemmas 3.4/3.5 of the paper), exact maximum-matching algorithms used as
oracles, and sequential greedy baselines.
"""

from repro.matching.matching import Matching
from repro.matching.augmenting import (
    apply_paths,
    augmenting_paths_maximal_set,
    find_augmenting_paths_upto,
    is_augmenting_path,
    shortest_augmenting_path_length,
    symmetric_difference_components,
)
from repro.matching.greedy import greedy_maximal_matching, greedy_mwm
from repro.matching.hopcroft_karp import hopcroft_karp, hopcroft_karp_truncated
from repro.matching.hungarian import hungarian_mwm, solve_assignment
from repro.matching.blossom import maximum_matching_blossom
from repro.matching.exact_mwm import exact_mwm_small, max_weight_matching
from repro.matching.oracle import maximum_matching_size, maximum_matching_weight
from repro.matching.certify import (
    certified_ratio_lower_bound,
    certify_maximum_bipartite,
    certify_no_short_augmenting_path,
    is_vertex_cover,
    konig_vertex_cover,
    verify_cover_certificate,
)

__all__ = [
    "Matching",
    "apply_paths",
    "augmenting_paths_maximal_set",
    "find_augmenting_paths_upto",
    "is_augmenting_path",
    "shortest_augmenting_path_length",
    "symmetric_difference_components",
    "greedy_maximal_matching",
    "greedy_mwm",
    "hopcroft_karp",
    "hopcroft_karp_truncated",
    "hungarian_mwm",
    "solve_assignment",
    "maximum_matching_blossom",
    "exact_mwm_small",
    "max_weight_matching",
    "maximum_matching_size",
    "maximum_matching_weight",
    "certified_ratio_lower_bound",
    "certify_maximum_bipartite",
    "certify_no_short_augmenting_path",
    "is_vertex_cover",
    "konig_vertex_cover",
    "verify_cover_certificate",
]
