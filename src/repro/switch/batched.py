"""Seed-axis batched scheduler cores for the switch engine.

Each core consults the whole lane stack per cell slot — the engine
passes the ``(num_seeds, ports, ports)`` occupancy stack ``q`` plus an
incrementally maintained boolean request stack ``req`` (``q > 0``,
updated in place on arrivals/departures so no core rescans occupancy) —
and returns one combined partial permutation as ``(lanes, mflat)``
index arrays — winner lanes plus flat indices into the stacked VOQ
state, ready for the engine's fancy-index departure update.  Every
lane's matching sequence is byte-identical to what that lane's own
scheduler instance would have produced against
:func:`repro.switch.engine.run_switch_vectorized`:

* randomness stays **per lane** — each lane keeps its own stream
  (adopted from the scheduler instances: greedy's
  :class:`~repro.switch.schedulers.PriorityTape` buffers, stacked into
  one tape matrix; PIM's generator), and the cores consume it in
  exactly the single-engine order and counts, so generator state after
  a batched run matches N sequential runs;
* the **matrix work** is lifted to the lane stack: greedy resolves its
  priority-local-minima rounds once over the block-diagonal union of
  all lanes' request pairs (lane ``s``'s inputs/outputs live in
  rows/cols ``[s·P, (s+1)·P)``, so lanes cannot interact, and the
  composite ``(priority, position)`` keys restricted to one lane order
  its pairs exactly as the single core does); iSLIP stacks its pointer
  and cyclic-key state along the lane axis and resolves grant/accept
  with one ``argmin`` / scatter-min over the stack; PIM evaluates its
  rank-pick grant/accept over the stack with per-lane uniform draws
  gated on that lane still having live requests (matching the single
  core's early ``break``).

:func:`batch_schedulers` decides whether a scheduler list has a batched
core; the engine falls back to consulting lanes one at a time (still
one batched traffic/arrival/replay pass) when it returns ``None``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.islip import IslipScheduler
from repro.baselines.pim import pim_iterations_default
from repro.switch.schedulers import (
    _PRIORITY_POS_BITS,
    GreedyMaximalScheduler,
    IslipAdapter,
    PimScheduler,
    PriorityTape,
    _priority_rounds,
)

_EMPTY = np.empty(0, dtype=np.int64)


class BatchedGreedyCore:
    """Lane-stacked random-order greedy maximal matching.

    Per slot: each lane consumes one priority per backlogged pair from
    its own :class:`~repro.switch.schedulers.PriorityTape` stream (the
    single core's exact values and counts), then one
    priority-local-minima rounds computation
    (:func:`~repro.switch.schedulers._priority_rounds`) resolves the
    block-diagonal union of all lanes' pairs.  Composite keys order by
    (priority, position); positions within a lane are ascending in the
    lane's own pair order, so the union restricted to one lane is
    ordered exactly as the single core orders that lane — and
    block-diagonal ids keep lanes from ever competing.

    The per-lane tape buffers are adopted into one ``(num_seeds, cap)``
    matrix with per-lane cursors, so the per-slot draw is a single flat
    gather instead of ``num_seeds`` Python-level ``take()`` calls.
    Refills pull 2048-value blocks from each lane's own generator
    exactly when that lane's remaining buffer can't cover its current
    need — the same block-draw schedule a sequential
    :meth:`PriorityTape.take` sequence produces, so generator state
    after a batched run matches N sequential runs.  ``finalize()``
    writes the unconsumed remainders back to the tape objects.
    """

    def __init__(self, schedulers: list[GreedyMaximalScheduler]) -> None:
        self._tapes = [s.tape for s in schedulers]
        self._rngs = [t._rng for t in self._tapes]
        self._mat: np.ndarray | None = None

    def _ensure(self, cell: int) -> None:
        """Lazily build the tape matrix once the port count is known."""
        num_seeds = len(self._tapes)
        # worst case after a refill: need-1 leftover plus a full block
        cap = cell + PriorityTape.BLOCK
        self._cap = cap
        self._mat = np.empty((num_seeds, cap), dtype=np.uint32)
        self._matf = self._mat.reshape(-1)
        self._pos = np.zeros(num_seeds, dtype=np.int64)
        self._used = np.zeros(num_seeds, dtype=np.int64)
        self._rowbase = np.arange(num_seeds, dtype=np.int64) * cap
        self._edges = np.arange(num_seeds + 1, dtype=np.int64) * cell
        self._arange = np.arange(num_seeds * cell, dtype=np.int64)
        for s, t in enumerate(self._tapes):
            rem = t._buf[t._pos :]  # always < BLOCK <= cap
            self._mat[s, : rem.size] = rem
            self._used[s] = rem.size

    def _refill(self, s: int, need: int) -> None:
        """Compact lane ``s``'s row and draw blocks until ``need`` fits."""
        row = self._mat[s]
        pos = int(self._pos[s])
        avail = int(self._used[s]) - pos
        if avail and pos:
            row[:avail] = row[pos : pos + avail].copy()
        self._pos[s] = 0
        rng = self._rngs[s]
        block = PriorityTape.BLOCK
        while avail < need:
            row[avail : avail + block] = rng.integers(
                0, 1 << 32, size=block, dtype=np.uint32
            )
            avail += block
        self._used[s] = avail

    #: the engine maintains the sorted active-pair list incrementally
    #: and passes it as ``ids`` instead of a request matrix
    uses_ids = True

    def schedule(
        self,
        q: np.ndarray,
        req: np.ndarray | None,
        slot: int,
        ids: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        num_seeds, ports, _ = q.shape
        if self._mat is None:
            self._ensure(ports * ports)
        if ids is None:  # lane-major, row-major per lane
            ids = req.reshape(-1).nonzero()[0]
        n = ids.size
        if n == 0:
            return _EMPTY, _EMPTY
        bounds = np.searchsorted(ids, self._edges)
        counts = bounds[1:] - bounds[:-1]
        short = np.flatnonzero(counts > self._used - self._pos)
        if short.size:
            for s in short:
                self._refill(int(s), int(counts[s]))
        ar = self._arange[:n]
        u = self._matf.take(
            np.repeat(self._rowbase + self._pos - bounds[:-1], counts) + ar
        )
        self._pos += counts
        key = (u.astype(np.int64) << _PRIORITY_POS_BITS) | ar
        # block-diagonal ids: rows = lane*P + i, cols = lane*P + j; the
        # pair's flat VOQ id rides along as the rounds payload, so the
        # winners *are* the departure indices the engine needs
        if ports & (ports - 1) == 0:
            lp = ports.bit_length() - 1
            si = ids >> lp  # already lane*P + i
            pm = ports - 1
            sjo = (si & ~pm) + (ids & pm)
        else:
            si = ids // ports
            sjo = si - si % ports + (ids - si * ports)
        num_rows = num_seeds * ports
        sjo += num_rows
        mflat = _priority_rounds(si, sjo, key, ids, 2 * num_rows)
        return mflat // (ports * ports), mflat

    def finalize(self) -> None:
        """Write unconsumed tape remainders back to the lane tapes."""
        if self._mat is None:
            return
        for s, t in enumerate(self._tapes):
            t._buf = self._mat[s, self._pos[s] : self._used[s]].copy()
            t._pos = 0


class BatchedIslipCore:
    """Lane-stacked iSLIP: pointer/key state along axis 0.

    Deterministic given pointer state, so lifting is pure array work:
    grant is an ``argmin`` over the stacked cyclic-key matrices, accept
    a scatter-min over ``(lane, input)``-encoded keys.  A lane whose
    live requests are exhausted simply stops producing grants while the
    other lanes keep iterating — the single core's early ``break`` has
    no observable effect beyond that.  ``finalize()`` writes the
    advanced pointers back to the adapters, matching the state a
    sequential run would leave behind.
    """

    def __init__(self, adapters: list[IslipAdapter]) -> None:
        inners = [a.inner for a in adapters]
        self._inners = inners
        first = inners[0]
        self.num_inputs = first.num_inputs
        self.num_outputs = first.num_outputs
        self.iterations = first.iterations
        self.grant_ptr = np.stack([i.grant_ptr for i in inners])
        self.accept_ptr = np.stack([i.accept_ptr for i in inners])
        self._in_ids = np.arange(self.num_inputs, dtype=np.int64)
        self._out_ids = np.arange(self.num_outputs, dtype=np.int64)
        self._gkey = (
            self._in_ids[None, :, None] - self.grant_ptr[:, None, :]
        ) % self.num_inputs
        self._akey = (
            self._out_ids[None, None, :] - self.accept_ptr[:, :, None]
        ) % self.num_outputs

    def schedule(
        self, q: np.ndarray, req: np.ndarray, slot: int
    ) -> tuple[np.ndarray, np.ndarray]:
        num_seeds, ni, no = req.shape
        in_free = np.ones((num_seeds, ni), dtype=bool)
        out_free = np.ones((num_seeds, no), dtype=bool)
        lf: list[np.ndarray] = []
        mi: list[np.ndarray] = []
        mj: list[np.ndarray] = []
        best = np.empty(num_seeds * ni, dtype=np.int64)
        for it in range(self.iterations):
            live = req & in_free[:, :, None] & out_free[:, None, :]
            if not live.any():
                break
            # grant: per (lane, output), requesting input closest to ptr
            gi = np.argmin(np.where(live, self._gkey, ni), axis=1)
            granted = np.take_along_axis(live, gi[:, None, :], axis=1)[:, 0, :]
            ls, jv = np.nonzero(granted)
            iv = gi[ls, jv]
            # accept: scatter-min over (lane, input)-encoded keys; akey
            # values within one input's grants are distinct, so
            # min(enc) <=> min(akey), exactly the single core's rule
            enc = self._akey[ls, iv, jv] * no + jv
            best.fill(ni * no + no)
            group = ls * ni + iv
            np.minimum.at(best, group, enc)
            acc = best[group] == enc
            al = ls[acc]
            ai = iv[acc]
            aj = jv[acc]
            in_free[al, ai] = False
            out_free[al, aj] = False
            if it == 0 and al.size:
                # pointers advance only for first-iteration wins
                self.grant_ptr[al, aj] = (ai + 1) % ni
                self.accept_ptr[al, ai] = (aj + 1) % no
                self._gkey[al, :, aj] = (
                    self._in_ids[None, :] - self.grant_ptr[al, aj][:, None]
                ) % ni
                self._akey[al, ai, :] = (
                    self._out_ids[None, :] - self.accept_ptr[al, ai][:, None]
                ) % no
            lf.append(al)
            mi.append(ai)
            mj.append(aj)
        if not lf:
            return _EMPTY, _EMPTY
        lanes = np.concatenate(lf)
        mflat = (lanes * ni + np.concatenate(mi)) * no + np.concatenate(mj)
        return lanes, mflat

    def finalize(self) -> None:
        """Write the advanced pointer state back to the adapters."""
        for s, inner in enumerate(self._inners):
            inner.grant_ptr[:] = self.grant_ptr[s]
            inner.accept_ptr[:] = self.accept_ptr[s]
            inner._gkey[:] = self._gkey[s]
            inner._akey[:] = self._akey[s]


def _rank_pick_lanes(
    candidates: np.ndarray, u: np.ndarray, axis: int
) -> np.ndarray:
    """Lane-stacked :func:`repro.baselines.pim._rank_pick` (axis 1 or 2)."""
    counts = candidates.sum(axis=axis)
    pick = np.minimum((u * counts).astype(np.int64), np.maximum(counts - 1, 0))
    rank = np.cumsum(candidates, axis=axis) - 1
    return candidates & (rank == np.expand_dims(pick, axis))


class BatchedPimCore:
    """Lane-stacked PIM with per-lane uniform draws.

    The single core draws one ``rng.random(ports)`` per grant phase and
    one per accept phase, *only* on iterations where it still has live
    requests (then breaks).  The stacked core replicates that pattern:
    per iteration it draws grant+accept uniforms only for lanes whose
    own live mask is non-empty, so each lane's stream is consumed
    identically.
    """

    def __init__(
        self, schedulers: list[PimScheduler], iterations: int | None
    ) -> None:
        self._rngs = [s.rng for s in schedulers]
        self._iterations = iterations

    def schedule(
        self, q: np.ndarray, req: np.ndarray, slot: int
    ) -> tuple[np.ndarray, np.ndarray]:
        num_seeds, ni, no = req.shape
        iterations = self._iterations
        if iterations is None:
            iterations = pim_iterations_default(max(ni, no))
        in_free = np.ones((num_seeds, ni), dtype=bool)
        out_free = np.ones((num_seeds, no), dtype=bool)
        lf: list[np.ndarray] = []
        mi: list[np.ndarray] = []
        mj: list[np.ndarray] = []
        u_grant = np.zeros((num_seeds, no))
        u_accept = np.zeros((num_seeds, ni))
        for _ in range(iterations):
            live = req & in_free[:, :, None] & out_free[:, None, :]
            act = live.any(axis=(1, 2))
            if not act.any():
                break
            # stale u rows for inactive lanes are harmless: their live
            # masks are all-False, so rank-pick selects nothing
            for s in np.flatnonzero(act):
                rng = self._rngs[s]
                u_grant[s] = rng.random(no)
                u_accept[s] = rng.random(ni)
            grant = _rank_pick_lanes(live, u_grant, axis=1)
            accept = _rank_pick_lanes(grant, u_accept, axis=2)
            ls, ii, jj = np.nonzero(accept)
            in_free[ls, ii] = False
            out_free[ls, jj] = False
            lf.append(ls)
            mi.append(ii)
            mj.append(jj)
        if not lf:
            return _EMPTY, _EMPTY
        lanes = np.concatenate(lf)
        mflat = (lanes * ni + np.concatenate(mi)) * no + np.concatenate(mj)
        return lanes, mflat


def batch_schedulers(schedulers: list):
    """A batched core for ``schedulers``, or ``None`` to consult per lane.

    Batching requires every lane to run the *same* scheduler class with
    compatible static configuration (dimensions, iteration counts);
    subclasses fall back, since their overrides could change semantics
    the cores replicate.
    """
    kind = type(schedulers[0])
    if any(type(s) is not kind for s in schedulers):
        return None
    if kind is GreedyMaximalScheduler:
        return BatchedGreedyCore(schedulers)
    if kind is IslipAdapter:
        inners = [s.inner for s in schedulers]
        first = inners[0]
        if any(
            type(i) is not IslipScheduler
            or i.num_inputs != first.num_inputs
            or i.num_outputs != first.num_outputs
            or i.iterations != first.iterations
            for i in inners
        ):
            return None
        return BatchedIslipCore(schedulers)
    if kind is PimScheduler:
        iterations = schedulers[0].iterations
        if any(s.iterations != iterations for s in schedulers):
            return None
        return BatchedPimCore(schedulers, iterations)
    return None
