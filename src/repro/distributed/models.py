"""Model variants: LOCAL and CONGEST (Section 2 of the paper).

``Model`` couples a name with a per-message bit bound as a function of
the network, so the simulator can enforce (CONGEST) or merely record
(LOCAL) message sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable


class CongestViolation(RuntimeError):
    """A message exceeded the model's per-message bit bound."""


@dataclass(frozen=True)
class Model:
    """A synchronous model variant.

    Parameters
    ----------
    name:
        Display name.
    bound_bits:
        ``f(n, max_degree) -> limit`` giving the per-message bit budget,
        or ``None`` for unbounded (LOCAL).
    """

    name: str
    bound_bits: Callable[[int, int], int] | None = None

    def limit(self, n: int, max_degree: int) -> int | None:
        """Per-message bit limit for an n-node network, or ``None``."""
        if self.bound_bits is None:
            return None
        return self.bound_bits(n, max_degree)


def _congest_bound(n: int, _max_degree: int) -> int:
    # The conventional CONGEST budget is c * log2(n) bits — a function
    # of n alone by definition, so this bound deliberately ignores the
    # max_degree argument (degree-sensitive budgets go through
    # congest_log_degree).  We use a generous c = 32 so protocol
    # constants (tags, a few counters per message) never trip honest
    # O(log n) algorithms, while anything polynomial-size fails loudly.
    return 32 * max(1, math.ceil(math.log2(max(2, n))))


LOCAL = Model("LOCAL")
CONGEST = Model("CONGEST", _congest_bound)


def congest_with_bound(bits: int) -> Model:
    """A CONGEST variant with an explicit absolute per-message bound.

    By construction the bound ignores both ``n`` and ``max_degree`` —
    it is the "my radio sends B bits per slot" model used by the
    adversarial benches.
    """
    return Model(f"CONGEST({bits}b)", lambda n, d: bits)


def congest_log_degree(c: int = 32) -> Model:
    """A CONGEST variant bounded by ``c · ⌈log2 Δ⌉`` bits per message.

    This is the budget matching Theorem 3.8's O(log Δ) message bound
    for the bipartite algorithm: on low-degree networks it is *tighter*
    than the classical c·log n CONGEST budget, so running a protocol
    under it actually certifies the stronger degree-dependent claim.
    It is the consumer of :meth:`Model.limit`'s ``max_degree`` argument
    (``Δ = 0`` or 1 is clamped to the single-bit regime ``⌈log2 2⌉``).
    """
    return Model(
        f"CONGEST({c}·logΔ)",
        lambda n, max_degree: c * max(1, math.ceil(math.log2(max(2, max_degree)))),
    )
