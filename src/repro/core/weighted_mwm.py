"""Section 4 — (½−ε)-MWM via the derived weight function (Theorem 4.5).

Machinery (all per the paper's Preliminaries of Section 4):

* ``wrap(r, s)`` — for an unmatched edge, the length-≤3 path
  ``(M(r), r), (r, s), (s, M(s))`` (missing ends omitted);
* ``g(P) = w(M ⊕ P) − w(M)`` — the gain of applying P;
* the derived weights ``w_M(u, v) = g(wrap(u, v))`` for unmatched
  edges and 0 on matched ones — the gain of adding (u,v) and evicting
  its endpoints' matched edges.

Algorithm 5: repeat ``(3/2δ)·ln(2/ε)`` times — run a black-box δ-MWM
on (V, E, w_M) to get M′, then augment M by all wraps of M′ edges.
Lemma 4.1: the result is a matching of weight ≥ w(M) + w_M(M′) (wraps
may overlap only on removed M edges, which only helps).  With Lemma
4.2 (k=1: 3-augmentations recover ≥ ⅔ of the gap to ½·w(M*)), each
iteration multiplies the gap to ½·w(M*) by (1 − 2δ/3), giving
w(M) ≥ (½−ε)·w(M*) after the stated number of iterations (Lemma 4.3).

The black box is the weight-class algorithm of
:mod:`repro.baselines.lps_mwm` (the paper plugs in [18] with δ = 1/5).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.baselines.lps_mwm import lps_mwm
from repro.distributed.network import RunResult
from repro.graphs.graph import Graph
from repro.matching.greedy import greedy_mwm
from repro.matching.matching import Matching

#: derived weights below this are treated as non-positive (float noise guard)
_EPS_W = 1e-12


def wrap_path(m: Matching, r: int, s: int) -> list[tuple[int, int]]:
    """``wrap(r, s)``: the edges (M(r),r), (r,s), (s,M(s)) that exist.

    Defined for unmatched edges (r, s) w.r.t. the matching ``m``.
    """
    if m.is_matched_edge(r, s):
        raise ValueError(f"wrap is defined for edges outside M, got ({r},{s})")
    edges = []
    if m.mate(r) != -1:
        edges.append((m.mate(r), r))
    edges.append((r, s))
    if m.mate(s) != -1:
        edges.append((s, m.mate(s)))
    return edges


def wrap_gain(g: Graph, m: Matching, r: int, s: int) -> float:
    """``g(wrap(r, s))`` = w(r,s) − w(r,M(r)) − w(s,M(s))."""
    gain = g.weight(r, s)
    if m.mate(r) != -1:
        gain -= g.weight(r, m.mate(r))
    if m.mate(s) != -1:
        gain -= g.weight(s, m.mate(s))
    return gain


def derived_weights(g: Graph, m: Matching) -> list[float]:
    """The full w_M vector, indexed by edge id (0 on matched edges).

    Vectorized over the CSR arrays: with ``vw[x]`` the weight of x's
    matched edge (0 when free), ``w_M(u, v) = w(u, v) − vw[u] − vw[v]``
    for unmatched edges — the same scalar arithmetic as
    :func:`wrap_gain`, evaluated for all edges at once.
    """
    lo, hi = g.endpoints_array()
    w = g.weights_array()
    vertex_matched_w = np.zeros(g.n, dtype=np.float64)
    matched_eids = []
    for u, v in m.edges():
        wuv = g.weight(u, v)
        vertex_matched_w[u] = wuv
        vertex_matched_w[v] = wuv
        matched_eids.append(g.edge_id(u, v))
    wm = w - vertex_matched_w[lo] - vertex_matched_w[hi]
    if matched_eids:
        wm[np.asarray(matched_eids, dtype=np.int64)] = 0.0
    return wm.tolist()


def apply_wraps(m: Matching, mprime_edges: list[tuple[int, int]]) -> Matching:
    """Line 5 of Algorithm 5: ``M ← M ⊕ ⋃_{e∈M′} wrap(e)``.

    ``mprime_edges`` must form a matching disjoint from M.  Wraps may
    share *removed* M edges (both endpoints of an M edge can serve
    different M′ edges) — handled by collecting removals as a set, as
    in Lemma 4.1's argument.
    """
    new = m.copy()
    to_remove: set[tuple[int, int]] = set()
    seen: set[int] = set()
    for r, s in mprime_edges:
        if r in seen or s in seen:
            raise ValueError(f"M' is not a matching: vertex reuse at ({r},{s})")
        seen.update((r, s))
        if m.is_matched_edge(r, s):
            raise ValueError(f"M' must be disjoint from M, got ({r},{s})")
        for v in (r, s):
            mv = m.mate(v)
            if mv != -1:
                to_remove.add((v, mv) if v < mv else (mv, v))
    for a, b in to_remove:
        new.remove(a, b)
    for r, s in mprime_edges:
        new.add(r, s)
    return new


def default_iterations(eps: float, delta: float) -> int:
    """Line 2 of Algorithm 5: ⌈(3/2δ)·ln(2/ε)⌉ iterations."""
    return math.ceil(3.0 / (2.0 * delta) * math.log(2.0 / eps))


def weighted_mwm(
    g: Graph,
    eps: float = 0.1,
    delta: float = 0.2,
    seed: int = 0,
    iterations: int | None = None,
    adaptive: bool = False,
    check_lemma41: bool = False,
    box: str = "sequential",
    max_rounds: int = 10_000_000,
) -> tuple[Matching, RunResult, int]:
    """Theorem 4.5: distributed (½−ε)-MWM.

    Parameters
    ----------
    eps:
        Target slack (result ≥ (½−ε)·w(M*) w.h.p.).
    delta:
        Guarantee of the black box (the paper uses δ = 1/5 for [18];
        our weight-class box achieves ¼−ε′, so 1/5 is conservative).
    adaptive:
        Stop early when no edge has positive derived weight — then no
        3-augmentation can improve M and further iterations are no-ops.
    check_lemma41:
        Assert w(M_new) ≥ w(M) + w_M(M′) each iteration (debug).
    box:
        δ-MWM black box: ``"sequential"`` (provable quality,
        O(log W · log n) rounds) or ``"interleaved"`` (the O(log n)
        variant of [18]'s interleaving — bench A4 compares them).

    Returns ``(matching, metrics, iterations_executed)``.
    """
    if box not in ("sequential", "interleaved"):
        raise ValueError(f"unknown box {box!r}")
    if not g.weighted:
        raise ValueError("weighted_mwm needs a weighted graph")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    if iterations is None:
        iterations = default_iterations(eps, delta)
    seq = np.random.SeedSequence(seed)
    m = Matching(g)
    total = RunResult()
    it = 0
    for it in range(1, iterations + 1):
        wm = derived_weights(g, m)
        # One broadcast round lets both endpoints of every edge compute
        # w_M locally (each node announces its matched edge's weight).
        total.charged_rounds += 1
        total.total_messages += 2 * g.m
        keep = [eid for eid, w in enumerate(wm) if w > _EPS_W]
        if not keep:
            if adaptive:
                it -= 1
                break
            continue
        gprime = g.subgraph(keep).with_weights([wm[e] for e in keep])
        box_seed = int(seq.spawn(1)[0].generate_state(1)[0])
        if box == "interleaved":
            from repro.baselines.lps_interleaved import lps_interleaved_mwm

            mprime, res = lps_interleaved_mwm(
                gprime, seed=box_seed, max_rounds=max_rounds
            )
        else:
            mprime, res = lps_mwm(
                gprime, seed=box_seed, max_rounds=max_rounds
            )
        total = total.merge(res)
        gain_lb = sum(wm[g.edge_id(u, v)] for u, v in mprime.edges())
        old_weight = m.weight()
        m = apply_wraps(m, mprime.edges())
        # Applying the wraps is 2 more rounds (evict mates, set new).
        total.charged_rounds += 2
        if check_lemma41 and m.weight() < old_weight + gain_lb - 1e-9:
            raise AssertionError(
                f"Lemma 4.1 violated: {m.weight()} < {old_weight} + {gain_lb}"
            )
    total.outputs = {v: m.mate(v) for v in range(g.n)}
    return m, total, it


def weighted_mwm_reference(
    g: Graph,
    eps: float = 0.1,
    delta: float = 0.5,
    iterations: int | None = None,
    black_box: Callable[[Graph], Matching] = greedy_mwm,
) -> tuple[Matching, int]:
    """Centralized Algorithm 5 with a sequential black box.

    Default box: heaviest-edge-first greedy (an exact ½-MWM, so
    δ = ½).  Used to cross-check the distributed pipeline and in the
    black-box ablation.
    """
    if not g.weighted:
        raise ValueError("weighted_mwm_reference needs a weighted graph")
    if iterations is None:
        iterations = default_iterations(eps, delta)
    m = Matching(g)
    it = 0
    for it in range(1, iterations + 1):
        wm = derived_weights(g, m)
        keep = [eid for eid, w in enumerate(wm) if w > _EPS_W]
        if not keep:
            it -= 1
            break
        gprime = g.subgraph(keep).with_weights([wm[e] for e in keep])
        mprime = black_box(gprime)
        m = apply_wraps(m, mprime.edges())
    return m, it
