"""E13 — weighted scheduling: Section 4 meets the switch.

The weighted side of the paper's motivation: "packets may have weights
representing their importance ... the goal is to find a set of
disjoint edges (packets) whose sum of weights is as large as possible."
The classical instantiation weighs each VOQ by its occupancy — exact
MWM scheduling is the textbook 100%-throughput policy, and Algorithm
5's (½−ε)-MWM is its distributed approximation.

Measured: exact MWM vs the (½−ε) reference vs queue-blind PIM under
bursty and hotspot traffic — backlog and delay.  Shape: the weighted
schedulers track each other closely and dominate queue-blind
scheduling when queues diverge (bursty), while all behave alike under
smooth uniform load.
"""

from repro.analysis import format_table, print_banner
from repro.switch import (
    MaxWeightScheduler,
    PimScheduler,
    WeightedPaperScheduler,
    bernoulli_uniform,
    bursty,
    run_switch,
)

from conftest import once

PORTS = 8
SLOTS = 1200
WARMUP = 200


def run_e13():
    rows = []
    for pattern, gen_factory in [
        ("uniform 0.8", lambda: bernoulli_uniform(PORTS, 0.8, seed=5)),
        ("bursty 0.7", lambda: bursty(PORTS, 0.7, burst_len=24.0, seed=5)),
    ]:
        for name, factory in [
            ("PIM (queue-blind)", lambda: PimScheduler(PORTS, seed=2)),
            ("MWM exact", lambda: MaxWeightScheduler(PORTS)),
            ("Alg.5 (1/2-eps)", lambda: WeightedPaperScheduler(PORTS, eps=0.1)),
        ]:
            st = run_switch(PORTS, gen_factory(), factory(), SLOTS, WARMUP)
            rows.append(
                [pattern, name, st.throughput, st.mean_delay, st.backlog]
            )
    return rows


def test_weighted_switch(benchmark, report):
    rows = once(benchmark, run_e13)

    def show():
        print_banner(
            "E13 — occupancy-weighted scheduling (Section 4's MWM in "
            "the switch)",
            "approximate MWM schedulers track exact MWM; queue-blind "
            "scheduling suffers under bursts",
        )
        print(format_table(
            ["traffic", "scheduler", "throughput", "mean delay",
             "backlog"], rows
        ))

    report(show)
    by = {(r[0], r[1]): r for r in rows}
    for pattern in ("uniform 0.8", "bursty 0.7"):
        exact = by[(pattern, "MWM exact")]
        approx = by[(pattern, "Alg.5 (1/2-eps)")]
        # The (½−ε) scheduler stays within a moderate factor of exact
        # MWM on delay (same stability region).
        assert approx[3] <= exact[3] * 3 + 5
        # Everyone sustains the offered (admissible) load.
        target = float(pattern.split()[1])
        assert abs(approx[2] - target) < 0.08
