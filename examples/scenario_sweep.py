#!/usr/bin/env python3
"""Scenario sweep: the algorithm × graph-family matrix, in parallel.

The paper's theorems hold "for all graphs", so we check them on more
than G(n, p): scale-free Barabási–Albert hubs, Watts–Strogatz small
worlds, heavy-tailed configuration graphs, stochastic Kronecker
communities, adversarial planted-matching instances and high-Δ
lollipops.  ``ParallelRunner`` fans the cells over worker processes;
because every cell's seeds come from its own ``SeedSequence`` spawn,
the records are identical for any worker count.
"""

from repro.analysis import ParallelRunner, scenario_matrix, scenario_table
from repro.graphs import barabasi_albert, planted_matching


def main() -> None:
    # A taste of the families themselves.
    g = barabasi_albert(60, 2, seed=7)
    print(f"barabasi_albert(60, 2): {g.m} edges, max degree {g.max_degree()}")
    g, pairs = planted_matching(40, noise=0.08, seed=7)
    print(f"planted_matching(40):   {g.m} edges hiding a perfect matching "
          f"of {len(pairs)} pairs")

    # A direct ParallelRunner sweep: any picklable fn(seed=..., **point).
    from repro.analysis.scenarios import run_scenario_cell

    runner = ParallelRunner(workers=2)
    cells = runner.sweep(
        run_scenario_cell,
        points=[
            {"scenario": "barabasi_albert", "algo": "general_mcm", "size": 18},
            {"scenario": "planted_matching", "algo": "general_mcm", "size": 18},
        ],
        root_seed=7,
        seeds_per_cell=2,
    )
    for cell in cells:
        print(f"{cell.params['scenario']:>18}: "
              f"worst ratio {cell.min('ratio'):.3f} "
              f"(bound {cell.records[0]['bound']:.3f})")

    # The curated matrix (subset here; the CLI runs all of it:
    # ``python -m repro scenarios --size 24 --workers 4``).
    results = scenario_matrix(
        scenarios=["gnp", "barabasi_albert", "planted_matching", "comb"],
        algos=["generic_mcm", "general_mcm"],
        size=16,
        seeds=[0],
        workers=2,
    )
    print()
    print(scenario_table(results))


if __name__ == "__main__":
    main()
