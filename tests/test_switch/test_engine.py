"""Tests for the vectorized long-horizon switch engine.

The load-bearing property is *byte-identity*: `run_switch_vectorized`
must produce exactly the same `SwitchStats` as the scalar reference
loop for every scheduler × traffic-model cell, including delay
accounting (which the engine reconstructs without per-cell timestamps).
"""

import numpy as np
import pytest

from repro.switch import (
    ChunkedTraffic,
    GreedyMaximalScheduler,
    IslipAdapter,
    MaxWeightScheduler,
    PaperScheduler,
    PimScheduler,
    WeightedPaperScheduler,
    bernoulli_uniform,
    bursty,
    diagonal,
    hotspot,
    run_switch,
    run_switch_vectorized,
)
from repro.switch.schedulers import MaxSizeScheduler

PORTS = 8

TRAFFIC = {
    "bernoulli": lambda: bernoulli_uniform(PORTS, 0.6, seed=5),
    "diagonal": lambda: diagonal(PORTS, 0.5, seed=6),
    "bursty": lambda: bursty(PORTS, 0.5, burst_len=6.0, seed=7),
    "hotspot": lambda: hotspot(PORTS, 0.4, hot_fraction=0.3, seed=8),
}

SCHEDULERS = {
    "pim": lambda: PimScheduler(PORTS, seed=1),
    "islip": lambda: IslipAdapter(PORTS),
    "greedy": lambda: GreedyMaximalScheduler(PORTS, seed=2),
    "paper": lambda: PaperScheduler(PORTS, k=3, seed=3),
    "maxsize": lambda: MaxSizeScheduler(PORTS),
    "mwm": lambda: MaxWeightScheduler(PORTS),
    "wpaper": lambda: WeightedPaperScheduler(PORTS, eps=0.1),
}


@pytest.mark.parametrize("tname", sorted(TRAFFIC))
@pytest.mark.parametrize("sname", sorted(SCHEDULERS))
class TestIdentity:
    def test_identical_stats(self, tname, sname):
        """Vectorized == scalar on the full SwitchStats, warmup included."""
        scalar = run_switch(
            PORTS, TRAFFIC[tname](), SCHEDULERS[sname](), slots=120, warmup=30
        )
        vec = run_switch_vectorized(
            PORTS,
            TRAFFIC[tname](),
            SCHEDULERS[sname](),
            slots=120,
            warmup=30,
            chunk_slots=37,  # odd on purpose: window boundary mid-chunk
        )
        assert vec == scalar

    def test_conservation_without_warmup(self, tname, sname):
        """With warmup=0 the window sees every cell: conservation is exact."""
        st = run_switch_vectorized(
            PORTS, TRAFFIC[tname](), SCHEDULERS[sname](), slots=150
        )
        assert st.arrivals == st.departures + st.backlog
        assert st.slots == 150
        assert len(st.match_sizes) == 150
        assert st.total_delay >= 0


class TestIdentityEdgeCases:
    def test_distributed_paper_scheduler(self):
        a = run_switch(
            4,
            bernoulli_uniform(4, 0.5, seed=11),
            PaperScheduler(4, k=3, seed=4, distributed=True),
            slots=40,
            warmup=10,
        )
        b = run_switch_vectorized(
            4,
            bernoulli_uniform(4, 0.5, seed=11),
            PaperScheduler(4, k=3, seed=4, distributed=True),
            slots=40,
            warmup=10,
        )
        assert a == b

    def test_zero_slots_with_warmup_measures_warmup(self):
        """The scalar loop never reaches its stats reset when slots=0 —
        the warmup slots themselves are the measured window.  The engine
        reproduces that quirk."""
        a = run_switch(
            PORTS, bernoulli_uniform(PORTS, 0.7, seed=9),
            GreedyMaximalScheduler(PORTS, seed=1), slots=0, warmup=50,
        )
        b = run_switch_vectorized(
            PORTS, bernoulli_uniform(PORTS, 0.7, seed=9),
            GreedyMaximalScheduler(PORTS, seed=1), slots=0, warmup=50,
        )
        assert a == b
        assert a.slots == 50

    def test_zero_slots_zero_warmup(self):
        st = run_switch_vectorized(
            PORTS, bernoulli_uniform(PORTS, 0.5, seed=1),
            GreedyMaximalScheduler(PORTS), slots=0,
        )
        assert st.slots == 0
        assert st.arrivals == st.departures == st.backlog == 0
        assert st.match_sizes == []


class TestChunkInvariance:
    def test_consumer_chunk_size_irrelevant(self):
        """The stats are a pure function of (params, seed), not of how
        the engine slices the stream into chunks."""
        results = [
            run_switch_vectorized(
                PORTS,
                bernoulli_uniform(PORTS, 0.6, seed=3),
                GreedyMaximalScheduler(PORTS, seed=4),
                slots=200,
                warmup=25,
                chunk_slots=cs,
            )
            for cs in (1, 7, 100, 999, 4096)
        ]
        assert all(r == results[0] for r in results)


class TestValidation:
    def test_rejects_plain_callable_traffic(self):
        with pytest.raises(TypeError):
            run_switch_vectorized(
                4, lambda slot: [], GreedyMaximalScheduler(4), slots=10
            )

    def test_rejects_port_mismatch(self):
        with pytest.raises(ValueError):
            run_switch_vectorized(
                4, bernoulli_uniform(8, 0.5), GreedyMaximalScheduler(4), slots=10
            )

    def test_rejects_bad_chunk_slots(self):
        with pytest.raises(ValueError):
            run_switch_vectorized(
                4, bernoulli_uniform(4, 0.5), GreedyMaximalScheduler(4),
                slots=10, chunk_slots=0,
            )

    def test_rejects_non_matching_schedule(self):
        class Bad:
            def schedule(self, demand, slot):
                # two cells out of the same input: not a matching
                return [(0, 0), (0, 1)]

        traffic = bernoulli_uniform(4, 1.0, seed=0)
        with pytest.raises(ValueError):
            run_switch_vectorized(4, traffic, Bad(), slots=5)

    def test_rejects_scheduling_empty_voq(self):
        class Bad:
            def schedule(self, demand, slot):
                return [(0, 0)]  # regardless of occupancy

        traffic = bernoulli_uniform(4, 0.0, seed=0)  # no arrivals ever
        with pytest.raises(ValueError):
            run_switch_vectorized(4, traffic, Bad(), slots=5)


class TestIslipPointerDesync:
    def test_sustained_uniform_load_reaches_full_throughput(self):
        """The first-iteration-only pointer-advance rule desynchronizes
        the round-robin pointers; under sustained saturated uniform
        traffic a *single* iSLIP iteration converges toward a rotating
        permutation schedule and near-unit throughput.  (The exact
        rotating schedule under persistent full demand is pinned in
        tests/test_baselines/test_switch_schedulers.py.)"""
        st = run_switch_vectorized(
            16,
            bernoulli_uniform(16, 1.0, seed=21),
            IslipAdapter(16, iterations=1),
            slots=2000,
            warmup=2000,
        )
        assert st.throughput > 0.95
