"""Golden-output harness for seed-identity testing.

The CSR refactor (ISSUE 2) must change *performance*, never *outputs*.
This module computes, for a fixed matrix of (algorithm, small graph,
seed) cells, a JSON-serializable snapshot of everything an experiment
would record: matching edges, MIS membership, colors, and the full
``RunResult`` accounting (rounds, messages, bits).

Usage
-----
Capture (run once, at the pre-refactor commit)::

    PYTHONPATH=src python -m tests.golden_harness

writes ``tests/goldens/seed_identity.json``.  The regression test
``tests/test_golden_seed_identity.py`` recomputes the same snapshot and
asserts byte-identical JSON against the captured file.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

import numpy as np

from repro.baselines.cole_vishkin import ring_coloring, ring_maximal_matching
from repro.baselines.hoepman import hoepman_mwm
from repro.baselines.israeli_itai import israeli_itai_matching
from repro.baselines.lps_interleaved import lps_interleaved_mwm
from repro.baselines.lps_mwm import lps_mwm
from repro.baselines.luby_mis import luby_mis
from repro.baselines.pim import pim_matching
from repro.core.general_mcm import general_mcm
from repro.core.generic_mcm import generic_mcm
from repro.core.kopt_mwm import kopt_mwm
from repro.core.bipartite_mcm import bipartite_mcm
from repro.core.weighted_mwm import weighted_mwm, weighted_mwm_reference
from repro.graphs.generators import (
    barabasi_albert,
    comb_graph,
    crown_graph,
    cycle_graph,
    gnp_random,
)
from repro.graphs.weights import assign_uniform_weights
from repro.matching.greedy import greedy_maximal_matching, greedy_mwm
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.oracle import maximum_matching_size

GOLDEN_PATH = pathlib.Path(__file__).parent / "goldens" / "seed_identity.json"


def _san(value: Any) -> Any:
    """Make a node output JSON-serializable without losing information."""
    if isinstance(value, (frozenset, set)):
        return {"__set__": sorted(_san(v) for v in value)}
    if isinstance(value, (tuple, list)):
        return [_san(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _san(v) for k, v in sorted(value.items())}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _res_dict(res: Any) -> dict[str, Any]:
    """RunResult -> plain dict (outputs keyed by str for JSON)."""
    return {
        "rounds": res.rounds,
        "charged_rounds": res.charged_rounds,
        "total_messages": res.total_messages,
        "total_bits": res.total_bits,
        "max_message_bits": res.max_message_bits,
        "outputs": {str(k): _san(res.outputs[k]) for k in sorted(res.outputs)},
    }


def _edges(m: Any) -> list[list[int]]:
    return [[int(u), int(v)] for u, v in m.edges()]


def compute_goldens() -> dict[str, Any]:
    """The full golden snapshot (deterministic; pure function of seeds)."""
    g_sparse = gnp_random(24, 0.2, seed=1)
    g_ba = barabasi_albert(30, 2, seed=2)
    g_crown, xs, ys = crown_graph(5)
    g_comb = comb_graph(8)
    g_ring = cycle_graph(9)
    g_w = assign_uniform_weights(gnp_random(20, 0.3, seed=3), seed=4)

    out: dict[str, Any] = {}

    mis, res = luby_mis(g_ba, seed=5)
    out["luby_mis/ba30"] = {"mis": sorted(mis), "res": _res_dict(res)}
    mis, res = luby_mis(g_sparse, seed=6)
    out["luby_mis/gnp24"] = {"mis": sorted(mis), "res": _res_dict(res)}

    m, res = israeli_itai_matching(g_sparse, seed=5)
    out["israeli_itai/gnp24"] = {"edges": _edges(m), "res": _res_dict(res)}
    m, res = israeli_itai_matching(g_ba, seed=7)
    out["israeli_itai/ba30"] = {"edges": _edges(m), "res": _res_dict(res)}

    m, res = bipartite_mcm(g_crown, 3, xs=xs, seed=7)
    out["bipartite_mcm/crown5"] = {"edges": _edges(m), "res": _res_dict(res)}

    m, res, iters = general_mcm(g_comb, 3, seed=7)
    out["general_mcm/comb8"] = {
        "edges": _edges(m),
        "iterations": iters,
        "res": _res_dict(res),
    }

    m, stats = generic_mcm(g_comb, k=2, seed=7)
    out["generic_mcm/comb8"] = {
        "edges": _edges(m),
        "conflict_sizes": {str(k): v for k, v in sorted(stats.conflict_sizes.items())},
        "mis_sizes": {str(k): v for k, v in sorted(stats.mis_sizes.items())},
        "res": _res_dict(stats.result),
    }

    m, res, iters = weighted_mwm(g_w, eps=0.3, seed=7)
    out["weighted_mwm/gnp20w"] = {
        "edges": _edges(m),
        "weight": m.weight(),
        "iterations": iters,
        "res": _res_dict(res),
    }

    m, iters = weighted_mwm_reference(g_w, eps=0.3)
    out["weighted_mwm_reference/gnp20w"] = {
        "edges": _edges(m),
        "weight": m.weight(),
        "iterations": iters,
    }

    m, passes = kopt_mwm(g_w, k=2)
    out["kopt_mwm/gnp20w"] = {
        "edges": _edges(m),
        "weight": m.weight(),
        "passes": passes,
    }

    m, res = hoepman_mwm(g_w)
    out["hoepman/gnp20w"] = {"edges": _edges(m), "res": _res_dict(res)}

    m, res = lps_mwm(g_w, seed=9)
    out["lps_mwm/gnp20w"] = {"edges": _edges(m), "res": _res_dict(res)}

    # ISSUE 5 cells: a second weight distribution for the weight-class
    # box, and Algorithm 5 over the interleaved box (both captured from
    # the generator engine, matched byte-for-byte by the array ports).
    g_baw = assign_uniform_weights(g_ba, seed=8)
    m, res = lps_mwm(g_baw, seed=11)
    out["lps_mwm/ba30w"] = {"edges": _edges(m), "res": _res_dict(res)}

    m, res, iters = weighted_mwm(g_w, eps=0.3, seed=7, box="interleaved")
    out["weighted_mwm_interleaved/gnp20w"] = {
        "edges": _edges(m),
        "weight": m.weight(),
        "iterations": iters,
        "res": _res_dict(res),
    }

    m, res = lps_interleaved_mwm(g_w, seed=9)
    out["lps_interleaved/gnp20w"] = {"edges": _edges(m), "res": _res_dict(res)}

    colors, res = ring_coloring(g_ring)
    out["cole_vishkin_coloring/ring9"] = {
        "colors": {str(k): colors[k] for k in sorted(colors)},
        "res": _res_dict(res),
    }
    m, res = ring_maximal_matching(g_ring)
    out["cole_vishkin_matching/ring9"] = {"edges": _edges(m), "res": _res_dict(res)}

    m = pim_matching(g_crown, xs, ys, seed=3)
    out["pim/crown5"] = {"edges": _edges(m)}

    m = greedy_maximal_matching(g_sparse, rng=np.random.default_rng(11))
    out["greedy_maximal/gnp24"] = {"edges": _edges(m)}
    m = greedy_mwm(g_w)
    out["greedy_mwm/gnp20w"] = {"edges": _edges(m), "weight": m.weight()}

    m = hopcroft_karp(g_crown, xs=xs)
    out["hopcroft_karp/crown5"] = {"edges": _edges(m)}
    out["oracle_sizes"] = {
        "gnp24": maximum_matching_size(g_sparse),
        "ba30": maximum_matching_size(g_ba),
        "comb8": maximum_matching_size(g_comb),
    }
    return out


def to_canonical_json(goldens: dict[str, Any]) -> str:
    """Stable serialization used both for capture and comparison."""
    return json.dumps(goldens, indent=1, sort_keys=True)


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(to_canonical_json(compute_goldens()) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
