"""Exhaustive LCA-vs-oracle cross-check on *all* small graphs.

The acceptance bar of the serving layer: for every graph/seed cell,
the mapping induced by querying ``mate_of(v)`` for all ``v`` is
byte-identical to the global :func:`repro.lca.random_greedy_matching`
oracle, with caching on and off, under any query order.  Property
tests sample; these enumerate — every labelled graph on up to 5
vertices and every bipartite 3+3 graph (the same universes as
``tests/test_exhaustive.py``) goes through the full stack, so a
systematic disagreement on small structures (odd components, isolated
vertices, stars) cannot hide.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph
from repro.lca import LcaMatching, MatchingService, random_greedy_matching

from tests.test_exhaustive import all_bipartite, all_graphs

SEEDS = list(range(16))


def induced_map(query_mate, g: Graph) -> np.ndarray:
    """The global mapping assembled from point queries."""
    return np.asarray([query_mate(v) for v in range(g.n)], dtype=np.int64)


def check_cell(g: Graph, seed: int, *, edge_queries: bool = True) -> None:
    """One (graph, seed) cell of the net: every access path agrees."""
    oracle = random_greedy_matching(g, seed)
    truth = oracle.mate_array()

    lca = LcaMatching(g, seed)  # cache-free resolver
    assert np.array_equal(induced_map(lca.mate_of, g), truth)

    cached = MatchingService(g, seed, max_entries=4)  # eviction-heavy
    assert np.array_equal(induced_map(cached.mate_of, g), truth)

    uncached = MatchingService(g, seed, cache=False)
    assert np.array_equal(induced_map(uncached.mate_of, g), truth)

    if edge_queries:
        for u, v in g.edges():
            want = oracle.is_matched_edge(u, v)
            assert lca.edge_in_matching(u, v) == want
            assert cached.edge_in_matching(u, v) == want
            assert uncached.edge_in_matching(u, v) == want


class TestAllGraphsUpTo4:
    """Every labelled graph on <= 4 vertices x 16 seeds, all paths."""

    def test_every_cell_agrees(self):
        for n in (0, 1, 2, 3, 4):
            for g in all_graphs(n):
                for seed in SEEDS:
                    check_cell(g, seed)

    def test_rounds_oracle_identical(self):
        for g in all_graphs(4):
            for seed in SEEDS:
                scan = random_greedy_matching(g, seed)
                rounds = random_greedy_matching(g, seed, method="rounds")
                assert scan.mate_array().tolist() == rounds.mate_array().tolist()


class TestAllGraphsOn5:
    """All 1024 graphs on 5 vertices x 16 seeds (mate map, both cache
    modes); edge queries are covered exhaustively on <= 4 vertices."""

    def test_every_cell_agrees(self):
        for g in all_graphs(5):
            for seed in SEEDS:
                check_cell(g, seed, edge_queries=False)


class TestAllBipartite3x3:
    """All 512 bipartite 3+3 graphs x 16 seeds."""

    def test_every_cell_agrees(self):
        for g in all_bipartite(3, 3):
            for seed in SEEDS:
                check_cell(g, seed, edge_queries=False)


class TestQueryOrderAndMaximality:
    """Order independence + structural sanity of the induced mapping."""

    def test_reverse_and_shuffled_orders_identical(self):
        for g in all_graphs(4):
            for seed in (0, 1, 2):
                truth = random_greedy_matching(g, seed).mate_array()
                svc = MatchingService(g, seed, max_entries=2)
                rev = np.asarray(
                    [svc.mate_of(v) for v in reversed(range(g.n))],
                    dtype=np.int64,
                )[::-1]
                assert np.array_equal(rev, truth)

    def test_induced_mapping_is_maximal_matching(self):
        from repro.matching import Matching

        for g in all_graphs(5):
            svc = MatchingService(g, seed=7)
            mates = induced_map(svc.mate_of, g)
            m = Matching.from_mate_array(g, mates)  # validates matching-ness
            assert m.is_maximal()

    def test_nonedge_queries_answer_false(self):
        g = Graph(4, [(0, 1), (2, 3)])
        svc = MatchingService(g, seed=0)
        assert svc.edge_in_matching(0, 2) is False
        assert svc.edge_in_matching(1, 3) is False
        with pytest.raises(IndexError):
            svc.lca.mate_of(4)
