"""Tests for the k-opt MWM extension (the remark after Theorem 4.5)."""

import pytest
from hypothesis import given, settings

from repro.core import find_gain_augmentations, kopt_mwm
from repro.graphs import Graph, cycle_graph, gnp_random, path_graph
from repro.graphs.weights import assign_uniform_weights
from repro.matching import Matching, maximum_matching_weight

from tests.conftest import graphs


class TestFindGainAugmentations:
    def test_single_edge_gain(self):
        g = Graph(2, [(0, 1)], [5.0])
        m = Matching(g)
        out = find_gain_augmentations(g, m, 1)
        assert out == [(5.0, ((0, 1),))]

    def test_swap_via_length3(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [4.0, 2.0, 5.0])
        m = Matching(g, [(1, 2)])
        out = find_gain_augmentations(g, m, 2)
        # best: take both outer edges, drop the middle: gain 7.
        assert out[0][0] == pytest.approx(7.0)

    def test_shrinking_end_allowed(self):
        # Dropping a matched edge for a heavier adjacent one.
        g = Graph(3, [(0, 1), (1, 2)], [1.0, 9.0])
        m = Matching(g, [(0, 1)])
        out = find_gain_augmentations(g, m, 1)
        best_gain, best_edges = out[0]
        assert best_gain == pytest.approx(8.0)
        assert best_edges == ((0, 1), (1, 2))

    def test_alternating_cycle_found(self):
        g = cycle_graph(4).with_weights([1.0, 10.0, 1.0, 10.0])
        m = Matching(g, [(0, 1), (2, 3)])  # weight 2; rotating gives 20
        out = find_gain_augmentations(g, m, 2)
        assert out and out[0][0] == pytest.approx(18.0)
        assert len(out[0][1]) == 4  # the full cycle

    def test_no_positive_gain_when_optimal(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [5.0, 2.0, 5.0])
        m = Matching(g, [(0, 1), (2, 3)])
        assert find_gain_augmentations(g, m, 3) == []

    def test_respects_unmatched_budget(self):
        g = path_graph(6).with_weights([5.0, 1.0, 5.0, 1.0, 5.0])
        m = Matching(g, [(1, 2), (3, 4)])
        # Full rotation (3 unmatched edges, gain 13) needs k=3; with
        # k=2 the best move is a partial rotation of gain 8.
        best2 = find_gain_augmentations(g, m, 2)[0][0]
        best3 = find_gain_augmentations(g, m, 3)[0][0]
        assert best2 == pytest.approx(8.0)
        assert best3 == pytest.approx(13.0)

    def test_all_results_applicable(self):
        g = assign_uniform_weights(gnp_random(10, 0.4, seed=1), seed=1)
        from repro.matching.greedy import greedy_maximal_matching

        m = greedy_maximal_matching(g)
        for gain, edges in find_gain_augmentations(g, m, 2):
            m2 = m.symmetric_difference(edges)  # must not raise
            assert m2.weight() == pytest.approx(m.weight() + gain)


class TestKoptMwm:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_guarantee(self, k):
        g = assign_uniform_weights(gnp_random(16, 0.3, seed=k), seed=k)
        m, _ = kopt_mwm(g, k=k)
        opt = maximum_matching_weight(g)
        assert m.weight() >= (k / (k + 1)) * opt - 1e-9

    def test_k3_usually_near_optimal(self):
        g = assign_uniform_weights(gnp_random(14, 0.35, seed=9), seed=9)
        m, _ = kopt_mwm(g, k=3)
        assert m.weight() >= 0.9 * maximum_matching_weight(g)

    def test_unweighted_rejected(self):
        with pytest.raises(ValueError):
            kopt_mwm(path_graph(4))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kopt_mwm(path_graph(2).with_weights([1.0]), k=0)

    def test_local_optimality_postcondition(self):
        g = assign_uniform_weights(gnp_random(12, 0.3, seed=5), seed=5)
        m, _ = kopt_mwm(g, k=2)
        assert find_gain_augmentations(g, m, 2) == []

    @given(graphs(max_n=8, weighted=True))
    @settings(max_examples=30, deadline=None)
    def test_property_two_thirds(self, g):
        if not g.weighted:  # strategy yields unweighted when m == 0
            return
        m, _ = kopt_mwm(g, k=2)
        assert m.weight() >= (2 / 3) * maximum_matching_weight(g) - 1e-9
