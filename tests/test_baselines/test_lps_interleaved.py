"""Tests for the interleaved weight-class matching variant."""

import math

import pytest

from repro.baselines.lps_interleaved import lps_interleaved_mwm
from repro.baselines.lps_mwm import lps_mwm
from repro.graphs import Graph, gnp_random, path_graph
from repro.graphs.weights import (
    assign_exponential_weights,
    assign_uniform_weights,
)
from repro.matching import maximum_matching_weight


class TestQuality:
    @pytest.mark.parametrize("seed", range(5))
    def test_quarter_style_quality(self, seed):
        g = assign_uniform_weights(gnp_random(50, 0.12, seed=seed), seed=seed)
        m, _ = lps_interleaved_mwm(g, seed=seed)
        opt = maximum_matching_weight(g)
        assert m.weight() >= 0.25 * opt - 1e-9

    def test_heavy_tail(self):
        g = assign_exponential_weights(gnp_random(40, 0.15, seed=7), seed=7)
        m, _ = lps_interleaved_mwm(g, seed=7)
        assert m.weight() >= 0.25 * maximum_matching_weight(g) - 1e-9

    def test_heaviest_class_edge_always_served(self):
        """A uniquely heaviest, isolated-in-its-class edge must match."""
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], [1.0, 100.0, 1.0])
        m, _ = lps_interleaved_mwm(g, seed=1)
        assert (1, 2) in m

    def test_maximality_within_classes(self):
        """Result is maximal: any uncovered edge would keep both
        endpoints active forever."""
        g = assign_uniform_weights(gnp_random(30, 0.2, seed=3), seed=3)
        m, _ = lps_interleaved_mwm(g, seed=3)
        assert m.is_maximal()


class TestRounds:
    def test_faster_than_sequential(self):
        """The point of interleaving: rounds ~ O(log n), not
        O(log W · log n)."""
        g = assign_uniform_weights(gnp_random(80, 0.08, seed=4), seed=4)
        _, inter = lps_interleaved_mwm(g, seed=4)
        _, seq = lps_mwm(g, seed=4)
        assert inter.rounds < seq.rounds / 3

    def test_log_round_growth(self):
        for n in (64, 256):
            g = assign_uniform_weights(gnp_random(n, 8.0 / n, seed=n), seed=n)
            _, res = lps_interleaved_mwm(g, seed=n)
            assert res.rounds <= 3 * 10 * math.log2(n)


class TestMechanics:
    def test_unweighted_rejected(self):
        with pytest.raises(ValueError):
            lps_interleaved_mwm(path_graph(4))

    def test_empty(self):
        g = Graph(5, [], [])
        m, res = lps_interleaved_mwm(g)
        assert len(m) == 0 and res.rounds == 0

    def test_determinism(self):
        g = assign_uniform_weights(gnp_random(25, 0.2, seed=5), seed=5)
        a, _ = lps_interleaved_mwm(g, seed=9)
        b, _ = lps_interleaved_mwm(g, seed=9)
        assert a == b

    def test_congest_size_messages(self):
        g = assign_uniform_weights(gnp_random(60, 0.1, seed=6), seed=6)
        _, res = lps_interleaved_mwm(g, seed=6)
        assert res.max_message_bits <= 8 + 2 * math.log2(60) + 8
