"""Tests for the bursty (on/off Markov) traffic model."""

import pytest

from repro.switch import (
    IslipAdapter,
    PimScheduler,
    bursty,
    max_feasible_bursty_load,
    run_switch,
)


class TestBursty:
    def test_rate_close_to_load(self):
        gen = bursty(8, 0.5, burst_len=8.0, seed=1)
        total = sum(len(gen(t)) for t in range(4000))
        assert abs(total / (4000 * 8) - 0.5) < 0.08

    def test_bursts_keep_destination(self):
        gen = bursty(4, 0.6, burst_len=20.0, seed=2)
        # Track per-input destination streaks: within a burst the
        # destination is constant, so streak lengths should be well
        # above 1 on average.
        last = [None] * 4
        streak = [0] * 4
        streaks = []
        for t in range(2000):
            seen = set()
            for i, j in gen(t):
                seen.add(i)
                if last[i] == j:
                    streak[i] += 1
                else:
                    if streak[i]:
                        streaks.append(streak[i])
                    streak[i] = 1
                    last[i] = j
            for i in range(4):
                if i not in seen and streak[i]:
                    streaks.append(streak[i])
                    streak[i] = 0
                    last[i] = None
        assert sum(streaks) / len(streaks) > 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bursty(4, 0.0)
        with pytest.raises(ValueError):
            bursty(4, 1.0)
        with pytest.raises(ValueError):
            bursty(4, 0.5, burst_len=0.5)

    def test_infeasible_load_raises(self):
        """load=0.95 at burst_len=2 needs an off->on probability > 1;
        the old code clamped silently and delivered ~0.67 instead of
        0.95.  Now it refuses, naming the feasibility cap."""
        with pytest.raises(ValueError, match="max feasible load"):
            bursty(8, 0.95, burst_len=2.0)
        # the cap itself: burst_len / (burst_len + 1)
        assert max_feasible_bursty_load(2.0) == pytest.approx(2.0 / 3.0)
        with pytest.raises(ValueError, match="0.6667"):
            bursty(8, 0.95, burst_len=2.0)

    def test_feasible_boundary_accepted(self):
        # just under the cap works (the cap itself sits at p_on == 1,
        # where float rounding may land on either side)
        bursty(8, max_feasible_bursty_load(4.0) - 1e-9, burst_len=4.0)

    def test_realized_load_matches_requested_at_high_load(self):
        """Regression for the silent under-delivery: at load=0.9 the
        realized long-horizon arrival rate must track the request
        within 2%."""
        ports, load, slots = 16, 0.9, 60_000
        gen = bursty(ports, load, burst_len=16.0, seed=11)
        arrivals = int((gen.chunk(slots) >= 0).sum())
        realized = arrivals / (slots * ports)
        assert abs(realized - load) / load < 0.02

    def test_determinism(self):
        a = bursty(6, 0.4, seed=5)
        b = bursty(6, 0.4, seed=5)
        assert [a(t) for t in range(50)] == [b(t) for t in range(50)]

    def test_switch_survives_bursts(self):
        # warmup=0 so the conservation law is exact (warmup carries
        # queued cells into the measured window otherwise).
        st = run_switch(8, bursty(8, 0.6, seed=3), PimScheduler(8, seed=3),
                        slots=1500, warmup=0)
        assert st.arrivals == st.departures + st.backlog
        # Bursty same-destination traffic queues more than smooth
        # traffic but remains stable well below saturation.
        assert st.mean_delay < 100

    def test_bursty_harder_than_uniform(self):
        from repro.switch import bernoulli_uniform

        smooth = run_switch(8, bernoulli_uniform(8, 0.6, seed=4),
                            IslipAdapter(8), slots=1500, warmup=200)
        rough = run_switch(8, bursty(8, 0.6, burst_len=24.0, seed=4),
                           IslipAdapter(8), slots=1500, warmup=200)
        assert rough.mean_delay > smooth.mean_delay
