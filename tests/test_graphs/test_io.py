"""Unit tests for edge-list IO round-tripping."""

import pytest

from repro.graphs import (
    Graph,
    assign_uniform_weights,
    gnp_random,
    read_edgelist,
    write_edgelist,
)


class TestRoundTrip:
    def test_unweighted(self, tmp_path):
        g = gnp_random(20, 0.2, seed=1)
        p = tmp_path / "g.txt"
        write_edgelist(g, p)
        h = read_edgelist(p)
        assert h.n == g.n and h.edges() == g.edges()
        assert not h.weighted

    def test_weighted(self, tmp_path):
        g = assign_uniform_weights(gnp_random(15, 0.3, seed=2), seed=3)
        p = tmp_path / "g.txt"
        write_edgelist(g, p)
        h = read_edgelist(p)
        assert h.weighted
        for (u, v, w), (u2, v2, w2) in zip(
            g.iter_weighted_edges(), h.iter_weighted_edges()
        ):
            assert (u, v) == (u2, v2)
            assert w == pytest.approx(w2)

    def test_empty_graph(self, tmp_path):
        p = tmp_path / "e.txt"
        write_edgelist(Graph(4), p)
        h = read_edgelist(p)
        assert h.n == 4 and h.m == 0


class TestParsing:
    def test_comments_and_blank_lines(self, tmp_path):
        p = tmp_path / "c.txt"
        p.write_text("# header\nn 3\n\ne 0 1  # inline comment\n")
        h = read_edgelist(p)
        assert h.n == 3 and h.edges() == [(0, 1)]

    def test_missing_n_rejected(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("e 0 1\n")
        with pytest.raises(ValueError, match="missing 'n'"):
            read_edgelist(p)

    def test_duplicate_n_rejected(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("n 3\nn 4\n")
        with pytest.raises(ValueError, match="duplicate"):
            read_edgelist(p)

    def test_mixed_weighted_rejected(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("n 3\ne 0 1 2.0\ne 1 2\n")
        with pytest.raises(ValueError, match="mixed"):
            read_edgelist(p)

    def test_unknown_record_rejected(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("n 2\nq 0 1\n")
        with pytest.raises(ValueError, match="unknown record"):
            read_edgelist(p)

    def test_malformed_edge_rejected(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("n 2\ne 0\n")
        with pytest.raises(ValueError, match="malformed"):
            read_edgelist(p)
