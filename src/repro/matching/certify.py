"""Optimality certificates for matchings.

Approximation experiments live or die by trusting the oracle, so we
make the oracles *self-certifying* where classical duality allows:

* **König** (bipartite): a vertex cover of size |M| certifies that M
  is maximum — extracted from the Hopcroft–Karp alternating forest.
  Every bipartite |M*| used in the benchmarks can carry this
  certificate.
* **Berge**: M is maximum iff there is no augmenting path; checked by
  searching for one (exact in bipartite graphs; bounded-length in
  general graphs, where it certifies the Lemma 3.5 bound instead).

These are used by tests to validate the oracles and by downstream
users who want to trust reported ratios.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.matching.matching import Matching
from repro.matching.augmenting import shortest_augmenting_path_length


def konig_vertex_cover(g: Graph, m: Matching, xs: list[int] | None = None) -> list[int]:
    """A vertex cover of size |M| from a *maximum* bipartite matching M.

    König's construction: let Z be the vertices reachable from free X
    vertices by alternating paths (unmatched edges X→Y, matched edges
    Y→X).  Then ``(X \\ Z) ∪ (Y ∩ Z)`` is a vertex cover of size |M|.

    Raises ``ValueError`` if the graph is not bipartite.  If ``m`` is
    not maximum, the returned set is still a cover candidate but its
    size exceeds |M| — :func:`verify_cover_certificate` will say so.
    """
    if xs is None:
        part = g.bipartition()
        if part is None:
            raise ValueError("König requires a bipartite graph")
        xs = part[0]
    x_side = [False] * g.n
    for x in xs:
        x_side[x] = True

    reachable = [False] * g.n
    q: deque[int] = deque()
    for v in xs:
        if m.is_free(v):
            reachable[v] = True
            q.append(v)
    while q:
        v = q.popleft()
        if x_side[v]:
            for u in g.neighbors(v):
                if not m.is_matched_edge(v, u) and not reachable[u]:
                    reachable[u] = True
                    q.append(u)
        else:
            u = m.mate(v)
            if u != -1 and not reachable[u]:
                reachable[u] = True
                q.append(u)
    cover = [
        v
        for v in range(g.n)
        if (x_side[v] and not reachable[v]) or (not x_side[v] and reachable[v])
    ]
    return cover


def is_vertex_cover(g: Graph, cover: list[int]) -> bool:
    """Whether every edge has an endpoint in ``cover`` (vectorized)."""
    in_cover = np.zeros(g.n, dtype=bool)
    if cover:
        in_cover[np.asarray(list(cover), dtype=np.int64)] = True
    lo, hi = g.endpoints_array()
    return bool((in_cover[lo] | in_cover[hi]).all())


def verify_cover_certificate(g: Graph, m: Matching, cover: list[int]) -> bool:
    """The König certificate check: cover valid and |cover| = |M|.

    By weak duality |M'| ≤ |C| for every matching M' and cover C, so
    equality proves simultaneously that M is maximum and C minimum.
    """
    return is_vertex_cover(g, cover) and len(cover) == len(m)


def certify_maximum_bipartite(
    g: Graph, m: Matching, xs: list[int] | None = None
) -> bool:
    """End-to-end: extract the König cover and verify it against M."""
    try:
        cover = konig_vertex_cover(g, m, xs)
    except ValueError:
        return False
    return verify_cover_certificate(g, m, cover)


def certify_no_short_augmenting_path(
    g: Graph, m: Matching, max_len: int
) -> bool:
    """Berge-style bounded certificate (general graphs).

    True iff no augmenting path of length ≤ ``max_len`` exists — the
    hypothesis of Lemma 3.5, certifying |M| ≥ (1 − 1/(k+1))·|M*| for
    max_len = 2k−1.
    """
    length = shortest_augmenting_path_length(g, m, upto=max_len)
    return length is None or length > max_len


def certified_ratio_lower_bound(g: Graph, m: Matching, max_len: int) -> float:
    """The best ratio certified by the absence of short augmenting paths.

    Returns (1 − 1/(k+1)) for the largest k with 2k−1 ≤ certified
    horizon, or 0.0 when even single-edge augmentations exist.
    """
    best = 0.0
    for ell in range(1, max_len + 1, 2):
        if not certify_no_short_augmenting_path(g, m, ell):
            break
        k = (ell + 1) // 2
        best = 1.0 - 1.0 / (k + 1)
    return best


# ----------------------------------------------------------------------
# Degradation oracle (robustness tier)
# ----------------------------------------------------------------------
#
# Under a fault plan a distributed matching run no longer terminates
# with a clean maximal matching: crashed nodes report nothing, and a
# lost ACCEPT or a crash between accept and announce leaves a *widow* —
# a survivor whose claimed mate does not claim it back.  The oracle
# below grades exactly what honest degradation permits: the symmetric
# survivor pairs must still form a valid matching, and it must be
# maximal on the survivor subgraph once widows (who rightly believe
# they are matched, and so stop proposing) are excused.


@dataclass(frozen=True)
class DegradationReport:
    """Verdict of :func:`certify_degraded_matching`.

    ``widows`` are ``(vertex, claimed_mate)`` pairs whose claim is not
    reciprocated — expected fault damage, reported but not a violation.
    ``violations`` are survivor edges with both endpoints free and
    neither endpoint a widow — impossible for a correct fault-adaptive
    protocol, so any entry is a real bug.
    """

    matched_pairs: int
    survivors: int
    crashed: int
    widows: tuple[tuple[int, int], ...]
    violations: tuple[tuple[int, int], ...]
    valid: bool
    maximal_on_survivors: bool

    @property
    def ok(self) -> bool:
        """Valid matching, maximal on survivors modulo widows."""
        return self.valid and self.maximal_on_survivors


def degraded_matching(
    g: Graph, outputs: dict[int, int | None]
) -> tuple[Matching, list[tuple[int, int]]]:
    """Assemble the symmetric-pair matching from faulted run outputs.

    The fault-tolerant sibling of ``matching_from_mates``: a pair
    (u, v) joins the matching only when *both* endpoints claim each
    other; one-sided claims are returned as widows instead of raising.
    ``None`` outputs (crashed nodes) claim nothing.
    """
    m = Matching(g)
    widows: list[tuple[int, int]] = []
    for v, mate in outputs.items():
        if mate is None or mate == -1:
            continue
        if outputs.get(mate) == v:
            if mate > v:
                m.add(v, mate)
        else:
            widows.append((v, mate))
    return m, widows


def survivor_subgraph(
    g: Graph,
    outputs: dict[int, int | None],
    failed_links: "np.ndarray | list[int]" = (),
) -> Graph:
    """The subgraph a faulted run leaves behind.

    Keeps every edge whose link survived and whose endpoints both
    completed the run (an output of ``None`` marks a crashed node).
    Vertex set unchanged; crashed vertices become isolated.
    """
    lo, hi = g.endpoints_array()
    alive = np.zeros(g.n, dtype=bool)
    for v, out in outputs.items():
        alive[v] = out is not None
    keep = alive[lo] & alive[hi]
    if len(failed_links):
        keep[np.asarray(failed_links, dtype=np.int64)] = False
    return g.subgraph(np.flatnonzero(keep))


def certify_degraded_matching(
    g: Graph,
    outputs: dict[int, int | None],
    failed_links: "np.ndarray | list[int]" = (),
) -> DegradationReport:
    """Grade a faulted matching run against honest-degradation rules.

    ``valid``: every symmetric pair is a real edge with distinct live
    endpoints (one-sided claims are widows, not violations).
    ``maximal_on_survivors``: no surviving edge joins two free
    non-widow survivors — free nodes quit only when every live
    neighbor was announced matched, so such an edge would prove the
    protocol (not the faults) wrong.  ``failed_links`` are the edge
    ids whose links died during the run
    (:meth:`repro.distributed.faults.FaultState.failed_links_by` of
    the final round).
    """
    try:
        m, widows = degraded_matching(g, outputs)
        valid = True
        matched = len(m)
    except (ValueError, IndexError):
        # a claimed pair that is not an edge / double-books a vertex
        m, widows, valid, matched = None, [], False, 0
    alive = np.zeros(g.n, dtype=bool)
    for v, out in outputs.items():
        alive[v] = out is not None
    widowed = np.zeros(g.n, dtype=bool)
    for v, _ in widows:
        widowed[v] = True
    violations: list[tuple[int, int]] = []
    if m is not None:
        lo, hi = g.endpoints_array()
        keep = alive[lo] & alive[hi]
        if len(failed_links):
            keep[np.asarray(failed_links, dtype=np.int64)] = False
        free = np.array(
            [m.is_free(v) and not widowed[v] for v in range(g.n)], dtype=bool
        )
        bad = keep & free[lo] & free[hi]
        violations = [
            (int(u), int(w)) for u, w in zip(lo[bad], hi[bad])
        ]
    return DegradationReport(
        matched_pairs=matched,
        survivors=int(alive.sum()),
        crashed=int(g.n - alive.sum()),
        widows=tuple(widows),
        violations=tuple(violations),
        valid=valid,
        maximal_on_survivors=not violations,
    )
