"""S3 — generator vs array execution backends (ISSUE 3).

Measures the same workload executed by both :class:`ExecutionBackend`
implementations:

* **generator** — ``Network``: one Python generator per vertex, real
  message objects, per-group validation/sizing, inbox delivery;
* **array** — ``ArrayBackend``: the algorithm's array-program twin,
  per-round vectorized NumPy updates over SoA state with CSR
  scatter/gather in place of the whole message plane.

Every cell asserts the two backends produce **equal** ``RunResult``s
(rounds, messages, bits, peak, outputs) before any time is reported —
the speedup is for the *same* computation, not an approximation of it.
Two timings per leg: the **round loop** (``run()`` only, with per-node
setup — node/generator objects and the RNG spawn, identical work on
both legs — done beforehand, the same isolation bench_s2 used) and
**end-to-end** (construction + run).  The headline speedup is the
round loop's; both are recorded.

Workloads: Luby MIS and Israeli–Itai maximal matching across the
scenario families, at n = 2000 and 5000.  Shape: the array backend is
faster everywhere, ≥ 3× on at least one family at n = 5000 (the ISSUE
3 acceptance bar); the committed full run lives at
``benchmarks/results/s3_backends.json``.

Run as a script for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_s3_backends.py --out s3.json

``--quick`` restricts to the n=2000 Luby/BA smoke cell (plus the II
cell on the same graph); ``--check`` exits nonzero if the array
backend is slower than the generator backend on that smoke cell — the
CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable

from repro.analysis import format_table, print_banner
from repro.baselines.israeli_itai import israeli_itai_array, israeli_itai_program
from repro.baselines.luby_mis import luby_mis_array, luby_mis_program
from repro.distributed.backends import ArrayBackend, GeneratorBackend

try:
    from conftest import once
except ImportError:  # script mode: conftest only exists for pytest runs
    once = None

FAMILIES: dict[str, Callable[[int, int], Any]] = {}


def _build_families() -> None:
    from repro.graphs.generators import (
        barabasi_albert,
        gnp_random,
        powerlaw_configuration,
        watts_strogatz,
    )

    FAMILIES.update(
        {
            "barabasi_albert": lambda n, s: barabasi_albert(n, 4, seed=s),
            "watts_strogatz": lambda n, s: watts_strogatz(n, 4, 0.1, seed=s),
            "gnp": lambda n, s: gnp_random(n, 4.0 / n, seed=s),
            "powerlaw": lambda n, s: powerlaw_configuration(n, 2.5, seed=s),
        }
    )


_build_families()

WORKLOADS: dict[str, tuple[Callable, Callable, bool]] = {
    # name -> (generator program, array program, needs n param)
    "luby_mis": (luby_mis_program, luby_mis_array, True),
    "israeli_itai": (israeli_itai_program, israeli_itai_array, False),
}

#: The CI smoke cell: (workload, family, n).
SMOKE_CELL = ("luby_mis", "barabasi_albert", 2000)


def _measure(backend_cls, g, program, params, seed: int, reps: int):
    """Best-of-reps (round-loop seconds, end-to-end seconds, RunResult).

    The round-loop timer covers ``run()`` only; per-node setup — node /
    generator objects and the RNG spawn for ``Network``, the RNG spawn
    via ``prepare()`` for ``ArrayBackend`` — happens before it, the
    same isolation bench_s2 used for the engine loop.  End-to-end
    covers construction + run.
    """
    loop_times = []
    total_times = []
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        net = backend_cls(g, program, params=params, seed=seed)
        if hasattr(net, "prepare"):
            net.prepare()
        t1 = time.perf_counter()
        result = net.run()
        t2 = time.perf_counter()
        loop_times.append(t2 - t1)
        total_times.append(t2 - t0)
    return min(loop_times), min(total_times), result


def bench_cell(
    workload: str, family: str, n: int, reps: int, seed: int = 1
) -> dict[str, Any]:
    """One backend-comparison cell; asserts result identity."""
    gen_prog, arr_prog, needs_n = WORKLOADS[workload]
    g = FAMILIES[family](n, 0)
    g.neighbor_sets()  # warm the shared graph caches for both legs
    params = {"n": g.n} if needs_n else None
    l_gen, t_gen, r_gen = _measure(GeneratorBackend, g, gen_prog, params, seed, reps)
    l_arr, t_arr, r_arr = _measure(ArrayBackend, g, arr_prog, params, seed, reps)
    assert r_gen == r_arr, f"backends diverged on {workload}/{family} n={n}"
    return {
        "workload": workload,
        "family": family,
        "n": g.n,
        "m": g.m,
        "rounds": r_gen.rounds,
        "messages": r_gen.total_messages,
        "generator_loop_s": l_gen,
        "array_loop_s": l_arr,
        "generator_s": t_gen,
        "array_s": t_arr,
        "speedup": l_gen / l_arr,
        "end_to_end_speedup": t_gen / t_arr,
        "generator_rounds_per_s": r_gen.rounds / l_gen if l_gen else 0.0,
        "array_rounds_per_s": r_arr.rounds / l_arr if l_arr else 0.0,
        "identical_results": True,
    }


def run_s3(
    sizes: list[int], reps: int, quick: bool = False
) -> dict[str, Any]:
    cells = []
    if quick:
        wl, fam, n = SMOKE_CELL
        cells.append(bench_cell(wl, fam, n, reps))
        cells.append(bench_cell("israeli_itai", fam, n, reps))
    else:
        for n in sizes:
            for workload in WORKLOADS:
                for family in FAMILIES:
                    cells.append(bench_cell(workload, family, n, reps))
    return {"sizes": sizes if not quick else [SMOKE_CELL[2]], "cells": cells}


def smoke_speedup(data: dict[str, Any]) -> float:
    """Array-vs-generator speedup of the CI smoke cell."""
    wl, fam, n = SMOKE_CELL
    for c in data["cells"]:
        if (c["workload"], c["family"], c["n"]) == (wl, fam, n):
            return c["speedup"]
    raise LookupError(f"smoke cell {SMOKE_CELL} not in this run")


def show(data: dict[str, Any]) -> None:
    print_banner(
        "S3 — generator vs array execution backends",
        "equal RunResults asserted per cell; only the engine changes",
    )
    print(format_table(
        ["workload", "family", "n", "rounds", "msgs",
         "gen loop s", "arr loop s", "loop speedup", "e2e speedup"],
        [
            [c["workload"], c["family"], c["n"], c["rounds"], c["messages"],
             c["generator_loop_s"], c["array_loop_s"], c["speedup"],
             c["end_to_end_speedup"]]
            for c in data["cells"]
        ],
    ))
    best = max(data["cells"], key=lambda c: c["speedup"])
    print(f"\nbest round-loop speedup {best['speedup']:.2f}x "
          f"({best['workload']}/{best['family']} n={best['n']}, "
          f"end-to-end {best['end_to_end_speedup']:.2f}x)")


def test_backend_speedup(benchmark, report):
    data = once(benchmark, lambda: run_s3([2000], reps=2, quick=True))
    report(show, data)
    for c in data["cells"]:
        assert c["identical_results"]
    # CI boxes are noisy; the committed full run shows >= 3x at n=5000.
    assert smoke_speedup(data) >= 1.0, data


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--sizes", type=int, nargs="+", default=[2000, 5000],
                    help="graph sizes for the full matrix")
    ap.add_argument("--reps", type=int, default=None,
                    help="best-of reps (default: 3, or 2 with --quick)")
    ap.add_argument("--quick", action="store_true",
                    help="only the n=2000 Luby/BA + II smoke cells")
    ap.add_argument("--check", action="store_true",
                    help="exit 2 if the array backend is slower than the "
                         "generator backend on the Luby/BA n=2000 cell")
    ap.add_argument("--out", type=str, default=None,
                    help="write the JSON report here")
    args = ap.parse_args(argv)
    reps = args.reps if args.reps is not None else (2 if args.quick else 3)
    data = run_s3(args.sizes, reps, quick=args.quick)
    show(data)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(data, fh, indent=2)
        print(f"\nwrote {args.out}")
    if args.check:
        try:
            speedup = smoke_speedup(data)
        except LookupError as e:
            print(f"FAIL: {e}", file=sys.stderr)
            return 2
        if speedup < 1.0:
            print(f"FAIL: array backend slower than generator on the "
                  f"{SMOKE_CELL} smoke cell ({speedup:.2f}x)", file=sys.stderr)
            return 2
        print(f"check ok: smoke-cell speedup {speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
