"""Israeli–Itai randomized maximal matching — the classical ½-MCM.

Reference [15]: "A fast and simple randomized parallel algorithm for
maximal matching", IPL 1986.  The paper under reproduction cites it as
*the* baseline its (1−ε)-MCM improves on, and notes PIM/iSLIP descend
from it.

We implement the standard proposal variant: each phase every unmatched
node flips a coin to act as *proposer* or *acceptor* (this is
Israeli–Itai's random edge-orientation step, which prevents a node from
simultaneously proposing and accepting); proposers invite one random
unmatched neighbor; acceptors accept one incoming invitation uniformly
at random; matched nodes announce themselves so neighbors stop
inviting them.  A constant fraction of incident-edge mass is removed
per phase in expectation, giving O(log n) phases w.h.p.

A phase costs 3 communication rounds (propose / accept / announce).
Nodes terminate locally when matched or out of unmatched neighbors, so
the network run ends exactly when the matching is maximal.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.distributed.network import Network, RunResult
from repro.distributed.node import Node
from repro.graphs.graph import Graph
from repro.matching.matching import Matching

# Protocol tags (single characters: O(1) bits per message + the tag).
_PROPOSE = "p"
_ACCEPT = "a"
_MATCHED = "m"


def israeli_itai_program(node: Node) -> Generator[None, None, int]:
    """Node program; returns the node's mate id, or -1 if unmatched."""
    active = set(node.neighbors)
    mate = -1
    while True:
        if mate != -1 or not active:
            node.finish(mate)
            return mate
        proposer = bool(node.rng.integers(0, 2))
        target = -1
        if proposer and active:
            target = int(node.rng.choice(sorted(active)))
            node.send(target, _PROPOSE)
        yield
        # Acceptors pick one proposal uniformly at random.
        if not proposer:
            proposals = sorted(src for src, tag in node.inbox if tag == _PROPOSE)
            if proposals:
                chosen = int(node.rng.choice(proposals))
                mate = chosen
                node.send(chosen, _ACCEPT)
        yield
        # Proposers learn whether their invitation was accepted.
        if proposer and target != -1:
            if any(src == target and tag == _ACCEPT for src, tag in node.inbox):
                mate = target
        if mate != -1:
            node.broadcast(_MATCHED)
        yield
        for src, tag in node.inbox:
            if tag == _MATCHED:
                active.discard(src)


def israeli_itai_matching(
    g: Graph, seed: int = 0, max_rounds: int = 100_000
) -> tuple[Matching, RunResult]:
    """Run Israeli–Itai on ``g``; returns (maximal matching, run metrics)."""
    net = Network(g, israeli_itai_program, seed=seed)
    res = net.run(max_rounds=max_rounds)
    return matching_from_mates(g, res.outputs), res


def matching_from_mates(g: Graph, mates: dict[int, int]) -> Matching:
    """Assemble a :class:`Matching` from per-node mate outputs.

    Validates symmetry: ``mates[u] == v`` requires ``mates[v] == u`` —
    a distributed matching algorithm whose two endpoints disagree is
    broken, and we want tests to see that loudly.
    """
    m = Matching(g)
    for v, mate in mates.items():
        if mate is None or mate == -1:
            continue
        if mates.get(mate) != v:
            raise ValueError(
                f"asymmetric mates: node {v} claims {mate}, "
                f"node {mate} claims {mates.get(mate)}"
            )
        if mate > v:
            m.add(v, mate)
    return m
