"""Conflict graphs (Definition 3.1) and local-view path enumeration.

Definition 3.1: the ℓ-conflict graph C_M(ℓ) has one node per
augmenting path of length at most ℓ w.r.t. M, with an edge between two
nodes iff their paths intersect at a vertex of G.  Algorithm 1 computes
a maximal independent set of C_M(ℓ); independence in C_M(ℓ) is exactly
vertex-disjointness of the augmenting paths, which is what makes
simultaneous augmentation safe (step 7).

Leaders: Algorithm 2 assigns each path to the endpoint with the
smaller ID.  :func:`local_view_paths` reproduces the *local* rule —
the paths a node discovers and leads inside its distance-ℓ view — so
tests can verify the distributed assignment covers every path exactly
once.
"""

from __future__ import annotations

from itertools import combinations

from repro.graphs.graph import Graph
from repro.matching.augmenting import Path, find_augmenting_paths_upto
from repro.matching.matching import Matching


def build_conflict_graph(
    g: Graph, m: Matching, max_len: int
) -> tuple[list[Path], Graph, list[int]]:
    """Construct C_M(max_len).

    Returns ``(paths, conflict_graph, leaders)`` where ``paths[i]`` is
    the augmenting path represented by conflict-graph node ``i``,
    ``conflict_graph`` has one vertex per path and an edge per
    intersecting pair, and ``leaders[i]`` is the physical leader node
    (smaller-ID endpoint, as in Algorithm 2 step 3).
    """
    paths = find_augmenting_paths_upto(g, m, max_len)
    by_vertex: dict[int, list[int]] = {}
    for i, p in enumerate(paths):
        for v in p:
            by_vertex.setdefault(v, []).append(i)
    conflict_edges: set[tuple[int, int]] = set()
    for members in by_vertex.values():
        for a, b in combinations(members, 2):
            conflict_edges.add((a, b) if a < b else (b, a))
    cg = Graph(len(paths), sorted(conflict_edges))
    leaders = [min(p[0], p[-1]) for p in paths]
    return paths, cg, leaders


def local_view_paths(
    g: Graph, m: Matching, center: int, max_len: int
) -> list[Path]:
    """Paths of P_v(ℓ) that node ``center`` *leads* in its local view.

    Algorithm 2 step 3: v leads the augmenting paths of length <= ℓ in
    its distance-ℓ view whose endpoint of smaller ID is v.  Since any
    augmenting path of length <= ℓ with endpoint v lies inside v's
    distance-ℓ ball, enumerating alternating simple paths from v
    suffices — no global knowledge is used beyond the ball.
    """
    if not m.is_free(center):
        return []
    found: set[Path] = set()
    stack: list[tuple[list[int], bool]] = [([center], False)]
    while stack:
        path, want_matched = stack.pop()
        v = path[-1]
        if len(path) - 1 >= max_len:
            continue
        for u in g.neighbors(v):
            if u in path:
                continue
            if m.is_matched_edge(v, u) != want_matched:
                continue
            new_path = path + [u]
            if not want_matched and m.is_free(u):
                if center < u:  # leader rule: smaller-ID endpoint
                    found.add(tuple(new_path))
                continue
            stack.append((new_path, not want_matched))
    return sorted(found)
