"""repro — reproduction of Lotker, Patt-Shamir & Pettie,
"Improved Distributed Approximate Matching" (SPAA 2008).

Public API quick map
--------------------

Graphs (:mod:`repro.graphs`)
    ``Graph``, generators (``gnp_random``, ``bipartite_random``, and
    the scenario families ``barabasi_albert``, ``watts_strogatz``,
    ``powerlaw_configuration``, ``kronecker``, ``planted_matching``,
    ``lollipop_graph``, ...), weight assignment helpers.

Distributed simulator (:mod:`repro.distributed`)
    ``Network`` runs generator node programs in synchronous rounds and
    measures rounds / message counts / message bits (LOCAL & CONGEST).

The paper's algorithms (:mod:`repro.core`)
    ``generic_mcm`` (Thm 3.1), ``bipartite_mcm`` (Thm 3.8),
    ``general_mcm`` (Thm 3.11), ``weighted_mwm`` (Thm 4.5).

Baselines (:mod:`repro.baselines`)
    ``israeli_itai_matching``, ``luby_mis``, ``lps_mwm``,
    ``hoepman_mwm``, PIM, iSLIP.

Exact oracles (:mod:`repro.matching`)
    ``hopcroft_karp``, ``maximum_matching_blossom``,
    ``max_weight_matching``, greedy baselines, augmenting-path tools.

Switch application (:mod:`repro.switch`)
    Input-queued switch simulation comparing schedulers (the paper's
    motivating example).

Query-serving layer (:mod:`repro.lca`)
    ``MatchingService`` / ``LcaMatching`` answer ``mate_of(v)`` and
    ``edge_in_matching(u, v)`` by local exploration (random-greedy
    LCA), provably consistent with one global
    ``random_greedy_matching(graph, seed)`` run.

Experiment harness (:mod:`repro.analysis`)
    ``ParallelRunner`` fans sweep cells over processes with
    deterministic ``SeedSequence`` seeding and JSONL artifacts;
    :mod:`repro.analysis.scenarios` runs the algorithm × graph-family
    matrix (``scenario_matrix``, also ``python -m repro scenarios``);
    statistics and table rendering for the benchmarks.

Quickstart
----------
>>> from repro.graphs import bipartite_random
>>> from repro.core import bipartite_mcm
>>> from repro.matching import hopcroft_karp
>>> g, xs, ys = bipartite_random(50, 50, 0.1, seed=1)
>>> m, metrics = bipartite_mcm(g, k=3, xs=xs, seed=2)
>>> len(m) >= (1 - 1/3) * len(hopcroft_karp(g))
True
"""

from repro.graphs import Graph
from repro.distributed import CONGEST, LOCAL, Network, RunResult
from repro.matching import Matching
from repro.core import (
    bipartite_mcm,
    general_mcm,
    generic_mcm,
    weighted_mwm,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "Matching",
    "Network",
    "RunResult",
    "LOCAL",
    "CONGEST",
    "bipartite_mcm",
    "general_mcm",
    "generic_mcm",
    "weighted_mwm",
    "__version__",
]
