#!/usr/bin/env python3
"""Reference checker for the repository's Markdown docs.

Docs rot when code moves; this tool fails CI the moment README.md or
ARCHITECTURE.md mentions something the tree no longer has.  For each
Markdown file given on the command line it extracts

* **file paths** — any token ending in a known source extension
  (``.py``, ``.md``, ``.json``, ``.yml``, ``.ini``) — and requires the
  path to exist relative to the repository root;
* **dotted ``repro.*`` names** — modules, and functions/classes reached
  through them — and requires the name to import (the longest prefix
  is imported as a module, remaining segments are resolved with
  ``getattr``).

Usage::

    python tools/check_docs.py README.md ARCHITECTURE.md

Exit status 0 when every reference resolves, 1 otherwise (each failure
is printed as ``file:line: reference — reason``).
"""

from __future__ import annotations

import importlib
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))  # for `tests.*` / `benchmarks.*` mentions

#: Tokens ending in one of these are treated as repository file paths.
_PATH_RE = re.compile(
    r"\.?[A-Za-z0-9_][A-Za-z0-9_./-]*\.(?:py|md|json|yml|ini)\b"
)
#: Dotted names rooted at the package.
_MODULE_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
#: Inline placeholders that are obviously not real paths.
_SKIP_SUBSTRINGS = ("http://", "https://", "<", ">")


def _check_path(token: str) -> str | None:
    """Return an error string if ``token`` is not a real repo path."""
    if (REPO_ROOT / token).exists():
        return None
    return f"path does not exist: {token}"


def _check_dotted(token: str) -> str | None:
    """Return an error string if ``token`` does not import/resolve."""
    parts = token.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        for attr in parts[cut:]:
            if not hasattr(obj, attr):
                return f"{module_name!r} has no attribute {attr!r}"
            obj = getattr(obj, attr)
        return None
    return f"module {token!r} does not import"


def check_file(path: pathlib.Path) -> list[str]:
    """All unresolved references in one Markdown file."""
    errors: list[str] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if any(s in line for s in _SKIP_SUBSTRINGS):
            continue
        seen: set[str] = set()
        for m in _PATH_RE.finditer(line):
            token = m.group(0)
            if token.startswith("./"):
                token = token[2:]
            if token in seen:
                continue
            seen.add(token)
            err = _check_path(token)
            if err:
                errors.append(f"{path.name}:{lineno}: {err}")
        for m in _MODULE_RE.finditer(line):
            token = m.group(0).rstrip(".")
            if token in seen:
                continue
            seen.add(token)
            err = _check_dotted(token)
            if err:
                errors.append(f"{path.name}:{lineno}: {err}")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_docs.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    errors: list[str] = []
    for name in argv:
        path = (REPO_ROOT / name).resolve()
        if not path.exists():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check_file(path))
    if errors:
        print(f"{len(errors)} stale doc reference(s):", file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    print(f"docs ok: {len(argv)} file(s), all references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
