"""Protocol fuzzing: invariant checks on randomized protocol runs.

These tests hammer the message-passing protocols with random graphs,
random initial matchings and random seeds, asserting the *structural*
invariants that must survive any execution:

* mate symmetry (both endpoints agree) — the wire protocol can't
  half-apply an augmentation;
* matching validity (no vertex doubly covered, all edges exist);
* monotone matching growth for the cardinality protocols;
* weight growth for Algorithm 5's wrap application;
* conservation inside the switch.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.israeli_itai import matching_from_mates
from repro.core.bipartite_mcm import aug_bipartite
from repro.core.general_mcm import _hat_graph
from repro.graphs import bipartite_random, gnp_random
from repro.matching import Matching

_fuzz = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_matching_mates(g, rng):
    mates = [-1] * g.n
    edges = list(g.edges())
    rng.shuffle(edges)
    for u, v in edges:
        if mates[u] == -1 and mates[v] == -1 and rng.random() < 0.5:
            mates[u] = v
            mates[v] = u
    return mates


class TestAugProtocolFuzz:
    @given(
        seed=st.integers(0, 10_000),
        nx=st.integers(3, 12),
        ell=st.sampled_from([1, 3, 5]),
    )
    @_fuzz
    def test_one_iteration_preserves_invariants(self, seed, nx, ell):
        rng = np.random.default_rng(seed)
        g, xs, _ = bipartite_random(nx, nx, 0.3, seed=seed)
        xside = [v < nx for v in range(g.n)]
        mates0 = _random_matching_mates(g, rng)
        before = matching_from_mates(g, dict(enumerate(mates0)))
        mates, _, _ = aug_bipartite(
            g, xside, mates0, ell, seed=seed, iters=1, adaptive=False
        )
        after = matching_from_mates(g, dict(enumerate(mates)))  # validates
        # Cardinality protocols only ever augment.
        assert len(after) >= len(before)
        # Matched pairs must still be graph edges on the right sides.
        for u, v in after.edges():
            assert g.has_edge(u, v)
            assert xside[u] != xside[v]

    @given(seed=st.integers(0, 10_000), nx=st.integers(3, 10))
    @_fuzz
    def test_full_phase_reaches_maximality_certificate(self, seed, nx):
        g, xs, _ = bipartite_random(nx, nx, 0.35, seed=seed)
        xside = [v < nx for v in range(g.n)]
        mates, _, _ = aug_bipartite(g, xside, [-1] * g.n, 1, seed=seed)
        m = matching_from_mates(g, dict(enumerate(mates)))
        assert m.is_maximal()


class TestHatGraphFuzz:
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 16))
    @_fuzz
    def test_hat_graph_wellformed(self, seed, n):
        rng = np.random.default_rng(seed)
        g = gnp_random(n, 0.3, seed=seed)
        mates = _random_matching_mates(g, rng)
        red = rng.integers(0, 2, g.n).astype(bool)
        ghat, xside = _hat_graph(g, mates, red)
        # Every Ĝ edge is bichromatic and between Ĝ members.
        for u, v in ghat.edges():
            assert red[u] != red[v]
            for w in (u, v):
                mw = mates[w]
                assert mw == -1 or red[w] != red[mw]
        # M̂ = matched bichromatic edges all survive into Ĝ.
        for v in range(g.n):
            mv = mates[v]
            if mv > v and red[v] != red[mv]:
                assert ghat.has_edge(v, mv)


class TestWrapFuzz:
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 14))
    @_fuzz
    def test_wrap_application_always_valid_and_gaining(self, seed, n):
        from repro.core.weighted_mwm import apply_wraps, derived_weights
        from repro.graphs.weights import assign_uniform_weights
        from repro.matching.greedy import greedy_maximal_matching

        rng = np.random.default_rng(seed)
        g = assign_uniform_weights(gnp_random(n, 0.35, seed=seed), seed=seed)
        m = greedy_maximal_matching(g, rng=rng)
        wm = derived_weights(g, m)
        positives = [e for e in g.edge_ids() if wm[e] > 0]
        rng.shuffle(positives)
        # Greedily pick a vertex-disjoint positive-gain M' and apply.
        used: set[int] = set()
        mprime = []
        for e in positives:
            u, v = g.edge_endpoints(e)
            block = {u, v, m.mate(u), m.mate(v)} - {-1}
            if not block & used:
                mprime.append((u, v))
                used |= block
        if not mprime:
            return
        m2 = apply_wraps(m, mprime)  # Matching() validates structure
        gain = sum(wm[g.edge_id(u, v)] for u, v in mprime)
        assert m2.weight() >= m.weight() + gain - 1e-9
