"""Golden regression snapshots.

Fixed seeds, fixed graphs, exact expected outputs.  These catch
*behavioral drift*: an innocent-looking change to RNG consumption,
round framing, or tie-breaking will flip one of these before it flips
a statistical test.  If a change is intentional (e.g. a protocol now
uses one fewer round), update the constants and say why in the commit.
"""

from repro.baselines import (
    hoepman_mwm,
    israeli_itai_matching,
    lps_mwm,
    luby_mis,
    ring_maximal_matching,
)
from repro.core import bipartite_mcm, general_mcm, generic_mcm, weighted_mwm
from repro.graphs import bipartite_random, cycle_graph, gnp_random
from repro.graphs.weights import assign_uniform_weights


def _g():
    return gnp_random(40, 0.1, seed=1234)


def _gb():
    return bipartite_random(20, 20, 0.15, seed=1234)


def _gw():
    return assign_uniform_weights(gnp_random(30, 0.15, seed=1234), seed=1234)


class TestGoldenGraphs:
    def test_gnp_snapshot(self):
        g = _g()
        assert (g.n, g.m) == (40, 68)
        assert g.edges()[:3] == [(0, 36), (1, 3), (1, 28)]
        assert g.max_degree() == 7

    def test_bipartite_snapshot(self):
        g, xs, ys = _gb()
        assert (g.n, g.m) == (40, 66)

    def test_weights_snapshot(self):
        g = _gw()
        assert round(g.total_weight(), 2) == 2958.24


class TestGoldenAlgorithms:
    def test_israeli_itai(self):
        m, res = israeli_itai_matching(_g(), seed=99)
        assert (len(m), res.rounds) == (18, 15)

    def test_luby(self):
        mis, res = luby_mis(_g(), seed=99)
        assert (len(mis), res.rounds) == (17, 6)

    def test_bipartite_mcm(self):
        g, xs, _ = _gb()
        m, res = bipartite_mcm(g, k=3, xs=xs, seed=99)
        assert (len(m), res.rounds) == (18, 60)

    def test_general_mcm(self):
        m, res, outer = general_mcm(_g(), k=3, seed=99)
        assert (len(m), outer) == (19, 79)

    def test_generic_mcm(self):
        m, stats = generic_mcm(_g(), k=2, seed=99)
        assert len(m) == 18
        assert stats.conflict_sizes[1] == 68

    def test_weighted_mwm(self):
        m, res, iters = weighted_mwm(_gw(), eps=0.1, seed=99)
        assert iters == 23
        assert round(m.weight(), 2) == 1040.27

    def test_lps(self):
        m, res = lps_mwm(_gw(), seed=99)
        assert round(m.weight(), 2) == 827.24

    def test_hoepman(self):
        m, res = hoepman_mwm(_gw())
        assert (round(m.weight(), 2), res.rounds) == (1043.87, 4)

    def test_ring_matching(self):
        m, res = ring_maximal_matching(cycle_graph(100))
        assert (len(m), res.rounds) == (50, 16)
