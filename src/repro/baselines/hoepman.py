"""Hoepman's deterministic ½-MWM via locally heaviest edges.

Reference [11] of the paper (after Preis [25]): each node requests its
heaviest remaining incident edge; an edge whose two endpoints request
each other is *locally dominant* and enters the matching.  The global
heaviest residual edge is always locally dominant, so the algorithm
terminates (worst case O(n) phases — the paper cites Hoepman's O(n)
bound), and the result is a ½-MWM.

Ties are broken by the sorted endpoint pair, so both endpoints rank
their shared edge identically and the algorithm is fully deterministic.

Used as the deterministic weighted baseline in the E5 comparison table.
"""

from __future__ import annotations

from typing import Generator

from repro.distributed.network import Network, RunResult
from repro.distributed.node import Node
from repro.graphs.graph import Graph
from repro.matching.matching import Matching
from repro.baselines.israeli_itai import matching_from_mates

_REQ = "r"
_MATCHED = "m"


def hoepman_program(node: Node) -> Generator[None, None, int]:
    """Node program; returns the node's mate id, or -1."""

    def edge_key(u: int) -> tuple[float, int, int]:
        a, b = (node.id, u) if node.id < u else (u, node.id)
        return (node.edge_weight(u), a, b)

    active = set(node.neighbors)
    mate = -1
    while True:
        if mate != -1 or not active:
            node.finish(mate)
            return mate
        candidate = max(active, key=edge_key)
        node.send(candidate, _REQ)
        yield
        requests = {src for src, tag in node.inbox if tag == _REQ}
        if candidate in requests:
            mate = candidate
            node.broadcast(_MATCHED)
        yield
        for src, tag in node.inbox:
            if tag == _MATCHED:
                active.discard(src)


def hoepman_mwm(
    g: Graph, max_rounds: int = 1_000_000
) -> tuple[Matching, RunResult]:
    """Run the locally-heaviest-edge algorithm; returns (matching, metrics)."""
    if not g.weighted:
        raise ValueError("hoepman_mwm needs a weighted graph")
    net = Network(g, hoepman_program)
    res = net.run(max_rounds=max_rounds)
    return matching_from_mates(g, res.outputs), res
