"""Scheduler adapters: one call per cell slot, returning a matching.

Schedulers under comparison in experiment E8:

* :class:`PimScheduler` — PIM [3];
* :class:`IslipAdapter` — iSLIP [23];
* :class:`GreedyMaximalScheduler` — a random maximal matching per slot
  (the quality Israeli–Itai converges to; ½-MCM worst case);
* :class:`PaperScheduler` — the paper's bipartite (1−1/k)-MCM.  By
  default it uses the truncated-Hopcroft–Karp *reference* (identical
  guarantee and output quality as Theorem 3.8, Lemmas 3.4/3.5) so that
  thousand-slot simulations stay fast; ``distributed=True`` runs the
  actual Section 3.2 protocol per slot (small port counts);
* :class:`MaxSizeScheduler` — exact maximum matching per slot (the
  upper bound on per-slot quality).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.baselines.islip import IslipScheduler
from repro.baselines.pim import pim_schedule
from repro.core.bipartite_mcm import bipartite_mcm
from repro.graphs.graph import Graph
from repro.matching.hopcroft_karp import hopcroft_karp, hopcroft_karp_truncated


class Scheduler(Protocol):
    """Per-slot scheduling interface."""

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        """Return matched (input, output) pairs for this slot."""
        ...


def _demand_graph(demand: list[set[int]], ports: int) -> tuple[Graph, list[int]]:
    """Bipartite demand graph: inputs 0..N-1, outputs N..2N-1."""
    cols = [sorted(outs) for outs in demand]
    rows = np.repeat(np.arange(len(cols)), [len(c) for c in cols])
    flat = np.fromiter(
        (j for c in cols for j in c), dtype=np.int64, count=len(rows)
    )
    edges = np.column_stack([rows, flat + ports])
    return Graph(2 * ports, edges), list(range(ports))


class PimScheduler:
    """PIM with its customary ⌈log₂N⌉+2 iterations."""

    def __init__(self, ports: int, seed: int = 0, iterations: int | None = None):
        self.ports = ports
        self.rng = np.random.default_rng(seed)
        self.iterations = iterations

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        return pim_schedule(demand, self.ports, self.rng, self.iterations)


class IslipAdapter:
    """iSLIP with persistent round-robin pointers."""

    def __init__(self, ports: int, iterations: int = 4):
        self.inner = IslipScheduler(ports, ports, iterations)

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        return self.inner.schedule(demand)


class GreedyMaximalScheduler:
    """Random-order maximal matching per slot (½-MCM worst case)."""

    def __init__(self, ports: int, seed: int = 0):
        self.ports = ports
        self.rng = np.random.default_rng(seed)

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        pairs = [(i, j) for i, outs in enumerate(demand) for j in outs]
        self.rng.shuffle(pairs)
        in_free = [True] * self.ports
        out_free = [True] * self.ports
        out = []
        for i, j in pairs:
            if in_free[i] and out_free[j]:
                in_free[i] = False
                out_free[j] = False
                out.append((i, j))
        return out


class PaperScheduler:
    """The paper's (1−1/k)-MCM as a switch scheduler.

    ``distributed=True`` runs the real Section 3.2 message-passing
    protocol every slot; the default uses the truncated-HK reference
    with the identical (1−1/k) guarantee (DESIGN.md §6.3).
    """

    def __init__(self, ports: int, k: int = 3, seed: int = 0, distributed: bool = False):
        self.ports = ports
        self.k = k
        self.seed = seed
        self.distributed = distributed
        self._slot_seq = np.random.SeedSequence(seed)

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        g, xs = _demand_graph(demand, self.ports)
        if self.distributed:
            m, _res = bipartite_mcm(
                g,
                self.k,
                xs=xs,
                seed=int(self._slot_seq.spawn(1)[0].generate_state(1)[0]),
            )
        else:
            m = hopcroft_karp_truncated(g, self.k, xs=xs)
        return [(u, v - self.ports) for u, v in m.edges()]


class MaxSizeScheduler:
    """Exact maximum matching per slot (quality upper bound)."""

    def __init__(self, ports: int):
        self.ports = ports

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        g, xs = _demand_graph(demand, self.ports)
        m = hopcroft_karp(g, xs=xs)
        return [(u, v - self.ports) for u, v in m.edges()]


def _weighted_demand_graph(
    weights: list[dict[int, float]], ports: int
) -> Graph:
    """Bipartite demand graph weighted by queue occupancy."""
    edges, ws = [], []
    for i, row in enumerate(weights):
        for j in sorted(row):
            if row[j] > 0:
                edges.append((i, ports + j))
                ws.append(float(row[j]))
    return Graph(2 * ports, np.asarray(edges, dtype=np.int64).reshape(-1, 2), ws)


class WeightedScheduler(Protocol):
    """Schedulers that consume per-VOQ weights (queue lengths)."""

    def schedule_weighted(
        self, weights: list[dict[int, float]], slot: int
    ) -> list[tuple[int, int]]:
        """Return matched pairs given ``weights[i][j]`` = occupancy."""
        ...


class MaxWeightScheduler:
    """Exact max-*weight* matching on queue lengths per slot.

    The classical 100%-throughput scheduler (MWM on occupancies) — the
    weighted side of the paper's story: Section 4's algorithms are the
    distributed approximations of exactly this schedule.
    """

    def __init__(self, ports: int):
        self.ports = ports

    def schedule_weighted(
        self, weights: list[dict[int, float]], slot: int
    ) -> list[tuple[int, int]]:
        from repro.matching.exact_mwm import max_weight_matching

        g = _weighted_demand_graph(weights, self.ports)
        if g.m == 0:
            return []
        m = max_weight_matching(g)
        return [(u, v - self.ports) for u, v in m.edges()]

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        """Unweighted adapter: treat every backlogged VOQ as weight 1."""
        return self.schedule_weighted(
            [{j: 1.0 for j in outs} for outs in demand], slot
        )


class WeightedPaperScheduler:
    """Algorithm 5's (½−ε)-MWM on queue lengths, as a switch scheduler.

    Uses the sequential reference (greedy black box) for speed; the
    guarantee transfers: the scheduled matching always carries at
    least (½−ε) of the maximum total queue weight, the property the
    stability literature needs from approximate MWM schedulers.
    """

    def __init__(self, ports: int, eps: float = 0.1):
        self.ports = ports
        self.eps = eps

    def schedule_weighted(
        self, weights: list[dict[int, float]], slot: int
    ) -> list[tuple[int, int]]:
        from repro.core.weighted_mwm import weighted_mwm_reference

        g = _weighted_demand_graph(weights, self.ports)
        if g.m == 0:
            return []
        m, _ = weighted_mwm_reference(g, eps=self.eps)
        return [(u, v - self.ports) for u, v in m.edges()]

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        """Unweighted adapter: weight-1 VOQs."""
        return self.schedule_weighted(
            [{j: 1.0 for j in outs} for outs in demand], slot
        )
