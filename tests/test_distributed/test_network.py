"""Unit tests for the synchronous network executor."""

import pytest

from repro.distributed import CONGEST, LOCAL, CongestViolation, Network
from repro.distributed.models import congest_with_bound
from repro.graphs import Graph, path_graph, star_graph


def silent(node):
    """Program that does nothing."""
    return
    yield  # pragma: no cover - makes this a generator function


def one_round_noop(node):
    yield
    node.finish("done")


class TestLifecycle:
    def test_all_finish_immediately(self):
        net = Network(path_graph(3), silent)
        res = net.run()
        assert res.rounds == 0
        assert res.outputs == {0: None, 1: None, 2: None}

    def test_single_round(self):
        net = Network(path_graph(2), one_round_noop)
        res = net.run()
        assert res.rounds == 1
        assert res.outputs[0] == "done"

    def test_return_value_becomes_output(self):
        def prog(node):
            yield
            return node.id * 10

        res = Network(path_graph(3), prog).run()
        assert res.outputs == {0: 0, 1: 10, 2: 20}

    def test_max_rounds_guard(self):
        def forever(node):
            while True:
                yield

        net = Network(path_graph(2), forever)
        with pytest.raises(RuntimeError, match="still running"):
            net.run(max_rounds=5)


class TestMessaging:
    def test_message_delivered_next_round(self):
        def prog(node):
            if node.id == 0:
                node.send(1, "hello")
            yield
            if node.id == 1:
                assert node.inbox == [(0, "hello")]
                node.finish("got")
            yield

        res = Network(path_graph(2), prog).run()
        assert res.outputs[1] == "got"
        assert res.total_messages == 1

    def test_broadcast_reaches_all_neighbors(self):
        def prog(node):
            if node.id == 0:
                node.broadcast("x")
            yield
            node.finish(len(node.inbox))
            yield

        res = Network(star_graph(5), prog).run()
        assert all(res.outputs[v] == 1 for v in range(1, 5))
        assert res.total_messages == 4

    def test_non_neighbor_send_rejected(self):
        def prog(node):
            if node.id == 0:
                node.send(2, "bad")  # 0-2 not an edge in a path
            yield

        with pytest.raises(ValueError, match="non-neighbor"):
            Network(path_graph(3), prog).run()

    def test_inbox_ordered_by_sender(self):
        def prog(node):
            if node.id != 0:
                node.send(0, node.id)
            yield
            if node.id == 0:
                node.finish([src for src, _ in node.inbox])
            yield

        res = Network(star_graph(4), prog).run()
        assert res.outputs[0] == [1, 2, 3]

    def test_message_sent_in_final_segment_still_delivered(self):
        """Messages queued right before a generator returns must flow."""

        def prog(node):
            if node.id == 0:
                node.send(1, "bye")
                return
            yield
            node.finish([p for _, p in node.inbox])

        res = Network(path_graph(2), prog).run()
        assert res.outputs[1] == ["bye"]


class TestAccounting:
    def test_bits_counted(self):
        def prog(node):
            if node.id == 0:
                node.send(1, 7)  # 4 bits
            yield

        res = Network(path_graph(2), prog).run()
        assert res.total_bits == 4
        assert res.max_message_bits == 4

    def test_congest_violation(self):
        def prog(node):
            if node.id == 0:
                node.send(1, tuple(range(10_000)))
            yield

        net = Network(path_graph(2), prog, model=CONGEST)
        with pytest.raises(CongestViolation):
            net.run()

    def test_congest_allows_small(self):
        def prog(node):
            if node.id == 0:
                node.send(1, ("t", 123))
            yield

        res = Network(path_graph(2), prog, model=CONGEST).run()
        assert res.rounds == 1

    def test_explicit_bound_model(self):
        def prog(node):
            if node.id == 0:
                node.send(1, "abcd")  # 32 bits
            yield

        with pytest.raises(CongestViolation):
            Network(path_graph(2), prog, model=congest_with_bound(16)).run()
        Network(path_graph(2), prog, model=congest_with_bound(32)).run()

    def test_charge_rounds(self):
        net = Network(path_graph(2), silent)
        net.charge_rounds(17)
        res = net.run()
        assert res.charged_rounds == 17
        assert res.total_rounds == 17


class TestActiveList:
    """The round loop must cost O(live), not O(n) (ISSUE 2 satellite)."""

    def test_staggered_finish_on_path(self):
        """Nodes on a path finish at staggered rounds; resumes shrink."""
        n = 32

        def prog(node):
            for _ in range(node.id + 1):
                yield
            node.finish(node.id)

        net = Network(path_graph(n), prog)
        res = net.run()
        assert res.outputs == {v: v for v in range(n)}
        # Node v is resumed v+2 times (v+1 yields + the returning
        # resume): Σ(v+2) — not rounds × n, which a full-scan engine
        # would pay in program resumes were it resuming dead nodes.
        assert net.total_resumes == sum(v + 2 for v in range(n))
        assert res.rounds == n
        assert net.total_resumes < res.rounds * n

    def test_late_messages_after_most_finish(self):
        """The last live pair still communicates after others finish."""
        n = 16

        def prog(node):
            if node.id < n - 2:
                return
            for _ in range(5):
                yield
            if node.id == n - 2:
                node.send(n - 1, "late")
            yield
            if node.id == n - 1:
                node.finish([p for _, p in node.inbox])

        res = Network(path_graph(n), prog).run()
        assert res.outputs[n - 1] == ["late"]
        assert res.total_messages == 1

    def test_stale_inbox_cleared_when_no_new_messages(self):
        """A recipient's inbox empties on rounds with no traffic."""

        def prog(node):
            if node.id == 0:
                node.send(1, "once")
                yield
                yield
                return
            yield
            got_first = len(node.inbox)
            yield
            node.finish((got_first, len(node.inbox)))

        res = Network(path_graph(2), prog).run()
        assert res.outputs[1] == (1, 0)


class TestGroupedSends:
    def test_send_many_matches_individual_sends(self):
        def individually(node):
            if node.id == 0:
                for u in node.neighbors:
                    node.send(u, 7)
            yield

        def grouped(node):
            if node.id == 0:
                node.send_many(node.neighbors, 7)
            yield

        a = Network(star_graph(5), individually).run()
        b = Network(star_graph(5), grouped).run()
        assert (a.total_messages, a.total_bits, a.max_message_bits) == (
            b.total_messages,
            b.total_bits,
            b.max_message_bits,
        )

    def test_broadcast_is_grouped_and_counted_per_recipient(self):
        def prog(node):
            if node.id == 0:
                node.broadcast("x")
            yield
            node.finish([p for _, p in node.inbox])

        res = Network(star_graph(4), prog).run()
        assert res.total_messages == 3
        assert res.total_bits == 3 * 8
        assert all(res.outputs[v] == ["x"] for v in range(1, 4))

    def test_send_many_to_non_neighbor_rejected(self):
        def prog(node):
            if node.id == 0:
                node.send_many((1, 2), "bad")  # 0-2 not an edge in a path
            yield

        with pytest.raises(ValueError, match="non-neighbor 2"):
            Network(path_graph(3), prog).run()

    def test_send_many_empty_group_is_noop(self):
        def prog(node):
            node.send_many((), "nothing")
            yield

        res = Network(path_graph(2), prog).run()
        assert res.total_messages == 0

    @pytest.mark.parametrize(
        "payload",
        [0, 1, 7, -3, 2**70, -(2**70), True, None, 3.5, "", "x", "abcd",
         (1, "a"), [2, 3], {"k": 1}],
        ids=repr,
    )
    def test_engine_accounting_agrees_with_bit_size(self, payload):
        """The engine's inline sizing fast paths must match bit_size.

        Every payload shape goes through both the single-send and the
        grouped-send path; total_bits and max_message_bits must equal
        what message.bit_size computes.
        """
        from repro.distributed.message import bit_size

        expected = bit_size(payload)

        def single(node):
            if node.id == 0:
                node.send(1, payload)
            yield

        def grouped(node):
            if node.id == 0:
                node.send_many((1,), payload)
            yield

        for prog in (single, grouped):
            res = Network(path_graph(2), prog).run()
            assert res.total_messages == 1
            assert res.total_bits == expected
            assert res.max_message_bits == expected


class TestDeterminism:
    def test_same_seed_same_outputs(self):
        def prog(node):
            yield
            node.finish(int(node.rng.integers(0, 1_000_000)))

        a = Network(path_graph(5), prog, seed=3).run().outputs
        b = Network(path_graph(5), prog, seed=3).run().outputs
        c = Network(path_graph(5), prog, seed=4).run().outputs
        assert a == b
        assert a != c

    def test_per_node_rngs_independent(self):
        def prog(node):
            yield
            node.finish(int(node.rng.integers(0, 1_000_000)))

        outs = Network(path_graph(6), prog, seed=0).run().outputs
        assert len(set(outs.values())) > 1


class TestParams:
    def test_params_forwarded(self):
        def prog(node, factor):
            yield
            node.finish(node.id * factor)

        res = Network(path_graph(3), prog, params={"factor": 5}).run()
        assert res.outputs[2] == 10

    def test_node_api_surface(self):
        g = Graph(3, [(0, 1), (0, 2)], [2.0, 3.0])

        def prog(node):
            yield
            if node.id == 0:
                assert node.degree == 2
                assert node.edge_weight(2) == 3.0
                assert node.port_of(1) == 0
            node.finish(node.neighbors)

        res = Network(g, prog).run()
        assert res.outputs[0] == (1, 2)
        assert res.outputs[1] == (0,)
