"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for *every* algorithm in the repository on
*any* input: outputs are valid matchings, guarantees are met against
exact oracles, determinism under fixed seeds, and conservation laws of
the simulator.
"""

import math

from hypothesis import HealthCheck, given, settings

from repro.baselines import israeli_itai_matching, luby_mis
from repro.baselines.luby_mis import verify_mis
from repro.core import bipartite_mcm, generic_mcm_reference, weighted_mwm_reference
from repro.core.weighted_mwm import apply_wraps, derived_weights
from repro.matching import (
    Matching,
    greedy_maximal_matching,
    hopcroft_karp,
    maximum_matching_size,
    maximum_matching_weight,
)

from tests.conftest import bipartite_graphs, graphs

_slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestMaximalMatchingProperties:
    @given(graphs(max_n=14))
    @_slow
    def test_israeli_itai_always_maximal_valid(self, g):
        m, _ = israeli_itai_matching(g, seed=0)
        assert m.is_maximal()
        assert 2 * len(m) >= maximum_matching_size(g)

    @given(graphs(max_n=14))
    @_slow
    def test_greedy_vs_ii_both_maximal(self, g):
        """Any two maximal matchings are within factor 2 of each other."""
        a = greedy_maximal_matching(g)
        b, _ = israeli_itai_matching(g, seed=1)
        if len(a) or len(b):
            assert len(a) <= 2 * len(b)
            assert len(b) <= 2 * len(a)


class TestMisProperties:
    @given(graphs(max_n=14))
    @_slow
    def test_luby_valid(self, g):
        mis, _ = luby_mis(g, seed=0)
        assert verify_mis(g, mis)


class TestBipartiteProperties:
    @given(bipartite_graphs(max_side=6))
    @_slow
    def test_k2_guarantee(self, gxy):
        g, xs, _ = gxy
        m, _ = bipartite_mcm(g, k=2, xs=xs, seed=0)
        opt = len(hopcroft_karp(g, xs))
        assert len(m) >= 0.5 * opt - 1e-9

    @given(bipartite_graphs(max_side=6))
    @_slow
    def test_phase1_maximal(self, gxy):
        g, xs, _ = gxy
        m, _ = bipartite_mcm(g, k=1, xs=xs, seed=0)
        assert m.is_maximal()


class TestGenericReferenceProperties:
    @given(graphs(max_n=12))
    @_slow
    def test_phase_guarantee_k2(self, g):
        m = generic_mcm_reference(g, 2)
        assert len(m) >= (2 / 3) * maximum_matching_size(g) - 1e-9


class TestWeightedProperties:
    @given(graphs(max_n=10, weighted=True))
    @_slow
    def test_algorithm5_reference_guarantee(self, g):
        if g.m == 0:
            return
        m, _ = weighted_mwm_reference(g, eps=0.1)
        assert m.weight() >= 0.4 * maximum_matching_weight(g) - 1e-9

    @given(graphs(max_n=10, weighted=True))
    @_slow
    def test_derived_weights_upper_bound_gain(self, g):
        """Each w_M entry is an exact single-wrap gain: applying any
        single positive-gain wrap raises w(M) by exactly that value."""
        from repro.matching.greedy import greedy_mwm

        m = greedy_mwm(g)
        wm = derived_weights(g, m)
        for eid in g.edge_ids():
            if wm[eid] <= 0:
                continue
            u, v = g.edge_endpoints(eid)
            m2 = apply_wraps(m, [(u, v)])
            assert math.isclose(m2.weight(), m.weight() + wm[eid])
            break  # one per example keeps runtime sane
