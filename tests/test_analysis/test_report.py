"""Tests for the one-command reproduction report."""

import pytest

from repro.analysis.report import (
    ReportRow,
    collect_unweighted,
    collect_weighted,
    generate_report,
    render_markdown,
)


class TestCollect:
    def test_unweighted_guarantees_hold(self):
        rows = collect_unweighted(seed=1)
        assert rows
        for r in rows:
            bound = {"1/2": 0.5, "2/3": 2 / 3}[r.guarantee]
            assert r.ratio >= bound - 1e-9, (r.algorithm, r.instance)

    def test_weighted_guarantees_hold(self):
        rows = collect_weighted(seed=1)
        assert rows
        bounds = {"1/2": 0.5, "1/4-eps": 0.25, "~1/4": 0.25, "1/2-eps": 0.4}
        for r in rows:
            assert r.ratio >= bounds[r.guarantee] - 1e-9, r.algorithm

    def test_every_algorithm_on_every_instance(self):
        rows = collect_unweighted(seed=2)
        by_algo: dict[str, set] = {}
        for r in rows:
            by_algo.setdefault(r.algorithm, set()).add(r.instance)
        # general_mcm runs everywhere; bipartite only on bipartite ones.
        assert len(by_algo["general_mcm (Thm 3.11)"]) == 4
        assert len(by_algo["Israeli-Itai [15]"]) == 4


class TestRender:
    def test_markdown_structure(self):
        rows = [ReportRow("algo", "1/2", "inst", 0.9, 10, 8)]
        md = render_markdown(rows, rows, seed=7)
        assert md.startswith("# Reproduction snapshot")
        assert "Seed 7" in md
        assert "algo" in md and "0.900" in md

    def test_generate_writes_file(self, tmp_path):
        out = tmp_path / "r.md"
        md = generate_report(out, seed=3)
        assert out.read_text() == md
        assert "Unweighted" in md and "Weighted" in md

    def test_generate_without_path(self):
        md = generate_report(seed=3)
        assert "# Reproduction snapshot" in md
