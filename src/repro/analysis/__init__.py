"""Experiment harness: sweep running, statistics, table rendering.

Shared by every benchmark in ``benchmarks/`` so the printed
claim-vs-measured tables all look alike.
"""

from repro.analysis.runner import ExperimentResult, repeat, sweep
from repro.analysis.stats import (
    doubling_ratios,
    log_fit,
    mean_ci,
    summarize,
)
from repro.analysis.tables import format_series, format_table, print_banner

__all__ = [
    "ExperimentResult",
    "repeat",
    "sweep",
    "doubling_ratios",
    "log_fit",
    "mean_ci",
    "summarize",
    "format_series",
    "format_table",
    "print_banner",
]
