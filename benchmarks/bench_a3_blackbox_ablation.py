"""A3 (ablation) — the δ-MWM black box inside Algorithm 5.

Theorem 4.5's reduction works for *any* δ-MWM ("if a δ-MWM can be
computed in time T ... then (½−ε)-MWM in O(log(1/ε)·T)").  We swap
the box: the LPS-style weight-class algorithm (δ≈¼, the paper's
choice), Hoepman's locally-heaviest (δ=½, deterministic), and
sequential greedy (δ=½, the centralized reference).  Expected shape:
all meet (½−ε); a larger δ converges in fewer iterations but each
box costs different rounds.
"""

from repro.analysis import format_table, print_banner
from repro.baselines.hoepman import hoepman_mwm
from repro.baselines.lps_mwm import lps_mwm
from repro.core.weighted_mwm import weighted_mwm, weighted_mwm_reference
from repro.graphs import gnp_random
from repro.graphs.weights import assign_uniform_weights
from repro.matching import greedy_mwm, maximum_matching_weight

from conftest import once

SEEDS = range(3)
EPS = 0.1


def run_a3():
    rows = []
    # distributed boxes
    for name, delta, runner in [
        (
            "LPS classes (paper's [18])",
            0.2,
            lambda g, s: _distributed_lps(g, s),
        ),
        (
            "Hoepman box",
            0.5,
            lambda g, s: _with_box(g, hoepman_box),
        ),
        (
            "greedy box (centralized)",
            0.5,
            lambda g, s: _with_box(g, greedy_mwm),
        ),
    ]:
        worst, iters = 1.0, 0
        for s in SEEDS:
            g = assign_uniform_weights(gnp_random(30, 0.15, seed=s), seed=s)
            m, used = runner(g, 500 + s)
            opt = maximum_matching_weight(g)
            worst = min(worst, m.weight() / opt)
            iters = max(iters, used)
        rows.append([name, delta, 0.5 - EPS, worst, iters])
    return rows


def _distributed_lps(g, s):
    m, _res, used = weighted_mwm(g, eps=EPS, delta=0.2, seed=s)
    return m, used


def hoepman_box(g):
    return hoepman_mwm(g)[0]


def _with_box(g, box):
    m, used = weighted_mwm_reference(g, eps=EPS, delta=0.5, black_box=box)
    return m, used


def test_blackbox_ablation(benchmark, report):
    rows = once(benchmark, run_a3)

    def show():
        print_banner(
            "A3 (ablation) — the δ-MWM black box of Algorithm 5 "
            f"(eps={EPS})",
            "any constant-δ box yields (½−ε); δ only changes the "
            "iteration count (3/2δ)·ln(2/ε)",
        )
        print(format_table(
            ["black box", "δ", "guarantee", "worst ratio", "iterations"],
            rows,
        ))

    report(show)
    for _name, _delta, guarantee, worst, _iters in rows:
        assert worst >= guarantee - 1e-9
    # Larger δ ⟹ fewer iterations needed.
    assert rows[1][4] <= rows[0][4]
