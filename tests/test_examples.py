"""Smoke tests: the example scripts must actually run.

The slow, load-sweeping examples (switch_scheduling,
bipartite_vs_general) are exercised indirectly by the benchmarks that
cover the same ground; here we execute the fast ones end to end and
check their key printed facts.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    sys.argv = [name]
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "maximum matching |M*|" in out
        assert "Israeli-Itai" in out
        for k in (2, 3, 4):
            assert f"paper, k={k}" in out

    def test_figure1_walkthrough(self, capsys):
        out = run_example("figure1_walkthrough.py", capsys)
        assert "LEADER" in out
        assert out.count("[OK]") == 2
        assert "MISMATCH" not in out

    def test_weighted_matching(self, capsys):
        out = run_example("weighted_matching.py", capsys)
        assert "Algorithm 5" in out
        assert "derived weights" in out

    def test_protocol_trace(self, capsys):
        out = run_example("protocol_trace.py", capsys)
        assert "Israeli-Itai" in out and "Luby" in out and "Aug" in out
        assert out.count("msgs") == 3

    def test_scenario_sweep(self, capsys):
        out = run_example("scenario_sweep.py", capsys)
        assert "barabasi_albert" in out and "planted_matching" in out
        assert "worst ratio" in out
        assert "NO" not in out

    def test_lca_queries(self, capsys):
        out = run_example("lca_queries.py", capsys)
        assert "mate_of queries" in out
        assert "break-even" in out
        assert "consistency vs the global matching" in out and "OK" in out

    @pytest.mark.slow  # ~6 s: three full 64-seed sweeps; CI's docs job
    def test_batched_sweep(self, capsys):  # runs it on every push anyway
        out = run_example("batched_sweep.py", capsys)
        assert "batched x64" in out
        assert "identity: batched records == per-seed generator records" in out

    def test_examples_directory_complete(self):
        """All documented examples exist and are nonempty."""
        expected = {
            "quickstart.py",
            "switch_scheduling.py",
            "weighted_matching.py",
            "figure1_walkthrough.py",
            "bipartite_vs_general.py",
            "protocol_trace.py",
            "scenario_sweep.py",
            "batched_sweep.py",
            "lca_queries.py",
        }
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert expected <= present
        for name in expected:
            assert (EXAMPLES / name).stat().st_size > 500
