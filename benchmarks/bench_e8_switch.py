"""E8 — the introduction's switch-scheduling application.

Claim (Section 1): larger matchings in the input/output demand graph
increase switch throughput; PIM/iSLIP descend from Israeli–Itai and
are "no better than [15]" in worst-case quality, while the paper gives
(1−1/k).  Shape to reproduce: under heavy uniform load the (1−1/k)
scheduler sustains the load with *lower delay* than PIM/iSLIP/maximal;
under hotspot load all saturate output 0 similarly (matching size is
not the bottleneck there).
"""

from repro.analysis import format_table, print_banner
from repro.switch import (
    GreedyMaximalScheduler,
    IslipAdapter,
    PaperScheduler,
    PimScheduler,
    bernoulli_uniform,
    hotspot,
    run_switch,
)

from conftest import once

PORTS = 16
SLOTS = 2000
WARMUP = 400


def run_e8():
    rows = []
    for pattern, gen_factory in [
        ("uniform 0.85", lambda: bernoulli_uniform(PORTS, 0.85, seed=9)),
        ("uniform 0.95", lambda: bernoulli_uniform(PORTS, 0.95, seed=9)),
        ("hotspot 0.5", lambda: hotspot(PORTS, 0.5, seed=9)),
    ]:
        for name, factory in [
            ("PIM", lambda: PimScheduler(PORTS, seed=1)),
            ("iSLIP", lambda: IslipAdapter(PORTS)),
            ("maximal", lambda: GreedyMaximalScheduler(PORTS, seed=1)),
            ("paper k=3", lambda: PaperScheduler(PORTS, k=3)),
        ]:
            st = run_switch(PORTS, gen_factory(), factory(), SLOTS, WARMUP)
            rows.append(
                [pattern, name, st.throughput, st.mean_delay,
                 st.mean_match_size, st.backlog]
            )
    return rows


def test_switch_schedulers(benchmark, report):
    rows = once(benchmark, run_e8)

    def show():
        print_banner(
            "E8 — switch scheduling (the paper's motivating application)",
            "better matchings → higher throughput / lower delay at high "
            "load; PIM/iSLIP are II-quality, the paper gives (1−1/k)",
        )
        print(format_table(
            ["traffic", "scheduler", "throughput", "mean delay",
             "mean match", "backlog"], rows
        ))

    report(show)
    by = {(r[0], r[1]): r for r in rows}
    for load in ("uniform 0.85", "uniform 0.95"):
        paper_delay = by[(load, "paper k=3")][3]
        pim_delay = by[(load, "PIM")][3]
        assert paper_delay <= pim_delay * 1.1, (load, paper_delay, pim_delay)
        # Everyone sustains admissible uniform load.
        for sched in ("PIM", "iSLIP", "maximal", "paper k=3"):
            target = float(load.split()[1])
            assert abs(by[(load, sched)][2] - target) < 0.05
