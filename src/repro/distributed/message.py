"""Message payload bit-size accounting.

The paper states its complexity results in *bits per message* —
O(log n) for the CONGEST algorithms (Thms 3.11, 4.5), O(log Δ) for the
bipartite algorithm (Thm 3.8), O(|V|+|E|) for the generic one (Thm
3.1).  To measure these claims we size every payload:

* ``bool`` / ``None`` — 1 bit;
* ``int`` — sign bit + ⌈log₂(|v|+1)⌉ bits (0 counts as 1 bit), the
  natural binary encoding a real protocol would use;
* ``float`` — 64 bits (IEEE double; the weighted algorithms send
  weights, which the paper implicitly assumes fit in a machine word);
* ``str`` — 8 bits per character (protocol tags; kept O(1) in all our
  protocols);
* tuples / lists / dicts — sum of parts (framing overhead ignored, as
  is conventional for asymptotic message-size accounting).
"""

from __future__ import annotations

from typing import Any


class Sized:
    """A payload with a pre-computed bit size.

    Broadcast-heavy algorithms (Algorithm 2's neighborhood flooding)
    send the same large payload to every neighbor; wrapping it in
    ``Sized`` sizes it once instead of per recipient.  The network
    unwraps before delivery, so receivers see the raw payload.
    """

    __slots__ = ("payload", "bits")

    def __init__(self, payload: Any) -> None:
        self.payload = payload
        self.bits = bit_size(payload)


def bit_size(payload: Any) -> int:
    """Number of bits needed to encode ``payload`` (see module doc)."""
    if isinstance(payload, Sized):
        return payload.bits
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        mag = -payload if payload < 0 else payload
        return 1 + max(1, mag.bit_length())
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * max(1, len(payload))
    if isinstance(payload, (tuple, list, frozenset, set)):
        return sum(bit_size(x) for x in payload)
    if isinstance(payload, dict):
        return sum(bit_size(k) + bit_size(v) for k, v in payload.items())
    raise TypeError(
        f"payload of type {type(payload).__name__} has no defined bit size; "
        "send ints/floats/strs/tuples (got {payload!r})"
    )
