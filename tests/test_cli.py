"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graphs import Graph, gnp_random, write_edgelist
from repro.graphs.weights import assign_uniform_weights


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["bipartite"])
        assert args.n == 60 and args.k == 3 and args.seed == 0

    def test_overrides(self):
        args = build_parser().parse_args(
            ["weighted", "--n", "33", "--eps", "0.2", "--seed", "9"]
        )
        assert args.n == 33 and args.eps == 0.2 and args.seed == 9


class TestCommands:
    def test_bipartite(self, capsys):
        assert main(["bipartite", "--n", "20", "--p", "0.15", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "Thm 3.8" in out and "ratio" in out

    def test_general(self, capsys):
        assert main(["general", "--n", "24", "--p", "0.12", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "Thm 3.11" in out and "samples" in out

    def test_generic(self, capsys):
        assert main(["generic", "--n", "16", "--p", "0.15", "--k", "2"]) == 0
        assert "conflict graph" in capsys.readouterr().out

    def test_weighted(self, capsys):
        assert main(["weighted", "--n", "20", "--p", "0.2"]) == 0
        assert "Thm 4.5" in capsys.readouterr().out

    def test_baselines(self, capsys):
        assert main(["baselines", "--n", "25", "--p", "0.15"]) == 0
        out = capsys.readouterr().out
        for name in ("Israeli-Itai", "LPS", "Hoepman", "greedy"):
            assert name in out

    def test_switch(self, capsys):
        assert main(["switch", "--ports", "6", "--load", "0.7", "--slots", "200"]) == 0
        out = capsys.readouterr().out
        assert "PIM" in out and "iSLIP" in out

    def test_switch_seed_batch(self, capsys):
        assert main(["switch", "--ports", "6", "--load", "0.7",
                     "--slots", "200", "--seed-batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 seed lanes" in out and "mean ± 95% CI" in out
        assert "PIM" in out and "±" in out

    def test_lca(self, capsys):
        assert main(["lca", "--n", "200", "--p", "0.03",
                     "--queries", "300", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "queries/sec" in out and "mean probes/query" in out
        assert "consistency vs global oracle: OK" in out

    def test_lca_no_cache(self, capsys):
        assert main(["lca", "--n", "100", "--p", "0.05",
                     "--queries", "150", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "cache off" in out and "cache hit rate" in out

    def test_lca_rejects_bad_args(self, capsys):
        assert main(["lca", "--queries", "0"]) == 1
        assert "must be >= 1" in capsys.readouterr().err
        assert main(["lca", "--max-entries", "0"]) == 1
        assert "must be >= 1" in capsys.readouterr().err

    def test_switch_seed_batch_rejects_nonpositive(self, capsys):
        assert main(["switch", "--ports", "6", "--slots", "50",
                     "--seed-batch", "0"]) == 1
        assert "--seed-batch" in capsys.readouterr().err

    def test_generic_array_backend(self, capsys):
        assert main(["generic", "--n", "18", "--k", "2",
                     "--backend", "array"]) == 0
        out = capsys.readouterr().out
        assert "array backend" in out and "generic_mcm" in out

    def test_generic_backends_agree(self, capsys):
        assert main(["generic", "--n", "18", "--k", "2"]) == 0
        gen_out = capsys.readouterr().out
        assert main(["generic", "--n", "18", "--k", "2",
                     "--backend", "array"]) == 0
        arr_out = capsys.readouterr().out
        # Identical ratio and distributed cost lines, only the banner differs.
        assert gen_out.splitlines()[1:] == arr_out.splitlines()[1:]

    def test_baselines_array_backend(self, capsys):
        assert main(["baselines", "--n", "30", "--p", "0.1",
                     "--backend", "array"]) == 0
        assert "Israeli-Itai" in capsys.readouterr().out

    def test_scenarios_array_backend(self, capsys):
        assert main([
            "scenarios", "--size", "12", "--repeats", "1",
            "--family", "comb", "--algo", "generic_mcm",
            "--backend", "array",
        ]) == 0
        assert "NO" not in capsys.readouterr().out

    def test_scenarios_subset(self, capsys):
        assert main([
            "scenarios", "--size", "12", "--repeats", "1",
            "--family", "comb", "--family", "barabasi_albert",
            "--algo", "generic_mcm",
        ]) == 0
        out = capsys.readouterr().out
        assert "comb" in out and "barabasi_albert" in out
        assert "NO" not in out

    def test_scenarios_artifact(self, tmp_path, capsys):
        path = tmp_path / "cells.jsonl"
        assert main([
            "scenarios", "--size", "12", "--repeats", "1",
            "--family", "gnp", "--algo", "general_mcm", "--out", str(path),
        ]) == 0
        # One row per cell plus the trailing _summary sealing row.
        assert path.exists() and path.read_text().count("\n") == 2
        assert '"_summary"' in path.read_text().splitlines()[-1]
        assert str(path) in capsys.readouterr().out

    def test_scenarios_unknown_family(self, capsys):
        assert main(["scenarios", "--family", "bogus"]) == 1
        assert "unknown family" in capsys.readouterr().err

    def test_scenarios_unknown_algo(self, capsys):
        assert main(["scenarios", "--algo", "bogus"]) == 1
        assert "unknown algorithm" in capsys.readouterr().err


class TestFileCommand:
    def test_general_on_file(self, tmp_path, capsys):
        g = gnp_random(16, 0.2, seed=1)
        p = tmp_path / "g.txt"
        write_edgelist(g, p)
        assert main(["file", str(p), "--algo", "general"]) == 0
        assert "general_mcm" in capsys.readouterr().out

    def test_bipartite_on_nonbipartite_file_errors(self, tmp_path, capsys):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        p = tmp_path / "tri.txt"
        write_edgelist(g, p)
        assert main(["file", str(p), "--algo", "bipartite"]) == 1
        assert "not bipartite" in capsys.readouterr().err

    def test_weighted_needs_weights(self, tmp_path, capsys):
        g = gnp_random(10, 0.3, seed=2)
        p = tmp_path / "g.txt"
        write_edgelist(g, p)
        assert main(["file", str(p), "--algo", "weighted"]) == 1
        assert "needs edge weights" in capsys.readouterr().err

    def test_weighted_on_file(self, tmp_path, capsys):
        g = assign_uniform_weights(gnp_random(14, 0.25, seed=3), seed=3)
        p = tmp_path / "gw.txt"
        write_edgelist(g, p)
        assert main(["file", str(p), "--algo", "weighted", "--eps", "0.2"]) == 0
        assert "weighted_mwm" in capsys.readouterr().out
