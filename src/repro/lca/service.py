"""The matching query service: batching + LRU'd neighborhood reuse.

:class:`MatchingService` is the production face of the LCA: millions
of independent point lookups against one huge graph, where recomputing
the global matching per lookup (or even once, if the graph barely fits)
is the wrong cost model.  It wraps an :class:`repro.lca.lca.LcaMatching`
with

* an **LRU cache of explored neighborhoods** keyed by
  ``(seed, vertex)`` — a ``mate_of`` query stores its answer *and* the
  membership of every edge it resolved; later queries read those edge
  states through the resolver's lookup seam instead of re-exploring;
* a **flat edge-state index** with per-edge reference counts, so a
  cached state is found in O(1) no matter which vertex entry owns it,
  and is dropped exactly when its last owning entry is evicted;
* a **batched query API** (:meth:`batch`) taking mixed
  ``("mate", v)`` / ``("edge", u, v)`` queries and returning a
  :class:`BatchResult` with the answers and aggregate exploration
  statistics (empty input returns an empty result — the
  ``ExperimentResult``-style guard, instead of raising from a
  zero-length NumPy reduction).

**Why caching cannot change an answer.**  Membership of an edge is a
pure function of ``(graph, seed)``; the cache only ever stores values
that a fresh exploration computed, and the resolver treats a cache hit
exactly like its own memo.  So any cache content — including none,
after an eviction storm — yields the same answers, which the fuzz net
(`tests/test_lca/test_service.py`) hammers with tiny ``max_entries``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.distributed.metrics import LcaProbeStats
from repro.graphs.graph import Graph

from repro.lca.lca import LcaMatching


@dataclass
class BatchResult:
    """Answers + aggregate exploration cost of one :meth:`MatchingService.batch`."""

    answers: list = field(default_factory=list)
    queries: int = 0
    edges_probed: int = 0
    mean_probes: float = 0.0
    max_depth: int = 0
    cache_hits: int = 0
    cache_hit_rate: float = 0.0


class _Entry:
    """One cached neighborhood: the mate plus the owned edge states."""

    __slots__ = ("mate", "eids")

    def __init__(self, mate: int, eids: tuple[int, ...]) -> None:
        self.mate = mate
        self.eids = eids


class MatchingService:
    """Batched, cached query serving over one ``(graph, seed)`` matching.

    Parameters
    ----------
    graph, seed:
        Forwarded to :class:`LcaMatching`; the seed also keys every
        cache entry, so entries from different seeds could share one
        store without ever colliding.
    max_entries:
        LRU capacity in *vertex entries* (each owns the edge states of
        its exploration).  Must be >= 1.
    cache:
        ``False`` disables all cross-query reuse — every query then
        explores from scratch, byte-identical answers (the consistency
        suite runs both ways).
    """

    def __init__(self, graph: Graph, seed: int, *,
                 max_entries: int = 4096, cache: bool = True) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.lca = LcaMatching(graph, seed)
        self.graph = graph
        self.seed = int(seed)
        self.max_entries = max_entries
        self.cache_enabled = bool(cache)
        self._lru: OrderedDict[tuple[int, int], _Entry] = OrderedDict()
        self._edge_states: dict[int, bool] = {}
        self._edge_refs: dict[int, int] = {}
        #: Aggregate cost over the service lifetime (vertex-LRU hits
        #: included as queries with zero probes).
        self.stats = LcaProbeStats()
        #: Cost of the most recent query.
        self.last_query_stats = LcaProbeStats()

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------

    def mate_of(self, v: int) -> int:
        """``M(v)`` — served from the LRU when possible."""
        if self.cache_enabled:
            entry = self._lru_get((self.seed, v))
            if entry is not None:
                self._account(LcaProbeStats(queries=1, cache_hits=1))
                return entry.mate
        mate, stats, memo = self.lca.query_mate(
            v, lookup=self._lookup if self.cache_enabled else None
        )
        if self.cache_enabled:
            self._store((self.seed, v), mate, memo)
        self._account(stats)
        return mate

    def edge_in_matching(self, u: int, v: int) -> bool:
        """Whether ``(u, v) ∈ M`` (False for non-edges).

        A cached endpoint answers immediately: ``(u, v) ∈ M`` iff the
        cached mate of ``u`` is ``v``.  Edge queries read the caches
        but do not create vertex entries (they resolve one edge's
        state, not a whole neighborhood).
        """
        if self.cache_enabled:
            for a, b in ((u, v), (v, u)):
                entry = self._lru_get((self.seed, a))
                if entry is not None:
                    self._account(LcaProbeStats(queries=1, cache_hits=1))
                    return entry.mate == b
        ans, stats, _ = self.lca.query_edge(
            u, v, lookup=self._lookup if self.cache_enabled else None
        )
        self._account(stats)
        return ans

    # ------------------------------------------------------------------
    # Batch API
    # ------------------------------------------------------------------

    def batch(self, queries: Iterable[Sequence]) -> BatchResult:
        """Run mixed ``("mate", v)`` / ``("edge", u, v)`` queries.

        Returns a :class:`BatchResult`; ``batch([])`` returns the empty
        result (guard for the zero-length reductions below).
        """
        queries = list(queries)
        if not queries:
            return BatchResult()
        answers: list = []
        probes: list[int] = []
        depths: list[int] = []
        hits = 0
        for qr in queries:
            op = qr[0]
            if op == "mate":
                answers.append(self.mate_of(qr[1]))
            elif op == "edge":
                answers.append(self.edge_in_matching(qr[1], qr[2]))
            else:
                raise ValueError(
                    f"query must be ('mate', v) or ('edge', u, v), got {qr!r}"
                )
            st = self.last_query_stats
            probes.append(st.edges_probed)
            depths.append(st.max_depth)
            hits += st.cache_hits
        parr = np.asarray(probes, dtype=np.int64)
        total = int(parr.sum())
        return BatchResult(
            answers=answers,
            queries=len(queries),
            edges_probed=total,
            mean_probes=float(parr.mean()),
            max_depth=int(np.max(depths)),
            cache_hits=hits,
            cache_hit_rate=hits / (hits + total) if hits + total else 0.0,
        )

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def cache_info(self) -> dict[str, int]:
        """Current cache occupancy (entries, owned edge states, capacity)."""
        return {
            "entries": len(self._lru),
            "edge_states": len(self._edge_states),
            "max_entries": self.max_entries,
        }

    def clear_cache(self) -> None:
        """Drop every cached neighborhood (answers are unaffected)."""
        self._lru.clear()
        self._edge_states.clear()
        self._edge_refs.clear()

    def _account(self, stats: LcaProbeStats) -> None:
        self.stats.add(stats)
        self.last_query_stats = stats

    def _lookup(self, eid: int) -> bool | None:
        return self._edge_states.get(eid)

    def _lru_get(self, key: tuple[int, int]) -> _Entry | None:
        entry = self._lru.get(key)
        if entry is not None:
            self._lru.move_to_end(key)
        return entry

    def _store(self, key: tuple[int, int], mate: int,
               memo: dict[int, bool]) -> None:
        if key in self._lru:  # repeated query raced past the LRU probe
            self._lru.move_to_end(key)
            return
        eids = tuple(memo)
        for eid in eids:
            self._edge_refs[eid] = self._edge_refs.get(eid, 0) + 1
            self._edge_states[eid] = memo[eid]
        self._lru[key] = _Entry(mate, eids)
        while len(self._lru) > self.max_entries:
            _, evicted = self._lru.popitem(last=False)
            for eid in evicted.eids:
                left = self._edge_refs[eid] - 1
                if left:
                    self._edge_refs[eid] = left
                else:
                    del self._edge_refs[eid]
                    del self._edge_states[eid]
