"""Seeded repetition and parameter sweeps for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


@dataclass
class ExperimentResult:
    """One experiment cell: a parameter point and its per-seed records."""

    params: dict[str, Any]
    records: list[dict[str, float]] = field(default_factory=list)

    def column(self, key: str) -> list[float]:
        """All per-seed values of a measured quantity."""
        return [r[key] for r in self.records]

    def mean(self, key: str) -> float:
        """Mean of a measured quantity over seeds."""
        col = self.column(key)
        return sum(col) / len(col)

    def min(self, key: str) -> float:
        """Minimum over seeds (for 'holds on every seed' claims)."""
        return min(self.column(key))

    def max(self, key: str) -> float:
        """Maximum over seeds."""
        return max(self.column(key))


def repeat(
    fn: Callable[[int], dict[str, float]],
    seeds: Iterable[int],
    params: dict[str, Any] | None = None,
) -> ExperimentResult:
    """Run ``fn(seed)`` for each seed, collecting its measurement dicts."""
    res = ExperimentResult(params or {})
    for s in seeds:
        res.records.append(fn(s))
    return res


def sweep(
    fn: Callable[..., dict[str, float]],
    points: Iterable[dict[str, Any]],
    seeds: Iterable[int],
) -> list[ExperimentResult]:
    """Full sweep: for each parameter point, repeat over seeds.

    ``fn`` is called as ``fn(seed=s, **point)``.
    """
    seeds = list(seeds)
    out = []
    for point in points:
        out.append(repeat(lambda s, p=point: fn(seed=s, **p), seeds, dict(point)))
    return out
