"""Scenario matrix: cross-algorithm invariants on every new family.

For each new generator family, every core algorithm must return a
valid matching meeting its paper bound against the exact oracles —
``run_scenario_cell`` asserts validity internally and reports the
bound check as ``ok``.
"""

import pytest

from repro.analysis import (
    ALGORITHMS,
    SCENARIOS,
    build_scenario,
    run_scenario_cell,
    scenario_matrix,
    scenario_table,
)

NEW_FAMILIES = [
    "barabasi_albert",
    "watts_strogatz",
    "powerlaw_config",
    "kronecker",
    "planted_matching",
    "lollipop",
]


class TestCatalog:
    def test_new_families_in_catalog(self):
        assert set(NEW_FAMILIES) <= set(SCENARIOS)

    def test_build_scenario_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("nope", 10, 0)

    def test_builders_deterministic(self):
        for name in SCENARIOS:
            a = build_scenario(name, 16, 5)
            b = build_scenario(name, 16, 5)
            assert a.edges() == b.edges(), name


@pytest.mark.parametrize("family", NEW_FAMILIES)
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
class TestCrossAlgorithmInvariants:
    def test_valid_matching_meets_paper_bound(self, family, algo):
        rec = run_scenario_cell(family, algo, size=14, seed=3)
        if "skipped" in rec:  # non-bipartite family under bipartite_mcm
            assert algo == "bipartite_mcm"
            return
        assert rec["value"] <= rec["opt"] + 1e-9
        assert rec["ok"] == 1.0, rec


class TestBackendRouting:
    def test_array_backend_identical_records(self):
        # generic_mcm has an array port; values must not depend on it.
        gen = run_scenario_cell("comb", "generic_mcm", size=12, seed=1)
        arr = run_scenario_cell(
            "comb", "generic_mcm", size=12, seed=1, backend="array"
        )
        assert arr.pop("array_backend") == 1.0
        assert gen.pop("array_backend") == 0.0
        assert gen == arr

    def test_unported_algo_falls_back_to_generator(self):
        rec = run_scenario_cell(
            "gnp", "general_mcm", size=12, seed=0, backend="array"
        )
        assert rec["array_backend"] == 0.0
        assert rec["fallback_algo"] == "general_mcm"
        assert rec["ok"] == 1.0

    def test_weighted_rows_run_on_the_array_backend(self):
        # ISSUE 5: the weighted rows no longer fall back.
        for algo in ("weighted_mwm", "lps_mwm", "kopt_mwm"):
            rec = run_scenario_cell("gnp", algo, size=12, seed=0, backend="array")
            assert rec["array_backend"] == 1.0, algo
            assert "fallback_algo" not in rec, algo
            assert rec["ok"] == 1.0, algo
            ref = run_scenario_cell("gnp", algo, size=12, seed=0)
            assert rec["value"] == ref["value"] and rec["ratio"] == ref["ratio"]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_scenario_cell("gnp", "generic_mcm", size=12, backend="nope")

    def test_matrix_records_backend_in_params(self):
        results = scenario_matrix(
            scenarios=["comb"], algos=["generic_mcm"], size=12,
            seeds=[0], workers=1, backend="array",
        )
        assert results[0].params["backend"] == "array"
        assert results[0].records[0]["ok"] == 1.0


class TestMatrix:
    def test_unknown_algo_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_scenario_cell("gnp", "nope")

    def test_subset_matrix_and_table(self):
        results = scenario_matrix(
            scenarios=["comb", "planted_matching"],
            algos=["generic_mcm"],
            size=12,
            seeds=[0],
            workers=1,
        )
        assert len(results) == 2
        table = scenario_table(results)
        assert "comb" in table and "planted_matching" in table
        assert "NO" not in table

    def test_table_marks_inapplicable_cells(self):
        results = scenario_matrix(
            scenarios=["lollipop"],  # odd cycles: never bipartite
            algos=["bipartite_mcm"],
            size=12,
            seeds=[0],
            workers=1,
        )
        assert "n/a" in scenario_table(results)

    @pytest.mark.slow
    def test_full_matrix_all_cells_meet_bounds(self, parallel_workers):
        """Every algorithm × every family × multiple seeds (tier-2)."""
        results = scenario_matrix(
            size=24, seeds=[0, 1, 2], workers=parallel_workers
        )
        assert len(results) == len(SCENARIOS) * len(ALGORITHMS)
        for cell in results:
            for rec in cell.records:
                if "skipped" not in rec:
                    assert rec["ok"] == 1.0, (cell.params, rec)
