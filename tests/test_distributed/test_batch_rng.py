"""LaneRngs must replicate numpy's per-node Generator streams exactly.

Every assertion compares a :class:`~repro.distributed.batch_rng.LaneRngs`
draw against real ``numpy.random.Generator`` objects spawned the way
:class:`~repro.distributed.network.Network` spawns node RNGs
(``SeedSequence(seed).spawn(n)``).  Any divergence here would silently
break the batched backend's byte-identity guarantee, so the coverage
leans exhaustive: every bounded-draw tier, the 32-bit half-word buffer,
per-lane bounds, interleaved widths, and multi-word seeds.
"""

import numpy as np
import pytest

from repro.distributed.batch_rng import LaneRngs, verify_replication


def _reference(seeds, n):
    return [
        np.random.default_rng(c)
        for s in seeds
        for c in np.random.SeedSequence(s).spawn(n)
    ]


def _assert_draw(lanes, rngs, low, high, idx):
    got = lanes.integers(low, np.asarray(high), np.asarray(idx, dtype=np.int64))
    if np.ndim(high) == 0:
        want = [int(rngs[i].integers(low, high)) for i in idx]
    else:
        want = [int(rngs[i].integers(low, int(h))) for i, h in zip(idx, high)]
    assert got.tolist() == want


class TestLaneIdentity:
    def test_self_check_passes(self):
        verify_replication()

    @pytest.mark.parametrize(
        "low,high",
        [
            (0, 2),                 # coin flip: 32-bit Lemire, buffered halves
            (0, 3),                 # odd range: 32-bit Lemire with rejection
            (1, 17),
            (0, 2**32 - 1),         # largest 32-bit Lemire range
            (0, 2**32),             # raw 32-bit word tier
            (0, 2**32 + 1),         # smallest 64-bit Lemire range
            (1, 2000**4 + 1),       # Luby's number draw at n=2000
            (1, 255**4 + 1),        # Luby's number draw below the 32-bit cut
            (0, 1),                 # zero range: no words consumed
        ],
    )
    def test_every_tier_matches(self, low, high):
        seeds, n = [0, 5], 9
        lanes = LaneRngs(seeds, n)
        rngs = _reference(seeds, n)
        idx = np.arange(len(rngs))
        for _ in range(4):  # repeated draws advance streams identically
            _assert_draw(lanes, rngs, low, high, idx)

    def test_interleaved_widths_share_the_half_word_buffer(self):
        # A 32-bit draw leaves the word's high half buffered; the next
        # 32-bit draw must consume it even across intervening 64-bit
        # draws, exactly as PCG64's internal buffer behaves.
        seeds, n = [3], 6
        lanes = LaneRngs(seeds, n)
        rngs = _reference(seeds, n)
        idx = np.arange(n)
        script = [(0, 2), (1, 2000**4 + 1), (0, 2), (0, 1), (0, 2), (0, 7)]
        for low, high in script:
            _assert_draw(lanes, rngs, low, high, idx)

    def test_per_lane_bounds_and_subsets(self):
        seeds, n = [11, 12, 13], 8
        lanes = LaneRngs(seeds, n)
        rngs = _reference(seeds, n)
        rs = np.random.default_rng(0)
        for _ in range(12):
            k = int(rs.integers(1, len(rngs) + 1))
            idx = np.sort(rs.choice(len(rngs), size=k, replace=False))
            highs = rs.integers(1, 30, size=k)
            _assert_draw(lanes, rngs, 0, highs, idx)

    def test_multi_word_and_zero_seeds(self):
        seeds, n = [0, 2**33 + 7, 2**65 + 1], 4
        lanes = LaneRngs(seeds, n)
        rngs = _reference(seeds, n)
        idx = np.arange(len(rngs))
        for low, high in [(0, 2), (5, 1000), (1, 10**14)]:
            _assert_draw(lanes, rngs, low, high, idx)

    def test_choice_equivalence(self):
        # Generator.choice(seq) draws integers(0, len(seq)) — the
        # contract batched ports rely on when replaying choice calls.
        seeds, n = [4], 5
        lanes = LaneRngs(seeds, n)
        rngs = _reference(seeds, n)
        for cands in ([3], [5, 9], [2, 4, 8, 16], list(range(37))):
            idx = np.arange(n)
            got = lanes.integers(0, len(cands), idx)
            want = [int(r.choice(cands)) for r in rngs]
            assert [cands[i] for i in got.tolist()] == want

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            LaneRngs([-1], 3)

    def test_empty_bounds_rejected(self):
        lanes = LaneRngs([0], 3)
        with pytest.raises(ValueError):
            lanes.integers(5, 5, np.array([0]))
