"""Pre-refactor reference implementations for the S2 engine benchmark.

These replicate the graph-construction and round-loop code paths as
they existed *before* the CSR refactor (ISSUE 2), so the benchmark can
measure the refactor's effect in one process:

* :class:`LegacyGraph` — per-vertex Python adjacency lists of
  ``(neighbor, eid)`` tuples plus a dict edge index, built edge by
  edge (construction-throughput baseline only; it implements just the
  construction work, not the full query API);
* :class:`LegacyNetwork` — the old ``Network.run``: every round scans
  all n generators, rebuilds an O(n) pending table, validates each
  message against per-run neighbor sets, and updates the bit counters
  message by message.  Grouped outbox entries produced by the new
  ``Node.broadcast``/``send_many`` are expanded to per-message pairs,
  which is exactly what the old engine processed.

Both produce results identical to the refactored code (asserted by the
benchmark); only the constant factors differ.
"""

from __future__ import annotations

from typing import Any

from repro.distributed.message import Sized, bit_size
from repro.distributed.models import CongestViolation
from repro.distributed.network import Network


class LegacyGraph:
    """Old construction path: Python loops, tuple lists, dict index."""

    __slots__ = ("n", "m", "_edges", "_adj", "_eid", "_weights")

    def __init__(self, n, edges=(), weights=None):
        if n < 0:
            raise ValueError(f"vertex count must be nonnegative, got {n}")
        self.n = n
        self._edges: list[tuple[int, int]] = []
        self._adj: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        self._eid: dict[tuple[int, int], int] = {}
        for u, v in edges:
            self._add_edge(u, v)
        self.m = len(self._edges)
        if weights is not None:
            weights = list(weights)
            if len(weights) != self.m:
                raise ValueError(f"{len(weights)} weights for {self.m} edges")
            for eid, w in enumerate(weights):
                if w <= 0:
                    u, v = self._edges[eid]
                    raise ValueError(
                        f"edge ({u},{v}) has non-positive weight {w}"
                    )
            self._weights = weights
        else:
            self._weights = None

    def _add_edge(self, u: int, v: int) -> None:
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u},{v}) out of range for n={self.n}")
        if u == v:
            raise ValueError(f"self-loop at vertex {u}")
        key = (u, v) if u < v else (v, u)
        if key in self._eid:
            raise ValueError(f"duplicate edge ({u},{v})")
        eid = len(self._edges)
        self._eid[key] = eid
        self._edges.append(key)
        self._adj[u].append((v, eid))
        self._adj[v].append((u, eid))


class LegacyNetwork(Network):
    """Old round loop on top of the current Node/Graph substrate."""

    def run(self, max_rounds: int = 1_000_000):
        res = self.result
        live = sum(1 for g in self._gens if g is not None)
        neighbor_sets = [
            set(self.nodes[v].neighbors) for v in range(self.graph.n)
        ]
        while live:
            if res.rounds >= max_rounds:
                raise RuntimeError(
                    f"{live} node(s) still running after {max_rounds} rounds; "
                    "lockstep protocol bug or budget too small"
                )
            for v, gen in enumerate(self._gens):
                if gen is None:
                    continue
                node = self.nodes[v]
                # One write per live node, as the old engine did.
                node._round_ref[0] = res.rounds
                try:
                    next(gen)
                except StopIteration as stop:
                    if stop.value is not None:
                        node.output = stop.value
                    self._gens[v] = None
                    live -= 1
            pending: list[list[tuple[int, Any]]] = [[] for _ in self.nodes]
            for v, node in enumerate(self.nodes):
                if not node._outbox:
                    continue
                for entry, payload in node._outbox:
                    # Old senders queued one pair per recipient; expand
                    # grouped entries to the same per-message stream.
                    dsts = entry if type(entry) is tuple else (entry,)
                    for dst in dsts:
                        if dst not in neighbor_sets[v]:
                            raise ValueError(
                                f"node {v} sent to non-neighbor {dst} "
                                f"(round {res.rounds})"
                            )
                        bits = bit_size(payload)
                        if self._limit is not None and bits > self._limit:
                            raise CongestViolation(
                                f"node {v} -> {dst}: {bits}-bit message "
                                f"exceeds {self.model.name} bound of "
                                f"{self._limit} bits (round {res.rounds})"
                            )
                        res.total_messages += 1
                        res.total_bits += bits
                        if bits > res.max_message_bits:
                            res.max_message_bits = bits
                        p = payload.payload if isinstance(payload, Sized) else payload
                        pending[dst].append((v, p))
                node._outbox.clear()
            for v, node in enumerate(self.nodes):
                node.inbox = pending[v]
            if live:
                res.rounds += 1
        for node in self.nodes:
            res.outputs[node.id] = node.output
        return res
