"""Shared helpers for the benchmark harness.

Every benchmark prints a claim-vs-measured table *live* (bypassing
pytest capture) so `pytest benchmarks/ --benchmark-only | tee ...`
records the reproduction evidence alongside pytest-benchmark's timing
table.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """`report(fn)` runs fn with capture disabled (live printing)."""

    def _run(fn, *args, **kwargs):
        with capsys.disabled():
            return fn(*args, **kwargs)

    return _run


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
