"""S6 — the vectorized long-horizon switch engine (ISSUE 6).

PR 6 rebuilt ``repro.switch`` around a ``(ports, ports)`` VOQ
occupancy matrix, chunked NumPy traffic streams, and per-slot matrix
scheduler cores.  This bench measures two things:

* **speedup cells** (under ``"cells"``) — the scalar cell-slot loop
  (:func:`~repro.switch.simulator.run_switch`, kept as the reference
  semantics) vs :func:`~repro.switch.engine.run_switch_vectorized`,
  with the two legs asserted **equal on the full SwitchStats**
  (arrivals, departures, delay sums, per-slot match sizes) before any
  time is reported.  The acceptance cell is 64-port bernoulli/greedy
  at 10^5 slots (ISSUE 6 requires >= 10x there).
* **curve cells** (under ``"curves"``) — vectorized-only
  throughput / mean-delay / backlog sweeps per scheduler across loads
  up to 0.95, at 64 and 256 ports over 10^5 slots, plus one 10^6-slot
  long-horizon cell.  The scalar loop would take hours on these, which
  is the point of the engine.

Run as a script for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_s6_switch.py --out s6.json

``--quick`` restricts to the two 64-port bernoulli speedup cells
(greedy + iSLIP) at reduced slot counts and skips the curves;
``--check`` exits nonzero if the vectorized leg is below
``--min-speedup`` on the 64-port bernoulli/iSLIP cell — the CI gate
(identity is asserted on every cell regardless).  The committed full
run lives at ``benchmarks/results/s6_switch.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable

from repro.analysis import format_table, print_banner
from repro.switch import (
    GreedyMaximalScheduler,
    IslipAdapter,
    PimScheduler,
    bernoulli_uniform,
    bursty,
    hotspot,
    run_switch,
    run_switch_vectorized,
)

try:
    from conftest import once
except ImportError:  # script mode: conftest only exists for pytest runs
    once = None

#: Traffic-stream factories: name -> (ports, load) -> ChunkedTraffic.
TRAFFIC: dict[str, Callable[[int, float], Any]] = {
    "bernoulli": lambda p, load: bernoulli_uniform(p, load, seed=6),
    "bursty": lambda p, load: bursty(p, load, burst_len=16.0, seed=6),
    # hot_fraction kept small so output 0 stays below unit rate at 64
    # ports (hotspot_output0_rate(64, 0.5, 0.01) ~ 0.82)
    "hotspot": lambda p, load: hotspot(p, load, hot_fraction=0.01, seed=6),
}

#: Scheduler factories (fresh per leg: iSLIP pointers are stateful).
SCHEDULERS: dict[str, Callable[[int], Any]] = {
    "greedy": lambda p: GreedyMaximalScheduler(p, seed=2),
    "islip": lambda p: IslipAdapter(p),
    "pim": lambda p: PimScheduler(p, seed=2),
}

#: The CI smoke / fail-if-slower cell: (workload, traffic, ports).
SMOKE_CELL = ("switch_islip", "bernoulli", 64)

#: The committed-run acceptance cell (ISSUE 6: >= 10x here).
ACCEPTANCE_CELL = ("switch_greedy", "bernoulli", 64)


def _best_of(fn: Callable[[], Any], reps: int) -> tuple[float, Any]:
    best, result = None, None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, result


def speedup_cell(sname: str, tname: str, ports: int, load: float,
                 slots: int, warmup: int, reps: int) -> dict[str, Any]:
    """Scalar vs vectorized on one scheduler × traffic cell.

    Both legs rebuild the traffic stream and the scheduler from the
    same seeds, so they simulate the *same* run; equality of the full
    ``SwitchStats`` (delay accounting included) is asserted before the
    timing is reported.
    """
    def scalar():
        return run_switch(ports, TRAFFIC[tname](ports, load),
                          SCHEDULERS[sname](ports), slots=slots, warmup=warmup)

    def vectorized():
        return run_switch_vectorized(
            ports, TRAFFIC[tname](ports, load), SCHEDULERS[sname](ports),
            slots=slots, warmup=warmup,
        )

    t_slow, r_slow = _best_of(scalar, reps)
    t_fast, r_fast = _best_of(vectorized, reps)
    assert r_slow == r_fast, (
        f"legs diverged on {sname}/{tname} ports={ports} load={load}"
    )
    return {
        "workload": f"switch_{sname}",
        "family": tname,
        "n": ports,
        "load": load,
        "slots": slots,
        "warmup": warmup,
        "scalar_s": t_slow,
        "vectorized_s": t_fast,
        "speedup": t_slow / t_fast,
        "throughput": r_fast.throughput,
        "mean_delay": r_fast.mean_delay,
        "identical_results": True,
    }


def curve_cell(sname: str, tname: str, ports: int, load: float,
               slots: int, warmup: int) -> dict[str, Any]:
    """Vectorized-only measurement of one operating point."""
    t0 = time.perf_counter()
    st = run_switch_vectorized(
        ports, TRAFFIC[tname](ports, load), SCHEDULERS[sname](ports),
        slots=slots, warmup=warmup,
    )
    dt = time.perf_counter() - t0
    return {
        "scheduler": sname,
        "traffic": tname,
        "ports": ports,
        "load": load,
        "slots": slots,
        "warmup": warmup,
        "throughput": st.throughput,
        "mean_delay": st.mean_delay,
        "mean_match_size": st.mean_match_size,
        "backlog": st.backlog,
        "seconds": dt,
        "slots_per_s": (warmup + slots) / dt,
    }


def run_s6(reps: int, quick: bool = False) -> dict[str, Any]:
    if quick:
        cells = [
            speedup_cell("greedy", "bernoulli", 64, 0.6, 4000, 400, reps),
            speedup_cell("islip", "bernoulli", 64, 0.6, 4000, 400, reps),
        ]
        return {"quick": True, "cells": cells, "curves": []}

    cells = [
        # the acceptance cell: 64-port bernoulli/greedy at 10^5 slots
        speedup_cell("greedy", "bernoulli", 64, 0.6, 100_000, 10_000, reps),
        speedup_cell("islip", "bernoulli", 64, 0.6, 20_000, 2_000, reps),
        speedup_cell("pim", "bernoulli", 64, 0.6, 20_000, 2_000, reps),
        speedup_cell("greedy", "bursty", 64, 0.6, 20_000, 2_000, reps),
        speedup_cell("greedy", "hotspot", 64, 0.5, 20_000, 2_000, reps),
    ]
    curves = []
    for load in (0.5, 0.7, 0.8, 0.9, 0.95):
        curves.append(curve_cell("greedy", "bernoulli", 64, load,
                                 100_000, 10_000))
    for load in (0.5, 0.7, 0.8, 0.9, 0.95):
        curves.append(curve_cell("islip", "bernoulli", 64, load,
                                 50_000, 5_000))
        curves.append(curve_cell("pim", "bernoulli", 64, load,
                                 50_000, 5_000))
    for load in (0.7, 0.9):
        curves.append(curve_cell("greedy", "bernoulli", 256, load,
                                 20_000, 2_000))
        curves.append(curve_cell("islip", "bernoulli", 256, load,
                                 20_000, 2_000))
    curves.append(curve_cell("greedy", "bursty", 64, 0.8, 50_000, 5_000))
    curves.append(curve_cell("islip", "hotspot", 64, 0.5, 50_000, 5_000))
    # the long-horizon cell: 10^6 slots, scalar-infeasible territory
    curves.append(curve_cell("greedy", "bernoulli", 64, 0.8,
                             1_000_000, 50_000))
    return {"quick": False, "cells": cells, "curves": curves}


def _find_cell(data: dict[str, Any],
               key: tuple[str, str, int]) -> dict[str, Any]:
    for c in data["cells"]:
        if (c["workload"], c["family"], c["n"]) == key:
            return c
    raise LookupError(f"cell {key} not in this run")


def smoke_speedup(data: dict[str, Any]) -> float:
    """Vectorized-vs-scalar speedup of the CI gate cell (iSLIP)."""
    return _find_cell(data, SMOKE_CELL)["speedup"]


def show(data: dict[str, Any]) -> None:
    print_banner(
        "S6 — the vectorized long-horizon switch engine",
        "equal SwitchStats asserted per cell; only the engine changes",
    )
    print(format_table(
        ["workload", "traffic", "ports", "load", "slots",
         "scalar s", "vector s", "speedup"],
        [
            [c["workload"], c["family"], c["n"], c["load"], c["slots"],
             c["scalar_s"], c["vectorized_s"], c["speedup"]]
            for c in data["cells"]
        ],
    ))
    if data["curves"]:
        print("\nvectorized-only operating points "
              "(scalar loop infeasible at this scale):")
        print(format_table(
            ["scheduler", "traffic", "ports", "load", "slots",
             "thruput", "delay", "backlog", "kslots/s"],
            [
                [c["scheduler"], c["traffic"], c["ports"], c["load"],
                 c["slots"], c["throughput"], c["mean_delay"], c["backlog"],
                 c["slots_per_s"] / 1000.0]
                for c in data["curves"]
            ],
        ))
    best = max(data["cells"], key=lambda c: c["speedup"])
    print(f"best speedup {best['speedup']:.2f}x "
          f"({best['workload']}/{best['family']} ports={best['n']})")


def test_switch_engine_speedup(benchmark, report):
    data = once(benchmark, lambda: run_s6(reps=1, quick=True))
    report(show, data)
    for c in data["cells"]:
        assert c["identical_results"]
    # CI boxes are noisy; the committed full run shows ~3x on iSLIP
    # and >= 10x on the greedy acceptance cell.
    assert smoke_speedup(data) >= 1.0, data


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--reps", type=int, default=None,
                    help="best-of reps per leg (default: 2, or 1 with "
                         "--quick)")
    ap.add_argument("--quick", action="store_true",
                    help="only the two 64-port bernoulli speedup cells at "
                         "reduced slot counts; skip the curves")
    ap.add_argument("--check", action="store_true",
                    help="exit 2 if the vectorized engine is below "
                         "--min-speedup on the 64-port bernoulli/iSLIP cell")
    ap.add_argument("--min-speedup", type=float, default=1.0,
                    help="threshold for --check (default 1.0: fail if "
                         "slower than the scalar loop)")
    ap.add_argument("--out", type=str, default=None,
                    help="write the JSON report here")
    args = ap.parse_args(argv)
    reps = args.reps if args.reps is not None else (1 if args.quick else 2)
    data = run_s6(reps, quick=args.quick)
    show(data)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(data, fh, indent=2)
        print(f"\nwrote {args.out}")
    if args.check:
        try:
            speedup = smoke_speedup(data)
        except LookupError as e:
            print(f"FAIL: {e}", file=sys.stderr)
            return 2
        if speedup < args.min_speedup:
            print(f"FAIL: vectorized engine below {args.min_speedup:.2f}x "
                  f"on the {SMOKE_CELL} gate cell ({speedup:.2f}x)",
                  file=sys.stderr)
            return 2
        print(f"check ok: gate-cell speedup {speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
