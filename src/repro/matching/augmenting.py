"""Augmenting-path machinery.

The paper's unweighted algorithms are built on the Hopcroft–Karp
phase structure:

* Lemma 3.4 — augmenting along a *maximal* set of shortest augmenting
  paths strictly increases the shortest augmenting-path length;
* Lemma 3.5 — if the shortest augmenting path has length 2k−1 then
  ``|M| >= (1 - 1/k)|M*|``.

This module provides path predicates, exhaustive enumeration of short
augmenting paths (the node set of the conflict graph C_M(ℓ) of
Definition 3.1), maximal-disjoint-set selection (the centralized
reference for ``Aug(H, M, ℓ)``), and path application (``M ⊕ P``).

Enumeration is exponential in ℓ — exactly as in the paper, where the
conflict graph has ``n^O(ℓ)`` nodes — so callers keep ℓ small (ℓ =
2k−1 for constant k).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.matching.matching import Matching

Path = tuple[int, ...]


def is_augmenting_path(g: Graph, m: Matching, path: Sequence[int]) -> bool:
    """Whether ``path`` (a vertex sequence) is an augmenting path w.r.t. M.

    Checks: simplicity, both endpoints free, edges exist, and edges
    alternate unmatched/matched/… (so the length is odd).
    """
    if len(path) < 2 or len(set(path)) != len(path):
        return False
    if not (m.is_free(path[0]) and m.is_free(path[-1])):
        return False
    if len(path) % 2 != 0:  # odd number of edges => even number of vertices
        return False
    for i in range(len(path) - 1):
        u, v = path[i], path[i + 1]
        if not g.has_edge(u, v):
            return False
        should_be_matched = i % 2 == 1
        if m.is_matched_edge(u, v) != should_be_matched:
            return False
    return True


def _canonical(path: Sequence[int]) -> Path:
    """Orient a path so the smaller endpoint comes first (dedup key)."""
    p = tuple(path)
    return p if p[0] <= p[-1] else p[::-1]


def find_augmenting_paths_upto(g: Graph, m: Matching, max_len: int) -> list[Path]:
    """All augmenting paths w.r.t. M of length (edges) at most ``max_len``.

    These are exactly the nodes of the conflict graph ``C_M(max_len)``
    (Definition 3.1).  Paths are returned in canonical orientation,
    deduplicated, sorted.  Cost is exponential in ``max_len``.
    """
    if max_len < 1:
        return []
    if max_len == 1:
        # Scale fast path: a length-1 augmenting path is exactly a
        # free–free edge, already in canonical (lo, hi) orientation.
        # Provably the DFS output: every such edge is found from its
        # smaller endpoint, nothing longer fits, and the lexsort below
        # reproduces ``sorted(found)`` on 2-tuples.
        mate = m.mate_array()
        free_mask = mate == -1
        lo, hi = g.endpoints_array()
        sel = np.flatnonzero(free_mask[lo] & free_mask[hi])
        sel = sel[np.lexsort((hi[sel], lo[sel]))]
        return list(zip(lo[sel].tolist(), hi[sel].tolist()))
    found: set[Path] = set()
    free = m.free_vertices()
    for s in free:
        # DFS over alternating simple paths starting at the free vertex s.
        # Stack entries: (path_so_far, next_edge_must_be_matched)
        stack: list[tuple[list[int], bool]] = [([s], False)]
        while stack:
            path, want_matched = stack.pop()
            v = path[-1]
            if len(path) - 1 >= max_len:
                continue
            for u in g.neighbors(v):
                if u in path:
                    continue
                if m.is_matched_edge(v, u) != want_matched:
                    continue
                new_path = path + [u]
                # A complete augmenting path ends at a free vertex via
                # an unmatched edge (odd edge count).
                if not want_matched and m.is_free(u):
                    found.add(_canonical(new_path))
                    # A free vertex cannot extend via a matched edge, so
                    # this branch ends here.
                    continue
                stack.append((new_path, not want_matched))
    return sorted(found)


def shortest_augmenting_path_length(
    g: Graph, m: Matching, upto: int | None = None
) -> int | None:
    """Length of the shortest augmenting path w.r.t. M, or ``None``.

    For bipartite graphs this is exact (layered alternating BFS).  For
    general graphs, alternating BFS can miss paths that re-visit a
    vertex with the other parity (blossoms), so we fall back to
    bounded enumeration up to ``upto`` (default 9 edges) and return the
    exact answer within that horizon; ``None`` means "no augmenting
    path of length <= horizon".
    """
    if g.is_bipartite():
        return _bipartite_shortest_aug_len(g, m)
    horizon = 9 if upto is None else upto
    for length in range(1, horizon + 1, 2):
        if find_augmenting_paths_upto(g, m, length):
            return length
    return None


def _bipartite_shortest_aug_len(g: Graph, m: Matching) -> int | None:
    """Exact shortest augmenting path length in a bipartite graph.

    Standard Hopcroft–Karp layering: BFS from all free X vertices along
    unmatched edges to Y and matched edges back to X; the first layer
    containing a free Y vertex gives the length.
    """
    part = g.bipartition()
    assert part is not None
    xs, _ys = part
    x_side = [False] * g.n
    for x in xs:
        x_side[x] = True

    dist = [-1] * g.n
    q: deque[int] = deque()
    for v in range(g.n):
        if x_side[v] and m.is_free(v):
            dist[v] = 0
            q.append(v)
    best: int | None = None
    while q:
        v = q.popleft()
        if best is not None and dist[v] >= best:
            break
        if x_side[v]:
            for u in g.neighbors(v):
                if m.is_matched_edge(v, u) or dist[u] != -1:
                    continue
                dist[u] = dist[v] + 1
                if m.is_free(u):
                    if best is None or dist[u] < best:
                        best = dist[u]
                else:
                    q.append(u)
        else:
            u = m.mate(v)
            if u != -1 and dist[u] == -1:
                dist[u] = dist[v] + 1
                q.append(u)
    return best


def augmenting_paths_maximal_set(
    g: Graph,
    m: Matching,
    max_len: int,
    rng: np.random.Generator | None = None,
) -> list[Path]:
    """A maximal set of vertex-disjoint augmenting paths of length <= max_len.

    Centralized reference implementation of the paper's ``Aug(H, M, ℓ)``
    subroutine (Section 3.3): enumerate candidates, then greedily keep
    paths that do not touch previously used vertices.  With an ``rng``
    the scan order is shuffled (matching the randomized distributed
    selection); otherwise the order is deterministic (sorted).

    Maximality: every augmenting path of length <= max_len shares a
    vertex with a selected path — the defining property used by
    Lemma 3.9's (k+1)-intersection argument.
    """
    candidates = find_augmenting_paths_upto(g, m, max_len)
    if rng is not None:
        order = list(candidates)
        rng.shuffle(order)
        candidates = order
    used = [False] * g.n
    chosen: list[Path] = []
    for p in candidates:
        if any(used[v] for v in p):
            continue
        chosen.append(p)
        for v in p:
            used[v] = True
    return chosen


def apply_paths(m: Matching, paths: Iterable[Sequence[int]]) -> Matching:
    """``M ⊕ (union of paths)`` with vertex-disjointness validation.

    Implements step 7 of Algorithm 1.  Raises ``ValueError`` when two
    paths share a vertex or a path is not augmenting w.r.t. M — the
    situation Algorithm 1's MIS step is there to prevent.
    """
    used: set[int] = set()
    edges: list[tuple[int, int]] = []
    for p in paths:
        if not is_augmenting_path(m.graph, m, p):
            raise ValueError(f"not an augmenting path w.r.t. M: {tuple(p)}")
        overlap = used.intersection(p)
        if overlap:
            raise ValueError(f"paths conflict at vertices {sorted(overlap)}")
        used.update(p)
        edges.extend((p[i], p[i + 1]) for i in range(len(p) - 1))
    return m.symmetric_difference(edges)


def apply_paths_array(m: Matching, paths: Sequence[Sequence[int]]) -> Matching:
    """Array twin of :func:`apply_paths`: same checks, same matching.

    Validation runs whole-array over the concatenated paths — range,
    simplicity, cross-path disjointness, free endpoints, edge existence
    (via :meth:`Graph.edge_ids_array`) and alternation — then the
    augmentation is mate surgery: in a path ``v0..v_{2t+1}`` the new
    matched pairs are exactly the even-indexed edges, and every path
    vertex lies on exactly one of them, so assigning those pairs *is*
    ``M ⊕ P``.  The result goes through the validated
    :meth:`Matching.from_mate_array` constructor.  No Python edge sets
    are built, so cost is O(n + m + total path length) — this is step 7
    of Algorithm 1 at the million-node tier, where
    ``symmetric_difference``'s tuple sets are the memory wall.  When
    several paths are invalid the one reported may differ from
    :func:`apply_paths`'s (which scans sequentially); the accept/reject
    decision never does.
    """
    g = m.graph
    paths = [tuple(p) for p in paths]
    if not paths:
        return m.copy()
    lens = np.array([len(p) for p in paths], dtype=np.int64)
    flat = np.concatenate([np.asarray(p, dtype=np.int64) for p in paths])
    num = lens.size
    ends = np.cumsum(lens)
    starts = ends - lens
    pid = np.repeat(np.arange(num, dtype=np.int64), lens)

    def _reject(i: int) -> None:
        raise ValueError(f"not an augmenting path w.r.t. M: {paths[i]}")

    bad_shape = (lens < 2) | (lens % 2 != 0)
    if bad_shape.any():
        _reject(int(np.flatnonzero(bad_shape)[0]))
    out_of_range = (flat < 0) | (flat >= g.n)
    if out_of_range.any():
        _reject(int(pid[out_of_range][0]))
    # One sort settles both uniqueness checks: a duplicated vertex
    # inside one path is a non-simple path, across paths a conflict.
    order = np.argsort(flat, kind="stable")
    sf, sp = flat[order], pid[order]
    dup = np.flatnonzero(sf[1:] == sf[:-1])
    if dup.size:
        same_path = sp[dup] == sp[dup + 1]
        if same_path.any():
            _reject(int(sp[dup][same_path].min()))
        overlap = np.unique(sf[dup]).tolist()
        raise ValueError(f"paths conflict at vertices {overlap}")
    mate = m.mate_array()
    first, last = flat[starts], flat[ends - 1]
    not_free = (mate[first] != -1) | (mate[last] != -1)
    if not_free.any():
        _reject(int(np.flatnonzero(not_free)[0]))
    # Edge positions: every in-path vertex except the last one.
    edge_mask = np.ones(flat.size, dtype=bool)
    edge_mask[ends - 1] = False
    pos = np.flatnonzero(edge_mask)
    src, dst = flat[pos], flat[pos + 1]
    missing = g.edge_ids_array(src, dst) < 0
    if missing.any():
        _reject(int(pid[pos[missing]][0]))
    idx_in_path = pos - np.repeat(starts, lens - 1)
    bad_alt = (mate[src] == dst) != (idx_in_path % 2 == 1)
    if bad_alt.any():
        _reject(int(pid[pos[bad_alt]][0]))
    new_mate = mate.copy()
    even = idx_in_path % 2 == 0
    new_mate[src[even]] = dst[even]
    new_mate[dst[even]] = src[even]
    return Matching.from_mate_array(g, new_mate)


def symmetric_difference_components(
    m: Matching, m_star: Matching
) -> list[dict]:
    """Decompose ``M ⊕ M*`` into alternating paths and cycles.

    Used by the Lemma 3.9 analysis benches: the decomposition's
    augmenting paths (w.r.t. M) of length <= 2k−1 are the set P* whose
    size lower-bounds the progress of Algorithm 4.

    Returns a list of ``{"kind": "path"|"cycle", "vertices": [...],
    "augmenting": bool}`` records, ``augmenting`` meaning augmenting
    w.r.t. ``m``.
    """
    g = m.graph
    in_m = {tuple(sorted(e)) for e in m.edges()}
    in_s = {tuple(sorted(e)) for e in m_star.edges()}
    sym = in_m.symmetric_difference(in_s)
    adj: dict[int, list[int]] = {}
    for u, v in sym:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    seen: set[int] = set()
    comps: list[dict] = []
    # Every vertex of M ⊕ M* has degree 1 or 2, so each component is a
    # path or a cycle.  Pass 1: walk paths from their degree-1 endpoints.
    for start in sorted(adj):
        if start in seen or len(adj[start]) != 1:
            continue
        verts = [start]
        seen.add(start)
        prev, cur = start, adj[start][0]
        while True:
            verts.append(cur)
            seen.add(cur)
            nxts = [w for w in adj[cur] if w != prev]
            if not nxts:
                break
            prev, cur = cur, nxts[0]
        comps.append(
            {
                "kind": "path",
                "vertices": verts,
                "augmenting": is_augmenting_path(g, m, verts),
            }
        )
    # Pass 2: everything unseen lies on cycles.
    for start in sorted(adj):
        if start in seen:
            continue
        verts = [start]
        seen.add(start)
        prev, cur = start, adj[start][0]
        while cur != start:
            verts.append(cur)
            seen.add(cur)
            nxts = [w for w in adj[cur] if w != prev]
            prev, cur = cur, nxts[0]
        comps.append({"kind": "cycle", "vertices": verts, "augmenting": False})
    return comps
