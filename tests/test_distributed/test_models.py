"""Unit tests for the LOCAL/CONGEST model definitions."""

from repro.distributed import CONGEST, LOCAL
from repro.distributed.models import congest_with_bound


class TestModels:
    def test_local_unbounded(self):
        assert LOCAL.limit(1000, 50) is None

    def test_congest_scales_with_log_n(self):
        small = CONGEST.limit(16, 4)
        large = CONGEST.limit(16**4, 4)
        assert small is not None and large is not None
        assert large == 4 * small  # log2(16^4) = 4*log2(16)

    def test_congest_minimum_positive(self):
        assert CONGEST.limit(1, 0) > 0
        assert CONGEST.limit(2, 1) > 0

    def test_explicit_bound(self):
        m = congest_with_bound(100)
        assert m.limit(10**6, 10**3) == 100

    def test_names(self):
        assert LOCAL.name == "LOCAL"
        assert CONGEST.name == "CONGEST"
