"""Traffic models for the switch experiments.

The standard admissible patterns from the iSLIP literature:

* ``bernoulli_uniform`` — each input receives a cell per slot with
  probability ``load``, destination uniform over outputs;
* ``diagonal`` — input i sends to outputs i (2/3 of its traffic) and
  i+1 mod N (1/3): a skewed but admissible pattern that separates
  round-robin schedulers from random ones;
* ``hotspot`` — a fraction of all traffic converges on output 0
  (inadmissible beyond load 1/hot_fraction on that output; used to
  study saturation behaviour).
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

#: a traffic generator yields (input, output) arrivals for a given slot
TrafficGenerator = Callable[[int], list[tuple[int, int]]]


def bernoulli_uniform(
    ports: int, load: float, seed: int = 0
) -> TrafficGenerator:
    """IID Bernoulli arrivals, uniformly random destinations."""
    if not 0 <= load <= 1:
        raise ValueError("load must be in [0,1]")
    rng = np.random.default_rng(seed)

    def gen(_slot: int) -> list[tuple[int, int]]:
        arrivals = []
        hits = rng.random(ports) < load
        dests = rng.integers(0, ports, size=ports)
        for i in range(ports):
            if hits[i]:
                arrivals.append((i, int(dests[i])))
        return arrivals

    return gen


def diagonal(ports: int, load: float, seed: int = 0) -> TrafficGenerator:
    """2/3 of input i's cells to output i, 1/3 to output i+1 (mod N)."""
    rng = np.random.default_rng(seed)

    def gen(_slot: int) -> list[tuple[int, int]]:
        arrivals = []
        hits = rng.random(ports) < load
        offs = rng.random(ports) < (1.0 / 3.0)
        for i in range(ports):
            if hits[i]:
                j = (i + 1) % ports if offs[i] else i
                arrivals.append((i, j))
        return arrivals

    return gen


def bursty(
    ports: int,
    load: float,
    burst_len: float = 16.0,
    seed: int = 0,
) -> TrafficGenerator:
    """On/off (two-state Markov) bursty arrivals per input.

    Each input alternates between an ON state — one cell per slot, all
    to a destination fixed for the burst — and an OFF state.  Mean
    burst length is ``burst_len`` slots; OFF lengths are set so the
    long-run arrival rate is ``load``.  Bursts of same-destination
    cells are the standard stress for round-robin schedulers.
    """
    if not 0 < load < 1:
        raise ValueError("bursty load must be in (0,1)")
    if burst_len < 1:
        raise ValueError("burst_len must be >= 1")
    rng = np.random.default_rng(seed)
    p_off = 1.0 / burst_len  # ON -> OFF
    # stationary ON fraction = load  =>  p_on chosen accordingly.
    p_on = p_off * load / (1.0 - load)
    state_on = rng.random(ports) < load
    dest = rng.integers(0, ports, size=ports)

    def gen(_slot: int) -> list[tuple[int, int]]:
        arrivals = []
        for i in range(ports):
            if state_on[i]:
                arrivals.append((i, int(dest[i])))
                if rng.random() < p_off:
                    state_on[i] = False
            else:
                if rng.random() < p_on:
                    state_on[i] = True
                    dest[i] = rng.integers(0, ports)
        return arrivals

    return gen


def hotspot(
    ports: int, load: float, hot_fraction: float = 0.5, seed: int = 0
) -> TrafficGenerator:
    """``hot_fraction`` of cells go to output 0, the rest uniform."""
    if not 0 <= hot_fraction <= 1:
        raise ValueError("hot_fraction must be in [0,1]")
    rng = np.random.default_rng(seed)

    def gen(_slot: int) -> list[tuple[int, int]]:
        arrivals = []
        hits = rng.random(ports) < load
        hot = rng.random(ports) < hot_fraction
        dests = rng.integers(0, ports, size=ports)
        for i in range(ports):
            if hits[i]:
                arrivals.append((i, 0 if hot[i] else int(dests[i])))
        return arrivals

    return gen
