"""F2 — Figure 2: the derived weight function and Lemma 4.1.

Paper object: "Top: a matching M ... with weight 14 under w.  Middle: a
matching M' with weight 10 under w_M.  Bottom: M'' = M ⊕ ⋃wrap(e),
having weight w(M'') = 26 ≥ w(M) + w_M(M')."
"""

from repro.analysis import format_table, print_banner
from repro.core import apply_wraps, derived_weights
from repro.core.figures import figure2_instance

from conftest import once


def run_figure2():
    g, m, mprime, expect = figure2_instance()
    wm = derived_weights(g, m)
    w_m = m.weight()
    w_mp = sum(wm[g.edge_id(u, v)] for u, v in mprime)
    m2 = apply_wraps(m, mprime)
    return g, wm, (w_m, w_mp, m2.weight()), expect


def test_figure2_weights(benchmark, report):
    g, wm, got, expect = once(benchmark, run_figure2)

    def show():
        print_banner(
            "F2 / Figure 2 — derived weights w_M and Lemma 4.1",
            "w(M)=14, w_M(M')=10, w(M'')=26 ≥ 14+10 (strict: wraps "
            "overlap at a removed M edge)",
        )
        rows = [
            ["w(M)", expect[0], got[0]],
            ["w_M(M')", expect[1], got[1]],
            ["w(M'')", expect[2], got[2]],
        ]
        print(format_table(["quantity", "figure", "measured"], rows))
        per_edge = [
            [f"({u},{v})", g.weight(u, v), wm[g.edge_id(u, v)]]
            for u, v in g.edges()
        ]
        print("\nper-edge derived weights:")
        print(format_table(["edge", "w", "w_M"], per_edge))

    report(show)
    assert got == expect
    assert got[2] >= got[0] + got[1]  # Lemma 4.1
