"""S8 — the seed-axis batched switch engine (ISSUE 8).

PR 8 lifts the vectorized switch loop along a seed axis: one
``(num_seeds, ports, ports)`` occupancy stack, lane-stacked scheduler
cores, and FIFO timestamp rings for in-pass delay accounting — one
execution per (scheduler, traffic, load) cell instead of one run per
seed.  This bench measures two things:

* **speedup cells** (under ``"cells"``) — N sequential
  :func:`~repro.switch.engine.run_switch_vectorized` runs vs one
  :func:`~repro.switch.engine.run_switch_batched` execution over the
  same seeds, with the per-seed ``SwitchStats`` lists asserted
  **equal** (arrivals, departures, delay sums, per-slot match sizes)
  before any time is reported.  The acceptance-shape cell is 64-port
  bernoulli/greedy at 16 seeds × 10^5 slots.
* **band cells** (under ``"bands"``) — a load curve with mean ± 95% CI
  over seeds per operating point, each point one batched execution
  (:func:`repro.analysis.switch_curves.batched_load_curve`) — the
  "confidence bands for free" deliverable.

Run as a script for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_s8_switch_batched.py --out s8.json

``--quick`` restricts to two small speedup cells and one band point;
``--check`` exits nonzero if the batched engine is below
``--min-speedup`` on the bernoulli/greedy gate cell (identity is
asserted on every cell regardless).  The committed full run lives at
``benchmarks/results/s8_switch_batched.json``.

Measured speedups on the committed run are ~1.3–2.7x (best at low
load, worst near saturation), not the 4x the issue targeted: on the
single-CPU benchmark box both legs bottleneck on NumPy per-call
dispatch, and the batched engine still needs its array ops per slot
(the feedback loop — arrivals, schedule, departures — is sequential
in slot time by construction).  The lane axis only amortizes per-lane
dispatch, so the ceiling is ``sequential_dispatch / batched_dispatch``
≈ 2–3x here, shrinking toward 1 as per-call work grows with load; see
ARCHITECTURE.md §7 for the accounting.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable

from repro.analysis import format_table, print_banner
from repro.analysis.switch_curves import batched_load_curve
from repro.switch import (
    GreedyMaximalScheduler,
    IslipAdapter,
    PimScheduler,
    batched_traffic,
    bernoulli_uniform,
    bursty,
    run_switch_batched,
    run_switch_vectorized,
)

try:
    from conftest import once
except ImportError:  # script mode: conftest only exists for pytest runs
    once = None

#: Traffic-stream factories: name -> (ports, load, seed) -> ChunkedTraffic.
TRAFFIC: dict[str, Callable[[int, float, int], Any]] = {
    "bernoulli": lambda p, load, seed: bernoulli_uniform(p, load, seed=seed),
    "bursty": lambda p, load, seed: bursty(
        p, load, burst_len=16.0, seed=seed
    ),
}

#: Scheduler factories (fresh per lane and per leg: all are stateful).
SCHEDULERS: dict[str, Callable[[int, int], Any]] = {
    "greedy": lambda p, seed: GreedyMaximalScheduler(p, seed=seed),
    "islip": lambda p, seed: IslipAdapter(p),
    "pim": lambda p, seed: PimScheduler(p, seed=seed),
}

#: The CI smoke / fail-if-slower gate cell: (workload, traffic, load).
SMOKE_CELL = ("batched_greedy", "bernoulli", 0.6)

#: The committed-run acceptance-shape cell (ISSUE 8 targeted >= 4x
#: here; the committed run documents what the box actually delivers).
ACCEPTANCE_CELL = ("batched_greedy", "bernoulli", 0.6)

NUM_SEEDS = 16


def speedup_cell(sname: str, tname: str, ports: int, load: float,
                 slots: int, warmup: int,
                 num_seeds: int = NUM_SEEDS) -> dict[str, Any]:
    """N sequential vectorized runs vs one batched execution.

    Both legs rebuild every lane's traffic stream and scheduler from
    the same seeds, so they simulate the *same* N runs; equality of
    every lane's full ``SwitchStats`` (delay accounting included) is
    asserted before the timing is reported.
    """
    seeds = list(range(num_seeds))

    def lane_traffic(seed: int) -> Any:
        return TRAFFIC[tname](ports, load, seed)

    def lane_sched(seed: int) -> Any:
        return SCHEDULERS[sname](ports, 1000 + seed)

    t0 = time.perf_counter()
    seq = [
        run_switch_vectorized(
            ports, lane_traffic(s), lane_sched(s), slots, warmup=warmup
        )
        for s in seeds
    ]
    t_seq = time.perf_counter() - t0

    t0 = time.perf_counter()
    bat = run_switch_batched(
        ports,
        batched_traffic(lane_traffic, seeds),
        [lane_sched(s) for s in seeds],
        slots,
        warmup=warmup,
    )
    t_bat = time.perf_counter() - t0

    assert seq == bat, (
        f"legs diverged on {sname}/{tname} ports={ports} load={load}"
    )
    return {
        "workload": f"batched_{sname}",
        "family": tname,
        "n": ports,
        "num_seeds": num_seeds,
        "load": load,
        "slots": slots,
        "warmup": warmup,
        "sequential_s": t_seq,
        "batched_s": t_bat,
        "speedup": t_seq / t_bat,
        "throughput_lane0": seq[0].throughput,
        "mean_delay_lane0": seq[0].mean_delay,
        "identical_results": True,
    }


def band_curve(sname: str, tname: str, ports: int, loads: list[float],
               slots: int, warmup: int,
               num_seeds: int = NUM_SEEDS) -> list[dict[str, Any]]:
    """Mean ± CI load curve, one batched execution per point."""
    t0 = time.perf_counter()
    curve = batched_load_curve(
        ports,
        loads,
        lambda load, seed: TRAFFIC[tname](ports, load, seed),
        lambda seed: SCHEDULERS[sname](ports, 1000 + seed),
        list(range(num_seeds)),
        slots,
        warmup=warmup,
    )
    dt = time.perf_counter() - t0
    for point in curve:
        point["scheduler"] = sname
        point["traffic"] = tname
        point["ports"] = ports
        point["slots"] = slots
        point["warmup"] = warmup
        del point["throughput_per_seed"]
        del point["mean_delay_per_seed"]
        del point["backlog_per_seed"]
    return [{"curve_seconds": dt, "points": curve,
             "scheduler": sname, "traffic": tname, "ports": ports}]


def run_s8(quick: bool = False) -> dict[str, Any]:
    if quick:
        cells = [
            speedup_cell("greedy", "bernoulli", 64, 0.6, 3000, 300,
                         num_seeds=8),
            speedup_cell("islip", "bernoulli", 64, 0.6, 3000, 300,
                         num_seeds=8),
        ]
        bands = band_curve("greedy", "bernoulli", 64, [0.6], 2000, 200,
                           num_seeds=8)
        return {"quick": True, "cells": cells, "bands": bands}

    cells = [
        # the acceptance-shape cell: 64 ports × 16 seeds × 10^5 slots
        speedup_cell("greedy", "bernoulli", 64, 0.6, 100_000, 10_000),
        speedup_cell("greedy", "bernoulli", 64, 0.3, 20_000, 2_000),
        speedup_cell("greedy", "bernoulli", 64, 0.9, 20_000, 2_000),
        speedup_cell("islip", "bernoulli", 64, 0.6, 10_000, 1_000),
        speedup_cell("pim", "bernoulli", 64, 0.6, 5_000, 500),
        speedup_cell("greedy", "bursty", 64, 0.6, 20_000, 2_000),
    ]
    bands = band_curve(
        "greedy", "bernoulli", 64,
        [0.5, 0.6, 0.7, 0.8, 0.9, 0.95], 50_000, 5_000,
    )
    return {"quick": False, "cells": cells, "bands": bands}


def _find_cell(data: dict[str, Any],
               key: tuple[str, str, float]) -> dict[str, Any]:
    for c in data["cells"]:
        if (c["workload"], c["family"], c["load"]) == key:
            return c
    raise LookupError(f"cell {key} not in this run")


def smoke_speedup(data: dict[str, Any]) -> float:
    """Batched-vs-sequential speedup of the CI gate cell (greedy)."""
    return _find_cell(data, SMOKE_CELL)["speedup"]


def show(data: dict[str, Any]) -> None:
    print_banner(
        "S8 — the seed-axis batched switch engine",
        "per-seed SwitchStats asserted equal; one execution per cell",
    )
    print(format_table(
        ["workload", "traffic", "ports", "seeds", "load", "slots",
         "seq s", "batched s", "speedup"],
        [
            [c["workload"], c["family"], c["n"], c["num_seeds"],
             c["load"], c["slots"], c["sequential_s"], c["batched_s"],
             c["speedup"]]
            for c in data["cells"]
        ],
    ))
    for band in data["bands"]:
        print(f"\n{band['scheduler']}/{band['traffic']} "
              f"{band['ports']}-port load curve, mean ± 95% CI over "
              f"seeds (one batched execution per point, "
              f"{band['curve_seconds']:.1f}s total):")
        print(format_table(
            ["load", "throughput", "±", "mean delay", "±", "backlog", "±"],
            [
                [p["load"], p["throughput"], p["throughput_ci"],
                 p["mean_delay"], p["mean_delay_ci"],
                 p["backlog"], p["backlog_ci"]]
                for p in band["points"]
            ],
        ))
    best = max(data["cells"], key=lambda c: c["speedup"])
    print(f"best speedup {best['speedup']:.2f}x "
          f"({best['workload']}/{best['family']} load={best['load']})")


def test_switch_batched_speedup(benchmark, report):
    data = once(benchmark, lambda: run_s8(quick=True))
    report(show, data)
    for c in data["cells"]:
        assert c["identical_results"]
    # CI boxes are noisy; the committed full run documents the real
    # ratios (~1.3-2.7x depending on load and machine state).
    assert smoke_speedup(data) >= 0.8, data


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="two small speedup cells and one band point")
    ap.add_argument("--check", action="store_true",
                    help="exit 2 if the batched engine is below "
                         "--min-speedup on the 64-port bernoulli/greedy "
                         "gate cell")
    ap.add_argument("--min-speedup", type=float, default=0.8,
                    help="threshold for --check (default 0.8: CI noise "
                         "margin below parity; identity is always "
                         "asserted)")
    ap.add_argument("--out", type=str, default=None,
                    help="write the JSON report here")
    args = ap.parse_args(argv)
    data = run_s8(quick=args.quick)
    show(data)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(data, fh, indent=2)
        print(f"\nwrote {args.out}")
    if args.check:
        try:
            speedup = smoke_speedup(data)
        except LookupError as e:
            print(f"FAIL: {e}", file=sys.stderr)
            return 2
        if speedup < args.min_speedup:
            print(f"FAIL: batched engine below {args.min_speedup:.2f}x "
                  f"on the {SMOKE_CELL} gate cell ({speedup:.2f}x)",
                  file=sys.stderr)
            return 2
        print(f"check ok: gate-cell speedup {speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
