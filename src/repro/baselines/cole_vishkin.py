"""Deterministic symmetry breaking on rings and rooted trees.

The paper closes with the long-standing open question: *"can maximal
matching and independent set be computed deterministically in O(log n)
time on general graphs?"*  On rings and rooted trees the answer has
long been yes — in O(log* n) — via Cole–Vishkin color reduction.  This
module implements that special case as a node program, both for its
own sake (a deterministic counterpoint to the randomized algorithms in
this repository) and as the standard technique the open question is
measured against.

Pipeline:

1. every node starts with its unique ID as a color (O(log n) bits);
2. **Cole–Vishkin step**: a node looks at its predecessor's color
   (ring) / parent's color (tree), finds the lowest bit position i
   where the two colors differ, and re-colors itself ``2i + bit_i`` —
   one step shrinks c-bit colors to ~(log₂ c + 1) bits, so O(log* n)
   steps reach a constant palette (≤ 6 colors);
3. **palette reduction 6 → 3**: for each color c ∈ {3, 4, 5} in turn,
   nodes of color c recolor to the smallest color absent from their
   neighborhood (a ring/tree neighborhood has ≤ 2 relevant neighbors
   in the oriented sense, so 3 colors always suffice);
4. **maximal matching from the coloring**: for each ordered color pair
   processed sequentially, unmatched nodes of the smaller color
   propose along their oriented edge; the (unique-color) endpoint
   accepts if still free.  Constantly many color rounds ⟹ the whole
   pipeline is deterministic O(log* n + C²) rounds.
"""

from __future__ import annotations

from typing import Generator

from repro.distributed.network import Network, RunResult
from repro.distributed.node import Node
from repro.graphs.graph import Graph
from repro.matching.matching import Matching
from repro.baselines.israeli_itai import matching_from_mates

_PALETTE = 6


def _cv_step(my_color: int, other_color: int) -> int:
    """One Cole–Vishkin re-coloring against the oriented neighbor."""
    if my_color == other_color:
        raise ValueError("proper coloring violated")
    diff = my_color ^ other_color
    i = (diff & -diff).bit_length() - 1
    return 2 * i + ((my_color >> i) & 1)


def cv_steps_needed(n: int) -> int:
    """Enough CV iterations to reach the ≤6-color regime from n ids.

    One step maps colors of b bits to values ≤ 2(b−1)+1, i.e. to
    ``(2b−1).bit_length()`` bits; iterating from log₂ n reaches 3 bits
    (colors < 8, whose CV image lies in {0..5}) in O(log* n) steps.
    """
    steps = 0
    bits = max(2, n).bit_length()
    while bits > 3:
        bits = (2 * (bits - 1) + 1).bit_length()
        steps += 1
    return steps + 2  # land in {0..5} and stabilize


def ring_color_program(
    node: Node, n: int, steps: int
) -> Generator[None, None, int]:
    """3-color an oriented ring (successor = larger-id neighbor wrap).

    The ring must be the cycle 0-1-…-(n-1)-0; the orientation is
    "successor = (id+1) mod n", known locally from ids.
    """
    succ = (node.id + 1) % n
    pred = (node.id - 1) % n
    color = node.id
    # Phase 1: CV reduction against the predecessor's color.
    for _ in range(steps):
        node.send(succ, color)
        yield
        pred_color = next(p for s, p in node.inbox if s == pred)
        color = _cv_step(color, pred_color)
    # Phase 2: shrink palette {0..5} -> {0,1,2}; colors 3,4,5 in turn.
    for c in (3, 4, 5):
        node.send(succ, color)
        node.send(pred, color)
        yield
        nbr_colors = {p for _s, p in node.inbox}
        if color == c:
            color = min({0, 1, 2} - nbr_colors)
    node.finish(color)
    return color


def ring_coloring(g: Graph, max_rounds: int = 10_000) -> tuple[dict[int, int], RunResult]:
    """Deterministic 3-coloring of the canonical ring 0-1-…-(n-1)-0."""
    n = g.n
    if n < 3:
        raise ValueError("ring needs n >= 3")
    for v in range(n):
        if sorted(g.neighbors(v)) != sorted({(v - 1) % n, (v + 1) % n}):
            raise ValueError("graph is not the canonical ring")
    net = Network(
        g,
        ring_color_program,
        params={"n": n, "steps": cv_steps_needed(n)},
    )
    res = net.run(max_rounds=max_rounds)
    return dict(res.outputs), res


def ring_matching_program(
    node: Node, n: int, steps: int
) -> Generator[None, None, int]:
    """Deterministic maximal matching on the canonical ring.

    After 3-coloring, process color classes c = 0, 1, 2 sequentially:
    a free node of color c proposes to its successor; a free successor
    accepts (it can receive at most one proposal — only its
    predecessor proposes toward it, and adjacent nodes never share a
    color).  Maximality: a free node u with free successor v would
    have proposed in u's color pass and v, being free throughout,
    would have accepted — contradiction, so no two adjacent free nodes
    survive the three passes.
    """
    succ = (node.id + 1) % n
    pred = (node.id - 1) % n
    color = yield from ring_color_program(node, n, steps)
    mate = -1
    for c in (0, 1, 2):
        if mate == -1 and color == c:
            node.send(succ, "p")
        yield
        if mate == -1 and any(s == pred and p == "p" for s, p in node.inbox):
            mate = pred
            node.send(pred, "a")
        yield
        if mate == -1 and color == c:
            if any(s == succ and p == "a" for s, p in node.inbox):
                mate = succ
        yield  # keep the pass at a fixed 3 rounds (lockstep clarity)
    node.finish(mate)
    return mate


def ring_maximal_matching(
    g: Graph, max_rounds: int = 10_000
) -> tuple[Matching, RunResult]:
    """Deterministic maximal matching on the canonical ring, O(log* n)."""
    n = g.n
    if n < 3:
        raise ValueError("ring needs n >= 3")
    net = Network(
        g,
        ring_matching_program,
        params={"n": n, "steps": cv_steps_needed(n)},
    )
    res = net.run(max_rounds=max_rounds)
    return matching_from_mates(g, res.outputs), res
