"""Command-line interface: ``python -m repro <command> ...``.

Gives downstream users the paper's algorithms without writing Python:

* ``python -m repro bipartite --n 100 --p 0.08 --k 3``   (Theorem 3.8)
* ``python -m repro general   --n 60 --p 0.06 --k 3``    (Theorem 3.11)
* ``python -m repro weighted  --n 50 --p 0.1 --eps 0.1`` (Theorem 4.5)
* ``python -m repro generic   --n 30 --p 0.1 --k 2``     (Theorem 3.1)
* ``python -m repro baselines --n 80 --p 0.06``          (II / greedy / LPS / Hoepman)
* ``python -m repro switch    --ports 16 --load 0.9``    (scheduler comparison)
* ``python -m repro scenarios --size 24 --workers 4``    (algorithm × family matrix)
* ``python -m repro lca       --n 2000 --p 0.004 --queries 5000``  (point lookups)
* ``python -m repro file <edgelist> --algo bipartite --k 3``  (your own graph)

Every command prints the matching size/weight, the exact optimum, the
achieved ratio, and the measured distributed cost.  ``generic``,
``weighted``, ``baselines``, and ``scenarios`` accept ``--backend
{generator,array}`` to pick the execution engine (results are
seed-identical either way; only the wall clock changes) — since ISSUE
5 this covers the whole weighted pipeline: Algorithm 5, its LPS-style
black box, and the k-opt reference all run vectorized under
``array``.  ``scenarios`` additionally accepts ``--seed-batch K`` to
dispatch each cell's seeds in chunks of K — one process-level task per
chunk instead of one call per seed.  ``baselines --faults SPEC`` (ISSUE 10)
injects a deterministic fault plan — e.g. ``loss=0.05,crash=3`` — into
the fault-adaptive Israeli–Itai baseline and prints the injected-fault
counters plus the degradation oracle's verdict.  ``scenarios`` also
takes the crash-safety knobs ``--max-retries``, ``--timeout``, and
``--resume`` (retry only the failed/missing cells of an earlier
``--out`` artifact); failed cells print a summary and exit nonzero
instead of aborting the matrix.  ``switch`` accepts ``--traffic
{bernoulli,diagonal,bursty,hotspot}`` and ``--engine
{vectorized,scalar}`` — the vectorized long-horizon engine is the
default and produces byte-identical statistics to the scalar loop —
plus ``--seed-batch N``, which runs N seed lanes per scheduler as one
seed-axis batched execution (ISSUE 8) and prints each metric as a
mean ± 95% CI over the lanes.  ``lca`` (ISSUE 9) serves per-vertex
point lookups through the :mod:`repro.lca` query layer — probe
counters and cache hit rate per run, ``--verify`` cross-checks every
vertex against one global ``random_greedy_matching`` oracle run.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import format_table
from repro.baselines import (
    hoepman_mwm,
    israeli_itai_matching,
    lps_interleaved_mwm,
    lps_mwm,
)
from repro.core import bipartite_mcm, general_mcm, generic_mcm, weighted_mwm
from repro.graphs import bipartite_random, gnp_random, read_edgelist
from repro.graphs.weights import assign_uniform_weights
from repro.matching import (
    greedy_mwm,
    hopcroft_karp,
    maximum_matching_size,
    maximum_matching_weight,
)


def _print_result(name, size_or_weight, opt, res) -> None:
    ratio = size_or_weight / opt if opt else 1.0
    print(f"{name}: value = {size_or_weight:g}, optimum = {opt:g}, "
          f"ratio = {ratio:.4f}")
    if res is not None:
        print(f"  distributed cost: {res.rounds} rounds "
              f"(+{res.charged_rounds} charged), "
              f"{res.total_messages} messages, "
              f"max message {res.max_message_bits} bits")


def cmd_bipartite(args) -> int:
    g, xs, _ = bipartite_random(args.n, args.n, args.p, seed=args.seed)
    m, res = bipartite_mcm(g, k=args.k, xs=xs, seed=args.seed)
    opt = len(hopcroft_karp(g, xs))
    print(f"random bipartite: {g.n} vertices, {g.m} edges")
    _print_result(f"bipartite_mcm (Thm 3.8, k={args.k})", len(m), opt, res)
    return 0


def cmd_general(args) -> int:
    g = gnp_random(args.n, args.p, seed=args.seed)
    m, res, outer = general_mcm(g, k=args.k, seed=args.seed)
    opt = maximum_matching_size(g)
    print(f"G(n,p): {g.n} vertices, {g.m} edges")
    _print_result(f"general_mcm (Thm 3.11, k={args.k})", len(m), opt, res)
    print(f"  bipartition samples used: {outer}")
    return 0


def cmd_generic(args) -> int:
    g = gnp_random(args.n, args.p, seed=args.seed)
    m, stats = generic_mcm(g, k=args.k, seed=args.seed, backend=args.backend)
    opt = maximum_matching_size(g)
    print(f"G(n,p): {g.n} vertices, {g.m} edges ({args.backend} backend)")
    _print_result(f"generic_mcm (Thm 3.1, k={args.k})", len(m), opt, stats.result)
    print(f"  conflict graph sizes per phase: {stats.conflict_sizes}")
    return 0


def cmd_weighted(args) -> int:
    g = assign_uniform_weights(
        gnp_random(args.n, args.p, seed=args.seed), seed=args.seed
    )
    m, res, iters = weighted_mwm(
        g, eps=args.eps, seed=args.seed, backend=args.backend
    )
    opt = maximum_matching_weight(g)
    print(f"weighted G(n,p): {g.n} vertices, {g.m} edges "
          f"({args.backend} backend)")
    _print_result(f"weighted_mwm (Thm 4.5, eps={args.eps})", m.weight(), opt, res)
    print(f"  black-box iterations: {iters}")
    return 0


def _cmd_baselines_faulted(args, g, plan) -> int:
    """``baselines --faults``: Israeli–Itai under a fault plan.

    The other baselines have no fault seam, so an active plan narrows
    the table to the fault-adaptive algorithm and adds what matters
    under faults: the injected-fault counters and the degradation
    oracle's verdict (symmetric matching validity, widows, maximality
    on the survivor subgraph).
    """
    from repro.matching.certify import certify_degraded_matching

    print(f"G(n,p): {g.n} vertices, {g.m} edges "
          f"({args.backend} backend; faults: {plan.describe()})")
    try:
        m, res = israeli_itai_matching(
            g, seed=args.seed, backend=args.backend, faults=plan
        )
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    except RuntimeError as e:
        # Loss can starve a one-shot announcement and stall the
        # protocol; that is honest fault damage, not a crash.
        print(f"faulted run stalled without terminating: {e}", file=sys.stderr)
        return 1
    opt = maximum_matching_size(g)
    _print_result("Israeli-Itai (1/2-MCM, faulted)", len(m), opt, res)
    print(f"  faults injected: {res.messages_dropped} dropped, "
          f"{res.messages_delayed} delayed, {res.nodes_crashed} crashed, "
          f"{res.links_failed} links failed")
    fstate = plan.bind(g, args.seed)
    failed = fstate.failed_links_by(res.rounds) if fstate is not None else []
    rep = certify_degraded_matching(g, res.outputs, failed_links=failed)
    print(f"  degradation oracle: {'OK' if rep.ok else 'VIOLATION'} "
          f"({rep.matched_pairs} pairs, {rep.survivors} survivors, "
          f"{rep.crashed} crashed, {len(rep.widows)} widow(s), "
          f"{len(rep.violations)} violation(s))")
    return 0 if rep.ok else 1


def cmd_baselines(args) -> int:
    if args.faults:
        from repro.distributed.faults import FaultPlan

        try:
            plan = FaultPlan.parse(args.faults)
        except ValueError as e:
            print(f"error: bad --faults spec: {e}", file=sys.stderr)
            return 1
        if plan.is_active:
            g = gnp_random(args.n, args.p, seed=args.seed)
            return _cmd_baselines_faulted(args, g, plan)
    g = gnp_random(args.n, args.p, seed=args.seed)
    gw = assign_uniform_weights(g, seed=args.seed)
    opt = maximum_matching_size(g)
    wopt = maximum_matching_weight(gw)
    rows = []
    ii, res = israeli_itai_matching(g, seed=args.seed, backend=args.backend)
    rows.append(["Israeli-Itai (1/2-MCM)", len(ii), opt, len(ii) / opt, res.rounds])
    lm, res = lps_mwm(gw, seed=args.seed, backend=args.backend)
    rows.append(["LPS-style (1/4-MWM)", round(lm.weight(), 1), round(wopt, 1),
                 lm.weight() / wopt, res.rounds])
    li, res = lps_interleaved_mwm(gw, seed=args.seed, backend=args.backend)
    rows.append(["LPS interleaved", round(li.weight(), 1), round(wopt, 1),
                 li.weight() / wopt, res.rounds])
    hm, res = hoepman_mwm(gw)
    rows.append(["Hoepman (1/2-MWM)", round(hm.weight(), 1), round(wopt, 1),
                 hm.weight() / wopt, res.rounds])
    gm = greedy_mwm(gw)
    rows.append(["greedy (1/2-MWM, seq)", round(gm.weight(), 1), round(wopt, 1),
                 gm.weight() / wopt, "-"])
    print(f"G(n,p): {g.n} vertices, {g.m} edges")
    print(format_table(["baseline", "value", "optimum", "ratio", "rounds"], rows))
    return 0


def cmd_switch(args) -> int:
    from repro.switch import (
        GreedyMaximalScheduler,
        IslipAdapter,
        PaperScheduler,
        PimScheduler,
        bernoulli_uniform,
        bursty,
        diagonal,
        hotspot,
        run_switch,
        run_switch_vectorized,
    )

    traffic_models = {
        "bernoulli": lambda seed: bernoulli_uniform(
            args.ports, args.load, seed=seed
        ),
        "diagonal": lambda seed: diagonal(args.ports, args.load, seed=seed),
        "bursty": lambda seed: bursty(args.ports, args.load, seed=seed),
        "hotspot": lambda seed: hotspot(args.ports, args.load, seed=seed),
    }
    make_traffic = traffic_models[args.traffic]
    schedulers = [
        ("PIM", lambda seed: PimScheduler(args.ports, seed=seed)),
        ("iSLIP", lambda seed: IslipAdapter(args.ports)),
        ("maximal", lambda seed: GreedyMaximalScheduler(args.ports, seed=seed)),
        (f"paper k={args.k}", lambda seed: PaperScheduler(args.ports, k=args.k)),
    ]
    if args.seed_batch is not None:
        if args.seed_batch < 1:
            print(f"error: --seed-batch must be >= 1, got {args.seed_batch}",
                  file=sys.stderr)
            return 1
        from repro.analysis.switch_curves import batched_point

        seeds = list(range(args.seed, args.seed + args.seed_batch))
        rows = []
        for name, factory in schedulers:
            pt = batched_point(
                args.ports, make_traffic, factory, seeds,
                args.slots, warmup=args.slots // 5,
            )
            rows.append([
                name,
                f"{pt['throughput']:.4f} ± {pt['throughput_ci']:.4f}",
                f"{pt['mean_delay']:.3f} ± {pt['mean_delay_ci']:.3f}",
                f"{pt['backlog']:.1f} ± {pt['backlog_ci']:.1f}",
            ])
        print(f"{args.ports}x{args.ports} switch at load {args.load} "
              f"({args.traffic} traffic, {len(seeds)} seed lanes, one "
              "batched execution per scheduler; mean ± 95% CI):")
        print(format_table(
            ["scheduler", "throughput", "mean delay", "backlog"], rows
        ))
        return 0
    rows = []
    for name, factory in schedulers:
        if args.engine == "vectorized":
            st = run_switch_vectorized(
                args.ports, make_traffic(args.seed), factory(args.seed),
                slots=args.slots, warmup=args.slots // 5,
            )
        else:
            st = run_switch(
                args.ports, make_traffic(args.seed), factory(args.seed),
                slots=args.slots, warmup=args.slots // 5,
            )
        rows.append([name, st.throughput, st.mean_delay, st.backlog])
    print(f"{args.ports}x{args.ports} switch at load {args.load} "
          f"({args.traffic} traffic, {args.engine} engine):")
    print(format_table(["scheduler", "throughput", "mean delay", "backlog"], rows))
    return 0


def cmd_lca(args) -> int:
    import time

    import numpy as np

    from repro.lca import MatchingService, random_greedy_matching

    if args.queries < 1:
        print(f"error: --queries must be >= 1, got {args.queries}",
              file=sys.stderr)
        return 1
    if args.max_entries < 1:
        print(f"error: --max-entries must be >= 1, got {args.max_entries}",
              file=sys.stderr)
        return 1
    g = gnp_random(args.n, args.p, seed=args.seed)
    svc = MatchingService(
        g, args.seed, max_entries=args.max_entries, cache=not args.no_cache
    )
    rng = np.random.default_rng(args.seed)
    vs = rng.integers(g.n, size=args.queries).tolist() if g.n else []
    t0 = time.perf_counter()
    matched = sum(1 for v in vs if svc.mate_of(v) != -1)
    dt = time.perf_counter() - t0
    st = svc.stats
    print(f"G(n,p): {g.n} vertices, {g.m} edges "
          f"(cache {'off' if args.no_cache else f'on, {args.max_entries} entries'})")
    rows = [
        ["queries served", st.queries],
        ["matched answers", matched],
        ["queries/sec", f"{st.queries / dt:.0f}" if dt > 0 else "inf"],
        ["mean probes/query", f"{st.mean_probes:.2f}"],
        ["max exploration depth", st.max_depth],
        ["cache hit rate", f"{st.cache_hit_rate:.3f}"],
    ]
    print(format_table(["metric", "value"], rows))
    if args.verify:
        t0 = time.perf_counter()
        oracle = random_greedy_matching(g, args.seed)
        dt_global = time.perf_counter() - t0
        truth = oracle.mate_array()
        ok = all(svc.mate_of(v) == truth[v] for v in range(g.n))
        if not ok:
            print("CONSISTENCY MISMATCH vs random_greedy_matching oracle",
                  file=sys.stderr)
            return 1
        print(f"consistency vs global oracle: OK (all {g.n} vertices; "
              f"one global run {dt_global * 1e3:.1f} ms)")
    return 0


def cmd_scenarios(args) -> int:
    from repro.analysis.scenarios import (
        ALGORITHMS,
        SCENARIOS,
        scenario_matrix,
        scenario_table,
    )

    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 1
    if args.repeats < 1:
        print(f"error: --repeats must be >= 1, got {args.repeats}", file=sys.stderr)
        return 1
    if args.size < 8:
        print(f"error: --size must be >= 8, got {args.size}", file=sys.stderr)
        return 1
    if args.seed_batch is not None and args.seed_batch < 1:
        print(f"error: --seed-batch must be >= 1, got {args.seed_batch}",
              file=sys.stderr)
        return 1
    if args.max_retries < 0:
        print(f"error: --max-retries must be >= 0, got {args.max_retries}",
              file=sys.stderr)
        return 1
    if args.resume and not args.out:
        print("error: --resume needs --out (the artifact to resume from)",
              file=sys.stderr)
        return 1
    scenarios = args.family or None
    algos = args.algo or None
    for name in scenarios or ():
        if name not in SCENARIOS:
            print(f"error: unknown family {name!r}; "
                  f"known: {' '.join(sorted(SCENARIOS))}", file=sys.stderr)
            return 1
    for name in algos or ():
        if name not in ALGORITHMS:
            print(f"error: unknown algorithm {name!r}; "
                  f"known: {' '.join(sorted(ALGORITHMS))}", file=sys.stderr)
            return 1
    try:
        results = scenario_matrix(
            scenarios=scenarios,
            algos=algos,
            size=args.size,
            seeds=range(args.seed, args.seed + args.repeats),
            workers=args.workers,
            artifact=args.out,
            backend=args.backend,
            seed_batch=args.seed_batch,
            max_retries=args.max_retries,
            timeout=args.timeout,
            resume=args.resume,
        )
    except OSError as e:
        if args.out is None:
            raise
        print(f"error: cannot write artifact {args.out}: {e}", file=sys.stderr)
        return 1
    n_cells = len(results)
    print(f"scenario matrix: {n_cells} cells "
          f"({args.repeats} seed(s) each, {args.workers} worker(s))")
    print(scenario_table(results))
    if args.out:
        print(f"(records streamed to {args.out})")
    failed = [(r.params, r.error) for r in results if r.error is not None]
    if failed:
        print(f"error: {len(failed)} cell(s) failed:", file=sys.stderr)
        for params, msg in failed:
            print(f"  {params.get('scenario', '?')}/{params.get('algo', '?')}: "
                  f"{msg}", file=sys.stderr)
        if args.out:
            print(f"(re-run with --resume --out {args.out} to retry only "
                  "the failed cells)", file=sys.stderr)
        return 1
    bad = [
        r.params for r in results
        if any(rec.get("ok") == 0.0 for rec in r.records)
    ]
    if bad:
        print(f"error: {len(bad)} cell(s) below the paper bound: {bad}",
              file=sys.stderr)
        return 1
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import generate_report

    md = generate_report(args.out, seed=args.seed)
    print(md)
    print(f"(written to {args.out})")
    return 0


def cmd_file(args) -> int:
    g = read_edgelist(args.path)
    print(f"loaded {args.path}: {g.n} vertices, {g.m} edges, "
          f"{'weighted' if g.weighted else 'unweighted'}")
    if args.algo == "bipartite":
        part = g.bipartition()
        if part is None:
            print("error: graph is not bipartite", file=sys.stderr)
            return 1
        m, res = bipartite_mcm(g, k=args.k, xs=part[0], seed=args.seed)
        opt = len(hopcroft_karp(g, part[0]))
        _print_result(f"bipartite_mcm (k={args.k})", len(m), opt, res)
    elif args.algo == "general":
        m, res, _ = general_mcm(g, k=max(args.k, 3), seed=args.seed)
        opt = maximum_matching_size(g)
        _print_result(f"general_mcm (k={max(args.k, 3)})", len(m), opt, res)
    else:  # weighted
        if not g.weighted:
            print("error: weighted algorithm needs edge weights", file=sys.stderr)
            return 1
        m, res, _ = weighted_mwm(g, eps=args.eps, seed=args.seed)
        opt = maximum_matching_weight(g)
        _print_result(f"weighted_mwm (eps={args.eps})", m.weight(), opt, res)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Distributed approximate matching (SPAA 2008 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp, n=60, pdef=0.08):
        sp.add_argument("--n", type=int, default=n, help="vertices (per side)")
        sp.add_argument("--p", type=float, default=pdef, help="edge probability")
        sp.add_argument("--seed", type=int, default=0)

    def backend_opt(sp):
        sp.add_argument(
            "--backend", choices=("generator", "array"), default="generator",
            help="execution engine (seed-identical results either way)",
        )

    sp = sub.add_parser("bipartite", help="Theorem 3.8 on a random bipartite graph")
    common(sp)
    sp.add_argument("--k", type=int, default=3, help="guarantee 1-1/k")
    sp.set_defaults(fn=cmd_bipartite)

    sp = sub.add_parser("general", help="Theorem 3.11 on G(n,p)")
    common(sp)
    sp.add_argument("--k", type=int, default=3)
    sp.set_defaults(fn=cmd_general)

    sp = sub.add_parser("generic", help="Theorem 3.1 on G(n,p) (LOCAL model)")
    common(sp, n=30, pdef=0.1)
    sp.add_argument("--k", type=int, default=2)
    backend_opt(sp)
    sp.set_defaults(fn=cmd_generic)

    sp = sub.add_parser("weighted", help="Theorem 4.5 on weighted G(n,p)")
    common(sp, n=50, pdef=0.1)
    sp.add_argument("--eps", type=float, default=0.1)
    backend_opt(sp)
    sp.set_defaults(fn=cmd_weighted)

    sp = sub.add_parser("baselines", help="run all prior-work baselines")
    common(sp, n=80, pdef=0.06)
    backend_opt(sp)
    sp.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject a deterministic fault plan, e.g. "
             "'loss=0.05,crash=3,link=2' (keys: loss, delay, crash, "
             "link, crash_window, link_window, seed); runs the "
             "fault-adaptive Israeli-Itai baseline and prints fault "
             "counters plus the degradation-oracle verdict",
    )
    sp.set_defaults(fn=cmd_baselines)

    sp = sub.add_parser("switch", help="switch scheduler comparison")
    sp.add_argument("--ports", type=int, default=16)
    sp.add_argument("--load", type=float, default=0.9)
    sp.add_argument("--slots", type=int, default=2000)
    sp.add_argument("--k", type=int, default=3)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument(
        "--traffic",
        choices=("bernoulli", "diagonal", "bursty", "hotspot"),
        default="bernoulli",
        help="traffic model feeding the switch",
    )
    sp.add_argument(
        "--engine", choices=("vectorized", "scalar"), default="vectorized",
        help="cell-slot loop implementation (stats are byte-identical; "
             "vectorized is the long-horizon path)",
    )
    sp.add_argument(
        "--seed-batch", type=int, default=None, metavar="N",
        help="run N seed lanes per scheduler as one batched execution "
             "and report mean ± 95%% CI per metric (lanes are seeds "
             "--seed .. --seed+N-1; overrides --engine)",
    )
    sp.set_defaults(fn=cmd_switch)

    sp = sub.add_parser(
        "scenarios", help="run every core algorithm on every graph family"
    )
    sp.add_argument("--size", type=int, default=20, help="graph scale per cell")
    sp.add_argument("--repeats", type=int, default=2, help="seeds per cell")
    sp.add_argument("--workers", type=int, default=1, help="worker processes")
    sp.add_argument("--family", action="append", metavar="NAME",
                    help="restrict to a family (repeatable)")
    sp.add_argument("--algo", action="append", metavar="NAME",
                    help="restrict to an algorithm (repeatable)")
    sp.add_argument("--out", default=None, help="stream JSONL records here")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument(
        "--seed-batch", type=int, default=None, metavar="K",
        help="dispatch each cell's seeds in chunks of K (one task per "
             "chunk instead of one call per seed); records are identical",
    )
    sp.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="re-run a failed cell up to N times (exponential backoff) "
             "before recording it as an error",
    )
    sp.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="per-cell result timeout in seconds (enforced with "
             "--workers > 1; an overdue cell becomes an error record)",
    )
    sp.add_argument(
        "--resume", action="store_true",
        help="skip cells already present (error-free) in the --out "
             "artifact from an earlier run; only failed and missing "
             "cells re-run",
    )
    backend_opt(sp)
    sp.set_defaults(fn=cmd_scenarios)

    sp = sub.add_parser(
        "lca", help="serve point queries against the random-greedy matching"
    )
    common(sp, n=2000, pdef=0.004)
    sp.add_argument("--queries", type=int, default=5000,
                    help="random mate_of lookups to serve")
    sp.add_argument("--max-entries", type=int, default=4096,
                    help="LRU capacity (explored neighborhoods)")
    sp.add_argument("--no-cache", action="store_true",
                    help="disable cross-query caching (answers identical)")
    sp.add_argument("--verify", action="store_true",
                    help="cross-check every vertex against one global "
                         "random_greedy_matching run")
    sp.set_defaults(fn=cmd_lca)

    sp = sub.add_parser("report", help="write a Markdown reproduction snapshot")
    sp.add_argument("--out", default="REPORT.md")
    sp.add_argument("--seed", type=int, default=0)
    sp.set_defaults(fn=cmd_report)

    sp = sub.add_parser("file", help="run an algorithm on an edge-list file")
    sp.add_argument("path")
    sp.add_argument(
        "--algo", choices=("bipartite", "general", "weighted"), default="general"
    )
    sp.add_argument("--k", type=int, default=3)
    sp.add_argument("--eps", type=float, default=0.1)
    sp.add_argument("--seed", type=int, default=0)
    sp.set_defaults(fn=cmd_file)
    return p


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
