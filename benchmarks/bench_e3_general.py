"""E3 — Theorem 3.11: general graphs via random bipartitions.

Claims measured:
* ratio ≥ 1 − 1/k (k = 3, 4) on G(n,p) and random-regular graphs;
* the sampling iterations actually used vs the paper's
  2^{2k+1}(k+1)·ln k budget (adaptive mode stops at the certificate);
* CONGEST-size messages.
"""

from repro.analysis import format_table, print_banner
from repro.core import fidelity_iterations, general_mcm
from repro.graphs import gnp_random, random_regular
from repro.matching import maximum_matching_size

from conftest import once

SEEDS = range(3)


def run_e3():
    rows = []
    for fam, maker in [
        ("gnp(50,.06)", lambda s: gnp_random(50, 0.06, seed=s)),
        ("3-regular(40)", lambda s: random_regular(40, 3, seed=s)),
    ]:
        for k in (3, 4):
            worst, max_outer, rounds, bits = 1.0, 0, 0, 0
            for s in SEEDS:
                g = maker(s)
                m, res, outer = general_mcm(g, k=k, seed=200 + s)
                opt = maximum_matching_size(g)
                if opt:
                    worst = min(worst, len(m) / opt)
                max_outer = max(max_outer, outer)
                rounds = max(rounds, res.rounds)
                bits = max(bits, res.max_message_bits)
            rows.append(
                [fam, k, 1 - 1 / k, worst, max_outer,
                 fidelity_iterations(k), rounds, bits]
            )
    return rows


def test_general_mcm(benchmark, report):
    rows = once(benchmark, run_e3)

    def show():
        print_banner(
            "E3 / Theorem 3.11 — general (1−1/k)-MCM via random "
            "bipartitions, O(2^{2k} k⁴ log k · log n) time",
            "ratio ≥ 1−1/k w.h.p.; paper budget 2^{2k+1}(k+1)·ln k "
            "iterations (we also report the adaptive certificate stop)",
        )
        print(format_table(
            ["family", "k", "guarantee", "worst ratio", "iters used",
             "paper budget", "max rounds", "max msg bits"], rows
        ))

    report(show)
    for _fam, k, guarantee, worst, used, budget, *_ in rows:
        assert worst >= guarantee - 1e-9
        assert used <= budget  # adaptive never exceeds the paper budget
