"""Tests for switch traffic generators."""

import numpy as np
import pytest

from repro.switch import (
    ChunkedTraffic,
    bernoulli_uniform,
    bursty,
    diagonal,
    hotspot,
    hotspot_output0_rate,
)


class TestBernoulliUniform:
    def test_load_zero_silent(self):
        gen = bernoulli_uniform(8, 0.0, seed=1)
        assert all(gen(t) == [] for t in range(20))

    def test_load_one_every_input(self):
        gen = bernoulli_uniform(8, 1.0, seed=2)
        for t in range(5):
            assert len(gen(t)) == 8

    def test_mean_rate(self):
        gen = bernoulli_uniform(16, 0.5, seed=3)
        total = sum(len(gen(t)) for t in range(500))
        assert abs(total / (500 * 16) - 0.5) < 0.05

    def test_destinations_in_range(self):
        gen = bernoulli_uniform(4, 0.8, seed=4)
        for t in range(50):
            for i, j in gen(t):
                assert 0 <= i < 4 and 0 <= j < 4

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            bernoulli_uniform(4, 1.5)

    def test_determinism(self):
        a = bernoulli_uniform(8, 0.5, seed=5)
        b = bernoulli_uniform(8, 0.5, seed=5)
        assert [a(t) for t in range(10)] == [b(t) for t in range(10)]


class TestDiagonal:
    def test_destinations_near_diagonal(self):
        gen = diagonal(8, 1.0, seed=6)
        for t in range(50):
            for i, j in gen(t):
                assert j in (i, (i + 1) % 8)

    def test_split_ratio(self):
        gen = diagonal(8, 1.0, seed=7)
        same = other = 0
        for t in range(500):
            for i, j in gen(t):
                if j == i:
                    same += 1
                else:
                    other += 1
        assert 1.5 < same / other < 2.7  # nominal ratio 2:1


class TestHotspot:
    def test_hot_output_share(self):
        gen = hotspot(8, 1.0, hot_fraction=0.5, seed=8)
        hot = total = 0
        for t in range(500):
            for _, j in gen(t):
                total += 1
                hot += j == 0
        assert abs(hot / total - 0.5) < 0.12  # output 0 also gets uniform share

    def test_zero_fraction_roughly_uniform(self):
        gen = hotspot(8, 1.0, hot_fraction=0.0, seed=9)
        counts = [0] * 8
        for t in range(400):
            for _, j in gen(t):
                counts[j] += 1
        assert max(counts) < 3 * min(c for c in counts if c)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            hotspot(4, 0.5, hot_fraction=1.5)


class TestHotspotOutput0Rate:
    def test_formula(self):
        """Rate into output 0 = ports·load·hot_fraction + (1−hf)·load:
        every input directs hot_fraction of its cells there (the ports
        factor), plus output 0's share of the uniform remainder."""
        assert hotspot_output0_rate(8, 0.5, 0.25) == pytest.approx(
            8 * 0.5 * 0.25 + 0.75 * 0.5
        )
        # no hotspot: output 0 receives the plain uniform rate `load`
        assert hotspot_output0_rate(16, 0.3, 0.0) == pytest.approx(0.3)
        # full hotspot: all ports·load cells converge on output 0
        assert hotspot_output0_rate(16, 0.3, 1.0) == pytest.approx(4.8)

    def test_matches_measured_rate(self):
        ports, load, hf = 8, 0.6, 0.2
        gen = hotspot(ports, load, hot_fraction=hf, seed=3)
        block = gen.chunk(40_000)
        measured = (block == 0).sum() / len(block)
        assert measured == pytest.approx(
            hotspot_output0_rate(ports, load, hf), rel=0.05
        )


class TestChunkedStream:
    MODELS = {
        "bernoulli": lambda: bernoulli_uniform(6, 0.5, seed=13),
        "diagonal": lambda: diagonal(6, 0.7, seed=14),
        "bursty": lambda: bursty(6, 0.5, burst_len=5.0, seed=15),
        "hotspot": lambda: hotspot(6, 0.6, hot_fraction=0.3, seed=16),
    }

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_per_slot_matches_chunk(self, name):
        """The callable (scalar) interface and chunk() expose the same
        underlying arrival sequence."""
        a = self.MODELS[name]()
        b = self.MODELS[name]()
        block = a.chunk(300)
        for t in range(300):
            pairs = b(t)
            row = block[t]
            expect = [(int(i), int(row[i])) for i in np.flatnonzero(row >= 0)]
            assert pairs == expect

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_consumer_chunk_sizes_irrelevant(self, name):
        """Draws are consumed in fixed internal blocks, so the sequence
        does not depend on how the consumer slices it."""
        whole = self.MODELS[name]().chunk(5000)
        gen = self.MODELS[name]()
        pieces = [gen.chunk(n) for n in (1, 2, 37, 1000, 2048, 1912)]
        assert np.array_equal(np.concatenate(pieces), whole)

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_clone_rewinds_to_slot_zero(self, name):
        gen = self.MODELS[name]()
        first = gen.chunk(500)
        gen.chunk(700)  # advance further
        again = gen.clone().chunk(500)
        assert np.array_equal(again, first)

    def test_all_models_return_chunked_traffic(self):
        for make in self.MODELS.values():
            assert isinstance(make(), ChunkedTraffic)

    def test_negative_chunk_rejected(self):
        with pytest.raises(ValueError):
            bernoulli_uniform(4, 0.5).chunk(-1)

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_cursor_shared_between_interfaces(self, name):
        """gen(slot) and chunk() advance one cursor: any interleaving
        of the two reads the stream in order."""
        whole = self.MODELS[name]().chunk(60)
        gen = self.MODELS[name]()
        consumed = 0
        for count in (3, 1, 5, 2, 8):
            block = gen.chunk(count)
            assert np.array_equal(block, whole[consumed:consumed + count])
            consumed += count
            row = whole[consumed]
            expect = [(int(i), int(row[i])) for i in np.flatnonzero(row >= 0)]
            assert gen(consumed) == expect  # slot arg ignored; next unread
            consumed += 1

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_slots_consumed_counts_both_interfaces(self, name):
        gen = self.MODELS[name]()
        assert gen.slots_consumed == 0
        gen.chunk(17)
        assert gen.slots_consumed == 17
        gen(0)
        gen(1)
        assert gen.slots_consumed == 19
        gen.chunk(0)
        assert gen.slots_consumed == 19

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_clone_ignores_cursor_position(self, name):
        """clone() rewinds to slot 0 no matter how the parent's cursor
        advanced — including mid-internal-block and via gen(slot)."""
        reference = self.MODELS[name]().chunk(200)
        gen = self.MODELS[name]()
        gen.chunk(13)  # stop mid internal block
        gen(0)
        assert np.array_equal(gen.clone().chunk(200), reference)
        assert gen.slots_consumed == 14  # cloning does not move the parent
        assert np.array_equal(gen.chunk(200 - 14), reference[14:])


class TestBatchedChunkedTraffic:
    def test_lanes_read_in_lockstep_match_solo_streams(self):
        from repro.switch import batched_traffic

        make = lambda s: bursty(6, 0.5, burst_len=5.0, seed=s)  # noqa: E731
        stack = batched_traffic(make, [3, 4, 5])
        block = stack.chunk(120)
        more = stack.chunk(80)
        for lane, s in enumerate([3, 4, 5]):
            solo = make(s).chunk(200)
            assert np.array_equal(block[lane], solo[:120])
            assert np.array_equal(more[lane], solo[120:])

    def test_clone_rewinds_every_lane(self):
        from repro.switch import batched_traffic

        stack = batched_traffic(
            lambda s: bernoulli_uniform(5, 0.6, seed=s), [1, 2]
        )
        first = stack.chunk(90)
        stack.chunk(30)
        assert np.array_equal(stack.clone().chunk(90), first)
