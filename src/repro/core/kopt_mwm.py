"""k-opt weighted matching — the extension behind the paper's remark.

The remark after Theorem 4.5 sketches a (1−ε)-MWM by adapting the
PRAM algorithm of Hougardy–Vinkemeier [14] ("details omitted from this
extended abstract").  The engine of that result is Lemma 4.2
(Pettie–Sanders [24]):

    for all k > 0 there is a collection P of disjoint augmentations,
    each with at most k unmatched edges, with
    w(M ⊕ P) ≥ w(M) + (k+1)/(2k+1) · (k/(k+1)·w(M*) − w(M)).

Consequence: a matching that admits **no positive-gain augmentation
with ≤ k unmatched edges** already satisfies
``w(M) ≥ k/(k+1) · w(M*)`` — a (1 − 1/(k+1))-MWM.

This module provides that *centralized reference* (per DESIGN.md §7 we
make no distributed claim for it):

* :func:`find_gain_augmentations` — enumerate alternating paths *and
  cycles* with ≤ k unmatched edges and positive gain (exponential in
  k, fine for the small k of interest);
* :func:`kopt_mwm` — local search: repeatedly apply a greedy
  positive-gain disjoint set until none remains.  Terminates (weight
  strictly increases and the instance has finitely many matchings) at
  a k-optimal matching with the bound above.

Two evaluation paths (ISSUE 5): the enumeration order is shared, but
gains can be computed per candidate walk (the scalar reference) or for
*all* enumerated walks in one vectorized pass with the batch applied
as bulk mate surgery (``backend="array"`` / :func:`kopt_mwm_array`) —
identical results, bit for bit, pinned by the seed-identity goldens.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graphs.graph import Graph
from repro.matching.matching import Matching


def _gain(g: Graph, m: Matching, edges: list[tuple[int, int]]) -> float:
    """w(M ⊕ edges) − w(M) for an alternating edge set."""
    total = 0.0
    for u, v in edges:
        w = g.weight(u, v)
        total += -w if m.is_matched_edge(u, v) else w
    return total


def _canonical(edges: list[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    return tuple(sorted(tuple(sorted(e)) for e in edges))


def _alternating_walks(
    g: Graph, m: Matching, k: int
) -> Iterator[list[tuple[int, int]]]:
    """All candidate alternating walks, in deterministic DFS order.

    Yields every edge list the augmentation search must price — each
    in its walk order, so a gain evaluated over it reproduces the
    sequential float accumulation of :func:`_gain` regardless of how
    the pricing is batched.  An *augmentation* here is any edge set
    whose symmetric difference with M is again a matching: alternating
    paths (either endpoint may be matched or free — ends on matched
    edges shrink M there) and alternating even cycles.

    DFS over alternating simple walks.  Validity of M ⊕ P is a pure
    endpoint condition: a *path* is valid iff each endpoint whose
    terminal edge is unmatched is free (otherwise that vertex would
    end up doubly covered); ends on matched edges and alternating
    even cycles are always valid.
    """
    for start in range(g.n):
        stack: list[tuple[list[int], bool, int]] = []
        # First edge unmatched (only from a free start) or matched.
        if m.is_free(start):
            stack.append(([start], False, 0))
        else:
            stack.append(([start], True, 0))
        while stack:
            path, want_matched, used = stack.pop()
            v = path[-1]
            for u in g.neighbors(v):
                if m.is_matched_edge(v, u) != want_matched:
                    continue
                if u == path[0] and len(path) >= 3:
                    # Closing an alternating even cycle: the closing
                    # edge's type must differ from the first edge's
                    # (alternation at the shared vertex).
                    first_matched = m.is_matched_edge(path[0], path[1])
                    if want_matched != first_matched:
                        yield [
                            (path[i], path[i + 1])
                            for i in range(len(path) - 1)
                        ] + [(v, u)]
                    continue
                if u in path:
                    continue
                new_used = used + (0 if want_matched else 1)
                if new_used > k:
                    continue
                new_path = path + [u]
                # Endpoint condition at u for the path to be applicable
                # as-is: unmatched terminal edge needs u free.
                if want_matched or m.is_free(u):
                    yield [
                        (new_path[i], new_path[i + 1])
                        for i in range(len(new_path) - 1)
                    ]
                stack.append((new_path, not want_matched, new_used))


def _rank(
    walks: list[list[tuple[int, int]]], gains: "np.ndarray | list[float]"
) -> list[tuple[float, tuple[tuple[int, int], ...]]]:
    """Shared tail of both pricing paths: threshold, dedup, sort.

    Walks are replayed in enumeration order; a walk whose gain clears
    the float-noise threshold overwrites its canonical form's entry
    (later walk orders of the same edge set may carry a slightly
    different float sum — last positive writer wins, as the historic
    inline accumulation did).
    """
    found: dict[tuple[tuple[int, int], ...], float] = {}
    for walk, gain in zip(walks, gains):
        if gain > 1e-12:
            found[_canonical(walk)] = float(gain)
    return sorted(
        ((gain, edges) for edges, gain in found.items()),
        key=lambda t: (-t[0], t[1]),
    )


def find_gain_augmentations(
    g: Graph, m: Matching, k: int
) -> list[tuple[float, tuple[tuple[int, int], ...]]]:
    """All positive-gain alternating paths/cycles with ≤ k unmatched edges.

    Returns ``(gain, edge-tuple)`` pairs, gain-descending — the scalar
    reference pricing (one :func:`_gain` accumulation per walk).
    """
    walks = list(_alternating_walks(g, m, k))
    return _rank(walks, [_gain(g, m, w) for w in walks])


#: Root-block granularity for the vectorized walk enumeration: the
#: frontier of a block is O(roots · Δ^(k+1)) in the worst case, so the
#: enumeration is chunked over start vertices to bound peak memory.
_ROOT_BLOCK = 1 << 15


def _walks_arrays(
    g: Graph, m: Matching, k: int, roots: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All walks :func:`_alternating_walks` yields from ``roots``, as arrays.

    Level-synchronous frontier expansion over the CSR structure: level
    ``ℓ`` extends every live walk prefix by one half-edge at once, with
    the scalar DFS's per-candidate tests (alternation, cycle closing,
    simplicity, the ≤k unmatched budget, the free-endpoint yield rule)
    evaluated as whole-frontier masks.  Walks strictly alternate, so a
    path prefix has at most ``2k + 1`` edges; a cycle may add one more
    (the closing edge is exempt from the unmatched budget, exactly as
    in the scalar DFS, where only *extensions* are charged), so the
    loop runs at most ``2k + 2`` levels.

    Returns ``(verts, ports, nedges)``: walk ``i`` has ``nedges[i]``
    edges, its vertex sequence is ``verts[i, :nedges[i] + 1]`` (a cycle
    repeats its start vertex at the end), and ``ports[i, j]`` is the
    CSR port index its ``j``-th edge took out of its source vertex —
    enough to reconstruct the scalar DFS's emission order (see
    :func:`find_gain_augmentations_array`).  Unused slots are ``-1``.
    """
    indptr, indices, _ = g.adjacency_arrays()
    indptr = indptr.astype(np.int64, copy=False)
    deg = np.diff(indptr)
    mate = m.mate_array()
    free = mate == -1
    max_edges = 2 * k + 2  # longest walk: a full cycle
    verts = np.full((roots.size, max_edges + 1), -1, dtype=np.int64)
    verts[:, 0] = roots
    ports = np.full((roots.size, max_edges), -1, dtype=np.int64)
    # First edge matched from a matched start, unmatched from a free one.
    want = ~free[roots]
    used = np.zeros(roots.size, dtype=np.int64)
    out_v: list[np.ndarray] = []
    out_p: list[np.ndarray] = []
    out_n: list[np.ndarray] = []
    for level in range(max_edges):
        if verts.shape[0] == 0:
            break
        last = verts[:, level]
        d = deg[last].astype(np.int64)
        total = int(d.sum())
        if total == 0:
            break
        rep = np.repeat(np.arange(verts.shape[0]), d)
        head = np.cumsum(d) - d
        port = np.arange(total, dtype=np.int64) - np.repeat(head, d)
        u = indices[indptr[last][rep] + port].astype(np.int64)
        wrep = want[rep]
        ok = (mate[last[rep]] == u) == wrep
        is_start = u == verts[rep, 0]
        if level >= 2:
            # Closing an alternating even cycle: the closing edge's
            # type must differ from the first edge's.
            first_matched = mate[verts[:, 0]] == verts[:, 1]
            cyc = ok & is_start & (wrep != first_matched[rep])
        else:
            cyc = np.zeros(total, dtype=bool)
        in_path = is_start.copy()
        for j in range(1, level + 1):
            in_path |= verts[rep, j] == u
        new_used = used[rep] + (~wrep).astype(np.int64)
        ext = ok & ~in_path & (new_used <= k)
        # A path is applicable as-is iff an unmatched terminal edge
        # ends on a free vertex; extensions are explored regardless.
        emit = cyc | (ext & (wrep | free[u]))
        if emit.any():
            er = rep[emit]
            ev = verts[er].copy()
            ev[:, level + 1] = u[emit]
            ep = ports[er].copy()
            ep[:, level] = port[emit]
            out_v.append(ev)
            out_p.append(ep)
            out_n.append(np.full(er.size, level + 1, dtype=np.int64))
        if level + 1 >= max_edges or not ext.any():
            if level + 1 >= max_edges:
                break
            verts = verts[:0]
            continue
        kr = rep[ext]
        nv = verts[kr].copy()
        nv[:, level + 1] = u[ext]
        np_ = ports[kr].copy()
        np_[:, level] = port[ext]
        verts, ports = nv, np_
        want = ~wrep[ext]
        used = new_used[ext]
    width_v, width_p = max_edges + 1, max_edges
    if not out_v:
        return (
            np.empty((0, width_v), dtype=np.int64),
            np.empty((0, width_p), dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    return np.vstack(out_v), np.vstack(out_p), np.concatenate(out_n)


def find_gain_augmentations_array(
    g: Graph, m: Matching, k: int
) -> list[tuple[float, tuple[tuple[int, int], ...]]]:
    """Vectorized twin of :func:`find_gain_augmentations`.

    Since ISSUE 7 both halves are array-native: the walk *enumeration*
    runs as a level-synchronous frontier expansion (the scalar DFS was
    the cell's actual bottleneck — the pricing it fed was already
    vectorized) and the *pricing* accumulates position by position
    across all walks at once, reproducing each walk's scalar
    left-to-right float sum bit for bit (``reduceat`` would not: its
    in-segment summation is pairwise, and near-tied gains then sort
    differently than the scalar path).

    Deduplication must also match: the scalar `_rank` keeps, for every
    canonical edge set, the gain of its **last positively-priced walk
    in DFS emission order**.  That order is recovered without running
    the DFS: within one expansion, yields happen in port order, and
    pushed extensions are popped LIFO — so prefixes are expanded in
    reverse-port preorder, and a walk's emission slot is exactly the
    lexicographic key ``(start, -p_1, ..., -p_{L-1}, p_L)`` over its
    port sequence, with absent prefix positions below every real port
    (a prefix is expanded before its extensions).  One ``lexsort``
    therefore replays the scalar tie-breaking exactly.
    """
    n = g.n
    if n == 0:
        return []
    mate = m.mate_array()
    weights = g.weights_array()
    max_edges = 2 * k + 2
    blocks = [
        _walks_arrays(g, m, k, np.arange(s, min(s + _ROOT_BLOCK, n), dtype=np.int64))
        for s in range(0, n, _ROOT_BLOCK)
    ]
    verts = np.vstack([b[0] for b in blocks])
    ports = np.vstack([b[1] for b in blocks])
    nedges = np.concatenate([b[2] for b in blocks])
    rows = nedges.size
    if rows == 0:
        return []
    gains = np.zeros(rows, dtype=np.float64)
    edge_keys = np.full((rows, max_edges), np.int64(n) * n, dtype=np.int64)
    for pos in range(int(nedges.max())):
        alive = nedges > pos
        u, v = verts[alive, pos], verts[alive, pos + 1]
        eid = g.edge_ids_array(u, v)
        w = weights[eid].astype(np.float64)
        gains[alive] += np.where(mate[u] == v, -w, w)
        edge_keys[alive, pos] = np.minimum(u, v) * n + np.maximum(u, v)
    keep = np.flatnonzero(gains > 1e-12)
    if keep.size == 0:
        return []
    # DFS emission rank of each surviving walk (docstring key).
    kp = ports[keep]
    kn = nedges[keep]
    pad = np.int64(-(n + 2))  # below every -(port + 1)
    cols = np.arange(max_edges - 1)
    prefix = np.where(
        cols[None, :] < (kn - 1)[:, None], -(kp[:, : max_edges - 1] + 1), pad
    )
    plast = kp[np.arange(keep.size), kn - 1]
    order = np.lexsort(
        (plast,)
        + tuple(prefix[:, j] for j in range(max_edges - 2, -1, -1))
        + (verts[keep, 0],)
    )
    rank = np.empty(keep.size, dtype=np.int64)
    rank[order] = np.arange(keep.size)
    # Last positive writer per canonical edge set: group rows on their
    # sorted edge keys, keep the max-rank member of each group.
    ek = edge_keys[keep]
    ek.sort(axis=1)
    gorder = np.lexsort(tuple(ek[:, j] for j in range(max_edges - 1, -1, -1)))
    sek = ek[gorder]
    gid = np.cumsum(
        np.r_[True, (sek[1:] != sek[:-1]).any(axis=1)]
    ) - 1
    worder = np.lexsort((rank[gorder], gid))
    last_of_group = np.r_[gid[worder][1:] != gid[worder][:-1], True]
    winners = gorder[worder[last_of_group]]
    out: list[tuple[float, tuple[tuple[int, int], ...]]] = []
    for i in winners.tolist():
        keys_row = [kk for kk in ek[i].tolist() if kk < n * n]
        edges = tuple((kk // n, kk % n) for kk in keys_row)
        out.append((float(gains[keep[i]]), edges))
    out.sort(key=lambda t: (-t[0], t[1]))
    return out


def _apply_batch_array(
    m: Matching, batch: list[tuple[int, int]]
) -> Matching:
    """``M ⊕ batch`` as bulk mate surgery (validated on construction)."""
    mate = m.mate_array()
    arr = np.asarray(batch, dtype=np.int64).reshape(-1, 2)
    u, v = arr[:, 0], arr[:, 1]
    toggled_off = mate[u] == v
    mate[u[toggled_off]] = -1
    mate[v[toggled_off]] = -1
    au, av = u[~toggled_off], v[~toggled_off]
    mate[au] = av
    mate[av] = au
    return Matching.from_mate_array(m.graph, mate)


def kopt_mwm(
    g: Graph, k: int = 2, max_passes: int = 10_000, backend: str = "generator"
) -> tuple[Matching, int]:
    """Local-search (1 − 1/(k+1))-MWM via ≤k-unmatched-edge augmentations.

    Greedy per pass: scan augmentations by gain, apply those disjoint
    from already-applied ones, recompute, repeat until no positive
    gain remains.  Returns ``(matching, passes)``.

    For k = 1 this is 3-augmentation-optimality (the ½ of Lemma 4.2's
    k=1 case, i.e. what Algorithm 5 converges to); k = 2 gives 2/3,
    k = 3 gives 3/4, matching the (2/3−ε) of [7]/[24] and beyond.

    ``backend`` keeps the layer-4 routing names: ``"generator"`` is
    the scalar reference (kopt is centralized — there is no network —
    so the name only marks the unvectorized path), ``"array"`` prices
    all candidate walks in one vectorized pass and applies each batch
    as bulk mate surgery.  Both produce identical matchings and pass
    counts.
    """
    if not g.weighted:
        raise ValueError("kopt_mwm needs a weighted graph")
    if k < 1:
        raise ValueError("k must be >= 1")
    if backend not in ("generator", "array"):
        raise ValueError(f"unknown backend {backend!r}")
    finder = (
        find_gain_augmentations_array
        if backend == "array"
        else find_gain_augmentations
    )
    m = Matching(g)
    passes = 0
    for passes in range(1, max_passes + 1):
        candidates = finder(g, m, k)
        if not candidates:
            break
        used: set[int] = set()
        batch: list[tuple[int, int]] = []
        for _gain_val, edges in candidates:
            verts = {v for e in edges for v in e}
            if verts & used:
                continue
            used |= verts
            batch.extend(edges)
        if backend == "array":
            m = _apply_batch_array(m, batch)
        else:
            m = m.symmetric_difference(batch)
    else:
        raise RuntimeError("kopt_mwm failed to converge")
    return m, passes


def kopt_mwm_array(
    g: Graph, k: int = 2, max_passes: int = 10_000
) -> tuple[Matching, int]:
    """``kopt_mwm(..., backend="array")`` under the porting-convention name."""
    return kopt_mwm(g, k=k, max_passes=max_passes, backend="array")
