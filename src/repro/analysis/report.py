"""One-command reproduction report.

``generate_report()`` runs a compact version of the whole experiment
suite (every algorithm × a shared graph suite, all measured against
exact oracles) and renders a Markdown report — the artifact a referee
would skim.  Exposed as ``python -m repro report``.

This intentionally duplicates *none* of the benchmark logic: benches
assert individual paper claims with their own workloads; the report is
a cross-cutting quality/cost snapshot on one shared suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.tables import format_table
from repro.baselines import (
    hoepman_mwm,
    israeli_itai_matching,
    lps_mwm,
)
from repro.baselines.lps_interleaved import lps_interleaved_mwm
from repro.core import bipartite_mcm, general_mcm, weighted_mwm
from repro.graphs import bipartite_random, comb_graph, gnp_random, random_tree
from repro.graphs.weights import assign_uniform_weights
from repro.matching import (
    greedy_mwm,
    maximum_matching_size,
    maximum_matching_weight,
)


@dataclass
class ReportRow:
    """One (algorithm, instance) measurement."""

    algorithm: str
    guarantee: str
    instance: str
    ratio: float
    rounds: int
    max_bits: int


def _unweighted_suite(seed: int):
    g1, xs, _ = bipartite_random(30, 30, 0.1, seed=seed)
    g2 = gnp_random(50, 0.06, seed=seed)
    g3 = comb_graph(10)
    g4 = random_tree(40, seed=seed)
    return [
        ("bip(30+30)", g1, xs),
        ("gnp(50)", g2, None),
        ("comb(10)", g3, None),
        ("tree(40)", g4, None),
    ]


def collect_unweighted(seed: int = 0) -> list[ReportRow]:
    """Cardinality algorithms over the shared suite."""
    rows: list[ReportRow] = []
    for name, g, xs in _unweighted_suite(seed):
        opt = maximum_matching_size(g)
        if opt == 0:
            continue
        m, res = israeli_itai_matching(g, seed=seed)
        rows.append(ReportRow(
            "Israeli-Itai [15]", "1/2", name, len(m) / opt,
            res.rounds, res.max_message_bits,
        ))
        if xs is not None or g.is_bipartite():
            m, res = bipartite_mcm(g, k=3, xs=xs, seed=seed)
            rows.append(ReportRow(
                "bipartite_mcm (Thm 3.8)", "2/3", name, len(m) / opt,
                res.rounds, res.max_message_bits,
            ))
        m, res, _ = general_mcm(g, k=3, seed=seed)
        rows.append(ReportRow(
            "general_mcm (Thm 3.11)", "2/3", name, len(m) / opt,
            res.rounds, res.max_message_bits,
        ))
    return rows


def collect_weighted(seed: int = 0) -> list[ReportRow]:
    """Weighted algorithms over a shared weighted suite."""
    rows: list[ReportRow] = []
    for name, g in [
        ("w-gnp(40)", assign_uniform_weights(gnp_random(40, 0.1, seed=seed), seed=seed)),
        ("w-gnp(60)", assign_uniform_weights(gnp_random(60, 0.07, seed=seed), seed=seed)),
    ]:
        opt = maximum_matching_weight(g)
        gm = greedy_mwm(g)
        rows.append(ReportRow("greedy (seq)", "1/2", name, gm.weight() / opt, 0, 0))
        m, res = hoepman_mwm(g)
        rows.append(ReportRow(
            "Hoepman [11]", "1/2", name, m.weight() / opt,
            res.rounds, res.max_message_bits,
        ))
        m, res = lps_mwm(g, seed=seed)
        rows.append(ReportRow(
            "LPS classes [18]", "1/4-eps", name, m.weight() / opt,
            res.rounds, res.max_message_bits,
        ))
        m, res = lps_interleaved_mwm(g, seed=seed)
        rows.append(ReportRow(
            "LPS interleaved", "~1/4", name, m.weight() / opt,
            res.rounds, res.max_message_bits,
        ))
        m, res, _ = weighted_mwm(g, eps=0.1, seed=seed, box="interleaved")
        rows.append(ReportRow(
            "weighted_mwm (Thm 4.5)", "1/2-eps", name, m.weight() / opt,
            res.rounds, res.max_message_bits,
        ))
    return rows


def render_markdown(
    unweighted: list[ReportRow], weighted: list[ReportRow], seed: int
) -> str:
    """The report body."""

    def table(rows: list[ReportRow]) -> str:
        return format_table(
            ["algorithm", "guarantee", "instance", "ratio", "rounds", "max bits"],
            [
                [r.algorithm, r.guarantee, r.instance, r.ratio, r.rounds, r.max_bits]
                for r in rows
            ],
        )

    parts = [
        "# Reproduction snapshot",
        "",
        "Lotker, Patt-Shamir & Pettie, *Improved Distributed Approximate "
        "Matching* (SPAA 2008).",
        f"Seed {seed}; every ratio is measured against an exact oracle.",
        "",
        "## Unweighted (vs |M*|)",
        "",
        "```",
        table(unweighted),
        "```",
        "",
        "## Weighted (vs w(M*))",
        "",
        "```",
        table(weighted),
        "```",
        "",
        "Full claim-by-claim evidence: `pytest benchmarks/ "
        "--benchmark-only` (see EXPERIMENTS.md).",
        "",
    ]
    return "\n".join(parts)


def generate_report(path: str | Path | None = None, seed: int = 0) -> str:
    """Run the snapshot suite; optionally write Markdown to ``path``."""
    md = render_markdown(collect_unweighted(seed), collect_weighted(seed), seed)
    if path is not None:
        Path(path).write_text(md)
    return md
