"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graphs import Graph, gnp_random


@pytest.fixture
def parallel_workers() -> int:
    """Worker count for ParallelRunner tests: capped at 2 under CI.

    CI runners typically expose 1-2 cores; oversubscribing them makes
    the determinism tests slow without testing anything extra.
    """
    return 2 if os.environ.get("CI") else 4


@pytest.fixture
def triangle() -> Graph:
    """K3 — smallest odd cycle."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def p4() -> Graph:
    """Path on 4 vertices — the smallest graph with a 3-augmenting path."""
    return Graph(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def small_random() -> Graph:
    """A fixed small sparse random graph used across modules."""
    return gnp_random(30, 0.12, seed=42)


@pytest.fixture
def weighted_square() -> Graph:
    """4-cycle with distinct weights — canonical weighted toy."""
    return Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)], [4.0, 1.0, 3.0, 2.0])


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def graphs(draw, max_n: int = 12, weighted: bool = False):
    """Random small :class:`Graph` instances for property tests."""
    n = draw(st.integers(min_value=0, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))) if possible else []
    weights = None
    if weighted and edges:
        weights = draw(
            st.lists(
                st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
                min_size=len(edges),
                max_size=len(edges),
            )
        )
    return Graph(n, edges, weights)


@st.composite
def bipartite_graphs(draw, max_side: int = 7):
    """Random small bipartite graphs; returns (graph, xs, ys)."""
    nx = draw(st.integers(min_value=1, max_value=max_side))
    ny = draw(st.integers(min_value=1, max_value=max_side))
    possible = [(x, nx + y) for x in range(nx) for y in range(ny)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible)))
    return Graph(nx + ny, edges), list(range(nx)), list(range(nx, nx + ny))


@st.composite
def matchable(draw, max_n: int = 12):
    """A (graph, matching-edge-list) pair where the edges form a matching."""
    g = draw(graphs(max_n=max_n))
    chosen = []
    used: set[int] = set()
    for u, v in g.edges():
        if u not in used and v not in used and draw(st.booleans()):
            chosen.append((u, v))
            used.update((u, v))
    return g, chosen


def make_rng(seed: int = 0) -> np.random.Generator:
    """Deterministic RNG helper for non-hypothesis tests."""
    return np.random.default_rng(seed)
