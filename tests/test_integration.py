"""Integration tests: the paper's headline claims, end to end.

Each test runs a full pipeline (graph generation → distributed
algorithm → exact oracle → claim check), crossing every package
boundary in the repository.
"""

import math

import pytest

from repro.baselines import (
    hoepman_mwm,
    israeli_itai_matching,
    lps_mwm,
)
from repro.core import (
    bipartite_mcm,
    general_mcm,
    generic_mcm,
    weighted_mwm,
)
from repro.graphs import (
    bipartite_random,
    crown_graph,
    gnp_random,
    grid_graph,
    random_regular,
    random_tree,
)
from repro.graphs.weights import assign_integer_weights, assign_uniform_weights
from repro.matching import (
    hopcroft_karp,
    maximum_matching_size,
    maximum_matching_weight,
)
from repro.switch import PaperScheduler, PimScheduler, bernoulli_uniform, run_switch


class TestHeadlineUnweighted:
    """Abstract: '(1−ε)-approximation in O(log n) time' vs the ½ of
    Israeli–Itai."""

    def test_paper_beats_half_baseline_on_crown(self):
        g, xs, _ = crown_graph(10)
        opt = maximum_matching_size(g)
        ours, _ = bipartite_mcm(g, k=4, xs=xs, seed=1)
        assert len(ours) >= (1 - 1 / 4) * opt
        # The ½ guarantee of a maximal matching is tight-ish somewhere;
        # here both may do well, but ours is *guaranteed* ≥ 3/4.
        ii, _ = israeli_itai_matching(g, seed=1)
        assert 2 * len(ii) >= opt

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: gnp_random(50, 0.06, seed=3),
            lambda: random_tree(50, seed=4),
            lambda: grid_graph(6, 8),
            lambda: random_regular(40, 3, seed=5),
        ],
        ids=["gnp", "tree", "grid", "regular"],
    )
    def test_general_mcm_all_families(self, maker):
        g = maker()
        m, _, _ = general_mcm(g, k=3, seed=9)
        opt = maximum_matching_size(g)
        assert len(m) >= (1 - 1 / 3) * opt - 1e-9

    def test_three_algorithms_agree_on_guarantee(self):
        """Thm 3.1, Thm 3.8 (via bipartite), Thm 3.11 on one instance."""
        g, xs, _ = bipartite_random(20, 20, 0.15, seed=6)
        opt = len(hopcroft_karp(g, xs))
        m1, _ = generic_mcm(g, k=3, seed=6)
        m2, _ = bipartite_mcm(g, k=3, xs=xs, seed=6)
        m3, _, _ = general_mcm(g, k=3, seed=6)
        for m in (m1, m2, m3):
            assert len(m) >= (1 - 1 / 3) * opt - 1e-9


class TestHeadlineWeighted:
    """Abstract: '(½−ε) in O(log n)' improving on (¼−ε) of [18]."""

    @pytest.mark.parametrize("seed", range(3))
    def test_ordering_lps_ours_opt(self, seed):
        g = assign_uniform_weights(gnp_random(35, 0.15, seed=seed), seed=seed)
        opt = maximum_matching_weight(g)
        quarter, _ = lps_mwm(g, seed=seed)
        half, _, _ = weighted_mwm(g, eps=0.1, seed=seed)
        assert quarter.weight() >= 0.25 * opt - 1e-9
        assert half.weight() >= 0.4 * opt - 1e-9
        # Algorithm 5 should not lose to the box it builds on (modulo
        # noise, allow small slack).
        assert half.weight() >= quarter.weight() * 0.95

    def test_integer_weights_pipeline(self):
        g = assign_integer_weights(gnp_random(30, 0.15, seed=7), seed=7)
        m, _, _ = weighted_mwm(g, eps=0.1, seed=7, check_lemma41=True)
        assert m.weight() >= 0.4 * maximum_matching_weight(g) - 1e-9

    def test_deterministic_baseline_consistency(self):
        g = assign_uniform_weights(gnp_random(30, 0.15, seed=8), seed=8)
        hoep, _ = hoepman_mwm(g)
        ours, _, _ = weighted_mwm(g, eps=0.05, seed=8)
        opt = maximum_matching_weight(g)
        assert hoep.weight() >= 0.5 * opt - 1e-9
        assert ours.weight() >= 0.45 * opt - 1e-9


class TestRoundComplexity:
    """O(log n) time: doubling n must not double rounds."""

    def test_bipartite_round_growth(self):
        rounds = []
        for n in (32, 64, 128):
            g, xs, _ = bipartite_random(n, n, 6.0 / n, seed=n)
            _, res = bipartite_mcm(g, k=2, xs=xs, seed=n)
            rounds.append(res.rounds)
        assert rounds[-1] < 4 * rounds[0], rounds

    def test_israeli_itai_round_growth(self):
        rounds = []
        for n in (64, 256):
            g = gnp_random(n, 8.0 / n, seed=n)
            _, res = israeli_itai_matching(g, seed=n)
            rounds.append(res.rounds)
        assert rounds[1] < 3 * rounds[0] + 12


class TestSwitchApplication:
    def test_paper_scheduler_competitive_with_pim(self):
        load = 0.85
        st_pim = run_switch(
            8, bernoulli_uniform(8, load, seed=1), PimScheduler(8, seed=1),
            slots=1500, warmup=200,
        )
        st_paper = run_switch(
            8, bernoulli_uniform(8, load, seed=1), PaperScheduler(8, k=3),
            slots=1500, warmup=200,
        )
        # Both sustain the load; the paper's scheduler shouldn't lose.
        assert st_paper.throughput >= st_pim.throughput - 0.03
        assert st_paper.mean_delay <= st_pim.mean_delay * 1.5


class TestCongestCompliance:
    def test_ii_and_luby_fit_congest(self):
        """The O(log n)-bit algorithms run under enforced CONGEST."""
        from repro.baselines.israeli_itai import israeli_itai_program
        from repro.baselines.luby_mis import luby_mis_program
        from repro.distributed import CONGEST, Network

        g = gnp_random(100, 0.06, seed=11)
        Network(g, israeli_itai_program, seed=1, model=CONGEST).run()
        Network(g, luby_mis_program, params={"n": g.n}, seed=1, model=CONGEST).run()

    def test_bipartite_tokens_fit_congest_for_moderate_params(self):
        from repro.core.bipartite_mcm import aug_iteration_program, _conflict_bound
        from repro.distributed import CONGEST, Network

        g, xs, _ = bipartite_random(50, 50, 0.08, seed=12)
        xside = [v < 50 for v in range(g.n)]
        hi = _conflict_bound(g.n, g.max_degree(), 3) ** 4
        net = Network(
            g,
            aug_iteration_program,
            params={"xside": xside, "mates": [-1] * g.n, "ell": 3, "hi": hi},
            seed=2,
            model=CONGEST,
        )
        net.run()
