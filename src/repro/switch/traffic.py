"""Traffic models for the switch experiments.

The standard admissible patterns from the iSLIP literature:

* ``bernoulli_uniform`` — each input receives a cell per slot with
  probability ``load``, destination uniform over outputs;
* ``diagonal`` — input i sends to outputs i (2/3 of its traffic) and
  i+1 mod N (1/3): a skewed but admissible pattern that separates
  round-robin schedulers from random ones;
* ``bursty`` — on/off Markov bursts of same-destination cells, the
  standard stress for round-robin schedulers;
* ``hotspot`` — a fraction of all traffic converges on output 0
  (inadmissible once :func:`hotspot_output0_rate` exceeds 1; used to
  study saturation behaviour).

Every model returns a :class:`ChunkedTraffic` stream.  Arrivals are
generated in fixed ``CHUNK``-slot NumPy blocks — a ``(slots, ports)``
destination matrix with ``-1`` marking "no arrival" — so the
long-horizon engine (:mod:`repro.switch.engine`) consumes whole blocks
while the scalar loop (:func:`repro.switch.simulator.run_switch`)
consumes the *same* stream one slot at a time through the callable
:data:`TrafficGenerator` interface.  Because generation always happens
in ``CHUNK``-sized internal blocks, the arrival sequence is a pure
function of the model parameters and seed: it does not depend on the
consumer's chunk sizes or on whether the stream is read per slot or in
bulk.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

#: a traffic generator yields (input, output) arrivals for a given slot
TrafficGenerator = Callable[[int], List[Tuple[int, int]]]

#: internal generation block, in slots.  Part of the stream definition:
#: draws are consumed in CHUNK-slot blocks, so changing this constant
#: changes the arrival sequences (it is not a tuning knob).
CHUNK = 2048


class ChunkedTraffic:
    """A chunked arrival stream that is also a per-slot callable.

    ``chunk(count)`` returns the next ``count`` slots of arrivals as a
    ``(count, ports)`` int64 matrix: entry ``[s, i]`` is the
    destination output of the cell arriving at input ``i`` during that
    slot, or ``-1`` when input ``i`` receives nothing (each input
    receives at most one cell per slot in all models).

    Calling the stream as ``gen(slot)`` (the scalar
    :data:`TrafficGenerator` interface) yields the next slot's arrivals
    as ``(input, output)`` pairs.

    **Cursor contract.**  Both access styles advance the *same* cursor:
    ``gen(s)`` ignores its slot argument and simply reads the next
    unread slot, so interleaving per-slot calls with ``chunk()`` is
    well-defined — after consuming ``k`` slots by any mix of the two,
    the next read returns slot ``k`` of the stream.  The position is
    exposed as :attr:`slots_consumed`.  :meth:`clone` is independent of
    the cursor: it always returns a fresh replica of the stream — same
    parameters, same seed — rewound to slot 0, regardless of how much
    the parent has consumed (the engines' delay-accounting replay pass
    relies on this).
    """

    def __init__(
        self,
        ports: int,
        fill_block: Callable[[int], np.ndarray],
        respawn: Callable[[], "ChunkedTraffic"],
    ) -> None:
        self.ports = ports
        self._fill_block = fill_block
        self._respawn = respawn
        self._buf: np.ndarray | None = None
        self._pos = 0
        self._consumed = 0

    @property
    def slots_consumed(self) -> int:
        """Slots read so far, via ``chunk()`` and ``__call__`` combined."""
        return self._consumed

    def clone(self) -> "ChunkedTraffic":
        """A fresh replica of this stream, rewound to slot 0.

        Always starts at slot 0 — the parent's cursor position does not
        leak into the clone.
        """
        return self._respawn()

    def chunk(self, count: int) -> np.ndarray:
        """The next ``count`` slots as a ``(count, ports)`` dest matrix."""
        if count < 0:
            raise ValueError("chunk count must be >= 0")
        out = np.empty((count, self.ports), dtype=np.int64)
        filled = 0
        while filled < count:
            if self._buf is None or self._pos >= len(self._buf):
                self._buf = self._fill_block(CHUNK)
                self._pos = 0
            take = min(count - filled, len(self._buf) - self._pos)
            out[filled : filled + take] = self._buf[self._pos : self._pos + take]
            self._pos += take
            filled += take
        self._consumed += count
        return out

    def __call__(self, _slot: int) -> list[tuple[int, int]]:
        """Scalar interface: the next slot's ``(input, output)`` pairs."""
        row = self.chunk(1)[0]
        return [(int(i), int(row[i])) for i in np.flatnonzero(row >= 0)]


class BatchedChunkedTraffic:
    """A seed-axis stack of :class:`ChunkedTraffic` lanes.

    ``chunk(count)`` returns a ``(num_seeds, count, ports)`` destination
    block whose lane ``i`` is byte-for-byte the ``(count, ports)`` block
    lane ``i``'s own stream would have produced — the stack is just the
    per-lane streams read in lockstep, so every lane stays a pure
    function of its own (model parameters, seed) pair and the batched
    switch engine (:func:`repro.switch.engine.run_switch_batched`) can
    assert per-lane results against single-seed runs.

    All lanes must share a port count.  :meth:`clone` rewinds every lane
    to slot 0 (the same contract as :meth:`ChunkedTraffic.clone`).
    """

    def __init__(self, lanes: "list[ChunkedTraffic]") -> None:
        lanes = list(lanes)
        if not lanes:
            raise ValueError("need at least one traffic lane")
        for t in lanes:
            if not isinstance(t, ChunkedTraffic):
                raise TypeError(
                    "every lane must be a ChunkedTraffic stream "
                    "(every repro.switch.traffic model returns one)"
                )
        ports = lanes[0].ports
        if any(t.ports != ports for t in lanes):
            raise ValueError("all traffic lanes must share a port count")
        self.lanes = lanes
        self.ports = ports

    @property
    def num_seeds(self) -> int:
        return len(self.lanes)

    def chunk(self, count: int) -> np.ndarray:
        """The next ``count`` slots as a ``(num_seeds, count, ports)`` block."""
        out = np.empty((len(self.lanes), count, self.ports), dtype=np.int64)
        for s, lane in enumerate(self.lanes):
            out[s] = lane.chunk(count)
        return out

    def clone(self) -> "BatchedChunkedTraffic":
        """A fresh replica with every lane rewound to slot 0."""
        return BatchedChunkedTraffic([lane.clone() for lane in self.lanes])


def batched_traffic(
    factory: Callable[[int], ChunkedTraffic], seeds
) -> BatchedChunkedTraffic:
    """Stack ``factory(seed)`` streams into a :class:`BatchedChunkedTraffic`.

    ``factory`` is any of the traffic models partially applied to its
    non-seed parameters, e.g.
    ``batched_traffic(lambda s: bernoulli_uniform(64, 0.6, seed=s), range(16))``.
    """
    return BatchedChunkedTraffic([factory(int(s)) for s in seeds])


def bernoulli_uniform(ports: int, load: float, seed: int = 0) -> ChunkedTraffic:
    """IID Bernoulli arrivals, uniformly random destinations."""
    if not 0 <= load <= 1:
        raise ValueError("load must be in [0,1]")
    rng = np.random.default_rng(seed)

    def fill(count: int) -> np.ndarray:
        hits = rng.random((count, ports)) < load
        dests = rng.integers(0, ports, size=(count, ports))
        return np.where(hits, dests, -1)

    return ChunkedTraffic(ports, fill, lambda: bernoulli_uniform(ports, load, seed))


def diagonal(ports: int, load: float, seed: int = 0) -> ChunkedTraffic:
    """2/3 of input i's cells to output i, 1/3 to output i+1 (mod N)."""
    if not 0 <= load <= 1:
        raise ValueError("load must be in [0,1]")
    rng = np.random.default_rng(seed)
    own = np.arange(ports, dtype=np.int64)
    nxt = (own + 1) % ports

    def fill(count: int) -> np.ndarray:
        hits = rng.random((count, ports)) < load
        offs = rng.random((count, ports)) < (1.0 / 3.0)
        return np.where(hits, np.where(offs, nxt, own), -1)

    return ChunkedTraffic(ports, fill, lambda: diagonal(ports, load, seed))


def max_feasible_bursty_load(burst_len: float) -> float:
    """The largest sustainable ``load`` for :func:`bursty` bursts.

    The on/off chain turns on with probability
    ``p_on = load / ((1 − load) · burst_len)`` per OFF slot; requested
    loads with ``p_on > 1`` are unreachable (the chain cannot turn on
    more than once per slot), which caps the long-run rate at
    ``burst_len / (burst_len + 1)``.
    """
    return burst_len / (burst_len + 1.0)


def bursty(
    ports: int,
    load: float,
    burst_len: float = 16.0,
    seed: int = 0,
) -> ChunkedTraffic:
    """On/off (two-state Markov) bursty arrivals per input.

    Each input alternates between an ON state — one cell per slot, all
    to a destination fixed for the burst — and an OFF state.  Mean
    burst length is ``burst_len`` slots; OFF lengths are set so the
    long-run arrival rate is ``load``.  Bursts of same-destination
    cells are the standard stress for round-robin schedulers.

    Raises :class:`ValueError` when ``(load, burst_len)`` is
    infeasible: the OFF→ON probability ``load/((1−load)·burst_len)``
    must not exceed 1, so ``load`` is capped at
    :func:`max_feasible_bursty_load` — requesting more used to clamp
    silently and under-deliver (e.g. a measured ~0.67 at load=0.95,
    burst_len=2).
    """
    if not 0 < load < 1:
        raise ValueError("bursty load must be in (0,1)")
    if burst_len < 1:
        raise ValueError("burst_len must be >= 1")
    p_off = 1.0 / burst_len  # ON -> OFF
    # stationary ON fraction = load  =>  p_on chosen accordingly.
    p_on = p_off * load / (1.0 - load)
    if p_on > 1.0:
        raise ValueError(
            f"load={load} is infeasible for burst_len={burst_len}: the "
            f"off->on probability load/((1-load)*burst_len) = {p_on:.4f} "
            f"exceeds 1, so the realized load would silently fall short; "
            f"max feasible load is burst_len/(burst_len+1) = "
            f"{max_feasible_bursty_load(burst_len):.4f}"
        )
    rng = np.random.default_rng(seed)
    state_on = rng.random(ports) < load
    dest = rng.integers(0, ports, size=ports)

    def fill(count: int) -> np.ndarray:
        block = np.full((count, ports), -1, dtype=np.int64)
        for s in range(count):
            block[s, state_on] = dest[state_on]
            u = rng.random(ports)
            turn_on = ~state_on & (u < p_on)
            k = int(turn_on.sum())
            if k:
                dest[turn_on] = rng.integers(0, ports, size=k)
            state_on[state_on & (u < p_off)] = False
            state_on[turn_on] = True
        return block

    return ChunkedTraffic(ports, fill, lambda: bursty(ports, load, burst_len, seed))


def hotspot_output0_rate(ports: int, load: float, hot_fraction: float) -> float:
    """Expected arrival rate into output 0, in cells per slot.

    Each of the ``ports`` inputs contributes ``load · hot_fraction``
    directed cells plus ``load · (1 − hot_fraction) / ports`` from the
    uniform remainder, so the total is
    ``ports·load·hot_fraction + (1 − hot_fraction)·load``.  The
    pattern is inadmissible once this exceeds 1.
    """
    return ports * load * hot_fraction + (1.0 - hot_fraction) * load


def hotspot(
    ports: int, load: float, hot_fraction: float = 0.5, seed: int = 0
) -> ChunkedTraffic:
    """``hot_fraction`` of cells go to output 0, the rest uniform.

    The aggregate rate into output 0 is
    :func:`hotspot_output0_rate`, i.e.
    ``ports·load·hot_fraction + (1 − hot_fraction)·load`` — note the
    ``ports`` factor: *every* input directs ``hot_fraction`` of its
    cells at output 0, so even modest per-input loads saturate it.
    """
    if not 0 <= load <= 1:
        raise ValueError("load must be in [0,1]")
    if not 0 <= hot_fraction <= 1:
        raise ValueError("hot_fraction must be in [0,1]")
    rng = np.random.default_rng(seed)

    def fill(count: int) -> np.ndarray:
        hits = rng.random((count, ports)) < load
        hot = rng.random((count, ports)) < hot_fraction
        dests = rng.integers(0, ports, size=(count, ports))
        return np.where(hits, np.where(hot, 0, dests), -1)

    return ChunkedTraffic(
        ports, fill, lambda: hotspot(ports, load, hot_fraction, seed)
    )
