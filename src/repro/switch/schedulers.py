"""Scheduler adapters: one call per cell slot, returning a matching.

Schedulers under comparison in experiment E8:

* :class:`PimScheduler` — PIM [3];
* :class:`IslipAdapter` — iSLIP [23];
* :class:`GreedyMaximalScheduler` — a random maximal matching per slot
  (the quality Israeli–Itai converges to; ½-MCM worst case);
* :class:`PaperScheduler` — the paper's bipartite (1−1/k)-MCM.  By
  default it uses the truncated-Hopcroft–Karp *reference* (identical
  guarantee and output quality as Theorem 3.8, Lemmas 3.4/3.5) so that
  thousand-slot simulations stay fast; ``distributed=True`` runs the
  actual Section 3.2 protocol per slot (small port counts);
* :class:`MaxSizeScheduler` — exact maximum matching per slot (the
  upper bound on per-slot quality).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.baselines.islip import IslipScheduler
from repro.baselines.pim import pim_schedule_matrix
from repro.core.bipartite_mcm import bipartite_mcm
from repro.graphs.graph import Graph
from repro.matching.hopcroft_karp import hopcroft_karp, hopcroft_karp_truncated


class Scheduler(Protocol):
    """Per-slot scheduling interface."""

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        """Return matched (input, output) pairs for this slot."""
        ...


def _request_matrix(demand: list[set[int]], ports: int) -> np.ndarray:
    """Boolean request matrix from per-input demand sets."""
    req = np.zeros((len(demand), ports), dtype=bool)
    for i, outs in enumerate(demand):
        if outs:
            req[i, sorted(outs)] = True
    return req


def _pairs(mi: np.ndarray, mj: np.ndarray) -> list[tuple[int, int]]:
    """Index arrays -> the list-of-pairs scalar scheduling interface."""
    return [(int(i), int(j)) for i, j in zip(mi, mj)]


#: Below this many backlogged pairs, sequential greedy in plain Python
#: beats the vectorized rounds (numpy call overhead dominates).  Both
#: branches compute the *same* matching — greedy in increasing
#: priority-key order — so the cutoff is purely a speed knob.
_GREEDY_PY_CUTOFF = 512

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_U32 = np.empty(0, dtype=np.uint32)

#: Composite priority keys pack the uint32 priority above the pair's
#: position: ``(u << 31) | pos``.  Keys are unique (positions are) and
#: ordering by key is exactly "priority, then position", so any sort —
#: or a scatter-min — resolves ties identically everywhere.  31
#: position bits keep the key inside int64 for any feasible pair count.
_PRIORITY_POS_BITS = 31


class PriorityTape:
    """Buffered stream of uint32 priorities for random-order greedy.

    Values are drawn from the owning generator in fixed blocks of
    ``BLOCK`` and handed out in order, so the stream is a pure function
    of the seed and of how many values each call consumed — never of
    *who* consumed them.  That is the property the seed-axis batched
    core (:class:`repro.switch.batched.BatchedGreedyCore`) relies on:
    it adopts each scheduler's tape and takes the same per-slot counts
    the single-seed core would, leaving identical generator state.
    """

    BLOCK = 2048

    __slots__ = ("_rng", "_buf", "_pos")

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._buf = _EMPTY_U32
        self._pos = 0

    def take(self, count: int) -> np.ndarray:
        """The next ``count`` priorities (a read-only view, consumed)."""
        avail = self._buf.size - self._pos
        if count > avail:
            parts = [self._buf[self._pos :]]
            while avail < count:
                parts.append(self._rng.integers(
                    0, 1 << 32, size=self.BLOCK, dtype=np.uint32
                ))
                avail += self.BLOCK
            self._buf = np.concatenate(parts)
            self._pos = 0
        out = self._buf[self._pos : self._pos + count]
        self._pos += count
        return out


#: Survivor count below which :func:`_priority_rounds` finishes with a
#: sequential Python tail instead of further vector rounds.
_ROUNDS_PY_TAIL = 128


def _priority_rounds(
    si: np.ndarray,
    sjo: np.ndarray,
    key: np.ndarray,
    aux: np.ndarray,
    num_ids: int,
) -> np.ndarray:
    """Greedy maximal matching in increasing-priority-key order.

    ``si``/``sjo`` index one shared id space of size ``num_ids`` (rows,
    and columns offset past them); ``key`` holds each pair's unique
    int64 composite priority; ``aux`` is an arbitrary per-pair payload.
    A pair wins a round when it carries the minimum key among surviving
    pairs touching its row or column — the standard equivalence between
    priority-greedy and local-minima rounds — resolved with two
    ``np.minimum.at`` scatter passes, no sort.  Once few pairs survive,
    a sequential Python tail is cheaper than further vector rounds;
    survivors only touch ids that are still unmatched (round
    elimination removed every pair adjacent to a winner), so the tail's
    fresh used-table is sound.  Returns the winners' ``aux`` values
    (unordered — a matching is a set).
    """
    parts: list[np.ndarray] = []
    best = np.empty(num_ids, dtype=np.int64)
    used = np.empty(num_ids, dtype=bool)
    big = np.iinfo(np.int64).max
    while si.size > _ROUNDS_PY_TAIL:
        best.fill(big)
        np.minimum.at(best, si, key)
        np.minimum.at(best, sjo, key)
        win = (best.take(si) == key) & (best.take(sjo) == key)
        wi = si[win]
        wjo = sjo[win]
        parts.append(aux[win])
        used.fill(False)
        used[wi] = True
        used[wjo] = True
        keep = ~(used.take(si) | used.take(sjo))
        si = si[keep]
        sjo = sjo[keep]
        key = key[keep]
        aux = aux[keep]
    if si.size:
        order = np.argsort(key)  # unique keys: any sort kind agrees
        ti = si.take(order).tolist()
        tjo = sjo.take(order).tolist()
        ta = aux.take(order).tolist()
        tail_used = bytearray(num_ids)
        tw: list[int] = []
        for a, b, v in zip(ti, tjo, ta):
            if not tail_used[a] and not tail_used[b]:
                tail_used[a] = 1
                tail_used[b] = 1
                tw.append(v)
        parts.append(np.asarray(tw, dtype=aux.dtype))
    if not parts:
        return _EMPTY_I64
    return np.concatenate(parts)


def greedy_maximal_matrix(
    requests: np.ndarray, tape: PriorityTape
) -> tuple[np.ndarray, np.ndarray]:
    """Random-order greedy maximal matching on a boolean request matrix.

    Draws one uint32 priority per backlogged pair from ``tape`` and
    reproduces sequential greedy in increasing (priority, position)
    order.  Small instances run the sequential loop directly; large
    ones run priority-local-minima rounds (:func:`_priority_rounds`) —
    both branches compute the same matching.  Priorities come from a
    buffered :class:`PriorityTape` rather than a per-call
    ``rng.permutation`` so the draw cost amortizes across slots and the
    seed-axis batched core can consume the identical stream per lane.
    """
    num_inputs, num_outputs = requests.shape
    flat = requests.reshape(-1).nonzero()[0]  # row-major (input, output)
    n = flat.size
    u = tape.take(n)
    key = (u.astype(np.int64) << _PRIORITY_POS_BITS) | np.arange(n)
    if n <= _GREEDY_PY_CUTOFF:
        si, sj = np.divmod(flat[np.argsort(key)], num_outputs)
        in_used = bytearray(num_inputs)
        out_used = bytearray(num_outputs)
        mi_l: list[int] = []
        mj_l: list[int] = []
        for i, j in zip(si.tolist(), sj.tolist()):
            if not in_used[i] and not out_used[j]:
                in_used[i] = 1
                out_used[j] = 1
                mi_l.append(i)
                mj_l.append(j)
        return (
            np.asarray(mi_l, dtype=np.int64),
            np.asarray(mj_l, dtype=np.int64),
        )
    si, sj = np.divmod(flat, num_outputs)
    won = _priority_rounds(
        si, sj + num_inputs, key, flat, num_inputs + num_outputs
    )
    return np.divmod(won, num_outputs)


def _demand_graph(demand: list[set[int]], ports: int) -> tuple[Graph, list[int]]:
    """Bipartite demand graph: inputs 0..N-1, outputs N..2N-1."""
    cols = [sorted(outs) for outs in demand]
    rows = np.repeat(np.arange(len(cols)), [len(c) for c in cols])
    flat = np.fromiter(
        (j for c in cols for j in c), dtype=np.int64, count=len(rows)
    )
    edges = np.column_stack([rows, flat + ports])
    return Graph(2 * ports, edges), list(range(ports))


class PimScheduler:
    """PIM with its customary ⌈log₂N⌉+2 iterations."""

    def __init__(self, ports: int, seed: int = 0, iterations: int | None = None):
        self.ports = ports
        self.rng = np.random.default_rng(seed)
        self.iterations = iterations

    def schedule_matrix(
        self, occupancy: np.ndarray, slot: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Schedule directly on a ``(ports, ports)`` occupancy matrix."""
        return pim_schedule_matrix(occupancy > 0, self.rng, self.iterations)

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        return _pairs(*pim_schedule_matrix(
            _request_matrix(demand, self.ports), self.rng, self.iterations
        ))


class IslipAdapter:
    """iSLIP with persistent round-robin pointers."""

    def __init__(self, ports: int, iterations: int = 4):
        self.inner = IslipScheduler(ports, ports, iterations)

    def schedule_matrix(
        self, occupancy: np.ndarray, slot: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Schedule directly on a ``(ports, ports)`` occupancy matrix."""
        return self.inner.schedule_matrix(occupancy > 0)

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        return self.inner.schedule(demand)


class GreedyMaximalScheduler:
    """Random-order maximal matching per slot (½-MCM worst case)."""

    def __init__(self, ports: int, seed: int = 0):
        self.ports = ports
        self.rng = np.random.default_rng(seed)
        self.tape = PriorityTape(self.rng)
        self._req = np.empty((ports, ports), dtype=bool)

    def schedule_matrix(
        self, occupancy: np.ndarray, slot: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Schedule directly on a ``(ports, ports)`` occupancy matrix."""
        np.greater(occupancy, 0, out=self._req)
        return greedy_maximal_matrix(self._req, self.tape)

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        return _pairs(*greedy_maximal_matrix(
            _request_matrix(demand, self.ports), self.tape
        ))


class PaperScheduler:
    """The paper's (1−1/k)-MCM as a switch scheduler.

    ``distributed=True`` runs the real Section 3.2 message-passing
    protocol every slot; the default uses the truncated-HK reference
    with the identical (1−1/k) guarantee (DESIGN.md §6.3).
    """

    def __init__(self, ports: int, k: int = 3, seed: int = 0, distributed: bool = False):
        self.ports = ports
        self.k = k
        self.seed = seed
        self.distributed = distributed
        self._slot_seq = np.random.SeedSequence(seed)

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        g, xs = _demand_graph(demand, self.ports)
        if self.distributed:
            m, _res = bipartite_mcm(
                g,
                self.k,
                xs=xs,
                seed=int(self._slot_seq.spawn(1)[0].generate_state(1)[0]),
            )
        else:
            m = hopcroft_karp_truncated(g, self.k, xs=xs)
        return [(u, v - self.ports) for u, v in m.edges()]


class MaxSizeScheduler:
    """Exact maximum matching per slot (quality upper bound)."""

    def __init__(self, ports: int):
        self.ports = ports

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        g, xs = _demand_graph(demand, self.ports)
        m = hopcroft_karp(g, xs=xs)
        return [(u, v - self.ports) for u, v in m.edges()]


def _weighted_demand_graph(
    weights: list[dict[int, float]], ports: int
) -> Graph:
    """Bipartite demand graph weighted by queue occupancy."""
    edges, ws = [], []
    for i, row in enumerate(weights):
        for j in sorted(row):
            if row[j] > 0:
                edges.append((i, ports + j))
                ws.append(float(row[j]))
    return Graph(2 * ports, np.asarray(edges, dtype=np.int64).reshape(-1, 2), ws)


class WeightedScheduler(Protocol):
    """Schedulers that consume per-VOQ weights (queue lengths)."""

    def schedule_weighted(
        self, weights: list[dict[int, float]], slot: int
    ) -> list[tuple[int, int]]:
        """Return matched pairs given ``weights[i][j]`` = occupancy."""
        ...


class MaxWeightScheduler:
    """Exact max-*weight* matching on queue lengths per slot.

    The classical 100%-throughput scheduler (MWM on occupancies) — the
    weighted side of the paper's story: Section 4's algorithms are the
    distributed approximations of exactly this schedule.
    """

    def __init__(self, ports: int):
        self.ports = ports

    def schedule_weighted(
        self, weights: list[dict[int, float]], slot: int
    ) -> list[tuple[int, int]]:
        from repro.matching.exact_mwm import max_weight_matching

        g = _weighted_demand_graph(weights, self.ports)
        if g.m == 0:
            return []
        m = max_weight_matching(g)
        return [(u, v - self.ports) for u, v in m.edges()]

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        """Unweighted adapter: treat every backlogged VOQ as weight 1."""
        return self.schedule_weighted(
            [{j: 1.0 for j in outs} for outs in demand], slot
        )


class WeightedPaperScheduler:
    """Algorithm 5's (½−ε)-MWM on queue lengths, as a switch scheduler.

    Uses the sequential reference (greedy black box) for speed; the
    guarantee transfers: the scheduled matching always carries at
    least (½−ε) of the maximum total queue weight, the property the
    stability literature needs from approximate MWM schedulers.
    """

    def __init__(self, ports: int, eps: float = 0.1):
        self.ports = ports
        self.eps = eps

    def schedule_weighted(
        self, weights: list[dict[int, float]], slot: int
    ) -> list[tuple[int, int]]:
        from repro.core.weighted_mwm import weighted_mwm_reference

        g = _weighted_demand_graph(weights, self.ports)
        if g.m == 0:
            return []
        m, _ = weighted_mwm_reference(g, eps=self.eps)
        return [(u, v - self.ports) for u, v in m.edges()]

    def schedule(self, demand: list[set[int]], slot: int) -> list[tuple[int, int]]:
        """Unweighted adapter: weight-1 VOQs."""
        return self.schedule_weighted(
            [{j: 1.0 for j in outs} for outs in demand], slot
        )
