#!/usr/bin/env python3
"""Quickstart: a (1−1/k)-approximate matching in a few lines.

Runs the paper's bipartite algorithm (Theorem 3.8) on a random
bipartite graph, compares against the exact Hopcroft–Karp optimum and
the classical Israeli–Itai ½-baseline, and prints the distributed cost
(rounds and message bits) measured by the simulator.
"""

from repro.baselines import israeli_itai_matching
from repro.core import bipartite_mcm
from repro.graphs import bipartite_random
from repro.matching import hopcroft_karp


def main() -> None:
    # A random bipartite graph: 100 + 100 vertices, ~8 edges per node.
    g, xs, ys = bipartite_random(100, 100, 0.08, seed=7)
    print(f"graph: {g.n} vertices, {g.m} edges, max degree {g.max_degree()}")

    # Exact optimum (centralized oracle).
    opt = len(hopcroft_karp(g, xs))
    print(f"maximum matching |M*| = {opt}")

    # The classical baseline: Israeli-Itai maximal matching (1/2-MCM).
    ii, ii_res = israeli_itai_matching(g, seed=1)
    print(
        f"Israeli-Itai:   |M| = {len(ii):3d}  ratio {len(ii)/opt:.3f}  "
        f"({ii_res.rounds} rounds)"
    )

    # The paper's algorithm: (1-1/k)-MCM for k = 2, 3, 4.
    for k in (2, 3, 4):
        m, res = bipartite_mcm(g, k=k, xs=xs, seed=k)
        print(
            f"paper, k={k}:     |M| = {len(m):3d}  ratio {len(m)/opt:.3f}  "
            f"(guarantee {1-1/k:.2f}; {res.rounds} rounds, "
            f"max message {res.max_message_bits} bits)"
        )


if __name__ == "__main__":
    main()
