"""S7 — the million-node scale tier (ISSUE 7).

PR 7 made n=10^6+ a supported regime: compact int32 CSR indices,
streamed chunked generators (no Python edge lists), and a
scipy.sparse kernel tier behind the ``ArrayContext`` selection seam.
This bench measures three things:

* **speedup cells** (under ``"cells"``) — byte-identity asserted per
  cell before any time is reported:

  - ``kopt_mwm`` — the ROADMAP-named batched straggler (1.17x in the
    committed s5 run), re-measured after the vectorized
    order-faithful walk enumeration; the before cell is quoted from
    ``benchmarks/results/s5_weighted.json`` so the lift is auditable.
  - ``luby_kernel_sparse`` — the ``"sparse"`` kernel vs the
    ``"reduceat"`` reference on the same graph/seed (skipped when
    scipy is absent; the tier degrades gracefully).
  - ``luby_int32_tier`` — the compact-dtype CSR vs the same graph
    pinned to int64 via :func:`repro.graphs.graph.forced_index_dtype`.

* **scale curves** (under ``"curves"``) — time + peak-RSS vs n for
  Luby MIS and generic MCM (k=1, ``keep_views=False``) on the array
  backend, up to n=10^6 in the committed run.  Each curve cell runs in
  a **fresh subprocess** so ``ru_maxrss`` is the cell's own peak, not
  the bench harness's high-water mark.

* **the ceiling** (under ``"ceiling"`` / ``"largest_graph"``) —
  Luby MIS probes past 10^6 (committed run: up to n=10^7, avg degree
  8) and the documented "largest graph that fits" numbers: the
  largest *measured* run plus the int32-tier structural cap
  (2m <= 2^31-1, i.e. ~1.07e9 edges before index promotion).

Run as a script for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_s7_scale.py --out s7.json

``--quick`` restricts to the n=240 kopt cell, the n=10^4 kernel/dtype
cells, and one n=10^5 curve point per workload; ``--check`` exits
nonzero if (a) the kopt array leg is below ``--min-speedup`` vs the
generator leg, or (b) any curve cell at n <= ``--rss-gate-n`` peaked
above ``--max-rss-mb`` — the CI fail-if-slower + peak-RSS gate.  The
committed full run lives at ``benchmarks/results/s7_scale.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time
from typing import Any

import numpy as np

from repro.analysis import format_table, print_banner

try:
    from conftest import once
except ImportError:  # script mode: conftest only exists for pytest runs
    once = None

#: The committed-before cell for the kopt straggler, quoted from
#: benchmarks/results/s5_weighted.json at the PR 6 head (c4b02f9) so
#: the before/after pair lives in one artifact.
KOPT_BEFORE = {
    "n": 240,
    "speedup": 1.1732,
    "source": "benchmarks/results/s5_weighted.json (PR 6 head)",
}

#: Average degree for the Luby scale-curve / ceiling random graphs.
CURVE_DEG = 8.0

#: Average degree for the generic-MCM curve.  The depth-2ℓ flood is
#: O(n · d · |ball_2|) = O(n d^3) in records — degree 4 keeps the
#: n=10^6 cell's record universe (~2·10^7 (node, record) pairs) inside
#: a sensible RAM budget while still exercising every scale-tier path.
MCM_DEG = 4.0

#: Structural cap of the compact int32 index tier: indices/eids hold
#: 2m half-edge slots, so promotion to int64 happens past this m.
INT32_EDGE_CAP = (2**31 - 1) // 2


def _rss_mb() -> float:
    """This process's peak RSS in MiB (Linux ru_maxrss is KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


# ---------------------------------------------------------------------------
# curve cells — one fresh subprocess per cell so peak RSS is the cell's own


def _curve_payload(spec: dict[str, Any]) -> dict[str, Any]:
    """Runs *inside the child*: build streamed, run, report time + RSS."""
    from repro.graphs.generators import gnp_random

    n = int(spec["n"])
    seed = int(spec.get("seed", 1))
    deg = MCM_DEG if spec["workload"] == "generic_mcm" else CURVE_DEG
    t0 = time.perf_counter()
    g = gnp_random(n, deg / n, seed=seed)
    build_s = time.perf_counter() - t0

    out: dict[str, Any] = {
        "workload": spec["workload"],
        "family": "gnp",
        "n": g.n,
        "m": g.m,
        "avg_deg": deg,
        "index_dtype": str(np.dtype(g.index_dtype)),
        "build_s": build_s,
    }
    if spec["workload"] == "luby_mis":
        from repro.baselines.luby_mis import luby_mis_array
        from repro.distributed.backends import ArrayBackend

        be = ArrayBackend(g, luby_mis_array, params={"n": g.n}, seed=seed,
                          kernel=spec.get("kernel"))
        be.prepare()
        t0 = time.perf_counter()
        res = be.run()
        out["run_s"] = time.perf_counter() - t0
        out["rounds"] = res.rounds
        out["mis_size"] = sum(1 for v in res.outputs.values() if v)
    elif spec["workload"] == "generic_mcm":
        from repro.core.generic_mcm import generic_mcm

        t0 = time.perf_counter()
        m, stats = generic_mcm(g, k=1, seed=seed, backend="array",
                               keep_views=False)
        out["run_s"] = time.perf_counter() - t0
        out["rounds"] = stats.result.rounds
        out["matching_size"] = len(m)
        out["conflict_nodes"] = sum(stats.conflict_sizes.values())
    else:  # pragma: no cover - spec comes from this module
        raise ValueError(f"unknown curve workload {spec['workload']!r}")
    out["total_s"] = out["build_s"] + out["run_s"]
    out["peak_rss_mb"] = _rss_mb()
    return out


def curve_cell(workload: str, n: int, seed: int = 1,
               subprocess_ok: bool = True) -> dict[str, Any]:
    """One scale-curve point, in a fresh child for honest peak RSS."""
    spec = {"workload": workload, "n": n, "seed": seed}
    if not subprocess_ok:
        cell = _curve_payload(spec)
        cell["rss_isolated"] = False
        return cell
    import repro

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--cell", json.dumps(spec)],
        capture_output=True, text=True, env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"curve cell {spec} failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    cell = json.loads(proc.stdout.splitlines()[-1])
    cell["rss_isolated"] = True
    return cell


# ---------------------------------------------------------------------------
# speedup cells — identity asserted, then best-of-reps timing


def _best_of(fn, reps: int):
    best, result = None, None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, result


def cell_kopt(n: int, reps: int, k: int = 2) -> dict[str, Any]:
    """The s5 straggler cell re-measured (generator vs array leg)."""
    from repro.core.kopt_mwm import kopt_mwm
    from repro.graphs.generators import gnp_random
    from repro.graphs.weights import assign_uniform_weights

    g = assign_uniform_weights(gnp_random(n, 6.0 / n, seed=0), seed=0)
    g.neighbor_sets()  # warm the shared caches for both legs
    t_gen, r_gen = _best_of(lambda: kopt_mwm(g, k=k), reps)
    t_arr, r_arr = _best_of(lambda: kopt_mwm(g, k=k, backend="array"), reps)
    assert r_gen[1] == r_arr[1] and (
        sorted(r_gen[0].edges()) == sorted(r_arr[0].edges())
    ), f"kopt legs diverged at n={n}"
    cell = {
        "workload": "kopt_mwm",
        "family": "gnp",
        "n": g.n,
        "m": g.m,
        "k": k,
        "generator_s": t_gen,
        "array_s": t_arr,
        "speedup": t_gen / t_arr,
        "identical_results": True,
    }
    if n == KOPT_BEFORE["n"]:
        cell["before"] = KOPT_BEFORE
        cell["lift"] = cell["speedup"] / KOPT_BEFORE["speedup"]
    return cell


def cell_kernel(n: int, reps: int, seed: int = 1) -> dict[str, Any] | None:
    """"sparse" kernel vs the "reduceat" reference on Luby MIS."""
    from repro.baselines.luby_mis import luby_mis_array
    from repro.distributed.backends import ArrayBackend
    from repro.distributed.kernels import available_kernels
    from repro.graphs.generators import gnp_random

    if "sparse" not in available_kernels():
        return None
    g = gnp_random(n, CURVE_DEG / n, seed=seed)

    def run(kernel: str):
        be = ArrayBackend(g, luby_mis_array, params={"n": g.n}, seed=seed,
                          kernel=kernel)
        be.prepare()
        return be.run()

    t_ref, r_ref = _best_of(lambda: run("reduceat"), reps)
    t_sp, r_sp = _best_of(lambda: run("sparse"), reps)
    assert r_ref == r_sp, f"kernels diverged at n={n}"
    return {
        "workload": "luby_kernel_sparse",
        "family": "gnp",
        "n": g.n,
        "m": g.m,
        "reduceat_s": t_ref,
        "sparse_s": t_sp,
        "speedup": t_ref / t_sp,
        "identical_results": True,
    }


def cell_dtype(n: int, reps: int, seed: int = 1) -> dict[str, Any]:
    """Compact int32 CSR vs the same graph pinned to int64."""
    from repro.baselines.luby_mis import luby_mis_array
    from repro.distributed.backends import ArrayBackend
    from repro.graphs.generators import gnp_random
    from repro.graphs.graph import forced_index_dtype

    def build(dtype):
        if dtype is None:
            return gnp_random(n, CURVE_DEG / n, seed=seed)
        with forced_index_dtype(dtype):
            return gnp_random(n, CURVE_DEG / n, seed=seed)

    def run(g):
        be = ArrayBackend(g, luby_mis_array, params={"n": g.n}, seed=seed)
        be.prepare()
        return be.run()

    def csr_bytes(g):
        indptr, indices, eids = g.adjacency_arrays()
        return int(indptr.nbytes + indices.nbytes + eids.nbytes)

    g32, g64 = build(None), build(np.int64)
    assert g32.index_dtype == np.int32, "n too large for the compact tier"
    t32, r32 = _best_of(lambda: run(g32), reps)
    t64, r64 = _best_of(lambda: run(g64), reps)
    assert r32 == r64, f"dtype tiers diverged at n={n}"
    return {
        "workload": "luby_int32_tier",
        "family": "gnp",
        "n": g32.n,
        "m": g32.m,
        "int64_s": t64,
        "int32_s": t32,
        "speedup": t64 / t32,
        "int64_csr_bytes": csr_bytes(g64),
        "int32_csr_bytes": csr_bytes(g32),
        "csr_bytes_ratio": csr_bytes(g32) / csr_bytes(g64),
        "identical_results": True,
    }


# ---------------------------------------------------------------------------
# the run matrix


def run_s7(reps: int, quick: bool = False,
           subprocess_ok: bool = True) -> dict[str, Any]:
    if quick:
        cells = [c for c in (
            cell_kopt(240, reps),
            cell_kernel(10_000, reps),
            cell_dtype(10_000, reps),
        ) if c is not None]
        curves = {
            "luby_mis": [curve_cell("luby_mis", 100_000,
                                    subprocess_ok=subprocess_ok)],
            "generic_mcm": [curve_cell("generic_mcm", 100_000,
                                       subprocess_ok=subprocess_ok)],
        }
        return {"quick": True, "cells": cells, "curves": curves,
                "ceiling": [], "largest_graph": None}

    cells = [c for c in (
        cell_kopt(240, reps),
        cell_kopt(2000, max(1, reps - 1)),
        cell_kernel(100_000, reps),
        cell_dtype(100_000, reps),
    ) if c is not None]
    curves = {
        "luby_mis": [
            curve_cell("luby_mis", n, subprocess_ok=subprocess_ok)
            for n in (10_000, 100_000, 300_000, 1_000_000)
        ],
        "generic_mcm": [
            curve_cell("generic_mcm", n, subprocess_ok=subprocess_ok)
            for n in (10_000, 100_000, 300_000, 1_000_000)
        ],
    }
    ceiling = [
        curve_cell("luby_mis", n, subprocess_ok=subprocess_ok)
        for n in (3_000_000, 10_000_000)
    ]
    largest = ceiling[-1]
    largest_graph = {
        "measured": {
            "workload": largest["workload"],
            "n": largest["n"],
            "m": largest["m"],
            "index_dtype": largest["index_dtype"],
            "total_s": largest["total_s"],
            "peak_rss_mb": largest["peak_rss_mb"],
        },
        "int32_tier_edge_cap": INT32_EDGE_CAP,
        "note": "int32 indices/eids hold 2m half-edges, so the compact "
                "tier promotes to int64 past ~1.07e9 edges; the measured "
                "ceiling above is time-bounded, not memory-bounded "
                "(peak RSS well under this host's RAM).",
    }
    return {"quick": False, "cells": cells, "curves": curves,
            "ceiling": ceiling, "largest_graph": largest_graph}


def kopt_speedup(data: dict[str, Any]) -> float:
    """Array-vs-generator speedup of the kopt n=240 gate cell."""
    for c in data["cells"]:
        if c["workload"] == "kopt_mwm" and c["n"] == KOPT_BEFORE["n"]:
            return c["speedup"]
    raise LookupError("kopt n=240 gate cell not in this run")


def rss_violations(data: dict[str, Any], gate_n: int,
                   max_rss_mb: float) -> list[str]:
    """Curve cells at n <= gate_n whose peak RSS broke the ceiling."""
    bad = []
    for cells in data["curves"].values():
        for c in cells:
            if c["n"] <= gate_n and c["peak_rss_mb"] > max_rss_mb:
                bad.append(
                    f"{c['workload']} n={c['n']}: "
                    f"{c['peak_rss_mb']:.0f} MiB > {max_rss_mb:.0f} MiB"
                )
    return bad


def show(data: dict[str, Any]) -> None:
    print_banner(
        "S7 — the million-node scale tier",
        "identity asserted per speedup cell; curves are array-backend only",
    )
    rows = []
    for c in data["cells"]:
        before = c.get("before", {}).get("speedup")
        rows.append([
            c["workload"], c["n"], c["m"],
            before if before is not None else "-",
            c["speedup"],
        ])
    print(format_table(
        ["cell", "n", "m", "before x", "speedup"], rows))
    for name, cells in data["curves"].items():
        deg = cells[0]["avg_deg"] if cells else CURVE_DEG
        print(f"\n{name} scale curve (array backend, gnp deg {deg}):")
        print(format_table(
            ["n", "m", "dtype", "build s", "run s", "total s", "peak MiB"],
            [[c["n"], c["m"], c["index_dtype"], c["build_s"], c["run_s"],
              c["total_s"], c["peak_rss_mb"]] for c in cells],
        ))
    if data["ceiling"]:
        print("\nceiling probes (Luby MIS past 10^6):")
        print(format_table(
            ["n", "m", "dtype", "total s", "peak MiB"],
            [[c["n"], c["m"], c["index_dtype"], c["total_s"],
              c["peak_rss_mb"]] for c in data["ceiling"]],
        ))
    lg = data.get("largest_graph")
    if lg:
        meas = lg["measured"]
        print(f"\nlargest graph measured: n={meas['n']:,} m={meas['m']:,} "
              f"({meas['index_dtype']}) in {meas['total_s']:.1f}s, "
              f"peak {meas['peak_rss_mb']:.0f} MiB; int32 tier caps at "
              f"m={lg['int32_tier_edge_cap']:,} edges")
    kc = next(c for c in data["cells"] if c["workload"] == "kopt_mwm")
    if "lift" in kc:
        print(f"kopt straggler: {kc['before']['speedup']:.2f}x -> "
              f"{kc['speedup']:.2f}x ({kc['lift']:.1f}x lift)")


def test_scale_smoke(benchmark, report):
    # in-process (no subprocess) so the pytest run stays hermetic; RSS
    # is then the harness high-water mark, so the gate is --check-only.
    data = once(benchmark, lambda: run_s7(reps=1, quick=True,
                                          subprocess_ok=False))
    report(show, data)
    for c in data["cells"]:
        assert c["identical_results"]
    assert kopt_speedup(data) >= 1.0, data
    for cells in data["curves"].values():
        for c in cells:
            assert c["run_s"] > 0 and c["m"] > 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cell", type=str, default=None, help=argparse.SUPPRESS)
    ap.add_argument("--reps", type=int, default=None,
                    help="best-of reps per speedup leg (default: 2, or 1 "
                         "with --quick)")
    ap.add_argument("--quick", action="store_true",
                    help="kopt n=240 + n=10^4 kernel/dtype cells + one "
                         "n=10^5 curve point per workload")
    ap.add_argument("--check", action="store_true",
                    help="exit 2 if the kopt array leg is below "
                         "--min-speedup or a gated curve cell broke the "
                         "peak-RSS ceiling")
    ap.add_argument("--min-speedup", type=float, default=1.0,
                    help="kopt gate threshold (default 1.0: fail if the "
                         "array leg is slower than the generator leg)")
    ap.add_argument("--max-rss-mb", type=float, default=1536.0,
                    help="peak-RSS ceiling for gated curve cells "
                         "(default 1536 MiB)")
    ap.add_argument("--rss-gate-n", type=int, default=200_000,
                    help="gate only curve cells with n <= this (default "
                         "2e5; the 10^6+ cells are budgeted by RAM, not "
                         "the CI ceiling)")
    ap.add_argument("--out", type=str, default=None,
                    help="write the JSON report here")
    args = ap.parse_args(argv)
    if args.cell:  # child mode: one curve cell, JSON on stdout
        print(json.dumps(_curve_payload(json.loads(args.cell))))
        return 0
    reps = args.reps if args.reps is not None else (1 if args.quick else 2)
    data = run_s7(reps, quick=args.quick)
    show(data)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(data, fh, indent=2)
        print(f"\nwrote {args.out}")
    if args.check:
        failures = []
        try:
            speedup = kopt_speedup(data)
            if speedup < args.min_speedup:
                failures.append(
                    f"kopt array leg below {args.min_speedup:.2f}x "
                    f"({speedup:.2f}x)")
        except LookupError as e:
            failures.append(str(e))
        failures.extend(rss_violations(data, args.rss_gate_n,
                                       args.max_rss_mb))
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 2
        print(f"check ok: kopt gate {kopt_speedup(data):.2f}x, "
              f"peak RSS within {args.max_rss_mb:.0f} MiB on gated cells")
    return 0


if __name__ == "__main__":
    sys.exit(main())
