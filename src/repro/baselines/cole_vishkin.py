"""Deterministic symmetry breaking on rings and rooted trees.

The paper closes with the long-standing open question: *"can maximal
matching and independent set be computed deterministically in O(log n)
time on general graphs?"*  On rings and rooted trees the answer has
long been yes — in O(log* n) — via Cole–Vishkin color reduction.  This
module implements that special case as a node program, both for its
own sake (a deterministic counterpoint to the randomized algorithms in
this repository) and as the standard technique the open question is
measured against.

Pipeline:

1. every node starts with its unique ID as a color (O(log n) bits);
2. **Cole–Vishkin step**: a node looks at its predecessor's color
   (ring) / parent's color (tree), finds the lowest bit position i
   where the two colors differ, and re-colors itself ``2i + bit_i`` —
   one step shrinks c-bit colors to ~(log₂ c + 1) bits, so O(log* n)
   steps reach a constant palette (≤ 6 colors);
3. **palette reduction 6 → 3**: for each color c ∈ {3, 4, 5} in turn,
   nodes of color c recolor to the smallest color absent from their
   neighborhood (a ring/tree neighborhood has ≤ 2 relevant neighbors
   in the oriented sense, so 3 colors always suffice);
4. **maximal matching from the coloring**: for each ordered color pair
   processed sequentially, unmatched nodes of the smaller color
   propose along their oriented edge; the (unique-color) endpoint
   accepts if still free.  Constantly many color rounds ⟹ the whole
   pipeline is deterministic O(log* n + C²) rounds.

Two executable forms (ISSUE 4): :func:`ring_color_program` /
:func:`ring_matching_program` are the generator specs,
:func:`ring_color_array` / :func:`ring_matching_array` the vectorized
array twins; ``ring_coloring(..., backend=...)`` and
``ring_maximal_matching(..., backend=...)`` pick, and both produce
byte-identical ``RunResult``s.  Being deterministic, these are the
simplest array ports in the tree — no RNG replay at all (see the
porting guide in ARCHITECTURE.md).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.distributed.backends import ArrayContext, int_payload_bits, run_program
from repro.distributed.network import Network, RunResult
from repro.distributed.node import Node
from repro.graphs.graph import Graph
from repro.matching.matching import Matching
from repro.baselines.israeli_itai import matching_from_mates

_PALETTE = 6


def _cv_step(my_color: int, other_color: int) -> int:
    """One Cole–Vishkin re-coloring against the oriented neighbor."""
    if my_color == other_color:
        raise ValueError("proper coloring violated")
    diff = my_color ^ other_color
    i = (diff & -diff).bit_length() - 1
    return 2 * i + ((my_color >> i) & 1)


def cv_steps_needed(n: int) -> int:
    """Enough CV iterations to reach the ≤6-color regime from n ids.

    One step maps colors of b bits to values ≤ 2(b−1)+1, i.e. to
    ``(2b−1).bit_length()`` bits; iterating from log₂ n reaches 3 bits
    (colors < 8, whose CV image lies in {0..5}) in O(log* n) steps.
    """
    steps = 0
    bits = max(2, n).bit_length()
    while bits > 3:
        bits = (2 * (bits - 1) + 1).bit_length()
        steps += 1
    return steps + 2  # land in {0..5} and stabilize


def ring_color_program(
    node: Node, n: int, steps: int
) -> Generator[None, None, int]:
    """3-color an oriented ring (successor = larger-id neighbor wrap).

    The ring must be the cycle 0-1-…-(n-1)-0; the orientation is
    "successor = (id+1) mod n", known locally from ids.
    """
    succ = (node.id + 1) % n
    pred = (node.id - 1) % n
    color = node.id
    # Phase 1: CV reduction against the predecessor's color.
    for _ in range(steps):
        node.send(succ, color)
        yield
        pred_color = next(p for s, p in node.inbox if s == pred)
        color = _cv_step(color, pred_color)
    # Phase 2: shrink palette {0..5} -> {0,1,2}; colors 3,4,5 in turn.
    for c in (3, 4, 5):
        node.send(succ, color)
        node.send(pred, color)
        yield
        nbr_colors = {p for _s, p in node.inbox}
        if color == c:
            color = min({0, 1, 2} - nbr_colors)
    node.finish(color)
    return color


def _lsb_index(x: np.ndarray) -> np.ndarray:
    """Index of the lowest set bit of each positive ``int64``."""
    lsb = x & -x
    idx = np.zeros(x.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        big = lsb >= (np.int64(1) << np.int64(shift))
        idx[big] += shift
        lsb[big] >>= shift
    return idx


def _ring_color_phases(ctx: ArrayContext, n: int, steps: int) -> np.ndarray:
    """The CV + palette resumes shared by both ring array programs.

    Runs ``steps + 3`` yielding resumes (``steps`` CV recolorings, then
    the palette passes c = 3, 4, 5) and returns the final 3-coloring.
    The caller owns whatever resume *follows* — a bare returning resume
    for :func:`ring_color_array`, the first proposal resume for
    :func:`ring_matching_array` — matching the generator programs,
    where the last palette read shares its resume with what comes next.
    """
    size = ctx.n
    ids = np.arange(size, dtype=np.int64)
    succ = np.roll(ids, -1)  # succ[v] = (v + 1) % n
    pred = np.roll(ids, 1)
    color = ids.copy()
    ones = np.ones(size, dtype=np.int64)
    # Phase 1: CV reduction against the predecessor's color.  Iteration
    # k's send is accounted in resume k; its read + recoloring happen
    # at the top of resume k+1, i.e. before the next send — exactly the
    # state the next account sees.
    for _ in range(steps):
        ctx.begin_step(size)
        ctx.account_groups(int_payload_bits(color), ones)
        ctx.end_step(True)
        pred_color = color[pred]
        if (color == pred_color).any():
            raise ValueError("proper coloring violated")
        diff = color ^ pred_color
        i = _lsb_index(diff)
        color = 2 * i + ((color >> i) & 1)
    # Phase 2: shrink palette {0..5} -> {0,1,2}; colors 3,4,5 in turn.
    # Each pass sends the current color both ways (two singleton groups
    # per node, sized once each, as the generator queues them).
    for c in (3, 4, 5):
        ctx.begin_step(size)
        ctx.account_groups(
            np.repeat(int_payload_bits(color), 2),
            np.ones(2 * size, dtype=np.int64),
        )
        ctx.end_step(True)
        nbr1, nbr2 = color[succ], color[pred]
        smallest_free = np.where(
            (nbr1 != 0) & (nbr2 != 0),
            0,
            np.where((nbr1 != 1) & (nbr2 != 1), 1, 2),
        )
        color = np.where(color == c, smallest_free, color)
    return color


def ring_color_array(ctx: ArrayContext, n: int, steps: int) -> list[int]:
    """Array program twin of :func:`ring_color_program`.

    Entirely deterministic — no RNG replay at all — so the whole
    pipeline is a handful of ``np.roll`` gathers and bit tricks per
    resume.  The final resume performs the last palette read and
    returns without yielding, costing zero rounds, as the generator
    program does.
    """
    color = _ring_color_phases(ctx, n, steps)
    ctx.begin_step(ctx.n)  # final resume: every program returns
    return color.tolist()


def ring_coloring(
    g: Graph, max_rounds: int = 10_000, backend: str = "generator"
) -> tuple[dict[int, int], RunResult]:
    """Deterministic 3-coloring of the canonical ring 0-1-…-(n-1)-0.

    ``backend`` selects the execution engine (``"generator"`` or
    ``"array"``); both yield byte-identical results.
    """
    n = g.n
    if n < 3:
        raise ValueError("ring needs n >= 3")
    for v in range(n):
        if sorted(g.neighbors(v)) != sorted({(v - 1) % n, (v + 1) % n}):
            raise ValueError("graph is not the canonical ring")
    res = run_program(
        g,
        backend=backend,
        generator_program=ring_color_program,
        array_program=ring_color_array,
        params={"n": n, "steps": cv_steps_needed(n)},
        max_rounds=max_rounds,
    )
    return dict(res.outputs), res


def ring_matching_program(
    node: Node, n: int, steps: int
) -> Generator[None, None, int]:
    """Deterministic maximal matching on the canonical ring.

    After 3-coloring, process color classes c = 0, 1, 2 sequentially:
    a free node of color c proposes to its successor; a free successor
    accepts (it can receive at most one proposal — only its
    predecessor proposes toward it, and adjacent nodes never share a
    color).  Maximality: a free node u with free successor v would
    have proposed in u's color pass and v, being free throughout,
    would have accepted — contradiction, so no two adjacent free nodes
    survive the three passes.
    """
    succ = (node.id + 1) % n
    pred = (node.id - 1) % n
    color = yield from ring_color_program(node, n, steps)
    mate = -1
    for c in (0, 1, 2):
        if mate == -1 and color == c:
            node.send(succ, "p")
        yield
        if mate == -1 and any(s == pred and p == "p" for s, p in node.inbox):
            mate = pred
            node.send(pred, "a")
        yield
        if mate == -1 and color == c:
            if any(s == succ and p == "a" for s, p in node.inbox):
                mate = succ
        yield  # keep the pass at a fixed 3 rounds (lockstep clarity)
    node.finish(mate)
    return mate


def ring_matching_array(ctx: ArrayContext, n: int, steps: int) -> list[int]:
    """Array program twin of :func:`ring_matching_program`.

    After the shared coloring resumes, each color pass c ∈ {0, 1, 2} is
    three vectorized resumes: free c-colored nodes propose to their
    successor (8-bit tag), free successors accept toward their
    predecessor, and proposers read the acknowledgement.  Adjacent
    nodes never share a color, so a node cannot both propose and
    accept in one pass — the masks below rely on that invariant.
    """
    size = ctx.n
    ids = np.arange(size, dtype=np.int64)
    succ = np.roll(ids, -1)
    pred = np.roll(ids, 1)
    color = _ring_color_phases(ctx, n, steps)
    mate = np.full(size, -1, dtype=np.int64)
    eight = np.int64(8)
    for c in (0, 1, 2):
        # Resume A (shares the first pass's resume with the last palette
        # read): free nodes of color c propose to their successor.
        ctx.begin_step(size)
        prop = (mate == -1) & (color == c)
        k = int(prop.sum())
        ctx.account_groups(np.full(k, eight), np.ones(k, dtype=np.int64))
        ctx.end_step(True)
        # Resume B: a free node whose predecessor proposed accepts it.
        ctx.begin_step(size)
        acc = (mate == -1) & prop[pred]
        mate = np.where(acc, pred, mate)
        k = int(acc.sum())
        ctx.account_groups(np.full(k, eight), np.ones(k, dtype=np.int64))
        ctx.end_step(True)
        # Resume C: proposers learn acceptance; no messages are sent
        # (the pass stays a fixed 3 rounds for lockstep clarity).
        ctx.begin_step(size)
        mate = np.where(prop & acc[succ], succ, mate)
        ctx.end_step(True)
    ctx.begin_step(size)  # final resume: every program returns
    return mate.tolist()


def ring_maximal_matching(
    g: Graph, max_rounds: int = 10_000, backend: str = "generator"
) -> tuple[Matching, RunResult]:
    """Deterministic maximal matching on the canonical ring, O(log* n).

    ``backend`` selects the execution engine (``"generator"`` or
    ``"array"``); both yield byte-identical results.
    """
    n = g.n
    if n < 3:
        raise ValueError("ring needs n >= 3")
    res = run_program(
        g,
        backend=backend,
        generator_program=ring_matching_program,
        array_program=ring_matching_array,
        params={"n": n, "steps": cv_steps_needed(n)},
        max_rounds=max_rounds,
    )
    return matching_from_mates(g, res.outputs), res
