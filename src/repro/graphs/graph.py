"""Undirected graph data structure used throughout the reproduction.

The paper (Section 2) works with an undirected graph ``G = (V, E)``,
optionally weighted by ``w : E -> R+``.  Vertices are integers
``0 .. n-1`` and edges carry stable integer ids ``0 .. m-1`` so that
algorithms can index per-edge state with plain lists (this matters for
Algorithm 3, whose per-node counters ``c_v[i]`` are indexed by incident
edge).

Topology is immutable after construction; weights may be replaced
wholesale via :meth:`Graph.with_weights` (used by Algorithm 5, which
re-weights the same topology each iteration with the derived weight
function ``w_M``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class Graph:
    """An undirected graph with integer vertices and stable edge ids.

    Parameters
    ----------
    n:
        Number of vertices; vertices are ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops and duplicate edges
        are rejected.
    weights:
        Optional sequence of positive edge weights, aligned with
        ``edges``.  ``None`` means the graph is unweighted (all queries
        through :meth:`weight` return 1.0).

    Notes
    -----
    Adjacency is stored as, per vertex, a list of ``(neighbor,
    edge_id)`` pairs in insertion order.  The *position* of an entry in
    that list is the "port number" of the edge at that vertex — the
    distributed model in Section 2 lets a node distinguish its incident
    edges, and Algorithm 3 indexes its counter array by port.
    """

    __slots__ = ("n", "m", "_edges", "_adj", "_eid", "_weights")

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]] = (),
        weights: Sequence[float] | None = None,
    ) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be nonnegative, got {n}")
        self.n = n
        self._edges: list[tuple[int, int]] = []
        self._adj: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        self._eid: dict[tuple[int, int], int] = {}
        for u, v in edges:
            self._add_edge(u, v)
        self.m = len(self._edges)
        if weights is not None:
            weights = list(weights)
            if len(weights) != self.m:
                raise ValueError(
                    f"{len(weights)} weights for {self.m} edges"
                )
            for eid, w in enumerate(weights):
                if w <= 0:
                    u, v = self._edges[eid]
                    raise ValueError(
                        f"edge ({u},{v}) has non-positive weight {w}; "
                        "the paper assumes w : E -> R+"
                    )
            self._weights: list[float] | None = weights
        else:
            self._weights = None

    def _add_edge(self, u: int, v: int) -> None:
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u},{v}) out of range for n={self.n}")
        if u == v:
            raise ValueError(f"self-loop at vertex {u}")
        key = (u, v) if u < v else (v, u)
        if key in self._eid:
            raise ValueError(f"duplicate edge ({u},{v})")
        eid = len(self._edges)
        self._eid[key] = eid
        self._edges.append(key)
        self._adj[u].append((v, eid))
        self._adj[v].append((u, eid))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def weighted(self) -> bool:
        """Whether explicit weights were supplied."""
        return self._weights is not None

    def vertices(self) -> range:
        """All vertices as a range."""
        return range(self.n)

    def edges(self) -> list[tuple[int, int]]:
        """All edges as ``(u, v)`` with ``u < v``, indexed by edge id."""
        return list(self._edges)

    def edge_endpoints(self, eid: int) -> tuple[int, int]:
        """Endpoints ``(u, v)`` with ``u < v`` of edge ``eid``."""
        return self._edges[eid]

    def edge_id(self, u: int, v: int) -> int:
        """Edge id of ``(u, v)``; raises ``KeyError`` if absent."""
        return self._eid[(u, v) if u < v else (v, u)]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` is an edge."""
        return ((u, v) if u < v else (v, u)) in self._eid

    def neighbors(self, v: int) -> list[int]:
        """Neighbors of ``v`` in port order."""
        return [u for u, _ in self._adj[v]]

    def incident(self, v: int) -> list[tuple[int, int]]:
        """``(neighbor, edge_id)`` pairs of ``v`` in port order."""
        return list(self._adj[v])

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return len(self._adj[v])

    def max_degree(self) -> int:
        """Maximum degree Δ (0 on the empty graph)."""
        return max((len(a) for a in self._adj), default=0)

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)`` (1.0 in unweighted graphs)."""
        eid = self.edge_id(u, v)
        return 1.0 if self._weights is None else self._weights[eid]

    def edge_weight(self, eid: int) -> float:
        """Weight of edge ``eid`` (1.0 in unweighted graphs)."""
        return 1.0 if self._weights is None else self._weights[eid]

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        if self._weights is None:
            return float(self.m)
        return float(sum(self._weights))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = "weighted " if self.weighted else ""
        return f"Graph({tag}n={self.n}, m={self.m})"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def bipartition(self) -> tuple[list[int], list[int]] | None:
        """2-color the graph if bipartite.

        Returns ``(X, Y)`` with every edge crossing the sides, or
        ``None`` when the graph contains an odd cycle.  Isolated
        vertices are placed on the X side.
        """
        color = [-1] * self.n
        for s in range(self.n):
            if color[s] != -1:
                continue
            color[s] = 0
            stack = [s]
            while stack:
                v = stack.pop()
                for u, _ in self._adj[v]:
                    if color[u] == -1:
                        color[u] = 1 - color[v]
                        stack.append(u)
                    elif color[u] == color[v]:
                        return None
        xs = [v for v in range(self.n) if color[v] == 0]
        ys = [v for v in range(self.n) if color[v] == 1]
        return xs, ys

    def is_bipartite(self) -> bool:
        """Whether the graph is bipartite."""
        return self.bipartition() is not None

    def connected_components(self) -> list[list[int]]:
        """Connected components, each a sorted vertex list."""
        seen = [False] * self.n
        comps: list[list[int]] = []
        for s in range(self.n):
            if seen[s]:
                continue
            seen[s] = True
            comp = [s]
            stack = [s]
            while stack:
                v = stack.pop()
                for u, _ in self._adj[v]:
                    if not seen[u]:
                        seen[u] = True
                        comp.append(u)
                        stack.append(u)
            comp.sort()
            comps.append(comp)
        return comps

    def subgraph(self, keep_edges: Iterable[int]) -> "Graph":
        """Spanning subgraph with the given edge ids (all vertices kept).

        Edge ids are *renumbered* in the subgraph; weights follow their
        edges.
        """
        eids = sorted(set(keep_edges))
        edges = [self._edges[e] for e in eids]
        weights = None
        if self._weights is not None:
            weights = [self._weights[e] for e in eids]
        return Graph(self.n, edges, weights)

    def with_weights(self, weights: Sequence[float]) -> "Graph":
        """Same topology, new weights (used for the derived w_M graph)."""
        return Graph(self.n, list(self._edges), weights)

    def unweighted(self) -> "Graph":
        """Same topology without weights."""
        return Graph(self.n, list(self._edges))

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------

    def edge_ids(self) -> range:
        """All edge ids as a range."""
        return range(self.m)

    def iter_weighted_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(u, v, w)`` for every edge."""
        for eid, (u, v) in enumerate(self._edges):
            w = 1.0 if self._weights is None else self._weights[eid]
            yield u, v, w
