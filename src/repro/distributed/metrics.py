"""Run metrics collected by the simulator.

These are the quantities the paper's theorems bound:

* ``rounds`` — time complexity (Thm 3.1: O(ε⁻³ log n); Thm 3.8:
  O(k³ log Δ + k² log n); Thm 3.11: O(2^{2k} k⁴ log k · log n);
  Thm 4.5: O(log ε⁻¹ · log n));
* ``max_message_bits`` — message complexity (O(|V|+|E|) / O(log Δ) /
  O(log n) respectively);
* ``total_messages`` / ``total_bits`` — aggregate communication, used
  by the scaling analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class LcaProbeStats:
    """Exploration cost of LCA point queries (:mod:`repro.lca`).

    Where :class:`RunResult` accounts a *global* distributed run, this
    accounts the local-computation side: what one ``mate_of`` /
    ``edge_in_matching`` query (or an aggregate of many) actually
    touched.  The LCA theorems (Alon–Rubinfeld–Vardi, Reingold–Vardi;
    see PAPERS.md) bound exactly these quantities — probes polylog in
    ``n`` per query — so the serving benchmark reports them next to
    the wall clock.

    * ``queries`` — queries aggregated into this record;
    * ``edges_probed`` — edge-membership subproblems resolved (DFS
      frames opened; memo/cache hits are *not* re-counted);
    * ``adjacency_scanned`` — CSR half-edge slots examined while
      listing lower-rank dependencies (the "explored neighborhood
      size"; every probed edge beyond the query root was discovered
      through one of these slots, so
      ``edges_probed <= adjacency_scanned + 1`` per query — pinned by
      the property net);
    * ``max_depth`` — deepest dependency chain followed (recursion
      depth of the equivalent recursive resolver);
    * ``cache_hits`` — resolutions served by a cache (the service's
      vertex LRU or its flat edge-state index) instead of exploration.
    """

    queries: int = 0
    edges_probed: int = 0
    adjacency_scanned: int = 0
    max_depth: int = 0
    cache_hits: int = 0

    @property
    def mean_probes(self) -> float:
        """Edges probed per query (0.0 before any query)."""
        return self.edges_probed / self.queries if self.queries else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of resolutions served by cache (0.0 when idle)."""
        looked = self.cache_hits + self.edges_probed
        return self.cache_hits / looked if looked else 0.0

    def merge(self, other: "LcaProbeStats") -> "LcaProbeStats":
        """Aggregate composition: totals add, depth takes the max."""
        return LcaProbeStats(
            queries=self.queries + other.queries,
            edges_probed=self.edges_probed + other.edges_probed,
            adjacency_scanned=self.adjacency_scanned + other.adjacency_scanned,
            max_depth=max(self.max_depth, other.max_depth),
            cache_hits=self.cache_hits + other.cache_hits,
        )

    def add(self, other: "LcaProbeStats") -> None:
        """In-place :meth:`merge` (the hot accumulation path)."""
        self.queries += other.queries
        self.edges_probed += other.edges_probed
        self.adjacency_scanned += other.adjacency_scanned
        self.max_depth = max(self.max_depth, other.max_depth)
        self.cache_hits += other.cache_hits


@dataclass
class RunResult:
    """Outcome of one :meth:`repro.distributed.Network.run` call."""

    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    outputs: dict[int, Any] = field(default_factory=dict)
    #: extra rounds charged analytically (e.g. Lemma 3.3's O(ℓ) routing
    #: per conflict-graph MIS round in Algorithm 1's emulation).
    charged_rounds: int = 0
    #: fault accounting (repro.distributed.faults) — zero on fault-free
    #: runs.  ``total_messages``/``total_bits`` count *attempted* sends
    #: (transmission cost is paid whether or not delivery succeeds);
    #: dropped/delayed deliveries are tallied here on top.
    messages_dropped: int = 0
    messages_delayed: int = 0
    nodes_crashed: int = 0
    links_failed: int = 0

    @property
    def total_rounds(self) -> int:
        """Simulated plus analytically charged rounds."""
        return self.rounds + self.charged_rounds

    def merge(self, other: "RunResult") -> "RunResult":
        """Sequential composition: totals add, outputs overwrite."""
        merged = RunResult(
            rounds=self.rounds + other.rounds,
            total_messages=self.total_messages + other.total_messages,
            total_bits=self.total_bits + other.total_bits,
            max_message_bits=max(self.max_message_bits, other.max_message_bits),
            charged_rounds=self.charged_rounds + other.charged_rounds,
            messages_dropped=self.messages_dropped + other.messages_dropped,
            messages_delayed=self.messages_delayed + other.messages_delayed,
            nodes_crashed=self.nodes_crashed + other.nodes_crashed,
            links_failed=self.links_failed + other.links_failed,
        )
        merged.outputs = {**self.outputs, **other.outputs}
        return merged
