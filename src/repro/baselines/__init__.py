"""Prior-work algorithms implemented for comparison.

The paper positions its results against these (Section 1, "a brief
history of distributed matching"):

* Israeli–Itai [15] — randomized maximal matching (½-MCM) in O(log n);
* Luby [20] / Alon–Babai–Itai [1] — distributed MIS, the subroutine of
  Algorithm 1;
* Lotker–Patt-Shamir–Rosén [18] — (¼−ε)-MWM, the black box consumed by
  Algorithm 5;
* Hoepman [11] (after Preis [25]) — deterministic ½-MWM via locally
  heaviest edges;
* PIM [3] and iSLIP [23] — the switch schedulers descended from [15].
"""

from repro.baselines.israeli_itai import (
    israeli_itai_matching,
    israeli_itai_matching_batched,
    israeli_itai_program,
)
from repro.baselines.luby_mis import luby_mis, luby_mis_batched, luby_mis_program
from repro.baselines.lps_mwm import lps_mwm, lps_mwm_batched
from repro.baselines.lps_interleaved import lps_interleaved_mwm
from repro.baselines.hoepman import hoepman_mwm, hoepman_program
from repro.baselines.pim import pim_matching
from repro.baselines.islip import IslipScheduler
from repro.baselines.cole_vishkin import (
    ring_coloring,
    ring_maximal_matching,
)

__all__ = [
    "ring_coloring",
    "ring_maximal_matching",
    "israeli_itai_matching",
    "israeli_itai_matching_batched",
    "israeli_itai_program",
    "luby_mis",
    "luby_mis_batched",
    "luby_mis_program",
    "lps_mwm_batched",
    "lps_mwm",
    "lps_interleaved_mwm",
    "hoepman_mwm",
    "hoepman_program",
    "pim_matching",
    "IslipScheduler",
]
