"""S10 — the fault-injection seam (ISSUE 10).

PR 10 threads a seeded :class:`~repro.distributed.faults.FaultPlan`
through the delivery seam of every engine.  This bench prices the
seam and charts honest degradation:

* **overhead cells** (under ``"cells"``) — n=2000 Luby on the
  generator engine, outputs asserted identical before any time is
  reported:

  - ``fault_seam_noop`` — the CI gate: passing ``FaultPlan()``
    (loss=0, no events) must cost <5% over ``faults=None``.  An
    inactive plan binds to ``None``, so the fault-free hot path stays
    branch-free — this cell pins that contract.
  - ``fault_seam_active`` — informational: an *active* plan at
    negligible loss (``2^-64``, drops essentially never) pays for the
    real per-round delivery filtering (one vectorized loss hash over
    the round's messages).

  Timing is interleaved best-of-k (the variants alternate within each
  repetition) so machine noise cancels instead of biasing one side.

* **degradation curves** (``"loss_curve"`` / ``"crash_curve"``) —
  Israeli–Itai under a loss ladder and a crash ladder: surviving
  matching size vs the fault-free run, stall fraction (lost one-shot
  announcements can honestly stall the protocol — stalls are counted,
  not hidden), and the degradation oracle's verdict on every completed
  run (``certify_degraded_matching``; a single violation raises).

Run as a script for the JSON artifact::

    PYTHONPATH=src python benchmarks/bench_s10_faults.py --out s10.json

``--quick`` trims repetitions and ladder points; ``--check`` exits
nonzero if the noop-seam overhead breaches ``--max-overhead`` (default
1.05).  The committed full run lives at
``benchmarks/results/s10_faults.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable

from repro.analysis import format_table, print_banner
from repro.baselines.israeli_itai import israeli_itai_matching
from repro.baselines.luby_mis import luby_mis
from repro.distributed.faults import FaultPlan
from repro.graphs.generators import gnp_random
from repro.matching.certify import certify_degraded_matching

try:
    from conftest import once
except ImportError:  # script mode: conftest only exists for pytest runs
    once = None

#: Average degree of the G(n, p) bench graphs.
AVG_DEG = 8.0
#: The CI gate cell: Luby's MIS at this size, generator engine.
SMOKE_N = 2000
#: Degradation-curve graph size (small enough that stalled runs —
#: which burn the whole round budget — stay cheap).
CURVE_N = 300
#: Round budget for the degradation curves; a run that exceeds it is
#: recorded as a stall.
CURVE_MAX_ROUNDS = 2000
#: Active-but-harmless loss: threshold 1 out of 2^64, so the seam
#: hashes every delivery yet essentially never drops one.
EPS_LOSS = 2.0 ** -64


def _interleaved_best(
    fns: "list[Callable[[], Any]]", reps: int
) -> list[float]:
    """Best-of-``reps`` wall time per fn, alternating order each rep."""
    best = [float("inf")] * len(fns)
    for rep in range(reps):
        order = range(len(fns))
        if rep % 2:
            order = reversed(list(order))
        for i in order:
            t0 = time.perf_counter()
            fns[i]()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def run_overhead_cells(n: int, seed: int, reps: int) -> list[dict[str, Any]]:
    """Time plain vs noop-plan vs active-seam Luby on one graph.

    Identity is asserted before timing: all three variants must return
    the same MIS with the same round/message counts (the noop plan
    binds to ``None``; the epsilon-loss plan filters every delivery
    but drops none).
    """
    g = gnp_random(n, AVG_DEG / (n - 1), seed=seed)
    noop = FaultPlan()
    active = FaultPlan(loss=EPS_LOSS)
    mis_p, res_p = luby_mis(g, seed=seed)
    mis_n, res_n = luby_mis(g, seed=seed, faults=noop)
    mis_a, res_a = luby_mis(g, seed=seed, faults=active)
    if not (mis_p == mis_n == mis_a):
        raise AssertionError(f"fault-seam MIS divergence at n={n}")
    if not (res_p.rounds == res_n.rounds == res_a.rounds
            and res_p.total_messages == res_n.total_messages
            == res_a.total_messages):
        raise AssertionError(f"fault-seam metrics divergence at n={n}")
    if res_a.messages_dropped:
        raise AssertionError("epsilon-loss plan dropped a message")
    t_plain, t_noop, t_active = _interleaved_best(
        [
            lambda: luby_mis(g, seed=seed),
            lambda: luby_mis(g, seed=seed, faults=noop),
            lambda: luby_mis(g, seed=seed, faults=active),
        ],
        reps,
    )
    common = {
        "n": n, "m": g.m, "seed": seed, "reps": reps,
        "mis_size": len(mis_p), "rounds": res_p.rounds,
        "messages": res_p.total_messages, "identical_results": True,
        "plain_s": round(t_plain, 4),
    }
    return [
        {
            "workload": "fault_seam_noop", **common,
            "faulted_s": round(t_noop, 4),
            "overhead": round(t_noop / t_plain, 4),
            "speedup": round(t_plain / t_noop, 4),
        },
        {
            "workload": "fault_seam_active", **common,
            "faulted_s": round(t_active, 4),
            "overhead": round(t_active / t_plain, 4),
            "speedup": round(t_plain / t_active, 4),
        },
    ]


def _faulted_ii(g, seed: int, plan: FaultPlan) -> dict[str, Any]:
    """One II run under ``plan``; stalls are an outcome, not an error."""
    try:
        m, res = israeli_itai_matching(
            g, seed=seed, max_rounds=CURVE_MAX_ROUNDS, faults=plan
        )
    except RuntimeError:  # lost/late one-shot announcements -> stall
        return {"stalled": True}
    out = {"stalled": False, "pairs": len(m), "rounds": res.rounds,
           "dropped": res.messages_dropped, "crashed": res.nodes_crashed,
           "oracle_ok": True, "widows": 0}
    if plan.is_active:
        fs = plan.bind(g, seed)
        rep = certify_degraded_matching(
            g, res.outputs, failed_links=fs.failed_links_by(res.rounds)
        )
        out["oracle_ok"] = rep.ok
        out["widows"] = len(rep.widows)
    return out


def _curve_point(
    g, plan: FaultPlan, seeds: "list[int]", baseline: "dict[int, int]"
) -> dict[str, Any]:
    """Aggregate one ladder rung over ``seeds`` (oracle-checked)."""
    runs = [_faulted_ii(g, s, plan) for s in seeds]
    done = [r for r in runs if not r["stalled"]]
    point: dict[str, Any] = {
        "plan": plan.describe(),
        "seeds": len(seeds),
        "completed": len(done),
        "stall_rate": round(1.0 - len(done) / len(seeds), 3),
        "oracle_ok": all(r["oracle_ok"] for r in done),
    }
    if done:
        ratios = [r["pairs"] / baseline[s]
                  for r, s in zip(runs, seeds) if not r["stalled"]]
        point.update(
            mean_pairs=round(sum(r["pairs"] for r in done) / len(done), 1),
            mean_ratio=round(sum(ratios) / len(ratios), 4),
            mean_rounds=round(sum(r["rounds"] for r in done) / len(done), 1),
            mean_dropped=round(sum(r["dropped"] for r in done) / len(done), 1),
            mean_widows=round(
                sum(r["widows"] for r in done) / len(done), 2
            ),
        )
    return point


def run_degradation_curves(
    n: int, seeds: "list[int]", losses: "list[float]", crashes: "list[int]"
) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
    """II matching size vs fault intensity, normalized per seed."""
    g = gnp_random(n, AVG_DEG / (n - 1), seed=0)
    baseline = {
        s: len(israeli_itai_matching(g, seed=s)[0]) for s in seeds
    }
    loss_curve = [
        {"loss": lv, **_curve_point(g, FaultPlan(loss=lv), seeds, baseline)}
        for lv in losses
    ]
    crash_curve = [
        {"crashes": c,
         **_curve_point(g, FaultPlan(crashes=c), seeds, baseline)}
        for c in crashes
    ]
    return loss_curve, crash_curve


def run_s10(quick: bool = False) -> dict[str, Any]:
    reps = 7 if quick else 11
    seeds = list(range(4)) if quick else list(range(8))
    # The ladder brackets II's loss-tolerance transition at n=300
    # (stalls set in between loss=1e-3 and 1e-2; beyond that every
    # run stalls and the curve is flat).
    losses = ([0.0, 0.001, 0.003, 0.01] if quick
              else [0.0, 0.0001, 0.001, 0.002, 0.003, 0.005, 0.01])
    crashes = [0, 5, 20] if quick else [0, 2, 5, 10, 20]
    cells = run_overhead_cells(SMOKE_N, seed=0, reps=reps)
    loss_curve, crash_curve = run_degradation_curves(
        CURVE_N, seeds, losses, crashes
    )
    return {"quick": quick, "avg_degree": AVG_DEG, "curve_n": CURVE_N,
            "curve_max_rounds": CURVE_MAX_ROUNDS, "cells": cells,
            "loss_curve": loss_curve, "crash_curve": crash_curve}


def _find_cell(data: dict[str, Any], workload: str) -> dict[str, Any]:
    for c in data["cells"]:
        if c["workload"] == workload:
            return c
    raise LookupError(f"cell {workload!r} not in this run")


def smoke_overhead(data: dict[str, Any]) -> float:
    """Noop-plan overhead ratio of the CI gate cell (n=2000 Luby)."""
    return _find_cell(data, "fault_seam_noop")["overhead"]


def show(data: dict[str, Any]) -> None:
    print_banner(
        "S10 — the fault-injection seam",
        "seam overhead on fault-free runs; Israeli-Itai degradation "
        "under loss and crash ladders (oracle-checked)",
    )
    print(format_table(
        ["workload", "n", "rounds", "plain s", "faulted s", "overhead"],
        [
            [c["workload"], c["n"], c["rounds"], c["plain_s"],
             c["faulted_s"], c["overhead"]]
            for c in data["cells"]
        ],
    ))
    n, budget = data["curve_n"], data["curve_max_rounds"]
    print(f"\nIsraeli-Itai degradation, n={n} G(n,p) avg deg "
          f"{data['avg_degree']}, stall = no termination within "
          f"{budget} rounds:")
    print(format_table(
        ["loss", "completed", "stall rate", "pairs", "ratio", "rounds",
         "dropped", "widows"],
        [
            [f"{p['loss']:g}", f"{p['completed']}/{p['seeds']}", p["stall_rate"],
             p.get("mean_pairs", "-"), p.get("mean_ratio", "-"),
             p.get("mean_rounds", "-"), p.get("mean_dropped", "-"),
             p.get("mean_widows", "-")]
            for p in data["loss_curve"]
        ],
    ))
    print(format_table(
        ["crashes", "completed", "stall rate", "pairs", "ratio",
         "rounds", "widows"],
        [
            [p["crashes"], f"{p['completed']}/{p['seeds']}",
             p["stall_rate"], p.get("mean_pairs", "-"),
             p.get("mean_ratio", "-"), p.get("mean_rounds", "-"),
             p.get("mean_widows", "-")]
            for p in data["crash_curve"]
        ],
    ))
    noop = _find_cell(data, "fault_seam_noop")
    print(f"\nnoop-plan seam overhead at n={noop['n']}: "
          f"{noop['overhead']}x (gate: <1.05x — an inactive plan binds "
          f"to None, so the fault-free hot path stays branch-free)")


def test_fault_seam(benchmark, report):
    data = once(benchmark, lambda: run_s10(quick=True))
    report(show, data)
    for c in data["cells"]:
        assert c["identical_results"]
    assert smoke_overhead(data) > 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer timing reps and ladder points")
    ap.add_argument("--check", action="store_true",
                    help="exit 2 if the n=2000 noop-seam overhead "
                         "exceeds --max-overhead (result identity and "
                         "the degradation oracle are always asserted)")
    ap.add_argument("--max-overhead", type=float, default=1.05,
                    help="overhead-ratio gate for --check (default "
                         "1.05: the seam must be free when no plan is "
                         "active)")
    ap.add_argument("--out", type=str, default=None,
                    help="write the JSON report here")
    args = ap.parse_args(argv)
    data = run_s10(quick=args.quick)
    show(data)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(data, fh, indent=2)
        print(f"\nwrote {args.out}")
    if args.check:
        try:
            ratio = smoke_overhead(data)
        except LookupError as e:
            print(f"FAIL: {e}", file=sys.stderr)
            return 2
        if ratio > args.max_overhead:
            print(f"FAIL: n={SMOKE_N} noop-seam overhead {ratio:.3f}x "
                  f"exceeds the {args.max_overhead:.2f}x gate",
                  file=sys.stderr)
            return 2
        bad = [p for p in data["loss_curve"] + data["crash_curve"]
               if not p["oracle_ok"]]
        if bad:
            print(f"FAIL: degradation oracle rejected "
                  f"{[p['plan'] for p in bad]}", file=sys.stderr)
            return 2
        print(f"check ok: n={SMOKE_N} noop-seam overhead {ratio:.3f}x "
              f"(gate {args.max_overhead:.2f}x); degradation oracle ok "
              f"on every completed run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
