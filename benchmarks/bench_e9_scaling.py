"""E9 — the Θ(log n) time claims, as growth curves.

For each CONGEST algorithm (Thm 3.8 bipartite, Thm 3.11 general,
Thm 4.5 weighted, plus the II and Luby baselines) we sweep n over
doublings at constant average degree, fit rounds ≈ a·log₂ n + b, and
report the doubling increments.  Shape: increments roughly constant
(log growth), R² of the log fit high, and no doubling of rounds when n
doubles.
"""

from repro.analysis import doubling_ratios, format_table, log_fit, print_banner
from repro.baselines import israeli_itai_matching, luby_mis
from repro.core import bipartite_mcm, general_mcm, weighted_mwm
from repro.graphs import bipartite_random, gnp_random
from repro.graphs.weights import assign_uniform_weights

from conftest import once


def run_e9():
    out = []

    def sweep(name, ns, runner):
        rs = [runner(n) for n in ns]
        fit = log_fit(ns, rs)
        out.append((name, ns, rs, fit, doubling_ratios(ns, rs)))

    sweep(
        "Israeli-Itai",
        [64, 128, 256, 512],
        lambda n: israeli_itai_matching(
            gnp_random(n, 8.0 / n, seed=n), seed=n
        )[1].rounds,
    )
    sweep(
        "Luby MIS",
        [64, 128, 256, 512],
        lambda n: luby_mis(gnp_random(n, 8.0 / n, seed=n), seed=n)[1].rounds,
    )
    sweep(
        "bipartite k=3 (Thm 3.8)",
        [32, 64, 128, 256],
        lambda n: bipartite_mcm(
            *_bip(n), seed=n
        )[1].rounds,
    )
    sweep(
        "general k=3 (Thm 3.11)",
        [24, 48, 96],
        lambda n: general_mcm(gnp_random(n, 5.0 / n, seed=n), k=3, seed=n)[1].rounds,
    )
    sweep(
        "weighted eps=.2 (Thm 4.5)",
        [24, 48, 96],
        lambda n: weighted_mwm(
            assign_uniform_weights(gnp_random(n, 6.0 / n, seed=n), seed=n),
            eps=0.2,
            seed=n,
        )[1].rounds,
    )
    return out


def _bip(n):
    g, xs, _ = bipartite_random(n, n, 5.0 / n, seed=n)
    return g, 3, xs


def test_round_scaling(benchmark, report):
    out = once(benchmark, run_e9)

    def show():
        print_banner(
            "E9 — Θ(log n) round growth of the CONGEST algorithms",
            "doubling n adds ~constant rounds (O(log n) time, Thms "
            "3.8/3.11/4.5 and the [15]/[20] baselines)",
        )
        rows = []
        for name, ns, rs, fit, dbl in out:
            rows.append(
                [
                    name,
                    " ".join(map(str, ns)),
                    " ".join(map(str, rs)),
                    fit["a"],
                    fit["r2"],
                ]
            )
        print(format_table(
            ["algorithm", "n sweep", "rounds", "log2 slope", "R²"], rows,
        ))
        print("\n(doubling increments should be ~flat for log growth; "
              "randomized adaptive stopping adds noise)")

    report(show)
    for name, ns, rs, fit, _dbl in out:
        # No linear blow-up: rounds at the largest n are far below
        # (n_max / n_min) * rounds at the smallest n.
        linear_extrapolation = rs[0] * ns[-1] / ns[0]
        assert rs[-1] < 0.7 * linear_extrapolation, (name, rs)
