"""Local computation access to the seeded random-greedy matching.

The global engines in this repository answer "compute the whole
matching"; this package answers the production question the ROADMAP
calls the millions-of-point-lookups mode: *given a huge graph and
shared randomness, is this edge matched? who is this vertex matched
to?* — each query exploring only the small neighborhood the answer
depends on (Alon–Rubinfeld–Vardi space-efficient LCAs and
Reingold–Vardi's tighter bounds are the recipe; PAPERS.md).

Layers, bottom up:

* :mod:`repro.lca.ranks` — the shared seeded randomness: a per-edge
  64-bit rank, scalar and vectorized implementations bit-identical;
* :mod:`repro.lca.oracle` — :func:`random_greedy_matching`, the global
  run (reference scan + vectorized local-minima rounds) every point
  query provably agrees with;
* :mod:`repro.lca.lca` — :class:`LcaMatching`, the stateless
  per-query resolver with exploration counters;
* :mod:`repro.lca.service` — :class:`MatchingService`, the serving
  layer: LRU of explored neighborhoods, batched queries, aggregate
  :class:`repro.distributed.metrics.LcaProbeStats`.

Also runnable from the shell: ``python -m repro lca --n 2000 --p 0.004
--queries 5000 --verify``.
"""

from repro.lca.lca import LcaMatching
from repro.lca.oracle import random_greedy_matching, rank_order
from repro.lca.ranks import edge_rank, edge_ranks
from repro.lca.service import BatchResult, MatchingService

__all__ = [
    "BatchResult",
    "LcaMatching",
    "MatchingService",
    "edge_rank",
    "edge_ranks",
    "random_greedy_matching",
    "rank_order",
]
