"""Tests for the reconstructed Figure 1 / Figure 2 instances."""

import pytest

from repro.core import count_augmenting_paths, derived_weights, apply_wraps
from repro.core.figures import figure1_instance, figure2_instance
from repro.matching import Matching, find_augmenting_paths_upto


class TestFigure1:
    def test_counts_as_annotated(self):
        g, xside, mates, expected = figure1_instance()
        counts, _ = count_augmenting_paths(g, xside, mates, 3)
        got = {v: counts[v][1] for v in expected}
        assert got == expected

    def test_counts_equal_brute_force(self):
        g, xside, mates, _ = figure1_instance()
        m = Matching(g, [(v, mates[v]) for v in range(g.n) if v < mates[v]])
        paths = find_augmenting_paths_upto(g, m, 3)
        # 6 augmenting paths of length 3, 3 ending at each leader.
        assert len(paths) == 6
        for leader in (8, 9):
            assert sum(1 for p in paths if leader in (p[0], p[-1])) == 3

    def test_structure_is_valid(self):
        g, xside, mates, _ = figure1_instance()
        assert g.is_bipartite()
        for v, mate in enumerate(mates):
            if mate != -1:
                assert mates[mate] == v
                assert g.has_edge(v, mate)
                assert xside[v] != xside[mate]


class TestFigure2:
    def test_caption_weights(self):
        g, m, mprime, (w_m, w_mp, w_mpp) = figure2_instance()
        assert m.weight() == w_m == 14.0
        wm = derived_weights(g, m)
        got = sum(wm[g.edge_id(u, v)] for u, v in mprime)
        assert got == w_mp == 10.0
        m2 = apply_wraps(m, mprime)
        assert m2.weight() == w_mpp == 26.0

    def test_lemma41_strict_slack(self):
        """The figure's point: overlap at a removed M edge gives strict
        inequality (26 > 14 + 10)."""
        g, m, mprime, _ = figure2_instance()
        wm = derived_weights(g, m)
        gain = sum(wm[g.edge_id(u, v)] for u, v in mprime)
        m2 = apply_wraps(m, mprime)
        assert m2.weight() > m.weight() + gain

    def test_mprime_is_matching_disjoint_from_m(self):
        g, m, mprime, _ = figure2_instance()
        mp = Matching(g, mprime)  # validates
        for e in mprime:
            assert not m.is_matched_edge(*e)
