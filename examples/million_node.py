#!/usr/bin/env python3
"""A million-node graph, streamed, batched — the ISSUE 7 scale tier.

Until PR 7 a graph this size could not even be *built* economically:
generators accumulated Python tuple lists (~100 bytes per edge) before
the CSR conversion, and every index array was pinned to int64.  The
scale tier changes both ends:

* ``gnp_random`` streams chunked NumPy edge blocks straight into
  ``Graph.from_edge_chunks`` — no Python edge list ever exists;
* the CSR core auto-selects **int32** ``indptr/indices/eids`` because
  n and 2m both fit (promotion back to int64 is automatic and
  overflow-guarded past 2^31-1 half-edges);
* the array backend's segment kernels are dtype-agnostic, so the same
  Luby program runs unchanged — here as one **batched** execution,
  four seeds sharing every gather over ``(num_seeds, n)`` state.

Prints build/run wall time and this process's peak RSS.  Expected on
one ~recent core: the build in a few seconds, batched Luby in well
under a minute, peak RSS around a couple of GiB — the committed
scale curves live in ``benchmarks/results/s7_scale.json``.
"""

import resource
import time

import numpy as np

from repro.baselines.luby_mis import luby_mis_batched, verify_mis
from repro.graphs.generators import gnp_random

N = 1_000_000
AVG_DEG = 8.0
SEEDS = [1, 2, 3, 4]


def rss_mib() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def main() -> None:
    t0 = time.perf_counter()
    g = gnp_random(N, AVG_DEG / N, seed=7)
    build_s = time.perf_counter() - t0
    print(f"built G(n={g.n:,}, m={g.m:,}) in {build_s:.2f}s "
          f"(streamed chunks, {np.dtype(g.index_dtype).name} CSR indices)")

    t0 = time.perf_counter()
    runs = luby_mis_batched(g, SEEDS)
    run_s = time.perf_counter() - t0
    print(f"batched Luby MIS x {len(SEEDS)} seeds in {run_s:.2f}s "
          f"({run_s / len(SEEDS):.2f}s per seed amortized)")

    for seed, (mis, res) in zip(SEEDS, runs):
        assert verify_mis(g, mis), f"seed {seed}: not a maximal ind. set"
        print(f"  seed {seed}: |MIS| = {len(mis):,} in {res.rounds} rounds")

    print(f"peak RSS: {rss_mib():,.0f} MiB")


if __name__ == "__main__":
    main()
