"""The scalar cell-slot simulation loop tying traffic, switch and scheduler.

This is the *reference semantics* for the switch subsystem: one
Python-level pass per slot over deque-backed VOQs.  The production
path for long horizons and large port counts is
:func:`repro.switch.engine.run_switch_vectorized`, which is pinned
byte-identical to this loop on :class:`~repro.switch.fabric.SwitchStats`.
"""

from __future__ import annotations

from repro.switch.fabric import Switch, SwitchStats
from repro.switch.schedulers import Scheduler
from repro.switch.traffic import TrafficGenerator


def run_switch(
    ports: int,
    traffic: TrafficGenerator,
    scheduler: Scheduler,
    slots: int,
    warmup: int = 0,
) -> SwitchStats:
    """Simulate ``slots`` cell slots; returns the switch statistics.

    Per slot: arrivals are enqueued, the scheduler is consulted with
    the current VOQ occupancy, and the fabric transfers one cell per
    matched pair.  ``warmup`` extra slots run first without being
    counted (to measure steady state).
    """
    sw = Switch(ports)
    for slot in range(warmup + slots):
        if slot == warmup:
            # Reset counters but keep queue state (steady-state window);
            # cells enqueued during warmup carry their true arrival
            # slots, so delay accounting stays consistent.
            sw.stats = SwitchStats(ports=ports)
        for i, j in traffic(slot):
            sw.enqueue(i, j, slot)
        if hasattr(scheduler, "schedule_weighted"):
            matches = scheduler.schedule_weighted(sw.occupancy(), slot)
        else:
            matches = scheduler.schedule(sw.demand(), slot)
        sw.transfer(matches, slot)
    sw.stats.backlog = sw.backlog()
    return sw.stats
