#!/usr/bin/env python3
"""Theorem 3.8 vs Theorem 3.11 on the same bipartite inputs.

The general-graph algorithm (random red/blue bipartitions) also works
on bipartite graphs — but pays a 2^{2k}-ish sampling overhead for not
knowing the bipartition.  This example quantifies that price: same
graphs, same k, both algorithms, comparing quality and simulated
rounds.  Also shows the generic LOCAL algorithm (Theorem 3.1) on a
small instance with its O(|V|+|E|)-bit messages.
"""

from repro.analysis import format_table
from repro.core import bipartite_mcm, general_mcm, generic_mcm
from repro.graphs import bipartite_random
from repro.matching import hopcroft_karp

K = 3


def main() -> None:
    rows = []
    for n_side, p in [(30, 0.12), (60, 0.07), (120, 0.035)]:
        g, xs, _ = bipartite_random(n_side, n_side, p, seed=n_side)
        opt = len(hopcroft_karp(g, xs))
        mb, rb = bipartite_mcm(g, k=K, xs=xs, seed=1)
        mg, rg, outer = general_mcm(g, k=K, seed=1)
        rows.append(
            [
                f"{g.n}v/{g.m}e",
                opt,
                f"{len(mb)} ({len(mb)/opt:.2f})",
                rb.rounds,
                f"{len(mg)} ({len(mg)/opt:.2f})",
                rg.rounds,
                outer,
            ]
        )
    print(f"k = {K} (guarantee {1-1/K:.2f}) — knowing the bipartition "
          "(Thm 3.8) vs sampling it (Thm 3.11):\n")
    print(
        format_table(
            [
                "graph",
                "|M*|",
                "Thm3.8 |M|",
                "rounds",
                "Thm3.11 |M|",
                "rounds",
                "samples",
            ],
            rows,
        )
    )

    # The generic LOCAL algorithm on a small instance.
    g, xs, _ = bipartite_random(15, 15, 0.15, seed=9)
    opt = len(hopcroft_karp(g, xs))
    m, stats = generic_mcm(g, k=K, seed=9)
    print(
        f"\ngeneric LOCAL algorithm (Thm 3.1) on {g.n}v/{g.m}e: "
        f"|M| = {len(m)}/{opt}, flooding rounds = {stats.result.rounds}, "
        f"charged MIS rounds = {stats.result.charged_rounds}, "
        f"max message = {stats.result.max_message_bits} bits "
        f"(linear-size, as the theorem allows)"
    )


if __name__ == "__main__":
    main()
