"""Batched array execution == per-seed sequential execution, byte for byte.

The ISSUE 4 acceptance bar: a :class:`BatchedArrayBackend` run over a
seed batch must produce, for every seed, a ``RunResult`` byte-identical
to the generator backend's (and the single-seed array backend's) run of
that seed — asserted three ways:

* direct ``RunResult`` equality across the four scenario generator
  families used by the backend benches (Barabási–Albert,
  Watts–Strogatz, G(n,p), power-law configuration) and degenerate
  graphs;
* on a batch with **mixed early termination** — seeds that finish
  rounds earlier than others keep contributing nothing while the
  stragglers run (the per-seed round counts in one batch differ, and
  every seed still matches its solo run);
* against the **pre-refactor goldens**: the batched rerun of each
  golden cell, embedded in a larger batch, must serialize to exactly
  the bytes stored in ``tests/goldens/seed_identity.json``.
"""

import json

import numpy as np
import pytest

from repro.baselines.israeli_itai import (
    israeli_itai_matching,
    israeli_itai_matching_batched,
)
from repro.baselines.lps_mwm import lps_mwm, lps_mwm_batched
from repro.baselines.luby_mis import luby_mis, luby_mis_batched, verify_mis
from repro.core.weighted_mwm import weighted_mwm, weighted_mwm_batched
from repro.graphs import (
    Graph,
    barabasi_albert,
    gnp_random,
    powerlaw_configuration,
    watts_strogatz,
)
from repro.graphs.weights import assign_uniform_weights

from tests.golden_harness import GOLDEN_PATH, _edges, _res_dict, to_canonical_json

#: The four scenario generator families of the backend benches.
FAMILIES = {
    "barabasi_albert": lambda: barabasi_albert(40, 3, seed=2),
    "watts_strogatz": lambda: watts_strogatz(30, 4, 0.2, seed=3),
    "gnp": lambda: gnp_random(35, 0.15, seed=1),
    "powerlaw": lambda: powerlaw_configuration(40, 2.5, seed=4),
}

SEEDS = [0, 1, 2, 5, 9]


@pytest.mark.parametrize("family", sorted(FAMILIES))
class TestBatchedIdentityAcrossFamilies:
    def test_luby_mis(self, family):
        g = FAMILIES[family]()
        batched = luby_mis_batched(g, SEEDS)
        reference = luby_mis_batched(g, SEEDS, backend="generator")
        for s, (mis_b, res_b), (mis_g, res_g) in zip(SEEDS, batched, reference):
            assert mis_b == mis_g, f"seed {s}"
            assert res_b == res_g, f"seed {s}"
            mis_a, res_a = luby_mis(g, seed=s, backend="array")
            assert mis_b == mis_a and res_b == res_a
            assert verify_mis(g, mis_b)

    def test_israeli_itai(self, family):
        g = FAMILIES[family]()
        batched = israeli_itai_matching_batched(g, SEEDS)
        reference = israeli_itai_matching_batched(g, SEEDS, backend="generator")
        for s, (m_b, res_b), (m_g, res_g) in zip(SEEDS, batched, reference):
            assert sorted(m_b.edges()) == sorted(m_g.edges()), f"seed {s}"
            assert res_b == res_g, f"seed {s}"
            m_a, res_a = israeli_itai_matching(g, seed=s, backend="array")
            assert sorted(m_b.edges()) == sorted(m_a.edges()) and res_b == res_a

    def test_lps_mwm(self, family):
        g = assign_uniform_weights(FAMILIES[family](), seed=6)
        batched = lps_mwm_batched(g, SEEDS)
        reference = lps_mwm_batched(g, SEEDS, backend="generator")
        for s, (m_b, res_b), (m_g, res_g) in zip(SEEDS, batched, reference):
            assert sorted(m_b.edges()) == sorted(m_g.edges()), f"seed {s}"
            assert res_b == res_g, f"seed {s}"
            m_a, res_a = lps_mwm(g, seed=s, backend="array")
            assert sorted(m_b.edges()) == sorted(m_a.edges()) and res_b == res_a

    def test_weighted_mwm(self, family):
        g = assign_uniform_weights(FAMILIES[family](), seed=6)
        seeds = SEEDS[:3]
        batched = weighted_mwm_batched(g, seeds, eps=0.3)
        for s, (m_b, res_b, it_b) in zip(seeds, batched):
            m_g, res_g, it_g = weighted_mwm(g, eps=0.3, seed=s)
            assert sorted(m_b.edges()) == sorted(m_g.edges()), f"seed {s}"
            assert res_b == res_g, f"seed {s}"
            assert it_b == it_g, f"seed {s}"


class TestMixedEarlyTermination:
    """Seeds in one batch finish at different rounds; identity holds."""

    def test_luby_round_counts_diverge_within_batch(self):
        g = barabasi_albert(40, 3, seed=2)
        seeds = list(range(12))
        batched = luby_mis_batched(g, seeds)
        rounds = [res.rounds for _, res in batched]
        # The point of the masked-termination design: seeds genuinely
        # stop at different rounds inside one batched run...
        assert len(set(rounds)) > 1, rounds
        # ...and every seed still matches its solo generator run.
        for s, (mis_b, res_b) in zip(seeds, batched):
            mis_g, res_g = luby_mis(g, seed=s)
            assert mis_b == mis_g and res_b == res_g

    def test_israeli_itai_mixed_termination(self):
        g = gnp_random(35, 0.15, seed=1)
        seeds = list(range(10))
        batched = israeli_itai_matching_batched(g, seeds)
        rounds = [res.rounds for _, res in batched]
        assert len(set(rounds)) > 1, rounds
        for s, (m_b, res_b) in zip(seeds, batched):
            m_g, res_g = israeli_itai_matching(g, seed=s)
            assert sorted(m_b.edges()) == sorted(m_g.edges()) and res_b == res_g

    def test_degenerate_graphs(self):
        for g in (Graph(6), Graph(8, [(0, 1), (2, 3)])):
            for (mis_b, res_b), s in zip(luby_mis_batched(g, SEEDS), SEEDS):
                mis_g, res_g = luby_mis(g, seed=s)
                assert mis_b == mis_g and res_b == res_g
            for (m_b, res_b), s in zip(
                israeli_itai_matching_batched(g, SEEDS), SEEDS
            ):
                m_g, res_g = israeli_itai_matching(g, seed=s)
                assert sorted(m_b.edges()) == sorted(m_g.edges())
                assert res_b == res_g

    def test_budget_error_matches_generator_semantics(self):
        g = barabasi_albert(40, 3, seed=2)
        with pytest.raises(RuntimeError, match="still running"):
            luby_mis_batched(g, SEEDS, max_rounds=1)
        with pytest.raises(RuntimeError, match="still running"):
            luby_mis(g, seed=0, max_rounds=1)

    def test_single_seed_batch(self):
        g = watts_strogatz(30, 4, 0.2, seed=3)
        ((mis_b, res_b),) = luby_mis_batched(g, [7])
        mis_g, res_g = luby_mis(g, seed=7)
        assert mis_b == mis_g and res_b == res_g

    def test_weighted_mwm_adaptive_lanes_stop_independently(self):
        # Under ``adaptive`` lanes leave the pipeline at different
        # iterations (their derived weights dry up at different times);
        # every lane must still match its solo adaptive run.
        g = assign_uniform_weights(gnp_random(28, 0.2, seed=5), seed=5)
        seeds = list(range(6))
        batched = weighted_mwm_batched(g, seeds, eps=0.3, adaptive=True)
        iters = [it for _, _, it in batched]
        assert len(set(iters)) > 1, iters
        for s, (m_b, res_b, it_b) in zip(seeds, batched):
            m_g, res_g, it_g = weighted_mwm(g, eps=0.3, seed=s, adaptive=True)
            assert sorted(m_b.edges()) == sorted(m_g.edges()), f"seed {s}"
            assert res_b == res_g and it_b == it_g, f"seed {s}"

    def test_weighted_degenerate_graphs(self):
        for g0 in (Graph(6), Graph(8, [(0, 1), (2, 3)])):
            g = assign_uniform_weights(g0, seed=1)
            for (m_b, res_b, it_b), s in zip(
                weighted_mwm_batched(g, SEEDS, eps=0.3), SEEDS
            ):
                m_g, res_g, it_g = weighted_mwm(g, eps=0.3, seed=s)
                assert sorted(m_b.edges()) == sorted(m_g.edges())
                assert res_b == res_g and it_b == it_g


class TestBatchedMatchesGoldens:
    """Batched reruns of the golden cells, byte-compared.

    Each golden seed is embedded in a *larger* batch (extra seeds on
    both sides), so the assertion also proves neighboring lanes cannot
    perturb a seed's stream or accounting.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    def _assert_cell(self, golden, key, computed):
        assert to_canonical_json(computed) == to_canonical_json(golden[key])

    def test_luby_cells(self, golden):
        results = luby_mis_batched(barabasi_albert(30, 2, seed=2), [1, 5, 11])
        mis, res = results[1]  # seed 5, surrounded by other lanes
        self._assert_cell(
            golden, "luby_mis/ba30", {"mis": sorted(mis), "res": _res_dict(res)}
        )
        results = luby_mis_batched(gnp_random(24, 0.2, seed=1), [0, 6, 13])
        mis, res = results[1]  # seed 6
        self._assert_cell(
            golden, "luby_mis/gnp24", {"mis": sorted(mis), "res": _res_dict(res)}
        )

    def test_israeli_itai_cells(self, golden):
        results = israeli_itai_matching_batched(
            gnp_random(24, 0.2, seed=1), [2, 5, 8]
        )
        m, res = results[1]  # seed 5
        self._assert_cell(
            golden, "israeli_itai/gnp24", {"edges": _edges(m), "res": _res_dict(res)}
        )
        results = israeli_itai_matching_batched(
            barabasi_albert(30, 2, seed=2), [3, 7, 12]
        )
        m, res = results[1]  # seed 7
        self._assert_cell(
            golden, "israeli_itai/ba30", {"edges": _edges(m), "res": _res_dict(res)}
        )

    def test_lps_mwm_cells(self, golden):
        g_w = assign_uniform_weights(gnp_random(20, 0.3, seed=3), seed=4)
        results = lps_mwm_batched(g_w, [2, 9, 14])
        m, res = results[1]  # seed 9, surrounded by other lanes
        self._assert_cell(
            golden, "lps_mwm/gnp20w", {"edges": _edges(m), "res": _res_dict(res)}
        )
        g_baw = assign_uniform_weights(barabasi_albert(30, 2, seed=2), seed=8)
        results = lps_mwm_batched(g_baw, [4, 11, 21])
        m, res = results[1]  # seed 11
        self._assert_cell(
            golden, "lps_mwm/ba30w", {"edges": _edges(m), "res": _res_dict(res)}
        )

    def test_weighted_mwm_cell(self, golden):
        g_w = assign_uniform_weights(gnp_random(20, 0.3, seed=3), seed=4)
        results = weighted_mwm_batched(g_w, [1, 7, 19], eps=0.3)
        m, res, iters = results[1]  # seed 7
        self._assert_cell(
            golden,
            "weighted_mwm/gnp20w",
            {
                "edges": _edges(m),
                "weight": m.weight(),
                "iterations": iters,
                "res": _res_dict(res),
            },
        )
